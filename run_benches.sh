#!/bin/bash
# Runs every table/figure reproduction binary plus the micro-benchmarks,
# in experiment order, writing the combined log to bench_output.txt.
cd "$(dirname "$0")"
{
  for b in table04_kb_stats fig03_unit_frequency fig04_quantity_kinds \
           table06_dataset_stats table07_dimeval table08_dimperc_vs_base \
           table09_mwp_accuracy fig06_augmentation_rate \
           fig07_tokenization_ablation perf_microbench; do
    echo "############################################################"
    echo "### $b"
    echo "############################################################"
    ./build/bench/$b 2>&1
    echo
  done
} | tee bench_output.txt
