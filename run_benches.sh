#!/bin/bash
# Runs every table/figure reproduction binary plus the micro-benchmarks,
# in experiment order, writing the combined log to bench_output.txt. The
# micro-benchmarks additionally dump machine-readable Google-benchmark
# JSON to BENCH_perf.json (interned vs legacy string-keyed comparisons,
# blocked vs naive kernels, the DIMQR_THREADS sweeps, the inference
# fast path: batched prefill vs per-token decode plus the prompt-prefix
# KV cache on/off under the eval harness, and the serving layer:
# BM_ServeThroughput's batch-width sweep and BM_ServeP99UnderBurst's
# tail latency / shed rate / deadline-miss rate under oversubscribed
# bursts, all on the simulated tick clock).
#
# Timings only mean something from an optimized build, so everything runs
# out of a dedicated Release tree (build-rel/) — never the default dev
# tree. perf_microbench itself refuses to start from a non-Release build.
# All scratch output (combined log, packed snapshot, smaps samples) lands
# under build-rel/bench-out/, never in the source tree; only the
# machine-readable BENCH_perf.json is written at the repo root, because
# EXPERIMENTS.md links to it as a published artifact.
set -e
cd "$(dirname "$0")"

# An interrupted run must not leave strays behind: the resident smoke test
# backgrounds probe processes, and fleet_eval forks worker processes (which
# die with their supervisor via PDEATHSIG, so reaping our direct children
# is enough to take the whole tree down).
trap 'pkill -P $$ 2>/dev/null || true' EXIT INT TERM

cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release \
      -DDIMQR_BUILD_TESTS=OFF -DDIMQR_BUILD_EXAMPLES=OFF
cmake --build build-rel -j

OUT=build-rel/bench-out
mkdir -p "$OUT"
SNAP="$OUT/artifacts.dqs"

# Pack + verify the artifact snapshot once, then smoke-check page sharing:
# four concurrent processes map the same file with overlapping holds, and
# at least one must observe the pages as Shared_* (one physical copy).
./build-rel/bench/dimqr_snapshot pack "$SNAP"
./build-rel/bench/dimqr_snapshot verify "$SNAP"

# Exit-code contract (scripted health checks branch on these): 3 for an
# I/O problem, 4 for corruption. Probe each class live so a regression in
# the mapping fails the bench run, not a production health check.
set +e
./build-rel/bench/dimqr_snapshot verify "$OUT/does_not_exist.dqs" 2>/dev/null
rc=$?
if [ "$rc" -ne 3 ]; then
  echo "snapshot exit codes: FAILED — missing file returned $rc, want 3" >&2
  exit 1
fi
cp "$SNAP" "$OUT/corrupt.dqs"
size=$(stat -c%s "$OUT/corrupt.dqs")
printf '\xde\xad\xbe\xef' \
  | dd of="$OUT/corrupt.dqs" bs=1 seek=$((size - 8)) conv=notrunc \
       status=none
./build-rel/bench/dimqr_snapshot verify "$OUT/corrupt.dqs" 2>/dev/null
rc=$?
if [ "$rc" -ne 4 ]; then
  echo "snapshot exit codes: FAILED — corrupt file returned $rc, want 4" >&2
  exit 1
fi
set -e
rm -f "$OUT/corrupt.dqs"
echo "snapshot exit codes: OK (3 = I/O error, 4 = corruption)"
for i in 1 2 3 4; do
  ./build-rel/bench/dimqr_snapshot resident "$SNAP" 800 \
      > "$OUT/resident.$i.txt" &
done
wait
if grep -hE '^Shared_(Clean|Dirty):' "$OUT"/resident.*.txt \
    | grep -vq ' 0 kB'; then
  echo "snapshot page sharing: OK (Shared_* pages observed across processes)"
else
  echo "snapshot page sharing: FAILED — no process saw shared pages" >&2
  cat "$OUT"/resident.*.txt >&2
  exit 1
fi

{
  for b in table04_kb_stats fig03_unit_frequency fig04_quantity_kinds \
           table06_dataset_stats table07_dimeval table08_dimperc_vs_base \
           table09_mwp_accuracy fig06_augmentation_rate \
           fig07_tokenization_ablation perf_microbench; do
    echo "############################################################"
    echo "### $b"
    echo "############################################################"
    if [ "$b" = perf_microbench ]; then
      # Record the host's SIMD capability alongside the timings: kernel
      # numbers from different dispatch tiers are not comparable, and the
      # JSON consumers need to know what silicon produced them. Exported
      # as an env var; perf_microbench adds it to the benchmark context.
      CPU_SIMD_FLAGS=$(grep -m1 '^flags' /proc/cpuinfo 2>/dev/null \
        | tr ' ' '\n' \
        | grep -E '^(sse4_2|avx|avx2|fma|avx512[a-z0-9]*)$' \
        | paste -sd, -)
      DIMQR_CPU_SIMD_FLAGS="${CPU_SIMD_FLAGS:-none}" \
        ./build-rel/bench/$b --benchmark_out=BENCH_perf.json \
                             --benchmark_out_format=json 2>&1
    else
      ./build-rel/bench/$b --snapshot="$SNAP" 2>&1
    fi
    echo
  done
} | tee "$OUT/bench_output.txt"
