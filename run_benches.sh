#!/bin/bash
# Runs every table/figure reproduction binary plus the micro-benchmarks,
# in experiment order, writing the combined log to bench_output.txt. The
# micro-benchmarks additionally dump machine-readable Google-benchmark
# JSON to BENCH_perf.json (interned vs legacy string-keyed comparisons,
# blocked vs naive kernels, the DIMQR_THREADS sweeps, the inference
# fast path: batched prefill vs per-token decode plus the prompt-prefix
# KV cache on/off under the eval harness, and the serving layer:
# BM_ServeThroughput's batch-width sweep and BM_ServeP99UnderBurst's
# tail latency / shed rate / deadline-miss rate under oversubscribed
# bursts, all on the simulated tick clock).
#
# Timings only mean something from an optimized build, so everything runs
# out of a dedicated Release tree (build-rel/) — never the default dev
# tree. perf_microbench itself refuses to start from a non-Release build.
set -e
cd "$(dirname "$0")"

cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release \
      -DDIMQR_BUILD_TESTS=OFF -DDIMQR_BUILD_EXAMPLES=OFF
cmake --build build-rel -j

{
  for b in table04_kb_stats fig03_unit_frequency fig04_quantity_kinds \
           table06_dataset_stats table07_dimeval table08_dimperc_vs_base \
           table09_mwp_accuracy fig06_augmentation_rate \
           fig07_tokenization_ablation perf_microbench; do
    echo "############################################################"
    echo "### $b"
    echo "############################################################"
    if [ "$b" = perf_microbench ]; then
      ./build-rel/bench/$b --benchmark_out=BENCH_perf.json \
                           --benchmark_out_format=json 2>&1
    else
      ./build-rel/bench/$b 2>&1
    fi
    echo
  done
} | tee bench_output.txt
