# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
add_test(linking_test "/root/repo/build/tests/linking_test")
set_tests_properties(linking_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;33;dimqr_add_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(kg_test "/root/repo/build/tests/kg_test")
set_tests_properties(kg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;38;dimqr_add_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(lm_test "/root/repo/build/tests/lm_test")
set_tests_properties(lm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;42;dimqr_add_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(dimeval_test "/root/repo/build/tests/dimeval_test")
set_tests_properties(dimeval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;47;dimqr_add_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(mwp_test "/root/repo/build/tests/mwp_test")
set_tests_properties(mwp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;51;dimqr_add_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(solver_test "/root/repo/build/tests/solver_test")
set_tests_properties(solver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;56;dimqr_add_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;61;dimqr_add_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
