# Empty dependencies file for mwp_test.
# This may be replaced when dependencies are built.
