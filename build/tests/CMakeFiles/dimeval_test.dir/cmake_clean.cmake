file(REMOVE_RECURSE
  "CMakeFiles/dimeval_test.dir/dimeval/dimeval_test.cc.o"
  "CMakeFiles/dimeval_test.dir/dimeval/dimeval_test.cc.o.d"
  "dimeval_test"
  "dimeval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimeval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
