# Empty compiler generated dependencies file for dimeval_test.
# This may be replaced when dependencies are built.
