
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mwp/augment.cc" "src/CMakeFiles/dimqr_mwp.dir/mwp/augment.cc.o" "gcc" "src/CMakeFiles/dimqr_mwp.dir/mwp/augment.cc.o.d"
  "/root/repo/src/mwp/equation.cc" "src/CMakeFiles/dimqr_mwp.dir/mwp/equation.cc.o" "gcc" "src/CMakeFiles/dimqr_mwp.dir/mwp/equation.cc.o.d"
  "/root/repo/src/mwp/generator.cc" "src/CMakeFiles/dimqr_mwp.dir/mwp/generator.cc.o" "gcc" "src/CMakeFiles/dimqr_mwp.dir/mwp/generator.cc.o.d"
  "/root/repo/src/mwp/slotting.cc" "src/CMakeFiles/dimqr_mwp.dir/mwp/slotting.cc.o" "gcc" "src/CMakeFiles/dimqr_mwp.dir/mwp/slotting.cc.o.d"
  "/root/repo/src/mwp/stats.cc" "src/CMakeFiles/dimqr_mwp.dir/mwp/stats.cc.o" "gcc" "src/CMakeFiles/dimqr_mwp.dir/mwp/stats.cc.o.d"
  "/root/repo/src/mwp/tokenization.cc" "src/CMakeFiles/dimqr_mwp.dir/mwp/tokenization.cc.o" "gcc" "src/CMakeFiles/dimqr_mwp.dir/mwp/tokenization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimqr_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
