# Empty dependencies file for dimqr_mwp.
# This may be replaced when dependencies are built.
