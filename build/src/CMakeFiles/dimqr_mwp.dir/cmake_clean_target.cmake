file(REMOVE_RECURSE
  "libdimqr_mwp.a"
)
