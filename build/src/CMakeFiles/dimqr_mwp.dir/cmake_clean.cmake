file(REMOVE_RECURSE
  "CMakeFiles/dimqr_mwp.dir/mwp/augment.cc.o"
  "CMakeFiles/dimqr_mwp.dir/mwp/augment.cc.o.d"
  "CMakeFiles/dimqr_mwp.dir/mwp/equation.cc.o"
  "CMakeFiles/dimqr_mwp.dir/mwp/equation.cc.o.d"
  "CMakeFiles/dimqr_mwp.dir/mwp/generator.cc.o"
  "CMakeFiles/dimqr_mwp.dir/mwp/generator.cc.o.d"
  "CMakeFiles/dimqr_mwp.dir/mwp/slotting.cc.o"
  "CMakeFiles/dimqr_mwp.dir/mwp/slotting.cc.o.d"
  "CMakeFiles/dimqr_mwp.dir/mwp/stats.cc.o"
  "CMakeFiles/dimqr_mwp.dir/mwp/stats.cc.o.d"
  "CMakeFiles/dimqr_mwp.dir/mwp/tokenization.cc.o"
  "CMakeFiles/dimqr_mwp.dir/mwp/tokenization.cc.o.d"
  "libdimqr_mwp.a"
  "libdimqr_mwp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_mwp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
