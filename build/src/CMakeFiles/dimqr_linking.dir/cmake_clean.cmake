file(REMOVE_RECURSE
  "CMakeFiles/dimqr_linking.dir/linking/annotator.cc.o"
  "CMakeFiles/dimqr_linking.dir/linking/annotator.cc.o.d"
  "CMakeFiles/dimqr_linking.dir/linking/linker.cc.o"
  "CMakeFiles/dimqr_linking.dir/linking/linker.cc.o.d"
  "libdimqr_linking.a"
  "libdimqr_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
