# Empty dependencies file for dimqr_linking.
# This may be replaced when dependencies are built.
