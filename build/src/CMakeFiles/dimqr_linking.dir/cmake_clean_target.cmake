file(REMOVE_RECURSE
  "libdimqr_linking.a"
)
