
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linking/annotator.cc" "src/CMakeFiles/dimqr_linking.dir/linking/annotator.cc.o" "gcc" "src/CMakeFiles/dimqr_linking.dir/linking/annotator.cc.o.d"
  "/root/repo/src/linking/linker.cc" "src/CMakeFiles/dimqr_linking.dir/linking/linker.cc.o" "gcc" "src/CMakeFiles/dimqr_linking.dir/linking/linker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimqr_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
