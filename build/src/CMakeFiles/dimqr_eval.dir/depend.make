# Empty dependencies file for dimqr_eval.
# This may be replaced when dependencies are built.
