file(REMOVE_RECURSE
  "CMakeFiles/dimqr_eval.dir/eval/harness.cc.o"
  "CMakeFiles/dimqr_eval.dir/eval/harness.cc.o.d"
  "CMakeFiles/dimqr_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/dimqr_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/dimqr_eval.dir/eval/table.cc.o"
  "CMakeFiles/dimqr_eval.dir/eval/table.cc.o.d"
  "libdimqr_eval.a"
  "libdimqr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
