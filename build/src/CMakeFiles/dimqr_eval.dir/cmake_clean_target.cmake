file(REMOVE_RECURSE
  "libdimqr_eval.a"
)
