
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/realizer.cc" "src/CMakeFiles/dimqr_kg.dir/kg/realizer.cc.o" "gcc" "src/CMakeFiles/dimqr_kg.dir/kg/realizer.cc.o.d"
  "/root/repo/src/kg/synth_kg.cc" "src/CMakeFiles/dimqr_kg.dir/kg/synth_kg.cc.o" "gcc" "src/CMakeFiles/dimqr_kg.dir/kg/synth_kg.cc.o.d"
  "/root/repo/src/kg/triple_store.cc" "src/CMakeFiles/dimqr_kg.dir/kg/triple_store.cc.o" "gcc" "src/CMakeFiles/dimqr_kg.dir/kg/triple_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimqr_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
