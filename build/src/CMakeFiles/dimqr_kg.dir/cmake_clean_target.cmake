file(REMOVE_RECURSE
  "libdimqr_kg.a"
)
