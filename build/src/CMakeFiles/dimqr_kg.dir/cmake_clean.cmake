file(REMOVE_RECURSE
  "CMakeFiles/dimqr_kg.dir/kg/realizer.cc.o"
  "CMakeFiles/dimqr_kg.dir/kg/realizer.cc.o.d"
  "CMakeFiles/dimqr_kg.dir/kg/synth_kg.cc.o"
  "CMakeFiles/dimqr_kg.dir/kg/synth_kg.cc.o.d"
  "CMakeFiles/dimqr_kg.dir/kg/triple_store.cc.o"
  "CMakeFiles/dimqr_kg.dir/kg/triple_store.cc.o.d"
  "libdimqr_kg.a"
  "libdimqr_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
