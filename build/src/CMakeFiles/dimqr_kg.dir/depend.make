# Empty dependencies file for dimqr_kg.
# This may be replaced when dependencies are built.
