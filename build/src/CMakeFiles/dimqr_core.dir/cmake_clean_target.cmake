file(REMOVE_RECURSE
  "libdimqr_core.a"
)
