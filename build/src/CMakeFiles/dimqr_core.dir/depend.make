# Empty dependencies file for dimqr_core.
# This may be replaced when dependencies are built.
