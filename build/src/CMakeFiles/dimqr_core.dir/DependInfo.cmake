
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dimension.cc" "src/CMakeFiles/dimqr_core.dir/core/dimension.cc.o" "gcc" "src/CMakeFiles/dimqr_core.dir/core/dimension.cc.o.d"
  "/root/repo/src/core/quantity.cc" "src/CMakeFiles/dimqr_core.dir/core/quantity.cc.o" "gcc" "src/CMakeFiles/dimqr_core.dir/core/quantity.cc.o.d"
  "/root/repo/src/core/rational.cc" "src/CMakeFiles/dimqr_core.dir/core/rational.cc.o" "gcc" "src/CMakeFiles/dimqr_core.dir/core/rational.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/CMakeFiles/dimqr_core.dir/core/rng.cc.o" "gcc" "src/CMakeFiles/dimqr_core.dir/core/rng.cc.o.d"
  "/root/repo/src/core/status.cc" "src/CMakeFiles/dimqr_core.dir/core/status.cc.o" "gcc" "src/CMakeFiles/dimqr_core.dir/core/status.cc.o.d"
  "/root/repo/src/core/unit_expr.cc" "src/CMakeFiles/dimqr_core.dir/core/unit_expr.cc.o" "gcc" "src/CMakeFiles/dimqr_core.dir/core/unit_expr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
