file(REMOVE_RECURSE
  "CMakeFiles/dimqr_core.dir/core/dimension.cc.o"
  "CMakeFiles/dimqr_core.dir/core/dimension.cc.o.d"
  "CMakeFiles/dimqr_core.dir/core/quantity.cc.o"
  "CMakeFiles/dimqr_core.dir/core/quantity.cc.o.d"
  "CMakeFiles/dimqr_core.dir/core/rational.cc.o"
  "CMakeFiles/dimqr_core.dir/core/rational.cc.o.d"
  "CMakeFiles/dimqr_core.dir/core/rng.cc.o"
  "CMakeFiles/dimqr_core.dir/core/rng.cc.o.d"
  "CMakeFiles/dimqr_core.dir/core/status.cc.o"
  "CMakeFiles/dimqr_core.dir/core/status.cc.o.d"
  "CMakeFiles/dimqr_core.dir/core/unit_expr.cc.o"
  "CMakeFiles/dimqr_core.dir/core/unit_expr.cc.o.d"
  "libdimqr_core.a"
  "libdimqr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
