# Empty dependencies file for dimqr_dimeval.
# This may be replaced when dependencies are built.
