file(REMOVE_RECURSE
  "libdimqr_dimeval.a"
)
