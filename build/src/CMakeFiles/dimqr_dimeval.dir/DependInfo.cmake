
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dimeval/benchmark.cc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/benchmark.cc.o" "gcc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/benchmark.cc.o.d"
  "/root/repo/src/dimeval/bootstrap_retrieval.cc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/bootstrap_retrieval.cc.o" "gcc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/bootstrap_retrieval.cc.o.d"
  "/root/repo/src/dimeval/generators.cc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/generators.cc.o" "gcc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/generators.cc.o.d"
  "/root/repo/src/dimeval/semi_auto_annotate.cc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/semi_auto_annotate.cc.o" "gcc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/semi_auto_annotate.cc.o.d"
  "/root/repo/src/dimeval/task.cc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/task.cc.o" "gcc" "src/CMakeFiles/dimqr_dimeval.dir/dimeval/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimqr_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
