file(REMOVE_RECURSE
  "CMakeFiles/dimqr_dimeval.dir/dimeval/benchmark.cc.o"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/benchmark.cc.o.d"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/bootstrap_retrieval.cc.o"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/bootstrap_retrieval.cc.o.d"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/generators.cc.o"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/generators.cc.o.d"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/semi_auto_annotate.cc.o"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/semi_auto_annotate.cc.o.d"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/task.cc.o"
  "CMakeFiles/dimqr_dimeval.dir/dimeval/task.cc.o.d"
  "libdimqr_dimeval.a"
  "libdimqr_dimeval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_dimeval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
