file(REMOVE_RECURSE
  "CMakeFiles/dimqr_kb.dir/kb/catalog.cc.o"
  "CMakeFiles/dimqr_kb.dir/kb/catalog.cc.o.d"
  "CMakeFiles/dimqr_kb.dir/kb/catalog_data_kinds.cc.o"
  "CMakeFiles/dimqr_kb.dir/kb/catalog_data_kinds.cc.o.d"
  "CMakeFiles/dimqr_kb.dir/kb/catalog_data_rules.cc.o"
  "CMakeFiles/dimqr_kb.dir/kb/catalog_data_rules.cc.o.d"
  "CMakeFiles/dimqr_kb.dir/kb/catalog_data_units.cc.o"
  "CMakeFiles/dimqr_kb.dir/kb/catalog_data_units.cc.o.d"
  "CMakeFiles/dimqr_kb.dir/kb/frequency.cc.o"
  "CMakeFiles/dimqr_kb.dir/kb/frequency.cc.o.d"
  "CMakeFiles/dimqr_kb.dir/kb/kb.cc.o"
  "CMakeFiles/dimqr_kb.dir/kb/kb.cc.o.d"
  "CMakeFiles/dimqr_kb.dir/kb/prefix.cc.o"
  "CMakeFiles/dimqr_kb.dir/kb/prefix.cc.o.d"
  "CMakeFiles/dimqr_kb.dir/kb/unit_record.cc.o"
  "CMakeFiles/dimqr_kb.dir/kb/unit_record.cc.o.d"
  "libdimqr_kb.a"
  "libdimqr_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
