
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/catalog.cc" "src/CMakeFiles/dimqr_kb.dir/kb/catalog.cc.o" "gcc" "src/CMakeFiles/dimqr_kb.dir/kb/catalog.cc.o.d"
  "/root/repo/src/kb/catalog_data_kinds.cc" "src/CMakeFiles/dimqr_kb.dir/kb/catalog_data_kinds.cc.o" "gcc" "src/CMakeFiles/dimqr_kb.dir/kb/catalog_data_kinds.cc.o.d"
  "/root/repo/src/kb/catalog_data_rules.cc" "src/CMakeFiles/dimqr_kb.dir/kb/catalog_data_rules.cc.o" "gcc" "src/CMakeFiles/dimqr_kb.dir/kb/catalog_data_rules.cc.o.d"
  "/root/repo/src/kb/catalog_data_units.cc" "src/CMakeFiles/dimqr_kb.dir/kb/catalog_data_units.cc.o" "gcc" "src/CMakeFiles/dimqr_kb.dir/kb/catalog_data_units.cc.o.d"
  "/root/repo/src/kb/frequency.cc" "src/CMakeFiles/dimqr_kb.dir/kb/frequency.cc.o" "gcc" "src/CMakeFiles/dimqr_kb.dir/kb/frequency.cc.o.d"
  "/root/repo/src/kb/kb.cc" "src/CMakeFiles/dimqr_kb.dir/kb/kb.cc.o" "gcc" "src/CMakeFiles/dimqr_kb.dir/kb/kb.cc.o.d"
  "/root/repo/src/kb/prefix.cc" "src/CMakeFiles/dimqr_kb.dir/kb/prefix.cc.o" "gcc" "src/CMakeFiles/dimqr_kb.dir/kb/prefix.cc.o.d"
  "/root/repo/src/kb/unit_record.cc" "src/CMakeFiles/dimqr_kb.dir/kb/unit_record.cc.o" "gcc" "src/CMakeFiles/dimqr_kb.dir/kb/unit_record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimqr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
