file(REMOVE_RECURSE
  "libdimqr_kb.a"
)
