# Empty dependencies file for dimqr_kb.
# This may be replaced when dependencies are built.
