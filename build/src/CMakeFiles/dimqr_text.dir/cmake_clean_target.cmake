file(REMOVE_RECURSE
  "libdimqr_text.a"
)
