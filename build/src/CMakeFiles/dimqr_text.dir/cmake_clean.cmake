file(REMOVE_RECURSE
  "CMakeFiles/dimqr_text.dir/text/corpus.cc.o"
  "CMakeFiles/dimqr_text.dir/text/corpus.cc.o.d"
  "CMakeFiles/dimqr_text.dir/text/embedding.cc.o"
  "CMakeFiles/dimqr_text.dir/text/embedding.cc.o.d"
  "CMakeFiles/dimqr_text.dir/text/levenshtein.cc.o"
  "CMakeFiles/dimqr_text.dir/text/levenshtein.cc.o.d"
  "CMakeFiles/dimqr_text.dir/text/number_scanner.cc.o"
  "CMakeFiles/dimqr_text.dir/text/number_scanner.cc.o.d"
  "CMakeFiles/dimqr_text.dir/text/string_util.cc.o"
  "CMakeFiles/dimqr_text.dir/text/string_util.cc.o.d"
  "CMakeFiles/dimqr_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/dimqr_text.dir/text/tokenizer.cc.o.d"
  "libdimqr_text.a"
  "libdimqr_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
