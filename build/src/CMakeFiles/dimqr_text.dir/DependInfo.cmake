
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/corpus.cc" "src/CMakeFiles/dimqr_text.dir/text/corpus.cc.o" "gcc" "src/CMakeFiles/dimqr_text.dir/text/corpus.cc.o.d"
  "/root/repo/src/text/embedding.cc" "src/CMakeFiles/dimqr_text.dir/text/embedding.cc.o" "gcc" "src/CMakeFiles/dimqr_text.dir/text/embedding.cc.o.d"
  "/root/repo/src/text/levenshtein.cc" "src/CMakeFiles/dimqr_text.dir/text/levenshtein.cc.o" "gcc" "src/CMakeFiles/dimqr_text.dir/text/levenshtein.cc.o.d"
  "/root/repo/src/text/number_scanner.cc" "src/CMakeFiles/dimqr_text.dir/text/number_scanner.cc.o" "gcc" "src/CMakeFiles/dimqr_text.dir/text/number_scanner.cc.o.d"
  "/root/repo/src/text/string_util.cc" "src/CMakeFiles/dimqr_text.dir/text/string_util.cc.o" "gcc" "src/CMakeFiles/dimqr_text.dir/text/string_util.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/dimqr_text.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/dimqr_text.dir/text/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimqr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
