# Empty dependencies file for dimqr_text.
# This may be replaced when dependencies are built.
