file(REMOVE_RECURSE
  "CMakeFiles/dimqr_solver.dir/solver/dimperc.cc.o"
  "CMakeFiles/dimqr_solver.dir/solver/dimperc.cc.o.d"
  "CMakeFiles/dimqr_solver.dir/solver/pipelines.cc.o"
  "CMakeFiles/dimqr_solver.dir/solver/pipelines.cc.o.d"
  "CMakeFiles/dimqr_solver.dir/solver/seq2seq.cc.o"
  "CMakeFiles/dimqr_solver.dir/solver/seq2seq.cc.o.d"
  "libdimqr_solver.a"
  "libdimqr_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
