file(REMOVE_RECURSE
  "libdimqr_solver.a"
)
