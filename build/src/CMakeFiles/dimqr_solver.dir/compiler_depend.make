# Empty compiler generated dependencies file for dimqr_solver.
# This may be replaced when dependencies are built.
