# Empty compiler generated dependencies file for dimqr_lm.
# This may be replaced when dependencies are built.
