file(REMOVE_RECURSE
  "libdimqr_lm.a"
)
