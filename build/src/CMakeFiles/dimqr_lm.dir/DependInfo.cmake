
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lm/mock_llm.cc" "src/CMakeFiles/dimqr_lm.dir/lm/mock_llm.cc.o" "gcc" "src/CMakeFiles/dimqr_lm.dir/lm/mock_llm.cc.o.d"
  "/root/repo/src/lm/ngram_lm.cc" "src/CMakeFiles/dimqr_lm.dir/lm/ngram_lm.cc.o" "gcc" "src/CMakeFiles/dimqr_lm.dir/lm/ngram_lm.cc.o.d"
  "/root/repo/src/lm/transformer.cc" "src/CMakeFiles/dimqr_lm.dir/lm/transformer.cc.o" "gcc" "src/CMakeFiles/dimqr_lm.dir/lm/transformer.cc.o.d"
  "/root/repo/src/lm/vocab.cc" "src/CMakeFiles/dimqr_lm.dir/lm/vocab.cc.o" "gcc" "src/CMakeFiles/dimqr_lm.dir/lm/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimqr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
