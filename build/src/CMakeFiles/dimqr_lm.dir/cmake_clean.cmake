file(REMOVE_RECURSE
  "CMakeFiles/dimqr_lm.dir/lm/mock_llm.cc.o"
  "CMakeFiles/dimqr_lm.dir/lm/mock_llm.cc.o.d"
  "CMakeFiles/dimqr_lm.dir/lm/ngram_lm.cc.o"
  "CMakeFiles/dimqr_lm.dir/lm/ngram_lm.cc.o.d"
  "CMakeFiles/dimqr_lm.dir/lm/transformer.cc.o"
  "CMakeFiles/dimqr_lm.dir/lm/transformer.cc.o.d"
  "CMakeFiles/dimqr_lm.dir/lm/vocab.cc.o"
  "CMakeFiles/dimqr_lm.dir/lm/vocab.cc.o.d"
  "libdimqr_lm.a"
  "libdimqr_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimqr_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
