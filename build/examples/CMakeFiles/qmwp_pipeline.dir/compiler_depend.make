# Empty compiler generated dependencies file for qmwp_pipeline.
# This may be replaced when dependencies are built.
