file(REMOVE_RECURSE
  "CMakeFiles/qmwp_pipeline.dir/qmwp_pipeline.cpp.o"
  "CMakeFiles/qmwp_pipeline.dir/qmwp_pipeline.cpp.o.d"
  "qmwp_pipeline"
  "qmwp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmwp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
