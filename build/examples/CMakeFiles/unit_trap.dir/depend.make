# Empty dependencies file for unit_trap.
# This may be replaced when dependencies are built.
