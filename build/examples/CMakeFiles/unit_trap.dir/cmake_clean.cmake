file(REMOVE_RECURSE
  "CMakeFiles/unit_trap.dir/unit_trap.cpp.o"
  "CMakeFiles/unit_trap.dir/unit_trap.cpp.o.d"
  "unit_trap"
  "unit_trap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
