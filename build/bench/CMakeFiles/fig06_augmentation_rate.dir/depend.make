# Empty dependencies file for fig06_augmentation_rate.
# This may be replaced when dependencies are built.
