file(REMOVE_RECURSE
  "CMakeFiles/fig06_augmentation_rate.dir/fig06_augmentation_rate.cc.o"
  "CMakeFiles/fig06_augmentation_rate.dir/fig06_augmentation_rate.cc.o.d"
  "fig06_augmentation_rate"
  "fig06_augmentation_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_augmentation_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
