# Empty compiler generated dependencies file for fig04_quantity_kinds.
# This may be replaced when dependencies are built.
