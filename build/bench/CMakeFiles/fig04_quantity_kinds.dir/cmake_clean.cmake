file(REMOVE_RECURSE
  "CMakeFiles/fig04_quantity_kinds.dir/fig04_quantity_kinds.cc.o"
  "CMakeFiles/fig04_quantity_kinds.dir/fig04_quantity_kinds.cc.o.d"
  "fig04_quantity_kinds"
  "fig04_quantity_kinds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_quantity_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
