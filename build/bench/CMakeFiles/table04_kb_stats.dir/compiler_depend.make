# Empty compiler generated dependencies file for table04_kb_stats.
# This may be replaced when dependencies are built.
