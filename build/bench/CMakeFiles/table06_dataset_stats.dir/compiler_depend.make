# Empty compiler generated dependencies file for table06_dataset_stats.
# This may be replaced when dependencies are built.
