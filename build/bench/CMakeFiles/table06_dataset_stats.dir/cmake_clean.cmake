file(REMOVE_RECURSE
  "CMakeFiles/table06_dataset_stats.dir/table06_dataset_stats.cc.o"
  "CMakeFiles/table06_dataset_stats.dir/table06_dataset_stats.cc.o.d"
  "table06_dataset_stats"
  "table06_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
