
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_tokenization_ablation.cc" "bench/CMakeFiles/fig07_tokenization_ablation.dir/fig07_tokenization_ablation.cc.o" "gcc" "bench/CMakeFiles/fig07_tokenization_ablation.dir/fig07_tokenization_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimqr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_dimeval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_mwp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dimqr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
