file(REMOVE_RECURSE
  "CMakeFiles/fig07_tokenization_ablation.dir/fig07_tokenization_ablation.cc.o"
  "CMakeFiles/fig07_tokenization_ablation.dir/fig07_tokenization_ablation.cc.o.d"
  "fig07_tokenization_ablation"
  "fig07_tokenization_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tokenization_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
