file(REMOVE_RECURSE
  "CMakeFiles/table09_mwp_accuracy.dir/table09_mwp_accuracy.cc.o"
  "CMakeFiles/table09_mwp_accuracy.dir/table09_mwp_accuracy.cc.o.d"
  "table09_mwp_accuracy"
  "table09_mwp_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_mwp_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
