# Empty compiler generated dependencies file for table09_mwp_accuracy.
# This may be replaced when dependencies are built.
