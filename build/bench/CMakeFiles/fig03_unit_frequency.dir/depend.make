# Empty dependencies file for fig03_unit_frequency.
# This may be replaced when dependencies are built.
