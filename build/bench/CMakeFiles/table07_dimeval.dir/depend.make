# Empty dependencies file for table07_dimeval.
# This may be replaced when dependencies are built.
