file(REMOVE_RECURSE
  "CMakeFiles/table07_dimeval.dir/table07_dimeval.cc.o"
  "CMakeFiles/table07_dimeval.dir/table07_dimeval.cc.o.d"
  "table07_dimeval"
  "table07_dimeval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_dimeval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
