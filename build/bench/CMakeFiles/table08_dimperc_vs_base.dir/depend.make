# Empty dependencies file for table08_dimperc_vs_base.
# This may be replaced when dependencies are built.
