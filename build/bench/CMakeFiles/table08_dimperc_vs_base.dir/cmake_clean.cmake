file(REMOVE_RECURSE
  "CMakeFiles/table08_dimperc_vs_base.dir/table08_dimperc_vs_base.cc.o"
  "CMakeFiles/table08_dimperc_vs_base.dir/table08_dimperc_vs_base.cc.o.d"
  "table08_dimperc_vs_base"
  "table08_dimperc_vs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_dimperc_vs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
