// Quickstart: build the knowledge system and ground quantities in text.
//
//   $ ./build/examples/quickstart
//
// Walks through the library's core loop: DimUnitKB construction, unit
// linking, quantity annotation, dimension-law arithmetic and conversion.

#include <iostream>

#include "linking/annotator.h"

int main() {
  using namespace dimqr;

  // 1. Build the dimensional unit knowledge base (Section III-A).
  auto kb = kb::DimUnitKB::Build().ValueOrDie();
  kb::KbStats stats = kb->Stats();
  std::cout << "DimUnitKB: " << stats.num_units << " units, "
            << stats.num_quantity_kinds << " quantity kinds, "
            << stats.num_dimension_vectors << " dimension vectors\n\n";

  // 2. Look up a unit and its Table II record.
  const kb::UnitRecord* km = &kb->Get(kb->ResolveId("KiloM").ValueOrDie());
  std::cout << "KiloM: " << km->label_en << " / " << km->label_zh
            << ", dimension " << km->dimension.ToFormula() << " ("
            << km->dimension.ToVectorForm() << "), Freq=" << km->frequency
            << "\n\n";

  // 3. Build the unit linker + DimKS annotator (Section III-B).
  auto linker = linking::UnitLinker::Build(kb).ValueOrDie();
  linking::DimKsAnnotator annotator(linker);

  // 4. Ground the paper's introduction example.
  std::string text =
      "LeBron James's height is 2.06 meters and Stephen Curry's height is "
      "188 cm";
  std::cout << "Text: " << text << "\n";
  auto annotations = annotator.Annotate(text);
  std::vector<Quantity> quantities;
  for (const auto& ann : annotations) {
    Quantity q = annotator.ToQuantity(ann).ValueOrDie();
    std::cout << "  found " << q << "  (unit "
              << (ann.HasUnit() ? kb->Get(ann.unit).id : std::string("none"))
              << ", dim " << q.dimension().ToFormula() << ")\n";
    quantities.push_back(q);
  }

  // 5. The dimension law in action: compare across units.
  int cmp = quantities[0].Compare(quantities[1]).ValueOrDie();
  std::cout << "\n2.06 m vs 188 cm: " << (cmp > 0 ? "first" : "second")
            << " is larger -> LeBron James is taller.\n";

  // 6. Exact conversion (Definition 8).
  const UnitId mi = kb->ResolveId("MI").ValueOrDie();
  const UnitId kilom = kb->ResolveId("KiloM").ValueOrDie();
  double factor = kb->ConversionFactor(mi, kilom).ValueOrDie();
  std::cout << "1 mile = " << factor << " kilometres (exact: "
            << kb->Get(mi).exact_conversion->ToString()
            << " m)\n";
  return 0;
}
