// End-to-end Q-MWP pipeline (Section V): generate N-MWP problems, apply
// the four Table V augmentation operators, inspect the gold equations with
// their conversion factors, and score a solver with the calculator.
//
//   $ ./build/examples/qmwp_pipeline

#include <iostream>

#include "mwp/augment.h"
#include "mwp/slotting.h"
#include "mwp/stats.h"
#include "solver/pipelines.h"

int main() {
  using namespace dimqr;
  auto kb = kb::DimUnitKB::Build().ValueOrDie();

  // 1. Generate N-MWP problems (Math23k style).
  mwp::MwpGenerator generator(kb, /*seed=*/4242);
  auto numeric = generator.Generate("n_demo", 60, 0.3).ValueOrDie();
  std::cout << "N-MWP sample:\n  " << numeric[0].problem.text << "\n  gold: "
            << numeric[0].problem.gold_equation.ToString() << " = "
            << numeric[0].problem.answer << " "
            << numeric[0].problem.question_surface << "\n\n";

  // 2. Build the Q-MWP extension (Table V operators).
  mwp::QMwpOptions options;
  options.augmentation_rate = 1.0;
  auto quantitative =
      mwp::BuildQMwp(numeric, "q_demo", *kb, options).ValueOrDie();
  for (const auto& tp : quantitative) {
    if (tp.problem.augmentations.size() >= 2) {
      std::cout << "Q-MWP sample (augmentations:";
      for (const auto& a : tp.problem.augmentations) std::cout << ' ' << a;
      std::cout << "):\n  " << tp.problem.text << "\n  gold: "
                << tp.problem.gold_equation.ToString() << " = "
                << tp.problem.answer << " " << tp.problem.question_surface
                << "\n\n";
      break;
    }
  }

  // 3. Table VI-style statistics.
  mwp::DatasetStats n_stats = mwp::ComputeStats(numeric, "n_demo");
  mwp::DatasetStats q_stats = mwp::ComputeStats(quantitative, "q_demo");
  std::cout << "units: " << n_stats.num_units << " (N) vs "
            << q_stats.num_units << " (Q); mean ops " << n_stats.mean_ops
            << " vs " << q_stats.mean_ops << "\n\n";

  // 4. Train a small solver on the N problems and watch it struggle on Q.
  solver::Seq2SeqConfig config;
  config.arch.d_model = 48;
  config.arch.n_heads = 4;
  config.arch.n_layers = 2;
  config.arch.d_ff = 128;
  config.arch.max_seq = 128;
  auto q_pairs = solver::MakeMwpExamples(quantitative);
  auto model = solver::Seq2SeqModel::Create(
                   "demo", solver::MakeMwpExamples(numeric), config, q_pairs)
                   .ValueOrDie();
  std::cout << "training a micro solver on the N-MWP pool...\n";
  model->TrainEpochs(18).ValueOrDie();
  double n_acc = solver::EvaluateMwpAccuracy(*model, numeric);
  double q_acc = solver::EvaluateMwpAccuracy(*model, quantitative);
  std::cout << "accuracy on N-MWP: " << n_acc * 100.0
            << "%   on Q-MWP: " << q_acc * 100.0
            << "%  (the Table IX gap in miniature)\n";
  return 0;
}
