// The Figure 1 unit trap: a question mixes "poundal" (dimension LMT-2)
// with "dyn/cm" (dimension MT-2). ChatGPT converted between them as if
// they were compatible; dimension perception catches the trap.
//
//   $ ./build/examples/unit_trap

#include <iostream>

#include "linking/annotator.h"

int main() {
  using namespace dimqr;
  auto kb = kb::DimUnitKB::Build().ValueOrDie();
  auto linker = linking::UnitLinker::Build(kb).ValueOrDie();
  linking::DimKsAnnotator annotator(linker);

  std::string question =
      "A force of 0.1 poundal is applied while the surface tension is "
      "5 dyn/cm . Convert the force into dyn/cm .";
  std::cout << "Question: " << question << "\n\n";

  auto annotations = annotator.Annotate(question);
  for (const auto& ann : annotations) {
    if (!ann.HasUnit()) continue;
    const kb::UnitRecord& unit = kb->Get(ann.unit);
    std::cout << "  quantity: " << ann.number.value << " " << ann.unit_text
              << "  -> linked to " << unit.id << ", dimension "
              << unit.dimension.ToFormula() << " ("
              << unit.dimension.ToVectorForm() << ")\n";
  }

  const kb::UnitRecord* poundal =
      &kb->Get(kb->ResolveId("POUNDAL").ValueOrDie());
  const kb::UnitRecord* dyn_cm =
      &kb->Get(kb->ResolveId("DYN-PER-CentiM").ValueOrDie());
  std::cout << "\nDimension check: dim(poundal) = "
            << poundal->dimension.ToFormula() << ", dim(dyn/cm) = "
            << dyn_cm->dimension.ToFormula() << "\n";

  Result<double> conversion =
      poundal->Semantics().ConversionFactorTo(dyn_cm->Semantics());
  if (!conversion.ok()) {
    std::cout << "Conversion rejected: " << conversion.status() << "\n"
              << "\nVerdict: the question contains a UNIT TRAP — poundal "
                 "(a force) cannot be converted\ninto dyn/cm (a force per "
                 "length). The dimension law blocks the bogus inference\n"
                 "that tripped the LLM in Fig. 1.\n";
  } else {
    std::cout << "Unexpectedly converted with factor " << *conversion << "\n";
  }

  // What WOULD be legal: poundal -> dyne (both LMT-2).
  double to_dyne = kb->ConversionFactor(kb->ResolveId("POUNDAL").ValueOrDie(),
                                       kb->ResolveId("DYN").ValueOrDie())
                       .ValueOrDie();
  std::cout << "\nA legal conversion instead: 0.1 poundal = "
            << 0.1 * to_dyne << " dyne.\n";
  return 0;
}
