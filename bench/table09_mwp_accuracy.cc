// Reproduces Table IX: accuracy on N-MWP and Q-MWP for the published
// baselines (simulated) and our supervised models:
//  - "LLaMa (sft)" analogue: the seq2seq model trained on N-MWP only —
//    strong on N-*, weak on Q-* (the paper's point about N-MWP-trained
//    models);
//  - DimPerc: the same model trained on DimEval knowledge + Q-MWP
//    augmented data — holds up on Q-* (RQ3).

#include <iostream>

#include "bench/common.h"
#include "eval/table.h"
#include "lm/mock_llm.h"

int main(int argc, char** argv) {
  dimqr::benchutil::InitFromArgs(argc, argv);
  using namespace dimqr;
  using eval::TablePrinter;
  const benchutil::MwpDatasets& d = benchutil::GetMwpDatasets();
  solver::Seq2SeqConfig config = benchutil::BenchModelConfig();

  std::cout << "=== Table IX: accuracy on N-MWP and Q-MWP ===\n"
            << "(LLM rows: calibrated simulators of the published numbers; "
               "supervised rows: measured)\n\n";
  TablePrinter table(
      {"Model", "N-Math23k", "N-Ape210k", "Q-Math23k", "Q-Ape210k"});

  for (const std::shared_ptr<lm::Model>& model : lm::BuildPaperBaselines()) {
    lm::MockLlm* mock = dynamic_cast<lm::MockLlm*>(model.get());
    if (mock == nullptr) continue;
    // Only models with MWP profiles belong in Table IX.
    if (mock->ProfileFor("n_math23k").precision == 0.25) continue;
    std::cerr << "[table09] evaluating " << model->name() << "...\n";
    table.AddRow({model->name(),
                  TablePrinter::Pct(
                      solver::EvaluateMwpAccuracy(*model, d.n_math23k)),
                  TablePrinter::Pct(
                      solver::EvaluateMwpAccuracy(*model, d.n_ape210k)),
                  TablePrinter::Pct(
                      solver::EvaluateMwpAccuracy(*model, d.q_math23k)),
                  TablePrinter::Pct(
                      solver::EvaluateMwpAccuracy(*model, d.q_ape210k))});
  }
  table.AddSeparator();

  // N-MWP-only supervised baseline.
  std::cerr << "[table09] training the N-MWP supervised baseline...\n";
  std::vector<solver::SeqExample> n_train =
      solver::MakeMwpExamples(d.train_n_math23k);
  std::vector<solver::SeqExample> n_train2 =
      solver::MakeMwpExamples(d.train_n_ape210k);
  n_train.insert(n_train.end(), n_train2.begin(), n_train2.end());
  // Q-MWP training pairs enter the vocabulary so the comparison is about
  // training data, not token coverage.
  std::vector<solver::SeqExample> q_train =
      solver::MakeMwpExamples(d.train_q_math23k);
  std::vector<solver::SeqExample> q_train2 =
      solver::MakeMwpExamples(d.train_q_ape210k);
  q_train.insert(q_train.end(), q_train2.begin(), q_train2.end());
  auto n_model =
      solver::Seq2SeqModel::Create("LLaMa-sft (N-MWP)", n_train, config,
                                   q_train)
          .ValueOrDie();
  n_model->TrainEpochs(benchutil::MwpEpochs()).ValueOrDie();
  table.AddRow({n_model->name(),
                TablePrinter::Pct(
                    solver::EvaluateMwpAccuracy(*n_model, d.n_math23k)),
                TablePrinter::Pct(
                    solver::EvaluateMwpAccuracy(*n_model, d.n_ape210k)),
                TablePrinter::Pct(
                    solver::EvaluateMwpAccuracy(*n_model, d.q_math23k)),
                TablePrinter::Pct(
                    solver::EvaluateMwpAccuracy(*n_model, d.q_ape210k))});

  // DimPerc: trained on N-MWP + augmented Q-MWP data (Section V-B).
  std::cerr << "[table09] training DimPerc (N+Q augmented)...\n";
  std::vector<solver::SeqExample> dimperc_train = n_train;
  dimperc_train.insert(dimperc_train.end(), q_train.begin(), q_train.end());
  auto dimperc =
      solver::Seq2SeqModel::Create("DimPerc (ours)", dimperc_train, config)
          .ValueOrDie();
  dimperc->TrainEpochs(benchutil::MwpEpochs()).ValueOrDie();
  double dp_nm = solver::EvaluateMwpAccuracy(*dimperc, d.n_math23k);
  double dp_na = solver::EvaluateMwpAccuracy(*dimperc, d.n_ape210k);
  double dp_qm = solver::EvaluateMwpAccuracy(*dimperc, d.q_math23k);
  double dp_qa = solver::EvaluateMwpAccuracy(*dimperc, d.q_ape210k);
  table.AddRow({dimperc->name(), TablePrinter::Pct(dp_nm),
                TablePrinter::Pct(dp_na), TablePrinter::Pct(dp_qm),
                TablePrinter::Pct(dp_qa)});
  table.Print(std::cout);

  double base_qm = solver::EvaluateMwpAccuracy(*n_model, d.q_math23k);
  double base_qa = solver::EvaluateMwpAccuracy(*n_model, d.q_ape210k);
  std::cout << "\nShape checks:\n"
            << "  DimPerc > N-MWP-trained baseline on Q-MWP: "
            << (dp_qm > base_qm && dp_qa > base_qa ? "PRESERVED" : "VIOLATED")
            << "\n  DimPerc retains N-MWP competence (within 10 pts of "
               "baseline): "
            << (dp_nm + 0.10 >=
                        solver::EvaluateMwpAccuracy(*n_model, d.n_math23k)
                    ? "PRESERVED"
                    : "VIOLATED")
            << "\n";
  return 0;
}
