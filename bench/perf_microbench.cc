// Google-benchmark micro-benchmarks over the core substrates, including
// the DESIGN.md ablation of exact-rational vs double-only conversion
// chains. These measure throughput; the table/figure binaries measure the
// paper's experimental results.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "core/fault.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "dimeval/generators.h"
#include "eval/fleet.h"
#include "eval/harness.h"
#include "lm/kernels.h"
#include "lm/mock_llm.h"
#include "lm/resilient_model.h"
#include "lm/transformer.h"
#include "mwp/equation.h"
#include "serve/loadgen.h"
#include "serve/report.h"
#include "serve/server.h"
#include "solver/pipelines.h"
#include "solver/seq2seq.h"
#include "text/levenshtein.h"
#include "text/string_util.h"

namespace {

using namespace dimqr;

// ---------------------------------------------------------------------
// Legacy string-keyed replicas. These reconstruct the unordered_map
// indexes and the flattened linker naming dictionary that the interned
// identity layer (core/interner.h) retired, so the speedup of the handle
// paths stays measurable against the real old implementation.

struct LegacyKbIndex {
  std::unordered_map<std::string, std::size_t> by_id;
  std::unordered_map<std::string, std::vector<std::size_t>> by_surface;
  std::unordered_map<std::string, std::vector<std::size_t>> by_surface_lower;
  /// (surface form, unit index) pairs, the old linker candidate source.
  std::vector<std::pair<std::string, std::size_t>> naming_dictionary;
};

const LegacyKbIndex& GetLegacyIndex() {
  static const LegacyKbIndex* const kIndex = [] {
    auto* idx = new LegacyKbIndex();
    const std::vector<kb::UnitRecord>& units = benchutil::GetWorld().kb->units();
    for (std::size_t i = 0; i < units.size(); ++i) {
      idx->by_id[std::string(units[i].id)] = i;
      for (std::string_view surface : units[i].SurfaceForms()) {
        if (surface.empty()) continue;
        idx->by_surface[std::string(surface)].push_back(i);
        idx->by_surface_lower[text::ToLowerAscii(surface)].push_back(i);
        idx->naming_dictionary.emplace_back(std::string(surface), i);
      }
    }
    return idx;
  }();
  return *kIndex;
}

/// Replica of the retired string-keyed DimUnitKB::FindBySurface: per-call
/// std::string key materialization, hash probes and a freshly allocated
/// result vector.
std::vector<const kb::UnitRecord*> LegacyFindBySurface(
    std::string_view surface) {
  const LegacyKbIndex& idx = GetLegacyIndex();
  const std::vector<kb::UnitRecord>& units = benchutil::GetWorld().kb->units();
  std::vector<const kb::UnitRecord*> out;
  auto exact = idx.by_surface.find(std::string(surface));
  if (exact != idx.by_surface.end()) {
    for (std::size_t i : exact->second) out.push_back(&units[i]);
    return out;
  }
  auto lower = idx.by_surface_lower.find(text::ToLowerAscii(surface));
  if (lower != idx.by_surface_lower.end()) {
    for (std::size_t i : lower->second) out.push_back(&units[i]);
  }
  return out;
}

void BM_DimensionTimes(benchmark::State& state) {
  Dimension force = dims::Force();
  Dimension velocity = dims::Velocity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(force.Times(velocity));
  }
}
BENCHMARK(BM_DimensionTimes);

void BM_RationalConversionChain(benchmark::State& state) {
  // mile -> yard -> foot -> inch -> centimetre, exactly.
  Rational mile_to_yd = Rational::Of(1760, 1).ValueOrDie();
  Rational yd_to_ft = Rational::Of(3, 1).ValueOrDie();
  Rational ft_to_in = Rational::Of(12, 1).ValueOrDie();
  Rational in_to_cm = Rational::Of(254, 100).ValueOrDie();
  for (auto _ : state) {
    Rational acc = Rational(1);
    acc = acc.Mul(mile_to_yd).ValueOrDie();
    acc = acc.Mul(yd_to_ft).ValueOrDie();
    acc = acc.Mul(ft_to_in).ValueOrDie();
    acc = acc.Mul(in_to_cm).ValueOrDie();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RationalConversionChain);

void BM_DoubleConversionChain(benchmark::State& state) {
  // The ablation counterpart: double-only chain (fast but drifts).
  for (auto _ : state) {
    double acc = 1.0;
    acc *= 1760.0;
    acc *= 3.0;
    acc *= 12.0;
    acc *= 2.54;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DoubleConversionChain);

void BM_KbFindBySurface(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->FindBySurface("km"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("kilograms"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("千克"));
  }
}
BENCHMARK(BM_KbFindBySurface);

void BM_KbFindBySurfaceSpan(benchmark::State& state) {
  // The interned path: SymbolTable lookup + CSR span, zero allocation.
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->FindBySurface("km"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("kilograms"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("千克"));
  }
}
BENCHMARK(BM_KbFindBySurfaceSpan);

void BM_KbFindBySurfaceLegacyMap(benchmark::State& state) {
  // The retired path, same three queries.
  GetLegacyIndex();  // build outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(LegacyFindBySurface("km"));
    benchmark::DoNotOptimize(LegacyFindBySurface("kilograms"));
    benchmark::DoNotOptimize(LegacyFindBySurface("千克"));
  }
}
BENCHMARK(BM_KbFindBySurfaceLegacyMap);

void BM_KbConversionFactor(benchmark::State& state) {
  // Resolve-by-string then convert: what a caller starting from UnitID
  // strings pays per call (compare against BM_ConversionFactorCached).
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->ConversionFactor(
        world.kb->IdOf("MI"), world.kb->IdOf("KiloM")));
  }
}
BENCHMARK(BM_KbConversionFactor);

void BM_ConversionFactorCached(benchmark::State& state) {
  // Handles resolved once, then every call is two array reads into the
  // per-dimension-class memo table.
  const auto& world = benchutil::GetWorld();
  const UnitId mi = world.kb->IdOf("MI");
  const UnitId km = world.kb->IdOf("KiloM");
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->ConversionFactor(mi, km));
  }
}
BENCHMARK(BM_ConversionFactorCached);

void BM_ConversionFactorLegacyString(benchmark::State& state) {
  // Replica of the retired path: two string-keyed id lookups plus a full
  // exact-rational factor computation on every call.
  const auto& world = benchutil::GetWorld();
  const LegacyKbIndex& idx = GetLegacyIndex();
  const std::vector<kb::UnitRecord>& units = world.kb->units();
  for (auto _ : state) {
    const kb::UnitRecord& from = units[idx.by_id.find(std::string("MI"))->second];
    const kb::UnitRecord& to =
        units[idx.by_id.find(std::string("KiloM"))->second];
    benchmark::DoNotOptimize(
        from.Semantics().ConversionFactorTo(to.Semantics()));
  }
}
BENCHMARK(BM_ConversionFactorLegacyString);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::LevenshteinSimilarity("kilometre per hour", "kilometer/hr"));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_UnitLinking(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.linker->Link("km/h", "the train travelled fast"));
  }
}
BENCHMARK(BM_UnitLinking);

void BM_LinkerLinkHotPath(benchmark::State& state) {
  // Full interned hot path: one edit-distance call per distinct lowercased
  // surface, postings fan-out into flat arrays, then context scoring.
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.linker->Link("km", "the distance of the trip"));
  }
}
BENCHMARK(BM_LinkerLinkHotPath);

void BM_LinkerCandidateGenLegacyDict(benchmark::State& state) {
  // Replica of the retired candidate-generation step alone (no context
  // scoring): scan the flattened (surface, unit) dictionary with one
  // edit-distance call per pair, collecting best scores in a hash map.
  const auto& world = benchutil::GetWorld();
  const LegacyKbIndex& idx = GetLegacyIndex();
  const double threshold = world.linker->config().mention_threshold;
  for (auto _ : state) {
    std::unordered_map<std::size_t, double> best_similarity;
    for (const auto& [surface, index] : idx.naming_dictionary) {
      double sim = text::LevenshteinSimilarityIgnoreCase(surface, "km");
      if (sim < threshold) continue;
      auto it = best_similarity.find(index);
      if (it == best_similarity.end() || sim > it->second) {
        best_similarity[index] = sim;
      }
    }
    benchmark::DoNotOptimize(best_similarity);
  }
}
BENCHMARK(BM_LinkerCandidateGenLegacyDict);

void BM_AnnotateSentence(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.annotator->Annotate(
        "LeBron James's height is 2.06 meters and Stephen Curry's height "
        "is 188 cm"));
  }
}
BENCHMARK(BM_AnnotateSentence);

void BM_EquationParseEvaluate(benchmark::State& state) {
  for (auto _ : state) {
    mwp::Equation eq =
        mwp::Equation::Parse("150*20%/5%-150").ValueOrDie();
    benchmark::DoNotOptimize(eq.Evaluate().ValueOrDie());
  }
}
BENCHMARK(BM_EquationParseEvaluate);

// ---------------------------------------------------------------------
// Parallel runtime: blocked-vs-naive kernels and thread sweeps. The sweep
// benches take the thread count as their range argument; on a single-core
// host the >1 entries measure pool overhead rather than speedup.

// Sized so the right-hand matrix (2048 x 2048 x 4 B = 16 MiB) blows out
// L2: this is the regime cache blocking exists for. At transformer-sized
// operands the kernels fall back to the naive loop order (see
// lm/kernels.cc), so a small-matrix comparison would measure nothing.
constexpr std::size_t kMatM = 128, kMatK = 2048, kMatN = 2048;

void BM_MatMulBlocked(benchmark::State& state) {
  std::vector<float> a(kMatM * kMatK), b(kMatK * kMatN), c(kMatM * kMatN);
  Rng rng(11);
  for (float& x : a) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (auto _ : state) {
    lm::kernels::MatMul(a.data(), b.data(), c.data(), kMatM, kMatK, kMatN);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulBlocked);

void BM_MatMulNaive(benchmark::State& state) {
  std::vector<float> a(kMatM * kMatK), b(kMatK * kMatN), c(kMatM * kMatN);
  Rng rng(11);
  for (float& x : a) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (auto _ : state) {
    lm::kernels::MatMulNaive(a.data(), b.data(), c.data(), kMatM, kMatK,
                             kMatN);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulNaive);

void BM_MatMulScalarTier(benchmark::State& state) {
  // The pre-SIMD blocked kernel, pinned to the scalar tier: the published
  // BM_MatMulBlocked / BM_MatMulScalarTier ratio is the SIMD speedup claim.
  lm::kernels::ScopedIsaForTest forced(lm::kernels::Isa::kScalar);
  std::vector<float> a(kMatM * kMatK), b(kMatK * kMatN), c(kMatM * kMatN);
  Rng rng(11);
  for (float& x : a) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (auto _ : state) {
    lm::kernels::MatMul(a.data(), b.data(), c.data(), kMatM, kMatK, kMatN);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulScalarTier);

void BM_MatMul(benchmark::State& state) {
  // Shape sweep over the regimes decode actually runs: m=1 is the GEMV
  // every Step pays against the D x V output head, m=8 a short batched
  // prefill, and the prime/odd point exercises every tail path (no
  // dimension is a multiple of any vector width or block size).
  const int m = static_cast<int>(state.range(0));
  const int kk = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  std::vector<float> a(static_cast<std::size_t>(m) * kk);
  std::vector<float> b(static_cast<std::size_t>(kk) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  Rng rng(11);
  for (float& x : a) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (auto _ : state) {
    lm::kernels::MatMul(a.data(), b.data(), c.data(), m, kk, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(m) * kk * n);
}
BENCHMARK(BM_MatMul)
    ->Args({1, 64, 32768})    // decode head GEMV (DecodeBenchConfig shape)
    ->Args({8, 64, 32768})    // short batched prefill against the head
    ->Args({1, 256, 64})      // decode FFN down-projection GEMV
    ->Args({61, 127, 509});   // all-prime: every remainder path at once

void BM_MatMulInt8(benchmark::State& state) {
  // The quantized counterpart of the m=1 head GEMV: weights int8 with
  // per-row scales, activations fp32. Compare against BM_MatMul/1/64/32768.
  const int m = static_cast<int>(state.range(0));
  const int kk = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  std::vector<float> a(static_cast<std::size_t>(m) * kk);
  std::vector<float> w(static_cast<std::size_t>(kk) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  Rng rng(11);
  for (float& x : a) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (float& x : w) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  std::vector<std::int8_t> q(w.size());
  std::vector<float> scales(static_cast<std::size_t>(kk));
  lm::kernels::QuantizeRowsInt8(w.data(), kk, n, q.data(), scales.data());
  for (auto _ : state) {
    lm::kernels::MatMulInt8(a.data(), q.data(), scales.data(), c.data(), m,
                            kk, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(m) * kk * n);
}
BENCHMARK(BM_MatMulInt8)->Args({1, 64, 32768})->Args({8, 64, 32768});

void BM_TrainBatch(benchmark::State& state) {
  ScopedParallelism scope(static_cast<int>(state.range(0)));
  lm::TransformerConfig config;
  config.vocab_size = 64;
  config.d_model = 32;
  config.n_heads = 4;
  config.n_layers = 2;
  config.d_ff = 96;
  config.max_seq = 32;
  config.seed = 13;
  lm::Transformer model = lm::Transformer::Create(config).ValueOrDie();
  Rng rng(17);
  std::vector<lm::LmExample> batch;
  for (int i = 0; i < 16; ++i) {
    lm::LmExample e;
    int x = static_cast<int>(rng.UniformInt(4, 62));
    int y = static_cast<int>(rng.UniformInt(4, 62));
    e.tokens = {1, x, y, 3, x, y, 2};
    e.loss_mask = {0, 0, 0, 0, 1, 1, 1};
    batch.push_back(std::move(e));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainBatch(batch, 1e-3).ValueOrDie());
  }
}
BENCHMARK(BM_TrainBatch)->DenseRange(1, 8);

void BM_EvalDimEval(benchmark::State& state) {
  ScopedParallelism scope(static_cast<int>(state.range(0)));
  // Self-contained choice-task set: generator instances + calibrated mock,
  // small enough to re-run per iteration without the full DimEval fixture.
  static const std::vector<dimeval::TaskInstance>* const kInstances = [] {
    dimeval::TaskGenerator gen(benchutil::GetWorld().kb);
    return new std::vector<dimeval::TaskInstance>(
        gen.UnitConversion(96).ValueOrDie());
  }();
  std::vector<const dimeval::TaskInstance*> tests;
  tests.reserve(kInstances->size());
  for (const dimeval::TaskInstance& inst : *kInstances) {
    tests.push_back(&inst);
  }
  lm::MockLlm mock("Bench", {{"unit_conversion", {0.6, 0.9}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateChoiceTask(mock, tests));
  }
}
BENCHMARK(BM_EvalDimEval)->DenseRange(1, 8);

void BM_EvalDimEvalFaulty(benchmark::State& state) {
  // Overhead of the resilience layer on the same choice-task evaluation:
  // Arg(0) measures the clean fast path (no faults configured — the wrapper
  // must cost <3% over BM_EvalDimEval/4), Arg(20) measures 20% transient
  // faults with retries (every fault recovers; the row stays identical).
  ScopedParallelism scope(4);
  const int fault_pct = static_cast<int>(state.range(0));
  if (fault_pct > 0) {
    std::string spec = "lm.answer_choice:0." +
                       std::to_string(fault_pct / 10) + ":transient";
    if (!FaultRegistry::Global().Configure(spec).ok()) {
      state.SkipWithError("bad fault spec");
      return;
    }
  } else {
    FaultRegistry::Global().Clear();
  }
  static const std::vector<dimeval::TaskInstance>* const kInstances = [] {
    dimeval::TaskGenerator gen(benchutil::GetWorld().kb);
    return new std::vector<dimeval::TaskInstance>(
        gen.UnitConversion(96).ValueOrDie());
  }();
  std::vector<const dimeval::TaskInstance*> tests;
  tests.reserve(kInstances->size());
  for (const dimeval::TaskInstance& inst : *kInstances) {
    tests.push_back(&inst);
  }
  lm::MockLlm mock("Bench", {{"unit_conversion", {0.6, 0.9}}});
  lm::ResilientModel resilient(mock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateChoiceTask(resilient, tests));
  }
  FaultRegistry::Global().Clear();
}
BENCHMARK(BM_EvalDimEvalFaulty)->Arg(0)->Arg(20);

void BM_FleetEval(benchmark::State& state) {
  // Fork/supervise/merge overhead of the process fleet as the worker count
  // grows: the simulated Table VII baselines over a small DimEval build,
  // fanned out over range(0) forked workers. The models are calibrated
  // samplers, so per-item work is small and the fleet machinery (fork,
  // pipes, frame parsing, payload merge) dominates the scaling curve. On a
  // single-core host the >1 entries measure supervision overhead rather
  // than speedup.
  static const dimeval::DimEvalBenchmark* const kBench = [] {
    dimeval::BenchmarkOptions options;
    options.train_per_task = 8;
    options.test_per_task = 24;
    options.extraction_corpus_sentences = 120;
    return new dimeval::DimEvalBenchmark(
        dimeval::BuildDimEval(benchutil::GetWorld().kb,
                              *benchutil::GetWorld().annotator, options)
            .ValueOrDie());
  }();
  std::vector<eval::FleetModelSpec> specs;
  for (const std::shared_ptr<lm::Model>& model : lm::BuildPaperBaselines()) {
    if (model->name() == "BertGen" || model->name() == "LLaMa") continue;
    specs.push_back({model, nullptr});
  }
  eval::FleetEvalOptions options;
  options.workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto rows = eval::RunFleetDimEval(specs, *kBench, options);
    if (!rows.ok()) {
      state.SkipWithError("fleet eval failed");
      return;
    }
    benchmark::DoNotOptimize(rows.ValueOrDie().size());
  }
}
BENCHMARK(BM_FleetEval)->DenseRange(1, 8);

// ---------------------------------------------------------------------
// Inference fast path: batched prefill vs the retired per-token prompt
// loop, and the prompt-prefix KV cache under the real eval harness.

// A realistic output head (D x V) dominates per-token cost: the old path
// paid it for every prompt token and threw the logits away; batched
// Prefill pays it once per prompt. The vocabulary is sized like the LLaMA
// tokenizer of the paper's reference model (32k) so the head/body cost
// ratio matches the deployment regime the optimization targets.
lm::TransformerConfig DecodeBenchConfig() {
  lm::TransformerConfig c;
  c.vocab_size = 32768;
  c.d_model = 64;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 256;
  c.max_seq = 96;
  c.seed = 29;
  return c;
}

const lm::Transformer& DecodeBenchModel() {
  static const lm::Transformer* const kModel = new lm::Transformer(
      lm::Transformer::Create(DecodeBenchConfig()).ValueOrDie());
  return *kModel;
}

std::vector<int> DecodeBenchPrompt(int len) {
  Rng rng(101);
  std::vector<int> prompt;
  prompt.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    prompt.push_back(static_cast<int>(rng.UniformInt(6, 32767)));
  }
  return prompt;
}

constexpr int kDecodeNewTokens = 16;
constexpr int kDecodeNeverEos = -1;  // argmax is >= 0, so decode runs full

void BM_GreedyDecode(benchmark::State& state) {
  // The fast path as shipped: one batched Prefill of the prompt (range(0)
  // tokens), then 16 incremental Steps, all through a reused arena.
  const lm::Transformer& model = DecodeBenchModel();
  std::vector<int> prompt =
      DecodeBenchPrompt(static_cast<int>(state.range(0)));
  lm::DecodeState arena;
  arena.Bind(model.config());
  for (auto _ : state) {
    auto out = model.Greedy(prompt, kDecodeNewTokens, kDecodeNeverEos, arena,
                            nullptr);
    if (!out.ok()) {
      state.SkipWithError("greedy failed");
      return;
    }
    benchmark::DoNotOptimize(out.ValueOrDie().data());
  }
}
BENCHMARK(BM_GreedyDecode)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_GreedyDecodeInt8(benchmark::State& state) {
  // Same decode as BM_GreedyDecode, through the int8 weight-quantized
  // path: per-row-scaled int8 weight panels, fp32 activations and
  // accumulation. The D x V head dominates, so this is the deployment
  // number the quantized path exists for.
  static const lm::Transformer* const kInt8Model = [] {
    auto* m = new lm::Transformer(DecodeBenchModel());
    m->EnableInt8Decode(true);
    return m;
  }();
  const lm::Transformer& model = *kInt8Model;
  std::vector<int> prompt =
      DecodeBenchPrompt(static_cast<int>(state.range(0)));
  lm::DecodeState arena;
  arena.Bind(model.config());
  for (auto _ : state) {
    auto out = model.Greedy(prompt, kDecodeNewTokens, kDecodeNeverEos, arena,
                            nullptr);
    if (!out.ok()) {
      state.SkipWithError("greedy failed");
      return;
    }
    benchmark::DoNotOptimize(out.ValueOrDie().data());
  }
}
BENCHMARK(BM_GreedyDecodeInt8)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_GreedyDecodePerToken(benchmark::State& state) {
  // Replica of the pre-PR decode loop: every prompt token went through a
  // full Step — including the D x V output head whose logits were then
  // discarded. (This replica even reuses the arena; the retired code also
  // reallocated its caches per call, so the measured gap is conservative.)
  const lm::Transformer& model = DecodeBenchModel();
  std::vector<int> prompt =
      DecodeBenchPrompt(static_cast<int>(state.range(0)));
  lm::DecodeState arena;
  arena.Bind(model.config());
  for (auto _ : state) {
    arena.Rewind();
    bool ok = true;
    for (int tok : prompt) ok = ok && model.Step(arena, tok).ok();
    for (int g = 0; ok && g < kDecodeNewTokens; ++g) {
      ok = model.Step(arena, lm::ArgmaxLowest(arena.logits())).ok();
    }
    if (!ok) {
      state.SkipWithError("step failed");
      return;
    }
    benchmark::DoNotOptimize(arena.logits().data());
  }
}
BENCHMARK(BM_GreedyDecodePerToken)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_PrefillBatched(benchmark::State& state) {
  // Prefill alone (no generation): one multi-row forward pass per
  // iteration into a warm arena — zero allocations in the timed region.
  const lm::Transformer& model = DecodeBenchModel();
  std::vector<int> prompt =
      DecodeBenchPrompt(static_cast<int>(state.range(0)));
  lm::DecodeState arena;
  arena.Bind(model.config());
  for (auto _ : state) {
    arena.Rewind();
    if (!model.Prefill(prompt, arena).ok()) {
      state.SkipWithError("prefill failed");
      return;
    }
    benchmark::DoNotOptimize(arena.logits().data());
  }
}
BENCHMARK(BM_PrefillBatched)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EvalDimEvalPrefixCache(benchmark::State& state) {
  // End-to-end choice evaluation through the trainable Seq2SeqModel (real
  // greedy decoding, 4 eval threads) with the prompt-prefix KV cache off
  // (Arg 0) vs on (Arg 1). DimEval prompts share instruction stems, so
  // with the cache on only each prompt's unshared tail is prefilled.
  ScopedParallelism scope(4);
  static const std::vector<dimeval::TaskInstance>* const kInstances = [] {
    dimeval::TaskGenerator gen(benchutil::GetWorld().kb);
    return new std::vector<dimeval::TaskInstance>(
        gen.UnitConversion(64).ValueOrDie());
  }();
  static solver::Seq2SeqModel* const kModel = [] {
    solver::Seq2SeqConfig config;
    config.max_generated_tokens = 24;
    return solver::Seq2SeqModel::Create(
               "BenchSeq2Seq", solver::MakeDimEvalExamples(*kInstances),
               config)
        .ValueOrDie()
        .release();
  }();
  std::vector<const dimeval::TaskInstance*> tests;
  tests.reserve(kInstances->size());
  for (const dimeval::TaskInstance& inst : *kInstances) {
    tests.push_back(&inst);
  }
  kModel->set_prefix_cache_enabled(state.range(0) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateChoiceTask(*kModel, tests));
  }
}
BENCHMARK(BM_EvalDimEvalPrefixCache)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------
// Cold start: the startup cost the snapshot layer exists to delete.
// BM_ColdStartBuild pays the full build (parse the seed tables, assign
// frequencies, intern, index); BM_ColdStartSnapshot maps a packed file
// and aliases it zero-copy. The file is packed once, outside any timed
// region.

const std::string& ColdStartSnapshotPath() {
  static const std::string* const kPath = [] {
    const char* tmp = std::getenv("TMPDIR");
    auto* path = new std::string(std::string(tmp != nullptr ? tmp : "/tmp") +
                                 "/dimqr_coldstart_bench.dqs");
    snapshot::SnapshotWriter writer;
    std::shared_ptr<const kb::DimUnitKB> kb =
        kb::DimUnitKB::Build().ValueOrDie();
    if (!kb->WriteSnapshot(writer).ok() || !writer.WriteFile(*path).ok()) {
      std::fprintf(stderr, "cold-start pack failed: %s\n", path->c_str());
      std::exit(1);
    }
    return path;
  }();
  return *kPath;
}

void BM_ColdStartBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto kb = kb::DimUnitKB::Build();
    if (!kb.ok()) {
      state.SkipWithError("build failed");
      return;
    }
    benchmark::DoNotOptimize(kb.ValueOrDie()->units().size());
  }
}
BENCHMARK(BM_ColdStartBuild);

void BM_ColdStartMapOnly(benchmark::State& state) {
  // Container cost alone: mmap + header/section-table parse + whole-file
  // CRC-32C. The gap to BM_ColdStartSnapshot is the KB loader proper.
  const std::string& path = ColdStartSnapshotPath();
  for (auto _ : state) {
    auto snap = snapshot::Snapshot::Map(path);
    if (!snap.ok()) {
      state.SkipWithError("map failed");
      return;
    }
    benchmark::DoNotOptimize(snap.ValueOrDie()->view().size_bytes());
  }
}
BENCHMARK(BM_ColdStartMapOnly);

void BM_ColdStartSnapshot(benchmark::State& state) {
  const std::string& path = ColdStartSnapshotPath();
  for (auto _ : state) {
    auto snap = snapshot::Snapshot::Map(path);
    if (!snap.ok()) {
      state.SkipWithError("map failed");
      return;
    }
    auto kb = kb::DimUnitKB::FromSnapshot(snap.ValueOrDie());
    if (!kb.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(kb.ValueOrDie()->units().size());
  }
}
BENCHMARK(BM_ColdStartSnapshot);

// ---------------------------------------------------------------------
// Serving layer: continuous batching over the decode bench model. The
// trace is generated once (seeded, outside the timed region); each
// iteration replays it through a fresh Server. Wall time measures the
// scheduler + batched decode; the counters surface the simulated-clock
// service metrics (latency percentiles, shed/deadline rates) that
// BENCH_perf.json publishes.

constexpr int kServeNeverEos = -1;  // argmax is >= 0, so decodes run full

void BM_ServeThroughput(benchmark::State& state) {
  // Steady offered load, roomy queue: measures batched decode throughput
  // as the batch width (slots) grows.
  const lm::Transformer& model = DecodeBenchModel();
  serve::LoadGenConfig load;
  load.num_requests = 48;
  load.seed = 7;
  load.vocab_size = model.config().vocab_size;
  load.stem_tokens = 24;
  load.max_tail_tokens = 8;
  load.max_new_tokens = 12;
  load.max_burst = 4;
  load.max_gap_ticks = 4;
  const std::vector<serve::ServeRequest> trace = serve::GenerateLoad(load);
  serve::ServerConfig config;
  config.slots = static_cast<int>(state.range(0));
  config.eos_token = kServeNeverEos;
  config.admission.queue_capacity = 128;
  serve::ServeReport report;
  for (auto _ : state) {
    serve::Server server(model, config);
    auto outcomes = server.Run(trace);
    if (!outcomes.ok()) {
      state.SkipWithError("serve run failed");
      return;
    }
    report = serve::BuildReport(outcomes.ValueOrDie());
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(report.generated_tokens));
  state.counters["sim_tokens_per_tick"] = report.TokensPerTick();
  state.counters["sim_p50_ticks"] =
      static_cast<double>(report.p50_latency_ticks);
  state.counters["sim_p99_ticks"] =
      static_cast<double>(report.p99_latency_ticks);
}
BENCHMARK(BM_ServeThroughput)->Arg(2)->Arg(4)->Arg(8);

void BM_ServeP99UnderBurst(benchmark::State& state) {
  // Oversubscribed bursts against a tight queue with deadlines: the
  // degradation ladder (rejection, hysteresis shedding, cancellation) is
  // live, and the tail of the completed-request latency distribution plus
  // the shed/miss rates are the published result.
  const lm::Transformer& model = DecodeBenchModel();
  serve::LoadGenConfig load;
  load.num_requests = 64;
  load.seed = 11;
  load.vocab_size = model.config().vocab_size;
  load.stem_tokens = 24;
  load.max_tail_tokens = 8;
  load.max_new_tokens = 12;
  load.max_burst = 12;
  load.max_gap_ticks = 3;
  load.deadline_min_ticks = 24;
  load.deadline_max_ticks = 96;
  const std::vector<serve::ServeRequest> trace = serve::GenerateLoad(load);
  serve::ServerConfig config;
  config.slots = 4;
  config.eos_token = kServeNeverEos;
  config.admission.queue_capacity = 12;
  serve::ServeReport report;
  for (auto _ : state) {
    serve::Server server(model, config);
    auto outcomes = server.Run(trace);
    if (!outcomes.ok()) {
      state.SkipWithError("serve run failed");
      return;
    }
    report = serve::BuildReport(outcomes.ValueOrDie());
    benchmark::DoNotOptimize(report);
  }
  state.counters["sim_p50_ticks"] =
      static_cast<double>(report.p50_latency_ticks);
  state.counters["sim_p95_ticks"] =
      static_cast<double>(report.p95_latency_ticks);
  state.counters["sim_p99_ticks"] =
      static_cast<double>(report.p99_latency_ticks);
  state.counters["shed_rate"] = report.ShedRate();
  state.counters["deadline_miss_rate"] = report.DeadlineMissRate();
}
BENCHMARK(BM_ServeP99UnderBurst);

}  // namespace

int main(int argc, char** argv) {
  // Timings from unoptimized trees are not comparable; refuse to produce
  // them unless explicitly overridden (DIMQR_ALLOW_NON_RELEASE_BENCH=1).
  if (std::strcmp(DIMQR_BUILD_TYPE, "Release") != 0 &&
      std::getenv("DIMQR_ALLOW_NON_RELEASE_BENCH") == nullptr) {
    std::fprintf(stderr,
                 "perf_microbench: refusing to run a %s build; configure "
                 "with -DCMAKE_BUILD_TYPE=Release (see run_benches.sh) or "
                 "set DIMQR_ALLOW_NON_RELEASE_BENCH=1 to override.\n",
                 DIMQR_BUILD_TYPE);
    return 1;
  }
  // Announce the kernel dispatch tier: timings from different tiers are
  // not comparable, so the tier travels with every result set (stderr
  // banner for humans, benchmark context for the JSON consumers).
  const char* isa = dimqr::lm::kernels::IsaName(dimqr::lm::kernels::ActiveIsa());
  std::fprintf(stderr, "perf_microbench: kernel dispatch tier: %s%s\n", isa,
               std::getenv("DIMQR_SIMD") != nullptr ? " (DIMQR_SIMD set)"
                                                    : "");
  benchmark::AddCustomContext("kernel_isa", isa);
  benchmark::AddCustomContext(
      "int8_decode_default",
      dimqr::lm::Transformer::Int8DecodeDefault() ? "1" : "0");
  // run_benches.sh parses /proc/cpuinfo into this so the JSON records
  // what silicon produced the numbers.
  if (const char* flags = std::getenv("DIMQR_CPU_SIMD_FLAGS")) {
    benchmark::AddCustomContext("cpu_simd_flags", flags);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
