// Google-benchmark micro-benchmarks over the core substrates, including
// the DESIGN.md ablation of exact-rational vs double-only conversion
// chains. These measure throughput; the table/figure binaries measure the
// paper's experimental results.

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "mwp/equation.h"
#include "text/levenshtein.h"

namespace {

using namespace dimqr;

void BM_DimensionTimes(benchmark::State& state) {
  Dimension force = dims::Force();
  Dimension velocity = dims::Velocity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(force.Times(velocity));
  }
}
BENCHMARK(BM_DimensionTimes);

void BM_RationalConversionChain(benchmark::State& state) {
  // mile -> yard -> foot -> inch -> centimetre, exactly.
  Rational mile_to_yd = Rational::Of(1760, 1).ValueOrDie();
  Rational yd_to_ft = Rational::Of(3, 1).ValueOrDie();
  Rational ft_to_in = Rational::Of(12, 1).ValueOrDie();
  Rational in_to_cm = Rational::Of(254, 100).ValueOrDie();
  for (auto _ : state) {
    Rational acc = Rational(1);
    acc = acc.Mul(mile_to_yd).ValueOrDie();
    acc = acc.Mul(yd_to_ft).ValueOrDie();
    acc = acc.Mul(ft_to_in).ValueOrDie();
    acc = acc.Mul(in_to_cm).ValueOrDie();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RationalConversionChain);

void BM_DoubleConversionChain(benchmark::State& state) {
  // The ablation counterpart: double-only chain (fast but drifts).
  for (auto _ : state) {
    double acc = 1.0;
    acc *= 1760.0;
    acc *= 3.0;
    acc *= 12.0;
    acc *= 2.54;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DoubleConversionChain);

void BM_KbFindBySurface(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->FindBySurface("km"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("kilograms"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("千克"));
  }
}
BENCHMARK(BM_KbFindBySurface);

void BM_KbConversionFactor(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->ConversionFactor("MI", "KiloM"));
  }
}
BENCHMARK(BM_KbConversionFactor);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::LevenshteinSimilarity("kilometre per hour", "kilometer/hr"));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_UnitLinking(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.linker->Link("km/h", "the train travelled fast"));
  }
}
BENCHMARK(BM_UnitLinking);

void BM_AnnotateSentence(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.annotator->Annotate(
        "LeBron James's height is 2.06 meters and Stephen Curry's height "
        "is 188 cm"));
  }
}
BENCHMARK(BM_AnnotateSentence);

void BM_EquationParseEvaluate(benchmark::State& state) {
  for (auto _ : state) {
    mwp::Equation eq =
        mwp::Equation::Parse("150*20%/5%-150").ValueOrDie();
    benchmark::DoNotOptimize(eq.Evaluate().ValueOrDie());
  }
}
BENCHMARK(BM_EquationParseEvaluate);

}  // namespace

BENCHMARK_MAIN();
