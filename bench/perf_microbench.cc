// Google-benchmark micro-benchmarks over the core substrates, including
// the DESIGN.md ablation of exact-rational vs double-only conversion
// chains. These measure throughput; the table/figure binaries measure the
// paper's experimental results.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "core/fault.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "dimeval/generators.h"
#include "eval/harness.h"
#include "lm/kernels.h"
#include "lm/mock_llm.h"
#include "lm/resilient_model.h"
#include "lm/transformer.h"
#include "mwp/equation.h"
#include "text/levenshtein.h"
#include "text/string_util.h"

namespace {

using namespace dimqr;

// ---------------------------------------------------------------------
// Legacy string-keyed replicas. These reconstruct the unordered_map
// indexes and the flattened linker naming dictionary that the interned
// identity layer (core/interner.h) retired, so the speedup of the handle
// paths stays measurable against the real old implementation.

struct LegacyKbIndex {
  std::unordered_map<std::string, std::size_t> by_id;
  std::unordered_map<std::string, std::vector<std::size_t>> by_surface;
  std::unordered_map<std::string, std::vector<std::size_t>> by_surface_lower;
  /// (surface form, unit index) pairs, the old linker candidate source.
  std::vector<std::pair<std::string, std::size_t>> naming_dictionary;
};

const LegacyKbIndex& GetLegacyIndex() {
  static const LegacyKbIndex* const kIndex = [] {
    auto* idx = new LegacyKbIndex();
    const std::vector<kb::UnitRecord>& units = benchutil::GetWorld().kb->units();
    for (std::size_t i = 0; i < units.size(); ++i) {
      idx->by_id[units[i].id] = i;
      for (const std::string& surface : units[i].SurfaceForms()) {
        if (surface.empty()) continue;
        idx->by_surface[surface].push_back(i);
        idx->by_surface_lower[text::ToLowerAscii(surface)].push_back(i);
        idx->naming_dictionary.emplace_back(surface, i);
      }
    }
    return idx;
  }();
  return *kIndex;
}

/// Replica of the retired string-keyed DimUnitKB::FindBySurface: per-call
/// std::string key materialization, hash probes and a freshly allocated
/// result vector.
std::vector<const kb::UnitRecord*> LegacyFindBySurface(
    std::string_view surface) {
  const LegacyKbIndex& idx = GetLegacyIndex();
  const std::vector<kb::UnitRecord>& units = benchutil::GetWorld().kb->units();
  std::vector<const kb::UnitRecord*> out;
  auto exact = idx.by_surface.find(std::string(surface));
  if (exact != idx.by_surface.end()) {
    for (std::size_t i : exact->second) out.push_back(&units[i]);
    return out;
  }
  auto lower = idx.by_surface_lower.find(text::ToLowerAscii(surface));
  if (lower != idx.by_surface_lower.end()) {
    for (std::size_t i : lower->second) out.push_back(&units[i]);
  }
  return out;
}

void BM_DimensionTimes(benchmark::State& state) {
  Dimension force = dims::Force();
  Dimension velocity = dims::Velocity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(force.Times(velocity));
  }
}
BENCHMARK(BM_DimensionTimes);

void BM_RationalConversionChain(benchmark::State& state) {
  // mile -> yard -> foot -> inch -> centimetre, exactly.
  Rational mile_to_yd = Rational::Of(1760, 1).ValueOrDie();
  Rational yd_to_ft = Rational::Of(3, 1).ValueOrDie();
  Rational ft_to_in = Rational::Of(12, 1).ValueOrDie();
  Rational in_to_cm = Rational::Of(254, 100).ValueOrDie();
  for (auto _ : state) {
    Rational acc = Rational(1);
    acc = acc.Mul(mile_to_yd).ValueOrDie();
    acc = acc.Mul(yd_to_ft).ValueOrDie();
    acc = acc.Mul(ft_to_in).ValueOrDie();
    acc = acc.Mul(in_to_cm).ValueOrDie();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RationalConversionChain);

void BM_DoubleConversionChain(benchmark::State& state) {
  // The ablation counterpart: double-only chain (fast but drifts).
  for (auto _ : state) {
    double acc = 1.0;
    acc *= 1760.0;
    acc *= 3.0;
    acc *= 12.0;
    acc *= 2.54;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DoubleConversionChain);

void BM_KbFindBySurface(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->FindBySurface("km"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("kilograms"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("千克"));
  }
}
BENCHMARK(BM_KbFindBySurface);

void BM_KbFindBySurfaceSpan(benchmark::State& state) {
  // The interned path: SymbolTable lookup + CSR span, zero allocation.
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->FindBySurface("km"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("kilograms"));
    benchmark::DoNotOptimize(world.kb->FindBySurface("千克"));
  }
}
BENCHMARK(BM_KbFindBySurfaceSpan);

void BM_KbFindBySurfaceLegacyMap(benchmark::State& state) {
  // The retired path, same three queries.
  GetLegacyIndex();  // build outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(LegacyFindBySurface("km"));
    benchmark::DoNotOptimize(LegacyFindBySurface("kilograms"));
    benchmark::DoNotOptimize(LegacyFindBySurface("千克"));
  }
}
BENCHMARK(BM_KbFindBySurfaceLegacyMap);

void BM_KbConversionFactor(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    // Intentionally the deprecated string-keyed shim — this bench tracks
    // the legacy path against BM_ConversionFactorCached.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    benchmark::DoNotOptimize(world.kb->ConversionFactor("MI", "KiloM"));
#pragma GCC diagnostic pop
  }
}
BENCHMARK(BM_KbConversionFactor);

void BM_ConversionFactorCached(benchmark::State& state) {
  // Handles resolved once, then every call is two array reads into the
  // per-dimension-class memo table.
  const auto& world = benchutil::GetWorld();
  const UnitId mi = world.kb->IdOf("MI");
  const UnitId km = world.kb->IdOf("KiloM");
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.kb->ConversionFactor(mi, km));
  }
}
BENCHMARK(BM_ConversionFactorCached);

void BM_ConversionFactorLegacyString(benchmark::State& state) {
  // Replica of the retired path: two string-keyed id lookups plus a full
  // exact-rational factor computation on every call.
  const auto& world = benchutil::GetWorld();
  const LegacyKbIndex& idx = GetLegacyIndex();
  const std::vector<kb::UnitRecord>& units = world.kb->units();
  for (auto _ : state) {
    const kb::UnitRecord& from = units[idx.by_id.find(std::string("MI"))->second];
    const kb::UnitRecord& to =
        units[idx.by_id.find(std::string("KiloM"))->second];
    benchmark::DoNotOptimize(
        from.Semantics().ConversionFactorTo(to.Semantics()));
  }
}
BENCHMARK(BM_ConversionFactorLegacyString);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::LevenshteinSimilarity("kilometre per hour", "kilometer/hr"));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_UnitLinking(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.linker->Link("km/h", "the train travelled fast"));
  }
}
BENCHMARK(BM_UnitLinking);

void BM_LinkerLinkHotPath(benchmark::State& state) {
  // Full interned hot path: one edit-distance call per distinct lowercased
  // surface, postings fan-out into flat arrays, then context scoring.
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.linker->Link("km", "the distance of the trip"));
  }
}
BENCHMARK(BM_LinkerLinkHotPath);

void BM_LinkerCandidateGenLegacyDict(benchmark::State& state) {
  // Replica of the retired candidate-generation step alone (no context
  // scoring): scan the flattened (surface, unit) dictionary with one
  // edit-distance call per pair, collecting best scores in a hash map.
  const auto& world = benchutil::GetWorld();
  const LegacyKbIndex& idx = GetLegacyIndex();
  const double threshold = world.linker->config().mention_threshold;
  for (auto _ : state) {
    std::unordered_map<std::size_t, double> best_similarity;
    for (const auto& [surface, index] : idx.naming_dictionary) {
      double sim = text::LevenshteinSimilarityIgnoreCase(surface, "km");
      if (sim < threshold) continue;
      auto it = best_similarity.find(index);
      if (it == best_similarity.end() || sim > it->second) {
        best_similarity[index] = sim;
      }
    }
    benchmark::DoNotOptimize(best_similarity);
  }
}
BENCHMARK(BM_LinkerCandidateGenLegacyDict);

void BM_AnnotateSentence(benchmark::State& state) {
  const auto& world = benchutil::GetWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.annotator->Annotate(
        "LeBron James's height is 2.06 meters and Stephen Curry's height "
        "is 188 cm"));
  }
}
BENCHMARK(BM_AnnotateSentence);

void BM_EquationParseEvaluate(benchmark::State& state) {
  for (auto _ : state) {
    mwp::Equation eq =
        mwp::Equation::Parse("150*20%/5%-150").ValueOrDie();
    benchmark::DoNotOptimize(eq.Evaluate().ValueOrDie());
  }
}
BENCHMARK(BM_EquationParseEvaluate);

// ---------------------------------------------------------------------
// Parallel runtime: blocked-vs-naive kernels and thread sweeps. The sweep
// benches take the thread count as their range argument; on a single-core
// host the >1 entries measure pool overhead rather than speedup.

// Sized so the right-hand matrix (2048 x 2048 x 4 B = 16 MiB) blows out
// L2: this is the regime cache blocking exists for. At transformer-sized
// operands the kernels fall back to the naive loop order (see
// lm/kernels.cc), so a small-matrix comparison would measure nothing.
constexpr std::size_t kMatM = 128, kMatK = 2048, kMatN = 2048;

void BM_MatMulBlocked(benchmark::State& state) {
  std::vector<float> a(kMatM * kMatK), b(kMatK * kMatN), c(kMatM * kMatN);
  Rng rng(11);
  for (float& x : a) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (auto _ : state) {
    lm::kernels::MatMul(a.data(), b.data(), c.data(), kMatM, kMatK, kMatN);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulBlocked);

void BM_MatMulNaive(benchmark::State& state) {
  std::vector<float> a(kMatM * kMatK), b(kMatK * kMatN), c(kMatM * kMatN);
  Rng rng(11);
  for (float& x : a) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.UniformReal(-1.0, 1.0));
  for (auto _ : state) {
    lm::kernels::MatMulNaive(a.data(), b.data(), c.data(), kMatM, kMatK,
                             kMatN);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulNaive);

void BM_TrainBatch(benchmark::State& state) {
  ScopedParallelism scope(static_cast<int>(state.range(0)));
  lm::TransformerConfig config;
  config.vocab_size = 64;
  config.d_model = 32;
  config.n_heads = 4;
  config.n_layers = 2;
  config.d_ff = 96;
  config.max_seq = 32;
  config.seed = 13;
  lm::Transformer model = lm::Transformer::Create(config).ValueOrDie();
  Rng rng(17);
  std::vector<lm::LmExample> batch;
  for (int i = 0; i < 16; ++i) {
    lm::LmExample e;
    int x = static_cast<int>(rng.UniformInt(4, 62));
    int y = static_cast<int>(rng.UniformInt(4, 62));
    e.tokens = {1, x, y, 3, x, y, 2};
    e.loss_mask = {0, 0, 0, 0, 1, 1, 1};
    batch.push_back(std::move(e));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainBatch(batch, 1e-3).ValueOrDie());
  }
}
BENCHMARK(BM_TrainBatch)->DenseRange(1, 8);

void BM_EvalDimEval(benchmark::State& state) {
  ScopedParallelism scope(static_cast<int>(state.range(0)));
  // Self-contained choice-task set: generator instances + calibrated mock,
  // small enough to re-run per iteration without the full DimEval fixture.
  static const std::vector<dimeval::TaskInstance>* const kInstances = [] {
    dimeval::TaskGenerator gen(benchutil::GetWorld().kb);
    return new std::vector<dimeval::TaskInstance>(
        gen.UnitConversion(96).ValueOrDie());
  }();
  std::vector<const dimeval::TaskInstance*> tests;
  tests.reserve(kInstances->size());
  for (const dimeval::TaskInstance& inst : *kInstances) {
    tests.push_back(&inst);
  }
  lm::MockLlm mock("Bench", {{"unit_conversion", {0.6, 0.9}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateChoiceTask(mock, tests));
  }
}
BENCHMARK(BM_EvalDimEval)->DenseRange(1, 8);

void BM_EvalDimEvalFaulty(benchmark::State& state) {
  // Overhead of the resilience layer on the same choice-task evaluation:
  // Arg(0) measures the clean fast path (no faults configured — the wrapper
  // must cost <3% over BM_EvalDimEval/4), Arg(20) measures 20% transient
  // faults with retries (every fault recovers; the row stays identical).
  ScopedParallelism scope(4);
  const int fault_pct = static_cast<int>(state.range(0));
  if (fault_pct > 0) {
    std::string spec = "lm.answer_choice:0." +
                       std::to_string(fault_pct / 10) + ":transient";
    if (!FaultRegistry::Global().Configure(spec).ok()) {
      state.SkipWithError("bad fault spec");
      return;
    }
  } else {
    FaultRegistry::Global().Clear();
  }
  static const std::vector<dimeval::TaskInstance>* const kInstances = [] {
    dimeval::TaskGenerator gen(benchutil::GetWorld().kb);
    return new std::vector<dimeval::TaskInstance>(
        gen.UnitConversion(96).ValueOrDie());
  }();
  std::vector<const dimeval::TaskInstance*> tests;
  tests.reserve(kInstances->size());
  for (const dimeval::TaskInstance& inst : *kInstances) {
    tests.push_back(&inst);
  }
  lm::MockLlm mock("Bench", {{"unit_conversion", {0.6, 0.9}}});
  lm::ResilientModel resilient(mock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateChoiceTask(resilient, tests));
  }
  FaultRegistry::Global().Clear();
}
BENCHMARK(BM_EvalDimEvalFaulty)->Arg(0)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  // Timings from unoptimized trees are not comparable; refuse to produce
  // them unless explicitly overridden (DIMQR_ALLOW_NON_RELEASE_BENCH=1).
  if (std::strcmp(DIMQR_BUILD_TYPE, "Release") != 0 &&
      std::getenv("DIMQR_ALLOW_NON_RELEASE_BENCH") == nullptr) {
    std::fprintf(stderr,
                 "perf_microbench: refusing to run a %s build; configure "
                 "with -DCMAKE_BUILD_TYPE=Release (see run_benches.sh) or "
                 "set DIMQR_ALLOW_NON_RELEASE_BENCH=1 to override.\n",
                 DIMQR_BUILD_TYPE);
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
