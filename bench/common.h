#ifndef DIMQR_BENCH_COMMON_H_
#define DIMQR_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/snapshot.h"
#include "dimeval/benchmark.h"
#include "linking/annotator.h"
#include "mwp/augment.h"
#include "solver/pipelines.h"

/// \file common.h
/// Shared fixtures for the table/figure reproduction binaries: the
/// knowledge system (KB + linker + annotator), standard benchmark sizes,
/// and the DimPerc model configuration. Every bench prints the measured
/// values next to the paper's published numbers; EXPERIMENTS.md records
/// both.

namespace dimqr::benchutil {

/// \brief Path of the artifact snapshot the benches load from, when set:
/// the `--snapshot=<path>` flag (see InitFromArgs) or the DIMQR_SNAPSHOT
/// environment variable. Empty = build everything in-process.
inline std::string& SnapshotPathRef() {
  static std::string* const kPath = [] {
    const char* env = std::getenv("DIMQR_SNAPSHOT");
    return new std::string(env == nullptr ? "" : env);
  }();
  return *kPath;
}

/// \brief Consumes `--snapshot=<path>` from argv (compacting the array and
/// decrementing argc) so each bench's own flag loop never sees it. Call
/// first in main, before anything touches GetWorld().
inline void InitFromArgs(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--snapshot=", 11) == 0) {
      SnapshotPathRef() = argv[i] + 11;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

/// \brief The mapped snapshot, or null when no path was configured. A bad
/// path is fatal: a bench asked to measure the snapshot path must never
/// silently fall back to building.
inline std::shared_ptr<const snapshot::Snapshot> GetSnapshot() {
  static const std::shared_ptr<const snapshot::Snapshot>* const kSnap = [] {
    auto* snap = new std::shared_ptr<const snapshot::Snapshot>();
    const std::string& path = SnapshotPathRef();
    if (!path.empty()) {
      auto mapped = snapshot::Snapshot::Map(path);
      if (!mapped.ok()) {
        std::fprintf(stderr, "cannot map snapshot %s: %s\n", path.c_str(),
                     mapped.status().ToString().c_str());
        std::exit(1);
      }
      *snap = std::move(mapped).ValueOrDie();
    }
    return snap;
  }();
  return *kSnap;
}

/// \brief The shared knowledge system.
struct World {
  std::shared_ptr<const kb::DimUnitKB> kb;
  std::shared_ptr<const linking::UnitLinker> linker;
  std::unique_ptr<linking::DimKsAnnotator> annotator;
};

inline const World& GetWorld() {
  static const World* const kWorld = [] {
    auto* world = new World();
    std::shared_ptr<const snapshot::Snapshot> snap = GetSnapshot();
    if (snap != nullptr && snap->Has("kb")) {
      world->kb = kb::DimUnitKB::FromSnapshot(snap).ValueOrDie();
    } else {
      world->kb = kb::DimUnitKB::Build().ValueOrDie();
    }
    world->linker = linking::UnitLinker::Build(world->kb).ValueOrDie();
    world->annotator =
        std::make_unique<linking::DimKsAnnotator>(world->linker);
    return world;
  }();
  return *kWorld;
}

/// True when DIMQR_BENCH_FAST=1 (smaller datasets and training budgets for
/// smoke runs).
inline bool FastMode() {
  const char* env = std::getenv("DIMQR_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

/// \brief The DimEval build used by tables VII/VIII.
inline const dimeval::DimEvalBenchmark& GetDimEval() {
  static const dimeval::DimEvalBenchmark* const kBench = [] {
    dimeval::BenchmarkOptions options;
    options.train_per_task = FastMode() ? 40 : 150;
    options.test_per_task = FastMode() ? 20 : 60;
    options.extraction_corpus_sentences = FastMode() ? 300 : 900;
    return new dimeval::DimEvalBenchmark(
        dimeval::BuildDimEval(GetWorld().kb, *GetWorld().annotator, options)
            .ValueOrDie());
  }();
  return *kBench;
}

/// \brief The model architecture for DimPerc / LLaMA_IFT at bench scale.
inline solver::Seq2SeqConfig BenchModelConfig() {
  solver::Seq2SeqConfig config;
  config.arch.d_model = 64;
  config.arch.n_heads = 4;
  config.arch.n_layers = 3;
  config.arch.d_ff = 192;
  config.arch.max_seq = 160;
  config.batch_size = 8;
  config.learning_rate = 2e-3;
  config.max_generated_tokens = 64;
  return config;
}

/// Epochs for DimEval fine-tuning.
inline int DimEvalEpochs() { return FastMode() ? 2 : 6; }
/// Epochs for MWP fine-tuning (override with DIMQR_MWP_EPOCHS).
inline int MwpEpochs() {
  if (const char* env = std::getenv("DIMQR_MWP_EPOCHS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return FastMode() ? 2 : 5;
}

/// \brief MWP dataset sizes: paper evaluates 225 test problems per
/// dataset (Table VI).
inline int MwpTestCount() { return FastMode() ? 40 : 225; }
inline int MwpTrainCount() { return FastMode() ? 80 : 320; }

/// \brief Builds the four evaluation datasets of Table VI/IX: N-Math23k,
/// N-Ape210k and their Q-MWP extensions.
struct MwpDatasets {
  std::vector<mwp::TemplatedProblem> n_math23k, n_ape210k;
  std::vector<mwp::TemplatedProblem> q_math23k, q_ape210k;
  // Matching training splits (distinct generator streams).
  std::vector<mwp::TemplatedProblem> train_n_math23k, train_n_ape210k;
  std::vector<mwp::TemplatedProblem> train_q_math23k, train_q_ape210k;
};

inline const MwpDatasets& GetMwpDatasets() {
  static const MwpDatasets* const kDatasets = [] {
    auto* d = new MwpDatasets();
    const World& world = GetWorld();
    mwp::MwpGenerator test_gen(world.kb, /*seed=*/20240131);
    mwp::MwpGenerator train_gen(world.kb, /*seed=*/777);
    int n_test = MwpTestCount();
    int n_train = MwpTrainCount();
    // Math23k style: mostly few-step; Ape210k style: multi-step heavy.
    d->n_math23k =
        test_gen.Generate("n_math23k", n_test, 0.22).ValueOrDie();
    d->n_ape210k =
        test_gen.Generate("n_ape210k", n_test, 0.60).ValueOrDie();
    d->train_n_math23k =
        train_gen.Generate("n_math23k", n_train, 0.22).ValueOrDie();
    d->train_n_ape210k =
        train_gen.Generate("n_ape210k", n_train, 0.60).ValueOrDie();
    mwp::QMwpOptions q_options;
    q_options.augmentation_rate = 1.0;
    d->q_math23k = mwp::BuildQMwp(d->n_math23k, "q_math23k", *world.kb,
                                  q_options)
                       .ValueOrDie();
    d->q_ape210k = mwp::BuildQMwp(d->n_ape210k, "q_ape210k", *world.kb,
                                  q_options)
                       .ValueOrDie();
    q_options.seed = 778;
    d->train_q_math23k =
        mwp::BuildQMwp(d->train_n_math23k, "q_math23k", *world.kb, q_options)
            .ValueOrDie();
    d->train_q_ape210k =
        mwp::BuildQMwp(d->train_n_ape210k, "q_ape210k", *world.kb, q_options)
            .ValueOrDie();
    return d;
  }();
  return *kDatasets;
}

}  // namespace dimqr::benchutil

#endif  // DIMQR_BENCH_COMMON_H_
