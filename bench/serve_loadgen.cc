// Deterministic load-generator driver for the serving layer — the binary
// the serve-chaos CI job runs. It trains a tiny fixed-seed Transformer,
// generates a seeded bursty trace, plays it through serve::Server, prints
// the aggregate report, and (with --journal) writes the canonical
// per-request outcome journal. Fault injection comes from the DIMQR_FAULTS
// environment variable and the worker count from DIMQR_THREADS, so the
// same invocation must produce a byte-identical journal at any thread
// count — that is the property CI diffs.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "lm/transformer.h"
#include "serve/loadgen.h"
#include "serve/report.h"
#include "serve/server.h"

namespace {

using namespace dimqr;

struct Options {
  int requests = 64;
  std::uint64_t seed = 1;
  int slots = 4;
  int queue_capacity = 16;
  int max_new_tokens = 6;
  std::uint64_t deadline_min = 0;
  std::uint64_t deadline_max = 0;
  std::string journal_path;
  std::string snapshot_path;  ///< Map the model instead of retraining.
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--requests N] [--seed S] [--slots N]\n"
      "          [--queue-capacity N] [--max-new N]\n"
      "          [--deadline-min T] [--deadline-max T] [--journal PATH]\n"
      "          [--snapshot PATH]\n"
      "Fault injection: set DIMQR_FAULTS (e.g. "
      "\"serve.backend_transient:0.2:transient\").\n"
      "Worker threads: set DIMQR_THREADS.\n",
      argv0);
}

bool ParseUint(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

bool ParseOptions(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&](std::uint64_t& out) {
      return ++i < argc && ParseUint(argv[i], out);
    };
    std::uint64_t value = 0;
    if (std::strcmp(arg, "--requests") == 0 && next(value)) {
      options.requests = static_cast<int>(value);
    } else if (std::strcmp(arg, "--seed") == 0 && next(value)) {
      options.seed = value;
    } else if (std::strcmp(arg, "--slots") == 0 && next(value)) {
      options.slots = static_cast<int>(value);
    } else if (std::strcmp(arg, "--queue-capacity") == 0 && next(value)) {
      options.queue_capacity = static_cast<int>(value);
    } else if (std::strcmp(arg, "--max-new") == 0 && next(value)) {
      options.max_new_tokens = static_cast<int>(value);
    } else if (std::strcmp(arg, "--deadline-min") == 0 && next(value)) {
      options.deadline_min = value;
    } else if (std::strcmp(arg, "--deadline-max") == 0 && next(value)) {
      options.deadline_max = value;
    } else if (std::strcmp(arg, "--journal") == 0 && ++i < argc) {
      options.journal_path = argv[i];
    } else if (std::strcmp(arg, "--snapshot") == 0 && ++i < argc) {
      options.snapshot_path = argv[i];
    } else if (std::strncmp(arg, "--snapshot=", 11) == 0) {
      options.snapshot_path = arg + 11;
    } else {
      return false;
    }
  }
  return true;
}

/// The model under load: mapped zero-copy from a snapshot's "serve"
/// section when --snapshot is given, otherwise trained in-process. Both
/// paths hold the same canonical fixed-seed weights (dimqr_snapshot pack
/// stores BuildCanonicalServeModel()), so the journal is byte-identical
/// either way.
lm::Transformer BuildModel(const Options& options) {
  if (!options.snapshot_path.empty()) {
    auto snap = snapshot::Snapshot::Map(options.snapshot_path);
    if (!snap.ok()) {
      std::fprintf(stderr, "serve_loadgen: cannot map snapshot: %s\n",
                   snap.status().ToString().c_str());
      std::exit(1);
    }
    auto section = snap.ValueOrDie()->Section("serve");
    if (!section.ok()) {
      std::fprintf(stderr, "serve_loadgen: snapshot has no \"serve\" "
                           "section\n");
      std::exit(1);
    }
    snapshot::ArenaReader reader(section.ValueOrDie());
    auto model = lm::Transformer::FromArena(reader, snap.ValueOrDie());
    if (!model.ok()) {
      std::fprintf(stderr, "serve_loadgen: bad serve section: %s\n",
                   model.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(model).ValueOrDie();
  }
  auto model = serve::BuildCanonicalServeModel();
  if (!model.ok()) {
    std::fprintf(stderr, "serve_loadgen: model training failed: %s\n",
                 model.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(model).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseOptions(argc, argv, options)) {
    Usage(argv[0]);
    return 2;
  }

  lm::Transformer model = BuildModel(options);

  serve::LoadGenConfig load;
  load.num_requests = options.requests;
  load.seed = options.seed;
  load.vocab_size = model.config().vocab_size;
  load.max_new_tokens = options.max_new_tokens;
  load.deadline_min_ticks = options.deadline_min;
  load.deadline_max_ticks = options.deadline_max;
  std::vector<serve::ServeRequest> trace = serve::GenerateLoad(load);

  serve::ServerConfig config;
  config.slots = options.slots;
  config.admission.queue_capacity = options.queue_capacity;
  serve::Server server(model, config);
  auto outcomes = server.Run(std::move(trace));
  if (!outcomes.ok()) {
    std::fprintf(stderr, "serve_loadgen: run failed: %s\n",
                 outcomes.status().message().c_str());
    return 1;
  }

  const serve::ServeReport report = serve::BuildReport(outcomes.ValueOrDie());
  std::fputs(serve::FormatReport(report).c_str(), stdout);
  if (!options.journal_path.empty()) {
    std::ofstream out(options.journal_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "serve_loadgen: cannot open %s\n",
                   options.journal_path.c_str());
      return 1;
    }
    out << serve::FormatJournal(outcomes.ValueOrDie());
  }
  return 0;
}
