// Reproduces Table IV: statistics of DimUnitKB against UoM and
// WolframAlpha (#units, #quantity kinds, #dimension vectors, language
// support, frequency feature). The UoM and WolframAlpha rows are the
// paper's published numbers; the DimUnitKB row is measured from the
// catalog built by this library.

#include <iostream>

#include "bench/common.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  dimqr::benchutil::InitFromArgs(argc, argv);
  using dimqr::eval::TablePrinter;
  const dimqr::benchutil::World& world = dimqr::benchutil::GetWorld();
  dimqr::kb::KbStats stats = world.kb->Stats();

  std::cout << "=== Table IV: unit-resource statistics ===\n"
            << "(UoM / WolframAlpha rows: published values; DimUnitKB row: "
               "measured from this build)\n\n";
  TablePrinter table({"Resource", "#Units", "#QuantityKind", "#Dim.Vector",
                      "Lang.", "Freq."});
  table.AddRow({"UoM [12]", "76", "16", "-", "En", "no"});
  table.AddRow({"WolframAlpha", "540", "173", "63", "En", "no"});
  table.AddRow({"DimUnitKB (paper)", "1778", "327", "175", "En&Zh", "yes"});
  table.AddSeparator();
  table.AddRow({"DimUnitKB (measured)", std::to_string(stats.num_units),
                std::to_string(stats.num_quantity_kinds),
                std::to_string(stats.num_dimension_vectors), "En&Zh", "yes"});
  table.Print(std::cout);

  std::cout << "\nComposition: " << stats.num_seed_units << " seed units, "
            << stats.num_prefix_units << " SI-prefix expansions, "
            << stats.num_compound_units << " compound units; "
            << stats.num_units_with_zh << "/" << stats.num_units
            << " units carry a Chinese label.\n"
            << "\nShape check (paper's ordering DimUnitKB >> WolframAlpha "
               ">> UoM): "
            << (stats.num_units > 540 && stats.num_quantity_kinds > 173 &&
                        stats.num_dimension_vectors > 63
                    ? "PRESERVED"
                    : "VIOLATED")
            << "\n";
  return 0;
}
