// Reproduces Figure 6: accuracy of the DimPerc model on Q-Ape210k as a
// function of the data augmentation rate eta. The paper's shape: accuracy
// rises with eta and saturates at eta >= 0.5.

#include <iostream>

#include "bench/common.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  dimqr::benchutil::InitFromArgs(argc, argv);
  using namespace dimqr;
  const benchutil::MwpDatasets& d = benchutil::GetMwpDatasets();
  solver::Seq2SeqConfig config = benchutil::BenchModelConfig();

  std::cout << "=== Figure 6: accuracy on Q-Ape210k vs augmentation rate "
               "eta ===\n\n";
  const double rates[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<double> accuracies;
  // Vocabulary coverage comes from the fully augmented pool so that eta
  // only controls training data composition.
  std::vector<solver::SeqExample> vocab_extra =
      solver::MakeMwpExamples(d.train_q_ape210k);
  for (double eta : rates) {
    std::cerr << "[fig06] training at eta = " << eta << "...\n";
    mwp::QMwpOptions q_options;
    q_options.augmentation_rate = eta;
    q_options.seed = 778;  // same stream as the full training split
    std::vector<mwp::TemplatedProblem> train_problems =
        mwp::BuildQMwp(d.train_n_ape210k, "q_ape210k",
                       *benchutil::GetWorld().kb, q_options)
            .ValueOrDie();
    auto model = solver::Seq2SeqModel::Create(
                     "DimPerc", solver::MakeMwpExamples(train_problems),
                     config, vocab_extra)
                     .ValueOrDie();
    model->TrainEpochs(benchutil::MwpEpochs()).ValueOrDie();
    accuracies.push_back(solver::EvaluateMwpAccuracy(*model, d.q_ape210k));
  }

  std::cout << "eta    accuracy\n";
  for (std::size_t i = 0; i < accuracies.size(); ++i) {
    int bar = static_cast<int>(accuracies[i] * 60.0);
    std::printf("%.2f   %6.2f%%  |%s\n", rates[i], accuracies[i] * 100.0,
                std::string(bar, '#').c_str());
  }

  bool rising = accuracies.back() > accuracies.front();
  bool saturating =
      accuracies[2] >= accuracies.front() &&
      accuracies.back() - accuracies[2] < accuracies[2] - accuracies[0] + 0.05;
  std::cout << "\nShape checks:\n"
            << "  accuracy rises with eta:            "
            << (rising ? "PRESERVED" : "VIOLATED") << "\n"
            << "  gains concentrate below eta = 0.5:  "
            << (saturating ? "PRESERVED" : "VIOLATED") << "\n";
  return 0;
}
