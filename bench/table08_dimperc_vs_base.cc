// Reproduces Table VIII: DimPerc vs the base model (LLaMA_IFT) on the
// three DimEval categories. The base model is fine-tuned only on generic
// instruction data (answer format, no dimensional knowledge); DimPerc is
// the same architecture fine-tuned on the DimEval training split
// (Section IV-D). The expected shape: large gains in every category.

#include <iostream>
#include <string_view>

#include "bench/common.h"
#include "solver/dimperc.h"
#include "eval/harness.h"
#include "eval/journal.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace dimqr;
  benchutil::InitFromArgs(argc, argv);
  using benchutil::GetDimEval;
  using benchutil::GetWorld;
  using eval::TablePrinter;

  // --journal=<path>: checkpoint/resume per completed (model, task); see
  // eval/journal.h. (Training itself is fast here; the journal covers the
  // evaluation passes.)
  std::unique_ptr<eval::EvalJournal> journal;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--journal=", 0) == 0) {
      auto opened = eval::EvalJournal::Open(std::string(arg.substr(10)));
      if (!opened.ok()) {
        std::cerr << "table08: " << opened.status().ToString() << "\n";
        return 1;
      }
      journal = std::move(opened).ValueOrDie();
      if (journal->loaded_records() > 0) {
        std::cerr << "[table08] resuming: " << journal->loaded_records()
                  << " journaled task(s) will be replayed\n";
      }
    } else {
      std::cerr << "table08: unknown argument '" << arg
                << "' (supported: --journal=<path>)\n";
      return 1;
    }
  }

  const dimeval::DimEvalBenchmark& bench = GetDimEval();
  solver::Seq2SeqConfig config = benchutil::BenchModelConfig();

  std::cout << "=== Table VIII: DimPerc vs base model on DimEval ===\n\n";
  std::cerr << "[table08] training LLaMA_IFT substitute (generic "
               "instructions only)...\n";
  // The base model shares DimPerc's vocabulary (via vocab_extra) so its
  // deficit is knowledge, not token coverage.
  std::vector<solver::SeqExample> dimeval_pairs =
      solver::MakeDimEvalExamples(bench.train);
  std::vector<solver::SeqExample> generic =
      solver::MakeGenericInstructionExamples(
          static_cast<int>(dimeval_pairs.size()), 42);
  auto base_seq = std::shared_ptr<solver::Seq2SeqModel>(
      solver::Seq2SeqModel::Create("LLaMA_IFT", generic, config,
                                   dimeval_pairs)
          .ValueOrDie());
  base_seq->TrainEpochs(std::max(1, benchutil::DimEvalEpochs() / 2))
      .ValueOrDie();

  std::cerr << "[table08] fine-tuning DimPerc on DimEval...\n";
  auto dimperc_seq = std::shared_ptr<solver::Seq2SeqModel>(
      solver::TrainDimPerc(bench, *GetWorld().kb, config,
                           benchutil::DimEvalEpochs())
          .ValueOrDie());

  // Both models run through the SAME pipeline: the only difference is the
  // dimensional knowledge in their weights (Table VIII's contrast).
  solver::DimPercPipeline base("LLaMA_IFT", base_seq);
  solver::DimPercPipeline dimperc("DimPerc", dimperc_seq);
  eval::Extractor annotator_extractor =
      eval::AnnotatorExtractor(*GetWorld().annotator);
  eval::DimEvalRow base_row =
      eval::EvaluateOnDimEval(base, bench, nullptr, journal.get());
  eval::DimEvalRow dimperc_row = eval::EvaluateOnDimEval(
      dimperc, bench, &annotator_extractor, journal.get());

  auto base_cats = eval::AggregateByCategory(base_row);
  auto dimperc_cats = eval::AggregateByCategory(dimperc_row);

  std::cout << "Paper reference (precision / F1, %):\n"
            << "  LLaMA_IFT: basic 29.65/24.01  dimension 20.38/16.64  "
               "scale 8.94/6.70\n"
            << "  DimPerc:   basic 71.69/63.13  dimension 82.82/77.30  "
               "scale 89.74/81.31\n\n"
            << "Measured from this build:\n";
  TablePrinter table({"Model", "Basic P", "Basic F1", "Dim P", "Dim F1",
                      "Scale P", "Scale F1"});
  auto row_of = [](const std::string& name,
                   std::map<dimeval::TaskCategory, eval::CategoryMetrics>&
                       cats) {
    using dimeval::TaskCategory;
    return std::vector<std::string>{
        name,
        TablePrinter::Pct(cats[TaskCategory::kBasicPerception].precision),
        TablePrinter::Pct(cats[TaskCategory::kBasicPerception].f1),
        TablePrinter::Pct(cats[TaskCategory::kDimensionPerception].precision),
        TablePrinter::Pct(cats[TaskCategory::kDimensionPerception].f1),
        TablePrinter::Pct(cats[TaskCategory::kScalePerception].precision),
        TablePrinter::Pct(cats[TaskCategory::kScalePerception].f1)};
  };
  table.AddRow(row_of("LLaMA_IFT", base_cats));
  table.AddRow(row_of("DimPerc", dimperc_cats));
  table.Print(std::cout);

  using dimeval::TaskCategory;
  bool all_gain =
      dimperc_cats[TaskCategory::kBasicPerception].precision >
          base_cats[TaskCategory::kBasicPerception].precision &&
      dimperc_cats[TaskCategory::kDimensionPerception].precision >
          base_cats[TaskCategory::kDimensionPerception].precision &&
      dimperc_cats[TaskCategory::kScalePerception].precision >
          base_cats[TaskCategory::kScalePerception].precision;
  std::cout << "\nShape check (DimPerc > base in every category): "
            << (all_gain ? "PRESERVED" : "VIOLATED") << "\n";
  return 0;
}
