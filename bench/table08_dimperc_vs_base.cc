// Reproduces Table VIII: DimPerc vs the base model (LLaMA_IFT) on the
// three DimEval categories. The base model is fine-tuned only on generic
// instruction data (answer format, no dimensional knowledge); DimPerc is
// the same architecture fine-tuned on the DimEval training split
// (Section IV-D). The expected shape: large gains in every category.
//
// Model building and printing live in bench/dimeval_tables.h, shared with
// fleet_eval (same byte-diff contract as table07).

#include <iostream>
#include <string_view>

#include "bench/common.h"
#include "bench/dimeval_tables.h"
#include "eval/journal.h"

int main(int argc, char** argv) {
  using namespace dimqr;
  benchutil::InitFromArgs(argc, argv);

  // --journal=<path>: checkpoint/resume per completed (model, task); see
  // eval/journal.h. (Training itself is fast here; the journal covers the
  // evaluation passes.)
  std::unique_ptr<eval::EvalJournal> journal;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--journal=", 0) == 0) {
      auto opened = eval::EvalJournal::Open(std::string(arg.substr(10)));
      if (!opened.ok()) {
        std::cerr << "table08: " << opened.status().ToString() << "\n";
        return 1;
      }
      journal = std::move(opened).ValueOrDie();
      if (journal->loaded_records() > 0) {
        std::cerr << "[table08] resuming: " << journal->loaded_records()
                  << " journaled task(s) will be replayed\n";
      }
    } else {
      std::cerr << "table08: unknown argument '" << arg
                << "' (supported: --journal=<path>)\n";
      return 1;
    }
  }

  const dimeval::DimEvalBenchmark& bench = benchutil::GetDimEval();
  benchtables::DimEvalTableModels models =
      benchtables::BuildTable08Models(bench, "table08");
  std::vector<eval::DimEvalRow> rows =
      benchtables::EvaluateDimEvalRows(models, bench, journal.get(),
                                       "table08");
  benchtables::PrintTable08(rows, std::cout);
  return 0;
}
