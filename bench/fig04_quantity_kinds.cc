// Reproduces Figure 4: the top quantity kinds (frequency = mean of the
// top-5 member units) and their top-5 units with per-unit frequency
// values, matching the paper's panel layout.

#include <algorithm>
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  dimqr::benchutil::InitFromArgs(argc, argv);
  const dimqr::benchutil::World& world = dimqr::benchutil::GetWorld();
  auto kinds = world.kb->KindsByFrequency(/*top_k=*/5);

  std::cout << "=== Figure 4: top quantity kinds and their top-5 units ===\n"
            << "(kind frequency = mean Freq of its top five units)\n\n";
  constexpr std::size_t kTop = 14;
  for (std::size_t i = 0; i < kTop && i < kinds.size(); ++i) {
    const auto& [kind, freq] = kinds[i];
    std::printf("%2zu. %-28s %5.3f\n", i + 1,
                std::string(world.kb->GetKind(kind).name).c_str(), freq);
    std::span<const dimqr::UnitId> member_ids = world.kb->UnitsOfKind(kind);
    std::vector<const dimqr::kb::UnitRecord*> members;
    members.reserve(member_ids.size());
    for (dimqr::UnitId uid : member_ids) {
      members.push_back(&world.kb->Get(uid));
    }
    std::sort(members.begin(), members.end(),
              [](const dimqr::kb::UnitRecord* a,
                 const dimqr::kb::UnitRecord* b) {
                return a->frequency > b->frequency;
              });
    for (std::size_t j = 0; j < 5 && j < members.size(); ++j) {
      std::printf("       %-26s %5.3f\n",
                  std::string(members[j]->label_en).c_str(),
                  members[j]->frequency);
    }
  }

  // Shape check: everyday kinds (Length, Time, Mass) rank in the top 14.
  bool length = false, time = false, mass = false;
  for (std::size_t i = 0; i < kTop && i < kinds.size(); ++i) {
    std::string_view name = world.kb->GetKind(kinds[i].first).name;
    if (name == "Length") length = true;
    if (name == "Time") time = true;
    if (name == "Mass") mass = true;
  }
  std::printf("\nShape check (Length/Time/Mass in top %zu): %s\n", kTop,
              length && time && mass ? "PRESERVED" : "VIOLATED");
  return 0;
}
