// Crash-tolerant multi-process table reproduction: builds the Table VII or
// Table VIII models once in the parent, then fans the (model, task) grid
// out over a supervised fleet of forked workers (eval/fleet.h). Workers
// inherit the trained models — and any mmap-ed snapshot — copy-on-write,
// so N workers share one physical model image; a worker killed mid-shard
// (or by injected chaos, DIMQR_FAULTS="fleet.worker:<p>:sigkill") is
// restarted with backoff and its shard resumes from the per-shard journal.
//
//   fleet_eval --table=07|08 [--workers=N] [--journal-dir=DIR]
//              [--snapshot=FILE.dqs]
//
// --workers defaults to DIMQR_WORKERS (1 when unset). The printed table is
// byte-identical to the corresponding single-process binary at any worker
// count and crash pattern — the fleet-chaos CI job diffs exactly that. The
// supervision counters go to stderr as "[fleet] workers=... crashes=..."
// so chaos runs can assert the injected faults actually bit.

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "bench/common.h"
#include "bench/dimeval_tables.h"
#include "eval/fleet.h"

int main(int argc, char** argv) {
  using namespace dimqr;
  benchutil::InitFromArgs(argc, argv);

  std::string table;
  eval::FleetEvalOptions options;
  options.workers = eval::WorkersFromEnv();
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--table=", 0) == 0) {
      table = std::string(arg.substr(8));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::atoi(std::string(arg.substr(10)).c_str());
    } else if (arg.rfind("--journal-dir=", 0) == 0) {
      options.journal_dir = std::string(arg.substr(14));
    } else if (arg.rfind("--heartbeat-timeout-ms=", 0) == 0) {
      options.supervisor.heartbeat_timeout_ms =
          std::atoi(std::string(arg.substr(23)).c_str());
    } else {
      std::cerr << "fleet_eval: unknown argument '" << arg
                << "' (supported: --table=07|08 --workers=N "
                   "--journal-dir=DIR --heartbeat-timeout-ms=MS)\n";
      return 1;
    }
  }
  if (table != "07" && table != "08") {
    std::cerr << "fleet_eval: --table=07 or --table=08 is required\n";
    return 1;
  }
  if (options.workers < 1) {
    std::cerr << "fleet_eval: --workers must be >= 1\n";
    return 1;
  }

  const dimeval::DimEvalBenchmark& bench = benchutil::GetDimEval();
  benchtables::DimEvalTableModels models =
      table == "07" ? benchtables::BuildTable07Models(bench, "fleet_eval")
                    : benchtables::BuildTable08Models(bench, "fleet_eval");

  std::cerr << "[fleet_eval] evaluating " << models.specs.size()
            << " model(s) across " << options.workers << " worker(s)...\n";
  proc::FleetReport report;
  auto rows = eval::RunFleetDimEval(models.specs, bench, options, &report);
  if (!rows.ok()) {
    std::cerr << "fleet_eval: " << rows.status().ToString() << "\n";
    return 1;
  }
  if (table == "07") {
    benchtables::PrintTable07(rows.ValueOrDie(), std::cout);
  } else {
    benchtables::PrintTable08(rows.ValueOrDie(), std::cout);
  }
  std::cerr << "[fleet] " << report.Summary() << "\n";
  return 0;
}
