#ifndef DIMQR_BENCH_DIMEVAL_TABLES_H_
#define DIMQR_BENCH_DIMEVAL_TABLES_H_

#include <cstdio>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "eval/fleet.h"
#include "eval/harness.h"
#include "eval/journal.h"
#include "eval/table.h"
#include "lm/mock_llm.h"
#include "solver/dimperc.h"

/// \file dimeval_tables.h
/// Shared model-building and table-printing for Table VII / Table VIII,
/// used by three binaries: table07_dimeval, table08_dimperc_vs_base and
/// fleet_eval. The printers consume only DimEvalRow vectors, so a table
/// produced by the single-process harness and one merged from a worker
/// fleet go through byte-identical formatting — the property the
/// fleet-chaos CI job diffs.

namespace dimqr::benchtables {

/// \brief The models of one table, in row order, ready for either
/// eval::EvaluateOnDimEval or eval::RunFleetDimEval. `annotator_extractor`
/// owns the extractor the specs point at (heap-held so the struct can be
/// moved without dangling the pointers).
struct DimEvalTableModels {
  std::vector<eval::FleetModelSpec> specs;
  std::shared_ptr<eval::Extractor> annotator_extractor;
};

/// \brief Table VII models: the simulated published baselines (minus the
/// Table IX-only supervised rows) plus DimPerc trained in-process on the
/// DimEval training split. Training progress goes to stderr under `tag`.
inline DimEvalTableModels BuildTable07Models(
    const dimeval::DimEvalBenchmark& bench, const char* tag) {
  DimEvalTableModels out;
  for (const std::shared_ptr<lm::Model>& model : lm::BuildPaperBaselines()) {
    // Skip the Table IX-only supervised models (no DimEval profiles).
    if (model->name() == "BertGen" || model->name() == "LLaMa") continue;
    out.specs.push_back({model, nullptr});
  }
  std::fprintf(stderr, "[%s] training DimPerc...\n", tag);
  auto dimperc_seq = std::shared_ptr<solver::Seq2SeqModel>(
      solver::TrainDimPerc(bench, *benchutil::GetWorld().kb,
                           benchutil::BenchModelConfig(),
                           benchutil::DimEvalEpochs())
          .ValueOrDie());
  out.annotator_extractor = std::make_shared<eval::Extractor>(
      eval::AnnotatorExtractor(*benchutil::GetWorld().annotator));
  out.specs.push_back({std::make_shared<solver::DimPercPipeline>(
                           "DimPerc (ours)", dimperc_seq),
                       out.annotator_extractor.get()});
  return out;
}

/// \brief Table VIII models: the LLaMA_IFT substitute (generic instruction
/// fine-tuning only) and DimPerc, both behind the same pipeline so the
/// contrast is purely the dimensional knowledge in the weights.
inline DimEvalTableModels BuildTable08Models(
    const dimeval::DimEvalBenchmark& bench, const char* tag) {
  DimEvalTableModels out;
  solver::Seq2SeqConfig config = benchutil::BenchModelConfig();
  std::fprintf(stderr,
               "[%s] training LLaMA_IFT substitute (generic instructions "
               "only)...\n",
               tag);
  // The base model shares DimPerc's vocabulary (via vocab_extra) so its
  // deficit is knowledge, not token coverage.
  std::vector<solver::SeqExample> dimeval_pairs =
      solver::MakeDimEvalExamples(bench.train);
  std::vector<solver::SeqExample> generic =
      solver::MakeGenericInstructionExamples(
          static_cast<int>(dimeval_pairs.size()), 42);
  auto base_seq = std::shared_ptr<solver::Seq2SeqModel>(
      solver::Seq2SeqModel::Create("LLaMA_IFT", generic, config,
                                   dimeval_pairs)
          .ValueOrDie());
  base_seq->TrainEpochs(std::max(1, benchutil::DimEvalEpochs() / 2))
      .ValueOrDie();

  std::fprintf(stderr, "[%s] fine-tuning DimPerc on DimEval...\n", tag);
  auto dimperc_seq = std::shared_ptr<solver::Seq2SeqModel>(
      solver::TrainDimPerc(bench, *benchutil::GetWorld().kb, config,
                           benchutil::DimEvalEpochs())
          .ValueOrDie());

  out.annotator_extractor = std::make_shared<eval::Extractor>(
      eval::AnnotatorExtractor(*benchutil::GetWorld().annotator));
  out.specs.push_back(
      {std::make_shared<solver::DimPercPipeline>("LLaMA_IFT", base_seq),
       nullptr});
  out.specs.push_back(
      {std::make_shared<solver::DimPercPipeline>("DimPerc", dimperc_seq),
       out.annotator_extractor.get()});
  return out;
}

/// \brief Evaluates every model single-process (the classic table path),
/// returning rows in spec order. Journaling and progress tags match the
/// original table binaries.
inline std::vector<eval::DimEvalRow> EvaluateDimEvalRows(
    const DimEvalTableModels& models, const dimeval::DimEvalBenchmark& bench,
    eval::EvalJournal* journal, const char* tag) {
  std::vector<eval::DimEvalRow> rows;
  rows.reserve(models.specs.size());
  for (const eval::FleetModelSpec& spec : models.specs) {
    std::fprintf(stderr, "[%s] evaluating %s...\n", tag,
                 spec.model->name().c_str());
    rows.push_back(eval::EvaluateOnDimEval(*spec.model, bench, spec.extractor,
                                           journal));
  }
  return rows;
}

/// \brief Prints Table VII (header, baseline rows, separator, the DimPerc
/// row — expected last — and the shape check) from finished rows.
inline void PrintTable07(const std::vector<eval::DimEvalRow>& rows,
                         std::ostream& os) {
  using eval::TablePrinter;
  os << "=== Table VII: DimEval results ===\n"
     << "(baseline rows: calibrated simulators of the published "
        "numbers; DimPerc row: measured)\n\n";

  TablePrinter table({"Model", "QE", "VE", "UE", "QK P", "QK F1", "Comp P",
                      "Comp F1", "DPred P", "DPred F1", "DArith P",
                      "DArith F1", "Mag P", "Mag F1", "Conv P", "Conv F1"});
  // Incomplete tasks (permanent backend failure under fault injection)
  // print an explicit "inc" marker: their partial counts are diagnostics,
  // not results.
  auto p_cell = [](const eval::ChoiceMetrics& m) {
    return m.incomplete ? std::string("inc") : TablePrinter::Pct(m.Precision());
  };
  auto f1_cell = [](const eval::ChoiceMetrics& m) {
    return m.incomplete ? std::string("inc") : TablePrinter::Pct(m.F1());
  };
  auto qe_cell = [](const eval::DimEvalRow& row, double value) {
    return row.extraction_incomplete ? std::string("inc")
                                     : TablePrinter::Pct(value);
  };
  auto add_row = [&](const eval::DimEvalRow& row) {
    using namespace lm::tasks;
    auto& qk = row.choice.at(kQuantityKindMatch);
    auto& comp = row.choice.at(kComparableAnalysis);
    auto& dpred = row.choice.at(kDimensionPrediction);
    auto& darith = row.choice.at(kDimensionArithmetic);
    auto& mag = row.choice.at(kMagnitudeComparison);
    auto& conv = row.choice.at(kUnitConversion);
    table.AddRow({row.model, qe_cell(row, row.qe_f1),
                  qe_cell(row, row.ve_f1), qe_cell(row, row.ue_f1),
                  p_cell(qk), f1_cell(qk), p_cell(comp), f1_cell(comp),
                  p_cell(dpred), f1_cell(dpred), p_cell(darith),
                  f1_cell(darith), p_cell(mag), f1_cell(mag), p_cell(conv),
                  f1_cell(conv)});
  };
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) add_row(rows[i]);
  table.AddSeparator();
  add_row(rows.back());
  table.Print(os);

  // Shape check: DimPerc beats the best baseline on the dimension- and
  // scale-perception F1 macro average (the paper's headline RQ1/RQ2 gap).
  auto macro = [](const eval::DimEvalRow& row) {
    auto cats = eval::AggregateByCategory(row);
    return (cats[dimeval::TaskCategory::kDimensionPerception].f1 +
            cats[dimeval::TaskCategory::kScalePerception].f1) /
           2.0;
  };
  double best_baseline = 0.0;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    best_baseline = std::max(best_baseline, macro(rows[i]));
  }
  double dimperc_macro = macro(rows.back());
  os << "\nShape check (DimPerc dimension+scale macro F1 "
     << TablePrinter::Pct(dimperc_macro) << " > best baseline "
     << TablePrinter::Pct(best_baseline) << "): "
     << (dimperc_macro > best_baseline ? "PRESERVED" : "VIOLATED") << "\n";
}

/// \brief Prints Table VIII (paper reference block, measured category
/// table, shape check) from finished rows: rows[0] = base, rows[1] =
/// DimPerc.
inline void PrintTable08(const std::vector<eval::DimEvalRow>& rows,
                         std::ostream& os) {
  using eval::TablePrinter;
  auto base_cats = eval::AggregateByCategory(rows[0]);
  auto dimperc_cats = eval::AggregateByCategory(rows[1]);

  os << "=== Table VIII: DimPerc vs base model on DimEval ===\n\n"
     << "Paper reference (precision / F1, %):\n"
     << "  LLaMA_IFT: basic 29.65/24.01  dimension 20.38/16.64  "
        "scale 8.94/6.70\n"
     << "  DimPerc:   basic 71.69/63.13  dimension 82.82/77.30  "
        "scale 89.74/81.31\n\n"
     << "Measured from this build:\n";
  TablePrinter table({"Model", "Basic P", "Basic F1", "Dim P", "Dim F1",
                      "Scale P", "Scale F1"});
  auto row_of = [](const std::string& name,
                   std::map<dimeval::TaskCategory, eval::CategoryMetrics>&
                       cats) {
    using dimeval::TaskCategory;
    return std::vector<std::string>{
        name,
        TablePrinter::Pct(cats[TaskCategory::kBasicPerception].precision),
        TablePrinter::Pct(cats[TaskCategory::kBasicPerception].f1),
        TablePrinter::Pct(cats[TaskCategory::kDimensionPerception].precision),
        TablePrinter::Pct(cats[TaskCategory::kDimensionPerception].f1),
        TablePrinter::Pct(cats[TaskCategory::kScalePerception].precision),
        TablePrinter::Pct(cats[TaskCategory::kScalePerception].f1)};
  };
  table.AddRow(row_of(rows[0].model, base_cats));
  table.AddRow(row_of(rows[1].model, dimperc_cats));
  table.Print(os);

  using dimeval::TaskCategory;
  bool all_gain =
      dimperc_cats[TaskCategory::kBasicPerception].precision >
          base_cats[TaskCategory::kBasicPerception].precision &&
      dimperc_cats[TaskCategory::kDimensionPerception].precision >
          base_cats[TaskCategory::kDimensionPerception].precision &&
      dimperc_cats[TaskCategory::kScalePerception].precision >
          base_cats[TaskCategory::kScalePerception].precision;
  os << "\nShape check (DimPerc > base in every category): "
     << (all_gain ? "PRESERVED" : "VIOLATED") << "\n";
}

}  // namespace dimqr::benchtables

#endif  // DIMQR_BENCH_DIMEVAL_TABLES_H_
