// Reproduces Figure 3: popular units sorted by the frequency feature of
// DimUnitKB (Eq. 1-2). Prints the top units with ASCII bars; the paper's
// qualitative shape — everyday units (metre, hour, kilogram, percent) at
// the top, long flat tail of rare units — should be visible.

#include <iostream>

#include "bench/common.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  dimqr::benchutil::InitFromArgs(argc, argv);
  const dimqr::benchutil::World& world = dimqr::benchutil::GetWorld();
  std::vector<dimqr::UnitId> ranked = world.kb->UnitsByFrequency();

  std::cout << "=== Figure 3: units ranked by Freq(u) (Eq. 1-2; "
               "alpha=(0.3,0.3,0.4), delta=0.1) ===\n\n";
  constexpr int kTop = 24;
  for (int i = 0; i < kTop && i < static_cast<int>(ranked.size()); ++i) {
    const dimqr::kb::UnitRecord& u = world.kb->Get(ranked[i]);
    int bar = static_cast<int>(u.frequency * 48.0);
    std::printf("%2d. %-22s %5.3f |%s\n", i + 1,
                std::string(u.label_en).c_str(), u.frequency,
                std::string(bar, '#').c_str());
  }
  std::cout << "\n... tail of the ranking ...\n";
  for (std::size_t i = ranked.size() - 3; i < ranked.size(); ++i) {
    const dimqr::kb::UnitRecord& u = world.kb->Get(ranked[i]);
    std::printf("%4zu. %-40s %5.3f\n", i + 1,
                std::string(u.label_en).c_str(), u.frequency);
  }

  // The paper's motivating contrast (Section III-A4): metre common,
  // decimetre rare.
  const dimqr::kb::UnitRecord* metre =
      &world.kb->Get(world.kb->IdOf("M"));
  const dimqr::kb::UnitRecord* decimetre =
      &world.kb->Get(world.kb->IdOf("DeciM"));
  std::printf("\nShape check: Freq(metre)=%.3f > Freq(decimetre)=%.3f : %s\n",
              metre->frequency, decimetre->frequency,
              metre->frequency > decimetre->frequency ? "PRESERVED"
                                                      : "VIOLATED");
  return 0;
}
