// The snapshot packer/inspector: builds every startup artifact once, packs
// it into one mmap-able container (core/snapshot.h), and verifies the
// result by mapping it back and loading each section zero-copy.
//
//   dimqr_snapshot pack <out.dqs>     build KB + canonical serve model, pack
//   dimqr_snapshot verify <file.dqs>  map, validate CRC, load every section
//   dimqr_snapshot info <file.dqs>    list sections and sizes
//   dimqr_snapshot resident <file.dqs> [hold_ms]
//                                     map + load, optionally hold the mapping
//                                     for hold_ms, then print this process's
//                                     /proc/self/smaps entry for the file
//                                     (page-sharing smoke data; Linux only).
//                                     Launch several with overlapping holds
//                                     and the pages show up as Shared_*:
//                                     one physical copy across N processes.
//
// Benches and serve_loadgen consume the packed file via --snapshot=<path>
// (or DIMQR_SNAPSHOT); table outputs are byte-identical to the build-
// everything path because loaded artifacts share one arena representation
// with built ones.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "core/snapshot.h"
#include "kb/kb.h"
#include "lm/transformer.h"
#include "serve/loadgen.h"

namespace {

using namespace dimqr;

// Exit codes are part of the CLI contract so wrapper scripts can branch on
// the failure class (run_benches.sh does): 1 = other failure (bad magic,
// unsupported version, build error), 2 = usage, 3 = filesystem I/O error
// (missing/unreadable file), 4 = corruption (CRC mismatch, truncation,
// out-of-bounds sections — anything kDataLoss).
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIOError = 3;
constexpr int kExitCorrupt = 4;

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "dimqr_snapshot: %s: %s\n", what,
               status.ToString().c_str());
  switch (status.code()) {
    case StatusCode::kIOError:
      return kExitIOError;
    case StatusCode::kDataLoss:
      return kExitCorrupt;
    default:
      return kExitFailure;
  }
}

int Pack(const std::string& out_path) {
  snapshot::SnapshotWriter writer;

  auto kb = kb::DimUnitKB::Build();
  if (!kb.ok()) return Fail(kb.status(), "KB build failed");
  Status added = kb.ValueOrDie()->WriteSnapshot(writer);
  if (!added.ok()) return Fail(added, "packing kb");

  auto serve_model = serve::BuildCanonicalServeModel();
  if (!serve_model.ok()) return Fail(serve_model.status(), "serve model");
  snapshot::ArenaWriter serve_arena;
  serve_model.ValueOrDie().WriteTo(serve_arena);
  added = writer.AddSection("serve", std::move(serve_arena));
  if (!added.ok()) return Fail(added, "packing serve");

  Status written = writer.WriteFile(out_path);
  if (!written.ok()) return Fail(written, "writing file");
  std::printf("packed %s\n", out_path.c_str());
  return 0;
}

Result<std::shared_ptr<const snapshot::Snapshot>> MapAndLoad(
    const std::string& path, bool print) {
  DIMQR_ASSIGN_OR_RETURN(std::shared_ptr<const snapshot::Snapshot> snap,
                         snapshot::Snapshot::Map(path));
  if (snap->Has("kb")) {
    DIMQR_ASSIGN_OR_RETURN(std::shared_ptr<const kb::DimUnitKB> kb,
                           kb::DimUnitKB::FromSnapshot(snap));
    kb::KbStats stats = kb->Stats();
    if (print) {
      std::printf("  kb: %zu units, %zu kinds, %zu dimension vectors\n",
                  stats.num_units, stats.num_quantity_kinds,
                  stats.num_dimension_vectors);
    }
  }
  if (snap->Has("serve")) {
    DIMQR_ASSIGN_OR_RETURN(std::span<const std::byte> section,
                           snap->Section("serve"));
    snapshot::ArenaReader reader(section);
    DIMQR_ASSIGN_OR_RETURN(lm::Transformer model,
                           lm::Transformer::FromArena(reader, snap));
    if (print) {
      std::printf("  serve: transformer, %zu parameters\n",
                  model.num_parameters());
    }
  }
  return snap;
}

int Verify(const std::string& path) {
  auto snap = MapAndLoad(path, /*print=*/true);
  if (!snap.ok()) return Fail(snap.status(), "verify failed");
  std::printf("OK %s (%zu bytes, CRC valid, all sections load)\n",
              path.c_str(), snap.ValueOrDie()->view().size_bytes());
  return 0;
}

int Info(const std::string& path) {
  auto snap = snapshot::Snapshot::Map(path);
  if (!snap.ok()) return Fail(snap.status(), "cannot map");
  const snapshot::SnapshotView& view = snap.ValueOrDie()->view();
  std::printf("%s: %zu bytes, format v%u\n", path.c_str(), view.size_bytes(),
              snapshot::kSnapshotVersion);
  for (std::string_view name : view.SectionNames()) {
    auto section = view.Section(name);
    std::printf("  %-24s %10zu bytes\n", std::string(name).c_str(),
                section.ok() ? section.ValueOrDie().size() : 0);
  }
  return 0;
}

int Resident(const std::string& path, int hold_ms) {
  auto snap = MapAndLoad(path, /*print=*/false);
  if (!snap.ok()) return Fail(snap.status(), "cannot map/load");
  if (hold_ms > 0) {
    // Let sibling processes map the same file before sampling smaps, so
    // shared pages are attributed as Shared_* rather than Private_*.
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
  }
  // Print the smaps entry covering the snapshot mapping: with N concurrent
  // processes over one file, the resident bytes show up as Shared_Clean,
  // i.e. one physical copy (run_benches.sh checks this).
  std::error_code ec;
  std::string abs_path = std::filesystem::weakly_canonical(path, ec).string();
  if (ec) abs_path = path;
  std::ifstream smaps("/proc/self/smaps");
  if (!smaps) {
    std::printf("no /proc/self/smaps on this platform; mapping is live\n");
    return 0;
  }
  std::string line;
  bool in_entry = false;
  while (std::getline(smaps, line)) {
    // Header lines start with a hex address range ("7f..-7f.. r--p ...");
    // stat lines start with a capitalized key ("Rss:", "Shared_Clean:", ...).
    std::size_t dash = line.find('-');
    bool is_header =
        dash != std::string::npos && dash > 0 &&
        line.find_first_not_of("0123456789abcdef") == dash;
    if (is_header) in_entry = line.find(abs_path) != std::string::npos;
    if (in_entry &&
        (is_header || line.rfind("Rss:", 0) == 0 ||
         line.rfind("Shared_Clean:", 0) == 0 ||
         line.rfind("Shared_Dirty:", 0) == 0 ||
         line.rfind("Private_Dirty:", 0) == 0)) {
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "pack") == 0) return Pack(argv[2]);
  if (argc == 3 && std::strcmp(argv[1], "verify") == 0) return Verify(argv[2]);
  if (argc == 3 && std::strcmp(argv[1], "info") == 0) return Info(argv[2]);
  if ((argc == 3 || argc == 4) && std::strcmp(argv[1], "resident") == 0) {
    return Resident(argv[2], argc == 4 ? std::atoi(argv[3]) : 0);
  }
  std::fprintf(stderr,
               "usage: %s pack|verify|info <snapshot.dqs>\n"
               "       %s resident <snapshot.dqs> [hold_ms]\n"
               "exit codes: 0 ok, 1 other failure, 2 usage, 3 I/O error, "
               "4 corrupt snapshot\n",
               argv[0], argv[0]);
  return kExitUsage;
}
