// Reproduces Table VI: statistics of the quantitative-reasoning evaluation
// datasets — #Num (problems), #Units (distinct units) and the
// operation-count histogram — for N-Math23k, N-Ape210k and their Q-MWP
// extensions. The expected shape: Q-* datasets carry more units and their
// operation counts shift right (unit conversions add computation steps).

#include <iostream>

#include "bench/common.h"
#include "eval/table.h"
#include "mwp/stats.h"

namespace {

void AddStatsRow(dimqr::eval::TablePrinter& table,
                 const dimqr::mwp::DatasetStats& stats) {
  table.AddRow({stats.dataset, std::to_string(stats.num_problems),
                std::to_string(stats.num_units),
                std::to_string(stats.op_buckets[0]),
                std::to_string(stats.op_buckets[1]),
                std::to_string(stats.op_buckets[2]),
                std::to_string(stats.op_buckets[3]),
                dimqr::eval::TablePrinter::Num(stats.mean_ops, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  dimqr::benchutil::InitFromArgs(argc, argv);
  using dimqr::eval::TablePrinter;
  using dimqr::mwp::ComputeStats;
  const dimqr::benchutil::MwpDatasets& d = dimqr::benchutil::GetMwpDatasets();

  std::cout << "=== Table VI: evaluation-dataset statistics ===\n\n"
            << "Paper reference (225 problems each):\n"
            << "  N-Math23k: 17 units; ops [0,3]=162 (3,5]=47 (5,8]=16 "
               "(8,inf)=0\n"
            << "  N-Ape210k: 18 units; ops [0,3]=139 (3,5]=55 (5,8]=27 "
               "(8,inf)=4\n"
            << "  Q-Math23k: 35 units; ops [0,3]=108 (3,5]=86 (5,8]=24 "
               "(8,inf)=7\n"
            << "  Q-Ape210k: 52 units; ops [0,3]=99  (3,5]=68 (5,8]=39 "
               "(8,inf)=19\n\n"
            << "Measured from this build:\n";
  TablePrinter table({"Dataset", "#Num", "#Units", "[0,3]", "(3,5]", "(5,8]",
                      "(8,+inf)", "mean ops"});
  dimqr::mwp::DatasetStats nm = ComputeStats(d.n_math23k, "N-Math23k");
  dimqr::mwp::DatasetStats na = ComputeStats(d.n_ape210k, "N-Ape210k");
  dimqr::mwp::DatasetStats qm = ComputeStats(d.q_math23k, "Q-Math23k");
  dimqr::mwp::DatasetStats qa = ComputeStats(d.q_ape210k, "Q-Ape210k");
  AddStatsRow(table, nm);
  AddStatsRow(table, na);
  table.AddSeparator();
  AddStatsRow(table, qm);
  AddStatsRow(table, qa);
  table.Print(std::cout);

  bool more_units = qm.num_units > nm.num_units && qa.num_units > na.num_units;
  bool heavier_ops = qm.mean_ops > nm.mean_ops && qa.mean_ops > na.mean_ops;
  bool ape_harder = na.mean_ops > nm.mean_ops;
  std::cout << "\nShape checks:\n"
            << "  Q-* uses more distinct units than N-*: "
            << (more_units ? "PRESERVED" : "VIOLATED") << "\n"
            << "  Q-* operation counts shift right:      "
            << (heavier_ops ? "PRESERVED" : "VIOLATED") << "\n"
            << "  Ape210k-style harder than Math23k:     "
            << (ape_harder ? "PRESERVED" : "VIOLATED") << "\n";
  return 0;
}
