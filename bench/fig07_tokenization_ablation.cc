// Reproduces Figure 7: accuracy on Q-Ape210k across training steps for the
// base model vs DimPerc initialization, each with and without equation
// tokenization (ET = digit-split numbers, Section V-B3). The paper's
// findings: (a) DimPerc leads the base model especially early in training;
// (b) ET *hurts* (contradicting GenBERT's small-model result).

#include <iostream>

#include "bench/common.h"
#include "eval/table.h"

namespace {

struct Curve {
  std::string label;
  std::vector<double> accuracy;
};

}  // namespace

int main(int argc, char** argv) {
  dimqr::benchutil::InitFromArgs(argc, argv);
  using namespace dimqr;
  const benchutil::MwpDatasets& d = benchutil::GetMwpDatasets();

  std::cout << "=== Figure 7: Q-Ape210k accuracy vs training steps ===\n\n";
  const int kCheckpoints = benchutil::FastMode() ? 2 : 3;
  const int kStepsPerCheckpoint = benchutil::FastMode() ? 20 : 70;

  std::vector<solver::SeqExample> q_train =
      solver::MakeMwpExamples(d.train_q_ape210k);
  std::vector<solver::SeqExample> dimeval_knowledge =
      solver::MakeUnitKnowledgeExamples(*benchutil::GetWorld().kb,
                                        /*pool_size=*/240, /*repeats=*/2);

  std::vector<Curve> curves;
  for (bool dimperc_init : {false, true}) {
    for (bool equation_tokenization : {false, true}) {
      solver::Seq2SeqConfig config = benchutil::BenchModelConfig();
      config.tokenization = equation_tokenization
                                ? mwp::TokenizationMode::kDigit
                                : mwp::TokenizationMode::kRegular;
      std::string label = std::string(dimperc_init ? "DimPerc" : "LLaMA_ift") +
                          (equation_tokenization ? " w/ ET" : " w/o ET");
      std::cerr << "[fig07] " << label << "...\n";
      // DimPerc initialization: phase-1 training on dimensional knowledge
      // before the MWP phase (Section V-B1's continued fine-tuning).
      std::unique_ptr<solver::Seq2SeqModel> model;
      if (dimperc_init) {
        model = solver::Seq2SeqModel::Create(label, dimeval_knowledge,
                                             config, q_train)
                    .ValueOrDie();
        model->TrainEpochs(2).ValueOrDie();
        if (!model->ReplaceTrainingSet(q_train).ok()) return 1;
      } else {
        model =
            solver::Seq2SeqModel::Create(label, q_train, config).ValueOrDie();
      }
      Curve curve;
      curve.label = label;
      for (int checkpoint = 0; checkpoint < kCheckpoints; ++checkpoint) {
        model->TrainSteps(kStepsPerCheckpoint).ValueOrDie();
        curve.accuracy.push_back(
            solver::EvaluateMwpAccuracy(*model, d.q_ape210k));
      }
      curves.push_back(std::move(curve));
    }
  }

  std::cout << "steps:";
  for (int c = 1; c <= kCheckpoints; ++c) {
    std::printf(" %6d", c * kStepsPerCheckpoint);
  }
  std::cout << "\n";
  for (const Curve& curve : curves) {
    std::printf("%-18s", curve.label.c_str());
    for (double a : curve.accuracy) std::printf(" %5.1f%%", a * 100.0);
    std::printf("\n");
  }

  // Shape checks. Curves order: base w/o ET, base w/ ET, DimPerc w/o ET,
  // DimPerc w/ ET.
  double base_final = curves[0].accuracy.back();
  double base_et_final = curves[1].accuracy.back();
  double dimperc_first = curves[2].accuracy.front();
  double base_first = curves[0].accuracy.front();
  double dimperc_final = curves[2].accuracy.back();
  std::cout << "\nShape checks:\n"
            << "  DimPerc leads early in training:      "
            << (dimperc_first >= base_first ? "PRESERVED" : "VIOLATED")
            << "\n"
            << "  equation tokenization hurts (w/o ET > w/ ET): "
            << (base_final >= base_et_final ? "PRESERVED" : "VIOLATED")
            << "\n"
            << "  DimPerc >= base at the end:           "
            << (dimperc_final + 0.02 >= base_final ? "PRESERVED" : "VIOLATED")
            << "\n";
  return 0;
}
