// Reproduces Table VII: results of all models on DimEval — the twelve
// published baseline rows (simulated from their Table VII skill profiles;
// see DESIGN.md) plus DimPerc, trained in-process on the DimEval training
// split and evaluated through the knowledge-recall pipeline. The expected
// shape: DimPerc dominates dimension- and scale-perception tasks.

#include <iostream>
#include <string_view>

#include "bench/common.h"
#include "eval/harness.h"
#include "eval/journal.h"
#include "eval/table.h"
#include "lm/mock_llm.h"
#include "solver/dimperc.h"

int main(int argc, char** argv) {
  using namespace dimqr;
  benchutil::InitFromArgs(argc, argv);
  using eval::TablePrinter;

  // --journal=<path>: checkpoint each completed (model, task) evaluation;
  // rerunning with the same path resumes, replaying journaled counts.
  std::unique_ptr<eval::EvalJournal> journal;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--journal=", 0) == 0) {
      auto opened = eval::EvalJournal::Open(std::string(arg.substr(10)));
      if (!opened.ok()) {
        std::cerr << "table07: " << opened.status().ToString() << "\n";
        return 1;
      }
      journal = std::move(opened).ValueOrDie();
      if (journal->loaded_records() > 0) {
        std::cerr << "[table07] resuming: " << journal->loaded_records()
                  << " journaled task(s) will be replayed\n";
      }
    } else {
      std::cerr << "table07: unknown argument '" << arg
                << "' (supported: --journal=<path>)\n";
      return 1;
    }
  }

  const dimeval::DimEvalBenchmark& bench = benchutil::GetDimEval();

  std::cout << "=== Table VII: DimEval results ===\n"
            << "(baseline rows: calibrated simulators of the published "
               "numbers; DimPerc row: measured)\n\n";

  TablePrinter table({"Model", "QE", "VE", "UE", "QK P", "QK F1", "Comp P",
                      "Comp F1", "DPred P", "DPred F1", "DArith P",
                      "DArith F1", "Mag P", "Mag F1", "Conv P", "Conv F1"});
  // Incomplete tasks (permanent backend failure under fault injection)
  // print an explicit "inc" marker: their partial counts are diagnostics,
  // not results.
  auto p_cell = [](const eval::ChoiceMetrics& m) {
    return m.incomplete ? std::string("inc") : TablePrinter::Pct(m.Precision());
  };
  auto f1_cell = [](const eval::ChoiceMetrics& m) {
    return m.incomplete ? std::string("inc") : TablePrinter::Pct(m.F1());
  };
  auto qe_cell = [](const eval::DimEvalRow& row, double value) {
    return row.extraction_incomplete ? std::string("inc")
                                     : TablePrinter::Pct(value);
  };
  auto add_row = [&](const eval::DimEvalRow& row) {
    using namespace lm::tasks;
    auto& qk = row.choice.at(kQuantityKindMatch);
    auto& comp = row.choice.at(kComparableAnalysis);
    auto& dpred = row.choice.at(kDimensionPrediction);
    auto& darith = row.choice.at(kDimensionArithmetic);
    auto& mag = row.choice.at(kMagnitudeComparison);
    auto& conv = row.choice.at(kUnitConversion);
    table.AddRow({row.model, qe_cell(row, row.qe_f1),
                  qe_cell(row, row.ve_f1), qe_cell(row, row.ue_f1),
                  p_cell(qk), f1_cell(qk), p_cell(comp), f1_cell(comp),
                  p_cell(dpred), f1_cell(dpred), p_cell(darith),
                  f1_cell(darith), p_cell(mag), f1_cell(mag), p_cell(conv),
                  f1_cell(conv)});
  };

  std::vector<eval::DimEvalRow> baseline_rows;
  for (const std::shared_ptr<lm::Model>& model : lm::BuildPaperBaselines()) {
    // Skip the Table IX-only supervised models (no DimEval profiles).
    if (model->name() == "BertGen" || model->name() == "LLaMa") continue;
    std::cerr << "[table07] evaluating " << model->name() << "...\n";
    baseline_rows.push_back(
        eval::EvaluateOnDimEval(*model, bench, nullptr, journal.get()));
    add_row(baseline_rows.back());
  }

  std::cerr << "[table07] training DimPerc...\n";
  auto dimperc_seq = std::shared_ptr<solver::Seq2SeqModel>(
      solver::TrainDimPerc(bench, *benchutil::GetWorld().kb,
                           benchutil::BenchModelConfig(),
                           benchutil::DimEvalEpochs())
          .ValueOrDie());
  solver::DimPercPipeline dimperc("DimPerc (ours)", dimperc_seq);
  eval::Extractor extractor =
      eval::AnnotatorExtractor(*benchutil::GetWorld().annotator);
  eval::DimEvalRow dimperc_row =
      eval::EvaluateOnDimEval(dimperc, bench, &extractor, journal.get());
  table.AddSeparator();
  add_row(dimperc_row);
  table.Print(std::cout);

  // Shape check: DimPerc beats the best baseline on the dimension- and
  // scale-perception F1 macro average (the paper's headline RQ1/RQ2 gap).
  auto macro = [](const eval::DimEvalRow& row) {
    auto cats = eval::AggregateByCategory(row);
    return (cats[dimeval::TaskCategory::kDimensionPerception].f1 +
            cats[dimeval::TaskCategory::kScalePerception].f1) /
           2.0;
  };
  double best_baseline = 0.0;
  for (const eval::DimEvalRow& row : baseline_rows) {
    auto copy = row;
    best_baseline = std::max(best_baseline, macro(copy));
  }
  auto dimperc_copy = dimperc_row;
  std::cout << "\nShape check (DimPerc dimension+scale macro F1 "
            << TablePrinter::Pct(macro(dimperc_copy)) << " > best baseline "
            << TablePrinter::Pct(best_baseline) << "): "
            << (macro(dimperc_copy) > best_baseline ? "PRESERVED"
                                                    : "VIOLATED")
            << "\n";
  return 0;
}
