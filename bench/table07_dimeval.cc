// Reproduces Table VII: results of all models on DimEval — the twelve
// published baseline rows (simulated from their Table VII skill profiles;
// see DESIGN.md) plus DimPerc, trained in-process on the DimEval training
// split and evaluated through the knowledge-recall pipeline. The expected
// shape: DimPerc dominates dimension- and scale-perception tasks.

#include <iostream>

#include "bench/common.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "lm/mock_llm.h"
#include "solver/dimperc.h"

int main() {
  using namespace dimqr;
  using eval::TablePrinter;
  const dimeval::DimEvalBenchmark& bench = benchutil::GetDimEval();

  std::cout << "=== Table VII: DimEval results ===\n"
            << "(baseline rows: calibrated simulators of the published "
               "numbers; DimPerc row: measured)\n\n";

  TablePrinter table({"Model", "QE", "VE", "UE", "QK P", "QK F1", "Comp P",
                      "Comp F1", "DPred P", "DPred F1", "DArith P",
                      "DArith F1", "Mag P", "Mag F1", "Conv P", "Conv F1"});
  auto add_row = [&table](const eval::DimEvalRow& row) {
    using namespace lm::tasks;
    auto& qk = row.choice.at(kQuantityKindMatch);
    auto& comp = row.choice.at(kComparableAnalysis);
    auto& dpred = row.choice.at(kDimensionPrediction);
    auto& darith = row.choice.at(kDimensionArithmetic);
    auto& mag = row.choice.at(kMagnitudeComparison);
    auto& conv = row.choice.at(kUnitConversion);
    table.AddRow({row.model, TablePrinter::Pct(row.qe_f1),
                  TablePrinter::Pct(row.ve_f1), TablePrinter::Pct(row.ue_f1),
                  TablePrinter::Pct(qk.Precision()), TablePrinter::Pct(qk.F1()),
                  TablePrinter::Pct(comp.Precision()),
                  TablePrinter::Pct(comp.F1()),
                  TablePrinter::Pct(dpred.Precision()),
                  TablePrinter::Pct(dpred.F1()),
                  TablePrinter::Pct(darith.Precision()),
                  TablePrinter::Pct(darith.F1()),
                  TablePrinter::Pct(mag.Precision()), TablePrinter::Pct(mag.F1()),
                  TablePrinter::Pct(conv.Precision()),
                  TablePrinter::Pct(conv.F1())});
  };

  std::vector<eval::DimEvalRow> baseline_rows;
  for (const std::shared_ptr<lm::Model>& model : lm::BuildPaperBaselines()) {
    // Skip the Table IX-only supervised models (no DimEval profiles).
    if (model->name() == "BertGen" || model->name() == "LLaMa") continue;
    std::cerr << "[table07] evaluating " << model->name() << "...\n";
    baseline_rows.push_back(eval::EvaluateOnDimEval(*model, bench));
    add_row(baseline_rows.back());
  }

  std::cerr << "[table07] training DimPerc...\n";
  auto dimperc_seq = std::shared_ptr<solver::Seq2SeqModel>(
      solver::TrainDimPerc(bench, *benchutil::GetWorld().kb,
                           benchutil::BenchModelConfig(),
                           benchutil::DimEvalEpochs())
          .ValueOrDie());
  solver::DimPercPipeline dimperc("DimPerc (ours)", dimperc_seq);
  eval::Extractor extractor =
      eval::AnnotatorExtractor(*benchutil::GetWorld().annotator);
  eval::DimEvalRow dimperc_row =
      eval::EvaluateOnDimEval(dimperc, bench, &extractor);
  table.AddSeparator();
  add_row(dimperc_row);
  table.Print(std::cout);

  // Shape check: DimPerc beats the best baseline on the dimension- and
  // scale-perception F1 macro average (the paper's headline RQ1/RQ2 gap).
  auto macro = [](const eval::DimEvalRow& row) {
    auto cats = eval::AggregateByCategory(row);
    return (cats[dimeval::TaskCategory::kDimensionPerception].f1 +
            cats[dimeval::TaskCategory::kScalePerception].f1) /
           2.0;
  };
  double best_baseline = 0.0;
  for (const eval::DimEvalRow& row : baseline_rows) {
    auto copy = row;
    best_baseline = std::max(best_baseline, macro(copy));
  }
  auto dimperc_copy = dimperc_row;
  std::cout << "\nShape check (DimPerc dimension+scale macro F1 "
            << TablePrinter::Pct(macro(dimperc_copy)) << " > best baseline "
            << TablePrinter::Pct(best_baseline) << "): "
            << (macro(dimperc_copy) > best_baseline ? "PRESERVED"
                                                    : "VIOLATED")
            << "\n";
  return 0;
}
