// Reproduces Table VII: results of all models on DimEval — the twelve
// published baseline rows (simulated from their Table VII skill profiles;
// see DESIGN.md) plus DimPerc, trained in-process on the DimEval training
// split and evaluated through the knowledge-recall pipeline. The expected
// shape: DimPerc dominates dimension- and scale-perception tasks.
//
// Model building and printing live in bench/dimeval_tables.h, shared with
// fleet_eval: this binary is the single-process reference whose stdout the
// fleet-chaos CI job byte-diffs against the multi-process run.

#include <iostream>
#include <string_view>

#include "bench/common.h"
#include "bench/dimeval_tables.h"
#include "eval/journal.h"

int main(int argc, char** argv) {
  using namespace dimqr;
  benchutil::InitFromArgs(argc, argv);

  // --journal=<path>: checkpoint each completed (model, task) evaluation;
  // rerunning with the same path resumes, replaying journaled counts.
  std::unique_ptr<eval::EvalJournal> journal;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--journal=", 0) == 0) {
      auto opened = eval::EvalJournal::Open(std::string(arg.substr(10)));
      if (!opened.ok()) {
        std::cerr << "table07: " << opened.status().ToString() << "\n";
        return 1;
      }
      journal = std::move(opened).ValueOrDie();
      if (journal->loaded_records() > 0) {
        std::cerr << "[table07] resuming: " << journal->loaded_records()
                  << " journaled task(s) will be replayed\n";
      }
    } else {
      std::cerr << "table07: unknown argument '" << arg
                << "' (supported: --journal=<path>)\n";
      return 1;
    }
  }

  const dimeval::DimEvalBenchmark& bench = benchutil::GetDimEval();
  benchtables::DimEvalTableModels models =
      benchtables::BuildTable07Models(bench, "table07");
  std::vector<eval::DimEvalRow> rows =
      benchtables::EvaluateDimEvalRows(models, bench, journal.get(),
                                       "table07");
  benchtables::PrintTable07(rows, std::cout);
  return 0;
}
