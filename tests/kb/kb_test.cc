#include "kb/kb.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <span>
#include <unordered_set>

namespace dimqr::kb {
namespace {

/// One KB shared by all tests in this file (construction is expensive).
const DimUnitKB& Kb() {
  static const std::shared_ptr<const DimUnitKB> kKb =
      DimUnitKB::Build().ValueOrDie();
  return *kKb;
}

/// The record of a UnitID that must exist.
const UnitRecord& Rec(std::string_view id) {
  return Kb().Get(Kb().ResolveId(id).ValueOrDie());
}

TEST(DimUnitKBTest, BuildsWithoutErrors) {
  EXPECT_GT(Kb().units().size(), 0u);
  EXPECT_GT(Kb().kinds().size(), 0u);
}

TEST(DimUnitKBTest, ReachesTableIvScale) {
  // Table IV: DimUnitKB has 1778 units / 327 kinds / 175 dim vectors,
  // versus WolframAlpha's 540/173/63 and UoM's 76/16. The reproduction
  // must preserve the ordering DimUnitKB >> WolframAlpha >> UoM.
  KbStats stats = Kb().Stats();
  EXPECT_GT(stats.num_units, 1000u) << "should be well above WolframAlpha's 540";
  EXPECT_GT(stats.num_quantity_kinds, 173u) << "above WolframAlpha's 173";
  EXPECT_GT(stats.num_dimension_vectors, 63u) << "above WolframAlpha's 63";
}

TEST(DimUnitKBTest, UniqueIds) {
  std::unordered_set<std::string> ids;
  for (const UnitRecord& u : Kb().units()) {
    EXPECT_TRUE(ids.insert(std::string(u.id)).second) << "duplicate id " << u.id;
  }
}

TEST(DimUnitKBTest, EveryUnitHasLabelKindDimension) {
  for (const UnitRecord& u : Kb().units()) {
    EXPECT_FALSE(u.label_en.empty()) << u.id;
    EXPECT_FALSE(u.quantity_kind.empty()) << u.id;
    EXPECT_TRUE(Kb().FindKind(u.quantity_kind).ok())
        << u.id << " kind " << u.quantity_kind;
    EXPECT_NE(u.conversion_value, 0.0) << u.id;
    EXPECT_FALSE(u.description.empty()) << u.id;
  }
}

TEST(DimUnitKBTest, UnitDimensionMatchesKindDimension) {
  for (const UnitRecord& u : Kb().units()) {
    const QuantityKindRecord* kind = Kb().FindKind(u.quantity_kind).ValueOrDie();
    EXPECT_EQ(u.dimension, kind->dimension) << u.id;
  }
}

TEST(DimUnitKBTest, ExactConversionsAgreeWithDoubles) {
  for (const UnitRecord& u : Kb().units()) {
    if (!u.exact_conversion) continue;
    EXPECT_NEAR(u.exact_conversion->ToDouble(), u.conversion_value,
                1e-9 * std::abs(u.conversion_value))
        << u.id;
  }
}

TEST(DimUnitKBTest, FrequenciesInPaperRange) {
  // Eq. (2) maps scores to [delta, 1] with delta = 0.1.
  for (const UnitRecord& u : Kb().units()) {
    EXPECT_GE(u.frequency, 0.1) << u.id;
    EXPECT_LE(u.frequency, 1.0) << u.id;
  }
}

TEST(DimUnitKBTest, ResolveIdAndGet) {
  const UnitRecord& m = Rec("M");
  EXPECT_EQ(m.label_en, "metre");
  EXPECT_EQ(m.label_zh, "米");
  EXPECT_EQ(m.dimension, dims::Length());
  EXPECT_FALSE(Kb().ResolveId("NO_SUCH_UNIT").ok());
}

TEST(DimUnitKBTest, PrefixExpansionProducesKilometre) {
  const UnitRecord& km = Rec("KiloM");
  EXPECT_EQ(km.label_en, "kilometre");
  EXPECT_EQ(km.label_zh, "千米");
  EXPECT_EQ(km.origin, UnitOrigin::kPrefixExpanded);
  EXPECT_DOUBLE_EQ(km.conversion_value, 1000.0);
  ASSERT_TRUE(km.exact_conversion.has_value());
  EXPECT_EQ(*km.exact_conversion, Rational(1000));
  // Symbol composition: "k" + "m".
  ASSERT_FALSE(km.symbols.empty());
  EXPECT_EQ(km.symbols[0], "km");
  // Alias composition: "kilo" + "meter".
  bool has_kilometer = false;
  for (std::string_view a : km.aliases) {
    if (a == "kilometer") has_kilometer = true;
  }
  EXPECT_TRUE(has_kilometer);
}

TEST(DimUnitKBTest, PaperFig1UnitsPresent) {
  // Fig. 1 hinges on poundal (LMT-2) vs dyn/cm (MT-2).
  const UnitRecord& poundal = Rec("POUNDAL");
  EXPECT_EQ(poundal.dimension.ToFormula(), "LMT-2");
  const UnitRecord& dyn_cm = Rec("DYN-PER-CentiM");
  EXPECT_EQ(dyn_cm.dimension.ToFormula(), "MT-2");
  EXPECT_EQ(dyn_cm.dimension.ToVectorForm(), "A0E0L0I0M1H0T-2D0");
  EXPECT_FALSE(poundal.dimension.ComparableWith(dyn_cm.dimension));
}

TEST(DimUnitKBTest, PaperTableIGillPerHourPresent) {
  const UnitRecord& gill_h = Rec("GILL_US-PER-HR");
  EXPECT_EQ(gill_h.dimension.ToFormula(), "L3T-1");
  EXPECT_EQ(gill_h.quantity_kind, "VolumeFlowRate");
}

TEST(DimUnitKBTest, CompoundConversionIsExact) {
  // km/h -> m/s is exactly 5/18.
  const UnitRecord& kmh = Rec("KiloM-PER-HR");
  const UnitRecord& ms = Rec("M-PER-SEC");
  double factor =
      kmh.Semantics().ConversionFactorTo(ms.Semantics()).ValueOrDie();
  EXPECT_DOUBLE_EQ(factor, 5.0 / 18.0);
  ASSERT_TRUE(kmh.exact_conversion.has_value());
  EXPECT_EQ(*kmh.exact_conversion, Rational::Of(5, 18).ValueOrDie());
}

TEST(DimUnitKBTest, ConversionFactorByResolvedIds) {
  EXPECT_DOUBLE_EQ(
      Kb().ConversionFactor(Kb().IdOf("KiloM"), Kb().IdOf("M")).ValueOrDie(),
      1000.0);
  EXPECT_DOUBLE_EQ(
      Kb().ConversionFactor(Kb().IdOf("IN"), Kb().IdOf("CentiM")).ValueOrDie(),
      2.54);
  EXPECT_EQ(Kb().ConversionFactor(Kb().IdOf("KiloM"), Kb().IdOf("SEC"))
                .status()
                .code(),
            StatusCode::kDimensionMismatch);
}

TEST(DimUnitKBTest, FindBySurfaceExactAndCaseFallback) {
  std::span<const UnitId> exact = Kb().FindBySurface("km");
  ASSERT_FALSE(exact.empty());
  EXPECT_EQ(Kb().Get(exact.front()).id, "KiloM");
  // Case-insensitive fallback: "KM" has no exact match.
  std::span<const UnitId> ci = Kb().FindBySurface("KM");
  ASSERT_FALSE(ci.empty());
  EXPECT_EQ(Kb().Get(ci.front()).id, "KiloM");
  EXPECT_TRUE(Kb().FindBySurface("no-such-unit-xyz").empty());
}

TEST(DimUnitKBTest, CaseSensitiveMatchWinsOverFoldedFallback) {
  // Regression pin for the exact-first/ci-fallback contract. "M" is the
  // molar symbol, "m" the metre symbol: the uppercase query must take the
  // exact posting list (molar) and never fall through to the folded index,
  // which would surface metre.
  std::span<const UnitId> upper = Kb().FindBySurface("M");
  ASSERT_FALSE(upper.empty());
  for (UnitId uid : upper) {
    EXPECT_NE(Kb().Get(uid).id, "M")
        << "ci fallback leaked metre into an exact-match query";
  }
  bool molar = false;
  for (UnitId uid : upper) molar |= Kb().Get(uid).id == "MOLAR_U";
  EXPECT_TRUE(molar) << "exact surface 'M' should reach the molar unit";
  std::span<const UnitId> lower = Kb().FindBySurface("m");
  ASSERT_FALSE(lower.empty());
  EXPECT_EQ(Kb().Get(lower.front()).id, "M");
  // Non-ASCII surfaces have no case folding: exact and "folded" queries
  // must agree byte-for-byte.
  std::span<const UnitId> zh = Kb().FindBySurface("千克");
  ASSERT_FALSE(zh.empty());
  EXPECT_EQ(Kb().Get(zh.front()).id, "KiloGM");
}

TEST(DimUnitKBTest, ChineseSurfaceFormsIndexed) {
  std::span<const UnitId> zh = Kb().FindBySurface("千克");
  ASSERT_FALSE(zh.empty());
  EXPECT_EQ(Kb().Get(zh.front()).id, "KiloGM");
  std::span<const UnitId> jin = Kb().FindBySurface("斤");
  ASSERT_FALSE(jin.empty());
  EXPECT_EQ(Kb().Get(jin.front()).id, "JIN_CN");
}

TEST(DimUnitKBTest, AmbiguousSurfaceReturnsAllCandidates) {
  // "degree" is both the angle unit alias and part of temperature labels;
  // at minimum the angle unit must be found, and multiple matches must be
  // supported by the API shape.
  std::span<const UnitId> deg = Kb().FindBySurface("degrees");
  ASSERT_FALSE(deg.empty());
}

TEST(DimUnitKBTest, IdHandlesRoundTrip) {
  UnitId m = Kb().IdOf("M");
  ASSERT_TRUE(m.valid());
  EXPECT_EQ(Kb().Get(m).id, "M");
  EXPECT_EQ(Kb().IdOf("NO_SUCH_UNIT"), UnitId());
  EXPECT_FALSE(Kb().ResolveId("NO_SUCH_UNIT").ok());
  EXPECT_EQ(*Kb().ResolveId("KiloM"), Kb().IdOf("KiloM"));
}

TEST(DimUnitKBTest, UnitsOfDimensionForce) {
  std::span<const UnitId> force = Kb().UnitsOfDimension(dims::Force());
  // newton + dyne + poundal + kgf + lbf + 24 newton prefixes at least.
  EXPECT_GE(force.size(), 25u);
  for (UnitId uid : force) {
    EXPECT_EQ(Kb().Get(uid).dimension, dims::Force()) << Kb().Get(uid).id;
  }
}

TEST(DimUnitKBTest, UnitsOfKind) {
  std::span<const UnitId> vel = Kb().UnitsOfKind(Kb().KindIdOf("Velocity"));
  EXPECT_GE(vel.size(), 30u);  // 13x5 compounds + knot + mach + c
  EXPECT_FALSE(Kb().KindIdOf("NoSuchKind").valid());
  EXPECT_TRUE(Kb().UnitsOfKind(Kb().KindIdOf("NoSuchKind")).empty());
  EXPECT_TRUE(Kb().UnitsOfKind(KindId()).empty());
  // KindIdOf aligns with the registry record order.
  KindId velocity = Kb().KindIdOf("Velocity");
  ASSERT_TRUE(velocity.valid());
  EXPECT_EQ(Kb().GetKind(velocity).name, "Velocity");
  EXPECT_EQ(Kb().UnitsOfKind(velocity).size(), vel.size());
}

TEST(DimUnitKBTest, ConversionFactorByHandleMatchesSemantics) {
  UnitId in = Kb().IdOf("IN");
  UnitId cm = Kb().IdOf("CentiM");
  ASSERT_TRUE(in.valid());
  ASSERT_TRUE(cm.valid());
  // The memoized table must be bit-identical to the exact Rational path.
  EXPECT_DOUBLE_EQ(Kb().ConversionFactor(in, cm).ValueOrDie(), 2.54);
  EXPECT_DOUBLE_EQ(
      Kb().ConversionFactor(in, cm).ValueOrDie(),
      Kb().Get(in).Semantics().ConversionFactorTo(Kb().Get(cm).Semantics())
          .ValueOrDie());
  // Mismatched dimensions keep the slow path's status code.
  EXPECT_EQ(Kb().ConversionFactor(Kb().IdOf("KiloM"), Kb().IdOf("SEC"))
                .status()
                .code(),
            StatusCode::kDimensionMismatch);
  // Invalid handles are rejected, not dereferenced.
  EXPECT_EQ(Kb().ConversionFactor(UnitId(), cm).status().code(),
            StatusCode::kNotFound);
  // Affine endpoints (NaN in the memo) fall back to the exact slow path.
  UnitId celsius = Kb().IdOf("DEG_C");
  UnitId kelvin = Kb().IdOf("K");
  ASSERT_TRUE(celsius.valid());
  ASSERT_TRUE(kelvin.valid());
  EXPECT_EQ(Kb().ConversionFactor(celsius, kelvin).status().code(),
            Kb().Get(celsius)
                .Semantics()
                .ConversionFactorTo(Kb().Get(kelvin).Semantics())
                .status()
                .code());
}

TEST(DimUnitKBTest, ResolverEvaluatesUnitExpressions) {
  UnitResolver resolver = Kb().Resolver();
  UnitExpr e = UnitExpr::Parse("joule x metre").ValueOrDie();
  Dimension d = e.EvaluateDimension(resolver).ValueOrDie();
  EXPECT_EQ(d.ToFormula(), "L3MT-2");
  // Symbols resolve too.
  UnitExpr e2 = UnitExpr::Parse("km/h").ValueOrDie();
  EXPECT_EQ(e2.EvaluateDimension(resolver).ValueOrDie(), dims::Velocity());
}

TEST(DimUnitKBTest, FrequencyRankingPutsCommonUnitsFirst) {
  // Fig. 3's shape: metre/second-class units rank far above rarities.
  std::vector<UnitId> ranked = Kb().UnitsByFrequency();
  ASSERT_GT(ranked.size(), 100u);
  std::unordered_set<std::string> top50;
  for (std::size_t i = 0; i < 50; ++i) {
    top50.insert(std::string(Kb().Get(ranked[i]).id));
  }
  EXPECT_TRUE(top50.contains("M") || top50.contains("SEC") ||
              top50.contains("HR"))
      << "everyday units missing from the top of the ranking";
  // The paper's motivating contrast: metre is frequent, decimetre rare.
  EXPECT_GT(Rec("M").frequency, Rec("DeciM").frequency);
}

TEST(DimUnitKBTest, KindsByFrequencyRanked) {
  auto kinds = Kb().KindsByFrequency(5);
  ASSERT_GT(kinds.size(), 20u);
  // Descending order.
  for (std::size_t i = 1; i < kinds.size(); ++i) {
    EXPECT_GE(kinds[i - 1].second, kinds[i].second);
  }
  // Everyday kinds near the top (Fig. 4 shape): Length/Time/Mass in top 14.
  std::unordered_set<std::string> top14;
  for (std::size_t i = 0; i < 14 && i < kinds.size(); ++i) {
    top14.insert(std::string(Kb().GetKind(kinds[i].first).name));
  }
  EXPECT_TRUE(top14.contains("Length"));
  EXPECT_TRUE(top14.contains("Time"));
}

TEST(DimUnitKBTest, BilingualCoverage) {
  KbStats stats = Kb().Stats();
  // The vast majority of units carry a Chinese label (Table IV: En&Zh).
  EXPECT_GT(stats.num_units_with_zh, stats.num_units * 8 / 10);
}

TEST(DimUnitKBTest, AffineTemperatureUnits) {
  const UnitRecord& celsius = Rec("DEG_C");
  EXPECT_DOUBLE_EQ(celsius.conversion_offset, 273.15);
  Quantity q(25.0, celsius.Semantics());
  EXPECT_DOUBLE_EQ(q.SiValue(), 298.15);
  Quantity f(212.0, Rec("DEG_F").Semantics());
  EXPECT_NEAR(f.SiValue(), 373.15, 1e-9);
}

TEST(DimUnitKBTest, TsvRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "dimqr_kb_test.tsv").string();
  ASSERT_TRUE(Kb().SaveTsv(path).ok());
  auto loaded = DimUnitKB::LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const DimUnitKB& kb2 = **loaded;
  ASSERT_EQ(kb2.units().size(), Kb().units().size());
  ASSERT_EQ(kb2.kinds().size(), Kb().kinds().size());
  for (std::size_t i = 0; i < 50; ++i) {
    const UnitRecord& a = Kb().units()[i];
    const UnitRecord& b = kb2.units()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.label_zh, b.label_zh);
    ASSERT_EQ(a.symbols.size(), b.symbols.size());
    for (std::size_t j = 0; j < a.symbols.size(); ++j) {
      EXPECT_EQ(a.symbols[j], b.symbols[j]);
    }
    EXPECT_EQ(a.dimension, b.dimension);
    EXPECT_DOUBLE_EQ(a.conversion_value, b.conversion_value);
    EXPECT_EQ(a.exact_conversion.has_value(), b.exact_conversion.has_value());
    EXPECT_DOUBLE_EQ(a.frequency, b.frequency);
  }
  std::filesystem::remove(path);
}

TEST(DimUnitKBTest, TsvRoundTripRebuildsIdenticalInternedIndexes) {
  // LoadTsv must rebuild the interned identity layer so that every handle
  // resolves to the same record and every index answers the same queries as
  // the in-memory original (records are appended in catalog order, so the
  // handle spaces line up one-to-one).
  std::string path = (std::filesystem::temp_directory_path() /
                      "dimqr_kb_interned_roundtrip.tsv")
                         .string();
  ASSERT_TRUE(Kb().SaveTsv(path).ok());
  auto loaded = DimUnitKB::LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const DimUnitKB& kb2 = **loaded;
  ASSERT_EQ(kb2.num_units(), Kb().num_units());

  for (std::size_t i = 0; i < Kb().num_units(); ++i) {
    const UnitId uid = UnitId::FromIndex(i);
    const UnitRecord& a = Kb().Get(uid);
    const UnitRecord& b = kb2.Get(uid);
    EXPECT_EQ(a.id, b.id);
    // ID lookup lands on the same handle in both KBs.
    EXPECT_EQ(kb2.IdOf(a.id), Kb().IdOf(a.id)) << a.id;
    // Surface postings agree handle-for-handle (same order, same ids).
    for (std::string_view surface : a.SurfaceForms()) {
      if (surface.empty()) continue;
      std::span<const UnitId> sa = Kb().FindBySurface(surface);
      std::span<const UnitId> sb = kb2.FindBySurface(surface);
      ASSERT_EQ(sa.size(), sb.size()) << surface;
      for (std::size_t j = 0; j < sa.size(); ++j) {
        EXPECT_EQ(sa[j], sb[j]) << surface;
      }
    }
    // Kind handles resolve to the same registry record.
    KindId ka = Kb().KindIdOf(a.quantity_kind);
    KindId kb_handle = kb2.KindIdOf(b.quantity_kind);
    EXPECT_EQ(ka, kb_handle) << a.quantity_kind;
  }
  // Dimension and kind indexes return identical posting lists.
  std::span<const UnitId> da = Kb().UnitsOfDimension(dims::Force());
  std::span<const UnitId> db = kb2.UnitsOfDimension(dims::Force());
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t j = 0; j < da.size(); ++j) EXPECT_EQ(da[j], db[j]);
  std::span<const UnitId> va = Kb().UnitsOfKind(Kb().KindIdOf("Velocity"));
  std::span<const UnitId> vb = kb2.UnitsOfKind(kb2.KindIdOf("Velocity"));
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t j = 0; j < va.size(); ++j) EXPECT_EQ(va[j], vb[j]);
  // Memoized conversion tables produce identical factors.
  EXPECT_DOUBLE_EQ(
      kb2.ConversionFactor(kb2.IdOf("IN"), kb2.IdOf("CentiM")).ValueOrDie(),
      Kb().ConversionFactor(Kb().IdOf("IN"), Kb().IdOf("CentiM"))
          .ValueOrDie());
  std::filesystem::remove(path);
}

TEST(DimUnitKBTest, LoadTsvRejectsMissingFile) {
  EXPECT_EQ(DimUnitKB::LoadTsv("/no/such/path.tsv").status().code(),
            StatusCode::kIOError);
}

/// Conversion sanity sweep across well-known unit pairs.
struct ConvCase {
  const char* from;
  const char* to;
  double factor;
};

class KbConversionSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(KbConversionSweep, FactorMatches) {
  const ConvCase& c = GetParam();
  double f =
      Kb().ConversionFactor(Kb().IdOf(c.from), Kb().IdOf(c.to)).ValueOrDie();
  EXPECT_NEAR(f, c.factor, 1e-6 * c.factor) << c.from << " -> " << c.to;
}

INSTANTIATE_TEST_SUITE_P(
    KnownFactors, KbConversionSweep,
    ::testing::Values(ConvCase{"MI", "KiloM", 1.609344},
                      ConvCase{"LB", "GM", 453.59237},
                      ConvCase{"IN", "MilliM", 25.4},
                      ConvCase{"GAL_US", "LITRE", 3.785411784},
                      ConvCase{"HR", "SEC", 3600.0},
                      ConvCase{"ATM", "PA", 101325.0},
                      ConvCase{"CAL", "J", 4.184},
                      ConvCase{"KiloWH", "J", 3600000.0},
                      ConvCase{"JIN_CN", "GM", 500.0},
                      ConvCase{"MU_CN", "M2", 2000.0 / 3.0},
                      ConvCase{"KNOT", "KiloM-PER-HR", 1.852},
                      ConvCase{"LY", "M", 9460730472580800.0}));

}  // namespace
}  // namespace dimqr::kb
