#include "kb/prefix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace dimqr::kb {
namespace {

TEST(PrefixTest, AllTwentyFourSiPrefixes) {
  EXPECT_EQ(AllPrefixes().size(), 24u);
  std::unordered_set<std::string> names, symbols;
  for (const PrefixSpec& p : AllPrefixes()) {
    EXPECT_TRUE(names.insert(p.name).second) << p.name;
    EXPECT_TRUE(symbols.insert(p.symbol).second) << p.symbol;
    EXPECT_GT(p.commonness, 0.0);
    EXPECT_LE(p.commonness, 1.0);
    EXPECT_NE(p.pow10, 0);
  }
}

TEST(PrefixTest, SortedLargestFirst) {
  const auto& all = AllPrefixes();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i - 1].pow10, all[i].pow10);
  }
}

TEST(PrefixTest, KnownEntries) {
  bool found_kilo = false, found_micro = false;
  for (const PrefixSpec& p : AllPrefixes()) {
    if (p.name == "kilo") {
      found_kilo = true;
      EXPECT_EQ(p.symbol, "k");
      EXPECT_EQ(p.pow10, 3);
      EXPECT_EQ(p.label_zh, "千");
    }
    if (p.name == "micro") {
      found_micro = true;
      EXPECT_EQ(p.pow10, -6);
    }
  }
  EXPECT_TRUE(found_kilo);
  EXPECT_TRUE(found_micro);
}

TEST(PrefixTest, CommonSubset) {
  const auto& common = CommonPrefixes();
  EXPECT_EQ(common.size(), 7u);
  for (const PrefixSpec& p : common) {
    EXPECT_GE(p.pow10, -6);
    EXPECT_LE(p.pow10, 3);
  }
}

TEST(PrefixTest, ExactPow10WithinRange) {
  EXPECT_EQ(ExactPow10(3).value(), Rational(1000));
  EXPECT_EQ(ExactPow10(-2).value(), Rational::Of(1, 100).ValueOrDie());
  EXPECT_EQ(ExactPow10(0).value(), Rational(1));
  EXPECT_EQ(ExactPow10(18).value(), Rational(1000000000000000000LL));
}

TEST(PrefixTest, ExactPow10OutsideRangeEmpty) {
  EXPECT_FALSE(ExactPow10(19).has_value());
  EXPECT_FALSE(ExactPow10(-19).has_value());
  EXPECT_FALSE(ExactPow10(30).has_value());
}

TEST(PrefixTest, ExactPow10AgreesWithStdPow) {
  for (int k = -18; k <= 18; ++k) {
    auto exact = ExactPow10(k);
    ASSERT_TRUE(exact.has_value()) << k;
    EXPECT_NEAR(exact->ToDouble(), std::pow(10.0, k),
                1e-9 * std::pow(10.0, k))
        << k;
  }
}

}  // namespace
}  // namespace dimqr::kb
