#include "kb/frequency.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dimqr::kb {
namespace {

UnitDraft UnitWithSignals(double gt, double hs, double cf) {
  UnitDraft u;
  u.popularity = {gt, hs, cf};
  return u;
}

TEST(FrequencyTest, ScoreMatchesEquation1) {
  // Score(u) = 0.3*log(GT) + 0.3*log(HS) + 0.4*log(CF).
  PopularitySignals s{10.0, 20.0, 30.0};
  double expected =
      0.3 * std::log(10.0) + 0.3 * std::log(20.0) + 0.4 * std::log(30.0);
  EXPECT_DOUBLE_EQ(FrequencyScore(s), expected);
}

TEST(FrequencyTest, ScoreUsesCustomWeights) {
  PopularitySignals s{2.0, 4.0, 8.0};
  FrequencyWeights w{0.5, 0.25, 0.25, 0.1};
  double expected =
      0.5 * std::log(2.0) + 0.25 * std::log(4.0) + 0.25 * std::log(8.0);
  EXPECT_DOUBLE_EQ(FrequencyScore(s, w), expected);
}

TEST(FrequencyTest, ZeroSignalsClampedNotInfinite) {
  PopularitySignals s{0.0, 0.0, 0.0};
  EXPECT_TRUE(std::isfinite(FrequencyScore(s)));
}

TEST(FrequencyTest, AssignNormalizesToDeltaOneRange) {
  std::vector<UnitDraft> units = {UnitWithSignals(100, 100, 100),
                                   UnitWithSignals(10, 10, 10),
                                   UnitWithSignals(1, 1, 1)};
  ASSERT_TRUE(AssignFrequencies(units).ok());
  // Eq. (2): max score -> 1, min score -> delta (0.1).
  EXPECT_DOUBLE_EQ(units[0].frequency, 1.0);
  EXPECT_DOUBLE_EQ(units[2].frequency, 0.1);
  EXPECT_GT(units[1].frequency, 0.1);
  EXPECT_LT(units[1].frequency, 1.0);
}

TEST(FrequencyTest, MonotoneInSignals) {
  std::vector<UnitDraft> units;
  for (double p : {1.0, 5.0, 25.0, 50.0, 100.0}) {
    units.push_back(UnitWithSignals(p, p, p));
  }
  ASSERT_TRUE(AssignFrequencies(units).ok());
  for (std::size_t i = 1; i < units.size(); ++i) {
    EXPECT_GT(units[i].frequency, units[i - 1].frequency);
  }
}

TEST(FrequencyTest, LogIntermediateLandsBetweenByGeometry) {
  // With log scoring, the geometric midpoint maps to the arithmetic middle
  // of the normalized range: Freq = (1-d)*0.5 + d.
  std::vector<UnitDraft> units = {UnitWithSignals(1, 1, 1),
                                   UnitWithSignals(10, 10, 10),
                                   UnitWithSignals(100, 100, 100)};
  ASSERT_TRUE(AssignFrequencies(units).ok());
  EXPECT_NEAR(units[1].frequency, 0.9 * 0.5 + 0.1, 1e-9);
}

TEST(FrequencyTest, EmptyCollectionRejected) {
  std::vector<UnitDraft> none;
  EXPECT_EQ(AssignFrequencies(none).code(), StatusCode::kInvalidArgument);
}

TEST(FrequencyTest, DegenerateEqualScoresAllOne) {
  std::vector<UnitDraft> units = {UnitWithSignals(5, 5, 5),
                                   UnitWithSignals(5, 5, 5)};
  ASSERT_TRUE(AssignFrequencies(units).ok());
  EXPECT_DOUBLE_EQ(units[0].frequency, 1.0);
  EXPECT_DOUBLE_EQ(units[1].frequency, 1.0);
}

TEST(FrequencyTest, CustomDelta) {
  std::vector<UnitDraft> units = {UnitWithSignals(1, 1, 1),
                                   UnitWithSignals(100, 100, 100)};
  FrequencyWeights w;
  w.delta = 0.25;
  ASSERT_TRUE(AssignFrequencies(units, w).ok());
  EXPECT_DOUBLE_EQ(units[0].frequency, 0.25);
  EXPECT_DOUBLE_EQ(units[1].frequency, 1.0);
}

}  // namespace
}  // namespace dimqr::kb
