// Snapshot equivalence for the KB: a packed-and-reloaded DimUnitKB must be
// observationally identical to the built one. Because Build(), LoadTsv()
// and FromSnapshot() all route through one arena representation, this is
// byte-identical by construction — these tests pin that construction.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/snapshot.h"
#include "kb/kb.h"

namespace dimqr::kb {
namespace {

const std::shared_ptr<const DimUnitKB>& BuiltKb() {
  static const std::shared_ptr<const DimUnitKB> kKb =
      DimUnitKB::Build().ValueOrDie();
  return kKb;
}

std::shared_ptr<const DimUnitKB> SnapshotKb() {
  static const std::shared_ptr<const DimUnitKB> kKb = [] {
    snapshot::SnapshotWriter writer;
    EXPECT_TRUE(BuiltKb()->WriteSnapshot(writer).ok());
    auto snap = snapshot::Snapshot::FromBytes(writer.Serialize());
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    auto kb = DimUnitKB::FromSnapshot(snap.ValueOrDie());
    EXPECT_TRUE(kb.ok()) << kb.status().ToString();
    return kb.ValueOrDie();
  }();
  return kKb;
}

std::string SlurpTsv(const DimUnitKB& kb) {
  std::string path = ::testing::TempDir() + "kb_snapshot_test.tsv";
  EXPECT_TRUE(kb.SaveTsv(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  std::remove(path.c_str());
  return out.str();
}

TEST(KbSnapshotTest, TsvExportIsByteIdentical) {
  std::string built = SlurpTsv(*BuiltKb());
  std::string loaded = SlurpTsv(*SnapshotKb());
  ASSERT_FALSE(built.empty());
  EXPECT_EQ(built, loaded);
}

TEST(KbSnapshotTest, StatsAndCatalogMatch) {
  const DimUnitKB& a = *BuiltKb();
  const DimUnitKB& b = *SnapshotKb();
  KbStats sa = a.Stats();
  KbStats sb = b.Stats();
  EXPECT_EQ(sa.num_units, sb.num_units);
  EXPECT_EQ(sa.num_quantity_kinds, sb.num_quantity_kinds);
  EXPECT_EQ(sa.num_dimension_vectors, sb.num_dimension_vectors);
  ASSERT_EQ(a.units().size(), b.units().size());
  for (std::size_t i = 0; i < a.units().size(); ++i) {
    EXPECT_EQ(a.units()[i].id, b.units()[i].id);
    EXPECT_EQ(a.units()[i].conversion_value, b.units()[i].conversion_value);
    EXPECT_EQ(a.units()[i].frequency, b.units()[i].frequency);
  }
}

TEST(KbSnapshotTest, LookupsAndConversionsMatch) {
  const DimUnitKB& a = *BuiltKb();
  const DimUnitKB& b = *SnapshotKb();
  for (const char* id : {"M", "KiloM", "MI", "SEC", "KiloGM", "W"}) {
    UnitId ua = a.IdOf(id);
    UnitId ub = b.IdOf(id);
    ASSERT_TRUE(ua.valid()) << id;
    EXPECT_EQ(ua.index(), ub.index()) << id;
  }
  auto fa = a.ConversionFactor(a.IdOf("MI"), a.IdOf("KiloM"));
  auto fb = b.ConversionFactor(b.IdOf("MI"), b.IdOf("KiloM"));
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(fa.ValueOrDie(), fb.ValueOrDie());
  for (const char* surface : {"km", "kilometers", "千克", "mph"}) {
    auto sa = a.FindBySurface(surface);
    auto sb = b.FindBySurface(surface);
    ASSERT_EQ(sa.size(), sb.size()) << surface;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].index(), sb[i].index()) << surface;
    }
  }
}

TEST(KbSnapshotTest, SnapshotKbRecordsAliasTheMapping) {
  // Proof of zero-copy: the snapshot-loaded KB's record strings point into
  // the snapshot buffer, not into per-record allocations.
  snapshot::SnapshotWriter writer;
  ASSERT_TRUE(BuiltKb()->WriteSnapshot(writer).ok());
  auto snap = snapshot::Snapshot::FromBytes(writer.Serialize());
  ASSERT_TRUE(snap.ok());
  std::span<const std::byte> bytes = snap.ValueOrDie()->view().bytes();
  auto kb = DimUnitKB::FromSnapshot(snap.ValueOrDie());
  ASSERT_TRUE(kb.ok());
  const char* lo = reinterpret_cast<const char*>(bytes.data());
  const char* hi = lo + bytes.size();
  for (const UnitRecord& u : kb.ValueOrDie()->units()) {
    ASSERT_GE(u.id.data(), lo);
    ASSERT_LT(u.id.data(), hi);
  }
}

TEST(KbSnapshotTest, FromSnapshotRejectsMissingSection) {
  snapshot::SnapshotWriter writer;
  ASSERT_TRUE(
      writer
          .AddSection("not-kb", std::vector<std::byte>(64, std::byte{0}))
          .ok());
  auto snap = snapshot::Snapshot::FromBytes(writer.Serialize());
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(DimUnitKB::FromSnapshot(snap.ValueOrDie()).ok());
}

TEST(KbSnapshotTest, FromSnapshotRejectsTruncatedKbSection) {
  // A structurally valid container whose "kb" payload is cut short must be
  // rejected by the KB loader's own validation, with no UB.
  snapshot::SnapshotWriter full;
  ASSERT_TRUE(BuiltKb()->WriteSnapshot(full).ok());
  auto good = snapshot::Snapshot::FromBytes(full.Serialize());
  ASSERT_TRUE(good.ok());
  auto section = good.ValueOrDie()->Section("kb");
  ASSERT_TRUE(section.ok());
  std::span<const std::byte> payload = section.ValueOrDie();
  snapshot::SnapshotWriter clipped;
  ASSERT_TRUE(clipped
                  .AddSection("kb", std::vector<std::byte>(
                                        payload.begin(),
                                        payload.begin() +
                                            static_cast<long>(
                                                payload.size() / 2)))
                  .ok());
  auto snap = snapshot::Snapshot::FromBytes(clipped.Serialize());
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(DimUnitKB::FromSnapshot(snap.ValueOrDie()).ok());
}

}  // namespace
}  // namespace dimqr::kb
