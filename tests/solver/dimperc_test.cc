#include "solver/dimperc.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "solver/pipelines.h"

namespace dimqr::solver {
namespace {

std::shared_ptr<const kb::DimUnitKB> Kb() {
  static const std::shared_ptr<const kb::DimUnitKB> kKb =
      kb::DimUnitKB::Build().ValueOrDie();
  return kKb;
}

Seq2SeqConfig SmallConfig() {
  Seq2SeqConfig config;
  config.arch.d_model = 48;
  config.arch.n_heads = 4;
  config.arch.n_layers = 3;
  config.arch.d_ff = 160;
  config.arch.max_seq = 160;
  return config;
}

/// A DimPerc trained on knowledge pairs only (enough for the recall
/// primitives and the dimension-law tasks).
std::shared_ptr<Seq2SeqModel>& TrainedKnowledge() {
  static std::shared_ptr<Seq2SeqModel> kModel = [] {
    std::vector<SeqExample> train = MakeUnitKnowledgeExamples(*Kb(), 200, 3);
    std::vector<SeqExample> kinds = MakeKindKnowledgeExamples(*Kb(), 2);
    std::vector<SeqExample> conv =
        MakeConversionKnowledgeExamples(*Kb(), 200, 8, 1);
    train.insert(train.end(), kinds.begin(), kinds.end());
    train.insert(train.end(), conv.begin(), conv.end());
    auto model =
        Seq2SeqModel::Create("DimPerc", std::move(train), SmallConfig())
            .ValueOrDie();
    model->TrainEpochs(5).ValueOrDie();
    return std::shared_ptr<Seq2SeqModel>(std::move(model));
  }();
  return kModel;
}

TEST(DimPercTest, KnowledgeBuildersProducePairs) {
  EXPECT_GT(MakeUnitKnowledgeExamples(*Kb(), 100, 1).size(), 150u);
  EXPECT_GT(MakeKindKnowledgeExamples(*Kb(), 1).size(), 100u);
  std::vector<SeqExample> conv =
      MakeConversionKnowledgeExamples(*Kb(), 100, 6, 1);
  EXPECT_GT(conv.size(), 50u);
  for (const SeqExample& ex : conv) {
    EXPECT_NE(ex.input.find("task: convert"), std::string::npos);
  }
}

TEST(DimPercTest, RecallsUnitDimensions) {
  DimPercPipeline pipeline("DimPerc", TrainedKnowledge());
  auto metre = pipeline.RecallUnitDimension("metre");
  ASSERT_TRUE(metre.has_value());
  EXPECT_EQ(*metre, dims::Length());
  auto kilogram = pipeline.RecallUnitDimension("kilogram");
  ASSERT_TRUE(kilogram.has_value());
  EXPECT_EQ(*kilogram, dims::Mass());
  auto hour = pipeline.RecallUnitDimension("hour");
  ASSERT_TRUE(hour.has_value());
  EXPECT_EQ(*hour, dims::Time());
}

TEST(DimPercTest, RecallsScalesInOrder) {
  DimPercPipeline pipeline("DimPerc", TrainedKnowledge());
  auto km = pipeline.RecallUnitScale("kilometre");
  auto mm = pipeline.RecallUnitScale("millimetre");
  ASSERT_TRUE(km.has_value());
  ASSERT_TRUE(mm.has_value());
  EXPECT_GT(*km, *mm);
}

TEST(DimPercTest, AnswersComparableViaRecall) {
  DimPercPipeline pipeline("DimPerc", TrainedKnowledge());
  lm::ChoiceQuestion q;
  q.task = "comparable_analysis";
  q.prompt = "task: comparable | unit: kilometre | a: kilogram | b: mile | "
             "c: hour | d: kelvin";
  q.choices = {"kilogram", "mile", "hour", "kelvin"};
  q.gold_index = 1;
  lm::ChoiceAnswer a = pipeline.AnswerChoice(q);
  EXPECT_EQ(a.index, 1);
}

TEST(DimPercTest, AnswersDimensionArithmeticViaComposition) {
  DimPercPipeline pipeline("DimPerc", TrainedKnowledge());
  lm::ChoiceQuestion q;
  q.task = "dimension_arithmetic";
  // metre * metre has dimension L2 == hectare's dimension.
  q.prompt = "task: dimarith | expr: metre * metre | a: hectare | b: gram | "
             "c: litre | d: week";
  q.choices = {"hectare", "gram", "litre", "week"};
  q.gold_index = 0;
  lm::ChoiceAnswer a = pipeline.AnswerChoice(q);
  EXPECT_EQ(a.index, 0);
}

TEST(DimPercTest, DeclinesWhenKnowledgeMissing) {
  DimPercPipeline pipeline("DimPerc", TrainedKnowledge());
  lm::ChoiceQuestion q;
  q.task = "comparable_analysis";
  q.prompt = "task: comparable | unit: zorkblatt | a: kilogram | b: mile | "
             "c: hour | d: kelvin";
  q.choices = {"kilogram", "mile", "hour", "kelvin"};
  q.gold_index = 1;
  lm::ChoiceAnswer a = pipeline.AnswerChoice(q);
  // The recalled dim of a nonsense unit rarely matches a choice; either a
  // decline or an answer is acceptable, but it must not crash and a
  // malformed prompt must decline:
  lm::ChoiceQuestion malformed;
  malformed.task = "comparable_analysis";
  malformed.prompt = "no fields here";
  malformed.choices = q.choices;
  EXPECT_FALSE(pipeline.AnswerChoice(malformed).answered());
  (void)a;
}

TEST(DimPercTest, UntrainedBaseCollapsesThroughSamePipeline) {
  // The Table VIII mechanism: identical pipeline, knowledge-free model.
  std::vector<SeqExample> generic = MakeGenericInstructionExamples(120, 3);
  std::vector<SeqExample> vocab_extra =
      MakeUnitKnowledgeExamples(*Kb(), 200, 1);
  auto base =
      Seq2SeqModel::Create("base", generic, SmallConfig(), vocab_extra)
          .ValueOrDie();
  base->TrainEpochs(2).ValueOrDie();
  DimPercPipeline base_pipeline(
      "base", std::shared_ptr<Seq2SeqModel>(std::move(base)));
  DimPercPipeline trained_pipeline("DimPerc", TrainedKnowledge());
  dimeval::TaskGenerator gen(Kb(), {});
  auto instances = gen.ComparableAnalysis(30).ValueOrDie();
  int base_correct = 0, trained_correct = 0;
  for (const dimeval::TaskInstance& inst : instances) {
    if (base_pipeline.AnswerChoice(inst.ToChoiceQuestion()).index ==
        inst.gold_index) {
      ++base_correct;
    }
    if (trained_pipeline.AnswerChoice(inst.ToChoiceQuestion()).index ==
        inst.gold_index) {
      ++trained_correct;
    }
  }
  EXPECT_GT(trained_correct, base_correct + 5)
      << "trained " << trained_correct << "/30 vs base " << base_correct;
}

}  // namespace
}  // namespace dimqr::solver
