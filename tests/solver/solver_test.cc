#include <gtest/gtest.h>

#include "lm/mock_llm.h"
#include "mwp/augment.h"
#include "mwp/slotting.h"
#include "solver/pipelines.h"

namespace dimqr::solver {
namespace {

std::shared_ptr<const kb::DimUnitKB> Kb() {
  static const std::shared_ptr<const kb::DimUnitKB> kKb =
      kb::DimUnitKB::Build().ValueOrDie();
  return kKb;
}

Seq2SeqConfig TinyConfig() {
  Seq2SeqConfig config;
  config.arch.d_model = 32;
  config.arch.n_heads = 2;
  config.arch.n_layers = 2;
  config.arch.d_ff = 96;
  config.arch.max_seq = 96;
  config.batch_size = 8;
  config.learning_rate = 2e-3;
  return config;
}

// --------------------------------------------------------- slotting

TEST(SlottingTest, SlotsNumbersAndEquation) {
  mwp::MwpGenerator gen(Kb());
  auto problems = gen.Generate("s", 30, 0.3).ValueOrDie();
  for (const mwp::TemplatedProblem& tp : problems) {
    mwp::SlottedProblem slotted = mwp::SlotNumbers(tp.problem).ValueOrDie();
    // Every slot literal appears in the original text and none in the
    // slotted text.
    for (std::size_t i = 0; i < slotted.slot_literals.size(); ++i) {
      EXPECT_NE(tp.problem.text.find(slotted.slot_literals[i]),
                std::string::npos);
    }
    EXPECT_NE(slotted.input_text.find("n1"), std::string::npos);
    // Unslotting the gold equation reproduces the answer.
    std::string unslotted =
        mwp::UnslotEquation(slotted.equation, slotted.slot_literals);
    EXPECT_TRUE(mwp::EquationAnswersMatch(unslotted, tp.problem.answer))
        << tp.problem.text << "\n  slotted: " << slotted.equation
        << "\n  unslotted: " << unslotted;
  }
}

TEST(SlottingTest, AugmentedProblemsStillSlotCorrectly) {
  mwp::MwpGenerator gen(Kb());
  auto n = gen.Generate("s", 40, 0.3).ValueOrDie();
  auto q = mwp::BuildQMwp(n, "q", *Kb(), {}).ValueOrDie();
  int checked = 0;
  for (const mwp::TemplatedProblem& tp : q) {
    mwp::SlottedProblem slotted = mwp::SlotNumbers(tp.problem).ValueOrDie();
    std::string unslotted =
        mwp::UnslotEquation(slotted.equation, slotted.slot_literals);
    EXPECT_TRUE(mwp::EquationAnswersMatch(unslotted, tp.problem.answer))
        << tp.problem.text << "\n  eq: " << tp.problem.gold_equation.ToString()
        << "\n  slotted: " << slotted.equation;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(SlottingTest, UnslotHandlesUnknownSlots) {
  EXPECT_EQ(mwp::UnslotEquation("n1+n9", {"5"}), "(5)+n9");
  EXPECT_EQ(mwp::UnslotEquation("n1*n2", {"3", "20%"}), "(3)*(20%)");
  EXPECT_EQ(mwp::UnslotEquation("42", {}), "42");
}

TEST(SlottingTest, UnslotSurvivesDigitStorms) {
  // Regression: an untrained model under digit tokenization can emit "n"
  // followed by hundreds of digits; the slot index must not overflow into
  // an out-of-bounds access.
  std::string storm = "n";
  for (int i = 0; i < 400; ++i) storm += "9";
  std::string result = mwp::UnslotEquation(storm, {"5", "6"});
  EXPECT_EQ(result, storm);  // unknown slot: left untouched
  EXPECT_EQ(mwp::UnslotEquation("n2147483648", {"5"}), "n2147483648");
}

// ----------------------------------------------------- seq2seq model

TEST(Seq2SeqTest, CreateRejectsEmptyTraining) {
  EXPECT_FALSE(Seq2SeqModel::Create("m", {}, TinyConfig()).ok());
}

TEST(Seq2SeqTest, LearnsTinyMwpSubset) {
  // Train on a small fixed pool of problems; evaluation on the training
  // pool itself must reach high accuracy (pure capacity check), and on
  // held-out problems from the same templates must beat the untrained
  // model by a wide margin.
  mwp::MwpGenerator gen(Kb());
  auto train_problems = gen.Generate("train", 120, 0.0).ValueOrDie();
  auto test_problems = gen.Generate("test", 40, 0.0).ValueOrDie();
  auto model = Seq2SeqModel::Create(
                   "mini", MakeMwpExamples(train_problems), TinyConfig())
                   .ValueOrDie();
  double before = EvaluateMwpAccuracy(*model, test_problems);
  ASSERT_TRUE(model->TrainEpochs(30).ok());
  double train_acc = EvaluateMwpAccuracy(*model, train_problems);
  double test_acc = EvaluateMwpAccuracy(*model, test_problems);
  EXPECT_GT(train_acc, 0.6) << "failed to fit the training pool";
  EXPECT_GT(test_acc, before + 0.3) << "no generalization: " << before
                                    << " -> " << test_acc;
}

TEST(Seq2SeqTest, AnswerChoiceParsesLetters) {
  // A model trained on a trivial single mapping answers with a letter.
  std::vector<SeqExample> train;
  for (int i = 0; i < 40; ++i) {
    SeqExample ex;
    ex.input = "task: trivial | a: yes | b: no";
    ex.middle = "the answer is a";
    ex.answer = "a";
    train.push_back(ex);
  }
  auto model = Seq2SeqModel::Create("m", train, TinyConfig()).ValueOrDie();
  ASSERT_TRUE(model->TrainEpochs(20).ok());
  lm::ChoiceQuestion q;
  q.prompt = "task: trivial | a: yes | b: no";
  q.choices = {"yes", "no"};
  q.gold_index = 0;
  lm::ChoiceAnswer a = model->AnswerChoice(q);
  EXPECT_EQ(a.index, 0);
}

TEST(Seq2SeqTest, TrainStepsAdvanceCounter) {
  std::vector<SeqExample> train = MakeGenericInstructionExamples(32, 5);
  auto model = Seq2SeqModel::Create("m", train, TinyConfig()).ValueOrDie();
  EXPECT_EQ(model->steps_taken(), 0);
  ASSERT_TRUE(model->TrainSteps(5).ok());
  EXPECT_EQ(model->steps_taken(), 5);
  EXPECT_FALSE(model->TrainSteps(0).ok());
}

TEST(Seq2SeqTest, ReplaceTrainingSetKeepsVocab) {
  std::vector<SeqExample> phase1 = MakeGenericInstructionExamples(16, 5);
  mwp::MwpGenerator gen(Kb());
  auto problems = gen.Generate("p", 16, 0.0).ValueOrDie();
  std::vector<SeqExample> phase2 = MakeMwpExamples(problems);
  auto model =
      Seq2SeqModel::Create("m", phase1, TinyConfig(), phase2).ValueOrDie();
  std::size_t vocab_size = model->vocab().size();
  ASSERT_TRUE(model->TrainSteps(2).ok());
  ASSERT_TRUE(model->ReplaceTrainingSet(phase2).ok());
  EXPECT_EQ(model->vocab().size(), vocab_size);
  ASSERT_TRUE(model->TrainSteps(2).ok());
  EXPECT_FALSE(model->ReplaceTrainingSet({}).ok());
}

// ----------------------------------------------------- pipelines

TEST(PipelinesTest, MakeDimEvalExamplesSkipsExtraction) {
  dimeval::TaskInstance choice;
  choice.task = "unit_conversion";
  choice.prompt = "p";
  choice.reasoning = "r";
  choice.gold_index = 2;
  dimeval::TaskInstance extraction;
  extraction.task = "quantity_extraction";
  extraction.source_text = "text";
  std::vector<SeqExample> examples =
      MakeDimEvalExamples({choice, extraction});
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].answer, "c");
  EXPECT_FALSE(examples[0].middle_is_equation);
}

TEST(PipelinesTest, GenericInstructionShapes) {
  std::vector<SeqExample> examples = MakeGenericInstructionExamples(50, 9);
  ASSERT_EQ(examples.size(), 50u);
  for (const SeqExample& ex : examples) {
    EXPECT_NE(ex.input.find("| a: "), std::string::npos);
    ASSERT_EQ(ex.answer.size(), 1u);
    EXPECT_GE(ex.answer[0], 'a');
    EXPECT_LE(ex.answer[0], 'd');
  }
}

TEST(PipelinesTest, MockModelScoresOnMwp) {
  mwp::MwpGenerator gen(Kb());
  auto problems = gen.Generate("n_math23k", 60, 0.3).ValueOrDie();
  lm::MockLlm good("Good", {{"n_math23k", {1.0, 1.0}}});
  lm::MockLlm bad("Bad", {{"n_math23k", {0.0, 1.0}}});
  EXPECT_GT(EvaluateMwpAccuracy(good, problems), 0.95);
  EXPECT_LT(EvaluateMwpAccuracy(bad, problems), 0.05);
  lm::MockLlm half("Half", {{"n_math23k", {0.5, 1.0}}});
  double acc = EvaluateMwpAccuracy(half, problems);
  EXPECT_GT(acc, 0.3);
  EXPECT_LT(acc, 0.7);
}

}  // namespace
}  // namespace dimqr::solver
