// Snapshot round trip for the full Seq2SeqModel (vocab + transformer +
// training meta, three prefixed sections): a reloaded model must decode
// bit-for-bit like the original, refuse to train without a training set,
// and train normally once one is supplied.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "solver/seq2seq.h"

namespace dimqr::solver {
namespace {

Seq2SeqConfig SnapTestConfig() {
  Seq2SeqConfig config;
  config.arch.d_model = 32;
  config.arch.n_heads = 2;
  config.arch.n_layers = 2;
  config.arch.d_ff = 96;
  config.arch.max_seq = 96;
  config.batch_size = 4;
  config.learning_rate = 2e-3;
  config.max_generated_tokens = 16;
  return config;
}

std::vector<SeqExample> TinyTrainingSet() {
  std::vector<SeqExample> train;
  for (int i = 0; i < 12; ++i) {
    SeqExample ex;
    ex.input = "convert " + std::to_string(i) + " km to m";
    ex.middle = "multiply by 1000";
    ex.answer = std::to_string(i * 1000);
    train.push_back(ex);
  }
  return train;
}

std::unique_ptr<Seq2SeqModel> TrainedModel() {
  auto model =
      Seq2SeqModel::Create("SnapTest", TinyTrainingSet(), SnapTestConfig())
          .ValueOrDie();
  EXPECT_TRUE(model->TrainEpochs(1).ok());
  return model;
}

std::shared_ptr<const snapshot::Snapshot> PackModel(
    const Seq2SeqModel& model) {
  snapshot::SnapshotWriter writer;
  EXPECT_TRUE(model.WriteSnapshot(writer, "solver").ok());
  auto snap = snapshot::Snapshot::FromBytes(writer.Serialize());
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return snap.ValueOrDie();
}

TEST(Seq2SeqSnapshotTest, RoundTripGeneratesIdentically) {
  std::unique_ptr<Seq2SeqModel> original = TrainedModel();
  auto snap = PackModel(*original);
  auto loaded = Seq2SeqModel::FromSnapshot(snap, "solver");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const char* prompt :
       {"convert 3 km to m", "convert 7 km to m", "what is 5 km"}) {
    auto want = original->Generate(std::string(prompt), false);
    auto got = loaded.ValueOrDie()->Generate(std::string(prompt), false);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want.ValueOrDie().middle, got.ValueOrDie().middle) << prompt;
    EXPECT_EQ(want.ValueOrDie().answer, got.ValueOrDie().answer) << prompt;
  }
}

TEST(Seq2SeqSnapshotTest, LoadedModelRefusesToTrainWithoutData) {
  auto snap = PackModel(*TrainedModel());
  auto loaded = Seq2SeqModel::FromSnapshot(snap, "solver");
  ASSERT_TRUE(loaded.ok());
  // The training set is deliberately not packed; training must fail with a
  // clean status until ReplaceTrainingSet supplies one.
  EXPECT_FALSE(loaded.ValueOrDie()->TrainSteps(1).ok());
  ASSERT_TRUE(
      loaded.ValueOrDie()->ReplaceTrainingSet(TinyTrainingSet()).ok());
  EXPECT_TRUE(loaded.ValueOrDie()->TrainSteps(1).ok());
}

TEST(Seq2SeqSnapshotTest, FromSnapshotRejectsWrongPrefixAndMissingParts) {
  auto snap = PackModel(*TrainedModel());
  EXPECT_FALSE(Seq2SeqModel::FromSnapshot(snap, "other").ok());

  // A container with the meta section only (vocab/transformer missing).
  auto meta = snap->Section("solver/meta");
  ASSERT_TRUE(meta.ok());
  snapshot::SnapshotWriter partial;
  ASSERT_TRUE(partial
                  .AddSection("solver/meta",
                              std::vector<std::byte>(
                                  meta.ValueOrDie().begin(),
                                  meta.ValueOrDie().end()))
                  .ok());
  auto partial_snap = snapshot::Snapshot::FromBytes(partial.Serialize());
  ASSERT_TRUE(partial_snap.ok());
  EXPECT_FALSE(
      Seq2SeqModel::FromSnapshot(partial_snap.ValueOrDie(), "solver").ok());
}

}  // namespace
}  // namespace dimqr::solver
