// Serving-layer suite: continuous batching must never change a decoded
// byte (every completed request equals its single-request Greedy decode),
// admission control must bound memory, deadlines must cancel cooperatively
// with partial-decode accounting, shedding must engage and disengage with
// hysteresis, and the per-request outcome journal must be byte-identical
// across DIMQR_THREADS settings and reruns — with and without chaos.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "lm/vocab.h"
#include "serve/admission.h"
#include "serve/loadgen.h"
#include "serve/report.h"
#include "serve/server.h"

namespace dimqr::serve {
namespace {

using lm::SpecialTokens;

/// One briefly-trained model shared by the whole suite (training is the
/// expensive part; the server only borrows it const).
const lm::Transformer& ServeModel() {
  static const lm::Transformer* const kModel = [] {
    lm::TransformerConfig config;
    config.vocab_size = 24;
    config.d_model = 16;
    config.n_heads = 2;
    config.n_layers = 2;
    config.d_ff = 32;
    config.max_seq = 32;
    config.seed = 13;
    auto* model = new lm::Transformer(
        lm::Transformer::Create(config).ValueOrDie());
    lm::LmExample example;
    example.tokens = {1, 7, 8, 9, 10, 2};
    example.loss_mask = {0, 0, 1, 1, 1, 1};
    for (int step = 0; step < 30; ++step) {
      EXPECT_TRUE(model->TrainBatch({example}, 3e-3).ok());
    }
    return model;
  }();
  return *kModel;
}

/// A request with the suite's defaults; prompts share the {1,7,8,9} stem
/// so the prefix cache participates.
ServeRequest MakeRequest(std::uint64_t id, std::uint64_t arrival,
                         int tail_token, int max_new = 5) {
  ServeRequest request;
  request.id = id;
  request.prompt = {1, 7, 8, 9, tail_token, tail_token};
  request.max_new_tokens = max_new;
  request.arrival_tick = arrival;
  request.seed = Rng::SplitSeed(99, id);
  return request;
}

/// The reference decode the server must reproduce byte for byte.
std::vector<int> ReferenceDecode(const ServeRequest& request) {
  return ServeModel()
      .Greedy(request.prompt, request.max_new_tokens, SpecialTokens::kEos)
      .ValueOrDie();
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Clear(); }
  void TearDown() override { FaultRegistry::Global().Clear(); }
};

TEST_F(ServeTest, CompletedRequestsMatchSingleRequestGreedy) {
  ServerConfig config;
  config.slots = 3;
  Server server(ServeModel(), config);
  std::vector<ServeRequest> trace;
  for (std::uint64_t id = 0; id < 8; ++id) {
    trace.push_back(MakeRequest(id, id / 3, static_cast<int>(7 + id % 5)));
  }
  std::vector<ServeOutcome> outcomes = server.Run(trace).ValueOrDie();
  ASSERT_EQ(outcomes.size(), trace.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(outcomes[i].kind, OutcomeKind::kCompleted) << i;
    EXPECT_EQ(outcomes[i].code, StatusCode::kOk) << i;
    EXPECT_EQ(outcomes[i].tokens, ReferenceDecode(trace[i]))
        << "batched decode diverged from single-request Greedy, id " << i;
    EXPECT_GE(outcomes[i].finish_tick, outcomes[i].arrival_tick) << i;
  }
  EXPECT_EQ(server.stats().completed, trace.size());
  // Stem sharing: later prompts must have forked cached prefix rows.
  EXPECT_GT(server.stats().cached_tokens, 0u);
}

TEST_F(ServeTest, ContinuousBatchingJoinsARunningBatch) {
  ServerConfig config;
  config.slots = 2;
  Server server(ServeModel(), config);
  // Request 0 decodes for many rounds; request 1 arrives after it started
  // and must join at a token boundary, not wait for the batch to drain.
  std::vector<ServeRequest> trace = {MakeRequest(0, 0, 7, /*max_new=*/12),
                                     MakeRequest(1, 2, 8, /*max_new=*/4)};
  std::vector<ServeOutcome> outcomes = server.Run(trace).ValueOrDie();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[1].kind, OutcomeKind::kCompleted);
  EXPECT_GT(outcomes[1].admit_tick, 0u);
  EXPECT_LT(outcomes[1].admit_tick, outcomes[0].finish_tick)
      << "request 1 should have joined while request 0 was still decoding";
  EXPECT_EQ(outcomes[0].tokens, ReferenceDecode(trace[0]));
  EXPECT_EQ(outcomes[1].tokens, ReferenceDecode(trace[1]));
}

TEST_F(ServeTest, AdmissionControlBoundsTheQueue) {
  ServerConfig config;
  config.slots = 1;
  config.admission.queue_capacity = 4;
  config.admission.max_join_per_round = 1;
  Server server(ServeModel(), config);
  // 16 same-tick arrivals against capacity 4: the overflow must be
  // rejected with kUnavailable, and the queue must never exceed capacity.
  std::vector<ServeRequest> trace;
  for (std::uint64_t id = 0; id < 16; ++id) {
    trace.push_back(MakeRequest(id, 0, static_cast<int>(7 + id % 5)));
  }
  std::vector<ServeOutcome> outcomes = server.Run(trace).ValueOrDie();
  std::size_t rejected = 0;
  for (const ServeOutcome& outcome : outcomes) {
    if (outcome.kind == OutcomeKind::kRejected) {
      ++rejected;
      EXPECT_EQ(outcome.code, StatusCode::kUnavailable);
      EXPECT_TRUE(outcome.tokens.empty());
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_LE(server.stats().peak_queue_depth,
            config.admission.queue_capacity);
  EXPECT_EQ(server.admission_stats().rejected_full, rejected);
  EXPECT_EQ(rejected + server.stats().completed +
                server.stats().shed + server.stats().deadline_missed,
            trace.size());
}

TEST_F(ServeTest, DeadlinesCancelCooperativelyWithPartialTokens) {
  ServerConfig config;
  config.slots = 1;
  config.admission.max_join_per_round = 1;
  Server server(ServeModel(), config);
  std::vector<ServeRequest> trace;
  for (std::uint64_t id = 0; id < 6; ++id) {
    ServeRequest request = MakeRequest(id, 0, static_cast<int>(7 + id % 5),
                                       /*max_new=*/10);
    request.deadline_ticks = 3;  // Tight: one slot serializes the queue.
    trace.push_back(request);
  }
  std::vector<ServeOutcome> outcomes = server.Run(trace).ValueOrDie();
  std::size_t missed = 0, partial_tokens = 0;
  for (const ServeOutcome& outcome : outcomes) {
    if (outcome.kind == OutcomeKind::kDeadlineExceeded) {
      ++missed;
      EXPECT_EQ(outcome.code, StatusCode::kDeadlineExceeded);
      // Cancelled at a token boundary: whatever was generated is kept.
      EXPECT_LT(outcome.tokens.size(), 10u);
      partial_tokens += outcome.tokens.size();
      EXPECT_GE(outcome.finish_tick,
                outcome.arrival_tick + outcome.tokens.size());
    }
  }
  EXPECT_GT(missed, 0u);
  EXPECT_GT(partial_tokens, 0u)
      << "at least one cancellation should land mid-decode";
  EXPECT_EQ(server.stats().deadline_missed, missed);
}

TEST_F(ServeTest, SheddingEngagesWithHysteresisAndShedsLowPriorityFirst) {
  ServerConfig config;
  config.slots = 1;
  config.admission.queue_capacity = 8;
  config.admission.max_join_per_round = 1;
  config.admission.shed_enter_occupancy = 0.75;
  config.admission.shed_exit_occupancy = 0.25;
  Server server(ServeModel(), config);
  // Warm-up request fills the cache, then a big burst triggers shedding.
  // Burst sizing: 6 arrivals on an 8-slot queue is exactly the 0.75 enter
  // threshold, and shedding back to the 0.25 watermark removes four
  // entries — precisely the four low-priority ones.
  std::vector<ServeRequest> trace;
  trace.push_back(MakeRequest(0, 0, 7));
  for (std::uint64_t id = 1; id < 7; ++id) {
    ServeRequest request =
        MakeRequest(id, 40, static_cast<int>(7 + id % 5));
    request.priority = id < 5 ? Priority::kLow : Priority::kHigh;
    trace.push_back(request);
  }
  std::vector<ServeOutcome> outcomes = server.Run(trace).ValueOrDie();
  EXPECT_GE(server.admission_stats().shed_entries, 1u);
  EXPECT_GE(server.admission_stats().shed_exits, 1u)
      << "hysteresis must disengage once the queue drains";
  EXPECT_GT(server.stats().shed, 0u);
  EXPECT_GT(server.stats().shed_cache_evictions, 0u)
      << "entering shedding must evict the warm prefix cache";
  for (const ServeOutcome& outcome : outcomes) {
    if (outcome.kind == OutcomeKind::kShed) {
      EXPECT_EQ(outcome.priority, Priority::kLow)
          << "high-priority work shed while low-priority work survived";
      EXPECT_EQ(outcome.code, StatusCode::kUnavailable);
    }
  }
  for (const ServeOutcome& outcome : outcomes) {
    if (outcome.priority == Priority::kHigh) {
      EXPECT_EQ(outcome.kind, OutcomeKind::kCompleted);
    }
  }
}

TEST_F(ServeTest, QueueFullFaultForcesDeterministicRejections) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("serve.queue_full:0.5:transient")
                  .ok());
  ServerConfig config;
  Server server(ServeModel(), config);
  std::vector<ServeRequest> trace;
  for (std::uint64_t id = 0; id < 12; ++id) {
    trace.push_back(MakeRequest(id, id, static_cast<int>(7 + id % 5)));
  }
  std::vector<ServeOutcome> first = server.Run(trace).ValueOrDie();
  EXPECT_GT(server.stats().fault_rejections, 0u);
  EXPECT_LT(server.stats().fault_rejections, trace.size());
  // Same trace, fresh server: the same requests must be rejected.
  Server again(ServeModel(), config);
  std::vector<ServeOutcome> second = again.Run(trace).ValueOrDie();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind) << i;
  }
}

TEST_F(ServeTest, BackendTransientFaultsRetryAcrossTokenBoundaries) {
  // Default after_n = 2: attempts 0 and 1 fail, attempt 2 succeeds —
  // within the default attempt limit, so every request still completes.
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("serve.backend_transient:1:transient")
                  .ok());
  ServerConfig config;
  Server server(ServeModel(), config);
  std::vector<ServeRequest> trace;
  for (std::uint64_t id = 0; id < 4; ++id) {
    trace.push_back(MakeRequest(id, 0, static_cast<int>(7 + id % 5)));
  }
  std::vector<ServeOutcome> outcomes = server.Run(trace).ValueOrDie();
  for (const ServeOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.kind, OutcomeKind::kCompleted);
  }
  EXPECT_GT(server.stats().transient_retries, 0u);

  // An attempt budget smaller than the fault's horizon degrades to a
  // retryable failure instead of hanging the slot.
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("serve.backend_transient:1:transient:10")
                  .ok());
  Server exhausted(ServeModel(), config);
  std::vector<ServeOutcome> failed = exhausted.Run(trace).ValueOrDie();
  for (const ServeOutcome& outcome : failed) {
    EXPECT_EQ(outcome.kind, OutcomeKind::kFailed);
    EXPECT_EQ(outcome.code, StatusCode::kUnavailable);
  }
}

TEST_F(ServeTest, JournalByteIdenticalAcrossThreadCountsUnderChaos) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("serve.queue_full:0.2:transient,"
                             "serve.backend_transient:0.3:transient,"
                             "serve.slot_stall:0.3:latency:4")
                  .ok());
  LoadGenConfig load;
  load.num_requests = 40;
  load.seed = 7;
  load.vocab_size = ServeModel().config().vocab_size;
  load.stem_tokens = 8;
  load.max_tail_tokens = 4;
  load.max_new_tokens = 6;
  load.deadline_max_ticks = 60;
  load.deadline_min_ticks = 10;
  std::vector<ServeRequest> trace = GenerateLoad(load);
  ServerConfig config;
  config.slots = 4;
  config.admission.queue_capacity = 12;
  std::string reference;
  for (int threads : {1, 2, 8}) {
    ScopedParallelism scope(threads);
    Server server(ServeModel(), config);
    std::vector<ServeOutcome> outcomes = server.Run(trace).ValueOrDie();
    std::string journal = FormatJournal(outcomes);
    if (reference.empty()) {
      reference = journal;
      // The chaos spec must actually bite, or the diff proves nothing.
      EXPECT_GT(server.stats().fault_rejections +
                    server.stats().transient_retries +
                    server.stats().stall_ticks,
                0u);
    } else {
      EXPECT_EQ(journal, reference)
          << "outcome journal diverged at DIMQR_THREADS=" << threads;
    }
    // Rerun on the same thread count: byte-identical again.
    Server rerun(ServeModel(), config);
    EXPECT_EQ(FormatJournal(rerun.Run(trace).ValueOrDie()), reference);
  }
}

TEST_F(ServeTest, LoadGeneratorIsDeterministicAndBursty) {
  LoadGenConfig load;
  load.num_requests = 50;
  load.seed = 21;
  load.vocab_size = 24;
  std::vector<ServeRequest> a = GenerateLoad(load);
  std::vector<ServeRequest> b = GenerateLoad(load);
  ASSERT_EQ(a.size(), 50u);
  ASSERT_EQ(b.size(), 50u);
  bool any_shared_tick = false;
  std::size_t stems_seen = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].prompt, b[i].prompt);
    EXPECT_EQ(a[i].arrival_tick, b[i].arrival_tick);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].priority, b[i].priority);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_tick, a[i - 1].arrival_tick);
      any_shared_tick =
          any_shared_tick || a[i].arrival_tick == a[i - 1].arrival_tick;
    }
    EXPECT_EQ(a[i].prompt[0], SpecialTokens::kBos);
    for (int token : a[i].prompt) {
      EXPECT_GE(token, token == SpecialTokens::kBos
                           ? SpecialTokens::kBos
                           : SpecialTokens::kCount);
      EXPECT_LT(token, load.vocab_size);
    }
  }
  (void)stems_seen;
  EXPECT_TRUE(any_shared_tick) << "no burst put two requests on one tick";
  // A different seed produces a different trace.
  load.seed = 22;
  std::vector<ServeRequest> other = GenerateLoad(load);
  bool differs = false;
  for (std::size_t i = 0; i < other.size(); ++i) {
    differs = differs || other[i].prompt != a[i].prompt ||
              other[i].arrival_tick != a[i].arrival_tick;
  }
  EXPECT_TRUE(differs);
}

TEST_F(ServeTest, ReportAggregatesAndPercentilesAreExact) {
  std::vector<ServeOutcome> outcomes;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ServeOutcome outcome;
    outcome.id = i;
    outcome.kind = OutcomeKind::kCompleted;
    outcome.arrival_tick = 0;
    outcome.finish_tick = (i + 1) * 10;  // Latencies 10, 20, ..., 100.
    outcome.tokens = {1, 2};
    outcomes.push_back(outcome);
  }
  ServeOutcome shed;
  shed.id = 10;
  shed.kind = OutcomeKind::kShed;
  shed.code = StatusCode::kUnavailable;
  outcomes.push_back(shed);
  ServeReport report = BuildReport(outcomes);
  EXPECT_EQ(report.total, 11u);
  EXPECT_EQ(report.completed, 10u);
  EXPECT_EQ(report.shed, 1u);
  EXPECT_EQ(report.p50_latency_ticks, 50u);
  EXPECT_EQ(report.p95_latency_ticks, 100u);
  EXPECT_EQ(report.p99_latency_ticks, 100u);
  EXPECT_EQ(report.generated_tokens, 20u);
  EXPECT_NEAR(report.ShedRate(), 1.0 / 11.0, 1e-12);
  std::string journal = FormatJournal(outcomes);
  EXPECT_NE(journal.find("id=0 kind=completed"), std::string::npos);
  EXPECT_NE(journal.find("kind=shed code=Unavailable"), std::string::npos);
  std::string summary = FormatReport(report);
  EXPECT_NE(summary.find("p95=100"), std::string::npos);
}

TEST_F(ServeTest, DuplicateRequestIdsAreAnInputError) {
  Server server(ServeModel(), ServerConfig{});
  std::vector<ServeRequest> trace = {MakeRequest(3, 0, 7),
                                     MakeRequest(3, 1, 8)};
  EXPECT_EQ(server.Run(trace).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------- admission queue boundaries

/// Fills `queue` to exactly `count` entries.
void FillQueue(AdmissionQueue& queue, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(queue.Offer(MakeRequest(1000 + i, 0, 7)).ok());
  }
}

TEST_F(ServeTest, SheddingEntersAtExactEnterOccupancy) {
  // The enter rule is `occupancy >= 0.75`: with capacity 16 the boundary
  // occupancy 12/16 == 0.75 must ENTER shedding, and 11/16 must not.
  AdmissionConfig config;
  config.queue_capacity = 16;
  {
    AdmissionQueue below(config);
    FillQueue(below, 11);
    EXPECT_FALSE(below.UpdateShedding());
    EXPECT_FALSE(below.shedding());
  }
  AdmissionQueue at(config);
  FillQueue(at, 12);
  EXPECT_TRUE(at.UpdateShedding());  // returns true only on the transition
  EXPECT_TRUE(at.shedding());
  EXPECT_EQ(at.stats().shed_entries, 1u);
  // Re-applying at the same occupancy is not a new transition.
  EXPECT_FALSE(at.UpdateShedding());
  EXPECT_EQ(at.stats().shed_entries, 1u);
}

TEST_F(ServeTest, SheddingExitsAtExactExitOccupancy) {
  // The exit rule is `occupancy <= 0.25`: a shedding queue drained to
  // 5/16 must STAY shedding (hysteresis band) and 4/16 == 0.25 must exit.
  AdmissionConfig config;
  config.queue_capacity = 16;
  AdmissionQueue queue(config);
  FillQueue(queue, 12);
  ASSERT_TRUE(queue.UpdateShedding());
  ServeRequest popped;
  while (queue.size() > 5) ASSERT_TRUE(queue.PopNext(&popped));
  EXPECT_FALSE(queue.UpdateShedding());
  EXPECT_TRUE(queue.shedding()) << "5/16 is inside the hysteresis band";
  ASSERT_TRUE(queue.PopNext(&popped));  // down to 4/16 == 0.25
  EXPECT_FALSE(queue.UpdateShedding());
  EXPECT_FALSE(queue.shedding());
  EXPECT_EQ(queue.stats().shed_exits, 1u);
}

TEST_F(ServeTest, JoinBudgetShrinksExactlyWhileShedding) {
  AdmissionConfig config;
  config.queue_capacity = 16;
  config.max_join_per_round = 4;
  config.shed_join_per_round = 1;
  AdmissionQueue queue(config);
  EXPECT_EQ(queue.join_budget(), 4);
  FillQueue(queue, 12);
  ASSERT_TRUE(queue.UpdateShedding());
  EXPECT_EQ(queue.join_budget(), 1);
  ServeRequest popped;
  while (queue.size() > 4) ASSERT_TRUE(queue.PopNext(&popped));
  queue.UpdateShedding();
  EXPECT_EQ(queue.join_budget(), 4);
}

TEST_F(ServeTest, ShedToExitWatermarkStopsExactlyAtWatermark) {
  // Shedding drains newest low-priority work until occupancy is at the
  // exit watermark (4/16), never past it.
  AdmissionConfig config;
  config.queue_capacity = 16;
  AdmissionQueue queue(config);
  FillQueue(queue, 12);
  ASSERT_TRUE(queue.UpdateShedding());
  std::vector<ServeRequest> shed = queue.ShedToExitWatermark();
  EXPECT_EQ(shed.size(), 8u);
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.stats().shed, 8u);
  // At the watermark the next sweep sheds nothing further.
  EXPECT_TRUE(queue.ShedToExitWatermark().empty());
}

}  // namespace
}  // namespace dimqr::serve
