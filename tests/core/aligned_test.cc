#include "core/aligned.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace dimqr {
namespace {

bool Is64ByteAligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes == 0;
}

TEST(AlignedTest, VectorDataIsCacheLineAligned) {
  // Sizes around the alignment quantum, including ones a plain allocator
  // would place at arbitrary offsets.
  for (std::size_t n : {1u, 7u, 15u, 16u, 17u, 63u, 64u, 65u, 1000u}) {
    AlignedVec<float> v(n, 1.0f);
    ASSERT_TRUE(Is64ByteAligned(v.data())) << "n=" << n;
    AlignedVec<std::int8_t> b(n, 3);
    ASSERT_TRUE(Is64ByteAligned(b.data())) << "n=" << n;
  }
}

TEST(AlignedTest, SurvivesGrowthCopyAndMove) {
  AlignedVec<float> v;
  for (int i = 0; i < 300; ++i) {
    v.push_back(static_cast<float>(i));
    ASSERT_TRUE(Is64ByteAligned(v.data()));
  }
  AlignedVec<float> copy = v;
  EXPECT_TRUE(Is64ByteAligned(copy.data()));
  EXPECT_EQ(copy.size(), v.size());
  AlignedVec<float> moved = std::move(copy);
  EXPECT_TRUE(Is64ByteAligned(moved.data()));
  EXPECT_EQ(moved[299], 299.0f);
}

TEST(AlignedTest, AllocatorEqualityAndRebind) {
  AlignedAllocator<float> a;
  AlignedAllocator<float> b{AlignedAllocator<double>{}};  // converting ctor
  EXPECT_TRUE(a == b);  // stateless: any instance can free any allocation
  using Rebound = std::allocator_traits<
      AlignedAllocator<float>>::rebind_alloc<std::int8_t>;
  static_assert(std::is_same_v<Rebound, AlignedAllocator<std::int8_t>>);
}

}  // namespace
}  // namespace dimqr
