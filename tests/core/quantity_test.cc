#include "core/quantity.h"

#include <gtest/gtest.h>

namespace dimqr {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational::Of(n, d).ValueOrDie();
}

UnitSemantics Metre() {
  return UnitSemantics::SiCoherent(dims::Length(), "m");
}
UnitSemantics Centimetre() {
  return UnitSemantics::Linear(dims::Length(), R(1, 100), "cm");
}
UnitSemantics Kilometre() {
  return UnitSemantics::Linear(dims::Length(), R(1000), "km");
}
UnitSemantics Second() { return UnitSemantics::SiCoherent(dims::Time(), "s"); }
UnitSemantics Hour() {
  return UnitSemantics::Linear(dims::Time(), R(3600), "h");
}
UnitSemantics Kilogram() {
  return UnitSemantics::SiCoherent(dims::Mass(), "kg");
}
UnitSemantics Celsius() {
  return UnitSemantics::Affine(dims::Temperature(), R(1), 273.15, "degC");
}
UnitSemantics Fahrenheit() {
  return UnitSemantics::Affine(dims::Temperature(), R(5, 9),
                               273.15 - 32.0 * 5.0 / 9.0, "degF");
}

TEST(UnitSemanticsTest, SiCoherentHasUnitScale) {
  UnitSemantics m = Metre();
  EXPECT_DOUBLE_EQ(m.scale, 1.0);
  EXPECT_TRUE(m.exact_scale->IsOne());
  EXPECT_FALSE(m.IsAffine());
}

TEST(UnitSemanticsTest, TimesCombinesDimensionAndScale) {
  UnitSemantics kmh = Kilometre().Over(Hour()).ValueOrDie();
  EXPECT_EQ(kmh.dimension, dims::Velocity());
  EXPECT_DOUBLE_EQ(kmh.scale, 1000.0 / 3600.0);
  EXPECT_EQ(*kmh.exact_scale, R(5, 18));
  EXPECT_EQ(kmh.label, "km/h");
}

TEST(UnitSemanticsTest, PowerCubesScale) {
  UnitSemantics cm3 = Centimetre().Power(3).ValueOrDie();
  EXPECT_EQ(cm3.dimension, dims::Volume());
  EXPECT_EQ(*cm3.exact_scale, R(1, 1000000));
}

TEST(UnitSemanticsTest, AffineUnitsCannotCompose) {
  EXPECT_FALSE(Celsius().Times(Metre()).ok());
  EXPECT_FALSE(Metre().Over(Celsius()).ok());
  EXPECT_FALSE(Celsius().Power(2).ok());
}

TEST(UnitSemanticsTest, ConversionFactorDefinition8) {
  // Definition 8: u1 * beta = u2 -> 1 km = 1000 m.
  EXPECT_DOUBLE_EQ(Kilometre().ConversionFactorTo(Metre()).ValueOrDie(),
                   1000.0);
  EXPECT_DOUBLE_EQ(Centimetre().ConversionFactorTo(Metre()).ValueOrDie(),
                   0.01);
  EXPECT_EQ(Kilometre().ExactConversionFactorTo(Centimetre()).ValueOrDie(),
            R(100000));
}

TEST(UnitSemanticsTest, ConversionAcrossDimensionsFails) {
  Result<double> r = Kilometre().ConversionFactorTo(Second());
  EXPECT_EQ(r.status().code(), StatusCode::kDimensionMismatch);
}

TEST(UnitSemanticsTest, AffineConversionFactorFails) {
  EXPECT_EQ(Celsius()
                .ConversionFactorTo(
                    UnitSemantics::SiCoherent(dims::Temperature(), "K"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(QuantityTest, SiValue) {
  EXPECT_DOUBLE_EQ(Quantity(2.0, Kilometre()).SiValue(), 2000.0);
  EXPECT_DOUBLE_EQ(Quantity(188.0, Centimetre()).SiValue(), 1.88);
  EXPECT_DOUBLE_EQ(Quantity(25.0, Celsius()).SiValue(), 298.15);
}

TEST(QuantityTest, ConvertLinear) {
  Quantity q(2.06, Metre());
  Quantity cm = q.ConvertTo(Centimetre()).ValueOrDie();
  EXPECT_DOUBLE_EQ(cm.value(), 206.0);
  EXPECT_EQ(cm.unit().label, "cm");
}

TEST(QuantityTest, ConvertAffineCelsiusToFahrenheit) {
  Quantity boiling(100.0, Celsius());
  Quantity f = boiling.ConvertTo(Fahrenheit()).ValueOrDie();
  EXPECT_NEAR(f.value(), 212.0, 1e-9);
  Quantity freezing(32.0, Fahrenheit());
  EXPECT_NEAR(freezing.ConvertTo(Celsius()).ValueOrDie().value(), 0.0, 1e-9);
}

TEST(QuantityTest, ConvertDimensionMismatchFails) {
  Quantity q(1.0, Metre());
  EXPECT_EQ(q.ConvertTo(Second()).status().code(),
            StatusCode::kDimensionMismatch);
}

TEST(QuantityTest, PaperIntroComparison) {
  // "LeBron James's height is 2.06 meters and Stephen Curry's is 188 cm"
  // -> LeBron is taller.
  Quantity lebron(2.06, Metre());
  Quantity curry(188.0, Centimetre());
  EXPECT_EQ(lebron.Compare(curry).ValueOrDie(), 1);
  EXPECT_EQ(curry.Compare(lebron).ValueOrDie(), -1);
  EXPECT_EQ(lebron.Compare(Quantity(206.0, Centimetre())).ValueOrDie(), 0);
}

TEST(QuantityTest, DimensionLawBlocksCrossDimensionOps) {
  Quantity length(1.0, Metre());
  Quantity mass(1.0, Kilogram());
  EXPECT_EQ(length.Add(mass).status().code(), StatusCode::kDimensionMismatch);
  EXPECT_EQ(length.Sub(mass).status().code(), StatusCode::kDimensionMismatch);
  EXPECT_EQ(length.Compare(mass).status().code(),
            StatusCode::kDimensionMismatch);
}

TEST(QuantityTest, AddConvertsRhsToLhsUnit) {
  Quantity a(1.0, Metre());
  Quantity b(50.0, Centimetre());
  Quantity sum = a.Add(b).ValueOrDie();
  EXPECT_DOUBLE_EQ(sum.value(), 1.5);
  EXPECT_EQ(sum.unit().label, "m");
  Quantity diff = a.Sub(b).ValueOrDie();
  EXPECT_DOUBLE_EQ(diff.value(), 0.5);
}

TEST(QuantityTest, MulDivCombineDimensions) {
  Quantity d(120.0, Kilometre());
  Quantity t(2.0, Hour());
  Quantity v = d.Div(t).ValueOrDie();
  EXPECT_EQ(v.dimension(), dims::Velocity());
  EXPECT_DOUBLE_EQ(v.value(), 60.0);
  EXPECT_DOUBLE_EQ(v.SiValue(), 60.0 * 1000.0 / 3600.0);

  Quantity back = v.Mul(t).ValueOrDie();
  EXPECT_EQ(back.dimension(), dims::Length());
  EXPECT_DOUBLE_EQ(back.SiValue(), 120000.0);
}

TEST(QuantityTest, DivisionByZeroQuantityFails) {
  Quantity a(1.0, Metre());
  Quantity zero(0.0, Second());
  EXPECT_EQ(a.Div(zero).status().code(), StatusCode::kInvalidArgument);
}

TEST(QuantityTest, ToStringIncludesLabel) {
  EXPECT_EQ(Quantity(2.5, Kilometre()).ToString(), "2.5 km");
  EXPECT_EQ(Quantity(7.0, UnitSemantics::Dimensionless()).ToString(), "7");
}

/// Property sweep: converting there-and-back is the identity (within fp
/// tolerance) for any pair of same-dimension units.
struct ConvertCase {
  double value;
  std::int64_t scale_num, scale_den;
};

class QuantityRoundTripTest : public ::testing::TestWithParam<ConvertCase> {};

TEST_P(QuantityRoundTripTest, ThereAndBack) {
  const ConvertCase& c = GetParam();
  UnitSemantics u =
      UnitSemantics::Linear(dims::Length(), R(c.scale_num, c.scale_den), "u");
  Quantity q(c.value, Metre());
  Quantity round =
      q.ConvertTo(u).ValueOrDie().ConvertTo(Metre()).ValueOrDie();
  EXPECT_NEAR(round.value(), c.value, 1e-9 * std::abs(c.value) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Conversions, QuantityRoundTripTest,
    ::testing::Values(ConvertCase{1.0, 1000, 1}, ConvertCase{2.06, 1, 100},
                      ConvertCase{-3.5, 1609344, 1000},
                      ConvertCase{1e6, 254, 10000},
                      ConvertCase{0.0, 9144, 10000},
                      ConvertCase{123.456, 1, 1000000}));

}  // namespace
}  // namespace dimqr
