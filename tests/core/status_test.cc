#include "core/status.h"

#include <gtest/gtest.h>

namespace dimqr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("unit 'blorp'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "unit 'blorp'");
  EXPECT_EQ(s.ToString(), "NotFound: unit 'blorp'");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::ParseError("x"), Status::ParseError("x"));
  EXPECT_FALSE(Status::ParseError("x") == Status::ParseError("y"));
  EXPECT_FALSE(Status::ParseError("x") == Status::IOError("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDimensionMismatch),
            "DimensionMismatch");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
}

TEST(StatusTest, RetryableCodesRoundTrip) {
  Status unavailable = Status::Unavailable("backend flaked");
  EXPECT_FALSE(unavailable.ok());
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: backend flaked");

  Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: too slow");
}

TEST(StatusTest, IsRetryableClassifiesCodes) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kIOError));
}

TEST(StatusTest, StatusOrAliasesResult) {
  StatusOr<int> ok = 7;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 7);
  StatusOr<int> err = Status::Unavailable("retry me");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(IsRetryable(err.status().code()));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("too big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  DIMQR_ASSIGN_OR_RETURN(int h, Half(v));
  DIMQR_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status CheckAll(int a, int b) {
  DIMQR_RETURN_NOT_OK(FailIfNegative(a));
  DIMQR_RETURN_NOT_OK(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_FALSE(CheckAll(-1, 2).ok());
  EXPECT_FALSE(CheckAll(1, -2).ok());
}

}  // namespace
}  // namespace dimqr
