#include "core/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dimqr {
namespace {

TEST(Id32Test, ZeroIsInvalidSentinel) {
  UnitId none;
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(none.value, 0u);
  UnitId first = UnitId::FromIndex(0);
  EXPECT_TRUE(first.valid());
  EXPECT_EQ(first.value, 1u);
  EXPECT_EQ(first.index(), 0u);
  EXPECT_NE(none, first);
}

TEST(Id32Test, FromIndexInvertsIndex) {
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{4095}}) {
    EXPECT_EQ(UnitId::FromIndex(i).index(), i);
  }
}

TEST(SymbolTableTest, InternAssignsConsecutiveIdsFromOne) {
  SymbolTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Intern("metre"), 1u);
  EXPECT_EQ(table.Intern("second"), 2u);
  EXPECT_EQ(table.Intern("千克"), 3u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(SymbolTableTest, InternDeduplicates) {
  SymbolTable table;
  std::uint32_t a = table.Intern("kg");
  std::uint32_t b = table.Intern("kg");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
  // Case matters: "KG" is a different symbol.
  EXPECT_NE(table.Intern("KG"), a);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, LookupReturnsZeroForUnknown) {
  SymbolTable table;
  EXPECT_EQ(table.Lookup("never-interned"), 0u);
  table.Intern("known");
  EXPECT_EQ(table.Lookup("known"), 1u);
  EXPECT_EQ(table.Lookup("unknown"), 0u);
  EXPECT_EQ(table.Lookup(""), 0u);
}

TEST(SymbolTableTest, EmptyStringIsInternableLikeAnyOther) {
  SymbolTable table;
  std::uint32_t empty = table.Intern("");
  EXPECT_NE(empty, 0u);
  EXPECT_EQ(table.Lookup(""), empty);
  EXPECT_EQ(table.Str(empty), "");
}

TEST(SymbolTableTest, StrRoundTripsAndInvalidIdIsEmpty) {
  SymbolTable table;
  std::uint32_t id = table.Intern("kilometre");
  EXPECT_EQ(table.Str(id), "kilometre");
  EXPECT_EQ(table.Str(0), "");
  // Out-of-range ids degrade to empty rather than UB.
  EXPECT_EQ(table.Str(999), "");
}

TEST(SymbolTableTest, IdsAndViewsStableAcrossGrowth) {
  // Push the table far past its initial bucket count so it rehashes and the
  // arena reallocates several times; previously returned ids must keep
  // resolving to the same strings.
  SymbolTable table;
  std::vector<std::uint32_t> ids;
  std::vector<std::string> strings;
  for (int i = 0; i < 5000; ++i) {
    strings.push_back("symbol-" + std::to_string(i));
    ids.push_back(table.Intern(strings.back()));
  }
  EXPECT_EQ(table.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(ids[i], static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ(table.Str(ids[i]), strings[i]);
    EXPECT_EQ(table.Lookup(strings[i]), ids[i]);
  }
}

TEST(SymbolTableTest, TypedStrOfHelper) {
  SymbolTable table;
  SurfaceId id(table.Intern("km"));
  EXPECT_EQ(StrOf(table, id), "km");
}

TEST(IdMapTest, MissingKeysReadValueInitialized) {
  IdMap<UnitId, double> map;
  EXPECT_EQ(map.Get(UnitId::FromIndex(7)), 0.0);
  EXPECT_EQ(map.Get(UnitId()), 0.0);  // invalid handle: no crash
  map[UnitId::FromIndex(7)] = 2.54;
  EXPECT_EQ(map.Get(UnitId::FromIndex(7)), 2.54);
  EXPECT_EQ(map.size(), 8u);
}

TEST(IdSetTest, InsertContainsAndClear) {
  IdSet<UnitId> set;
  EXPECT_TRUE(set.insert(UnitId::FromIndex(3)));
  EXPECT_FALSE(set.insert(UnitId::FromIndex(3)));
  EXPECT_TRUE(set.insert(UnitId::FromIndex(200)));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(UnitId::FromIndex(3)));
  EXPECT_FALSE(set.contains(UnitId::FromIndex(4)));
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(UnitId::FromIndex(3)));
}

TEST(PostingsIndexTest, SpansMirrorBucketsInOrder) {
  std::vector<std::vector<UnitId>> buckets = {
      {UnitId(5), UnitId(2)},  // order inside a bucket is preserved
      {},
      {UnitId(9)},
  };
  auto index = PostingsIndex<SurfaceId, UnitId>::FromBuckets(buckets);
  EXPECT_EQ(index.num_keys(), 3u);
  std::span<const UnitId> first = index[SurfaceId::FromIndex(0)];
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], UnitId(5));
  EXPECT_EQ(first[1], UnitId(2));
  EXPECT_TRUE(index[SurfaceId::FromIndex(1)].empty());
  EXPECT_EQ(index[SurfaceId::FromIndex(2)].size(), 1u);
}

TEST(PostingsIndexTest, InvalidAndUnknownKeysAreEmpty) {
  std::vector<std::vector<UnitId>> buckets = {{UnitId(1)}};
  auto index = PostingsIndex<SurfaceId, UnitId>::FromBuckets(buckets);
  EXPECT_TRUE(index[SurfaceId()].empty());              // 0 sentinel
  EXPECT_TRUE(index[SurfaceId::FromIndex(1)].empty());  // past the end
  EXPECT_TRUE(index[SurfaceId(4000)].empty());          // far past the end
}

TEST(PostingsIndexTest, EmptyIndexHasNoKeys) {
  PostingsIndex<SurfaceId, UnitId> index;
  EXPECT_EQ(index.num_keys(), 0u);
  EXPECT_TRUE(index[SurfaceId::FromIndex(0)].empty());
}

}  // namespace
}  // namespace dimqr
