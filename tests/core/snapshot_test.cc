// The snapshot container contract: sections round-trip byte-exactly, read
// paths alias the mapped bytes (zero-copy), serialization is deterministic,
// and every corruption mode — truncation, bad magic, wrong version, flipped
// CRC, out-of-bounds or misaligned section offsets — comes back as a clean
// Status, never UB (the CI corruption job reruns this suite under
// ASan/UBSan).

#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace dimqr::snapshot {
namespace {

struct PodRecord {
  std::uint32_t a;
  std::uint32_t b;
  double weight;
};
static_assert(sizeof(PodRecord) == 16);

std::vector<std::byte> MakeTestSnapshot() {
  ArenaWriter arena;
  PodRecord rec{7, 9, 2.5};
  arena.PutPod(rec);
  std::vector<std::uint64_t> values{10, 20, 30, 40, 50};
  arena.PutArray(std::span<const std::uint64_t>(values));
  arena.PutString("hello snapshot");

  SnapshotWriter writer;
  EXPECT_TRUE(writer.AddSection("alpha", std::move(arena)).ok());
  EXPECT_TRUE(
      writer
          .AddSection("beta", std::vector<std::byte>(96, std::byte{0x5A}))
          .ok());
  return writer.Serialize();
}

TEST(SnapshotTest, RoundTripSections) {
  std::vector<std::byte> bytes = MakeTestSnapshot();
  auto snap = Snapshot::FromBytes(std::move(bytes));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const Snapshot& s = *snap.ValueOrDie();
  EXPECT_TRUE(s.Has("alpha"));
  EXPECT_TRUE(s.Has("beta"));
  EXPECT_FALSE(s.Has("gamma"));

  auto alpha = s.Section("alpha");
  ASSERT_TRUE(alpha.ok());
  ArenaReader reader(alpha.ValueOrDie());
  auto rec = reader.GetPod<PodRecord>();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.ValueOrDie().a, 7u);
  EXPECT_EQ(rec.ValueOrDie().b, 9u);
  EXPECT_EQ(rec.ValueOrDie().weight, 2.5);
  auto arr = reader.GetArray<std::uint64_t>();
  ASSERT_TRUE(arr.ok());
  ASSERT_EQ(arr.ValueOrDie().size(), 5u);
  EXPECT_EQ(arr.ValueOrDie()[4], 50u);
  auto str = reader.GetString();
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.ValueOrDie(), "hello snapshot");

  auto beta = s.Section("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(beta.ValueOrDie().size(), 96u);
  EXPECT_EQ(beta.ValueOrDie()[0], std::byte{0x5A});
}

TEST(SnapshotTest, ReadsAliasTheMappedBytesZeroCopy) {
  auto snap = Snapshot::FromBytes(MakeTestSnapshot());
  ASSERT_TRUE(snap.ok());
  const Snapshot& s = *snap.ValueOrDie();
  std::span<const std::byte> whole = s.view().bytes();
  auto alpha = s.Section("alpha");
  ASSERT_TRUE(alpha.ok());
  ArenaReader reader(alpha.ValueOrDie());
  ASSERT_TRUE(reader.GetPod<PodRecord>().ok());
  auto arr = reader.GetArray<std::uint64_t>();
  ASSERT_TRUE(arr.ok());
  // The span must point INTO the snapshot buffer: no copy was made.
  const std::byte* lo = whole.data();
  const std::byte* hi = whole.data() + whole.size();
  const std::byte* p =
      reinterpret_cast<const std::byte*>(arr.ValueOrDie().data());
  EXPECT_GE(p, lo);
  EXPECT_LT(p, hi);
  // And it must satisfy the element type's alignment.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t),
            0u);
}

TEST(SnapshotTest, SerializeIsDeterministic) {
  EXPECT_EQ(MakeTestSnapshot(), MakeTestSnapshot());
}

TEST(SnapshotTest, SectionsAre64ByteAligned) {
  auto snap = Snapshot::FromBytes(MakeTestSnapshot());
  ASSERT_TRUE(snap.ok());
  const Snapshot& s = *snap.ValueOrDie();
  const std::byte* base = s.view().bytes().data();
  for (std::string_view name : s.view().SectionNames()) {
    auto section = s.view().Section(name);
    ASSERT_TRUE(section.ok());
    EXPECT_EQ(static_cast<std::size_t>(section.ValueOrDie().data() - base) %
                  kSectionAlign,
              0u)
        << "section " << name << " not 64-byte aligned";
  }
}

TEST(SnapshotTest, RejectsTruncatedFile) {
  std::vector<std::byte> bytes = MakeTestSnapshot();
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{7}, sizeof(SnapshotHeader) - 1,
        sizeof(SnapshotHeader), bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::byte> cut(bytes.begin(),
                               bytes.begin() + static_cast<long>(keep));
    auto snap = Snapshot::FromBytes(std::move(cut));
    EXPECT_FALSE(snap.ok()) << "accepted a file truncated to " << keep;
    // Truncation is corruption, not an I/O problem — the snapshot CLI maps
    // kDataLoss to its distinct "corrupt" exit code.
    EXPECT_EQ(snap.status().code(), StatusCode::kDataLoss) << keep;
  }
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::vector<std::byte> bytes = MakeTestSnapshot();
  bytes[0] = std::byte{'X'};
  EXPECT_FALSE(Snapshot::FromBytes(std::move(bytes)).ok());
}

TEST(SnapshotTest, RejectsWrongVersion) {
  std::vector<std::byte> bytes = MakeTestSnapshot();
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version = kSnapshotVersion + 1;
  std::memcpy(bytes.data(), &header, sizeof(header));
  EXPECT_FALSE(Snapshot::FromBytes(std::move(bytes)).ok());
}

TEST(SnapshotTest, RejectsFlippedPayloadByte) {
  // Any single flipped bit in the payload must fail the CRC.
  std::vector<std::byte> bytes = MakeTestSnapshot();
  for (std::size_t pos : {sizeof(SnapshotHeader) + 3, bytes.size() - 2}) {
    std::vector<std::byte> bad = bytes;
    bad[pos] ^= std::byte{0x10};
    auto snap = Snapshot::FromBytes(std::move(bad));
    EXPECT_FALSE(snap.ok()) << "accepted a payload flip at byte " << pos;
    EXPECT_EQ(snap.status().code(), StatusCode::kDataLoss) << pos;
  }
}

TEST(SnapshotTest, RejectsTamperedSectionOffset) {
  // Rewrite a section entry to point out of bounds / misaligned, then
  // re-stamp the CRC so only the structural validation can catch it.
  std::vector<std::byte> bytes = MakeTestSnapshot();
  for (std::uint64_t evil_offset :
       {std::uint64_t{1u << 30}, std::uint64_t{sizeof(SnapshotHeader) + 1}}) {
    std::vector<std::byte> bad = bytes;
    SectionEntry entry;
    std::byte* entry_at = bad.data() + sizeof(SnapshotHeader);
    std::memcpy(&entry, entry_at, sizeof(entry));
    entry.payload_offset = evil_offset;
    std::memcpy(entry_at, &entry, sizeof(entry));
    SnapshotHeader header;
    std::memcpy(&header, bad.data(), sizeof(header));
    header.crc32 = Crc32(std::span<const std::byte>(bad).subspan(
        sizeof(SnapshotHeader)));
    std::memcpy(bad.data(), &header, sizeof(header));
    EXPECT_FALSE(Snapshot::FromBytes(std::move(bad)).ok())
        << "accepted section offset " << evil_offset;
  }
}

TEST(SnapshotTest, ArenaReaderRejectsOverrunAndMisalignment) {
  ArenaWriter arena;
  arena.PutString("abc");
  std::vector<std::byte> blob = std::move(arena).Take();
  // Read past the declared contents.
  ArenaReader reader{std::span<const std::byte>(blob)};
  ASSERT_TRUE(reader.GetString().ok());
  EXPECT_FALSE(reader.GetArray<std::uint64_t>().ok());
  EXPECT_FALSE(reader.GetPod<PodRecord>().ok());
  // A reader over a buffer too small for its own count prefix.
  ArenaReader empty{std::span<const std::byte>(blob.data(), 3)};
  EXPECT_FALSE(empty.GetArray<std::uint32_t>().ok());
}

TEST(SnapshotTest, MapRoundTripsThroughDisk) {
  std::string path = ::testing::TempDir() + "snapshot_test_roundtrip.dqs";
  std::vector<std::byte> bytes = MakeTestSnapshot();
  SnapshotWriter writer;
  ArenaWriter arena;
  arena.PutString("on disk");
  ASSERT_TRUE(writer.AddSection("alpha", std::move(arena)).ok());
  ASSERT_TRUE(writer.WriteFile(path).ok());
  auto snap = Snapshot::Map(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto alpha = snap.ValueOrDie()->Section("alpha");
  ASSERT_TRUE(alpha.ok());
  ArenaReader reader(alpha.ValueOrDie());
  auto str = reader.GetString();
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.ValueOrDie(), "on disk");
  EXPECT_EQ(snap.ValueOrDie()->path(), path);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MapRejectsMissingAndCorruptFilesDistinctly) {
  // The two failure classes must stay distinguishable: a missing/unreadable
  // file is kIOError, a damaged one is kDataLoss — the snapshot CLI turns
  // them into different exit codes (3 vs 4) for scripted health checks.
  auto missing = Snapshot::Map("/nonexistent/dir/nope.dqs");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);
  std::string path = ::testing::TempDir() + "snapshot_test_corrupt.dqs";
  std::vector<std::byte> bytes = MakeTestSnapshot();
  bytes[sizeof(SnapshotHeader) + 1] ^= std::byte{0x01};
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
  auto corrupt = Snapshot::Map(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(SnapshotTest, DuplicateSectionNameRejected) {
  SnapshotWriter writer;
  ASSERT_TRUE(
      writer.AddSection("dup", std::vector<std::byte>(8, std::byte{1})).ok());
  EXPECT_FALSE(
      writer.AddSection("dup", std::vector<std::byte>(8, std::byte{2})).ok());
  EXPECT_FALSE(writer.AddSection("", std::vector<std::byte>{}).ok());
}

}  // namespace
}  // namespace dimqr::snapshot
