#include "core/rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace dimqr {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational::Of(n, d).ValueOrDie();
}

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(r.numerator(), 0);
  EXPECT_EQ(r.denominator(), 1);
}

TEST(RationalTest, ReducesToLowestTerms) {
  Rational r = R(6, 4);
  EXPECT_EQ(r.numerator(), 3);
  EXPECT_EQ(r.denominator(), 2);
}

TEST(RationalTest, NormalizesSignToNumerator) {
  Rational r = R(3, -6);
  EXPECT_EQ(r.numerator(), -1);
  EXPECT_EQ(r.denominator(), 2);
  EXPECT_TRUE(r.IsNegative());
}

TEST(RationalTest, ZeroDenominatorFails) {
  EXPECT_EQ(Rational::Of(1, 0).status().code(), StatusCode::kInvalidArgument);
}

TEST(RationalTest, Int64MinHandled) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  Rational r = Rational::Of(kMin, 2).ValueOrDie();
  EXPECT_EQ(r.numerator(), kMin / 2);
  EXPECT_EQ(r.denominator(), 1);
  // kMin / kMin reduces to 1.
  EXPECT_TRUE(Rational::Of(kMin, kMin).ValueOrDie().IsOne());
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(R(1, 2).Add(R(1, 3)).ValueOrDie(), R(5, 6));
  EXPECT_EQ(R(1, 2).Sub(R(1, 3)).ValueOrDie(), R(1, 6));
  EXPECT_EQ(R(2, 3).Mul(R(3, 4)).ValueOrDie(), R(1, 2));
  EXPECT_EQ(R(2, 3).Div(R(4, 3)).ValueOrDie(), R(1, 2));
}

TEST(RationalTest, DivisionByZeroFails) {
  EXPECT_EQ(R(1).Div(R(0)).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(R(0).Inverse().status().code(), StatusCode::kInvalidArgument);
}

TEST(RationalTest, PowPositiveNegativeZero) {
  EXPECT_EQ(R(2, 3).Pow(2).ValueOrDie(), R(4, 9));
  EXPECT_EQ(R(2, 3).Pow(-2).ValueOrDie(), R(9, 4));
  EXPECT_EQ(R(7, 5).Pow(0).ValueOrDie(), R(1));
  EXPECT_EQ(R(0).Pow(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(RationalTest, OverflowDetected) {
  constexpr std::int64_t kBig = std::numeric_limits<std::int64_t>::max();
  Rational big = R(kBig);
  EXPECT_EQ(big.Mul(big).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(big.Add(big).status().code(), StatusCode::kOutOfRange);
}

TEST(RationalTest, OverflowCancelsWhenReducible) {
  // (2^62 / 3) * (3 / 2^62) == 1 despite huge intermediates.
  Rational a = R(std::int64_t{1} << 62, 3);
  Rational b = R(3, std::int64_t{1} << 62);
  EXPECT_TRUE(a.Mul(b).ValueOrDie().IsOne());
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(R(1, 3), R(1, 2));
  EXPECT_LT(R(-1, 2), R(0));
  EXPECT_GE(R(5, 4), R(5, 4));
  EXPECT_GT(R(7, 2), R(10, 3));
}

TEST(RationalTest, ParseInteger) {
  EXPECT_EQ(Rational::Parse("42").ValueOrDie(), R(42));
  EXPECT_EQ(Rational::Parse("-7").ValueOrDie(), R(-7));
  EXPECT_EQ(Rational::Parse("+3").ValueOrDie(), R(3));
}

TEST(RationalTest, ParseFraction) {
  EXPECT_EQ(Rational::Parse("127/50").ValueOrDie(), R(127, 50));
  EXPECT_EQ(Rational::Parse("-3/9").ValueOrDie(), R(-1, 3));
}

TEST(RationalTest, ParseDecimal) {
  EXPECT_EQ(Rational::Parse("2.54").ValueOrDie(), R(127, 50));
  EXPECT_EQ(Rational::Parse("0.001").ValueOrDie(), R(1, 1000));
  EXPECT_EQ(Rational::Parse("-0.5").ValueOrDie(), R(-1, 2));
}

TEST(RationalTest, ParseScientific) {
  EXPECT_EQ(Rational::Parse("1e3").ValueOrDie(), R(1000));
  EXPECT_EQ(Rational::Parse("2.5e-2").ValueOrDie(), R(1, 40));
  EXPECT_EQ(Rational::Parse("1E6").ValueOrDie(), R(1000000));
}

TEST(RationalTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Rational::Parse("").ok());
  EXPECT_FALSE(Rational::Parse("abc").ok());
  EXPECT_FALSE(Rational::Parse("1/").ok());
  EXPECT_FALSE(Rational::Parse("/2").ok());
  EXPECT_FALSE(Rational::Parse("1.2.3").ok());
  EXPECT_FALSE(Rational::Parse("1e").ok());
  EXPECT_FALSE(Rational::Parse("--2").ok());
}

TEST(RationalTest, FromDoubleRecoversSimpleRatios) {
  EXPECT_EQ(Rational::FromDouble(0.5).ValueOrDie(), R(1, 2));
  EXPECT_EQ(Rational::FromDouble(2.54).ValueOrDie(), R(127, 50));
  EXPECT_EQ(Rational::FromDouble(-0.2).ValueOrDie(), R(-1, 5));
  EXPECT_EQ(Rational::FromDouble(3.0).ValueOrDie(), R(3));
}

TEST(RationalTest, FromDoubleRejectsNonFinite) {
  EXPECT_FALSE(Rational::FromDouble(std::numeric_limits<double>::infinity()).ok());
  EXPECT_FALSE(Rational::FromDouble(std::numeric_limits<double>::quiet_NaN()).ok());
}

TEST(RationalTest, ToStringRoundTrips) {
  EXPECT_EQ(R(5).ToString(), "5");
  EXPECT_EQ(R(-3, 7).ToString(), "-3/7");
  EXPECT_EQ(Rational::Parse(R(-3, 7).ToString()).ValueOrDie(), R(-3, 7));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(R(1, 4).ToDouble(), 0.25);
  EXPECT_DOUBLE_EQ(R(-7, 2).ToDouble(), -3.5);
}

/// Property sweep: exact conversion chains never drift. Multiplying by a
/// factor and dividing by the same factor is the identity.
class RationalRoundTripTest
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RationalRoundTripTest, MulDivRoundTrip) {
  auto [n, d] = GetParam();
  Rational f = R(n, d);
  Rational x = R(981, 100);
  Rational there = x.Mul(f).ValueOrDie();
  Rational back = there.Div(f).ValueOrDie();
  EXPECT_EQ(back, x);
}

TEST_P(RationalRoundTripTest, InverseIsInvolution) {
  auto [n, d] = GetParam();
  Rational f = R(n, d);
  EXPECT_EQ(f.Inverse().ValueOrDie().Inverse().ValueOrDie(), f);
}

INSTANTIATE_TEST_SUITE_P(
    ConversionFactors, RationalRoundTripTest,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{127, 50},
                      std::pair<std::int64_t, std::int64_t>{1000, 1},
                      std::pair<std::int64_t, std::int64_t>{1, 3600},
                      std::pair<std::int64_t, std::int64_t>{45359237, 100000000},
                      std::pair<std::int64_t, std::int64_t>{1609344, 1000},
                      std::pair<std::int64_t, std::int64_t>{-5, 9}));

}  // namespace
}  // namespace dimqr
