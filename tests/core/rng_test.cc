#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dimqr {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, DeriveSeedIsDeterministicAndLabelSensitive) {
  EXPECT_EQ(Rng::DeriveSeed(7, "alpha"), Rng::DeriveSeed(7, "alpha"));
  EXPECT_NE(Rng::DeriveSeed(7, "alpha"), Rng::DeriveSeed(7, "beta"));
  EXPECT_NE(Rng::DeriveSeed(7, "alpha"), Rng::DeriveSeed(8, "alpha"));
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(42);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformRealRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(42);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.WeightedIndex(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[1]), 3.0, 0.4);
}

TEST(RngTest, WeightedIndexAllZeroReturnsZero) {
  Rng rng(42);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(w), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(42);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(42);
  std::vector<std::size_t> s = rng.SampleIndices(10, 4);
  ASSERT_EQ(s.size(), 4u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (std::size_t i : s) EXPECT_LT(i, 10u);
}

TEST(RngTest, SampleIndicesKLargerThanNClamps) {
  Rng rng(42);
  EXPECT_EQ(rng.SampleIndices(3, 10).size(), 3u);
}

}  // namespace
}  // namespace dimqr
