#include "core/dimension.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dimqr {
namespace {

TEST(DimensionTest, DefaultIsDimensionless) {
  Dimension d;
  EXPECT_TRUE(d.IsDimensionless());
  EXPECT_EQ(d.ToFormula(), "D");
  EXPECT_EQ(d.ToVectorForm(), "A0E0L0I0M0H0T0D1");
}

TEST(DimensionTest, BaseConstruction) {
  Dimension len = Dimension::Base(BaseDim::kLength);
  EXPECT_EQ(len.exponent(BaseDim::kLength), 1);
  EXPECT_EQ(len.exponent(BaseDim::kMass), 0);
  EXPECT_FALSE(len.IsDimensionless());
  EXPECT_EQ(len.ToFormula(), "L");
}

TEST(DimensionTest, PaperExampleForce) {
  // Fig. 1: dim(poundal) = LMT^-2.
  Dimension force = dims::Force();
  EXPECT_EQ(force.ToFormula(), "LMT-2");
  EXPECT_EQ(force.ToVectorForm(), "A0E0L1I0M1H0T-2D0");
}

TEST(DimensionTest, PaperExampleForcePerLength) {
  // Fig. 1: dim(dyn/cm) = MT^-2, vector form A0E0L0I0M1H0T-2D0.
  Dimension fpl = dims::ForcePerLength();
  EXPECT_EQ(fpl.ToFormula(), "MT-2");
  EXPECT_EQ(fpl.ToVectorForm(), "A0E0L0I0M1H0T-2D0");
}

TEST(DimensionTest, PaperExampleVolumeFlowRate) {
  // Table I: dim(gill/h) = L^3 T^-1.
  EXPECT_EQ(dims::VolumeFlowRate().ToFormula(), "L3T-1");
}

TEST(DimensionTest, TimesAddsExponents) {
  Dimension e = dims::Energy();  // L2MT-2
  Dimension l = dims::Length();
  Dimension el = e.Times(l).ValueOrDie();
  EXPECT_EQ(el.exponent(BaseDim::kLength), 3);
  EXPECT_EQ(el.exponent(BaseDim::kMass), 1);
  EXPECT_EQ(el.exponent(BaseDim::kTime), -2);
}

TEST(DimensionTest, OverSubtractsExponents) {
  Dimension v = dims::Velocity();
  Dimension t = dims::Time();
  EXPECT_EQ(v.Over(t).ValueOrDie(), dims::Acceleration());
}

TEST(DimensionTest, GroupLaws) {
  Dimension f = dims::Force();
  Dimension p = dims::Pressure();
  // Identity element.
  EXPECT_EQ(f.Times(Dimension()).ValueOrDie(), f);
  // Inverse element.
  EXPECT_TRUE(f.Times(f.Inverse()).ValueOrDie().IsDimensionless());
  // Commutativity.
  EXPECT_EQ(f.Times(p).ValueOrDie(), p.Times(f).ValueOrDie());
  // Associativity.
  Dimension v = dims::Velocity();
  EXPECT_EQ(f.Times(p).ValueOrDie().Times(v).ValueOrDie(),
            f.Times(p.Times(v).ValueOrDie()).ValueOrDie());
}

TEST(DimensionTest, PowerScalesExponents) {
  Dimension l = dims::Length();
  EXPECT_EQ(l.Power(3).ValueOrDie(), dims::Volume());
  EXPECT_EQ(l.Power(0).ValueOrDie(), Dimension());
  EXPECT_EQ(dims::Velocity().Power(2).ValueOrDie().ToFormula(), "L2T-2");
  EXPECT_EQ(l.Power(-1).ValueOrDie(), l.Inverse());
}

TEST(DimensionTest, OverflowDetected) {
  Dimension big = Dimension::Base(BaseDim::kLength, 100);
  EXPECT_EQ(big.Times(big).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(big.Power(2).status().code(), StatusCode::kOutOfRange);
}

TEST(DimensionTest, ComparableWithIsDimensionEquality) {
  EXPECT_TRUE(dims::Energy().ComparableWith(dims::Energy()));
  // Classic: torque and energy share a dimension.
  Dimension torque = dims::Force().Times(dims::Length()).ValueOrDie();
  EXPECT_TRUE(torque.ComparableWith(dims::Energy()));
  EXPECT_FALSE(dims::Force().ComparableWith(dims::Energy()));
}

TEST(DimensionTest, ParseVectorForm) {
  Dimension d = Dimension::ParseVectorForm("A0E0L1I0M1H0T-2D0").ValueOrDie();
  EXPECT_EQ(d, dims::Force());
  // D component optional.
  EXPECT_EQ(Dimension::ParseVectorForm("L1M1T-2").ValueOrDie(), dims::Force());
  // Order-insensitive.
  EXPECT_EQ(Dimension::ParseVectorForm("T-2M1L1").ValueOrDie(), dims::Force());
}

TEST(DimensionTest, ParseVectorFormValidatesDFlag) {
  EXPECT_FALSE(Dimension::ParseVectorForm("L1D1").ok());
  EXPECT_FALSE(Dimension::ParseVectorForm("L0D0").ok());
  EXPECT_TRUE(Dimension::ParseVectorForm("L0D1").ok());
}

TEST(DimensionTest, ParseVectorFormRejectsMalformed) {
  EXPECT_FALSE(Dimension::ParseVectorForm("Z1").ok());
  EXPECT_FALSE(Dimension::ParseVectorForm("L").ok());
  EXPECT_FALSE(Dimension::ParseVectorForm("L1L2").ok());
  EXPECT_FALSE(Dimension::ParseVectorForm("D2").ok());
  EXPECT_FALSE(Dimension::ParseVectorForm("L999").ok());
}

TEST(DimensionTest, ParseFormula) {
  EXPECT_EQ(Dimension::ParseFormula("LMT-2").ValueOrDie(), dims::Force());
  EXPECT_EQ(Dimension::ParseFormula("L M T^-2").ValueOrDie(), dims::Force());
  EXPECT_EQ(Dimension::ParseFormula("L3T-1").ValueOrDie(),
            dims::VolumeFlowRate());
  EXPECT_EQ(Dimension::ParseFormula("D").ValueOrDie(), Dimension());
  EXPECT_FALSE(Dimension::ParseFormula("").ok());
  EXPECT_FALSE(Dimension::ParseFormula("Q2").ok());
}

TEST(DimensionTest, FormulaRoundTrip) {
  for (const Dimension& d :
       {dims::Force(), dims::Energy(), dims::Pressure(), dims::Power(),
        dims::Density(), dims::Frequency(), Dimension()}) {
    EXPECT_EQ(Dimension::ParseFormula(d.ToFormula()).ValueOrDie(), d);
    EXPECT_EQ(Dimension::ParseVectorForm(d.ToVectorForm()).ValueOrDie(), d);
  }
}

TEST(DimensionTest, PackedKeyIsInjectiveOverCommonDims) {
  std::vector<Dimension> all = {
      Dimension(),       dims::Length(),   dims::Mass(),
      dims::Time(),      dims::Current(),  dims::Temperature(),
      dims::Amount(),    dims::LuminousIntensity(),
      dims::Area(),      dims::Volume(),   dims::Velocity(),
      dims::Acceleration(), dims::Force(), dims::Pressure(),
      dims::Energy(),    dims::Power(),    dims::Frequency(),
      dims::Density(),   dims::VolumeFlowRate(), dims::ForcePerLength()};
  std::unordered_set<std::uint64_t> keys;
  for (const Dimension& d : all) keys.insert(d.PackedKey());
  EXPECT_EQ(keys.size(), all.size());
}

TEST(DimensionTest, HashUsableInUnorderedSet) {
  std::unordered_set<Dimension, DimensionHash> set;
  set.insert(dims::Force());
  set.insert(dims::Force());
  set.insert(dims::Energy());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(dims::Force()));
}

TEST(DimensionTest, BaseDimMetadataMatchesTableIII) {
  EXPECT_EQ(BaseDimSymbol(BaseDim::kAmountOfSubstance), 'A');
  EXPECT_EQ(BaseDimUnitSymbol(BaseDim::kAmountOfSubstance), "mol");
  EXPECT_EQ(BaseDimSymbol(BaseDim::kElectricCurrent), 'E');
  EXPECT_EQ(BaseDimUnitSymbol(BaseDim::kElectricCurrent), "A");
  EXPECT_EQ(BaseDimSymbol(BaseDim::kLength), 'L');
  EXPECT_EQ(BaseDimUnitName(BaseDim::kLength), "metre");
  EXPECT_EQ(BaseDimSymbol(BaseDim::kLuminousIntensity), 'I');
  EXPECT_EQ(BaseDimUnitSymbol(BaseDim::kLuminousIntensity), "cd");
  EXPECT_EQ(BaseDimSymbol(BaseDim::kMass), 'M');
  EXPECT_EQ(BaseDimUnitName(BaseDim::kMass), "kilogram");
  EXPECT_EQ(BaseDimSymbol(BaseDim::kTemperature), 'H');
  EXPECT_EQ(BaseDimUnitSymbol(BaseDim::kTemperature), "K");
  EXPECT_EQ(BaseDimSymbol(BaseDim::kTime), 'T');
  EXPECT_EQ(BaseDimQuantityName(BaseDim::kTime), "Time");
}

/// Property sweep over exponent grids: ToVectorForm/Parse round-trips.
class DimensionGridTest : public ::testing::TestWithParam<int> {};

TEST_P(DimensionGridTest, VectorFormRoundTripsOnGrid) {
  int v = GetParam();
  for (int axis = 0; axis < kNumBaseDims; ++axis) {
    Dimension d = Dimension::Base(static_cast<BaseDim>(axis), v);
    EXPECT_EQ(Dimension::ParseVectorForm(d.ToVectorForm()).ValueOrDie(), d)
        << d.ToVectorForm();
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, DimensionGridTest,
                         ::testing::Values(-8, -3, -2, -1, 1, 2, 3, 8, 127,
                                           -128));

}  // namespace
}  // namespace dimqr
