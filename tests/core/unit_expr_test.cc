#include "core/unit_expr.h"

#include <gtest/gtest.h>

#include <map>

namespace dimqr {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational::Of(n, d).ValueOrDie();
}

/// A small fixed resolver standing in for the knowledge base.
UnitResolver TestResolver() {
  auto table = std::make_shared<std::map<std::string, UnitSemantics>>();
  (*table)["metre"] = UnitSemantics::SiCoherent(dims::Length(), "m");
  (*table)["m"] = (*table)["metre"];
  (*table)["second"] = UnitSemantics::SiCoherent(dims::Time(), "s");
  (*table)["s"] = (*table)["second"];
  (*table)["kilogram"] = UnitSemantics::SiCoherent(dims::Mass(), "kg");
  (*table)["joule"] = UnitSemantics::SiCoherent(dims::Energy(), "J");
  (*table)["newton"] = UnitSemantics::SiCoherent(dims::Force(), "N");
  (*table)["km"] = UnitSemantics::Linear(dims::Length(), R(1000), "km");
  (*table)["h"] = UnitSemantics::Linear(dims::Time(), R(3600), "h");
  (*table)["cm"] = UnitSemantics::Linear(dims::Length(), R(1, 100), "cm");
  return [table](std::string_view name) -> Result<UnitSemantics> {
    auto it = table->find(std::string(name));
    if (it == table->end()) {
      return Status::NotFound("unknown unit '" + std::string(name) + "'");
    }
    return it->second;
  };
}

TEST(UnitExprTest, SingleUnit) {
  UnitExpr e = UnitExpr::Parse("metre").ValueOrDie();
  EXPECT_EQ(e.kind(), UnitExpr::Kind::kUnit);
  EXPECT_EQ(e.unit_name(), "metre");
  EXPECT_EQ(e.EvaluateDimension(TestResolver()).ValueOrDie(), dims::Length());
}

TEST(UnitExprTest, PaperTableIExample) {
  // F_c = "Joule x Meter" -> dimension L3MT-2.
  UnitExpr e = UnitExpr::Parse("joule x metre").ValueOrDie();
  Dimension d = e.EvaluateDimension(TestResolver()).ValueOrDie();
  EXPECT_EQ(d.ToFormula(), "L3MT-2");
}

TEST(UnitExprTest, StarAndUnicodeTimes) {
  for (const char* text : {"joule*metre", "joule \xC3\x97 metre"}) {
    UnitExpr e = UnitExpr::Parse(text).ValueOrDie();
    EXPECT_EQ(e.EvaluateDimension(TestResolver()).ValueOrDie().ToFormula(),
              "L3MT-2")
        << text;
  }
}

TEST(UnitExprTest, DivisionForms) {
  for (const char* text : {"m/s", "m per s", "m \xC3\xB7 s"}) {
    UnitExpr e = UnitExpr::Parse(text).ValueOrDie();
    EXPECT_EQ(e.EvaluateDimension(TestResolver()).ValueOrDie(),
              dims::Velocity())
        << text;
  }
}

TEST(UnitExprTest, PowerBindsTighterThanDivision) {
  UnitExpr e = UnitExpr::Parse("m/s^2").ValueOrDie();
  EXPECT_EQ(e.EvaluateDimension(TestResolver()).ValueOrDie(),
            dims::Acceleration());
}

TEST(UnitExprTest, NegativePower) {
  UnitExpr e = UnitExpr::Parse("s^-1").ValueOrDie();
  EXPECT_EQ(e.EvaluateDimension(TestResolver()).ValueOrDie(),
            dims::Frequency());
}

TEST(UnitExprTest, ParenthesesOverrideAssociativity) {
  // m/(s*s) == acceleration; m/s*s == length (left-assoc).
  EXPECT_EQ(UnitExpr::Parse("m/(s*s)")
                .ValueOrDie()
                .EvaluateDimension(TestResolver())
                .ValueOrDie(),
            dims::Acceleration());
  EXPECT_EQ(UnitExpr::Parse("m/s*s")
                .ValueOrDie()
                .EvaluateDimension(TestResolver())
                .ValueOrDie(),
            dims::Length());
}

TEST(UnitExprTest, EvaluateCombinesScales) {
  UnitSemantics kmh = UnitExpr::Parse("km/h")
                          .ValueOrDie()
                          .Evaluate(TestResolver())
                          .ValueOrDie();
  EXPECT_EQ(kmh.dimension, dims::Velocity());
  EXPECT_EQ(*kmh.exact_scale, R(5, 18));
}

TEST(UnitExprTest, LeafUnits) {
  UnitExpr e = UnitExpr::Parse("newton*metre/s^2").ValueOrDie();
  std::vector<std::string> leaves = e.LeafUnits();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0], "newton");
  EXPECT_EQ(leaves[1], "metre");
  EXPECT_EQ(leaves[2], "s");
}

TEST(UnitExprTest, UnknownUnitSurfacesNotFound) {
  UnitExpr e = UnitExpr::Parse("blorp/s").ValueOrDie();
  EXPECT_EQ(e.EvaluateDimension(TestResolver()).status().code(),
            StatusCode::kNotFound);
}

TEST(UnitExprTest, MalformedInputsRejected) {
  EXPECT_FALSE(UnitExpr::Parse("").ok());
  EXPECT_FALSE(UnitExpr::Parse("m/").ok());
  EXPECT_FALSE(UnitExpr::Parse("*m").ok());
  EXPECT_FALSE(UnitExpr::Parse("m^").ok());
  EXPECT_FALSE(UnitExpr::Parse("(m/s").ok());
  EXPECT_FALSE(UnitExpr::Parse("m)s(").ok());
  EXPECT_FALSE(UnitExpr::Parse("m^x").ok());
}

TEST(UnitExprTest, ToStringRoundTripsThroughParse) {
  const char* exprs[] = {"m/s^2", "joule*metre", "km/h", "(m/s)*s"};
  for (const char* text : exprs) {
    UnitExpr e1 = UnitExpr::Parse(text).ValueOrDie();
    UnitExpr e2 = UnitExpr::Parse(e1.ToString()).ValueOrDie();
    EXPECT_EQ(e1.EvaluateDimension(TestResolver()).ValueOrDie(),
              e2.EvaluateDimension(TestResolver()).ValueOrDie())
        << text;
  }
}

/// Definition 6 sweep: arithmetic over units matches hand-computed dims.
struct ArithCase {
  const char* expr;
  const char* formula;
};

class DimensionArithmeticTest : public ::testing::TestWithParam<ArithCase> {};

TEST_P(DimensionArithmeticTest, MatchesExpectedFormula) {
  const ArithCase& c = GetParam();
  UnitExpr e = UnitExpr::Parse(c.expr).ValueOrDie();
  EXPECT_EQ(e.EvaluateDimension(TestResolver()).ValueOrDie().ToFormula(),
            c.formula)
      << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DimensionArithmeticTest,
    ::testing::Values(ArithCase{"newton/m", "MT-2"},
                      ArithCase{"joule/newton", "L"},
                      ArithCase{"joule/s", "L2MT-3"},
                      ArithCase{"kilogram*m/s^2", "LMT-2"},
                      ArithCase{"m*m*m/s", "L3T-1"},
                      ArithCase{"m/m", "D"},
                      ArithCase{"cm^3", "L3"},
                      ArithCase{"newton/(m*m)", "L-1MT-2"}));

}  // namespace
}  // namespace dimqr
