#include "core/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace dimqr {
namespace {

/// Restores a clean global registry around each test: the registry is
/// process-wide state and other suites expect it empty.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Clear(); }
  void TearDown() override { FaultRegistry::Global().Clear(); }
};

TEST_F(FaultTest, InactiveByDefault) {
  EXPECT_FALSE(FaultRegistry::Global().Active());
  FaultDecision d = FAULT_POINT("test.inactive").Evaluate(123, 0);
  EXPECT_FALSE(d.Fires());
  EXPECT_EQ(d.kind, FaultKind::kNone);
}

TEST_F(FaultTest, ConfigureParsesEntries) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("a:0.5:transient,b:1:permanent:3")
                  .ok());
  EXPECT_TRUE(FaultRegistry::Global().Active());
  std::vector<std::string> sites = FaultRegistry::Global().ConfiguredSites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "a");
  EXPECT_EQ(sites[1], "b");
}

TEST_F(FaultTest, ConfigureRejectsMalformedSpecsAtomically) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("a:1:permanent").ok());
  // Each bad spec must leave the previous configuration untouched.
  const char* bad[] = {
      "a",                    // too few fields
      "a:1:permanent:2:9",    // too many fields
      ":1:permanent",         // empty site
      "a:2:permanent",        // probability out of range
      "a:x:permanent",        // probability not a number
      "a:1:flaky",            // unknown kind
      "a:1:transient:0",      // after_n must be >= 1
      "a:1:transient:nope",   // after_n not a number
  };
  for (const char* spec : bad) {
    Status st = FaultRegistry::Global().Configure(spec);
    EXPECT_FALSE(st.ok()) << spec;
    EXPECT_EQ(st.code(), StatusCode::kParseError) << spec;
    EXPECT_TRUE(FaultRegistry::Global().Active()) << spec;
    EXPECT_EQ(FaultRegistry::Global().ConfiguredSites().size(), 1u) << spec;
  }
}

TEST_F(FaultTest, EnvSpecParseErrorIsFatal) {
  // The environment path must not degrade to a warning: a chaos run whose
  // DIMQR_FAULTS was silently dropped would pass as a clean run.
  EXPECT_DEATH(
      FaultRegistry::Global().ApplyEnvSpecOrDie("lm.answer_choice:0.2"),
      "invalid DIMQR_FAULTS");
  EXPECT_DEATH(FaultRegistry::Global().ApplyEnvSpecOrDie("a:1:flaky"),
               "unknown fault kind");
}

TEST_F(FaultTest, EnvSpecAppliesValidSpecs) {
  FaultRegistry::Global().ApplyEnvSpecOrDie("a:0.5:transient");
  EXPECT_TRUE(FaultRegistry::Global().Active());
  FaultRegistry::Global().ApplyEnvSpecOrDie(nullptr);
  EXPECT_FALSE(FaultRegistry::Global().Active());
}

TEST_F(FaultTest, EmptySpecClears) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("a:1:permanent").ok());
  ASSERT_TRUE(FaultRegistry::Global().Configure("").ok());
  EXPECT_FALSE(FaultRegistry::Global().Active());
}

TEST_F(FaultTest, DecisionIsPureInSeedAndAttempt) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:0.5:transient").ok());
  const FaultRegistry& registry = FaultRegistry::Global();
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    FaultDecision first = registry.Evaluate("site", seed, 0);
    for (int repeat = 0; repeat < 3; ++repeat) {
      FaultDecision again = registry.Evaluate("site", seed, 0);
      EXPECT_EQ(again.kind, first.kind) << seed;
    }
  }
}

TEST_F(FaultTest, ProbabilityDrivesAffectedFraction) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:0.2:permanent").ok());
  int fired = 0;
  const int kTrials = 2000;
  for (int seed = 0; seed < kTrials; ++seed) {
    if (FaultRegistry::Global()
            .Evaluate("site", static_cast<std::uint64_t>(seed), 0)
            .Fires()) {
      ++fired;
    }
  }
  double rate = static_cast<double>(fired) / kTrials;
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.25);
}

TEST_F(FaultTest, TransientRecoversAfterN) {
  // prob 1: every instance is affected; default after_n = 2.
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:1:transient").ok());
  const FaultRegistry& registry = FaultRegistry::Global();
  EXPECT_EQ(registry.Evaluate("site", 7, 0).kind, FaultKind::kTransient);
  EXPECT_EQ(registry.Evaluate("site", 7, 1).kind, FaultKind::kTransient);
  EXPECT_EQ(registry.Evaluate("site", 7, 2).kind, FaultKind::kNone);
  EXPECT_EQ(registry.Evaluate("site", 7, 3).kind, FaultKind::kNone);
}

TEST_F(FaultTest, PermanentNeverRecovers) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:1:permanent").ok());
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(FaultRegistry::Global().Evaluate("site", 7, attempt).kind,
              FaultKind::kPermanent);
  }
}

TEST_F(FaultTest, LatencyTicksAreBoundedAndDeterministic) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:1:latency:5").ok());
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    FaultDecision d = FaultRegistry::Global().Evaluate("site", seed, 0);
    ASSERT_EQ(d.kind, FaultKind::kLatency);
    EXPECT_GE(d.latency_ticks, 1);
    EXPECT_LE(d.latency_ticks, 5);
    FaultDecision again = FaultRegistry::Global().Evaluate("site", seed, 0);
    EXPECT_EQ(again.latency_ticks, d.latency_ticks);
  }
}

TEST_F(FaultTest, UnconfiguredSiteNeverFires) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("other:1:permanent").ok());
  EXPECT_FALSE(FaultRegistry::Global().Evaluate("site", 1, 0).Fires());
}

TEST_F(FaultTest, FaultPointRegistersKnownSite) {
  (void)FAULT_POINT("test.known_site").Evaluate(1, 0);
  std::vector<std::string> sites = FaultRegistry::KnownSites();
  bool found = false;
  for (const std::string& s : sites) found = found || s == "test.known_site";
  EXPECT_TRUE(found);
}

TEST_F(FaultTest, KindNamesRoundTrip) {
  EXPECT_EQ(FaultKindToString(FaultKind::kNone), "none");
  EXPECT_EQ(FaultKindToString(FaultKind::kTransient), "transient");
  EXPECT_EQ(FaultKindToString(FaultKind::kPermanent), "permanent");
  EXPECT_EQ(FaultKindToString(FaultKind::kLatency), "latency");
  EXPECT_EQ(FaultKindToString(FaultKind::kGarbled), "garbled");
  EXPECT_EQ(FaultKindToString(FaultKind::kSigkill), "sigkill");
  EXPECT_EQ(FaultKindToString(FaultKind::kExit), "exit");
}

TEST_F(FaultTest, CrashKindsParse) {
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:1:sigkill").ok());
  EXPECT_EQ(FaultRegistry::Global().Evaluate("site", 7, 0).kind,
            FaultKind::kSigkill);
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:1:exit").ok());
  EXPECT_EQ(FaultRegistry::Global().Evaluate("site", 7, 0).kind,
            FaultKind::kExit);
}

TEST_F(FaultTest, CrashKindsStopAfterOneByDefault) {
  // Default after_n = 1 for the crash kinds: the first attempt dies, the
  // shard's retry gets past it — every chaos run terminates.
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:1:sigkill").ok());
  EXPECT_EQ(FaultRegistry::Global().Evaluate("site", 7, 0).kind,
            FaultKind::kSigkill);
  EXPECT_EQ(FaultRegistry::Global().Evaluate("site", 7, 1).kind,
            FaultKind::kNone);
}

TEST_F(FaultTest, CrashKindsHonorExplicitAfterN) {
  // `site:1:sigkill:3` crashes three consecutive attempts — the acceptance
  // scenario for supervisor reassignment (a shard that outlives one
  // worker slot's whole crash budget).
  ASSERT_TRUE(FaultRegistry::Global().Configure("site:1:sigkill:3").ok());
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(FaultRegistry::Global().Evaluate("site", 7, attempt).kind,
              FaultKind::kSigkill)
        << attempt;
  }
  EXPECT_EQ(FaultRegistry::Global().Evaluate("site", 7, 3).kind,
            FaultKind::kNone);
}

}  // namespace
}  // namespace dimqr
