#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/rng.h"

namespace dimqr {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool lifecycle
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SizeOneRunsSeriallyOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> order;
  Status st = pool.Run(5, [&](int i) {
    order.push_back(i);  // safe: single executor, no races
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  Status st = pool.Run(kTasks, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyRuns) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    Status st = pool.Run(round + 1, [&](int i) {
      sum.fetch_add(i + 1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(sum.load(), (round + 1) * (round + 2) / 2);
  }
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  Status st = pool.Run(0, [&](int) {
    called = true;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ConstructDestructWithoutRunning) {
  for (int i = 0; i < 10; ++i) {
    ThreadPool pool(4);  // start + immediate shutdown must not hang
  }
}

// ---------------------------------------------------------------------------
// Status propagation
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, LowestIndexedFailureWins) {
  ThreadPool pool(4);
  Status st = pool.Run(100, [&](int i) {
    if (i == 7) return Status::InvalidArgument("chunk 7");
    if (i == 3) return Status::Internal("chunk 3");
    if (i == 42) return Status::NotFound("chunk 42");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "chunk 3");
}

TEST(ThreadPoolTest, AllTasksRunEvenWhenOneFails) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  Status st = pool.Run(64, [&](int i) {
    ran.fetch_add(1);
    return i == 0 ? Status::Internal("first") : Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ErrorStateResetsBetweenRuns) {
  ThreadPool pool(2);
  ASSERT_FALSE(pool.Run(4, [](int) {
                     return Status::Internal("boom");
                   }).ok());
  EXPECT_TRUE(pool.Run(4, [](int) { return Status::OK(); }).ok());
}

TEST(ThreadPoolTest, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  Status st = pool.Run(8, [&](int i) -> Status {
    if (i == 5) throw std::runtime_error("kaboom");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("kaboom"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

TEST(CancelModeTest, SerialRunStopsAfterPermanentFailure) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  Status st = pool.Run(
      100,
      [&](int i) {
        ran.fetch_add(1);
        return i == 10 ? Status::Internal("dead") : Status::OK();
      },
      CancelMode::kCancelOnPermanentError);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(ran.load(), 11);  // 0..10 inclusive, nothing after.
}

TEST(CancelModeTest, RetryableFailuresNeverCancel) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  Status st = pool.Run(
      64,
      [&](int i) {
        ran.fetch_add(1);
        return i % 5 == 0 ? Status::Unavailable("flaky") : Status::OK();
      },
      CancelMode::kCancelOnPermanentError);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ran.load(), 64);
}

TEST(CancelModeTest, ParallelCancelSkipsOnlyHigherIndexes) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(256);
  Status st = pool.Run(
      256,
      [&](int i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
        return i == 3 ? Status::Internal("early") : Status::OK();
      },
      CancelMode::kCancelOnPermanentError);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "early");
  // Indexes at or below the failure always run; skipped ones never ran at
  // all (no double runs either way).
  for (int i = 0; i <= 3; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  for (const auto& h : hits) EXPECT_LE(h.load(), 1);
}

TEST(CancelModeTest, LowestIndexedFailureStillWinsUnderCancellation) {
  // A retryable failure at a low index must not mask (or be masked by) a
  // permanent one at a higher index: the lowest-indexed failure is
  // reported, exactly as in kRunAll mode.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    Status st = pool.Run(
        64,
        [&](int i) {
          if (i == 2) return Status::Unavailable("flaky 2");
          if (i == 40) return Status::Internal("dead 40");
          return Status::OK();
        },
        CancelMode::kCancelOnPermanentError);
    ASSERT_EQ(st.code(), StatusCode::kUnavailable) << round;
    ASSERT_EQ(st.message(), "flaky 2") << round;
  }
}

TEST(CancelModeTest, ParallelForForwardsCancelMode) {
  // Pin the pool to one thread so the stop point is exact regardless of the
  // ambient DIMQR_THREADS setting.
  ScopedParallelism serial(1);
  std::atomic<int> ran{0};
  Status st = ParallelFor(
      50,
      [&](std::int64_t begin, std::int64_t, int) {
        ran.fetch_add(1);
        return begin == 5 ? Status::Internal("stop") : Status::OK();
      },
      /*grain=*/1, CancelMode::kCancelOnPermanentError);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(ran.load(), 6);
}

// ---------------------------------------------------------------------------
// SplitSeed / SplitRng streams
// ---------------------------------------------------------------------------

TEST(SplitSeedTest, DistinctStreamsGetDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 10000; ++s) {
    seeds.insert(Rng::SplitSeed(20240131, s));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(SplitSeedTest, DistinctParentsGetDistinctSeeds) {
  EXPECT_NE(Rng::SplitSeed(1, 0), Rng::SplitSeed(2, 0));
  EXPECT_NE(Rng::SplitSeed(1, 1), Rng::SplitSeed(2, 1));
}

TEST(SplitSeedTest, StreamsAreDecorrelated) {
  // Adjacent streams should not produce correlated first draws: the mean of
  // the first uniform from each of 4096 adjacent streams must look uniform.
  double sum = 0.0;
  constexpr int kStreams = 4096;
  for (int s = 0; s < kStreams; ++s) {
    Rng rng = Rng::ForStream(99, static_cast<std::uint64_t>(s));
    sum += rng.UniformReal(0.0, 1.0);
  }
  double mean = sum / kStreams;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(SplitSeedTest, ForStreamReproducesExactly) {
  Rng a = Rng::ForStream(7, 13);
  Rng b = Rng::ForStream(7, 13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  }
}

// ---------------------------------------------------------------------------
// ParallelFor / ParallelMapReduce determinism across thread counts
// ---------------------------------------------------------------------------

/// Runs a float accumulation at a given pool size and returns the result.
double SumOfSinesAt(int threads) {
  ScopedParallelism scope(threads);
  constexpr std::int64_t kN = 10000;
  Result<double> r = ParallelMapReduce<double>(
      kN, 0.0,
      [](std::int64_t begin, std::int64_t end, int chunk) -> Result<double> {
        // Per-chunk RNG stream: draws depend on the chunk index only.
        Rng rng = Rng::ForStream(123, static_cast<std::uint64_t>(chunk));
        double partial = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          partial += rng.UniformReal(0.0, 1.0) / static_cast<double>(i + 1);
        }
        return partial;
      },
      [](double& acc, double&& partial) { acc += partial; });
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(ParallelForTest, ChunkBoundariesDependOnlyOnN) {
  // Record (begin, end, chunk) triples at 1, 2, and 8 threads; they must be
  // identical because chunking is a function of n alone.
  auto chunks_at = [](int threads) {
    ScopedParallelism scope(threads);
    std::vector<std::vector<std::int64_t>> triples(1000);
    std::atomic<int> seen{0};
    Status st = ParallelFor(777, [&](std::int64_t b, std::int64_t e, int c) {
      triples[static_cast<std::size_t>(c)] = {b, e, c};
      seen.fetch_add(1);
      return Status::OK();
    });
    EXPECT_TRUE(st.ok());
    triples.resize(static_cast<std::size_t>(seen.load()));
    return triples;
  };
  auto t1 = chunks_at(1);
  auto t2 = chunks_at(2);
  auto t8 = chunks_at(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ParallelForTest, CoversExactlyTheRange) {
  ScopedParallelism scope(4);
  constexpr std::int64_t kN = 12345;
  std::vector<std::atomic<int>> hits(kN);
  Status st = ParallelFor(kN, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, HonoursExplicitGrain) {
  ScopedParallelism scope(2);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(100);
  std::atomic<int> chunks{0};
  Status st = ParallelFor(
      100,
      [&](std::int64_t b, std::int64_t e, int c) {
        ranges[static_cast<std::size_t>(c)] = {b, e};
        chunks.fetch_add(1);
        return Status::OK();
      },
      /*grain=*/30);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(chunks.load(), 4);  // 30 + 30 + 30 + 10
  EXPECT_EQ(ranges[3], (std::pair<std::int64_t, std::int64_t>{90, 100}));
}

TEST(ParallelMapReduceTest, BitForBitIdenticalAcross1_2_8Threads) {
  double at1 = SumOfSinesAt(1);
  double at2 = SumOfSinesAt(2);
  double at8 = SumOfSinesAt(8);
  // Exact equality is the whole point: not NEAR, EQ.
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

TEST(ParallelMapReduceTest, ReducesInChunkIndexOrder) {
  ScopedParallelism scope(8);
  // Concatenate chunk indices; ordered reduction must yield 0,1,2,...
  Result<std::vector<int>> r = ParallelMapReduce<std::vector<int>>(
      640, {},
      [](std::int64_t, std::int64_t, int chunk) -> Result<std::vector<int>> {
        return std::vector<int>{chunk};
      },
      [](std::vector<int>& acc, std::vector<int>&& partial) {
        acc.insert(acc.end(), partial.begin(), partial.end());
      },
      /*grain=*/10);
  ASSERT_TRUE(r.ok());
  std::vector<int> expected(64);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(*r, expected);
}

TEST(ParallelMapReduceTest, PropagatesFirstChunkError) {
  ScopedParallelism scope(4);
  Result<int> r = ParallelMapReduce<int>(
      100, 0,
      [](std::int64_t, std::int64_t, int chunk) -> Result<int> {
        if (chunk >= 2) return Status::OutOfRange("chunk " + std::to_string(chunk));
        return chunk;
      },
      [](int& acc, int&& v) { acc += v; },
      /*grain=*/10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.status().message(), "chunk 2");
}

TEST(ScopedParallelismTest, OverridesNestAndRestore) {
  int base = ParallelThreadCount();
  {
    ScopedParallelism outer(3);
    EXPECT_EQ(ParallelThreadCount(), 3);
    {
      ScopedParallelism inner(5);
      EXPECT_EQ(ParallelThreadCount(), 5);
    }
    EXPECT_EQ(ParallelThreadCount(), 3);
  }
  EXPECT_EQ(ParallelThreadCount(), base);
}

}  // namespace
}  // namespace dimqr
