#include "core/proc.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

namespace dimqr::proc {
namespace {

// The fork-based tests must not run under TSan: forking a multi-threaded
// instrumented process trips the runtime even though the children here are
// single-threaded by construction.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

#define SKIP_IF_TSAN() \
  if (kTsan) GTEST_SKIP() << "fork-based test skipped under TSan"

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string Text(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

TEST(BackoffDelayMsTest, DoublesFromInitialAndCaps) {
  SupervisorOptions options;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 75;
  EXPECT_EQ(BackoffDelayMs(1, options), 10);
  EXPECT_EQ(BackoffDelayMs(2, options), 20);
  EXPECT_EQ(BackoffDelayMs(3, options), 40);
  EXPECT_EQ(BackoffDelayMs(4, options), 75);   // capped, not 80
  EXPECT_EQ(BackoffDelayMs(30, options), 75);  // no overflow at high counts
}

TEST(FrameBufferTest, ReassemblesFramesFromArbitrarySplits) {
  std::vector<std::byte> wire;
  {
    // Serialize two frames through a pipe to reuse the writer.
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    ASSERT_TRUE(WriteFrame(fds[1], FrameType::kHello, 3, 1, {}).ok());
    std::vector<std::byte> payload = Bytes("result");
    ASSERT_TRUE(WriteFrame(fds[1], FrameType::kShardDone, 3, 1, payload).ok());
    close(fds[1]);
    std::byte buf[4096];
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
      wire.insert(wire.end(), buf, buf + n);
    }
    close(fds[0]);
  }
  // Feed the stream one byte at a time: frames must reassemble regardless
  // of read() boundaries.
  FrameBuffer buffer;
  std::vector<Frame> frames;
  for (std::byte b : wire) {
    buffer.Append(std::span<const std::byte>(&b, 1));
    Frame frame;
    auto got = buffer.Next(&frame);
    ASSERT_TRUE(got.ok());
    if (got.ValueOrDie()) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].shard, 3u);
  EXPECT_EQ(frames[1].type, FrameType::kShardDone);
  EXPECT_EQ(Text(frames[1].payload), "result");
}

TEST(FrameBufferTest, TornTrailingFrameNeverCompletes) {
  // A worker killed mid-write leaves a prefix of a frame; the buffer must
  // simply never yield it (no error, no garbage frame).
  FrameBuffer buffer;
  FrameHeader header;
  header.magic = kFrameMagic;
  header.type = static_cast<std::uint32_t>(FrameType::kShardDone);
  header.shard = 0;
  header.attempt = 0;
  header.payload_size = 100;  // promised but never delivered
  std::byte raw[sizeof(header)];
  std::memcpy(raw, &header, sizeof(header));
  buffer.Append(std::span<const std::byte>(raw, sizeof(raw)));
  buffer.Append(std::span<const std::byte>(raw, 4));  // partial payload
  Frame frame;
  auto got = buffer.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.ValueOrDie());
}

TEST(FrameBufferTest, BadMagicIsAnError) {
  FrameBuffer buffer;
  FrameHeader header;
  header.magic = 0xdeadbeef;
  header.type = static_cast<std::uint32_t>(FrameType::kHello);
  std::byte raw[sizeof(header)];
  std::memcpy(raw, &header, sizeof(header));
  buffer.Append(std::span<const std::byte>(raw, sizeof(raw)));
  Frame frame;
  auto got = buffer.Next(&frame);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
}

TEST(RunShardsTest, CollectsEveryShardPayloadInOrder) {
  SKIP_IF_TSAN();
  SupervisorOptions options;
  options.num_workers = 2;
  auto result = RunShards(
      5,
      [](ShardContext& ctx) -> Result<std::vector<std::byte>> {
        return Bytes("shard " + std::to_string(ctx.shard));
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FleetReport& report = result.ValueOrDie();
  EXPECT_EQ(report.num_shards, 5);
  EXPECT_EQ(report.crashes, 0u);
  ASSERT_EQ(report.outcomes.size(), 5u);
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(report.outcomes[s].shard, s);
    EXPECT_EQ(report.outcomes[s].attempts, 1);
    EXPECT_EQ(Text(report.outcomes[s].payload),
              "shard " + std::to_string(s));
  }
}

TEST(RunShardsTest, RestartsCrashedShardWithIncrementedAttempt) {
  SKIP_IF_TSAN();
  SupervisorOptions options;
  options.num_workers = 2;
  auto result = RunShards(
      4,
      [](ShardContext& ctx) -> Result<std::vector<std::byte>> {
        // Odd shards die by SIGKILL on their first attempt.
        if (ctx.shard % 2 == 1 && ctx.attempt == 0) {
          (void)::raise(SIGKILL);
        }
        return Bytes("attempt " + std::to_string(ctx.attempt));
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FleetReport& report = result.ValueOrDie();
  EXPECT_EQ(report.crashes, 2u);
  EXPECT_EQ(report.restarts, 2u);
  ASSERT_EQ(report.outcomes.size(), 4u);
  EXPECT_EQ(Text(report.outcomes[0].payload), "attempt 0");
  EXPECT_EQ(Text(report.outcomes[1].payload), "attempt 1");
  EXPECT_EQ(report.outcomes[1].attempts, 2);
  EXPECT_EQ(Text(report.outcomes[3].payload), "attempt 1");
}

TEST(RunShardsTest, UncleanExitCountsAsCrash) {
  SKIP_IF_TSAN();
  SupervisorOptions options;
  options.num_workers = 1;
  auto result = RunShards(
      1,
      [](ShardContext& ctx) -> Result<std::vector<std::byte>> {
        if (ctx.attempt == 0) ::_exit(13);
        return Bytes("ok");
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().crashes, 1u);
  EXPECT_EQ(Text(result.ValueOrDie().outcomes[0].payload), "ok");
}

TEST(RunShardsTest, SurvivesRepeatedCrashesViaReassignment) {
  SKIP_IF_TSAN();
  // The acceptance scenario: one shard crashes 3 consecutive times with a
  // per-slot budget of 2 — it must exhaust slot A's budget, move to slot
  // B, and complete there rather than failing the run.
  SupervisorOptions options;
  options.num_workers = 2;
  options.crash_budget_per_worker = 2;
  options.backoff_initial_ms = 1;
  auto result = RunShards(
      2,
      [](ShardContext& ctx) -> Result<std::vector<std::byte>> {
        if (ctx.shard == 0 && ctx.attempt < 3) (void)::raise(SIGKILL);
        return Bytes("done " + std::to_string(ctx.attempt));
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FleetReport& report = result.ValueOrDie();
  EXPECT_EQ(report.crashes, 3u);
  EXPECT_GE(report.reassignments, 1u);
  EXPECT_EQ(Text(report.outcomes[0].payload), "done 3");
  EXPECT_EQ(report.outcomes[0].attempts, 4);
  EXPECT_EQ(Text(report.outcomes[1].payload), "done 0");
}

TEST(RunShardsTest, ShardExhaustingEverySlotFailsTheRun) {
  SKIP_IF_TSAN();
  SupervisorOptions options;
  options.num_workers = 2;
  options.crash_budget_per_worker = 1;
  options.backoff_initial_ms = 1;
  auto result = RunShards(
      1,
      [](ShardContext&) -> Result<std::vector<std::byte>> {
        (void)::raise(SIGKILL);  // crashes on every attempt, every slot
        return Bytes("unreachable");
      },
      options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(RunShardsTest, GlobalCrashCeilingFailsTheRun) {
  SKIP_IF_TSAN();
  SupervisorOptions options;
  options.num_workers = 1;
  options.crash_budget_per_worker = 100;
  options.max_total_crashes = 3;
  options.backoff_initial_ms = 1;
  auto result = RunShards(
      1,
      [](ShardContext&) -> Result<std::vector<std::byte>> {
        (void)::raise(SIGKILL);
        return Bytes("unreachable");
      },
      options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(RunShardsTest, BodyErrorStatusIsPermanentAndPropagates) {
  SKIP_IF_TSAN();
  SupervisorOptions options;
  options.num_workers = 2;
  auto result = RunShards(
      3,
      [](ShardContext& ctx) -> Result<std::vector<std::byte>> {
        if (ctx.shard == 1) {
          return Status::DataLoss("shard 1 hit corrupt data");
        }
        return Bytes("ok");
      },
      options);
  ASSERT_FALSE(result.ok());
  // The body's Status crosses the process boundary intact: same code,
  // same message — and no retry (crashes stay 0).
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("shard 1 hit corrupt data"),
            std::string::npos);
}

TEST(RunShardsTest, HungWorkerIsKilledAndShardRetried) {
  SKIP_IF_TSAN();
  SupervisorOptions options;
  options.num_workers = 1;
  options.heartbeat_interval_ms = 10;
  options.heartbeat_timeout_ms = 250;
  options.backoff_initial_ms = 1;
  auto result = RunShards(
      1,
      [](ShardContext& ctx) -> Result<std::vector<std::byte>> {
        if (ctx.attempt == 0) {
          // Hang without beating: the supervisor must declare this worker
          // dead and SIGKILL it well before the sleep finishes.
          ::sleep(30);
        }
        return Bytes("recovered");
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FleetReport& report = result.ValueOrDie();
  EXPECT_GE(report.heartbeat_timeouts, 1u);
  EXPECT_EQ(report.crashes, 1u);
  EXPECT_EQ(Text(report.outcomes[0].payload), "recovered");
}

TEST(RunShardsTest, RejectsInvalidArguments) {
  auto body = [](ShardContext&) -> Result<std::vector<std::byte>> {
    return std::vector<std::byte>{};
  };
  SupervisorOptions options;
  options.num_workers = 0;
  EXPECT_EQ(RunShards(1, body, options).status().code(),
            StatusCode::kInvalidArgument);
  options.num_workers = 1;
  EXPECT_EQ(RunShards(-1, body, options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunShards(1, ShardBody{}, options).status().code(),
            StatusCode::kInvalidArgument);
  // Zero shards is a legal no-op, not an error.
  auto empty = RunShards(0, body, options);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.ValueOrDie().outcomes.empty());
}

}  // namespace
}  // namespace dimqr::proc
