#include <gtest/gtest.h>

#include <set>

#include "core/parallel.h"
#include "mwp/augment.h"
#include "mwp/generator.h"
#include "mwp/stats.h"
#include "mwp/tokenization.h"

namespace dimqr::mwp {
namespace {

std::shared_ptr<const kb::DimUnitKB> Kb() {
  static const std::shared_ptr<const kb::DimUnitKB> kKb =
      kb::DimUnitKB::Build().ValueOrDie();
  return kKb;
}

const std::vector<TemplatedProblem>& NProblems() {
  static const std::vector<TemplatedProblem>* const kProblems = [] {
    MwpGenerator gen(Kb());
    return new std::vector<TemplatedProblem>(
        gen.Generate("n_test", 120, 0.3).ValueOrDie());
  }();
  return *kProblems;
}

TEST(MwpGeneratorTest, GeneratesRequestedCount) {
  EXPECT_EQ(NProblems().size(), 120u);
  EXPECT_GE(MwpGenerator::TemplateFamilyCount(), 15u);
}

TEST(MwpGeneratorTest, GoldEquationEvaluatesToAnswer) {
  for (const TemplatedProblem& tp : NProblems()) {
    double value = tp.problem.gold_equation.Evaluate().ValueOrDie();
    EXPECT_NEAR(value, tp.problem.answer,
                1e-9 * std::max(1.0, std::abs(tp.problem.answer)))
        << tp.problem.text;
    EXPECT_GT(tp.problem.answer, 0.0);
    EXPECT_EQ(tp.problem.op_count,
              tp.problem.gold_equation.OperationCount());
  }
}

TEST(MwpGeneratorTest, SlotRenderingsAppearInText) {
  for (const TemplatedProblem& tp : NProblems()) {
    for (const QuantitySlot& slot : tp.problem.slots) {
      if (!slot.surface.empty()) {
        EXPECT_NE(tp.problem.text.find(slot.surface), std::string::npos)
            << tp.problem.text;
      }
    }
    EXPECT_EQ(tp.problem.text.find('{'), std::string::npos)
        << "unexpanded placeholder: " << tp.problem.text;
  }
}

TEST(MwpGeneratorTest, DeterministicForSeed) {
  MwpGenerator g1(Kb(), 7), g2(Kb(), 7);
  auto a = g1.Generate("d", 10, 0.4).ValueOrDie();
  auto b = g2.Generate("d", 10, 0.4).ValueOrDie();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].problem.text, b[i].problem.text);
    EXPECT_DOUBLE_EQ(a[i].problem.answer, b[i].problem.answer);
  }
}

TEST(MwpGeneratorTest, BitForBitIdenticalAcrossThreadCounts) {
  // N-MWP generation and Q-MWP augmentation both use per-index RNG streams,
  // so the datasets must match exactly at any pool size.
  auto generate_at = [](int threads) {
    dimqr::ScopedParallelism scope(threads);
    MwpGenerator gen(Kb(), 7);
    std::vector<TemplatedProblem> numeric =
        gen.Generate("d", 60, 0.4).ValueOrDie();
    QMwpOptions options;
    options.augmentation_rate = 0.8;
    return BuildQMwp(numeric, "q", *Kb(), options).ValueOrDie();
  };
  auto at1 = generate_at(1);
  auto at8 = generate_at(8);
  ASSERT_EQ(at1.size(), at8.size());
  for (std::size_t i = 0; i < at1.size(); ++i) {
    EXPECT_EQ(at1[i].problem.text, at8[i].problem.text);
    EXPECT_EQ(at1[i].problem.answer, at8[i].problem.answer);
    EXPECT_EQ(at1[i].problem.augmentations, at8[i].problem.augmentations);
  }
}

TEST(MwpGeneratorTest, MultiStepBiasShiftsOpCounts) {
  MwpGenerator gen(Kb());
  auto easy = gen.Generate("easy", 150, 0.1).ValueOrDie();
  auto hard = gen.Generate("hard", 150, 0.8).ValueOrDie();
  auto mean_ops = [](const std::vector<TemplatedProblem>& v) {
    double total = 0;
    for (const auto& tp : v) total += tp.problem.op_count;
    return total / static_cast<double>(v.size());
  };
  EXPECT_GT(mean_ops(hard), mean_ops(easy) + 0.5);
}

TEST(MwpGeneratorTest, RejectsBadCount) {
  MwpGenerator gen(Kb());
  EXPECT_FALSE(gen.Generate("d", 0, 0.5).ok());
}

// ------------------------------------------------------------- Augment

TEST(AugmentTest, ContextFormatKeepsAnswer) {
  Rng rng(3);
  int applied = 0;
  for (const TemplatedProblem& original : NProblems()) {
    TemplatedProblem tp = original;
    Status s = ApplyAugmentation(tp, AugmentKind::kContextFormat, *Kb(), rng);
    if (!s.ok()) continue;
    ++applied;
    EXPECT_DOUBLE_EQ(tp.problem.answer, original.problem.answer);
    EXPECT_NE(tp.problem.text, original.problem.text);
    EXPECT_EQ(tp.problem.op_count, original.problem.op_count);
    EXPECT_EQ(tp.problem.augmentations.back(), "ctx-format");
  }
  EXPECT_GT(applied, 50);
}

TEST(AugmentTest, ContextDimensionKeepsAnswerAddsOps) {
  Rng rng(4);
  int applied = 0;
  for (const TemplatedProblem& original : NProblems()) {
    TemplatedProblem tp = original;
    Status s =
        ApplyAugmentation(tp, AugmentKind::kContextDimension, *Kb(), rng);
    if (!s.ok()) continue;
    ++applied;
    // Physical scenario invariant -> same answer (Table V: 450 -> 450).
    EXPECT_NEAR(tp.problem.answer, original.problem.answer,
                1e-6 * std::max(1.0, std::abs(original.problem.answer)))
        << tp.problem.text;
    // The equation now carries a conversion factor.
    EXPECT_GT(tp.problem.op_count, original.problem.op_count);
    // Gold equation still evaluates to the answer.
    EXPECT_NEAR(tp.problem.gold_equation.Evaluate().ValueOrDie(),
                tp.problem.answer, 1e-9 * std::max(1.0, tp.problem.answer));
  }
  EXPECT_GT(applied, 30);
}

TEST(AugmentTest, QuestionFormatKeepsAnswer) {
  Rng rng(5);
  int applied = 0;
  for (const TemplatedProblem& original : NProblems()) {
    TemplatedProblem tp = original;
    Status s = ApplyAugmentation(tp, AugmentKind::kQuestionFormat, *Kb(), rng);
    if (!s.ok()) continue;
    ++applied;
    EXPECT_DOUBLE_EQ(tp.problem.answer, original.problem.answer);
    EXPECT_NE(tp.problem.question_surface, original.problem.question_surface);
  }
  EXPECT_GT(applied, 50);
}

TEST(AugmentTest, QuestionDimensionConvertsAnswer) {
  Rng rng(6);
  int applied = 0;
  for (const TemplatedProblem& original : NProblems()) {
    TemplatedProblem tp = original;
    Status s =
        ApplyAugmentation(tp, AugmentKind::kQuestionDimension, *Kb(), rng);
    if (!s.ok()) continue;
    ++applied;
    // Answer converts (Table V: 450 kg -> 0.45 t).
    const kb::UnitRecord& old_unit = Kb()->Get(original.problem.question_unit);
    const kb::UnitRecord& new_unit = Kb()->Get(tp.problem.question_unit);
    double factor = old_unit.conversion_value / new_unit.conversion_value;
    EXPECT_NEAR(tp.problem.answer, original.problem.answer * factor,
                1e-6 * std::max(1.0, std::abs(tp.problem.answer)));
    EXPECT_NE(tp.problem.question_unit, original.problem.question_unit);
    EXPECT_NEAR(tp.problem.gold_equation.Evaluate().ValueOrDie(),
                tp.problem.answer,
                1e-9 * std::max(1.0, std::abs(tp.problem.answer)));
  }
  EXPECT_GT(applied, 30);
}

TEST(AugmentTest, TableVDilutionScenario) {
  // Reconstruct the Table V walk-through: 150 kg pesticide at 20% diluted
  // to 5% -> add 450 kg of water; asking in tonnes converts to 0.45.
  MwpGenerator gen(Kb(), 99);
  // Find a dilution problem.
  auto problems = gen.Generate("t5", 200, 0.0).ValueOrDie();
  const TemplatedProblem* dilution = nullptr;
  for (const TemplatedProblem& tp : problems) {
    if (tp.problem.text.find("pesticide") != std::string::npos) {
      dilution = &tp;
      break;
    }
  }
  ASSERT_NE(dilution, nullptr);
  TemplatedProblem tp = *dilution;
  Rng rng(1);
  // Force a question-dimension substitution; retry rngs until it picks a
  // different unit (tonne, gram, pound...).
  ASSERT_TRUE(
      ApplyAugmentation(tp, AugmentKind::kQuestionDimension, *Kb(), rng).ok());
  const kb::UnitRecord* old_unit =
      &Kb()->Get(Kb()->ResolveId("KiloGM").ValueOrDie());
  const kb::UnitRecord& new_unit = Kb()->Get(tp.problem.question_unit);
  double factor = old_unit->conversion_value / new_unit.conversion_value;
  EXPECT_NEAR(tp.problem.answer, dilution->problem.answer * factor, 1e-6);
}

TEST(AugmentTest, BuildQMwpRateZeroIsCopy) {
  QMwpOptions options;
  options.augmentation_rate = 0.0;
  auto q = BuildQMwp(NProblems(), "q_test", *Kb(), options).ValueOrDie();
  ASSERT_EQ(q.size(), NProblems().size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q[i].problem.text, NProblems()[i].problem.text);
    EXPECT_TRUE(q[i].problem.augmentations.empty());
    EXPECT_EQ(q[i].problem.dataset, "q_test");
  }
}

TEST(AugmentTest, BuildQMwpFullRateAugmentsMost) {
  QMwpOptions options;
  options.augmentation_rate = 1.0;
  auto q = BuildQMwp(NProblems(), "q_test", *Kb(), options).ValueOrDie();
  std::size_t augmented = 0;
  for (const TemplatedProblem& tp : q) {
    if (!tp.problem.augmentations.empty()) ++augmented;
  }
  EXPECT_GT(augmented, q.size() * 8 / 10);
}

TEST(AugmentTest, QMwpHasMoreUnitsAndOps) {
  // The Table VI shape: Q-* datasets have more distinct units and heavier
  // operation tails than their N-* sources.
  auto q = BuildQMwp(NProblems(), "q_test", *Kb(), {}).ValueOrDie();
  DatasetStats n_stats = ComputeStats(NProblems(), "n");
  DatasetStats q_stats = ComputeStats(q, "q");
  EXPECT_GT(q_stats.num_units, n_stats.num_units);
  EXPECT_GT(q_stats.mean_ops, n_stats.mean_ops);
}

TEST(AugmentTest, RejectsBadOptions) {
  QMwpOptions bad;
  bad.augmentation_rate = 1.5;
  EXPECT_FALSE(BuildQMwp(NProblems(), "q", *Kb(), bad).ok());
  EXPECT_FALSE(BuildQMwp({}, "q", *Kb(), {}).ok());
}

// ------------------------------------------------------------- Stats

TEST(StatsTest, OpBuckets) {
  EXPECT_EQ(OpBucket(0), 0u);
  EXPECT_EQ(OpBucket(3), 0u);
  EXPECT_EQ(OpBucket(4), 1u);
  EXPECT_EQ(OpBucket(5), 1u);
  EXPECT_EQ(OpBucket(6), 2u);
  EXPECT_EQ(OpBucket(8), 2u);
  EXPECT_EQ(OpBucket(9), 3u);
}

TEST(StatsTest, CountsAreConsistent) {
  DatasetStats stats = ComputeStats(NProblems(), "n_test");
  EXPECT_EQ(stats.num_problems, NProblems().size());
  EXPECT_EQ(stats.op_buckets[0] + stats.op_buckets[1] + stats.op_buckets[2] +
                stats.op_buckets[3],
            stats.num_problems);
  EXPECT_GT(stats.num_units, 3u);
}

// -------------------------------------------------------- Tokenization

TEST(TokenizationTest, RegularKeepsNumbersWhole) {
  auto toks = TokenizeEquation("150*20%/5%-150", TokenizationMode::kRegular);
  std::vector<std::string> expected = {"150", "*", "20", "%", "/",
                                       "5",   "%", "-", "150"};
  EXPECT_EQ(toks, expected);
}

TEST(TokenizationTest, DigitSplitsNumbers) {
  auto toks = TokenizeEquation("150+2.5", TokenizationMode::kDigit);
  std::vector<std::string> expected = {"1", "5", "0", "+", "2", ".", "5"};
  EXPECT_EQ(toks, expected);
}

TEST(TokenizationTest, ProblemTextModes) {
  auto regular =
      TokenizeProblemText("buy 150 kilograms", TokenizationMode::kRegular);
  ASSERT_EQ(regular.size(), 3u);
  EXPECT_EQ(regular[1], "150");
  auto digit =
      TokenizeProblemText("buy 150 kilograms", TokenizationMode::kDigit);
  ASSERT_EQ(digit.size(), 5u);
  EXPECT_EQ(digit[1], "1");
  EXPECT_EQ(digit[3], "0");
}

}  // namespace
}  // namespace dimqr::mwp
