#include "mwp/equation.h"

#include <gtest/gtest.h>

namespace dimqr::mwp {
namespace {

TEST(EquationTest, NumberLiteral) {
  Equation e = Equation::Number(42);
  EXPECT_TRUE(e.is_number());
  EXPECT_DOUBLE_EQ(e.Evaluate().ValueOrDie(), 42.0);
  EXPECT_EQ(e.ToString(), "42");
  EXPECT_EQ(e.OperationCount(), 0);
}

TEST(EquationTest, PercentLiteral) {
  Equation e = Equation::Number(20, /*percent=*/true);
  EXPECT_DOUBLE_EQ(e.Evaluate().ValueOrDie(), 0.2);
  EXPECT_EQ(e.ToString(), "20%");
}

TEST(EquationTest, BinaryTreeEvaluation) {
  // (150*20%)/5% - 150 = 450 — the Table V dilution answer.
  Equation e = Equation::Binary(
      '-',
      Equation::Binary('/',
                       Equation::Binary('*', Equation::Number(150),
                                        Equation::Number(20, true)),
                       Equation::Number(5, true)),
      Equation::Number(150));
  EXPECT_DOUBLE_EQ(e.Evaluate().ValueOrDie(), 450.0);
  EXPECT_EQ(e.OperationCount(), 3);
}

TEST(EquationTest, ParseRespectsPrecedence) {
  EXPECT_DOUBLE_EQ(Equation::Parse("2+3*4").ValueOrDie().Evaluate().ValueOrDie(),
                   14.0);
  EXPECT_DOUBLE_EQ(
      Equation::Parse("(2+3)*4").ValueOrDie().Evaluate().ValueOrDie(), 20.0);
  EXPECT_DOUBLE_EQ(
      Equation::Parse("10-4-3").ValueOrDie().Evaluate().ValueOrDie(), 3.0);
  EXPECT_DOUBLE_EQ(
      Equation::Parse("24/4/2").ValueOrDie().Evaluate().ValueOrDie(), 3.0);
}

TEST(EquationTest, ParsePercentAndDecimals) {
  EXPECT_DOUBLE_EQ(
      Equation::Parse("150*20%/5%-150").ValueOrDie().Evaluate().ValueOrDie(),
      450.0);
  EXPECT_DOUBLE_EQ(
      Equation::Parse("2.5*4").ValueOrDie().Evaluate().ValueOrDie(), 10.0);
}

TEST(EquationTest, ParseUnaryMinus) {
  EXPECT_DOUBLE_EQ(
      Equation::Parse("-3+5").ValueOrDie().Evaluate().ValueOrDie(), 2.0);
  EXPECT_DOUBLE_EQ(
      Equation::Parse("2*(-3)").ValueOrDie().Evaluate().ValueOrDie(), -6.0);
}

TEST(EquationTest, ParseRejectsJunk) {
  EXPECT_FALSE(Equation::Parse("").ok());
  EXPECT_FALSE(Equation::Parse("2+").ok());
  EXPECT_FALSE(Equation::Parse("(2+3").ok());
  EXPECT_FALSE(Equation::Parse("abc").ok());
  EXPECT_FALSE(Equation::Parse("2 3").ok());
  EXPECT_FALSE(Equation::Parse("2^3").ok());
}

TEST(EquationTest, DivisionByZero) {
  EXPECT_FALSE(Equation::Parse("1/0").ValueOrDie().Evaluate().ok());
  EXPECT_FALSE(
      Equation::Parse("5/(3-3)").ValueOrDie().Evaluate().ok());
}

TEST(EquationTest, ToStringRoundTrips) {
  const char* cases[] = {"2+3*4", "(2+3)*4", "10-(4-3)", "1/(1/4+1/6)",
                         "150*20%/5%-150", "2*(3+4)/(5-1)"};
  for (const char* text : cases) {
    Equation e = Equation::Parse(text).ValueOrDie();
    Equation round = Equation::Parse(e.ToString()).ValueOrDie();
    EXPECT_DOUBLE_EQ(round.Evaluate().ValueOrDie(),
                     e.Evaluate().ValueOrDie())
        << text << " -> " << e.ToString();
  }
}

TEST(EquationTest, MinimalParentheses) {
  Equation e = Equation::Binary(
      '+', Equation::Number(2),
      Equation::Binary('*', Equation::Number(3), Equation::Number(4)));
  EXPECT_EQ(e.ToString(), "2+3*4");
  Equation f = Equation::Binary(
      '*', Equation::Binary('+', Equation::Number(2), Equation::Number(3)),
      Equation::Number(4));
  EXPECT_EQ(f.ToString(), "(2+3)*4");
  // Right-associated subtraction needs parens.
  Equation g = Equation::Binary(
      '-', Equation::Number(10),
      Equation::Binary('-', Equation::Number(4), Equation::Number(3)));
  EXPECT_EQ(g.ToString(), "10-(4-3)");
}

TEST(EquationAnswersMatchTest, CalculatorScoring) {
  // The Section VI-D calculator: equation strings scored by final value.
  EXPECT_TRUE(EquationAnswersMatch("150*20%/5%-150", 450.0));
  EXPECT_TRUE(EquationAnswersMatch("450", 450.0));
  EXPECT_TRUE(EquationAnswersMatch("900/2", 450.0));
  EXPECT_FALSE(EquationAnswersMatch("150*20%/5%", 450.0));
  EXPECT_FALSE(EquationAnswersMatch("garbage", 450.0));
  EXPECT_FALSE(EquationAnswersMatch("1/0", 450.0));
  EXPECT_FALSE(EquationAnswersMatch("", 450.0));
}

TEST(EquationAnswersMatchTest, ToleranceIsRelative) {
  EXPECT_TRUE(EquationAnswersMatch("1000000", 1000000.01));
  EXPECT_FALSE(EquationAnswersMatch("1", 1.1));
}

}  // namespace
}  // namespace dimqr::mwp
