// Tests for the crash-tolerant multi-process DimEval fleet (eval/fleet.h):
// merged rows must be identical to the single-process harness at every
// worker count and under injected worker crashes, shards must resume from
// their journals, and corrupt journals must fail the run cleanly.

#include "eval/fleet.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fault.h"
#include "eval/harness.h"
#include "eval/journal.h"
#include "lm/mock_llm.h"

namespace dimqr::eval {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

#define SKIP_IF_TSAN() \
  if (kTsan) GTEST_SKIP() << "fork-based test skipped under TSan"

std::shared_ptr<const kb::DimUnitKB> Kb() {
  static const std::shared_ptr<const kb::DimUnitKB> kKb =
      kb::DimUnitKB::Build().ValueOrDie();
  return kKb;
}

const linking::DimKsAnnotator& Annotator() {
  static const linking::DimKsAnnotator* const kAnnotator = [] {
    auto linker = linking::UnitLinker::Build(Kb()).ValueOrDie();
    return new linking::DimKsAnnotator(linker);
  }();
  return *kAnnotator;
}

const dimeval::DimEvalBenchmark& Bench() {
  static const dimeval::DimEvalBenchmark* const kBench = [] {
    dimeval::BenchmarkOptions options;
    options.train_per_task = 8;
    options.test_per_task = 24;
    options.extraction_corpus_sentences = 160;
    return new dimeval::DimEvalBenchmark(
        dimeval::BuildDimEval(Kb(), Annotator(), options).ValueOrDie());
  }();
  return *kBench;
}

/// Two calibrated mocks with distinct profiles, so a merge that crossed
/// rows or tasks would be visible in the counts.
std::vector<FleetModelSpec> Specs() {
  using Skills = std::map<std::string, lm::SkillProfile>;
  static const std::vector<FleetModelSpec>* const kSpecs = [] {
    auto* specs = new std::vector<FleetModelSpec>();
    specs->push_back({std::make_shared<lm::MockLlm>(
                          "A (sim)",
                          Skills{{"quantitykind_match", {0.7, 0.9}},
                                 {"unit_conversion", {0.5, 0.8}},
                                 {"quantity_extraction", {0.6, 0.9}},
                                 {"value_extraction", {0.8, 0.9}},
                                 {"unit_extraction", {0.7, 0.9}}}),
                      nullptr});
    specs->push_back({std::make_shared<lm::MockLlm>(
                          "B (sim)",
                          Skills{{"quantitykind_match", {0.9, 0.95}},
                                 {"magnitude_comparison", {0.8, 0.9}},
                                 {"quantity_extraction", {0.4, 0.7}},
                                 {"value_extraction", {0.5, 0.8}},
                                 {"unit_extraction", {0.45, 0.75}}}),
                      nullptr});
    return specs;
  }();
  return *kSpecs;
}

/// The single-process reference rows for Specs().
std::vector<DimEvalRow> ReferenceRows() {
  std::vector<DimEvalRow> rows;
  for (const FleetModelSpec& spec : Specs()) {
    rows.push_back(
        EvaluateOnDimEval(*spec.model, Bench(), spec.extractor, nullptr));
  }
  return rows;
}

void ExpectRowsEqual(const std::vector<DimEvalRow>& expected,
                     const std::vector<DimEvalRow>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const DimEvalRow& a = expected[i];
    const DimEvalRow& b = actual[i];
    EXPECT_EQ(a.model, b.model);
    ASSERT_EQ(a.choice.size(), b.choice.size()) << a.model;
    for (const auto& [task, metrics] : a.choice) {
      const ChoiceMetrics& other = b.choice.at(task);
      EXPECT_EQ(metrics.total, other.total) << a.model << "/" << task;
      EXPECT_EQ(metrics.answered, other.answered) << a.model << "/" << task;
      EXPECT_EQ(metrics.correct, other.correct) << a.model << "/" << task;
      EXPECT_EQ(metrics.declined_after_retry, other.declined_after_retry)
          << a.model << "/" << task;
      EXPECT_EQ(metrics.failed, other.failed) << a.model << "/" << task;
      EXPECT_EQ(metrics.incomplete, other.incomplete)
          << a.model << "/" << task;
    }
    EXPECT_EQ(a.qe_f1, b.qe_f1) << a.model;
    EXPECT_EQ(a.ve_f1, b.ve_f1) << a.model;
    EXPECT_EQ(a.ue_f1, b.ue_f1) << a.model;
    EXPECT_EQ(a.extraction_incomplete, b.extraction_incomplete) << a.model;
  }
}

std::string TempDirFor(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Clears fault configuration around each test (global registry).
class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Clear(); }
  void TearDown() override { FaultRegistry::Global().Clear(); }
};

TEST_F(FleetTest, RowsMatchSingleProcessAtEveryWorkerCount) {
  SKIP_IF_TSAN();
  std::vector<DimEvalRow> reference = ReferenceRows();
  for (int workers : {1, 2, 8}) {
    FleetEvalOptions options;
    options.workers = workers;
    proc::FleetReport report;
    auto rows = RunFleetDimEval(Specs(), Bench(), options, &report);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ExpectRowsEqual(reference, rows.ValueOrDie());
    EXPECT_EQ(report.crashes, 0u) << workers;
    EXPECT_EQ(report.num_workers, workers);
  }
}

TEST_F(FleetTest, WorkerCountIsClampedToItemCount) {
  SKIP_IF_TSAN();
  FleetEvalOptions options;
  options.workers = 64;  // far more than the 14 (model, task) items
  proc::FleetReport report;
  auto rows = RunFleetDimEval(Specs(), Bench(), options, &report);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(report.num_shards, 14);
  ExpectRowsEqual(ReferenceRows(), rows.ValueOrDie());
}

TEST_F(FleetTest, SigkillChaosBitesAndRowsStayIdentical) {
  SKIP_IF_TSAN();
  // Probability 1: every shard's first item kills its worker on attempt 0;
  // the restarted shard (attempt 1) runs clean — so the chaos must bite
  // exactly once per shard, and the merged rows must not move a byte.
  ASSERT_TRUE(FaultRegistry::Global().Configure("fleet.worker:1:sigkill")
                  .ok());
  FleetEvalOptions options;
  options.workers = 4;
  proc::FleetReport report;
  auto rows = RunFleetDimEval(Specs(), Bench(), options, &report);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(report.crashes, 4u);
  EXPECT_EQ(report.restarts, 4u);
  ExpectRowsEqual(ReferenceRows(), rows.ValueOrDie());
}

TEST_F(FleetTest, ExitChaosBitesAndRowsStayIdentical) {
  SKIP_IF_TSAN();
  ASSERT_TRUE(
      FaultRegistry::Global().Configure("fleet.worker:0.9:exit").ok());
  FleetEvalOptions options;
  options.workers = 2;
  proc::FleetReport report;
  auto rows = RunFleetDimEval(Specs(), Bench(), options, &report);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // With p=0.9 over 14 items, some item fires with near-certainty; the
  // exact count is deterministic (decisions are pure in the item seed).
  EXPECT_GT(report.crashes, 0u);
  ExpectRowsEqual(ReferenceRows(), rows.ValueOrDie());
}

TEST_F(FleetTest, ChaosReportIsDeterministicAcrossRuns) {
  SKIP_IF_TSAN();
  ASSERT_TRUE(
      FaultRegistry::Global().Configure("fleet.worker:0.5:sigkill").ok());
  FleetEvalOptions options;
  options.workers = 4;
  proc::FleetReport first;
  ASSERT_TRUE(RunFleetDimEval(Specs(), Bench(), options, &first).ok());
  proc::FleetReport second;
  ASSERT_TRUE(RunFleetDimEval(Specs(), Bench(), options, &second).ok());
  EXPECT_EQ(first.crashes, second.crashes);
  EXPECT_EQ(first.restarts, second.restarts);
}

TEST_F(FleetTest, SurvivesThreeConsecutiveCrashesViaReassignment) {
  SKIP_IF_TSAN();
  // after_n=3: every shard's first item kills attempts 0, 1 and 2. With a
  // per-slot budget of 2 the shard must move to the other slot to complete
  // — the supervisor's reassignment path, exercised end-to-end.
  ASSERT_TRUE(FaultRegistry::Global().Configure("fleet.worker:1:sigkill:3")
                  .ok());
  FleetEvalOptions options;
  options.workers = 2;
  options.supervisor.crash_budget_per_worker = 2;
  options.supervisor.backoff_initial_ms = 1;
  proc::FleetReport report;
  auto rows = RunFleetDimEval(Specs(), Bench(), options, &report);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(report.crashes, 6u);  // 3 per shard, 2 shards
  EXPECT_GE(report.reassignments, 2u);
  ExpectRowsEqual(ReferenceRows(), rows.ValueOrDie());
}

TEST_F(FleetTest, CrashedShardResumesFromItsJournal) {
  SKIP_IF_TSAN();
  // Pre-seed shard 0's journal with deliberately wrong counts for the
  // first (model, task) item: if the relaunched shard REPLAYS the journal
  // the wrong counts surface in the merged row; if it recomputed, they
  // would be silently corrected and this test would catch the regression.
  std::string dir = TempDirFor("fleet_journal_replay");
  ChoiceMetrics fake;
  fake.total = 999;
  fake.answered = 500;
  fake.correct = 123;
  {
    auto journal = EvalJournal::Open(dir + "/shard_0.journal").ValueOrDie();
    ASSERT_TRUE(journal
                    ->RecordChoice(Specs()[0].model->name(),
                                   std::string(DimEvalChoiceTasks()[0]), fake)
                    .ok());
  }
  FleetEvalOptions options;
  options.workers = 1;
  options.journal_dir = dir;
  auto rows = RunFleetDimEval(Specs(), Bench(), options);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  const ChoiceMetrics& replayed =
      rows.ValueOrDie()[0].choice.at(DimEvalChoiceTasks()[0]);
  EXPECT_EQ(replayed.total, 999u);
  EXPECT_EQ(replayed.answered, 500u);
  EXPECT_EQ(replayed.correct, 123u);
}

TEST_F(FleetTest, JournaledChaosRunMatchesCleanRows) {
  SKIP_IF_TSAN();
  // The full robustness loop: workers journal completed items, chaos kills
  // each shard once, relaunched shards replay their journals mid-shard —
  // and the merged rows still match the single-process reference.
  std::string dir = TempDirFor("fleet_journal_chaos");
  ASSERT_TRUE(FaultRegistry::Global().Configure("fleet.worker:1:sigkill")
                  .ok());
  FleetEvalOptions options;
  options.workers = 2;
  options.journal_dir = dir;
  proc::FleetReport report;
  auto rows = RunFleetDimEval(Specs(), Bench(), options, &report);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(report.crashes, 2u);
  ExpectRowsEqual(ReferenceRows(), rows.ValueOrDie());
  // The per-shard journals exist and carry replayable records.
  auto journal = EvalJournal::Open(dir + "/shard_0.journal").ValueOrDie();
  EXPECT_GT(journal->loaded_records(), 0u);
}

TEST_F(FleetTest, CorruptShardJournalFailsTheRunWithDataLoss) {
  SKIP_IF_TSAN();
  std::string dir = TempDirFor("fleet_journal_corrupt");
  {
    std::ofstream out(dir + "/shard_0.journal");
    out << "choice\tA (sim)\tquantitykind_match\t1\t1\t1\t0\t0\tdeadbeef\n";
  }
  FleetEvalOptions options;
  options.workers = 1;
  options.journal_dir = dir;
  auto rows = RunFleetDimEval(Specs(), Bench(), options);
  ASSERT_FALSE(rows.ok());
  // The worker's kDataLoss crosses the process boundary as a permanent
  // failure: no retry loop, the run fails with the original code.
  EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss);
}

TEST_F(FleetTest, WorkersFromEnvParsesAndClamps) {
  ASSERT_EQ(::unsetenv("DIMQR_WORKERS"), 0);
  EXPECT_EQ(WorkersFromEnv(), 1);
  ASSERT_EQ(::setenv("DIMQR_WORKERS", "4", 1), 0);
  EXPECT_EQ(WorkersFromEnv(), 4);
  ASSERT_EQ(::setenv("DIMQR_WORKERS", "0", 1), 0);
  EXPECT_EQ(WorkersFromEnv(), 1);
  ASSERT_EQ(::setenv("DIMQR_WORKERS", "9999", 1), 0);
  EXPECT_EQ(WorkersFromEnv(), 256);
  ASSERT_EQ(::setenv("DIMQR_WORKERS", "garbage", 1), 0);
  EXPECT_EQ(WorkersFromEnv(), 1);
  ASSERT_EQ(::unsetenv("DIMQR_WORKERS"), 0);
}

TEST_F(FleetTest, RejectsNullModel) {
  std::vector<FleetModelSpec> specs = Specs();
  specs.push_back({nullptr, nullptr});
  FleetEvalOptions options;
  auto rows = RunFleetDimEval(specs, Bench(), options);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dimqr::eval
