#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/fault.h"
#include "core/parallel.h"
#include "eval/harness.h"
#include "eval/journal.h"
#include "eval/table.h"
#include "lm/mock_llm.h"
#include "lm/resilient_model.h"

namespace dimqr::eval {
namespace {

// ------------------------------------------------------------- metrics

TEST(ChoiceMetricsTest, PrecisionRecallF1) {
  ChoiceMetrics m;
  m.total = 100;
  m.answered = 80;
  m.correct = 60;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.60);
  EXPECT_NEAR(m.F1(), 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
}

TEST(ChoiceMetricsTest, DegenerateCases) {
  ChoiceMetrics none;
  EXPECT_DOUBLE_EQ(none.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(none.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(none.F1(), 0.0);
}

TEST(ChoiceMetricsTest, RefusalsDepressF1NotPrecision) {
  // The Table VII phenomenon: refusals leave precision high but F1 low.
  ChoiceMetrics eager{100, 100, 50};
  ChoiceMetrics shy{100, 50, 40};
  EXPECT_GT(shy.Precision(), eager.Precision());
  EXPECT_LT(shy.F1(), shy.Precision());
}

TEST(ExtractionMetricsTest, ExactMatchScoring) {
  ExtractionMetrics m;
  std::vector<lm::ExtractedQuantity> gold = {{"2.06", "meters"},
                                             {"188", "cm"}};
  std::vector<lm::ExtractedQuantity> predicted = {{"2.06", "meters"},
                                                  {"188", "mm"}};
  ScoreExtraction(predicted, gold, m);
  EXPECT_EQ(m.qe.true_positive, 1u);   // one pair fully right
  EXPECT_EQ(m.qe.false_positive, 1u);
  EXPECT_EQ(m.qe.false_negative, 1u);
  EXPECT_EQ(m.ve.true_positive, 2u);   // both values right
  EXPECT_EQ(m.ue.true_positive, 1u);   // one unit right
}

TEST(ExtractionMetricsTest, SpuriousAndMissing) {
  ExtractionMetrics m;
  ScoreExtraction({{"5", "kg"}, {"7", "m"}}, {{"5", "kg"}}, m);
  EXPECT_EQ(m.qe.true_positive, 1u);
  EXPECT_EQ(m.qe.false_positive, 1u);
  EXPECT_EQ(m.qe.false_negative, 0u);
  ExtractionMetrics m2;
  ScoreExtraction({}, {{"5", "kg"}}, m2);
  EXPECT_EQ(m2.qe.false_negative, 1u);
  EXPECT_DOUBLE_EQ(m2.qe.F1(), 0.0);
}

TEST(ExtractionMetricsTest, BareValuesDontCountForUe) {
  ExtractionMetrics m;
  ScoreExtraction({{"7", ""}}, {{"7", ""}}, m);
  EXPECT_EQ(m.qe.true_positive, 1u);
  EXPECT_EQ(m.ve.true_positive, 1u);
  EXPECT_EQ(m.ue.true_positive, 0u);  // no unit part to score
}

// -------------------------------------------------------------- table

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Model", "Acc"});
  table.AddRow({"GPT-4", "78.22"});
  table.AddSeparator();
  table.AddRow({"DimPerc", "80.89"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| Model   |"), std::string::npos);
  EXPECT_NE(out.find("| GPT-4   |"), std::string::npos);
  EXPECT_NE(out.find("| DimPerc |"), std::string::npos);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::Pct(0.4355), "43.55");
  EXPECT_EQ(TablePrinter::Pct(-1.0), "-");
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(5.0, 0), "5");
}

// ------------------------------------------------------------- harness

std::shared_ptr<const kb::DimUnitKB> Kb() {
  static const std::shared_ptr<const kb::DimUnitKB> kKb =
      kb::DimUnitKB::Build().ValueOrDie();
  return kKb;
}

const linking::DimKsAnnotator& Annotator() {
  static const linking::DimKsAnnotator* const kAnnotator = [] {
    auto linker = linking::UnitLinker::Build(Kb()).ValueOrDie();
    return new linking::DimKsAnnotator(linker);
  }();
  return *kAnnotator;
}

const dimeval::DimEvalBenchmark& Bench() {
  static const dimeval::DimEvalBenchmark* const kBench = [] {
    dimeval::BenchmarkOptions options;
    options.train_per_task = 8;
    options.test_per_task = 30;
    options.extraction_corpus_sentences = 260;
    return new dimeval::DimEvalBenchmark(
        dimeval::BuildDimEval(Kb(), Annotator(), options).ValueOrDie());
  }();
  return *kBench;
}

TEST(HarnessTest, PerfectOracleScoresPerfectly) {
  lm::MockLlm oracle("Oracle",
                     {{"quantitykind_match", {1.0, 1.0}},
                      {"comparable_analysis", {1.0, 1.0}},
                      {"dimension_prediction", {1.0, 1.0}},
                      {"dimension_arithmetic", {1.0, 1.0}},
                      {"magnitude_comparison", {1.0, 1.0}},
                      {"unit_conversion", {1.0, 1.0}},
                      {"quantity_extraction", {1.0, 1.0}},
                      {"value_extraction", {1.0, 1.0}},
                      {"unit_extraction", {1.0, 1.0}}});
  DimEvalRow row = EvaluateOnDimEval(oracle, Bench());
  for (const auto& [task, metrics] : row.choice) {
    EXPECT_DOUBLE_EQ(metrics.Precision(), 1.0) << task;
    EXPECT_DOUBLE_EQ(metrics.F1(), 1.0) << task;
  }
  EXPECT_NEAR(row.qe_f1, 1.0, 1e-9);
  EXPECT_NEAR(row.ve_f1, 1.0, 1e-9);
  EXPECT_NEAR(row.ue_f1, 1.0, 1e-9);
}

TEST(HarnessTest, CalibratedMockLandsNearProfile) {
  lm::MockLlm mock("Cal", {{"unit_conversion", {0.6, 0.8}}});
  ChoiceMetrics metrics =
      EvaluateChoiceTask(mock, Bench().TestOf("unit_conversion"));
  EXPECT_EQ(metrics.total, 30u);
  // With only 30 samples the tolerance is loose.
  EXPECT_NEAR(metrics.Precision(), 0.6, 0.25);
  EXPECT_LT(metrics.answered, metrics.total);
}

TEST(HarnessTest, AnnotatorExtractorScoresWell) {
  // DimKS extraction on the Algorithm 1 test sentences: the annotator
  // produced these labels (post-review), so it should score high.
  Extractor extractor = AnnotatorExtractor(Annotator());
  ExtractionMetrics metrics = EvaluateExtraction(
      extractor, Bench().TestOf("quantity_extraction"));
  EXPECT_GT(metrics.qe.F1(), 0.8);
  EXPECT_GT(metrics.ve.F1(), 0.8);
  EXPECT_GT(metrics.ue.F1(), 0.8);
}

TEST(HarnessTest, ModelWithoutExtractionMarkedNotEvaluated) {
  lm::MockLlm no_extraction("NoExtract", {});
  DimEvalRow row = EvaluateOnDimEval(no_extraction, Bench());
  EXPECT_LT(row.qe_f1, 0.0);
}

TEST(HarnessTest, DimEvalRowBitForBitAcrossThreadCounts) {
  // The headline determinism claim: the full Table VII row — choice counts
  // and extraction F1 — is identical at 1, 2, and 8 threads.
  auto row_at = [](int threads) {
    ScopedParallelism scope(threads);
    lm::MockLlm mock("Sweep",
                     {{"quantitykind_match", {0.7, 0.9}},
                      {"unit_conversion", {0.5, 0.8}},
                      {"quantity_extraction", {0.6, 0.9}},
                      {"value_extraction", {0.8, 0.9}},
                      {"unit_extraction", {0.7, 0.9}}});
    Extractor extractor = AnnotatorExtractor(Annotator());
    return EvaluateOnDimEval(mock, Bench(), &extractor);
  };
  DimEvalRow at1 = row_at(1);
  DimEvalRow at2 = row_at(2);
  DimEvalRow at8 = row_at(8);
  auto expect_rows_equal = [](const DimEvalRow& a, const DimEvalRow& b) {
    ASSERT_EQ(a.choice.size(), b.choice.size());
    for (const auto& [task, metrics] : a.choice) {
      const ChoiceMetrics& other = b.choice.at(task);
      EXPECT_EQ(metrics.total, other.total) << task;
      EXPECT_EQ(metrics.answered, other.answered) << task;
      EXPECT_EQ(metrics.correct, other.correct) << task;
    }
    EXPECT_EQ(a.qe_f1, b.qe_f1);
    EXPECT_EQ(a.ve_f1, b.ve_f1);
    EXPECT_EQ(a.ue_f1, b.ue_f1);
  };
  expect_rows_equal(at1, at2);
  expect_rows_equal(at1, at8);
}

// ------------------------------------------------- decline scoring

/// Declines every instance whose seed satisfies `decline`, with the given
/// failure code; answers gold otherwise. Safe for parallel evaluation.
class DecliningModel : public lm::Model {
 public:
  DecliningModel(std::function<bool(std::uint64_t)> decline,
                 StatusCode failure)
      : decline_(std::move(decline)), failure_(failure) {}

  const std::string& name() const override { return name_; }

  lm::ChoiceAnswer AnswerChoice(const lm::ChoiceQuestion& q) override {
    lm::ChoiceAnswer a;
    if (decline_(q.instance_seed)) {
      a.failure = failure_;
      return a;
    }
    a.index = q.gold_index;
    return a;
  }

  std::string AnswerText(const lm::TextQuestion&) override { return ""; }

  bool SupportsParallelEval() const override { return true; }

 private:
  std::function<bool(std::uint64_t)> decline_;
  StatusCode failure_;
  std::string name_ = "Decliner";
};

TEST(HarnessTest, DeclinesExcludedFromPrecisionCountedInRecall) {
  // Half the instances decline (model's own choice, failure = kOk), the
  // rest answer gold: precision stays perfect, recall takes the hit.
  DecliningModel model([](std::uint64_t seed) { return seed % 2 == 0; },
                       StatusCode::kOk);
  ChoiceMetrics m = EvaluateChoiceTask(model, Bench().TestOf("unit_conversion"));
  EXPECT_EQ(m.total, 30u);
  EXPECT_LT(m.answered, m.total);
  EXPECT_GT(m.answered, 0u);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_LT(m.Recall(), 1.0);
  EXPECT_LT(m.F1(), 1.0);
  EXPECT_EQ(m.declined_after_retry, 0u);
  EXPECT_FALSE(m.incomplete);
}

TEST(HarnessTest, RetryableDeclinesScoredLikeDeclinesButCounted) {
  // A retryable failure code marks "the resilience layer gave up": scored
  // as a decline (outside precision, inside recall) and counted apart.
  DecliningModel model([](std::uint64_t seed) { return seed % 3 == 0; },
                       StatusCode::kUnavailable);
  ChoiceMetrics m = EvaluateChoiceTask(model, Bench().TestOf("unit_conversion"));
  EXPECT_EQ(m.total, 30u);
  EXPECT_GT(m.declined_after_retry, 0u);
  EXPECT_EQ(m.declined_after_retry, m.total - m.answered);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_LT(m.Recall(), 1.0);
  EXPECT_FALSE(m.incomplete);
}

TEST(HarnessTest, PermanentFailureMarksTaskIncomplete) {
  DecliningModel model([](std::uint64_t seed) { return seed % 7 == 0; },
                       StatusCode::kInternal);
  ChoiceMetrics m = EvaluateChoiceTask(model, Bench().TestOf("unit_conversion"));
  EXPECT_TRUE(m.incomplete);
  // Incomplete tasks are excluded from category aggregation.
  DimEvalRow row;
  row.model = "x";
  row.choice["unit_conversion"] = m;
  EXPECT_TRUE(AggregateByCategory(row).empty());
}

// ------------------------------------------------------ chaos suite

/// Clears fault configuration around each test: the registry is global and
/// the other suites expect a clean run.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Clear(); }
  void TearDown() override { FaultRegistry::Global().Clear(); }

  static DimEvalRow SweepRow(int threads) {
    ScopedParallelism scope(threads);
    lm::MockLlm mock("Sweep",
                     {{"quantitykind_match", {0.7, 0.9}},
                      {"unit_conversion", {0.5, 0.8}},
                      {"quantity_extraction", {0.6, 0.9}},
                      {"value_extraction", {0.8, 0.9}},
                      {"unit_extraction", {0.7, 0.9}}});
    return EvaluateOnDimEval(mock, Bench());
  }

  static void ExpectRowsEqual(const DimEvalRow& a, const DimEvalRow& b) {
    ASSERT_EQ(a.choice.size(), b.choice.size());
    for (const auto& [task, metrics] : a.choice) {
      const ChoiceMetrics& other = b.choice.at(task);
      EXPECT_EQ(metrics.total, other.total) << task;
      EXPECT_EQ(metrics.answered, other.answered) << task;
      EXPECT_EQ(metrics.correct, other.correct) << task;
      EXPECT_EQ(metrics.declined_after_retry, other.declined_after_retry)
          << task;
      EXPECT_EQ(metrics.incomplete, other.incomplete) << task;
    }
    EXPECT_EQ(a.qe_f1, b.qe_f1);
    EXPECT_EQ(a.ve_f1, b.ve_f1);
    EXPECT_EQ(a.ue_f1, b.ue_f1);
    EXPECT_EQ(a.extraction_incomplete, b.extraction_incomplete);
  }
};

TEST_F(ChaosTest, TransientFaultsLeaveRowByteIdenticalAtAnyThreadCount) {
  // The headline chaos property: 20% transient faults + retries produce the
  // exact row a clean run produces, at every thread count — every fault
  // recovers within the retry budget, and recovery is a pure function of
  // the instance.
  DimEvalRow clean = SweepRow(1);
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:0.2:transient,"
                             "lm.extract_quantities:0.2:transient")
                  .ok());
  DimEvalRow faulted1 = SweepRow(1);
  DimEvalRow faulted2 = SweepRow(2);
  DimEvalRow faulted8 = SweepRow(8);
  ExpectRowsEqual(clean, faulted1);
  ExpectRowsEqual(clean, faulted2);
  ExpectRowsEqual(clean, faulted8);
}

TEST_F(ChaosTest, PermanentFaultsMarkTasksIncompleteDeterministically) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:0.1:permanent")
                  .ok());
  DimEvalRow at1 = SweepRow(1);
  DimEvalRow at8 = SweepRow(8);
  int incomplete = 0;
  for (const auto& [task, metrics] : at1.choice) {
    // Which tasks are incomplete is deterministic (per-instance fault
    // decisions are), even though partial counts under cancellation vary.
    EXPECT_EQ(metrics.incomplete, at8.choice.at(task).incomplete) << task;
    if (metrics.incomplete) ++incomplete;
  }
  // 10% of 30 instances per task: overwhelmingly likely every task has at
  // least one affected instance (checked: this seed configuration does).
  EXPECT_GT(incomplete, 0);
}

TEST_F(ChaosTest, EverythingFailingStillTerminatesWithIncompleteRow) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:1:permanent,"
                             "lm.extract_quantities:1:permanent")
                  .ok());
  DimEvalRow row = SweepRow(4);
  for (const auto& [task, metrics] : row.choice) {
    EXPECT_TRUE(metrics.incomplete) << task;
  }
  EXPECT_TRUE(row.extraction_incomplete);
  EXPECT_LT(row.qe_f1, 0.0);
  EXPECT_TRUE(AggregateByCategory(row).empty());
}

// --------------------------------------------------------- journal

/// Counts how often the wrapped model is actually consulted, to prove
/// journal replay skips evaluation entirely.
class CountingModel : public lm::Model {
 public:
  explicit CountingModel(lm::Model& inner) : inner_(inner) {}
  const std::string& name() const override { return inner_.name(); }
  lm::ChoiceAnswer AnswerChoice(const lm::ChoiceQuestion& q) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return inner_.AnswerChoice(q);
  }
  std::string AnswerText(const lm::TextQuestion& q) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return inner_.AnswerText(q);
  }
  std::vector<lm::ExtractedQuantity> ExtractQuantities(
      const lm::ExtractionQuestion& q) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return inner_.ExtractQuantities(q);
  }
  bool SupportsParallelEval() const override {
    return inner_.SupportsParallelEval();
  }
  std::atomic<int> calls{0};

 private:
  lm::Model& inner_;
};

std::string TempJournalPath(const char* name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST_F(ChaosTest, JournalRoundTripsRecordsAcrossReopen) {
  std::string path = TempJournalPath("journal_roundtrip.tsv");
  ChoiceMetrics m;
  m.total = 30;
  m.answered = 25;
  m.correct = 20;
  m.declined_after_retry = 3;
  ExtractionMetrics e;
  e.qe = {10, 2, 3};
  e.ve = {11, 1, 2};
  e.ue = {9, 3, 4};
  {
    auto journal = EvalJournal::Open(path).ValueOrDie();
    ASSERT_TRUE(journal->RecordChoice("M (sim)", "unit_conversion", m).ok());
    ASSERT_TRUE(
        journal->RecordExtraction("M (sim)", "quantity_extraction", e).ok());
  }
  auto reopened = EvalJournal::Open(path).ValueOrDie();
  EXPECT_EQ(reopened->loaded_records(), 2u);
  ChoiceMetrics m2;
  ASSERT_TRUE(reopened->LookupChoice("M (sim)", "unit_conversion", &m2));
  EXPECT_EQ(m2.total, m.total);
  EXPECT_EQ(m2.answered, m.answered);
  EXPECT_EQ(m2.correct, m.correct);
  EXPECT_EQ(m2.declined_after_retry, m.declined_after_retry);
  ExtractionMetrics e2;
  ASSERT_TRUE(
      reopened->LookupExtraction("M (sim)", "quantity_extraction", &e2));
  EXPECT_EQ(e2.qe.true_positive, e.qe.true_positive);
  EXPECT_EQ(e2.ue.false_negative, e.ue.false_negative);
  EXPECT_FALSE(reopened->LookupChoice("Other", "unit_conversion", &m2));
  // Incomplete tasks are rejected outright: their counts are diagnostics.
  ChoiceMetrics incomplete;
  incomplete.incomplete = true;
  Status refused = reopened->RecordChoice("M (sim)", "inc", incomplete);
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
}

TEST_F(ChaosTest, JournalIgnoresTornTrailingRecord) {
  std::string path = TempJournalPath("journal_torn.tsv");
  {
    auto journal = EvalJournal::Open(path).ValueOrDie();
    ChoiceMetrics m;
    m.total = 30;
    m.answered = 30;
    m.correct = 15;
    ASSERT_TRUE(journal->RecordChoice("M", "unit_conversion", m).ok());
  }
  {
    // Simulate a kill mid-write: a truncated record with no newline.
    std::ofstream torn(path, std::ios::app);
    torn << "choice\tM\tmagnitude_comparison\t30\t2";
  }
  auto reopened = EvalJournal::Open(path).ValueOrDie();
  EXPECT_EQ(reopened->loaded_records(), 1u);
  ChoiceMetrics m;
  EXPECT_TRUE(reopened->LookupChoice("M", "unit_conversion", &m));
  EXPECT_FALSE(reopened->LookupChoice("M", "magnitude_comparison", &m));
}

TEST_F(ChaosTest, JournalRejectsFlippedByteWithDataLoss) {
  // The CRC regression: flip one payload byte of a structurally valid
  // record (same length, still parseable) and Open must refuse the file
  // with kDataLoss instead of replaying damaged counts into a table.
  std::string path = TempJournalPath("journal_flipped.tsv");
  {
    auto journal = EvalJournal::Open(path).ValueOrDie();
    ChoiceMetrics m;
    m.total = 30;
    m.answered = 30;
    m.correct = 15;
    ASSERT_TRUE(journal->RecordChoice("M", "unit_conversion", m).ok());
  }
  std::string content;
  {
    std::ifstream in(path);
    std::getline(in, content);
  }
  // Same-length substitution inside the task field: the line still parses,
  // only its bytes no longer match the stored CRC.
  std::size_t at = content.find("unit_conversion");
  ASSERT_NE(at, std::string::npos);
  content[at] = 'x';
  {
    std::ofstream out(path, std::ios::trunc);
    out << content << "\n";
  }
  auto reopened = EvalJournal::Open(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(ChaosTest, JournalRejectsTornRecordFollowedByValidOnes) {
  // A torn record is only legal as the *final* line (kill mid-write); one
  // in the middle means the file was damaged after the fact.
  std::string path = TempJournalPath("journal_torn_middle.tsv");
  {
    auto journal = EvalJournal::Open(path).ValueOrDie();
    ChoiceMetrics m;
    m.total = 30;
    m.answered = 30;
    m.correct = 15;
    ASSERT_TRUE(journal->RecordChoice("M", "unit_conversion", m).ok());
    ASSERT_TRUE(journal->RecordChoice("M", "magnitude_comparison", m).ok());
  }
  std::string line1, line2;
  {
    std::ifstream in(path);
    std::getline(in, line1);
    std::getline(in, line2);
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << line1 << "\n"
        << "choice\tM\tdimension_prediction\t30\t2\n"
        << line2 << "\n";
  }
  auto reopened = EvalJournal::Open(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(ChaosTest, JournalResumeSkipsModelAndReproducesRow) {
  std::string path = TempJournalPath("journal_resume.tsv");
  lm::MockLlm mock("Journaled",
                   {{"quantitykind_match", {0.7, 0.9}},
                    {"unit_conversion", {0.5, 0.8}},
                    {"quantity_extraction", {0.6, 0.9}},
                    {"value_extraction", {0.8, 0.9}},
                    {"unit_extraction", {0.7, 0.9}}});
  DimEvalRow first;
  {
    auto journal = EvalJournal::Open(path).ValueOrDie();
    first = EvaluateOnDimEval(mock, Bench(), nullptr, journal.get());
  }
  // Resume against the same file: the model must never be consulted, and
  // the row must replay byte-identically from journaled integer counts.
  CountingModel counted(mock);
  auto journal = EvalJournal::Open(path).ValueOrDie();
  EXPECT_EQ(journal->loaded_records(), 7u);  // 6 choice tasks + extraction.
  DimEvalRow resumed = EvaluateOnDimEval(counted, Bench(), nullptr,
                                         journal.get());
  EXPECT_EQ(counted.calls.load(), 0);
  ExpectRowsEqual(first, resumed);
}

TEST_F(ChaosTest, JournalResumeAfterPartialRunCompletesTheRest) {
  std::string path = TempJournalPath("journal_partial.tsv");
  lm::MockLlm mock("Partial", {{"unit_conversion", {0.5, 0.8}}});
  // A full uninterrupted run, for reference.
  DimEvalRow reference = EvaluateOnDimEval(mock, Bench());
  // Simulate a run killed after two tasks: journal only those.
  {
    auto journal = EvalJournal::Open(path).ValueOrDie();
    ASSERT_TRUE(journal
                    ->RecordChoice("Partial", "quantitykind_match",
                                   reference.choice.at("quantitykind_match"))
                    .ok());
    ASSERT_TRUE(journal
                    ->RecordChoice("Partial", "unit_conversion",
                                   reference.choice.at("unit_conversion"))
                    .ok());
  }
  auto journal = EvalJournal::Open(path).ValueOrDie();
  DimEvalRow resumed =
      EvaluateOnDimEval(mock, Bench(), nullptr, journal.get());
  ExpectRowsEqual(reference, resumed);
  // The resumed run journaled the remaining tasks: a second resume now
  // replays everything.
  auto final_journal = EvalJournal::Open(path).ValueOrDie();
  EXPECT_EQ(final_journal->loaded_records(), 7u);
}

TEST_F(ChaosTest, IncompleteTasksAreRetriedOnResume) {
  std::string path = TempJournalPath("journal_incomplete.tsv");
  lm::MockLlm mock("Healing", {{"unit_conversion", {0.5, 0.8}}});
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:1:permanent")
                  .ok());
  {
    auto journal = EvalJournal::Open(path).ValueOrDie();
    DimEvalRow row = EvaluateOnDimEval(mock, Bench(), nullptr, journal.get());
    EXPECT_TRUE(row.choice.at("unit_conversion").incomplete);
  }
  // The six incomplete choice tasks were not journaled; only extraction
  // (whose fault point stayed clean) completed and checkpointed.
  EXPECT_EQ(EvalJournal::Open(path).ValueOrDie()->loaded_records(), 1u);
  // ...so once the backend heals, a resume re-evaluates them for real.
  FaultRegistry::Global().Clear();
  auto journal = EvalJournal::Open(path).ValueOrDie();
  DimEvalRow healed = EvaluateOnDimEval(mock, Bench(), nullptr, journal.get());
  EXPECT_FALSE(healed.choice.at("unit_conversion").incomplete);
  ExpectRowsEqual(healed, EvaluateOnDimEval(mock, Bench()));
}

TEST(HarnessTest, CategoryAggregation) {
  lm::MockLlm skewed("Skewed",
                     {{"quantitykind_match", {0.9, 1.0}},
                      {"comparable_analysis", {0.2, 1.0}},
                      {"dimension_prediction", {0.2, 1.0}},
                      {"dimension_arithmetic", {0.2, 1.0}},
                      {"magnitude_comparison", {0.8, 1.0}},
                      {"unit_conversion", {0.8, 1.0}}});
  DimEvalRow row = EvaluateOnDimEval(skewed, Bench());
  auto categories = AggregateByCategory(row);
  EXPECT_GT(categories[dimeval::TaskCategory::kScalePerception].precision,
            categories[dimeval::TaskCategory::kDimensionPerception].precision);
  EXPECT_EQ(categories.size(), 3u);
}

}  // namespace
}  // namespace dimqr::eval
