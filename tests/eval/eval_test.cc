#include <gtest/gtest.h>

#include <sstream>

#include "core/parallel.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "lm/mock_llm.h"

namespace dimqr::eval {
namespace {

// ------------------------------------------------------------- metrics

TEST(ChoiceMetricsTest, PrecisionRecallF1) {
  ChoiceMetrics m;
  m.total = 100;
  m.answered = 80;
  m.correct = 60;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.60);
  EXPECT_NEAR(m.F1(), 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
}

TEST(ChoiceMetricsTest, DegenerateCases) {
  ChoiceMetrics none;
  EXPECT_DOUBLE_EQ(none.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(none.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(none.F1(), 0.0);
}

TEST(ChoiceMetricsTest, RefusalsDepressF1NotPrecision) {
  // The Table VII phenomenon: refusals leave precision high but F1 low.
  ChoiceMetrics eager{100, 100, 50};
  ChoiceMetrics shy{100, 50, 40};
  EXPECT_GT(shy.Precision(), eager.Precision());
  EXPECT_LT(shy.F1(), shy.Precision());
}

TEST(ExtractionMetricsTest, ExactMatchScoring) {
  ExtractionMetrics m;
  std::vector<lm::ExtractedQuantity> gold = {{"2.06", "meters"},
                                             {"188", "cm"}};
  std::vector<lm::ExtractedQuantity> predicted = {{"2.06", "meters"},
                                                  {"188", "mm"}};
  ScoreExtraction(predicted, gold, m);
  EXPECT_EQ(m.qe.true_positive, 1u);   // one pair fully right
  EXPECT_EQ(m.qe.false_positive, 1u);
  EXPECT_EQ(m.qe.false_negative, 1u);
  EXPECT_EQ(m.ve.true_positive, 2u);   // both values right
  EXPECT_EQ(m.ue.true_positive, 1u);   // one unit right
}

TEST(ExtractionMetricsTest, SpuriousAndMissing) {
  ExtractionMetrics m;
  ScoreExtraction({{"5", "kg"}, {"7", "m"}}, {{"5", "kg"}}, m);
  EXPECT_EQ(m.qe.true_positive, 1u);
  EXPECT_EQ(m.qe.false_positive, 1u);
  EXPECT_EQ(m.qe.false_negative, 0u);
  ExtractionMetrics m2;
  ScoreExtraction({}, {{"5", "kg"}}, m2);
  EXPECT_EQ(m2.qe.false_negative, 1u);
  EXPECT_DOUBLE_EQ(m2.qe.F1(), 0.0);
}

TEST(ExtractionMetricsTest, BareValuesDontCountForUe) {
  ExtractionMetrics m;
  ScoreExtraction({{"7", ""}}, {{"7", ""}}, m);
  EXPECT_EQ(m.qe.true_positive, 1u);
  EXPECT_EQ(m.ve.true_positive, 1u);
  EXPECT_EQ(m.ue.true_positive, 0u);  // no unit part to score
}

// -------------------------------------------------------------- table

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Model", "Acc"});
  table.AddRow({"GPT-4", "78.22"});
  table.AddSeparator();
  table.AddRow({"DimPerc", "80.89"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| Model   |"), std::string::npos);
  EXPECT_NE(out.find("| GPT-4   |"), std::string::npos);
  EXPECT_NE(out.find("| DimPerc |"), std::string::npos);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::Pct(0.4355), "43.55");
  EXPECT_EQ(TablePrinter::Pct(-1.0), "-");
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(5.0, 0), "5");
}

// ------------------------------------------------------------- harness

std::shared_ptr<const kb::DimUnitKB> Kb() {
  static const std::shared_ptr<const kb::DimUnitKB> kKb =
      kb::DimUnitKB::Build().ValueOrDie();
  return kKb;
}

const linking::DimKsAnnotator& Annotator() {
  static const linking::DimKsAnnotator* const kAnnotator = [] {
    auto linker = linking::UnitLinker::Build(Kb()).ValueOrDie();
    return new linking::DimKsAnnotator(linker);
  }();
  return *kAnnotator;
}

const dimeval::DimEvalBenchmark& Bench() {
  static const dimeval::DimEvalBenchmark* const kBench = [] {
    dimeval::BenchmarkOptions options;
    options.train_per_task = 8;
    options.test_per_task = 30;
    options.extraction_corpus_sentences = 260;
    return new dimeval::DimEvalBenchmark(
        dimeval::BuildDimEval(Kb(), Annotator(), options).ValueOrDie());
  }();
  return *kBench;
}

TEST(HarnessTest, PerfectOracleScoresPerfectly) {
  lm::MockLlm oracle("Oracle",
                     {{"quantitykind_match", {1.0, 1.0}},
                      {"comparable_analysis", {1.0, 1.0}},
                      {"dimension_prediction", {1.0, 1.0}},
                      {"dimension_arithmetic", {1.0, 1.0}},
                      {"magnitude_comparison", {1.0, 1.0}},
                      {"unit_conversion", {1.0, 1.0}},
                      {"quantity_extraction", {1.0, 1.0}},
                      {"value_extraction", {1.0, 1.0}},
                      {"unit_extraction", {1.0, 1.0}}});
  DimEvalRow row = EvaluateOnDimEval(oracle, Bench());
  for (const auto& [task, metrics] : row.choice) {
    EXPECT_DOUBLE_EQ(metrics.Precision(), 1.0) << task;
    EXPECT_DOUBLE_EQ(metrics.F1(), 1.0) << task;
  }
  EXPECT_NEAR(row.qe_f1, 1.0, 1e-9);
  EXPECT_NEAR(row.ve_f1, 1.0, 1e-9);
  EXPECT_NEAR(row.ue_f1, 1.0, 1e-9);
}

TEST(HarnessTest, CalibratedMockLandsNearProfile) {
  lm::MockLlm mock("Cal", {{"unit_conversion", {0.6, 0.8}}});
  ChoiceMetrics metrics =
      EvaluateChoiceTask(mock, Bench().TestOf("unit_conversion"));
  EXPECT_EQ(metrics.total, 30u);
  // With only 30 samples the tolerance is loose.
  EXPECT_NEAR(metrics.Precision(), 0.6, 0.25);
  EXPECT_LT(metrics.answered, metrics.total);
}

TEST(HarnessTest, AnnotatorExtractorScoresWell) {
  // DimKS extraction on the Algorithm 1 test sentences: the annotator
  // produced these labels (post-review), so it should score high.
  Extractor extractor = AnnotatorExtractor(Annotator());
  ExtractionMetrics metrics = EvaluateExtraction(
      extractor, Bench().TestOf("quantity_extraction"));
  EXPECT_GT(metrics.qe.F1(), 0.8);
  EXPECT_GT(metrics.ve.F1(), 0.8);
  EXPECT_GT(metrics.ue.F1(), 0.8);
}

TEST(HarnessTest, ModelWithoutExtractionMarkedNotEvaluated) {
  lm::MockLlm no_extraction("NoExtract", {});
  DimEvalRow row = EvaluateOnDimEval(no_extraction, Bench());
  EXPECT_LT(row.qe_f1, 0.0);
}

TEST(HarnessTest, DimEvalRowBitForBitAcrossThreadCounts) {
  // The headline determinism claim: the full Table VII row — choice counts
  // and extraction F1 — is identical at 1, 2, and 8 threads.
  auto row_at = [](int threads) {
    ScopedParallelism scope(threads);
    lm::MockLlm mock("Sweep",
                     {{"quantitykind_match", {0.7, 0.9}},
                      {"unit_conversion", {0.5, 0.8}},
                      {"quantity_extraction", {0.6, 0.9}},
                      {"value_extraction", {0.8, 0.9}},
                      {"unit_extraction", {0.7, 0.9}}});
    Extractor extractor = AnnotatorExtractor(Annotator());
    return EvaluateOnDimEval(mock, Bench(), &extractor);
  };
  DimEvalRow at1 = row_at(1);
  DimEvalRow at2 = row_at(2);
  DimEvalRow at8 = row_at(8);
  auto expect_rows_equal = [](const DimEvalRow& a, const DimEvalRow& b) {
    ASSERT_EQ(a.choice.size(), b.choice.size());
    for (const auto& [task, metrics] : a.choice) {
      const ChoiceMetrics& other = b.choice.at(task);
      EXPECT_EQ(metrics.total, other.total) << task;
      EXPECT_EQ(metrics.answered, other.answered) << task;
      EXPECT_EQ(metrics.correct, other.correct) << task;
    }
    EXPECT_EQ(a.qe_f1, b.qe_f1);
    EXPECT_EQ(a.ve_f1, b.ve_f1);
    EXPECT_EQ(a.ue_f1, b.ue_f1);
  };
  expect_rows_equal(at1, at2);
  expect_rows_equal(at1, at8);
}

TEST(HarnessTest, CategoryAggregation) {
  lm::MockLlm skewed("Skewed",
                     {{"quantitykind_match", {0.9, 1.0}},
                      {"comparable_analysis", {0.2, 1.0}},
                      {"dimension_prediction", {0.2, 1.0}},
                      {"dimension_arithmetic", {0.2, 1.0}},
                      {"magnitude_comparison", {0.8, 1.0}},
                      {"unit_conversion", {0.8, 1.0}}});
  DimEvalRow row = EvaluateOnDimEval(skewed, Bench());
  auto categories = AggregateByCategory(row);
  EXPECT_GT(categories[dimeval::TaskCategory::kScalePerception].precision,
            categories[dimeval::TaskCategory::kDimensionPerception].precision);
  EXPECT_EQ(categories.size(), 3u);
}

}  // namespace
}  // namespace dimqr::eval
