#include "lm/resilient_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/fault.h"

namespace dimqr::lm {
namespace {

/// A perfectly reliable inner model: always answers gold, counts calls.
/// Everything that goes wrong in these tests is injected by the fault
/// registry between the wrapper and this model.
class GoldModel : public Model {
 public:
  const std::string& name() const override { return name_; }

  ChoiceAnswer AnswerChoice(const ChoiceQuestion& question) override {
    ++choice_calls;
    ChoiceAnswer answer;
    answer.index = question.gold_index;
    return answer;
  }

  std::string AnswerText(const TextQuestion& question) override {
    ++text_calls;
    return question.gold;
  }

  std::vector<ExtractedQuantity> ExtractQuantities(
      const ExtractionQuestion& question) override {
    ++extract_calls;
    return question.gold;
  }

  bool SupportsParallelEval() const override { return true; }

  int choice_calls = 0;
  int text_calls = 0;
  int extract_calls = 0;

 private:
  std::string name_ = "Gold";
};

ChoiceQuestion MakeQuestion(std::uint64_t seed) {
  ChoiceQuestion q;
  q.task = "unit_conversion";
  q.prompt = "convert";
  q.choices = {"a", "b", "c", "d"};
  q.gold_index = 2;
  q.instance_seed = seed;
  return q;
}

class ResilientModelTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Clear(); }
  void TearDown() override { FaultRegistry::Global().Clear(); }
};

TEST_F(ResilientModelTest, PassesThroughWhenNoFaultsConfigured) {
  GoldModel gold;
  ResilientModel model(gold);
  EXPECT_EQ(model.name(), "Gold");
  EXPECT_TRUE(model.SupportsParallelEval());
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ChoiceAnswer answer = model.AnswerChoice(MakeQuestion(seed));
    EXPECT_EQ(answer.index, 2);
    EXPECT_EQ(answer.failure, StatusCode::kOk);
  }
  EXPECT_EQ(gold.choice_calls, 10);
  EXPECT_EQ(model.stats().calls.load(), 10u);
  EXPECT_EQ(model.stats().attempts.load(), 10u);
  EXPECT_EQ(model.stats().retries.load(), 0u);
  EXPECT_EQ(model.stats().declines.load(), 0u);
}

TEST_F(ResilientModelTest, TransientFaultsRecoverWithinRetryBudget) {
  // Every instance affected; the first two attempts fail, the third works.
  // With the default budget of 4 attempts, every call must succeed.
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:1:transient")
                  .ok());
  GoldModel gold;
  ResilientModel model(gold);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ChoiceAnswer answer = model.AnswerChoice(MakeQuestion(seed));
    EXPECT_EQ(answer.index, 2) << seed;
    EXPECT_EQ(answer.failure, StatusCode::kOk) << seed;
  }
  EXPECT_EQ(gold.choice_calls, 10);
  // Two failed attempts + one success per call.
  EXPECT_EQ(model.stats().attempts.load(), 30u);
  EXPECT_EQ(model.stats().retries.load(), 20u);
  EXPECT_EQ(model.stats().declines.load(), 0u);
  EXPECT_GT(model.stats().backoff_ticks.load(), 0u);
}

TEST_F(ResilientModelTest, ExhaustedRetriesDegradeToDecline) {
  // after_n = 10 > max_attempts = 4: the budget can never outlast the
  // fault, so the wrapper declines with a retryable failure code.
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:1:transient:10")
                  .ok());
  GoldModel gold;
  ResilientModel model(gold);
  ChoiceAnswer answer = model.AnswerChoice(MakeQuestion(1));
  EXPECT_EQ(answer.index, -1);
  EXPECT_FALSE(answer.answered());
  EXPECT_EQ(answer.failure, StatusCode::kUnavailable);
  EXPECT_EQ(gold.choice_calls, 0);
  EXPECT_EQ(model.stats().attempts.load(), 4u);
  EXPECT_EQ(model.stats().declines.load(), 1u);
}

TEST_F(ResilientModelTest, PermanentFaultFailsWithoutRetry) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:1:permanent")
                  .ok());
  GoldModel gold;
  ResilientModel model(gold);
  ChoiceAnswer answer = model.AnswerChoice(MakeQuestion(1));
  EXPECT_EQ(answer.index, -1);
  EXPECT_EQ(answer.failure, StatusCode::kInternal);
  EXPECT_FALSE(IsRetryable(answer.failure));
  EXPECT_EQ(gold.choice_calls, 0);
  EXPECT_EQ(model.stats().attempts.load(), 1u);
  EXPECT_EQ(model.stats().retries.load(), 0u);
  EXPECT_EQ(model.stats().permanent_failures.load(), 1u);
}

TEST_F(ResilientModelTest, GarbledAnswersAreDeterministic) {
  ASSERT_TRUE(
      FaultRegistry::Global().Configure("lm.answer_choice:1:garbled").ok());
  GoldModel gold;
  ResilientModel model(gold);
  ChoiceAnswer first = model.AnswerChoice(MakeQuestion(5));
  ChoiceAnswer again = model.AnswerChoice(MakeQuestion(5));
  EXPECT_TRUE(first.answered());
  EXPECT_EQ(first.index, again.index);
  EXPECT_EQ(model.stats().garbled.load(), 2u);
  // The garble replaces the parsed answer *after* the inner model ran.
  EXPECT_EQ(gold.choice_calls, 2);
}

TEST_F(ResilientModelTest, LatencyWithinDeadlineSucceeds) {
  ASSERT_TRUE(
      FaultRegistry::Global().Configure("lm.answer_choice:1:latency:3").ok());
  GoldModel gold;
  ResilientModel model(gold);  // Default policy: no deadline.
  ChoiceAnswer answer = model.AnswerChoice(MakeQuestion(1));
  EXPECT_EQ(answer.index, 2);
  EXPECT_GT(model.stats().latency_ticks.load(), 0u);
  EXPECT_EQ(model.stats().deadline_exceeded.load(), 0u);
}

TEST_F(ResilientModelTest, LatencyPastDeadlineIsRetryableFailure) {
  // Ticks are always >= 1, so a 1-tick deadline times out every attempt.
  ASSERT_TRUE(
      FaultRegistry::Global().Configure("lm.answer_choice:1:latency:4").ok());
  RetryPolicy retry;
  retry.deadline_ticks = 1;
  retry.max_attempts = 3;
  GoldModel gold;
  ResilientModel model(gold, retry);
  ChoiceAnswer answer = model.AnswerChoice(MakeQuestion(1));
  EXPECT_EQ(answer.index, -1);
  EXPECT_EQ(answer.failure, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsRetryable(answer.failure));
  EXPECT_EQ(model.stats().deadline_exceeded.load(), 3u);
  EXPECT_EQ(model.stats().declines.load(), 1u);
  EXPECT_EQ(gold.choice_calls, 0);
}

TEST_F(ResilientModelTest, BreakerShortCircuitsAfterConsecutiveFailures) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:1:permanent")
                  .ok());
  CircuitBreakerPolicy breaker;
  breaker.trip_after = 3;
  GoldModel gold;
  ResilientModel model(gold, RetryPolicy{}, breaker);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    ChoiceAnswer answer = model.AnswerChoice(MakeQuestion(seed));
    EXPECT_EQ(answer.failure, StatusCode::kInternal) << seed;
  }
  // Calls 1-3 reach the (faulted) transport; calls 4-5 are rejected by the
  // open breaker without an attempt.
  EXPECT_EQ(model.stats().permanent_failures.load(), 3u);
  EXPECT_EQ(model.stats().short_circuits.load(), 2u);
  EXPECT_EQ(model.stats().attempts.load(), 3u);
}

TEST_F(ResilientModelTest, BreakerHalfOpenProbeClosesAfterRecovery) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:1:permanent")
                  .ok());
  CircuitBreakerPolicy breaker;
  breaker.trip_after = 2;
  breaker.cooldown_ticks = 10;
  GoldModel gold;
  ResilientModel model(gold, RetryPolicy{}, breaker);

  // Two permanent failures trip the breaker (opened_at = tick 2)...
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    EXPECT_EQ(model.AnswerChoice(MakeQuestion(seed)).failure,
              StatusCode::kInternal);
  }
  // ...so the next call inside the cooldown is short-circuited.
  EXPECT_EQ(model.AnswerChoice(MakeQuestion(2)).failure,
            StatusCode::kInternal);
  EXPECT_EQ(model.stats().short_circuits.load(), 1u);
  EXPECT_EQ(model.stats().half_open_probes.load(), 0u);

  // The backend recovers while the breaker waits out its cooldown.
  FaultRegistry::Global().Clear();
  model.AdvanceClock(breaker.cooldown_ticks);

  // First call after the cooldown is the half-open probe; it succeeds and
  // closes the breaker, so the task answers normally again.
  ChoiceAnswer probe = model.AnswerChoice(MakeQuestion(3));
  EXPECT_EQ(probe.failure, StatusCode::kOk);
  EXPECT_EQ(probe.index, 2);
  EXPECT_EQ(model.stats().half_open_probes.load(), 1u);
  ChoiceAnswer after = model.AnswerChoice(MakeQuestion(4));
  EXPECT_EQ(after.failure, StatusCode::kOk);
  EXPECT_EQ(model.stats().short_circuits.load(), 1u);  // No new rejections.
  EXPECT_EQ(gold.choice_calls, 2);
}

TEST_F(ResilientModelTest, BreakerFailedProbeReopensAndRestartsCooldown) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:1:permanent")
                  .ok());
  CircuitBreakerPolicy breaker;
  breaker.trip_after = 1;
  breaker.cooldown_ticks = 5;
  GoldModel gold;
  ResilientModel model(gold, RetryPolicy{}, breaker);

  // Trip (opened_at = 1), then confirm the open breaker rejects.
  EXPECT_EQ(model.AnswerChoice(MakeQuestion(0)).failure,
            StatusCode::kInternal);
  EXPECT_EQ(model.AnswerChoice(MakeQuestion(1)).failure,
            StatusCode::kInternal);
  EXPECT_EQ(model.stats().short_circuits.load(), 1u);

  // Cooldown elapses but the backend is still down: the probe fails and
  // the breaker re-opens, restarting the cooldown from the probe's tick.
  model.AdvanceClock(breaker.cooldown_ticks);
  EXPECT_EQ(model.AnswerChoice(MakeQuestion(2)).failure,
            StatusCode::kInternal);
  EXPECT_EQ(model.stats().half_open_probes.load(), 1u);
  EXPECT_EQ(model.stats().permanent_failures.load(), 2u);
  EXPECT_EQ(model.AnswerChoice(MakeQuestion(3)).failure,
            StatusCode::kInternal);
  EXPECT_EQ(model.stats().short_circuits.load(), 2u);

  // Second cooldown against a recovered backend: probe succeeds, closes.
  FaultRegistry::Global().Clear();
  model.AdvanceClock(breaker.cooldown_ticks);
  EXPECT_EQ(model.AnswerChoice(MakeQuestion(4)).failure, StatusCode::kOk);
  EXPECT_EQ(model.stats().half_open_probes.load(), 2u);
  EXPECT_EQ(model.AnswerChoice(MakeQuestion(5)).failure, StatusCode::kOk);
  EXPECT_EQ(gold.choice_calls, 2);
  EXPECT_GT(model.clock_ticks(), 2 * breaker.cooldown_ticks);
}

TEST_F(ResilientModelTest, BreakerResetsOnSuccess) {
  // 20% of instances fail permanently: successes between failures must keep
  // the consecutive-failure count below the trip threshold.
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_choice:0.2:permanent")
                  .ok());
  CircuitBreakerPolicy breaker;
  breaker.trip_after = 1000;  // Effectively never trips...
  GoldModel gold;
  ResilientModel model(gold, RetryPolicy{}, breaker);
  int failed = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    if (!model.AnswerChoice(MakeQuestion(seed)).answered()) ++failed;
  }
  EXPECT_GT(failed, 0);
  EXPECT_LT(failed, 100);
  // ...so no call may be short-circuited.
  EXPECT_EQ(model.stats().short_circuits.load(), 0u);
}

TEST_F(ResilientModelTest, TextAndExtractionDegradeGracefully) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .Configure("lm.answer_text:1:permanent,"
                             "lm.extract_quantities:1:transient:10")
                  .ok());
  GoldModel gold;
  ResilientModel model(gold);
  TextQuestion text;
  text.task = "n_math23k";
  text.gold = "x=1+2";
  text.instance_seed = 3;
  EXPECT_EQ(model.AnswerText(text), "");
  ExtractionQuestion extraction;
  extraction.gold = {{"3", "km"}};
  extraction.instance_seed = 4;
  EXPECT_TRUE(model.ExtractQuantities(extraction).empty());
  EXPECT_EQ(gold.text_calls, 0);
  EXPECT_EQ(gold.extract_calls, 0);
  EXPECT_FALSE(model.StatsSummary().empty());
}

TEST_F(ResilientModelTest, GarbledTextIsDeterministicShuffle) {
  ASSERT_TRUE(
      FaultRegistry::Global().Configure("lm.answer_text:1:garbled").ok());
  GoldModel gold;
  ResilientModel model(gold);
  TextQuestion text;
  text.task = "n_math23k";
  text.gold = "x=12+34";
  text.instance_seed = 9;
  std::string first = model.AnswerText(text);
  std::string again = model.AnswerText(text);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first.size(), text.gold.size());
  // Same multiset of characters, permuted.
  std::string sorted_first = first, sorted_gold = text.gold;
  std::sort(sorted_first.begin(), sorted_first.end());
  std::sort(sorted_gold.begin(), sorted_gold.end());
  EXPECT_EQ(sorted_first, sorted_gold);
}

}  // namespace
}  // namespace dimqr::lm
