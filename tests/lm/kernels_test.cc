#include "lm/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/rng.h"
#include "lm/transformer.h"

// Property tests for the dispatching kernel layer: every vector tier must be
// bit-identical to the scalar tier (which is itself pinned against the naive
// reference elsewhere), fused epilogues must equal the unfused two-pass
// form bitwise, and the int8 path must respect its analytic drift bound and
// preserve greedy argmax on a trained model. Shapes deliberately include
// primes, odd sizes, sub-vector-width dims, and tile-straddling sizes.

namespace dimqr::lm {
namespace {

namespace k = dimqr::lm::kernels;

std::vector<float> RandomMatrix(Rng& rng, int rows, int cols,
                                double zero_rate = 0.1) {
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (float& v : m) {
    v = rng.Bernoulli(zero_rate) ? 0.0f
                                 : static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return m;
}

/// Shapes: unit, odd/prime, sub-block, >1 tile in both p (128) and j (512),
/// GEMV (m=1), and the m=8 register-tile boundary.
const std::vector<std::tuple<int, int, int>>& Shapes() {
  static const std::vector<std::tuple<int, int, int>> kShapes = {
      {1, 1, 1},      {3, 5, 7},       {7, 33, 129},   {8, 64, 96},
      {31, 127, 65},  {61, 127, 509},  {5, 130, 527},  {1, 64, 512},
      {9, 257, 1031}, {160, 192, 500},
  };
  return kShapes;
}

std::vector<k::Isa> VectorTiers() {
  std::vector<k::Isa> tiers;
  for (k::Isa isa : {k::Isa::kAvx2, k::Isa::kAvx512}) {
    if (k::IsaAvailable(isa)) tiers.push_back(isa);
  }
  return tiers;
}

TEST(KernelDispatchTest, ActiveIsaIsAvailableAndNamed) {
  k::Isa active = k::ActiveIsa();
  EXPECT_TRUE(k::IsaAvailable(active));
  EXPECT_TRUE(k::IsaAvailable(k::BestIsa()));
  EXPECT_TRUE(k::IsaAvailable(k::Isa::kScalar));
  for (k::Isa isa : {k::Isa::kScalar, k::Isa::kAvx2, k::Isa::kAvx512}) {
    EXPECT_STRNE(k::IsaName(isa), "unknown");
  }
}

TEST(KernelDispatchTest, ScopedIsaForTestForcesAndRestores) {
  k::Isa before = k::ActiveIsa();
  {
    k::ScopedIsaForTest forced(k::Isa::kScalar);
    EXPECT_EQ(k::ActiveIsa(), k::Isa::kScalar);
  }
  EXPECT_EQ(k::ActiveIsa(), before);
}

TEST(KernelTierTest, MatMulBitIdenticalAcrossTiers) {
  std::vector<k::Isa> tiers = VectorTiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this host";
  Rng rng(101);
  for (auto [m, kk, n] : Shapes()) {
    std::vector<float> a = RandomMatrix(rng, m, kk);
    std::vector<float> b = RandomMatrix(rng, kk, n);
    std::vector<float> c_scalar(static_cast<std::size_t>(m) * n, -1.0f);
    {
      k::ScopedIsaForTest forced(k::Isa::kScalar);
      k::MatMul(a.data(), b.data(), c_scalar.data(), m, kk, n);
    }
    for (k::Isa isa : tiers) {
      std::vector<float> c(static_cast<std::size_t>(m) * n, 2.0f);
      k::ScopedIsaForTest forced(isa);
      k::MatMul(a.data(), b.data(), c.data(), m, kk, n);
      ASSERT_EQ(c, c_scalar) << k::IsaName(isa) << " m=" << m << " k=" << kk
                             << " n=" << n;
    }
  }
}

TEST(KernelTierTest, GradABitIdenticalAcrossTiers) {
  std::vector<k::Isa> tiers = VectorTiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this host";
  Rng rng(102);
  for (auto [m, kk, n] : Shapes()) {
    std::vector<float> dc = RandomMatrix(rng, m, n);
    std::vector<float> b = RandomMatrix(rng, kk, n);
    // Nonzero start: GradA accumulates (+=), so the seed must survive.
    std::vector<float> da_scalar(static_cast<std::size_t>(m) * kk, 0.25f);
    {
      k::ScopedIsaForTest forced(k::Isa::kScalar);
      k::MatMulGradA(dc.data(), b.data(), da_scalar.data(), m, kk, n);
    }
    for (k::Isa isa : tiers) {
      std::vector<float> da(static_cast<std::size_t>(m) * kk, 0.25f);
      k::ScopedIsaForTest forced(isa);
      k::MatMulGradA(dc.data(), b.data(), da.data(), m, kk, n);
      ASSERT_EQ(da, da_scalar) << k::IsaName(isa) << " m=" << m << " k=" << kk
                               << " n=" << n;
    }
  }
}

TEST(KernelTierTest, GradBBitIdenticalAcrossTiers) {
  std::vector<k::Isa> tiers = VectorTiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this host";
  Rng rng(103);
  for (auto [m, kk, n] : Shapes()) {
    std::vector<float> a = RandomMatrix(rng, m, kk);
    std::vector<float> dc = RandomMatrix(rng, m, n);
    std::vector<float> db_scalar(static_cast<std::size_t>(kk) * n, -0.5f);
    {
      k::ScopedIsaForTest forced(k::Isa::kScalar);
      k::MatMulGradB(a.data(), dc.data(), db_scalar.data(), m, kk, n);
    }
    for (k::Isa isa : tiers) {
      std::vector<float> db(static_cast<std::size_t>(kk) * n, -0.5f);
      k::ScopedIsaForTest forced(isa);
      k::MatMulGradB(a.data(), dc.data(), db.data(), m, kk, n);
      ASSERT_EQ(db, db_scalar) << k::IsaName(isa) << " m=" << m << " k=" << kk
                               << " n=" << n;
    }
  }
}

TEST(KernelTierTest, Int8MatMulBitIdenticalAcrossTiers) {
  std::vector<k::Isa> tiers = VectorTiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this host";
  Rng rng(104);
  for (auto [m, kk, n] : Shapes()) {
    std::vector<float> a = RandomMatrix(rng, m, kk);
    std::vector<float> w = RandomMatrix(rng, kk, n);
    std::vector<std::int8_t> q(static_cast<std::size_t>(kk) * n);
    std::vector<float> scales(static_cast<std::size_t>(kk));
    k::QuantizeRowsInt8(w.data(), kk, n, q.data(), scales.data());
    std::vector<float> c_scalar(static_cast<std::size_t>(m) * n, 3.0f);
    {
      k::ScopedIsaForTest forced(k::Isa::kScalar);
      k::MatMulInt8(a.data(), q.data(), scales.data(), c_scalar.data(), m, kk,
                    n);
    }
    for (k::Isa isa : tiers) {
      std::vector<float> c(static_cast<std::size_t>(m) * n, -3.0f);
      k::ScopedIsaForTest forced(isa);
      k::MatMulInt8(a.data(), q.data(), scales.data(), c.data(), m, kk, n);
      ASSERT_EQ(c, c_scalar) << k::IsaName(isa) << " m=" << m << " k=" << kk
                             << " n=" << n;
    }
  }
}

/// The unfused reference for the elementwise epilogue + row softmax,
/// mirroring the documented contract in kernels.h.
void ReferenceEpilogue(const std::vector<float>& c, const k::Epilogue& e,
                       int m, int n, std::vector<float>* out,
                       std::vector<float>* gelu_out) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::size_t idx = static_cast<std::size_t>(i) * n + j;
      float v = c[idx];
      if (e.bias != nullptr) v += e.bias[j];
      if (e.residual != nullptr) v = e.residual[idx] + v;
      (*out)[idx] = v;
      if (gelu_out != nullptr) (*gelu_out)[idx] = k::Gelu(v);
    }
  }
  if (e.softmax_rows) {
    for (int i = 0; i < m; ++i) {
      float* row = out->data() + static_cast<std::size_t>(i) * n;
      float maxv = -1e30f;
      for (int j = 0; j < n; ++j) {
        if (row[j] > maxv) maxv = row[j];
      }
      float denom = 0.0f;
      for (int j = 0; j < n; ++j) {
        row[j] = std::exp(row[j] - maxv);
        denom += row[j];
      }
      float inv_denom = 1.0f / denom;
      for (int j = 0; j < n; ++j) row[j] *= inv_denom;
    }
  }
}

TEST(KernelFusionTest, FusedEpilogueMatchesUnfusedBitwiseOnEveryTier) {
  Rng rng(105);
  std::vector<k::Isa> tiers = {k::Isa::kScalar};
  for (k::Isa isa : VectorTiers()) tiers.push_back(isa);
  for (auto [m, kk, n] : Shapes()) {
    std::vector<float> a = RandomMatrix(rng, m, kk);
    std::vector<float> b = RandomMatrix(rng, kk, n);
    std::vector<float> bias = RandomMatrix(rng, 1, n, 0.0);
    std::vector<float> residual = RandomMatrix(rng, m, n, 0.0);
    const std::size_t mn = static_cast<std::size_t>(m) * n;
    for (k::Isa isa : tiers) {
      k::ScopedIsaForTest forced(isa);
      std::vector<float> plain(mn);
      k::MatMul(a.data(), b.data(), plain.data(), m, kk, n);

      // bias + residual + separate gelu buffer.
      k::Epilogue e;
      e.bias = bias.data();
      e.residual = residual.data();
      std::vector<float> gelu(mn);
      e.gelu_out = gelu.data();
      std::vector<float> fused(mn);
      k::MatMulEx(a.data(), b.data(), fused.data(), m, kk, n, e);
      std::vector<float> want(mn), want_gelu(mn);
      ReferenceEpilogue(plain, e, m, n, &want, &want_gelu);
      ASSERT_EQ(fused, want) << k::IsaName(isa) << " m=" << m << " n=" << n;
      ASSERT_EQ(gelu, want_gelu) << k::IsaName(isa);

      // gelu_out aliasing c: the in-place decode FFN form (bias only).
      k::Epilogue e2;
      e2.bias = bias.data();
      std::vector<float> inplace(mn);
      e2.gelu_out = inplace.data();
      k::MatMulEx(a.data(), b.data(), inplace.data(), m, kk, n, e2);
      std::vector<float> want2(mn), want_gelu2(mn);
      ReferenceEpilogue(plain, e2, m, n, &want2, &want_gelu2);
      ASSERT_EQ(inplace, want_gelu2) << k::IsaName(isa) << " (in-place gelu)";

      // out redirected away from c, with the residual aliasing out's
      // buffer (the decode x += proj + bias form).
      std::vector<float> x = residual;
      k::Epilogue e3;
      e3.bias = bias.data();
      e3.residual = x.data();
      e3.out = x.data();
      std::vector<float> scratch(mn, -7.0f);
      k::MatMulEx(a.data(), b.data(), scratch.data(), m, kk, n, e3);
      std::vector<float> want_x(mn);
      k::Epilogue eref;
      eref.bias = bias.data();
      eref.residual = residual.data();
      ReferenceEpilogue(plain, eref, m, n, &want_x, nullptr);
      ASSERT_EQ(x, want_x) << k::IsaName(isa) << " (residual==out alias)";

      // row softmax fused into the output loop.
      k::Epilogue e4;
      e4.softmax_rows = true;
      std::vector<float> soft(mn);
      k::MatMulEx(a.data(), b.data(), soft.data(), m, kk, n, e4);
      std::vector<float> want_soft = plain;
      ReferenceEpilogue(plain, e4, m, n, &want_soft, nullptr);
      ASSERT_EQ(soft, want_soft) << k::IsaName(isa) << " (softmax rows)";
    }
  }
}

TEST(Int8QuantizeTest, PerRowScalesBoundRoundtripError) {
  Rng rng(106);
  const int kk = 61, n = 129;
  std::vector<float> w = RandomMatrix(rng, kk, n, 0.05);
  // One exactly-zero row must quantize to scale 1, all-zero codes.
  for (int j = 0; j < n; ++j) w[static_cast<std::size_t>(7) * n + j] = 0.0f;
  std::vector<std::int8_t> q(static_cast<std::size_t>(kk) * n);
  std::vector<float> scales(kk);
  k::QuantizeRowsInt8(w.data(), kk, n, q.data(), scales.data());
  for (int p = 0; p < kk; ++p) {
    float absmax = 0.0f;
    for (int j = 0; j < n; ++j) {
      absmax = std::max(absmax, std::fabs(w[static_cast<std::size_t>(p) * n + j]));
    }
    if (absmax == 0.0f) {
      EXPECT_EQ(scales[p], 1.0f) << "row " << p;
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(q[static_cast<std::size_t>(p) * n + j], 0);
      }
      continue;
    }
    EXPECT_FLOAT_EQ(scales[p], absmax / 127.0f);
    for (int j = 0; j < n; ++j) {
      std::size_t idx = static_cast<std::size_t>(p) * n + j;
      float recon = static_cast<float>(q[idx]) * scales[p];
      // Round-to-nearest: at most half a quantization step, plus fp slack.
      ASSERT_LE(std::fabs(recon - w[idx]), 0.5f * scales[p] * (1.0f + 1e-5f))
          << "row " << p << " col " << j;
      ASSERT_GE(q[idx], -127);
      ASSERT_LE(q[idx], 127);
    }
  }
  // Determinism: quantizing twice yields identical bytes.
  std::vector<std::int8_t> q2(q.size());
  std::vector<float> scales2(scales.size());
  k::QuantizeRowsInt8(w.data(), kk, n, q2.data(), scales2.data());
  EXPECT_EQ(q, q2);
  EXPECT_EQ(scales, scales2);
}

TEST(Int8QuantizeTest, MatMulDriftWithinAnalyticBound) {
  Rng rng(107);
  for (auto [m, kk, n] : {std::tuple{1, 64, 512}, std::tuple{7, 61, 127},
                          std::tuple{16, 128, 256}}) {
    std::vector<float> a = RandomMatrix(rng, m, kk, 0.0);
    std::vector<float> w = RandomMatrix(rng, kk, n, 0.0);
    std::vector<std::int8_t> q(static_cast<std::size_t>(kk) * n);
    std::vector<float> scales(kk);
    k::QuantizeRowsInt8(w.data(), kk, n, q.data(), scales.data());
    std::vector<float> c32(static_cast<std::size_t>(m) * n);
    std::vector<float> c8(static_cast<std::size_t>(m) * n);
    k::MatMul(a.data(), w.data(), c32.data(), m, kk, n);
    k::MatMulInt8(a.data(), q.data(), scales.data(), c8.data(), m, kk, n);
    for (int i = 0; i < m; ++i) {
      // Per-row bound: each weight is off by at most scale/2, so the dot
      // drifts by at most sum_p |a[i][p]| * scales[p] / 2 (plus fp slack
      // for the accumulation itself).
      float bound = 0.0f;
      for (int p = 0; p < kk; ++p) {
        bound += std::fabs(a[static_cast<std::size_t>(i) * kk + p]) *
                 scales[p] * 0.5f;
      }
      bound = bound * (1.0f + 1e-4f) + 1e-5f;
      for (int j = 0; j < n; ++j) {
        std::size_t idx = static_cast<std::size_t>(i) * n + j;
        ASSERT_LE(std::fabs(c8[idx] - c32[idx]), bound)
            << "m=" << m << " i=" << i << " j=" << j;
      }
    }
  }
}

/// The model-level equivalence gate: int8 decode must reproduce fp32 greedy
/// decoding exactly (same argmax at every step) on a trained model, and the
/// logit drift must stay far below the decision margins training creates.
TEST(Int8DecodeTest, GreedyMatchesFp32OnTrainedModel) {
  TransformerConfig c;
  c.vocab_size = 24;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_seq = 16;
  c.seed = 7;
  auto model_or = Transformer::Create(c);
  ASSERT_TRUE(model_or.ok());
  Transformer model = std::move(model_or).ValueOrDie();

  // Overfit a few fixed sequences so decoding has confident margins.
  std::vector<LmExample> batch;
  for (int s = 0; s < 4; ++s) {
    LmExample e;
    e.tokens = {1, 6 + s, 7 + s, 8 + s, 9 + s, 2};
    e.loss_mask.assign(e.tokens.size(), 0);
    for (std::size_t i = 2; i < e.tokens.size(); ++i) e.loss_mask[i] = 1;
    batch.push_back(std::move(e));
  }
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 150; ++step) {
    auto loss = model.TrainBatch(batch, 3e-3);
    ASSERT_TRUE(loss.ok());
    if (step == 0) first_loss = loss.ValueOrDie();
    last_loss = loss.ValueOrDie();
  }
  ASSERT_LT(last_loss, first_loss);

  Transformer quantized = model;
  ASSERT_FALSE(quantized.int8_decode());
  quantized.EnableInt8Decode(true);
  ASSERT_TRUE(quantized.int8_decode());

  for (int s = 0; s < 4; ++s) {
    std::vector<int> prefix = {1, 6 + s};
    auto fp32 = model.Greedy(prefix, 8, 2);
    auto int8 = quantized.Greedy(prefix, 8, 2);
    ASSERT_TRUE(fp32.ok());
    ASSERT_TRUE(int8.ok());
    EXPECT_EQ(fp32.ValueOrDie(), int8.ValueOrDie()) << "sequence " << s;

    auto l32 = model.NextLogits(prefix);
    auto l8 = quantized.NextLogits(prefix);
    ASSERT_TRUE(l32.ok());
    ASSERT_TRUE(l8.ok());
    float spread = *std::max_element(l32.ValueOrDie().begin(), l32.ValueOrDie().end()) -
                   *std::min_element(l32.ValueOrDie().begin(), l32.ValueOrDie().end());
    for (std::size_t v = 0; v < l32.ValueOrDie().size(); ++v) {
      ASSERT_LE(std::fabs(l8.ValueOrDie()[v] - l32.ValueOrDie()[v]), 0.05f * spread)
          << "logit " << v;
    }
  }

  // Turning the path back off restores exact fp32 behavior.
  quantized.EnableInt8Decode(false);
  ASSERT_FALSE(quantized.int8_decode());
  auto again = quantized.NextLogits({1, 6});
  auto ref = model.NextLogits({1, 6});
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(again.ValueOrDie(), ref.ValueOrDie());
}

}  // namespace
}  // namespace dimqr::lm
