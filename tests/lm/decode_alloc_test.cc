// Pins the decode-arena contract: once a DecodeState is bound and warm,
// Step and Prefill perform ZERO heap allocations per token. The whole
// point of the arena is that steady-state generation never touches the
// allocator, so this test replaces global operator new/delete with
// counting shims and asserts the counter does not move.
//
// This test lives in its own binary (see tests/CMakeLists.txt): replacing
// the global allocator would poison every other suite's measurements, and
// sanitizers intercept malloc themselves, so under ASan/TSan/MSan the
// shims are compiled out and the test skips.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/snapshot.h"
#include "lm/transformer.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DIMQR_COUNTING_ALLOCATOR 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DIMQR_COUNTING_ALLOCATOR 0
#else
#define DIMQR_COUNTING_ALLOCATOR 1
#endif
#else
#define DIMQR_COUNTING_ALLOCATOR 1
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

#if DIMQR_COUNTING_ALLOCATOR

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Aligned overloads: AlignedVec (core/aligned.h) allocates through these,
// so they must count too — otherwise the zero-alloc guarantees would stop
// observing the cache-line-aligned decode buffers.
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) ==
      0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // DIMQR_COUNTING_ALLOCATOR

namespace dimqr::lm {
namespace {

TransformerConfig AllocTestConfig() {
  TransformerConfig c;
  c.vocab_size = 48;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_seq = 64;
  c.seed = 11;
  return c;
}

TEST(DecodeAllocTest, SteadyStateStepAllocatesNothing) {
#if !DIMQR_COUNTING_ALLOCATOR
  GTEST_SKIP() << "counting allocator disabled under sanitizers";
#else
  Transformer model = Transformer::Create(AllocTestConfig()).ValueOrDie();
  DecodeState state;
  state.Bind(model.config());
  // Warm-up: the first Step binds nothing new (Bind preallocated), but run
  // a few tokens anyway so any one-time lazy work is behind us.
  for (int tok : {1, 7, 8}) {
    ASSERT_TRUE(model.Step(state, tok).ok());
  }
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  bool all_ok = true;
  for (int i = 0; i < 32; ++i) {
    all_ok = all_ok && model.Step(state, 6 + (i % 40)).ok();
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations across 32 decode steps";
#endif
}

TEST(DecodeAllocTest, PrefillOnBoundStateAllocatesNothing) {
#if !DIMQR_COUNTING_ALLOCATOR
  GTEST_SKIP() << "counting allocator disabled under sanitizers";
#else
  Transformer model = Transformer::Create(AllocTestConfig()).ValueOrDie();
  std::vector<int> prompt;
  for (int i = 0; i < 24; ++i) prompt.push_back(6 + (i % 40));
  DecodeState state;
  state.Bind(model.config());
  // Warm-up pass, then rewind: capacity is retained.
  ASSERT_TRUE(model.Prefill(prompt, state).ok());
  state.Rewind();
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  bool ok = model.Prefill(prompt.data(), static_cast<int>(prompt.size()),
                          state)
                .ok();
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_TRUE(ok);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in a warm batched prefill";
#endif
}

TEST(DecodeAllocTest, RebindSameGeometryKeepsBuffers) {
#if !DIMQR_COUNTING_ALLOCATOR
  GTEST_SKIP() << "counting allocator disabled under sanitizers";
#else
  Transformer model = Transformer::Create(AllocTestConfig()).ValueOrDie();
  DecodeState state;
  state.Bind(model.config());
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  state.Bind(model.config());  // identical geometry: must be a no-op
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
#endif
}

TEST(DecodeAllocTest, SnapshotWeightLoadAllocatesConstant) {
#if !DIMQR_COUNTING_ALLOCATOR
  GTEST_SKIP() << "counting allocator disabled under sanitizers";
#else
  // Zero-copy claim, measured: loading a Transformer from an arena must
  // alias the weights, so the allocation count is a small constant (layout
  // bookkeeping) regardless of parameter count — never O(parameters).
  Transformer model = Transformer::Create(AllocTestConfig()).ValueOrDie();
  snapshot::ArenaWriter arena;
  model.WriteTo(arena);
  const std::vector<std::byte> blob = std::move(arena).Take();
  // Warm-up load so any lazy one-time work is behind us.
  {
    snapshot::ArenaReader reader{std::span<const std::byte>(blob)};
    ASSERT_TRUE(Transformer::FromArena(reader).ok());
  }
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  snapshot::ArenaReader reader{std::span<const std::byte>(blob)};
  auto loaded = Transformer::FromArena(reader);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.ValueOrDie().borrowed());
  EXPECT_GT(loaded.ValueOrDie().num_parameters(), 1000u);
  EXPECT_LT(after - before, 32u)
      << (after - before)
      << " allocations loading snapshot weights (expected a small constant)";
#endif
}

}  // namespace
}  // namespace dimqr::lm
