// Equivalence suite for the inference fast path: batched Prefill, the
// reusable DecodeState arena, and PrefixCache forking must all be
// *bit-identical* to the per-token Step reference — every table binary's
// byte-identity across DIMQR_THREADS and cache settings rests on it, so
// the assertions here are EXPECT_EQ on raw float vectors, never NEAR.

#include <gtest/gtest.h>

#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "lm/prefix_cache.h"
#include "lm/transformer.h"
#include "solver/seq2seq.h"

namespace dimqr::lm {
namespace {

TransformerConfig TinyConfig() {
  TransformerConfig c;
  c.vocab_size = 24;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_seq = 16;
  c.seed = 7;
  return c;
}

/// A briefly-trained model: random-init logits are near-uniform, which
/// would make bit-identity checks trivially easy to pass by accident.
Transformer TrainedTiny() {
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  LmExample e;
  e.tokens = {1, 7, 8, 9, 10, 2};
  e.loss_mask = {0, 0, 1, 1, 1, 1};
  for (int step = 0; step < 30; ++step) {
    EXPECT_TRUE(m.TrainBatch({e}, 3e-3).ok());
  }
  return m;
}

/// Per-token reference: Step over every token, collecting the logits after
/// each position.
std::vector<std::vector<float>> StepwiseLogits(const Transformer& m,
                                               const std::vector<int>& tokens) {
  DecodeState state;
  state.Bind(m.config());
  std::vector<std::vector<float>> out;
  for (int tok : tokens) {
    EXPECT_TRUE(m.Step(state, tok).ok());
    out.push_back(state.logits());
  }
  return out;
}

TEST(DecodeFastPathTest, PrefillBitIdenticalToStepAtEverySplit) {
  Transformer m = TrainedTiny();
  std::vector<int> tokens = {1, 7, 8, 9, 10, 3, 11, 12, 9, 7};
  std::vector<std::vector<float>> reference = StepwiseLogits(m, tokens);
  for (std::size_t cut = 1; cut <= tokens.size(); ++cut) {
    DecodeState state;
    ASSERT_TRUE(
        m.Prefill(tokens.data(), static_cast<int>(cut), state).ok());
    EXPECT_EQ(state.logits(), reference[cut - 1]) << "prefill len " << cut;
    EXPECT_EQ(state.position(), static_cast<int>(cut));
  }
}

TEST(DecodeFastPathTest, ChunkedPrefillMatchesWholePrefill) {
  Transformer m = TrainedTiny();
  std::vector<int> tokens = {1, 7, 8, 9, 10, 3, 11, 12};
  DecodeState whole;
  ASSERT_TRUE(m.Prefill(tokens, whole).ok());
  for (std::size_t cut = 1; cut < tokens.size(); ++cut) {
    DecodeState chunked;
    ASSERT_TRUE(
        m.Prefill(tokens.data(), static_cast<int>(cut), chunked).ok());
    ASSERT_TRUE(m.Prefill(tokens.data() + cut,
                          static_cast<int>(tokens.size() - cut), chunked)
                    .ok());
    EXPECT_EQ(chunked.logits(), whole.logits()) << "chunk at " << cut;
  }
}

TEST(DecodeFastPathTest, PrefillThenStepContinuesSeamlessly) {
  Transformer m = TrainedTiny();
  std::vector<int> tokens = {1, 7, 8, 9, 10, 3};
  std::vector<std::vector<float>> reference = StepwiseLogits(m, tokens);
  DecodeState state;
  ASSERT_TRUE(m.Prefill(tokens.data(), 3, state).ok());
  for (std::size_t i = 3; i < tokens.size(); ++i) {
    ASSERT_TRUE(m.Step(state, tokens[i]).ok());
    EXPECT_EQ(state.logits(), reference[i]) << "step at " << i;
  }
}

TEST(DecodeFastPathTest, PrefillValidatesInput) {
  Transformer m = TrainedTiny();
  DecodeState state;
  EXPECT_FALSE(m.Prefill(nullptr, 0, state).ok());
  std::vector<int> bad = {1, 99};
  EXPECT_FALSE(m.Prefill(bad, state).ok());
  std::vector<int> too_long(static_cast<std::size_t>(m.config().max_seq) + 1,
                            7);
  EXPECT_FALSE(m.Prefill(too_long, state).ok());
}

TEST(DecodeFastPathTest, ArenaReuseAcrossGenerationsIsStateless) {
  // One arena, rewound between prompts, must reproduce fresh-state results
  // even when the second prompt is shorter (stale rows beyond the rewind
  // point must be unreachable).
  Transformer m = TrainedTiny();
  std::vector<int> long_prompt = {1, 7, 8, 9, 10, 3, 11, 12};
  std::vector<int> short_prompt = {1, 9, 7};
  DecodeState fresh;
  ASSERT_TRUE(m.Prefill(short_prompt, fresh).ok());
  DecodeState reused;
  ASSERT_TRUE(m.Prefill(long_prompt, reused).ok());
  reused.Rewind();
  ASSERT_TRUE(m.Prefill(short_prompt, reused).ok());
  EXPECT_EQ(reused.logits(), fresh.logits());
}

TEST(DecodeFastPathTest, GreedyMatchesPerTokenReferenceDecode) {
  Transformer m = TrainedTiny();
  std::vector<int> prefix = {1, 7, 8};
  const int max_new = 6, eos = 2;
  // Replica of the pre-PR Greedy: per-token prefill, then argmax/step.
  DecodeState state;
  state.Bind(m.config());
  for (int tok : prefix) ASSERT_TRUE(m.Step(state, tok).ok());
  std::vector<int> reference;
  for (int step = 0; step < max_new; ++step) {
    int best = ArgmaxLowest(state.logits());
    if (best == eos) break;
    reference.push_back(best);
    if (state.position() >= m.config().max_seq) break;
    ASSERT_TRUE(m.Step(state, best).ok());
  }
  EXPECT_EQ(m.Greedy(prefix, max_new, eos).ValueOrDie(), reference);
}

TEST(DecodeFastPathTest, ArgmaxTieBreakPicksLowestIndex) {
  // Greedy's tie-break must be the first maximum: a later bit-equal logit
  // never wins, so generation cannot depend on scan direction or epsilon.
  EXPECT_EQ(ArgmaxLowest({0.5f, 2.0f, 2.0f, 1.0f}), 1);
  EXPECT_EQ(ArgmaxLowest({3.0f, 3.0f, 3.0f}), 0);
  EXPECT_EQ(ArgmaxLowest({-1.0f}), 0);
  EXPECT_EQ(ArgmaxLowest({-2.0f, -1.0f, -1.0f}), 1);
}

// ---------------------------------------------------------------------------
// PrefixCache
// ---------------------------------------------------------------------------

TEST(PrefixCacheTest, ForkedDecodeBitIdenticalToCold) {
  Transformer m = TrainedTiny();
  std::vector<int> stem = {1, 7, 8, 9, 10, 3};
  std::vector<int> prompt_a = stem, prompt_b = stem;
  prompt_a.insert(prompt_a.end(), {11, 12});
  prompt_b.insert(prompt_b.end(), {12, 9, 7});

  PrefixCache cache;
  DecodeState state;
  state.Bind(m.config());
  ASSERT_TRUE(m.Prefill(prompt_a, state).ok());
  cache.Insert(prompt_a, state);

  DecodeState forked;
  forked.Bind(m.config());
  int seeded = cache.Seed(prompt_b, forked);
  ASSERT_EQ(seeded, static_cast<int>(stem.size()));
  ASSERT_TRUE(m.Prefill(prompt_b.data() + seeded,
                        static_cast<int>(prompt_b.size()) - seeded, forked)
                  .ok());

  DecodeState cold;
  ASSERT_TRUE(m.Prefill(prompt_b, cold).ok());
  EXPECT_EQ(forked.logits(), cold.logits());
  EXPECT_EQ(forked.position(), cold.position());

  PrefixCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.hit_tokens, stem.size());
}

TEST(PrefixCacheTest, SeedAlwaysLeavesAtLeastOneTokenToPrefill) {
  Transformer m = TrainedTiny();
  std::vector<int> prompt = {1, 7, 8, 9, 10, 3};
  PrefixCache cache;
  DecodeState state;
  state.Bind(m.config());
  ASSERT_TRUE(m.Prefill(prompt, state).ok());
  cache.Insert(prompt, state);
  // Identical prompt: the fork must stop one token short so the caller's
  // trailing Prefill recomputes the logits.
  DecodeState again;
  again.Bind(m.config());
  int seeded = cache.Seed(prompt, again);
  EXPECT_EQ(seeded, static_cast<int>(prompt.size()) - 1);
}

TEST(PrefixCacheTest, MissesBelowMinForkAndOnForeignStems) {
  Transformer m = TrainedTiny();
  PrefixCache cache;
  DecodeState state;
  state.Bind(m.config());
  std::vector<int> prompt = {1, 7, 8, 9, 10, 3};
  ASSERT_TRUE(m.Prefill(prompt, state).ok());
  cache.Insert(prompt, state);
  DecodeState probe;
  probe.Bind(m.config());
  // Shares only 2 leading tokens (< min_fork_tokens).
  std::vector<int> shallow = {1, 7, 9, 9, 9, 9};
  EXPECT_EQ(cache.Seed(shallow, probe), 0);
  EXPECT_EQ(probe.position(), 0);
  // Entirely different stem.
  std::vector<int> foreign = {3, 4, 5, 6, 7, 8};
  EXPECT_EQ(cache.Seed(foreign, probe), 0);
}

TEST(PrefixCacheTest, EvictionKeepsMemoryBounded) {
  Transformer m = TrainedTiny();
  PrefixCache::Config config;
  config.stripes = 1;
  config.entries_per_stripe = 2;
  config.min_fork_tokens = 2;
  PrefixCache cache(config);
  DecodeState state;
  state.Bind(m.config());
  // Prompts share a 4-token routing stem so they all land in the stripe.
  for (int tail = 6; tail < 12; ++tail) {
    std::vector<int> prompt = {1, 7, 8, 9, tail, tail};
    state.Rewind();
    ASSERT_TRUE(m.Prefill(prompt, state).ok());
    cache.Insert(prompt, state);
  }
  PrefixCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 6u);
  EXPECT_EQ(stats.evictions, 4u);  // capacity 2, six distinct prompts
  // The survivors are the two most recently inserted.
  DecodeState probe;
  probe.Bind(m.config());
  std::vector<int> last = {1, 7, 8, 9, 11, 11, 5};
  EXPECT_GT(cache.Seed(last, probe), 0);
}

TEST(PrefixCacheTest, GreedyWithCacheMatchesColdGreedy) {
  Transformer m = TrainedTiny();
  PrefixCache cache;
  std::vector<int> stem = {1, 7, 8, 9, 10};
  std::vector<std::vector<int>> prompts;
  for (int tail : {11, 12, 9, 11}) {
    std::vector<int> p = stem;
    p.push_back(3);
    p.push_back(tail);
    prompts.push_back(p);
  }
  for (const std::vector<int>& p : prompts) {
    std::vector<int> cold = m.Greedy(p, 5, /*eos=*/2).ValueOrDie();
    DecodeState state;
    std::vector<int> cached =
        m.Greedy(p, 5, /*eos=*/2, state, &cache).ValueOrDie();
    EXPECT_EQ(cached, cold);
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(PrefixCacheTest, LeftTruncatedPromptsForkCorrectly) {
  // Prompt longer than max_seq - max_new: Greedy truncates before any
  // cache interaction, so snapshots are keyed by what was actually
  // prefilled and forks stay position-aligned.
  Transformer m = TrainedTiny();
  const int max_new = 6;
  const int budget = m.config().max_seq - max_new;  // 10
  std::vector<int> long_prompt;
  for (int i = 0; i < budget + 5; ++i) {
    long_prompt.push_back(6 + (i % 7));
  }
  PrefixCache cache;
  std::vector<int> cold = m.Greedy(long_prompt, max_new, 2).ValueOrDie();
  DecodeState s1, s2;
  EXPECT_EQ(m.Greedy(long_prompt, max_new, 2, s1, &cache).ValueOrDie(), cold);
  // Second call forks the truncated snapshot and must agree bit for bit.
  EXPECT_EQ(m.Greedy(long_prompt, max_new, 2, s2, &cache).ValueOrDie(), cold);
  EXPECT_GT(cache.stats().hit_tokens, 0u);
}

TEST(PrefixCacheTest, ConcurrentSeedInsertIsRaceFreeAndExact) {
  // The eval-harness shape: many instances sharing a few stems, decoded
  // concurrently against one striped cache. Every result must equal its
  // cold decode regardless of interleaving (also exercised under TSan).
  Transformer m = TrainedTiny();
  PrefixCache cache;
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < 48; ++i) {
    std::vector<int> p = {1, 7, 8, static_cast<int>(6 + (i % 3))};
    p.push_back(3);
    p.push_back(6 + (i % 11));
    prompts.push_back(p);
  }
  std::vector<std::vector<int>> cold(prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    cold[i] = m.Greedy(prompts[i], 5, 2).ValueOrDie();
  }
  ScopedParallelism scope(4);
  std::vector<std::vector<int>> hot(prompts.size());
  Status status = ParallelFor(
      static_cast<std::int64_t>(prompts.size()),
      [&](std::int64_t begin, std::int64_t end, int) -> Status {
        for (std::int64_t i = begin; i < end; ++i) {
          const auto slot = static_cast<std::size_t>(i);
          DIMQR_ASSIGN_OR_RETURN(
              hot[slot], m.Greedy(prompts[slot], 5, 2,
                                  ThreadLocalDecodeState(), &cache));
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(hot[i], cold[i]) << "prompt " << i;
  }
}

// ---------------------------------------------------------------------------
// Seq2SeqModel wiring
// ---------------------------------------------------------------------------

TEST(Seq2SeqFastPathTest, GenerateIdenticalWithCacheOnAndOff) {
  using solver::SeqExample;
  using solver::Seq2SeqConfig;
  using solver::Seq2SeqModel;
  std::vector<SeqExample> train;
  const char* stems[] = {"convert five km to m", "convert two kg to g",
                         "compare one mile with one km"};
  for (const char* stem : stems) {
    SeqExample ex;
    ex.input = stem;
    ex.middle = "scale the value";
    ex.answer = "b";
    train.push_back(ex);
  }
  Seq2SeqConfig config;
  config.arch.d_model = 16;
  config.arch.n_heads = 2;
  config.arch.n_layers = 2;
  config.arch.d_ff = 32;
  config.arch.max_seq = 48;
  config.max_generated_tokens = 12;
  auto build = [&] {
    auto model =
        Seq2SeqModel::Create("FastPath", train, config).ValueOrDie();
    EXPECT_TRUE(model->TrainSteps(2).ok());
    return model;
  };
  auto cached = build();
  auto cold = build();
  cached->set_prefix_cache_enabled(true);
  cold->set_prefix_cache_enabled(false);
  // Same stem twice: the second generation forks the first's snapshot.
  for (const char* prompt :
       {"convert five km to m now", "convert five km to mm now",
        "compare one mile with one km quickly"}) {
    solver::SeqOutput a = cached->Generate(prompt, false).ValueOrDie();
    solver::SeqOutput b = cold->Generate(prompt, false).ValueOrDie();
    EXPECT_EQ(a.middle, b.middle) << prompt;
    EXPECT_EQ(a.answer, b.answer) << prompt;
  }
  EXPECT_GT(cached->prefix_cache_stats().hits, 0u);
  EXPECT_EQ(cold->prefix_cache_stats().lookups, 0u);
}

TEST(Seq2SeqFastPathTest, TrainingInvalidatesSnapshots) {
  using solver::SeqExample;
  using solver::Seq2SeqConfig;
  using solver::Seq2SeqModel;
  std::vector<SeqExample> train;
  SeqExample ex;
  ex.input = "convert five km to m";
  ex.middle = "scale";
  ex.answer = "b";
  train.push_back(ex);
  Seq2SeqConfig config;
  config.arch.d_model = 16;
  config.arch.n_heads = 2;
  config.arch.n_layers = 2;
  config.arch.d_ff = 32;
  config.arch.max_seq = 48;
  config.max_generated_tokens = 8;
  auto model = Seq2SeqModel::Create("Stale", train, config).ValueOrDie();
  model->set_prefix_cache_enabled(true);
  ASSERT_TRUE(model->Generate("convert five km to m", false).ok());
  ASSERT_TRUE(model->TrainSteps(2).ok());
  // Post-training generation must match a cache-disabled twin: any stale
  // snapshot surviving Clear() would fork pre-training K/V rows here.
  solver::SeqOutput with_cache =
      model->Generate("convert five km to m", false).ValueOrDie();
  model->set_prefix_cache_enabled(false);
  solver::SeqOutput without =
      model->Generate("convert five km to m", false).ValueOrDie();
  EXPECT_EQ(with_cache.middle, without.middle);
  EXPECT_EQ(with_cache.answer, without.answer);
}

}  // namespace
}  // namespace dimqr::lm
