#include "lm/transformer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/parallel.h"
#include "core/rng.h"
#include "lm/kernels.h"

namespace dimqr::lm {
namespace {

TransformerConfig TinyConfig() {
  TransformerConfig c;
  c.vocab_size = 24;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_seq = 16;
  c.seed = 7;
  return c;
}

LmExample MakeExample(std::vector<int> tokens, std::size_t answer_from) {
  LmExample e;
  e.tokens = std::move(tokens);
  e.loss_mask.assign(e.tokens.size(), 0);
  for (std::size_t i = answer_from; i < e.tokens.size(); ++i) {
    e.loss_mask[i] = 1;
  }
  return e;
}

TEST(TransformerTest, CreateValidatesConfig) {
  TransformerConfig c = TinyConfig();
  c.vocab_size = 2;
  EXPECT_FALSE(Transformer::Create(c).ok());
  c = TinyConfig();
  c.d_model = 15;  // not divisible by heads
  EXPECT_FALSE(Transformer::Create(c).ok());
  c = TinyConfig();
  c.n_layers = 0;
  EXPECT_FALSE(Transformer::Create(c).ok());
  EXPECT_TRUE(Transformer::Create(TinyConfig()).ok());
}

TEST(TransformerTest, DeterministicInit) {
  Transformer a = Transformer::Create(TinyConfig()).ValueOrDie();
  Transformer b = Transformer::Create(TinyConfig()).ValueOrDie();
  LmExample e = MakeExample({1, 7, 8, 9, 2}, 2);
  EXPECT_DOUBLE_EQ(a.Loss(e).ValueOrDie(), b.Loss(e).ValueOrDie());
}

TEST(TransformerTest, LossIsFiniteAndNearUniformAtInit) {
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  LmExample e = MakeExample({1, 7, 8, 9, 2}, 2);
  double loss = m.Loss(e).ValueOrDie();
  EXPECT_TRUE(std::isfinite(loss));
  // Roughly ln(vocab) at random init.
  EXPECT_NEAR(loss, std::log(24.0), 1.2);
}

TEST(TransformerTest, RejectsDegenerateExamples) {
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  LmExample too_short = MakeExample({1}, 0);
  EXPECT_FALSE(m.Loss(too_short).ok());
  LmExample no_loss = MakeExample({1, 2, 3}, 3);
  EXPECT_FALSE(m.Loss(no_loss).ok());
  LmExample bad_token = MakeExample({1, 99, 2}, 1);
  EXPECT_FALSE(m.Loss(bad_token).ok());
  LmExample mismatched;
  mismatched.tokens = {1, 2, 3};
  mismatched.loss_mask = {0, 1};
  EXPECT_FALSE(m.Loss(mismatched).ok());
}

TEST(TransformerTest, LongSequencesLeftTruncated) {
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  std::vector<int> tokens(40, 7);
  tokens.back() = 9;
  LmExample e = MakeExample(tokens, 39);
  EXPECT_TRUE(m.Loss(e).ok());
}

TEST(TransformerTest, OverfitsASingleExample) {
  // Behavioural gradient check: the loss on one repeated example must
  // collapse towards zero, which only happens if the hand-written backward
  // pass points downhill through every layer.
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  LmExample e = MakeExample({1, 7, 8, 9, 10, 2}, 2);
  double before = m.Loss(e).ValueOrDie();
  for (int step = 0; step < 120; ++step) {
    ASSERT_TRUE(m.TrainBatch({e}, 3e-3).ok());
  }
  double after = m.Loss(e).ValueOrDie();
  EXPECT_LT(after, before * 0.2)
      << "loss failed to drop under single-example overfit: " << before
      << " -> " << after;
  EXPECT_LT(after, 0.2);
}

TEST(TransformerTest, LearnsACopyTask) {
  // Sequence "<bos> a b <sep> a b <eos>": the model must learn to copy.
  TransformerConfig c = TinyConfig();
  Transformer m = Transformer::Create(c).ValueOrDie();
  Rng rng(5);
  auto make = [&rng](int x, int y) {
    LmExample e;
    e.tokens = {1, x, y, 3, x, y, 2};
    e.loss_mask = {0, 0, 0, 0, 1, 1, 1};
    return e;
  };
  std::vector<LmExample> train;
  for (int i = 0; i < 64; ++i) {
    train.push_back(make(static_cast<int>(rng.UniformInt(6, 23)),
                         static_cast<int>(rng.UniformInt(6, 23))));
  }
  for (int epoch = 0; epoch < 60; ++epoch) {
    for (std::size_t i = 0; i + 8 <= train.size(); i += 8) {
      std::vector<LmExample> batch(train.begin() + i, train.begin() + i + 8);
      ASSERT_TRUE(m.TrainBatch(batch, 2e-3).ok());
    }
  }
  // Evaluate greedy copy on unseen pairs.
  int correct = 0, total = 0;
  for (int x = 6; x <= 10; ++x) {
    for (int y = 11; y <= 15; ++y) {
      std::vector<int> generated =
          m.Greedy({1, x, y, 3}, 3, /*eos=*/2).ValueOrDie();
      ++total;
      if (generated.size() >= 2 && generated[0] == x && generated[1] == y) {
        ++correct;
      }
    }
  }
  EXPECT_GE(correct, total * 3 / 5)
      << "copy accuracy " << correct << "/" << total;
}

TEST(TransformerTest, NextLogitsShapeAndDeterminism) {
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  std::vector<float> l1 = m.NextLogits({1, 7, 8}).ValueOrDie();
  std::vector<float> l2 = m.NextLogits({1, 7, 8}).ValueOrDie();
  ASSERT_EQ(l1.size(), 24u);
  EXPECT_EQ(l1, l2);
  EXPECT_FALSE(m.NextLogits({}).ok());
}

TEST(TransformerTest, GreedyStopsAtEos) {
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  std::vector<int> out = m.Greedy({1, 7}, 5, /*eos=*/2).ValueOrDie();
  EXPECT_LE(out.size(), 5u);
  for (int id : out) EXPECT_NE(id, 2);
}

TEST(TransformerTest, TrainBatchRejectsEmpty) {
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  EXPECT_FALSE(m.TrainBatch({}, 1e-3).ok());
}

TEST(TransformerTest, SaveLoadRoundTrip) {
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  LmExample e = MakeExample({1, 7, 8, 9, 2}, 2);
  ASSERT_TRUE(m.TrainBatch({e}, 1e-3).ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "dimqr_tf_test.bin").string();
  ASSERT_TRUE(m.Save(path).ok());
  Transformer loaded = Transformer::Load(path).ValueOrDie();
  EXPECT_EQ(loaded.num_parameters(), m.num_parameters());
  EXPECT_DOUBLE_EQ(loaded.Loss(e).ValueOrDie(), m.Loss(e).ValueOrDie());
  std::filesystem::remove(path);
}

TEST(TransformerTest, LoadRejectsMissing) {
  EXPECT_FALSE(Transformer::Load("/no/such/model.bin").ok());
}

TEST(TransformerTest, CachedDecoderMatchesFullForward) {
  // Greedy uses the KV-cache decoder; its next-token choice must match the
  // full-forward NextLogits path at every step.
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  LmExample e = MakeExample({1, 7, 8, 9, 10, 2}, 2);
  for (int step = 0; step < 40; ++step) {
    ASSERT_TRUE(m.TrainBatch({e}, 3e-3).ok());
  }
  std::vector<int> prefix = {1, 7, 8};
  std::vector<int> generated = m.Greedy(prefix, 6, /*eos=*/2).ValueOrDie();
  std::vector<int> slow_sequence = prefix;
  std::vector<int> slow_generated;
  for (int step = 0; step < 6; ++step) {
    std::vector<float> logits = m.NextLogits(slow_sequence).ValueOrDie();
    int best = 0;
    for (int v = 1; v < static_cast<int>(logits.size()); ++v) {
      if (logits[v] > logits[best]) best = v;
    }
    if (best == 2) break;
    slow_generated.push_back(best);
    slow_sequence.push_back(best);
  }
  EXPECT_EQ(generated, slow_generated);
}

// ---------------------------------------------------------------------------
// Blocked kernels vs reference kernels
// ---------------------------------------------------------------------------

std::vector<float> RandomMatrix(Rng& rng, int rows, int cols,
                                double zero_rate = 0.1) {
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (float& v : m) {
    v = rng.Bernoulli(zero_rate) ? 0.0f
                                 : static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return m;
}

TEST(KernelsTest, BlockedMatMulBitIdenticalToNaive) {
  Rng rng(11);
  // Deliberately awkward sizes: not multiples of the tile dimensions.
  for (auto [m, k, n] : {std::tuple{1, 1, 1}, std::tuple{7, 33, 129},
                         std::tuple{160, 192, 500}, std::tuple{31, 127, 65}}) {
    std::vector<float> a = RandomMatrix(rng, m, k);
    std::vector<float> b = RandomMatrix(rng, k, n);
    std::vector<float> c_blocked(static_cast<std::size_t>(m) * n, -1.0f);
    std::vector<float> c_naive(static_cast<std::size_t>(m) * n, -1.0f);
    kernels::MatMul(a.data(), b.data(), c_blocked.data(), m, k, n);
    kernels::MatMulNaive(a.data(), b.data(), c_naive.data(), m, k, n);
    ASSERT_EQ(c_blocked, c_naive) << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(KernelsTest, BlockedGradKernelsMatchNaiveNumerically) {
  // The tiled gradient kernels use partial sums, so only near-equality with
  // the reference association is expected (each is individually
  // deterministic).
  Rng rng(12);
  const int m = 37, k = 130, n = 131;
  std::vector<float> a = RandomMatrix(rng, m, k);
  std::vector<float> dc = RandomMatrix(rng, m, n);
  std::vector<float> b = RandomMatrix(rng, k, n);
  std::vector<float> da_blocked(static_cast<std::size_t>(m) * k, 0.5f);
  std::vector<float> da_naive = da_blocked;
  kernels::MatMulGradA(dc.data(), b.data(), da_blocked.data(), m, k, n);
  kernels::MatMulGradANaive(dc.data(), b.data(), da_naive.data(), m, k, n);
  for (std::size_t i = 0; i < da_blocked.size(); ++i) {
    ASSERT_NEAR(da_blocked[i], da_naive[i], 1e-4f) << "dA index " << i;
  }
  std::vector<float> db_blocked(static_cast<std::size_t>(k) * n, -0.5f);
  std::vector<float> db_naive = db_blocked;
  kernels::MatMulGradB(a.data(), dc.data(), db_blocked.data(), m, k, n);
  kernels::MatMulGradBNaive(a.data(), dc.data(), db_naive.data(), m, k, n);
  for (std::size_t i = 0; i < db_blocked.size(); ++i) {
    ASSERT_NEAR(db_blocked[i], db_naive[i], 1e-4f) << "dB index " << i;
  }
}

// ---------------------------------------------------------------------------
// Cross-thread-count training determinism
// ---------------------------------------------------------------------------

/// Trains a fresh model for a few batches at the given pool size and returns
/// (losses..., final parameter checksum bits).
std::vector<double> TrainRunAt(int threads) {
  ScopedParallelism scope(threads);
  Transformer m = Transformer::Create(TinyConfig()).ValueOrDie();
  Rng rng(31);
  std::vector<LmExample> pool;
  for (int i = 0; i < 24; ++i) {
    int x = static_cast<int>(rng.UniformInt(6, 23));
    int y = static_cast<int>(rng.UniformInt(6, 23));
    LmExample e;
    e.tokens = {1, x, y, 3, x, y, 2};
    e.loss_mask = {0, 0, 0, 0, 1, 1, 1};
    pool.push_back(e);
  }
  std::vector<double> out;
  for (int step = 0; step < 6; ++step) {
    std::vector<LmExample> batch(pool.begin() + step * 4,
                                 pool.begin() + step * 4 + 4);
    out.push_back(m.TrainBatch(batch, 2e-3).ValueOrDie());
  }
  LmExample probe = pool.front();
  out.push_back(m.Loss(probe).ValueOrDie());
  return out;
}

TEST(TransformerTest, TrainBatchBitForBitAcrossThreadCounts) {
  std::vector<double> at1 = TrainRunAt(1);
  std::vector<double> at2 = TrainRunAt(2);
  std::vector<double> at8 = TrainRunAt(8);
  // Exact equality of every per-step loss and the post-training probe loss:
  // chunked gradient accumulation must not depend on the pool size.
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

}  // namespace
}  // namespace dimqr::lm
