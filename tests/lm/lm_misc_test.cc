#include <gtest/gtest.h>

#include <filesystem>

#include "lm/mock_llm.h"
#include "lm/ngram_lm.h"
#include "lm/vocab.h"

namespace dimqr::lm {
namespace {

// ---------------------------------------------------------------- Vocab

TEST(VocabTest, SpecialTokensFirst) {
  Vocab v = Vocab::Build({{"a", "b"}});
  EXPECT_EQ(v.TokenOf(SpecialTokens::kPad), "<pad>");
  EXPECT_EQ(v.TokenOf(SpecialTokens::kBos), "<bos>");
  EXPECT_EQ(v.TokenOf(SpecialTokens::kEos), "<eos>");
  EXPECT_EQ(v.TokenOf(SpecialTokens::kSep), "<sep>");
  EXPECT_EQ(v.TokenOf(SpecialTokens::kUnk), "<unk>");
  EXPECT_EQ(v.TokenOf(SpecialTokens::kMask), "[MASK]");
  EXPECT_EQ(v.size(), 8u);
}

TEST(VocabTest, FrequencyOrderAndMinCount) {
  Vocab v = Vocab::Build({{"x", "x", "x", "y", "y", "z"}}, /*min_count=*/2);
  EXPECT_LT(v.Id("x"), v.Id("y"));
  EXPECT_EQ(v.Id("z"), SpecialTokens::kUnk);
}

TEST(VocabTest, EncodeDecodeRoundTrip) {
  Vocab v = Vocab::Build({{"run", "5", "km", "fast"}});
  std::vector<int> ids = v.Encode("run 5 km");
  EXPECT_EQ(v.Decode(ids), "run 5 km");
}

TEST(VocabTest, UnknownWordsMapToUnk) {
  Vocab v = Vocab::Build({{"a"}});
  std::vector<int> ids = v.Encode("a zebra");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[1], SpecialTokens::kUnk);
}

TEST(VocabTest, MaxSizeCaps) {
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 100; ++i) {
    corpus.push_back({"w" + std::to_string(i)});
  }
  Vocab v = Vocab::Build(corpus, 1, 20);
  EXPECT_EQ(v.size(), 20u);
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocab v = Vocab::Build({{"alpha", "beta"}});
  std::string path =
      (std::filesystem::temp_directory_path() / "dimqr_vocab.txt").string();
  ASSERT_TRUE(v.Save(path).ok());
  Vocab loaded = Vocab::Load(path).ValueOrDie();
  EXPECT_EQ(loaded.size(), v.size());
  EXPECT_EQ(loaded.Id("alpha"), v.Id("alpha"));
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- NgramLm

std::vector<std::vector<std::string>> QuantityCorpus() {
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 50; ++i) {
    corpus.push_back({"the", "rope", "is", std::to_string(i + 1), "metres",
                      "long"});
    corpus.push_back({"it", "weighs", std::to_string(i * 2 + 1), "kg"});
    corpus.push_back({"the", "model", "code", "is", "lpui" , "special"});
  }
  return corpus;
}

TEST(NgramLmTest, TrainsAndPredicts) {
  NgramMaskedLm lm = NgramMaskedLm::Train(QuantityCorpus()).ValueOrDie();
  EXPECT_GT(lm.vocab_size(), 5u);
  auto preds = lm.PredictMasked("is", "metres", 3);
  ASSERT_FALSE(preds.empty());
  EXPECT_EQ(preds[0].first, NgramMaskedLm::NumToken())
      << "masked token between 'is' and 'metres' should be numeric";
}

TEST(NgramLmTest, NumericLikelihoodSeparatesContexts) {
  NgramMaskedLm lm = NgramMaskedLm::Train(QuantityCorpus()).ValueOrDie();
  double quantity_ctx = lm.NumericLikelihood("weighs", "kg");
  double code_ctx = lm.NumericLikelihood("code", "special");
  EXPECT_GT(quantity_ctx, code_ctx)
      << "Algorithm 1's filter hinges on this separation";
  EXPECT_GT(quantity_ctx, 0.3);
}

TEST(NgramLmTest, RejectsEmptyCorpusAndBadK) {
  EXPECT_FALSE(NgramMaskedLm::Train({}).ok());
  EXPECT_FALSE(NgramMaskedLm::Train({{"a"}}, 0.0).ok());
}

TEST(NgramLmTest, EdgeContextsWork) {
  NgramMaskedLm lm = NgramMaskedLm::Train(QuantityCorpus()).ValueOrDie();
  EXPECT_FALSE(lm.PredictMasked("", "rope").empty());
  EXPECT_FALSE(lm.PredictMasked("long", "").empty());
}

// ------------------------------------------------------------- MockLlm

TEST(MockLlmTest, PaperTablesTranscribed) {
  EXPECT_EQ(PaperTableVII().size(), 12u);
  EXPECT_EQ(PaperTableIX().size(), 6u);
  // Spot checks against the published numbers.
  const PaperRowVII& gpt4 = PaperTableVII()[2];
  EXPECT_STREQ(gpt4.model, "GPT-4");
  EXPECT_DOUBLE_EQ(gpt4.qe, 73.91);
  EXPECT_DOUBLE_EQ(gpt4.qk_p, 66.67);
  const PaperRowIX& wolfram = PaperTableIX()[1];
  EXPECT_DOUBLE_EQ(wolfram.q_ape210k, 43.55);
}

TEST(MockLlmTest, RosterCoversAllPaperRows) {
  auto models = BuildPaperBaselines();
  EXPECT_EQ(models.size(), 14u);  // 12 Table VII rows + BertGen + LLaMa
}

TEST(MockLlmTest, DeterministicAnswers) {
  MockLlm m("Test", {{"t", {0.7, 0.9}}});
  ChoiceQuestion q{"t", "?", {"a", "b", "c", "d"}, 2, 99};
  EXPECT_EQ(m.AnswerChoice(q).index, m.AnswerChoice(q).index);
}

TEST(MockLlmTest, CalibratedAccuracyConverges) {
  MockLlm m("Test", {{"t", {0.60, 1.0}}});
  int correct = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    ChoiceQuestion q{"t", "?", {"a", "b", "c", "d"}, i % 4,
                     static_cast<std::uint64_t>(i)};
    if (m.AnswerChoice(q).index == q.gold_index) ++correct;
  }
  EXPECT_NEAR(correct / static_cast<double>(n), 0.60, 0.03);
}

TEST(MockLlmTest, RefusalRateHonoured) {
  MockLlm m("Test", {{"t", {0.9, 0.5}}});
  int declined = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    ChoiceQuestion q{"t", "?", {"a", "b"}, 0, static_cast<std::uint64_t>(i)};
    if (!m.AnswerChoice(q).answered()) ++declined;
  }
  EXPECT_NEAR(declined / static_cast<double>(n), 0.5, 0.04);
}

TEST(MockLlmTest, WrongAnswersNeverGold) {
  MockLlm m("Test", {{"t", {0.0, 1.0}}});  // always answers, never correct
  for (int i = 0; i < 200; ++i) {
    ChoiceQuestion q{"t", "?", {"a", "b", "c", "d"}, i % 4,
                     static_cast<std::uint64_t>(i)};
    ChoiceAnswer a = m.AnswerChoice(q);
    ASSERT_TRUE(a.answered());
    EXPECT_NE(a.index, q.gold_index);
    EXPECT_GE(a.index, 0);
    EXPECT_LT(a.index, 4);
  }
}

TEST(MockLlmTest, UnknownTaskNearChance) {
  MockLlm m("Test", {});
  SkillProfile p = m.ProfileFor("never_seen");
  EXPECT_NEAR(p.precision, 0.25, 0.01);
}

TEST(MockLlmTest, TextAnswersFollowProfile) {
  MockLlm m("Test", {{"t", {1.0, 1.0}}});
  TextQuestion q{"t", "prompt", "42 metres", 7};
  EXPECT_EQ(m.AnswerText(q), "42 metres");
  MockLlm never("Never", {{"t", {0.0, 0.0}}});
  EXPECT_EQ(never.AnswerText(q), "");
}

}  // namespace
}  // namespace dimqr::lm
