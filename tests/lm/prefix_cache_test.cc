// Eviction-focused PrefixCache suite: least-recently-touched order,
// EvictAll (the serve-layer load-shedding hook), and the invariant that
// eviction churn never changes a decoded byte at any thread count — it
// only re-pays prefill work.

#include <gtest/gtest.h>

#include <vector>

#include "core/parallel.h"
#include "lm/prefix_cache.h"
#include "lm/transformer.h"

namespace dimqr::lm {
namespace {

TransformerConfig EvictTinyConfig() {
  TransformerConfig c;
  c.vocab_size = 24;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_seq = 16;
  c.seed = 11;
  return c;
}

/// Briefly trained so logits are peaked: near-uniform random-init logits
/// would let bit-identity assertions pass by accident.
Transformer EvictTrainedTiny() {
  Transformer m = Transformer::Create(EvictTinyConfig()).ValueOrDie();
  LmExample e;
  e.tokens = {1, 7, 8, 9, 10, 2};
  e.loss_mask = {0, 0, 1, 1, 1, 1};
  for (int step = 0; step < 30; ++step) {
    EXPECT_TRUE(m.TrainBatch({e}, 3e-3).ok());
  }
  return m;
}

/// One stripe, capacity 2: the smallest cache where "which entry gets
/// evicted" is observable.
PrefixCache::Config TwoEntryConfig() {
  PrefixCache::Config config;
  config.stripes = 1;
  config.entries_per_stripe = 2;
  config.min_fork_tokens = 2;
  return config;
}

TEST(PrefixCacheEvictionTest, LeastRecentlyTouchedGoesFirst) {
  Transformer m = EvictTrainedTiny();
  PrefixCache cache(TwoEntryConfig());
  // Three prompts sharing the 4-token routing stem, distinct tails.
  std::vector<int> a = {1, 7, 8, 9, 10, 10};
  std::vector<int> b = {1, 7, 8, 9, 11, 11};
  std::vector<int> c = {1, 7, 8, 9, 12, 12};
  DecodeState state;
  state.Bind(m.config());
  ASSERT_TRUE(m.Prefill(a, state).ok());
  cache.Insert(a, state);
  state.Rewind();
  ASSERT_TRUE(m.Prefill(b, state).ok());
  cache.Insert(b, state);

  // Touch `a` (a Seed hit refreshes its stamp), then insert `c` into the
  // full stripe: `b` is now the least-recently-touched entry and must be
  // the one evicted.
  DecodeState probe;
  probe.Bind(m.config());
  std::vector<int> a_variant = {1, 7, 8, 9, 10, 10, 5};
  ASSERT_EQ(cache.Seed(a_variant, probe), 6);
  state.Rewind();
  ASSERT_TRUE(m.Prefill(c, state).ok());
  cache.Insert(c, state);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // b's 6-row snapshot is gone: its variant now forks only the 4-token
  // stem shared with the survivors. The touched `a` and fresh `c` still
  // serve their full 6-token prefixes.
  probe.Rewind();
  std::vector<int> b_variant = {1, 7, 8, 9, 11, 11, 5};
  EXPECT_EQ(cache.Seed(b_variant, probe), 4) << "b should have been evicted";
  probe.Rewind();
  EXPECT_EQ(cache.Seed(a_variant, probe), 6) << "a was touched, must survive";
  probe.Rewind();
  std::vector<int> c_variant = {1, 7, 8, 9, 12, 12, 5};
  EXPECT_EQ(cache.Seed(c_variant, probe), 6) << "c was just inserted";
}

TEST(PrefixCacheEvictionTest, ReinsertTouchesInsteadOfDuplicating) {
  Transformer m = EvictTrainedTiny();
  PrefixCache cache(TwoEntryConfig());
  std::vector<int> a = {1, 7, 8, 9, 10, 10};
  std::vector<int> b = {1, 7, 8, 9, 11, 11};
  std::vector<int> c = {1, 7, 8, 9, 12, 12};
  DecodeState state;
  state.Bind(m.config());
  ASSERT_TRUE(m.Prefill(a, state).ok());
  cache.Insert(a, state);
  state.Rewind();
  ASSERT_TRUE(m.Prefill(b, state).ok());
  cache.Insert(b, state);
  // Re-inserting `a` must not evict anything (identical tokens touch the
  // existing entry), and the refreshed stamp makes `b` the next victim.
  state.Rewind();
  ASSERT_TRUE(m.Prefill(a, state).ok());
  cache.Insert(a, state);
  EXPECT_EQ(cache.stats().evictions, 0u);
  state.Rewind();
  ASSERT_TRUE(m.Prefill(c, state).ok());
  cache.Insert(c, state);
  DecodeState probe;
  probe.Bind(m.config());
  std::vector<int> b_variant = {1, 7, 8, 9, 11, 11, 5};
  EXPECT_EQ(cache.Seed(b_variant, probe), 4);
  std::vector<int> a_variant = {1, 7, 8, 9, 10, 10, 5};
  probe.Rewind();
  EXPECT_EQ(cache.Seed(a_variant, probe), 6);
}

TEST(PrefixCacheEvictionTest, EvictAllDropsEverythingAndCounts) {
  Transformer m = EvictTrainedTiny();
  // All five prompts share the routing stem (one stripe), so capacity must
  // exceed five for EvictAll to be the only source of evictions here.
  PrefixCache::Config config;
  config.stripes = 2;
  config.entries_per_stripe = 8;
  config.min_fork_tokens = 2;
  PrefixCache cache(config);
  DecodeState state;
  state.Bind(m.config());
  std::vector<std::vector<int>> prompts;
  for (int tail = 6; tail < 11; ++tail) {
    prompts.push_back({1, 7, 8, 9, tail, tail});
  }
  for (const std::vector<int>& p : prompts) {
    state.Rewind();
    ASSERT_TRUE(m.Prefill(p, state).ok());
    cache.Insert(p, state);
  }
  const std::uint64_t before = cache.stats().evictions;
  std::size_t dropped = cache.EvictAll();
  EXPECT_EQ(dropped, prompts.size());
  EXPECT_EQ(cache.stats().evictions, before + dropped);
  // Every lookup must now miss, and a second sweep has nothing to drop.
  DecodeState probe;
  probe.Bind(m.config());
  for (const std::vector<int>& p : prompts) {
    std::vector<int> variant = p;
    variant.push_back(5);
    probe.Rewind();
    EXPECT_EQ(cache.Seed(variant, probe), 0);
  }
  EXPECT_EQ(cache.EvictAll(), 0u);
}

TEST(PrefixCacheEvictionTest, EvictAllLeavesDecodesBitIdenticalToColdStart) {
  Transformer m = EvictTrainedTiny();
  PrefixCache cache;
  std::vector<std::vector<int>> prompts;
  for (int tail : {11, 12, 9}) {
    prompts.push_back({1, 7, 8, 9, 10, 3, tail});
  }
  std::vector<std::vector<int>> cold;
  for (const std::vector<int>& p : prompts) {
    cold.push_back(m.Greedy(p, 5, /*eos=*/2).ValueOrDie());
  }
  // Warm the cache, shed it, decode again: the post-eviction decode must
  // be byte-identical to cold start (it re-pays prefill, nothing else).
  for (const std::vector<int>& p : prompts) {
    DecodeState s;
    ASSERT_TRUE(m.Greedy(p, 5, 2, s, &cache).ok());
  }
  ASSERT_GT(cache.EvictAll(), 0u);
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    DecodeState s;
    EXPECT_EQ(m.Greedy(prompts[i], 5, 2, s, &cache).ValueOrDie(), cold[i])
        << "prompt " << i;
  }
}

TEST(PrefixCacheEvictionTest, ChurnNeverChangesBytesAtAnyThreadCount) {
  // Capacity 1 per stripe forces an eviction on nearly every insert; the
  // decode results must still equal cold decodes at every thread count.
  Transformer m = EvictTrainedTiny();
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < 24; ++i) {
    prompts.push_back(
        {1, 7, 8, static_cast<int>(6 + (i % 3)), 3, 6 + (i % 11)});
  }
  std::vector<std::vector<int>> cold(prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    cold[i] = m.Greedy(prompts[i], 5, 2).ValueOrDie();
  }
  for (int threads : {1, 2, 4}) {
    PrefixCache::Config config;
    config.stripes = 2;
    config.entries_per_stripe = 1;
    config.min_fork_tokens = 2;
    PrefixCache cache(config);
    ScopedParallelism scope(threads);
    std::vector<std::vector<int>> hot(prompts.size());
    Status status = ParallelFor(
        static_cast<std::int64_t>(prompts.size()),
        [&](std::int64_t begin, std::int64_t end, int) -> Status {
          for (std::int64_t i = begin; i < end; ++i) {
            const auto slot = static_cast<std::size_t>(i);
            DIMQR_ASSIGN_OR_RETURN(
                hot[slot], m.Greedy(prompts[slot], 5, 2,
                                    ThreadLocalDecodeState(), &cache));
          }
          return Status::OK();
        });
    ASSERT_TRUE(status.ok()) << "threads=" << threads;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
      EXPECT_EQ(hot[i], cold[i]) << "threads=" << threads << " prompt " << i;
    }
    EXPECT_GT(cache.stats().evictions, 0u) << "threads=" << threads;
  }
}

TEST(PrefixCacheEvictionTest, EvictAllRacingConcurrentDecodesIsSafe) {
  // The serve-layer shedding path calls EvictAll() while eval fan-out may
  // be mid-decode on other threads. Interleave evictions with concurrent
  // cached decodes: no data race (this suite runs under TSan in CI) and
  // every decoded byte must still equal the cold decode — an eviction can
  // only cost a re-prefill, never change an output.
  Transformer m = EvictTrainedTiny();
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < 32; ++i) {
    prompts.push_back(
        {1, 7, 8, static_cast<int>(6 + (i % 4)), 3, 6 + (i % 9)});
  }
  std::vector<std::vector<int>> cold(prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    cold[i] = m.Greedy(prompts[i], 5, 2).ValueOrDie();
  }
  PrefixCache cache;
  ScopedParallelism scope(4);
  std::vector<std::vector<int>> hot(prompts.size());
  Status status = ParallelFor(
      static_cast<std::int64_t>(prompts.size()),
      [&](std::int64_t begin, std::int64_t end, int) -> Status {
        for (std::int64_t i = begin; i < end; ++i) {
          const auto slot = static_cast<std::size_t>(i);
          // Every few items one lane plays the shedding server.
          if (slot % 5 == 0) (void)cache.EvictAll();
          DIMQR_ASSIGN_OR_RETURN(
              hot[slot], m.Greedy(prompts[slot], 5, 2,
                                  ThreadLocalDecodeState(), &cache));
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(hot[i], cold[i]) << "prompt " << i;
  }
}

}  // namespace
}  // namespace dimqr::lm
