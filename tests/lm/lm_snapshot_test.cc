// Snapshot equivalence for the LM artifacts: a Vocab, Transformer or
// NgramMaskedLm written to an arena and read back (through the container,
// so CRC and section plumbing are in the loop) must behave bit-for-bit
// like the original — same ids, same logits, same masked predictions —
// while the read side aliases the snapshot bytes instead of copying them.
// Also pins the mutate-after-load contract: training a snapshot-backed
// Transformer detaches it onto owned storage first.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "lm/ngram_lm.h"
#include "lm/transformer.h"
#include "lm/vocab.h"

namespace dimqr::lm {
namespace {

/// Packs one WriteTo-style payload into a single-section container and
/// reopens it, so every round trip exercises the real file format.
template <typename WriteFn>
std::shared_ptr<const snapshot::Snapshot> RoundTrip(WriteFn&& write) {
  snapshot::ArenaWriter arena;
  write(arena);
  snapshot::SnapshotWriter writer;
  EXPECT_TRUE(writer.AddSection("payload", std::move(arena)).ok());
  auto snap = snapshot::Snapshot::FromBytes(writer.Serialize());
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return snap.ValueOrDie();
}

snapshot::ArenaReader PayloadReader(
    const std::shared_ptr<const snapshot::Snapshot>& snap) {
  auto section = snap->Section("payload");
  EXPECT_TRUE(section.ok());
  return snapshot::ArenaReader(section.ValueOrDie());
}

TEST(LmSnapshotTest, VocabRoundTripPreservesIdsBothWays) {
  std::vector<std::vector<std::string>> texts = {
      {"convert", "12", "km", "to", "miles"},
      {"km", "per", "hour", "km", "speed"},
  };
  Vocab original = Vocab::Build(texts, /*min_count=*/1, /*max_size=*/100);
  auto snap = RoundTrip([&](snapshot::ArenaWriter& w) { original.WriteTo(w); });
  snapshot::ArenaReader reader = PayloadReader(snap);
  auto loaded = Vocab::FromArena(reader, snap);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Vocab& v = loaded.ValueOrDie();
  ASSERT_EQ(v.size(), original.size());
  for (std::size_t id = 0; id < original.size(); ++id) {
    EXPECT_EQ(v.TokenOf(static_cast<int>(id)),
              original.TokenOf(static_cast<int>(id)));
  }
  for (const auto& sentence : texts) {
    for (const std::string& token : sentence) {
      EXPECT_EQ(v.Id(token), original.Id(token)) << token;
    }
  }
  EXPECT_EQ(v.Id("never-seen-token"), SpecialTokens::kUnk);
}

TEST(LmSnapshotTest, VocabFromArenaRejectsMissingSpecials) {
  // An arena holding a symbol table WITHOUT the special tokens at the
  // front is not a vocab; FromArena must say so, not misbehave later.
  SymbolTable syms;
  syms.Intern("just");
  syms.Intern("words");
  auto snap = RoundTrip([&](snapshot::ArenaWriter& w) { syms.WriteTo(w); });
  snapshot::ArenaReader reader = PayloadReader(snap);
  EXPECT_FALSE(Vocab::FromArena(reader, snap).ok());
}

TransformerConfig SmallConfig() {
  TransformerConfig c;
  c.vocab_size = 32;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_seq = 24;
  c.seed = 5;
  return c;
}

std::vector<float> LogitsOf(const Transformer& model,
                            const std::vector<int>& prompt) {
  DecodeState state;
  state.Bind(model.config());
  EXPECT_TRUE(model.Prefill(prompt, state).ok());
  return std::vector<float>(state.logits().begin(), state.logits().end());
}

TEST(LmSnapshotTest, TransformerRoundTripIsBitIdentical) {
  Transformer original = Transformer::Create(SmallConfig()).ValueOrDie();
  LmExample example;
  example.tokens = {1, 7, 8, 9, 2};
  example.loss_mask = {0, 1, 1, 1, 1};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(original.TrainBatch({example}, 1e-3).ok());
  }

  auto snap =
      RoundTrip([&](snapshot::ArenaWriter& w) { original.WriteTo(w); });
  snapshot::ArenaReader reader = PayloadReader(snap);
  auto loaded = Transformer::FromArena(reader, snap);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Transformer& model = loaded.ValueOrDie();
  EXPECT_TRUE(model.borrowed());
  EXPECT_EQ(model.num_parameters(), original.num_parameters());

  const std::vector<int> prompt = {1, 7, 8};
  std::vector<float> want = LogitsOf(original, prompt);
  std::vector<float> got = LogitsOf(model, prompt);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i]) << "logit " << i << " differs";
  }
}

TEST(LmSnapshotTest, TransformerWeightsAliasSnapshotUntilTrained) {
  Transformer original = Transformer::Create(SmallConfig()).ValueOrDie();
  auto snap =
      RoundTrip([&](snapshot::ArenaWriter& w) { original.WriteTo(w); });
  snapshot::ArenaReader reader = PayloadReader(snap);
  Transformer model =
      Transformer::FromArena(reader, snap).ValueOrDie();
  ASSERT_TRUE(model.borrowed());

  // Training must transparently detach onto owned storage and still match
  // the same training step applied to the always-owned original.
  LmExample example;
  example.tokens = {1, 10, 11, 2};
  example.loss_mask = {0, 1, 1, 1};
  auto loss_owned = original.TrainBatch({example}, 1e-3);
  auto loss_snap = model.TrainBatch({example}, 1e-3);
  ASSERT_TRUE(loss_owned.ok());
  ASSERT_TRUE(loss_snap.ok());
  EXPECT_FALSE(model.borrowed());
  EXPECT_EQ(loss_owned.ValueOrDie(), loss_snap.ValueOrDie());

  const std::vector<int> prompt = {1, 10};
  std::vector<float> want = LogitsOf(original, prompt);
  std::vector<float> got = LogitsOf(model, prompt);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "post-train logit " << i << " differs";
  }
}

TEST(LmSnapshotTest, TransformerFromArenaRejectsShortWeights) {
  Transformer original = Transformer::Create(SmallConfig()).ValueOrDie();
  snapshot::ArenaWriter arena;
  original.WriteTo(arena);
  std::vector<std::byte> blob = std::move(arena).Take();
  // Clip the arena so the last weight array runs off the end.
  std::span<const std::byte> clipped(blob.data(), blob.size() - 64);
  snapshot::ArenaReader reader(clipped);
  EXPECT_FALSE(Transformer::FromArena(reader).ok());
}

TEST(LmSnapshotTest, NgramRoundTripPredictsIdentically) {
  std::vector<std::vector<std::string>> sentences = {
      {"the", "car", "drove", "12", "km", "north"},
      {"the", "train", "covered", "300", "km", "today"},
      {"a", "car", "needs", "40", "litres", "of", "fuel"},
  };
  NgramMaskedLm original = NgramMaskedLm::Train(sentences).ValueOrDie();
  auto snap =
      RoundTrip([&](snapshot::ArenaWriter& w) { original.WriteTo(w); });
  snapshot::ArenaReader reader = PayloadReader(snap);
  auto loaded = NgramMaskedLm::FromArena(reader, snap);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const NgramMaskedLm& lm = loaded.ValueOrDie();
  EXPECT_EQ(lm.vocab_size(), original.vocab_size());

  for (const auto& [left, right] :
       std::vector<std::pair<std::string, std::string>>{
           {"the", "drove"}, {"car", ""}, {"", "km"}, {"40", "of"}}) {
    auto want = original.PredictMasked(left, right, /*top_k=*/5);
    auto got = lm.PredictMasked(left, right, /*top_k=*/5);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].first, got[i].first);
      EXPECT_EQ(want[i].second, got[i].second)
          << "score for '" << want[i].first << "' differs";
    }
  }
  EXPECT_EQ(original.NumericLikelihood("drove", "km"),
            lm.NumericLikelihood("drove", "km"));
}

TEST(LmSnapshotTest, NgramFromArenaRejectsCorruptBigrams) {
  std::vector<std::vector<std::string>> sentences = {
      {"one", "two", "three", "two", "one"}};
  NgramMaskedLm original = NgramMaskedLm::Train(sentences).ValueOrDie();
  snapshot::ArenaWriter arena;
  original.WriteTo(arena);
  std::vector<std::byte> blob = std::move(arena).Take();
  // Flip a byte in the tail of the arena (bigram key region): the loader's
  // monotonicity / id-range validation must reject it cleanly.
  bool rejected = false;
  for (std::size_t back = 8; back <= 128 && !rejected; back += 8) {
    if (back > blob.size()) break;
    std::vector<std::byte> bad = blob;
    bad[bad.size() - back] ^= std::byte{0xFF};
    snapshot::ArenaReader reader{std::span<const std::byte>(bad)};
    rejected = !NgramMaskedLm::FromArena(reader).ok();
  }
  EXPECT_TRUE(rejected)
      << "no tail-byte corruption was caught by FromArena validation";
}

}  // namespace
}  // namespace dimqr::lm
