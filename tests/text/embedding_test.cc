#include "text/embedding.h"

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "text/corpus.h"

namespace dimqr::text {
namespace {

/// Builds a small two-topic corpus: temperature words vs length words.
std::vector<std::vector<std::string>> TwoTopicCorpus() {
  std::vector<TopicCluster> clusters = {
      {"temperature",
       {"temperature", "celsius", "kelvin", "fahrenheit", "thermometer",
        "heat", "degree", "warm"}},
      {"length",
       {"length", "metre", "kilometre", "centimetre", "distance", "ruler",
        "tall", "far"}},
  };
  CorpusOptions opt;
  opt.sentences_per_cluster = 400;
  opt.seed = 11;
  return GenerateClusterCorpus(clusters, opt);
}

TEST(EmbeddingTest, TrainRejectsBadConfig) {
  EmbeddingConfig cfg;
  cfg.dimension = 0;
  EXPECT_FALSE(Embedding::Train({{"a", "b"}}, cfg).ok());
}

TEST(EmbeddingTest, TrainRejectsEmptyCorpus) {
  EmbeddingConfig cfg;
  EXPECT_FALSE(Embedding::Train({}, cfg).ok());
}

TEST(EmbeddingTest, VocabRespectsMinCount) {
  EmbeddingConfig cfg;
  cfg.min_count = 2;
  cfg.epochs = 1;
  std::vector<std::vector<std::string>> corpus = {
      {"aa", "bb", "aa", "bb"}, {"aa", "bb", "rare"}};
  Embedding e = Embedding::Train(corpus, cfg).ValueOrDie();
  EXPECT_TRUE(e.Contains("aa"));
  EXPECT_TRUE(e.Contains("bb"));
  EXPECT_FALSE(e.Contains("rare"));
}

TEST(EmbeddingTest, DeterministicForFixedSeed) {
  auto corpus = TwoTopicCorpus();
  EmbeddingConfig cfg;
  cfg.epochs = 1;
  Embedding a = Embedding::Train(corpus, cfg).ValueOrDie();
  Embedding b = Embedding::Train(corpus, cfg).ValueOrDie();
  ASSERT_EQ(a.vocab_size(), b.vocab_size());
  EXPECT_DOUBLE_EQ(a.CosineSimilarity("celsius", "kelvin"),
                   b.CosineSimilarity("celsius", "kelvin"));
}

TEST(EmbeddingTest, BitForBitIdenticalAcrossThreadCounts) {
  // SGNS gradients map in parallel against batch-start parameters and apply
  // in sentence order, so the vectors must match exactly at any pool size.
  auto corpus = TwoTopicCorpus();
  EmbeddingConfig cfg;
  cfg.epochs = 1;
  auto train_at = [&](int threads) {
    ScopedParallelism scope(threads);
    return Embedding::Train(corpus, cfg).ValueOrDie();
  };
  Embedding at1 = train_at(1);
  Embedding at2 = train_at(2);
  Embedding at8 = train_at(8);
  ASSERT_EQ(at1.vocab_size(), at2.vocab_size());
  ASSERT_EQ(at1.vocab_size(), at8.vocab_size());
  const auto d = static_cast<std::size_t>(at1.dimension());
  for (const std::string& word : at1.words()) {
    const float* a = at1.VectorOf(word);
    const float* b = at2.VectorOf(word);
    const float* c = at8.VectorOf(word);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    for (std::size_t k = 0; k < d; ++k) {
      ASSERT_EQ(a[k], b[k]) << word << " dim " << k;
      ASSERT_EQ(a[k], c[k]) << word << " dim " << k;
    }
  }
}

TEST(EmbeddingTest, InTopicSimilarityBeatsCrossTopic) {
  Embedding e = Embedding::Train(TwoTopicCorpus(), EmbeddingConfig{})
                    .ValueOrDie();
  double in_topic = e.CosineSimilarity("celsius", "thermometer");
  double cross_topic = e.CosineSimilarity("celsius", "kilometre");
  EXPECT_GT(in_topic, cross_topic);
}

TEST(EmbeddingTest, SelfSimilarityIsOne) {
  Embedding e = Embedding::Train(TwoTopicCorpus(), EmbeddingConfig{})
                    .ValueOrDie();
  EXPECT_DOUBLE_EQ(e.CosineSimilarity("metre", "metre"), 1.0);
}

TEST(EmbeddingTest, OovFallsBackToStringSimilarity) {
  Embedding e = Embedding::Train(TwoTopicCorpus(), EmbeddingConfig{})
                    .ValueOrDie();
  // "metres" is OOV; string fallback should still rank it near "metre".
  double oov_close = e.CosineSimilarity("metres", "metre");
  double oov_far = e.CosineSimilarity("metres", "heat");
  EXPECT_GT(oov_close, oov_far);
}

TEST(EmbeddingTest, VectorOfReturnsNullForOov) {
  Embedding e = Embedding::Train(TwoTopicCorpus(), EmbeddingConfig{})
                    .ValueOrDie();
  EXPECT_EQ(e.VectorOf("nonexistent_word"), nullptr);
  EXPECT_NE(e.VectorOf("metre"), nullptr);
}

TEST(EmbeddingTest, MostSimilarFindsTopicNeighbours) {
  Embedding e = Embedding::Train(TwoTopicCorpus(), EmbeddingConfig{})
                    .ValueOrDie();
  auto sims = e.MostSimilar("celsius", 5);
  ASSERT_EQ(sims.size(), 5u);
  // At least 3 of the 5 nearest neighbours should be temperature words.
  int temp_hits = 0;
  for (const auto& [w, s] : sims) {
    if (w == "kelvin" || w == "fahrenheit" || w == "thermometer" ||
        w == "temperature" || w == "heat" || w == "degree" || w == "warm") {
      ++temp_hits;
    }
  }
  EXPECT_GE(temp_hits, 3) << "nearest neighbours leak across topics";
}

TEST(EmbeddingTest, MostSimilarOovEmpty) {
  Embedding e = Embedding::Train(TwoTopicCorpus(), EmbeddingConfig{})
                    .ValueOrDie();
  EXPECT_TRUE(e.MostSimilar("zzzz").empty());
}

TEST(CorpusTest, GeneratesRequestedVolume) {
  std::vector<TopicCluster> clusters = {{"t", {"a", "b", "c"}}};
  CorpusOptions opt;
  opt.sentences_per_cluster = 50;
  auto corpus = GenerateClusterCorpus(clusters, opt);
  EXPECT_EQ(corpus.size(), 50u);
  for (const auto& s : corpus) {
    EXPECT_GE(s.size(), 3u);
  }
}

TEST(CorpusTest, DeterministicForSeed) {
  std::vector<TopicCluster> clusters = {{"t", {"a", "b", "c"}},
                                        {"u", {"x", "y"}}};
  CorpusOptions opt;
  opt.seed = 99;
  auto c1 = GenerateClusterCorpus(clusters, opt);
  auto c2 = GenerateClusterCorpus(clusters, opt);
  EXPECT_EQ(c1, c2);
}

TEST(CorpusTest, EmptyClustersSkipped) {
  std::vector<TopicCluster> clusters = {{"empty", {}}};
  EXPECT_TRUE(GenerateClusterCorpus(clusters, CorpusOptions{}).empty());
}

}  // namespace
}  // namespace dimqr::text
