#include "text/number_scanner.h"

#include <gtest/gtest.h>

namespace dimqr::text {
namespace {

TEST(NumberScannerTest, FindsSimpleIntegers) {
  auto m = ScanNumbers("there are 42 apples and 7 pears");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0].value, 42.0);
  EXPECT_DOUBLE_EQ(m[1].value, 7.0);
  EXPECT_EQ(m[0].TextIn("there are 42 apples and 7 pears"), "42");
}

TEST(NumberScannerTest, FindsDecimals) {
  auto m = ScanNumbers("LeBron James's height is 2.06 meters");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m[0].value, 2.06);
  ASSERT_TRUE(m[0].exact.has_value());
  EXPECT_EQ(*m[0].exact, Rational::Of(103, 50).ValueOrDie());
}

TEST(NumberScannerTest, FindsScientificNotation) {
  auto m = ScanNumbers("light travels 3e8 m/s or 1.5E-3 km/ms");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0].value, 3e8);
  EXPECT_DOUBLE_EQ(m[1].value, 1.5e-3);
}

TEST(NumberScannerTest, PercentDividesBy100) {
  auto m = ScanNumbers("a pesticide containing 20% of agent");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_TRUE(m[0].is_percent);
  EXPECT_DOUBLE_EQ(m[0].value, 0.2);
  EXPECT_EQ(*m[0].exact, Rational::Of(1, 5).ValueOrDie());
}

TEST(NumberScannerTest, SimpleFractions) {
  auto m = ScanNumbers("add 3/4 cup of flour");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_TRUE(m[0].is_fraction);
  EXPECT_DOUBLE_EQ(m[0].value, 0.75);
}

TEST(NumberScannerTest, CommaGroupedIntegers) {
  auto m = ScanNumbers("the city has 1,250,000 residents");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m[0].value, 1250000.0);
}

TEST(NumberScannerTest, CommaNotGroupingStaysSeparate) {
  auto m = ScanNumbers("pick 3,14 then");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0].value, 3.0);
  EXPECT_DOUBLE_EQ(m[1].value, 14.0);
}

TEST(NumberScannerTest, NegativeNumbers) {
  auto m = ScanNumbers("it cooled to -40 degrees");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m[0].value, -40.0);
}

TEST(NumberScannerTest, DeviceCodeDigitIsExtractedLikeThePaper) {
  // Algorithm 1's false-positive example: the heuristic annotator DOES
  // extract "1" from the device code "LPUI-1T" (misread as "1 Tesla");
  // the PLM filter in dimeval::SemiAutoAnnotate removes it later.
  auto m = ScanNumbers("the device LPUI-1T shipped");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m[0].value, 1.0);  // hyphen read as hyphen, not minus
}

TEST(NumberScannerTest, DigitsInsideWordsSkipped) {
  auto m = ScanNumbers("see iso9001 and h2o");
  EXPECT_TRUE(m.empty());
}

TEST(NumberScannerTest, SpansAreByteAccurate) {
  std::string s = "x = 12.5% done";
  auto m = ScanNumbers(s);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(s.substr(m[0].begin, m[0].end - m[0].begin), "12.5%");
}

TEST(NumberScannerTest, MultipleMentionsNonOverlapping) {
  auto m = ScanNumbers("convert 0.1 poundal into 5 dyn/cm units");
  // "5 dyn/cm": the 5 is standalone; "dyn/cm" contains no digits.
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0].value, 0.1);
  EXPECT_DOUBLE_EQ(m[1].value, 5.0);
}

TEST(NumberScannerTest, FractionNotDateLike) {
  auto m = ScanNumbers("on 3/4/2024 we met");
  // "3/4/2024" must not parse as the fraction 3/4.
  for (const auto& mention : m) {
    EXPECT_FALSE(mention.is_fraction);
  }
}

TEST(NumberScannerTest, TrailingDotNotDecimal) {
  auto m = ScanNumbers("it weighs 5. Then we left");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m[0].value, 5.0);
  EXPECT_EQ(m[0].end, 11u);  // excludes the '.'
}

TEST(ParseNumberTest, WholeStringOnly) {
  EXPECT_TRUE(ParseNumber("42").has_value());
  EXPECT_TRUE(ParseNumber("2.06").has_value());
  EXPECT_TRUE(ParseNumber("20%").has_value());
  EXPECT_FALSE(ParseNumber("42 m").has_value());
  EXPECT_FALSE(ParseNumber("m").has_value());
  EXPECT_FALSE(ParseNumber("").has_value());
}

TEST(ParseNumberTest, ZeroDenominatorFractionRejected) {
  // "3/0" is not a valid numeric mention.
  EXPECT_FALSE(ParseNumber("3/0").has_value());
}

struct ScanCase {
  const char* text;
  double expected;
};

class NumberValueSweep : public ::testing::TestWithParam<ScanCase> {};

TEST_P(NumberValueSweep, ParsesToExpectedValue) {
  const ScanCase& c = GetParam();
  auto m = ScanNumbers(c.text);
  ASSERT_EQ(m.size(), 1u) << c.text;
  EXPECT_DOUBLE_EQ(m[0].value, c.expected) << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Forms, NumberValueSweep,
    ::testing::Values(ScanCase{"x 0.5 y", 0.5}, ScanCase{"x 100 y", 100.0},
                      ScanCase{"x 1e3 y", 1000.0},
                      ScanCase{"x 2.5e-2 y", 0.025},
                      ScanCase{"x 50% y", 0.5}, ScanCase{"x 1/8 y", 0.125},
                      ScanCase{"x +7 y", 7.0}, ScanCase{"x -2.5 y", -2.5},
                      ScanCase{"x 10,000 y", 10000.0}));

}  // namespace
}  // namespace dimqr::text
