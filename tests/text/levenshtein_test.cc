#include "text/levenshtein.h"

#include <gtest/gtest.h>

namespace dimqr::text {
namespace {

TEST(LevenshteinTest, IdenticalStringsZeroDistance) {
  EXPECT_EQ(LevenshteinDistance("metre", "metre"), 0u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
}

TEST(LevenshteinTest, EmptyVsNonEmpty) {
  EXPECT_EQ(LevenshteinDistance("", "km"), 2u);
  EXPECT_EQ(LevenshteinDistance("km", ""), 2u);
}

TEST(LevenshteinTest, ClassicCases) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("meter", "metre"), 2u);
  EXPECT_EQ(LevenshteinDistance("dyn/cm", "dyne/cm"), 1u);
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_EQ(LevenshteinDistance("gram", "gramme"),
            LevenshteinDistance("gramme", "gram"));
}

TEST(LevenshteinTest, TriangleInequality) {
  std::string a = "newton", b = "nwton", c = "newtons";
  EXPECT_LE(LevenshteinDistance(a, c),
            LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
}

TEST(LevenshteinTest, CountsCodePointsNotBytes) {
  // Each CJK char is 3 bytes; distance must be in code points.
  EXPECT_EQ(LevenshteinDistance("千克", "千米"), 1u);
  EXPECT_EQ(LevenshteinDistance("千克", "克"), 1u);
}

TEST(LevenshteinTest, SimilarityRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("km", "km"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("ab", "xy"), 0.0);
  double s = LevenshteinSimilarity("meter", "metre");
  EXPECT_GT(s, 0.5);
  EXPECT_LT(s, 1.0);
}

TEST(LevenshteinTest, SimilarityIgnoreCase) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarityIgnoreCase("KM", "km"), 1.0);
  EXPECT_LT(LevenshteinSimilarity("KM", "km"), 1.0);
}

TEST(LevenshteinTest, CloserStringMoreSimilar) {
  EXPECT_GT(LevenshteinSimilarity("kilometer", "kilometre"),
            LevenshteinSimilarity("kilometer", "gram"));
}

}  // namespace
}  // namespace dimqr::text
