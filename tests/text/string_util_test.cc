#include "text/string_util.h"

#include <gtest/gtest.h>

namespace dimqr::text {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("KiloMETRE"), "kilometre");
  EXPECT_EQ(ToLowerAscii("m/s^2"), "m/s^2");
  EXPECT_EQ(ToLowerAscii("千克ABC"), "千克abc");
}

TEST(StringUtilTest, EqualsIgnoreAsciiCase) {
  EXPECT_TRUE(EqualsIgnoreAsciiCase("KM", "km"));
  EXPECT_TRUE(EqualsIgnoreAsciiCase("", ""));
  EXPECT_FALSE(EqualsIgnoreAsciiCase("km", "kmh"));
  EXPECT_FALSE(EqualsIgnoreAsciiCase("mw", "mv"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  std::vector<std::string> parts = SplitWhitespace("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("kilometre", "kilo"));
  EXPECT_FALSE(StartsWith("m", "milli"));
  EXPECT_TRUE(EndsWith("metre", "tre"));
  EXPECT_FALSE(EndsWith("m", "metre"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("1 km and 2 km", "km", "mile"), "1 mile and 2 mile");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringUtilTest, Utf8CodePointsSegmentsMixedText) {
  std::vector<std::string> cps = Utf8CodePoints("a千克b");
  ASSERT_EQ(cps.size(), 4u);
  EXPECT_EQ(cps[0], "a");
  EXPECT_EQ(cps[1], "千");
  EXPECT_EQ(cps[2], "克");
  EXPECT_EQ(cps[3], "b");
}

TEST(StringUtilTest, Utf8CodePointsSurvivesInvalidBytes) {
  std::string junk = "a\xC3";
  std::vector<std::string> cps = Utf8CodePoints(junk);
  EXPECT_EQ(cps.size(), 2u);
}

TEST(StringUtilTest, Utf8Length) {
  EXPECT_EQ(Utf8Length("abc"), 3u);
  EXPECT_EQ(Utf8Length("千克"), 2u);
  EXPECT_EQ(Utf8Length(""), 0u);
  EXPECT_EQ(Utf8Length("a千b"), 3u);
}

}  // namespace
}  // namespace dimqr::text
