#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace dimqr::text {
namespace {

TEST(TokenizerTest, SplitsOnWhitespace) {
  auto toks = Tokenize("the quick fox");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "the");
  EXPECT_EQ(toks[1].text, "quick");
  EXPECT_EQ(toks[2].text, "fox");
}

TEST(TokenizerTest, SpansMatchSource) {
  std::string s = "run 5 km/h";
  auto toks = Tokenize(s);
  for (const Token& t : toks) {
    EXPECT_EQ(s.substr(t.begin, t.end - t.begin), t.text);
  }
}

TEST(TokenizerTest, NumbersKeepDecimals) {
  auto toks = Tokenize("height 2.06 meters");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "2.06");
  EXPECT_EQ(toks[1].kind, Token::Kind::kNumber);
}

TEST(TokenizerTest, PunctuationSeparated) {
  auto toks = Tokenize("m/s, fast!");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].text, "m");
  EXPECT_EQ(toks[1].text, "/");
  EXPECT_EQ(toks[1].kind, Token::Kind::kPunct);
  EXPECT_EQ(toks[2].text, "s");
  EXPECT_EQ(toks[3].text, ",");
  EXPECT_EQ(toks[4].text, "fast");
  EXPECT_EQ(toks[5].text, "!");
}

TEST(TokenizerTest, CjkCharactersAreSingleTokens) {
  auto toks = Tokenize("重150千克");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "重");
  EXPECT_EQ(toks[0].kind, Token::Kind::kCjk);
  EXPECT_EQ(toks[1].text, "150");
  EXPECT_EQ(toks[1].kind, Token::Kind::kNumber);
  EXPECT_EQ(toks[2].text, "千");
  EXPECT_EQ(toks[3].text, "克");
}

TEST(TokenizerTest, TrailingSentenceDotNotPartOfNumber) {
  auto toks = Tokenize("it is 5.");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].text, "5");
  EXPECT_EQ(toks[3].text, ".");
}

TEST(TokenizerTest, AlphanumericWordsStayWhole) {
  auto toks = Tokenize("model LPUI1T v2");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "LPUI1T");
  EXPECT_EQ(toks[1].kind, Token::Kind::kWord);
  EXPECT_EQ(toks[2].text, "v2");
  EXPECT_EQ(toks[2].kind, Token::Kind::kWord);
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n").empty());
}

TEST(TokenizerTest, TokenizeLowerLowercases) {
  auto toks = TokenizeLower("Run 5 KM");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "run");
  EXPECT_EQ(toks[2], "km");
}

}  // namespace
}  // namespace dimqr::text
