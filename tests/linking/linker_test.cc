#include "linking/linker.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dimqr::linking {
namespace {

/// Shared linker: embedding training is the expensive part, do it once.
const UnitLinker& Linker() {
  static const std::shared_ptr<const UnitLinker> kLinker = [] {
    auto kb = kb::DimUnitKB::Build().ValueOrDie();
    return UnitLinker::Build(kb).ValueOrDie();
  }();
  return *kLinker;
}

TEST(UnitLinkerTest, ExactSymbolLinks) {
  const kb::UnitRecord* u =
      Linker().Best("km", "the road is 5 km long").ValueOrDie();
  EXPECT_EQ(u->id, "KiloM");
}

TEST(UnitLinkerTest, ExactLabelLinks) {
  const kb::UnitRecord* u =
      Linker().Best("kilometre", "distance travelled").ValueOrDie();
  EXPECT_EQ(u->id, "KiloM");
}

TEST(UnitLinkerTest, AliasSpellingLinks) {
  // American spelling is an alias.
  const kb::UnitRecord* u =
      Linker().Best("kilometers", "the marathon distance").ValueOrDie();
  EXPECT_EQ(u->id, "KiloM");
}

TEST(UnitLinkerTest, PaperFig1DynPerCm) {
  // Fig. 1: "dyne/cm" must link to the force-per-length compound.
  const kb::UnitRecord* u =
      Linker().Best("dyn/cm", "surface tension of the liquid").ValueOrDie();
  EXPECT_EQ(u->id, "DYN-PER-CentiM");
  EXPECT_EQ(u->dimension.ToFormula(), "MT-2");
}

TEST(UnitLinkerTest, FuzzyMisspellingLinks) {
  const kb::UnitRecord* u =
      Linker().Best("kilometr", "drove a long distance").ValueOrDie();
  EXPECT_EQ(u->id, "KiloM");
}

TEST(UnitLinkerTest, ChineseUnitLinks) {
  const kb::UnitRecord* u = Linker().Best("千克", "质量").ValueOrDie();
  EXPECT_EQ(u->id, "KiloGM");
}

TEST(UnitLinkerTest, NoCandidateForGarbage) {
  EXPECT_EQ(Linker().Best("xyzzyplugh", "no context").status().code(),
            StatusCode::kNotFound);
}

TEST(UnitLinkerTest, CandidatesSortedDescending) {
  std::vector<LinkCandidate> c = Linker().Link("m", "it is 5 m long");
  ASSERT_GT(c.size(), 1u);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_GE(c[i - 1].score, c[i].score);
  }
}

TEST(UnitLinkerTest, CandidateCountCapped) {
  std::vector<LinkCandidate> c = Linker().Link("m", "length");
  EXPECT_LE(c.size(), Linker().config().max_candidates);
}

TEST(UnitLinkerTest, PaperContextExampleDegree) {
  // Section III-B: "degree" in different contexts might correspond to
  // "degrees Celsius" or "diopter" (we check temperature vs angle).
  const kb::UnitRecord* temp =
      Linker()
          .Best("degrees",
                "the weather was hot, the thermometer showed 30 degrees")
          .ValueOrDie();
  const kb::UnitRecord* angle =
      Linker()
          .Best("degrees", "rotate the triangle by 30 degrees of turn")
          .ValueOrDie();
  EXPECT_EQ(temp->quantity_kind, "ThermodynamicTemperature")
      << "temperature context should pick " << temp->id;
  EXPECT_EQ(angle->quantity_kind, "PlaneAngle") << angle->id;
}

TEST(UnitLinkerTest, ContextDisambiguatesPoundVsPoundForce) {
  const kb::UnitRecord* mass =
      Linker().Best("pounds", "the baby weighs seven pounds").ValueOrDie();
  EXPECT_EQ(mass->dimension, dims::Mass());
}

TEST(UnitLinkerTest, PriorPrefersCommonUnits) {
  // "m" matches metre, mile symbol? no — but also "M" molar and milli-
  // prefixed symbols fuzzily; the frequency prior should keep metre first.
  const kb::UnitRecord* u = Linker().Best("m", "it is long").ValueOrDie();
  EXPECT_EQ(u->id, "M");
}

TEST(UnitLinkerTest, FactorsExposedOnCandidates) {
  std::vector<LinkCandidate> c =
      Linker().Link("km", "the distance of the trip");
  ASSERT_FALSE(c.empty());
  const LinkCandidate& top = c.front();
  EXPECT_GT(top.pr_mention, 0.9);
  EXPECT_GT(top.pr_prior, 0.0);
  EXPECT_LE(top.pr_prior, 1.0);
  EXPECT_GE(top.pr_context, 0.0);
  EXPECT_LE(top.pr_context, 1.0);
  double gamma = Linker().config().mention_sharpness;
  EXPECT_NEAR(top.score,
              std::pow(top.pr_mention, gamma) * top.pr_prior * top.pr_context,
              1e-12);
}

TEST(UnitLinkerTest, AblationTogglesChangeScore) {
  auto kb = kb::DimUnitKB::Build().ValueOrDie();
  LinkerConfig no_context;
  no_context.use_context = false;
  no_context.corpus_sentences_per_cluster = 10;  // fast training
  auto linker = UnitLinker::Build(kb, no_context).ValueOrDie();
  std::vector<LinkCandidate> c = linker->Link("km", "distance");
  ASSERT_FALSE(c.empty());
  EXPECT_NEAR(c.front().score,
              std::pow(c.front().pr_mention, no_context.mention_sharpness) *
                  c.front().pr_prior,
              1e-12);
}

TEST(UnitLinkerTest, BuildRejectsNullKb) {
  EXPECT_FALSE(UnitLinker::Build(nullptr).ok());
}

/// Surface-form sweep: every form of a few everyday units should link home.
struct SurfaceCase {
  const char* mention;
  const char* context;
  const char* expected_id;
};

class LinkerSurfaceSweep : public ::testing::TestWithParam<SurfaceCase> {};

TEST_P(LinkerSurfaceSweep, LinksToExpectedUnit) {
  const SurfaceCase& c = GetParam();
  Result<const kb::UnitRecord*> u = Linker().Best(c.mention, c.context);
  ASSERT_TRUE(u.ok()) << c.mention;
  EXPECT_EQ((*u)->id, c.expected_id) << c.mention;
}

INSTANTIATE_TEST_SUITE_P(
    EverydayUnits, LinkerSurfaceSweep,
    ::testing::Values(
        SurfaceCase{"kg", "the bag weighs 5 kg", "KiloGM"},
        SurfaceCase{"hours", "the trip took 3 hours", "HR"},
        SurfaceCase{"mph", "", "MI-PER-HR"},  // alias check below may adjust
        SurfaceCase{"liters", "pour 2 liters of water", "LITRE"},
        SurfaceCase{"米", "长度是5米", "M"},
        SurfaceCase{"斤", "买了三斤苹果", "JIN_CN"},
        SurfaceCase{"ml", "add 250 ml of milk", "MilliLITRE"},
        SurfaceCase{"km/h", "the car drove fast", "KiloM-PER-HR"},
        SurfaceCase{"mmHg", "blood pressure reading", "MMHG"},
        SurfaceCase{"kWh", "the electricity bill", "KiloWH"}));

}  // namespace
}  // namespace dimqr::linking
