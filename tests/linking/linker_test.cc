#include "linking/linker.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dimqr::linking {
namespace {

/// Shared linker: embedding training is the expensive part, do it once.
const UnitLinker& Linker() {
  static const std::shared_ptr<const UnitLinker> kLinker = [] {
    auto kb = kb::DimUnitKB::Build().ValueOrDie();
    return UnitLinker::Build(kb).ValueOrDie();
  }();
  return *kLinker;
}

/// Resolves Best()'s UnitId handle against the linker's own KB.
const kb::UnitRecord& BestUnit(const std::string& mention,
                               const std::string& context) {
  return Linker().knowledge_base().Get(
      Linker().Best(mention, context).ValueOrDie());
}

TEST(UnitLinkerTest, ExactSymbolLinks) {
  EXPECT_EQ(BestUnit("km", "the road is 5 km long").id, "KiloM");
}

TEST(UnitLinkerTest, ExactLabelLinks) {
  EXPECT_EQ(BestUnit("kilometre", "distance travelled").id, "KiloM");
}

TEST(UnitLinkerTest, AliasSpellingLinks) {
  // American spelling is an alias.
  EXPECT_EQ(BestUnit("kilometers", "the marathon distance").id, "KiloM");
}

TEST(UnitLinkerTest, PaperFig1DynPerCm) {
  // Fig. 1: "dyne/cm" must link to the force-per-length compound.
  const kb::UnitRecord& u =
      BestUnit("dyn/cm", "surface tension of the liquid");
  EXPECT_EQ(u.id, "DYN-PER-CentiM");
  EXPECT_EQ(u.dimension.ToFormula(), "MT-2");
}

TEST(UnitLinkerTest, FuzzyMisspellingLinks) {
  EXPECT_EQ(BestUnit("kilometr", "drove a long distance").id, "KiloM");
}

TEST(UnitLinkerTest, ChineseUnitLinks) {
  EXPECT_EQ(BestUnit("千克", "质量").id, "KiloGM");
}

TEST(UnitLinkerTest, NoCandidateForGarbage) {
  EXPECT_EQ(Linker().Best("xyzzyplugh", "no context").status().code(),
            StatusCode::kNotFound);
}

TEST(UnitLinkerTest, CandidatesSortedDescending) {
  std::vector<LinkCandidate> c = Linker().Link("m", "it is 5 m long");
  ASSERT_GT(c.size(), 1u);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_GE(c[i - 1].score, c[i].score);
  }
}

TEST(UnitLinkerTest, CandidateCountCapped) {
  std::vector<LinkCandidate> c = Linker().Link("m", "length");
  EXPECT_LE(c.size(), Linker().config().max_candidates);
}

TEST(UnitLinkerTest, PaperContextExampleDegree) {
  // Section III-B: "degree" in different contexts might correspond to
  // "degrees Celsius" or "diopter" (we check temperature vs angle).
  const kb::UnitRecord& temp = BestUnit(
      "degrees", "the weather was hot, the thermometer showed 30 degrees");
  const kb::UnitRecord& angle =
      BestUnit("degrees", "rotate the triangle by 30 degrees of turn");
  EXPECT_EQ(temp.quantity_kind, "ThermodynamicTemperature")
      << "temperature context should pick " << temp.id;
  EXPECT_EQ(angle.quantity_kind, "PlaneAngle") << angle.id;
}

TEST(UnitLinkerTest, ContextDisambiguatesPoundVsPoundForce) {
  EXPECT_EQ(BestUnit("pounds", "the baby weighs seven pounds").dimension,
            dims::Mass());
}

TEST(UnitLinkerTest, PriorPrefersCommonUnits) {
  // "m" matches metre, mile symbol? no — but also "M" molar and milli-
  // prefixed symbols fuzzily; the frequency prior should keep metre first.
  EXPECT_EQ(BestUnit("m", "it is long").id, "M");
}

TEST(UnitLinkerTest, FactorsExposedOnCandidates) {
  std::vector<LinkCandidate> c =
      Linker().Link("km", "the distance of the trip");
  ASSERT_FALSE(c.empty());
  const LinkCandidate& top = c.front();
  EXPECT_GT(top.pr_mention, 0.9);
  EXPECT_GT(top.pr_prior, 0.0);
  EXPECT_LE(top.pr_prior, 1.0);
  EXPECT_GE(top.pr_context, 0.0);
  EXPECT_LE(top.pr_context, 1.0);
  double gamma = Linker().config().mention_sharpness;
  EXPECT_NEAR(top.score,
              std::pow(top.pr_mention, gamma) * top.pr_prior * top.pr_context,
              1e-12);
}

TEST(UnitLinkerTest, AblationTogglesChangeScore) {
  auto kb = kb::DimUnitKB::Build().ValueOrDie();
  LinkerConfig no_context;
  no_context.use_context = false;
  no_context.corpus_sentences_per_cluster = 10;  // fast training
  auto linker = UnitLinker::Build(kb, no_context).ValueOrDie();
  std::vector<LinkCandidate> c = linker->Link("km", "distance");
  ASSERT_FALSE(c.empty());
  EXPECT_NEAR(c.front().score,
              std::pow(c.front().pr_mention, no_context.mention_sharpness) *
                  c.front().pr_prior,
              1e-12);
}

TEST(UnitLinkerTest, BuildRejectsNullKb) {
  EXPECT_FALSE(UnitLinker::Build(nullptr).ok());
}

/// Surface-form sweep: every form of a few everyday units should link home.
struct SurfaceCase {
  const char* mention;
  const char* context;
  const char* expected_id;
};

class LinkerSurfaceSweep : public ::testing::TestWithParam<SurfaceCase> {};

TEST_P(LinkerSurfaceSweep, LinksToExpectedUnit) {
  const SurfaceCase& c = GetParam();
  Result<UnitId> u = Linker().Best(c.mention, c.context);
  ASSERT_TRUE(u.ok()) << c.mention;
  EXPECT_EQ(Linker().knowledge_base().Get(*u).id, c.expected_id) << c.mention;
}

INSTANTIATE_TEST_SUITE_P(
    EverydayUnits, LinkerSurfaceSweep,
    ::testing::Values(
        SurfaceCase{"kg", "the bag weighs 5 kg", "KiloGM"},
        SurfaceCase{"hours", "the trip took 3 hours", "HR"},
        SurfaceCase{"mph", "", "MI-PER-HR"},  // alias check below may adjust
        SurfaceCase{"liters", "pour 2 liters of water", "LITRE"},
        SurfaceCase{"米", "长度是5米", "M"},
        SurfaceCase{"斤", "买了三斤苹果", "JIN_CN"},
        SurfaceCase{"ml", "add 250 ml of milk", "MilliLITRE"},
        SurfaceCase{"km/h", "the car drove fast", "KiloM-PER-HR"},
        SurfaceCase{"mmHg", "blood pressure reading", "MMHG"},
        SurfaceCase{"kWh", "the electricity bill", "KiloWH"}));

}  // namespace
}  // namespace dimqr::linking
