#include "linking/annotator.h"

#include <gtest/gtest.h>

namespace dimqr::linking {
namespace {

/// KB + annotator pair shared by every test (construction is expensive).
struct AnnotatorWorld {
  std::shared_ptr<const kb::DimUnitKB> kb;
  const DimKsAnnotator* annotator;
};

const AnnotatorWorld& World() {
  static const AnnotatorWorld* const kWorld = [] {
    auto kb = kb::DimUnitKB::Build().ValueOrDie();
    auto linker = UnitLinker::Build(kb).ValueOrDie();
    return new AnnotatorWorld{kb, new DimKsAnnotator(linker)};
  }();
  return *kWorld;
}

const DimKsAnnotator& Annotator() { return *World().annotator; }

/// The UnitID string behind an annotation's interned handle.
std::string_view IdOf(UnitId unit) { return World().kb->Get(unit).id; }

TEST(AnnotatorTest, PaperIntroSentence) {
  // "LeBron James's height is 2.06 meters and Stephen Curry's height is
  // 188 cm" — both quantities must ground, and compare correctly.
  auto anns = Annotator().Annotate(
      "LeBron James's height is 2.06 meters and Stephen Curry's height is "
      "188 cm");
  ASSERT_EQ(anns.size(), 2u);
  ASSERT_TRUE(anns[0].HasUnit());
  EXPECT_EQ(IdOf(anns[0].unit), "M");
  EXPECT_DOUBLE_EQ(anns[0].number.value, 2.06);
  ASSERT_TRUE(anns[1].HasUnit());
  EXPECT_EQ(IdOf(anns[1].unit), "CentiM");
  Quantity lebron = Annotator().ToQuantity(anns[0]).ValueOrDie();
  Quantity curry = Annotator().ToQuantity(anns[1]).ValueOrDie();
  EXPECT_EQ(lebron.Compare(curry).ValueOrDie(), 1);
}

TEST(AnnotatorTest, Fig1UnitTrapUnits) {
  auto anns = Annotator().Annotate(
      "A force of 0.1 poundal acts while the tension is 5 dyn/cm at the "
      "surface");
  ASSERT_EQ(anns.size(), 2u);
  ASSERT_TRUE(anns[0].HasUnit());
  EXPECT_EQ(IdOf(anns[0].unit), "POUNDAL");
  ASSERT_TRUE(anns[1].HasUnit());
  EXPECT_EQ(IdOf(anns[1].unit), "DYN-PER-CentiM");
  // The trap: these two are NOT comparable.
  Quantity a = Annotator().ToQuantity(anns[0]).ValueOrDie();
  Quantity b = Annotator().ToQuantity(anns[1]).ValueOrDie();
  EXPECT_EQ(a.Compare(b).status().code(), StatusCode::kDimensionMismatch);
}

TEST(AnnotatorTest, GluedUnit) {
  auto anns = Annotator().Annotate("the bag weighs 5kg today");
  ASSERT_EQ(anns.size(), 1u);
  ASSERT_TRUE(anns[0].HasUnit());
  EXPECT_EQ(IdOf(anns[0].unit), "KiloGM");
  EXPECT_EQ(anns[0].unit_text, "kg");
}

TEST(AnnotatorTest, MultiWordUnit) {
  auto anns = Annotator().Annotate("water boils at 100 degrees Celsius");
  ASSERT_EQ(anns.size(), 1u);
  ASSERT_TRUE(anns[0].HasUnit());
  EXPECT_EQ(IdOf(anns[0].unit), "DEG_C");
  EXPECT_EQ(anns[0].unit_text, "degrees Celsius");
}

TEST(AnnotatorTest, PercentBecomesPercentUnit) {
  auto anns = Annotator().Annotate("a potion containing 20% of the agent");
  ASSERT_EQ(anns.size(), 1u);
  ASSERT_TRUE(anns[0].HasUnit());
  EXPECT_EQ(IdOf(anns[0].unit), "PERCENT");
  Quantity q = Annotator().ToQuantity(anns[0]).ValueOrDie();
  EXPECT_DOUBLE_EQ(q.value(), 0.2);
  EXPECT_TRUE(q.dimension().IsDimensionless());
}

TEST(AnnotatorTest, BareNumberHasNoUnit) {
  auto anns = Annotator().Annotate("she bought 7 apples at the market");
  ASSERT_EQ(anns.size(), 1u);
  EXPECT_FALSE(anns[0].HasUnit());
  Quantity q = Annotator().ToQuantity(anns[0]).ValueOrDie();
  EXPECT_TRUE(q.dimension().IsDimensionless());
  EXPECT_DOUBLE_EQ(q.value(), 7.0);
}

TEST(AnnotatorTest, CompoundSymbolUnit) {
  auto anns = Annotator().Annotate("the train travels at 120 km/h between "
                                   "the two cities");
  ASSERT_EQ(anns.size(), 1u);
  ASSERT_TRUE(anns[0].HasUnit());
  EXPECT_EQ(IdOf(anns[0].unit), "KiloM-PER-HR");
}

TEST(AnnotatorTest, ChineseQuantity) {
  auto anns = Annotator().Annotate("小王要将150千克的农药稀释");
  ASSERT_EQ(anns.size(), 1u);
  ASSERT_TRUE(anns[0].HasUnit());
  EXPECT_EQ(IdOf(anns[0].unit), "KiloGM");
}

TEST(AnnotatorTest, MultipleQuantitiesKeepOrder) {
  auto anns = Annotator().Annotate(
      "mix 250 ml of milk with 3 cups of flour and bake for 45 minutes");
  ASSERT_EQ(anns.size(), 3u);
  EXPECT_EQ(IdOf(anns[0].unit), "MilliLITRE");
  EXPECT_EQ(IdOf(anns[1].unit), "CUP_US");
  EXPECT_EQ(IdOf(anns[2].unit), "MIN");
}

TEST(AnnotatorTest, EmptyAndUnitlessText) {
  EXPECT_TRUE(Annotator().Annotate("").empty());
  EXPECT_TRUE(Annotator().Annotate("no numbers here at all").empty());
}

TEST(AnnotatorTest, SpansAreAccurate) {
  std::string s = "run 10 km now";
  auto anns = Annotator().Annotate(s);
  ASSERT_EQ(anns.size(), 1u);
  EXPECT_EQ(s.substr(anns[0].number.begin,
                     anns[0].number.end - anns[0].number.begin),
            "10");
  EXPECT_EQ(s.substr(anns[0].unit_begin,
                     anns[0].unit_end - anns[0].unit_begin),
            "km");
}

}  // namespace
}  // namespace dimqr::linking
