#include <gtest/gtest.h>

#include <set>

#include "core/parallel.h"
#include "dimeval/benchmark.h"
#include "dimeval/bootstrap_retrieval.h"
#include "dimeval/generators.h"
#include "dimeval/semi_auto_annotate.h"
#include "lm/mock_llm.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace dimqr::dimeval {
namespace {

using namespace lm::tasks;

std::shared_ptr<const kb::DimUnitKB> Kb() {
  static const std::shared_ptr<const kb::DimUnitKB> kKb =
      kb::DimUnitKB::Build().ValueOrDie();
  return kKb;
}

const linking::DimKsAnnotator& Annotator() {
  static const linking::DimKsAnnotator* const kAnnotator = [] {
    auto linker = linking::UnitLinker::Build(Kb()).ValueOrDie();
    return new linking::DimKsAnnotator(linker);
  }();
  return *kAnnotator;
}

const TaskGenerator& Generator() {
  static const TaskGenerator* const kGen = new TaskGenerator(Kb());
  return *kGen;
}

void CheckChoiceInstanceShape(const TaskInstance& inst, const char* task) {
  EXPECT_EQ(inst.task, task);
  ASSERT_EQ(inst.choices.size(), 4u);
  ASSERT_GE(inst.gold_index, 0);
  ASSERT_LT(inst.gold_index, 4);
  EXPECT_FALSE(inst.prompt.empty());
  EXPECT_FALSE(inst.reasoning.empty());
  // All four choices distinct.
  std::set<std::string> uniq(inst.choices.begin(), inst.choices.end());
  EXPECT_EQ(uniq.size(), 4u) << inst.prompt;
  // Every choice appears in the prompt.
  for (const std::string& c : inst.choices) {
    EXPECT_NE(inst.prompt.find(c), std::string::npos);
  }
}

TEST(GeneratorTest, QuantityKindMatchShape) {
  auto got = Generator().QuantityKindMatch(25).ValueOrDie();
  ASSERT_EQ(got.size(), 25u);
  for (const TaskInstance& inst : got) {
    CheckChoiceInstanceShape(inst, kQuantityKindMatch);
    // The gold unit must actually measure the named kind; the kind name is
    // in the prompt after "kind: ".
    auto at = inst.prompt.find("kind: ");
    ASSERT_NE(at, std::string::npos);
    std::string kind = inst.prompt.substr(at + 6);
    kind = kind.substr(0, kind.find(" |"));
    const std::string& gold = inst.choices[inst.gold_index];
    bool gold_matches_kind = false;
    // Direct check: find a unit with this label whose lowercased kind is
    // the prompt kind.
    for (const kb::UnitRecord& u : Kb()->units()) {
      if (u.label_en == gold &&
          text::ToLowerAscii(u.quantity_kind) == kind) {
        gold_matches_kind = true;
        break;
      }
    }
    EXPECT_TRUE(gold_matches_kind) << inst.prompt;
  }
}

TEST(GeneratorTest, ComparableAnalysisGoldSharesDimension) {
  auto got = Generator().ComparableAnalysis(25).ValueOrDie();
  for (const TaskInstance& inst : got) {
    CheckChoiceInstanceShape(inst, kComparableAnalysis);
    auto at = inst.prompt.find("unit: ");
    ASSERT_NE(at, std::string::npos);
    std::string probe = inst.prompt.substr(at + 6);
    probe = probe.substr(0, probe.find(" |"));
    // Resolve probe and gold; dimensions must match, distractors differ.
    auto probe_units = Kb()->FindBySurface(probe);
    ASSERT_FALSE(probe_units.empty()) << probe;
    Dimension dim = Kb()->Get(probe_units.front()).dimension;
    for (int i = 0; i < 4; ++i) {
      auto choice_units = Kb()->FindBySurface(inst.choices[i]);
      ASSERT_FALSE(choice_units.empty()) << inst.choices[i];
      if (i == inst.gold_index) {
        EXPECT_EQ(Kb()->Get(choice_units.front()).dimension, dim);
      } else {
        EXPECT_NE(Kb()->Get(choice_units.front()).dimension, dim);
      }
    }
  }
}

TEST(GeneratorTest, DimensionArithmeticGoldHasDerivedDimension) {
  auto got = Generator().DimensionArithmetic(25).ValueOrDie();
  for (const TaskInstance& inst : got) {
    CheckChoiceInstanceShape(inst, kDimensionArithmetic);
    EXPECT_NE(inst.prompt.find("expr: "), std::string::npos);
  }
}

TEST(GeneratorTest, MagnitudeComparisonGoldIsLargest) {
  auto got = Generator().MagnitudeComparison(25).ValueOrDie();
  for (const TaskInstance& inst : got) {
    CheckChoiceInstanceShape(inst, kMagnitudeComparison);
    double gold_scale = 0.0;
    std::vector<double> scales;
    for (int i = 0; i < 4; ++i) {
      auto units = Kb()->FindBySurface(inst.choices[i]);
      ASSERT_FALSE(units.empty());
      const kb::UnitRecord& u = Kb()->Get(units.front());
      scales.push_back(u.conversion_value);
      if (i == inst.gold_index) gold_scale = u.conversion_value;
    }
    for (double s : scales) {
      EXPECT_LE(s, gold_scale * 1.0001) << inst.prompt;
    }
  }
}

TEST(GeneratorTest, UnitConversionGoldFactorIsCorrect) {
  auto got = Generator().UnitConversion(25).ValueOrDie();
  for (const TaskInstance& inst : got) {
    CheckChoiceInstanceShape(inst, kUnitConversion);
    // Prompt form: "task: convert | 1 <from> = ? <to> | a: ..."
    auto bar = inst.prompt.find("| 1 ");
    ASSERT_NE(bar, std::string::npos);
    std::string rest = inst.prompt.substr(bar + 4);
    auto eq = rest.find(" = ? ");
    ASSERT_NE(eq, std::string::npos);
    std::string from = rest.substr(0, eq);
    std::string to = rest.substr(eq + 5);
    to = to.substr(0, to.find(" |"));
    auto from_units = Kb()->FindBySurface(from);
    auto to_units = Kb()->FindBySurface(to);
    ASSERT_FALSE(from_units.empty()) << from;
    ASSERT_FALSE(to_units.empty()) << to;
    double expected =
        Kb()->Get(from_units.front())
            .Semantics()
            .ConversionFactorTo(Kb()->Get(to_units.front()).Semantics())
            .ValueOrDie();
    double gold = std::strtod(inst.choices[inst.gold_index].c_str(), nullptr);
    EXPECT_NEAR(gold, expected, std::abs(expected) * 1e-3) << inst.prompt;
  }
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  TaskGenerator g1(Kb());
  TaskGenerator g2(Kb());
  auto a = g1.UnitConversion(5).ValueOrDie();
  auto b = g2.UnitConversion(5).ValueOrDie();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prompt, b[i].prompt);
    EXPECT_EQ(a[i].gold_index, b[i].gold_index);
  }
}

TEST(GeneratorTest, BitForBitIdenticalAcrossThreadCounts) {
  // Every instance slot draws from its own RNG stream, so generated datasets
  // must be identical at any pool size.
  auto generate_at = [](int threads) {
    dimqr::ScopedParallelism scope(threads);
    TaskGenerator g(Kb());
    struct Out {
      std::vector<TaskInstance> kind, conv, magnitude;
    } out;
    out.kind = g.QuantityKindMatch(40).ValueOrDie();
    out.conv = g.UnitConversion(40).ValueOrDie();
    out.magnitude = g.MagnitudeComparison(40).ValueOrDie();
    return out;
  };
  auto at1 = generate_at(1);
  auto at8 = generate_at(8);
  auto expect_same = [](const std::vector<TaskInstance>& a,
                        const std::vector<TaskInstance>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].prompt, b[i].prompt);
      EXPECT_EQ(a[i].reasoning, b[i].reasoning);
      EXPECT_EQ(a[i].gold_index, b[i].gold_index);
      EXPECT_EQ(a[i].instance_seed, b[i].instance_seed);
    }
  };
  expect_same(at1.kind, at8.kind);
  expect_same(at1.conv, at8.conv);
  expect_same(at1.magnitude, at8.magnitude);
}

TEST(TaskTest, CategoriesMatchPaper) {
  EXPECT_EQ(CategoryOf(kQuantityExtraction), TaskCategory::kBasicPerception);
  EXPECT_EQ(CategoryOf(kQuantityKindMatch), TaskCategory::kBasicPerception);
  EXPECT_EQ(CategoryOf(kComparableAnalysis),
            TaskCategory::kDimensionPerception);
  EXPECT_EQ(CategoryOf(kDimensionPrediction),
            TaskCategory::kDimensionPerception);
  EXPECT_EQ(CategoryOf(kDimensionArithmetic),
            TaskCategory::kDimensionPerception);
  EXPECT_EQ(CategoryOf(kMagnitudeComparison), TaskCategory::kScalePerception);
  EXPECT_EQ(CategoryOf(kUnitConversion), TaskCategory::kScalePerception);
  EXPECT_EQ(AllTaskKeys().size(), 7u);
}

// ------------------------------------------------------------ Algorithm 2

TEST(BootstrapTest, UnitMentionExtraction) {
  EXPECT_EQ(UnitMentionOf("2.06 metres"), "metres");
  EXPECT_EQ(UnitMentionOf("42%"), "%");
  EXPECT_EQ(UnitMentionOf("120 km/h"), "km/h");
  EXPECT_EQ(UnitMentionOf("Lakers"), "");
  EXPECT_EQ(UnitMentionOf("1998"), "");
  EXPECT_EQ(UnitMentionOf("LPUI-1T"), "");
}

TEST(BootstrapTest, RetrievesQuantityPredicates) {
  kg::TripleStore store =
      kg::BuildSyntheticKg(*Kb()).ValueOrDie();
  BootstrapResult result = BootstrapRetrieve(store, *Kb()).ValueOrDie();
  EXPECT_GT(result.quantitative_triples.size(), 200u);
  EXPECT_GE(result.trace.size(), 1u);
  // Quantity predicates survive; textual ones are filtered out.
  std::set<std::string> preds(result.predicates.begin(),
                              result.predicates.end());
  EXPECT_TRUE(preds.contains("height"));
  EXPECT_TRUE(preds.contains("top speed"));
  EXPECT_FALSE(preds.contains("team"));
  EXPECT_FALSE(preds.contains("mayor"));
  EXPECT_FALSE(preds.contains("model code"));
  // Every retrieved triple is quantity-shaped.
  for (const kg::Triple& t : result.quantitative_triples) {
    EXPECT_FALSE(UnitMentionOf(t.object).empty()) << t.object;
  }
}

TEST(BootstrapTest, RejectsDegenerateInputs) {
  kg::TripleStore empty;
  EXPECT_FALSE(BootstrapRetrieve(empty, *Kb()).ok());
  kg::TripleStore store = kg::BuildSyntheticKg(*Kb()).ValueOrDie();
  BootstrapOptions bad;
  bad.iterations = 0;
  EXPECT_FALSE(BootstrapRetrieve(store, *Kb(), bad).ok());
}

TEST(BootstrapTest, HigherTauFiltersMore) {
  kg::TripleStore store = kg::BuildSyntheticKg(*Kb()).ValueOrDie();
  BootstrapOptions loose, strict;
  loose.tau = 0.3;
  strict.tau = 0.95;
  auto loose_result = BootstrapRetrieve(store, *Kb(), loose).ValueOrDie();
  auto strict_result = BootstrapRetrieve(store, *Kb(), strict).ValueOrDie();
  EXPECT_GE(loose_result.predicates.size(), strict_result.predicates.size());
}

// ------------------------------------------------------------ Algorithm 1

TEST(SemiAutoTest, CorpusHasQuantitiesAndTraps) {
  auto corpus = GenerateQuantityCorpus(*Kb(), 300, 7);
  ASSERT_EQ(corpus.size(), 300u);
  int with_truth = 0, traps = 0;
  for (const CorpusSentence& s : corpus) {
    if (s.truth.empty()) {
      ++traps;
    } else {
      ++with_truth;
    }
  }
  EXPECT_GT(with_truth, 150);
  EXPECT_GT(traps, 30);
}

TEST(SemiAutoTest, PipelineAchievesPaperLikeAccuracy) {
  auto corpus = GenerateQuantityCorpus(*Kb(), 400, 11);
  std::vector<std::vector<std::string>> tokenized;
  for (const CorpusSentence& s : corpus) {
    tokenized.push_back(text::TokenizeLower(s.text));
  }
  auto masked_lm = lm::NgramMaskedLm::Train(tokenized).ValueOrDie();
  SemiAutoOptions options;
  options.apply_manual_review = false;
  auto [dataset, stats] =
      SemiAutoAnnotate(corpus, Annotator(), masked_lm, options).ValueOrDie();
  EXPECT_GT(stats.annotations_initial, 0u);
  EXPECT_LE(stats.annotations_after_plm, stats.annotations_initial);
  // The paper reports 82% pre-review accuracy; our pipeline should land in
  // the same regime (>= 70%).
  EXPECT_GE(stats.accuracy, 0.70) << "pre-review accuracy " << stats.accuracy;
  EXPECT_FALSE(dataset.empty());
}

TEST(SemiAutoTest, PlmFilterRemovesTraps) {
  auto corpus = GenerateQuantityCorpus(*Kb(), 400, 11);
  std::vector<std::vector<std::string>> tokenized;
  for (const CorpusSentence& s : corpus) {
    tokenized.push_back(text::TokenizeLower(s.text));
  }
  auto masked_lm = lm::NgramMaskedLm::Train(tokenized).ValueOrDie();
  SemiAutoOptions no_filter;
  no_filter.numeric_threshold = 0.0;
  no_filter.apply_manual_review = false;
  SemiAutoOptions with_filter;
  with_filter.apply_manual_review = false;
  auto [d1, s1] =
      SemiAutoAnnotate(corpus, Annotator(), masked_lm, no_filter).ValueOrDie();
  auto [d2, s2] = SemiAutoAnnotate(corpus, Annotator(), masked_lm, with_filter)
                      .ValueOrDie();
  // The filter must improve precision.
  EXPECT_GT(s2.accuracy, s1.accuracy - 1e-12);
  EXPECT_LE(s2.annotations_after_plm, s1.annotations_after_plm);
}

TEST(SemiAutoTest, ManualReviewYieldsCleanDataset) {
  auto corpus = GenerateQuantityCorpus(*Kb(), 300, 13);
  std::vector<std::vector<std::string>> tokenized;
  for (const CorpusSentence& s : corpus) {
    tokenized.push_back(text::TokenizeLower(s.text));
  }
  auto masked_lm = lm::NgramMaskedLm::Train(tokenized).ValueOrDie();
  auto [dataset, stats] =
      SemiAutoAnnotate(corpus, Annotator(), masked_lm).ValueOrDie();
  // After review, every annotation in sentences with truth matches truth.
  for (const AnnotatedSentence& s : dataset) {
    EXPECT_FALSE(s.annotations.empty());
  }
  std::vector<TaskInstance> instances = ToExtractionInstances(dataset, 3);
  ASSERT_EQ(instances.size(), dataset.size());
  for (const TaskInstance& inst : instances) {
    EXPECT_TRUE(inst.IsExtraction());
    EXPECT_FALSE(inst.gold_quantities.empty());
  }
}

// ----------------------------------------------------------- Benchmark

TEST(BenchmarkTest, BuildsAllSevenTasks) {
  BenchmarkOptions options;
  options.train_per_task = 20;
  options.test_per_task = 10;
  options.extraction_corpus_sentences = 220;
  DimEvalBenchmark bench =
      BuildDimEval(Kb(), Annotator(), options).ValueOrDie();
  for (const std::string& task : AllTaskKeys()) {
    EXPECT_EQ(bench.TrainOf(task).size(), 20u) << task;
    EXPECT_EQ(bench.TestOf(task).size(), 10u) << task;
  }
  EXPECT_GT(bench.bootstrap_triples, 0u);
  EXPECT_GT(bench.annotation_stats.accuracy, 0.5);
}

TEST(BenchmarkTest, TrainTestDisjointPrompts) {
  BenchmarkOptions options;
  options.train_per_task = 20;
  options.test_per_task = 10;
  options.extraction_corpus_sentences = 220;
  DimEvalBenchmark bench =
      BuildDimEval(Kb(), Annotator(), options).ValueOrDie();
  std::set<std::string> train_prompts;
  for (const TaskInstance& inst : bench.train) {
    train_prompts.insert(inst.prompt);
  }
  int overlap = 0;
  for (const TaskInstance& inst : bench.test) {
    if (train_prompts.contains(inst.prompt)) ++overlap;
  }
  // A few collisions are tolerable (small unit pools); wholesale overlap
  // is not.
  EXPECT_LT(overlap, static_cast<int>(bench.test.size()) / 5);
}

}  // namespace
}  // namespace dimqr::dimeval
