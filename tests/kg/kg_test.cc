#include <gtest/gtest.h>

#include <unordered_set>

#include "kg/realizer.h"
#include "kg/synth_kg.h"
#include "kg/triple_store.h"

namespace dimqr::kg {
namespace {

TEST(TripleStoreTest, AddAndSize) {
  TripleStore store;
  EXPECT_EQ(store.size(), 0u);
  store.Add("LeBron James", "height", "2.06 metres");
  store.Add("LeBron James", "team", "Lakers");
  EXPECT_EQ(store.size(), 2u);
}

TEST(TripleStoreTest, FindByPredicate) {
  TripleStore store;
  store.Add("A", "height", "2 m");
  store.Add("B", "height", "3 m");
  store.Add("A", "team", "Lakers");
  auto heights = store.FindByPredicate("height");
  ASSERT_EQ(heights.size(), 2u);
  EXPECT_EQ(heights[0]->subject, "A");
  EXPECT_EQ(heights[1]->subject, "B");
  EXPECT_TRUE(store.FindByPredicate("missing").empty());
}

TEST(TripleStoreTest, FindByObjectContaining) {
  TripleStore store;
  store.Add("A", "height", "2.06 metres");
  store.Add("B", "weight", "100 kg");
  store.Add("C", "note", "about 3 metres of rope");
  auto hits = store.FindByObjectContaining("metres");
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(store.FindByObjectContaining("").empty());
}

TEST(TripleStoreTest, FindBySubject) {
  TripleStore store;
  store.Add("A", "height", "2 m");
  store.Add("A", "team", "Lakers");
  store.Add("B", "height", "3 m");
  EXPECT_EQ(store.FindBySubject("A").size(), 2u);
  EXPECT_TRUE(store.FindBySubject("Z").empty());
}

TEST(TripleStoreTest, PredicatesFirstSeenOrder) {
  TripleStore store;
  store.Add("A", "height", "2 m");
  store.Add("B", "weight", "3 kg");
  store.Add("C", "height", "1 m");
  std::vector<std::string> preds = store.Predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], "height");
  EXPECT_EQ(preds[1], "weight");
}

const kb::DimUnitKB& Kb() {
  static const std::shared_ptr<const kb::DimUnitKB> kKb =
      kb::DimUnitKB::Build().ValueOrDie();
  return *kKb;
}

TEST(SynthKgTest, BuildsNonTrivialGraph) {
  TripleStore store = BuildSyntheticKg(Kb()).ValueOrDie();
  EXPECT_GT(store.size(), 1000u);
  EXPECT_GT(store.Predicates().size(), 30u);
}

TEST(SynthKgTest, DeterministicForSeed) {
  SynthKgOptions opt;
  opt.entities_per_domain = 5;
  TripleStore a = BuildSyntheticKg(Kb(), opt).ValueOrDie();
  TripleStore b = BuildSyntheticKg(Kb(), opt).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.triples()[i], b.triples()[i]);
  }
}

TEST(SynthKgTest, ContainsQuantitativeAndTextualObjects) {
  TripleStore store = BuildSyntheticKg(Kb()).ValueOrDie();
  std::size_t quantitative = 0, textual = 0;
  for (const Triple& t : store.triples()) {
    if (ObjectLooksQuantitative(t.object)) {
      ++quantitative;
    } else {
      ++textual;
    }
  }
  EXPECT_GT(quantitative, store.size() / 3);
  EXPECT_GT(textual, store.size() / 10);
}

TEST(SynthKgTest, QuantityPredicatesAreConsistentlyQuantitative) {
  // Objects of the "height" predicate must look quantitative; "team"
  // objects must not (Algorithm 2's ratio filter depends on this signal).
  TripleStore store = BuildSyntheticKg(Kb()).ValueOrDie();
  for (const Triple* t : store.FindByPredicate("height")) {
    EXPECT_TRUE(ObjectLooksQuantitative(t->object)) << t->object;
  }
  for (const Triple* t : store.FindByPredicate("team")) {
    EXPECT_FALSE(ObjectLooksQuantitative(t->object)) << t->object;
  }
}

TEST(SynthKgTest, TrapStringsNotQuantitative) {
  EXPECT_FALSE(ObjectLooksQuantitative("LPUI-1T"));
  EXPECT_FALSE(ObjectLooksQuantitative("1998"));
  EXPECT_FALSE(ObjectLooksQuantitative("white powder"));
  EXPECT_TRUE(ObjectLooksQuantitative("2.06 metres"));
  EXPECT_TRUE(ObjectLooksQuantitative("42%"));
  EXPECT_TRUE(ObjectLooksQuantitative("120 km/h"));
}

TEST(SynthKgTest, UnitSurfaceFormsAreDiverse) {
  // The same predicate should use more than one unit surface across
  // entities (the paper stresses representation diversity).
  TripleStore store = BuildSyntheticKg(Kb()).ValueOrDie();
  std::unordered_set<std::string> suffixes;
  for (const Triple* t : store.FindByPredicate("height")) {
    auto space = t->object.find(' ');
    if (space != std::string::npos) {
      suffixes.insert(t->object.substr(space + 1));
    }
  }
  EXPECT_GE(suffixes.size(), 3u);
}

TEST(RealizerTest, ObjectSpanIsExact) {
  Triple t{"LeBron James", "height", "2.06 metres"};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RealizedSentence s = RealizeTriple(t, seed);
    EXPECT_EQ(s.text.substr(s.object_begin, s.object_end - s.object_begin),
              t.object)
        << s.text;
    EXPECT_NE(s.text.find("LeBron James"), std::string::npos);
    EXPECT_NE(s.text.find("height"), std::string::npos);
  }
}

TEST(RealizerTest, DeterministicPerSeed) {
  Triple t{"City-1", "area", "88 km^2"};
  EXPECT_EQ(RealizeTriple(t, 7).text, RealizeTriple(t, 7).text);
}

TEST(RealizerTest, TemplateVarietyUsed) {
  Triple t{"X", "p", "1 m"};
  std::unordered_set<std::string> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    seen.insert(RealizeTriple(t, seed).text);
  }
  EXPECT_GE(seen.size(), 3u);
  EXPECT_GE(RealizerTemplateCount(), 5u);
}

}  // namespace
}  // namespace dimqr::kg
