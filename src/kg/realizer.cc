#include "kg/realizer.h"

#include "core/rng.h"

namespace dimqr::kg {
namespace {

/// Templates with {s} subject, {p} predicate, {o} object placeholders.
/// The object placeholder must occur exactly once.
const std::vector<const char*>& Templates() {
  static const std::vector<const char*>* const kTemplates =
      new std::vector<const char*>{
          "The {p} of {s} is {o}.",
          "{s} has a {p} of {o}.",
          "According to the records, the {p} of {s} reaches {o}.",
          "With a {p} of {o}, {s} is well documented.",
          "{s}'s {p} was measured at {o}.",
          "Reports state that {s} records a {p} of about {o}.",
          "At {o}, the {p} of {s} is notable.",
          "{s} is known for its {p} of {o}.",
      };
  return *kTemplates;
}

}  // namespace

std::size_t RealizerTemplateCount() { return Templates().size(); }

RealizedSentence RealizeTriple(const Triple& triple, std::uint64_t seed) {
  dimqr::Rng rng(dimqr::Rng::DeriveSeed(seed, triple.subject + "|" +
                                                  triple.predicate));
  const char* tmpl = Templates()[rng.Index(Templates().size())];
  RealizedSentence out;
  std::string text;
  for (const char* p = tmpl; *p != '\0';) {
    if (p[0] == '{' && p[1] != '\0' && p[2] == '}') {
      switch (p[1]) {
        case 's':
          text += triple.subject;
          p += 3;
          continue;
        case 'p':
          text += triple.predicate;
          p += 3;
          continue;
        case 'o':
          out.object_begin = text.size();
          text += triple.object;
          out.object_end = text.size();
          p += 3;
          continue;
        default:
          break;
      }
    }
    text += *p++;
  }
  out.text = std::move(text);
  return out;
}

}  // namespace dimqr::kg
