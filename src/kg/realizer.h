#ifndef DIMQR_KG_REALIZER_H_
#define DIMQR_KG_REALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/triple_store.h"

/// \file realizer.h
/// Template-based sentence realization for triples.
///
/// Substitution (DESIGN.md): the paper feeds quantity triplets to ChatGPT
/// "to generate sentences that include these triplets". Offline, a set of
/// sentence templates produces the same artifact: natural-ish sentences
/// that contain the triple's subject, predicate, and quantity object, for
/// the dimension-prediction dataset (Section IV-C2).

namespace dimqr::kg {

/// \brief A realized sentence with the byte span of the object inside it,
/// so dataset construction can mask the quantity with [MASK].
struct RealizedSentence {
  std::string text;
  std::size_t object_begin = 0;
  std::size_t object_end = 0;
};

/// \brief Renders a triple as a sentence, choosing a template
/// deterministically from `seed`. The object appears verbatim exactly once.
RealizedSentence RealizeTriple(const Triple& triple, std::uint64_t seed);

/// \brief The number of distinct templates (for coverage tests).
std::size_t RealizerTemplateCount();

}  // namespace dimqr::kg

#endif  // DIMQR_KG_REALIZER_H_
