#ifndef DIMQR_KG_SYNTH_KG_H_
#define DIMQR_KG_SYNTH_KG_H_

#include <cstdint>
#include <memory>

#include "core/status.h"
#include "kb/kb.h"
#include "kg/triple_store.h"

/// \file synth_kg.h
/// Synthetic CN-DBpedia-like knowledge graph generation (substitution).
///
/// The generator emits entities across everyday domains (athletes, cities,
/// cars, rivers, foods, devices, chemicals, buildings, animals), each with
/// a mix of quantity-bearing predicates (height, mass, top speed, ...)
/// whose objects render a value plus a *varied* unit surface form drawn
/// from DimUnitKB, and textual predicates (birthplace, colour, ...) that
/// Algorithm 2 must learn to filter out. A small fraction of objects are
/// "trap strings" — device-code-like tokens such as "LPUI-1T" — mirroring
/// the false positives discussed in Section IV-C1.

namespace dimqr::kg {

/// \brief Generation knobs.
struct SynthKgOptions {
  int entities_per_domain = 40;
  /// Fraction of quantity objects rendered with a unit alias instead of the
  /// primary symbol (surface-form diversity).
  double alias_rate = 0.35;
  /// Fraction of textual objects that contain trap strings ("LPUI-1T").
  double trap_rate = 0.15;
  std::uint64_t seed = 20240131;
};

/// \brief Builds the synthetic knowledge graph over units from `kb`.
dimqr::Result<TripleStore> BuildSyntheticKg(const kb::DimUnitKB& kb,
                                            const SynthKgOptions& options = {});

/// \brief True when an object string is quantity-bearing according to this
/// generator's ground truth (value followed by a linkable unit). Exposed so
/// tests and the bootstrapping evaluation can measure retrieval quality.
bool ObjectLooksQuantitative(std::string_view object);

}  // namespace dimqr::kg

#endif  // DIMQR_KG_SYNTH_KG_H_
