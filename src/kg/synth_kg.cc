#include "kg/synth_kg.h"

#include <cmath>
#include <cstdio>

#include "core/rng.h"
#include "text/number_scanner.h"
#include "text/string_util.h"

namespace dimqr::kg {
namespace {

using dimqr::Rng;

/// A quantity-bearing predicate of a domain: SI value range + unit choices.
struct QuantityPredicate {
  const char* predicate;
  double si_lo, si_hi;
  bool log_uniform;  ///< Sample magnitude log-uniformly (populations, ...).
  std::vector<const char*> unit_ids;
};

/// A textual predicate with its value pool.
struct TextualPredicate {
  const char* predicate;
  std::vector<const char*> values;
};

struct Domain {
  const char* name;
  std::vector<QuantityPredicate> quantities;
  std::vector<TextualPredicate> textuals;
};

const std::vector<Domain>& Domains() {
  static const std::vector<Domain>* const kDomains = new std::vector<Domain>{
      {"Athlete",
       {{"height", 1.55, 2.25, false, {"M", "CentiM", "FT", "IN"}},
        {"weight", 50, 130, false, {"KiloGM", "LB", "JIN_CN"}},
        {"sprint speed", 7, 12, false, {"M-PER-SEC", "KiloM-PER-HR"}}},
       {{"team", {"Lakers", "Warriors", "Bulls", "Celtics", "Heat"}},
        {"birthplace", {"Akron", "Oakland", "Chicago", "Madrid", "Paris"}},
        {"position", {"guard", "forward", "center"}}}},
      {"City",
       {{"area", 5e7, 2e10, true, {"KiloM2", "HECTARE", "MI2"}},
        {"elevation", 2, 4000, true, {"M", "FT"}},
        {"annual rainfall", 0.1, 3.0, false, {"MilliM", "CentiM", "IN"}}},
       {{"population", {"3400000", "860000", "12000000", "152000"}},
        {"mayor", {"Chen Wei", "Ana Silva", "John Park", "Li Na"}},
        {"country", {"China", "Brazil", "France", "Japan", "Canada"}}}},
      {"Car",
       {{"top speed", 33, 110, false,
         {"KiloM-PER-HR", "MI-PER-HR", "M-PER-SEC"}},
        {"engine power", 45000, 900000, true, {"KiloW", "HP", "W"}},
        {"curb weight", 900, 2600, false, {"KiloGM", "TONNE", "LB"}},
        {"fuel tank capacity", 0.035, 0.095, false,
         {"LITRE", "GAL_US"}},
        {"fuel economy", 5e6, 2.5e7, false,
         {"KiloM-PER-LITRE", "MI-PER-GAL_US"}}},
       {{"manufacturer", {"Toyota", "BYD", "Volkswagen", "Ford", "Geely"}},
        {"body style", {"sedan", "suv", "hatchback", "wagon"}},
        {"model code", {"LPUI-1T", "XR-3Z", "GT2-K9", "HV-7P"}}}},
      {"River",
       {{"length", 5e4, 6.5e6, true, {"KiloM", "MI", "LI_CN"}},
        {"discharge", 50, 220000, true,
         {"M3-PER-SEC", "LITRE-PER-SEC"}},
        {"basin area", 1e9, 3e12, true, {"KiloM2", "MI2"}}},
       {{"mouth", {"East China Sea", "Atlantic Ocean", "Bohai Sea"}},
        {"source", {"Tanggula Mountains", "Alps", "Andes"}}}},
      {"Food",
       {{"energy content", 2e5, 3e6, false,
         {"KiloCAL-PER-KiloGM", "KiloJ-PER-KiloGM", "CAL-PER-GM"}},
        {"package mass", 0.05, 2.5, false, {"GM", "KiloGM", "OZ", "JIN_CN"}},
        {"sugar content", 0.01, 0.6, false, {"PERCENT"}}},
       {{"cuisine", {"Sichuan", "Cantonese", "Italian", "Mexican"}},
        {"flavor", {"sweet", "spicy", "savory", "sour"}}}},
      {"Device",
       {{"battery capacity", 3600, 21600, false, {"MilliAH"}},
        {"screen size", 0.10, 0.45, false, {"IN", "CentiM"}},
        {"mass", 0.1, 2.8, false, {"GM", "KiloGM", "OZ"}},
        {"storage", 5.12e11, 1.6e13, true, {"GigaBYTE", "TeraBYTE"}},
        {"download speed", 1e7, 1e10, true,
         {"MegaBIT-PER-SEC", "GigaBIT-PER-SEC"}}},
       {{"brand", {"Huawei", "Apple", "Samsung", "Xiaomi"}},
        {"chipset", {"LPUI-1T", "SD8G3", "A17-Pro", "K9000"}},
        {"color", {"black", "silver", "blue", "white"}}}},
      {"Chemical",
       {{"molar mass", 0.002, 0.5, false, {"GM-PER-MOL"}},
        {"density", 500, 20000, false,
         {"KiloGM-PER-M3", "GM-PER-CentiM3", "GM-PER-MilliLITRE"}},
        {"boiling point", 150, 3500, false, {"K", "DEG_C"}}},
       {{"appearance", {"white powder", "clear liquid", "silver solid"}},
        {"cas number", {"64-17-5", "7732-18-5", "7647-14-5"}}}},
      {"Building",
       {{"height", 30, 830, false, {"M", "FT", "ZHANG_CN"}},
        {"floor area", 2e3, 5e5, true, {"M2", "FT2", "MU_CN"}}},
       {{"architect", {"Zaha Hadid", "I. M. Pei", "Norman Foster"}},
        {"completed", {"1998", "2004", "2015", "2021"}},
        {"use", {"office", "residential", "hotel", "museum"}}}},
      {"Animal",
       {{"body mass", 0.02, 6000, true, {"KiloGM", "GM", "LB", "TONNE"}},
        {"lifespan", 6.3e7, 2.2e9, true, {"YR", "MO"}},
        {"top speed", 1, 33, false, {"KiloM-PER-HR", "M-PER-SEC", "MI-PER-HR"}}},
       {{"habitat", {"savanna", "rainforest", "tundra", "reef"}},
        {"diet", {"carnivore", "herbivore", "omnivore"}}}},
  };
  return *kDomains;
}

/// Renders `value` with ~3 significant digits for realistic text.
std::string RenderValue(double value) {
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", value);
  }
  return buf;
}

/// Picks a surface form for the unit: symbol / label / alias / Chinese.
std::string PickSurface(const kb::UnitRecord& unit, double alias_rate,
                        Rng& rng) {
  double roll = rng.UniformReal(0.0, 1.0);
  if (roll < alias_rate && !unit.aliases.empty()) {
    return std::string(unit.aliases[rng.Index(unit.aliases.size())]);
  }
  if (roll < alias_rate + 0.12 && !unit.label_zh.empty()) {
    return std::string(unit.label_zh);
  }
  if (roll < alias_rate + 0.45 || unit.symbols.empty()) {
    return std::string(unit.label_en);
  }
  return std::string(unit.symbols.front());
}

}  // namespace

bool ObjectLooksQuantitative(std::string_view object) {
  std::vector<text::NumberMention> numbers = text::ScanNumbers(object);
  if (numbers.empty()) return false;
  const text::NumberMention& first = numbers.front();
  if (first.begin != 0) return false;
  if (first.is_percent) return true;
  std::string suffix = text::Trim(object.substr(first.end));
  return !suffix.empty();
}

dimqr::Result<TripleStore> BuildSyntheticKg(const kb::DimUnitKB& kb,
                                            const SynthKgOptions& options) {
  TripleStore store;
  Rng rng(options.seed);
  for (const Domain& domain : Domains()) {
    for (int e = 0; e < options.entities_per_domain; ++e) {
      std::string subject =
          std::string(domain.name) + "-" + std::to_string(e + 1);
      for (const QuantityPredicate& pred : domain.quantities) {
        if (!rng.Bernoulli(0.9)) continue;
        DIMQR_ASSIGN_OR_RETURN(
            const UnitId unit_id,
            kb.ResolveId(pred.unit_ids[rng.Index(pred.unit_ids.size())]));
        const kb::UnitRecord* unit = &kb.Get(unit_id);
        double si;
        if (pred.log_uniform) {
          si = std::exp(
              rng.UniformReal(std::log(pred.si_lo), std::log(pred.si_hi)));
        } else {
          si = rng.UniformReal(pred.si_lo, pred.si_hi);
        }
        double value = (si - unit->conversion_offset) / unit->conversion_value;
        std::string surface = PickSurface(*unit, options.alias_rate, rng);
        std::string object = RenderValue(value);
        // Percent renders glued ("42%"), words get a space ("1.9 metres").
        if (surface == "%") {
          object += surface;
        } else {
          object += " " + surface;
        }
        store.Add(subject, pred.predicate, object);
      }
      for (const TextualPredicate& pred : domain.textuals) {
        if (!rng.Bernoulli(0.8)) continue;
        const char* value = pred.values[rng.Index(pred.values.size())];
        store.Add(subject, pred.predicate, value);
      }
    }
  }
  (void)options.trap_rate;  // traps come from the textual value pools
  return store;
}

}  // namespace dimqr::kg
