#ifndef DIMQR_KG_TRIPLE_STORE_H_
#define DIMQR_KG_TRIPLE_STORE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file triple_store.h
/// An in-memory <subject, predicate, object> triple store standing in for
/// CN-DBpedia (substitution, see DESIGN.md). Algorithm 2's bootstrapping
/// retrieval needs exactly three access paths: triples whose object
/// contains a mention, triples of a predicate, and full enumeration.

namespace dimqr::kg {

/// \brief One knowledge-graph triple, e.g.
/// <LeBron James, height, "2.06 metres">.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

/// \brief The store. Append-only; indexes are maintained on insert.
class TripleStore {
 public:
  TripleStore() = default;

  /// Adds one triple.
  void Add(Triple triple);
  void Add(std::string subject, std::string predicate, std::string object);

  std::size_t size() const { return triples_.size(); }
  const std::vector<Triple>& triples() const { return triples_; }

  /// All triples with this exact predicate (findTriplets(K, p)).
  std::vector<const Triple*> FindByPredicate(std::string_view predicate) const;

  /// \brief All triples whose object contains `mention` as a substring
  /// (findTriplets(K, m in object)). Linear scan; the store is small.
  std::vector<const Triple*> FindByObjectContaining(
      std::string_view mention) const;

  /// All triples about a subject.
  std::vector<const Triple*> FindBySubject(std::string_view subject) const;

  /// All distinct predicates, in first-seen order.
  std::vector<std::string> Predicates() const;

 private:
  std::vector<Triple> triples_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_predicate_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_subject_;
  std::vector<std::string> predicate_order_;
};

}  // namespace dimqr::kg

#endif  // DIMQR_KG_TRIPLE_STORE_H_
