#include "kg/triple_store.h"

namespace dimqr::kg {

void TripleStore::Add(Triple triple) {
  std::size_t index = triples_.size();
  if (!by_predicate_.contains(triple.predicate)) {
    predicate_order_.push_back(triple.predicate);
  }
  by_predicate_[triple.predicate].push_back(index);
  by_subject_[triple.subject].push_back(index);
  triples_.push_back(std::move(triple));
}

void TripleStore::Add(std::string subject, std::string predicate,
                      std::string object) {
  Add(Triple{std::move(subject), std::move(predicate), std::move(object)});
}

std::vector<const Triple*> TripleStore::FindByPredicate(
    std::string_view predicate) const {
  std::vector<const Triple*> out;
  auto it = by_predicate_.find(std::string(predicate));
  if (it == by_predicate_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t i : it->second) out.push_back(&triples_[i]);
  return out;
}

std::vector<const Triple*> TripleStore::FindByObjectContaining(
    std::string_view mention) const {
  std::vector<const Triple*> out;
  if (mention.empty()) return out;
  for (const Triple& t : triples_) {
    if (t.object.find(mention) != std::string::npos) out.push_back(&t);
  }
  return out;
}

std::vector<const Triple*> TripleStore::FindBySubject(
    std::string_view subject) const {
  std::vector<const Triple*> out;
  auto it = by_subject_.find(std::string(subject));
  if (it == by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t i : it->second) out.push_back(&triples_[i]);
  return out;
}

std::vector<std::string> TripleStore::Predicates() const {
  return predicate_order_;
}

}  // namespace dimqr::kg
