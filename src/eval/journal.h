#ifndef DIMQR_EVAL_JOURNAL_H_
#define DIMQR_EVAL_JOURNAL_H_

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/status.h"
#include "eval/metrics.h"

/// \file journal.h
/// Checkpoint/resume for the long-running table binaries. The journal is an
/// append-only text file with one record per *completed* evaluation task,
/// keyed by (model name, task key). A rerun pointed at the same file skips
/// every journaled task and replays its stored counts instead, so a run
/// killed halfway resumes where it stopped — and because the records are
/// exact integer counts (derived percentages are recomputed, never stored),
/// the resumed run's final table is byte-identical to an uninterrupted one.
///
/// Only complete tasks are journaled: a task marked incomplete by a
/// permanent backend failure is retried from scratch on resume. Each record
/// is flushed as soon as its task finishes; a record torn mid-write by a
/// kill (at most the last line) fails to parse and is ignored on load.
///
/// Integrity: every record ends in a CRC-32C field (core/snapshot's
/// hardware-dispatched CRC) over the rest of the line. A structurally
/// broken record is tolerated only as the final line (the torn-tail case
/// above); a record whose CRC field is present but wrong, or a torn record
/// followed by valid ones, means the file was corrupted — Open rejects it
/// with kDataLoss instead of silently merging damaged counts into a table.

namespace dimqr::eval {

/// \brief The journal file: loaded on open, appended as tasks complete.
class EvalJournal {
 public:
  /// \brief Opens `path` for append, first loading any records a previous
  /// (possibly killed) run left behind. A torn trailing record is skipped;
  /// a record failing its CRC check (or a torn record that is not the last
  /// line) fails with kDataLoss; a file that cannot be opened for writing
  /// fails with kIOError.
  static Result<std::unique_ptr<EvalJournal>> Open(const std::string& path);

  /// \brief Replays a journaled choice-task record into `*out`. Returns
  /// false (leaving `*out` untouched) when no record exists.
  bool LookupChoice(const std::string& model, const std::string& task,
                    ChoiceMetrics* out) const;

  /// Same for the extraction task's component counts.
  bool LookupExtraction(const std::string& model, const std::string& task,
                        ExtractionMetrics* out) const;

  /// \brief Appends one completed choice task and flushes, so the record
  /// survives a kill immediately after. Incomplete tasks must not be
  /// recorded (their counts are scheduling-dependent diagnostics).
  Status RecordChoice(const std::string& model, const std::string& task,
                      const ChoiceMetrics& metrics);

  /// Same for the extraction task.
  Status RecordExtraction(const std::string& model, const std::string& task,
                          const ExtractionMetrics& metrics);

  /// Records loaded from a pre-existing file (resume diagnostics).
  std::size_t loaded_records() const { return loaded_records_; }

 private:
  using Key = std::pair<std::string, std::string>;  ///< (model, task).

  /// How one loaded line classified: a valid record, a structurally torn
  /// line (only legal as the final line), or a well-formed record whose
  /// CRC does not match its bytes.
  enum class LineParse { kOk, kTorn, kCorrupt };

  EvalJournal() = default;
  LineParse LoadLine(const std::string& line);

  std::map<Key, ChoiceMetrics> choice_;
  std::map<Key, ExtractionMetrics> extraction_;
  std::ofstream out_;
  std::size_t loaded_records_ = 0;
};

}  // namespace dimqr::eval

#endif  // DIMQR_EVAL_JOURNAL_H_
