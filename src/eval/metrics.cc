#include "eval/metrics.h"

#include <cmath>
#include <vector>

namespace dimqr::eval {
namespace {

/// Greedy multiset matching: counts predictions matching an unused gold
/// item under `match`, then attributes fp/fn.
template <typename MatchFn>
void ScoreComponent(const std::vector<lm::ExtractedQuantity>& predicted,
                    const std::vector<lm::ExtractedQuantity>& gold,
                    MatchFn match, PrfCounts& counts) {
  std::vector<bool> used(gold.size(), false);
  std::size_t matched = 0;
  for (const lm::ExtractedQuantity& p : predicted) {
    bool hit = false;
    for (std::size_t g = 0; g < gold.size(); ++g) {
      if (used[g]) continue;
      if (match(p, gold[g])) {
        used[g] = true;
        hit = true;
        ++matched;
        break;
      }
    }
    if (!hit) ++counts.false_positive;
  }
  counts.true_positive += matched;
  counts.false_negative += gold.size() - matched;
}

}  // namespace

void ScoreExtraction(const std::vector<lm::ExtractedQuantity>& predicted,
                     const std::vector<lm::ExtractedQuantity>& gold,
                     ExtractionMetrics& metrics) {
  ScoreComponent(
      predicted, gold,
      [](const lm::ExtractedQuantity& p, const lm::ExtractedQuantity& g) {
        return p.value == g.value && p.unit == g.unit;
      },
      metrics.qe);
  ScoreComponent(
      predicted, gold,
      [](const lm::ExtractedQuantity& p, const lm::ExtractedQuantity& g) {
        return p.value == g.value;
      },
      metrics.ve);
  // UE scores only unit-bearing entries on both sides: bare values have no
  // unit part to judge.
  std::vector<lm::ExtractedQuantity> predicted_units, gold_units;
  for (const lm::ExtractedQuantity& p : predicted) {
    if (!p.unit.empty()) predicted_units.push_back(p);
  }
  for (const lm::ExtractedQuantity& g : gold) {
    if (!g.unit.empty()) gold_units.push_back(g);
  }
  ScoreComponent(
      predicted_units, gold_units,
      [](const lm::ExtractedQuantity& p, const lm::ExtractedQuantity& g) {
        return p.unit == g.unit;
      },
      metrics.ue);
}

std::uint64_t NearestRankPercentile(const std::vector<std::uint64_t>& sorted,
                                    double percentile) {
  if (sorted.empty()) return 0;
  if (percentile <= 0.0) percentile = 1e-9;
  if (percentile > 100.0) percentile = 100.0;
  const double n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(percentile / 100.0 * n));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

}  // namespace dimqr::eval
