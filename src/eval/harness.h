#ifndef DIMQR_EVAL_HARNESS_H_
#define DIMQR_EVAL_HARNESS_H_

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "dimeval/benchmark.h"
#include "eval/journal.h"
#include "eval/metrics.h"
#include "linking/annotator.h"
#include "lm/model_api.h"

/// \file harness.h
/// The DimEval evaluation harness: runs a model over benchmark test splits
/// and aggregates Table VII / Table VIII style results.

namespace dimqr::eval {

/// \brief A quantity extractor: task instance -> predicted quantities.
using Extractor = std::function<std::vector<lm::ExtractedQuantity>(
    const dimeval::TaskInstance&)>;

/// \brief Extractor backed by DimKS (the DimPerc pipeline's extraction
/// path; see EXPERIMENTS.md).
Extractor AnnotatorExtractor(const linking::DimKsAnnotator& annotator);

/// \brief Extractor that calls Model::ExtractQuantities.
Extractor ModelExtractor(lm::Model& model);

/// \brief Gold quantities of an extraction instance as ExtractedQuantity.
std::vector<lm::ExtractedQuantity> GoldOf(const dimeval::TaskInstance& inst);

/// \brief Evaluates a model on one choice task's instances.
///
/// Instances are fanned out over the global parallel pool when the model
/// reports SupportsParallelEval(); each instance writes an index-addressed
/// outcome slot that is folded serially in index order, so the metrics are
/// identical at every `DIMQR_THREADS` setting.
///
/// Failure handling: a decline whose ChoiceAnswer::failure is retryable
/// (the resilience layer gave up on a transient fault) is scored like a
/// model decline and counted in `declined_after_retry`. A *permanent*
/// backend failure marks the whole task `incomplete` and cancels the
/// remaining instances cooperatively (CancelMode::kCancelOnPermanentError)
/// — an incomplete task's counts are partial diagnostics, never table
/// numbers. Note this function does NOT wrap `model` in the resilience
/// layer; callers that want retries pass a lm::ResilientModel (as
/// EvaluateOnDimEval does automatically).
ChoiceMetrics EvaluateChoiceTask(
    lm::Model& model, const std::vector<const dimeval::TaskInstance*>& tests);

/// \brief Evaluates an extractor over extraction instances.
///
/// Pass `parallel_safe = true` only if the extractor may be invoked
/// concurrently from several threads (true for AnnotatorExtractor, and for
/// ModelExtractor over a model with SupportsParallelEval()); otherwise the
/// instances run serially on the calling thread.
ExtractionMetrics EvaluateExtraction(
    const Extractor& extractor,
    const std::vector<const dimeval::TaskInstance*>& tests,
    bool parallel_safe = false);

/// \brief One model's full Table VII row.
struct DimEvalRow {
  std::string model;
  /// QE/VE/UE F1 (negative = not evaluated).
  double qe_f1 = -1.0, ve_f1 = -1.0, ue_f1 = -1.0;
  /// The model-backed extraction path failed permanently at least once;
  /// the QE/VE/UE cells are unusable (tables print "inc").
  bool extraction_incomplete = false;
  /// Per choice task: metrics keyed by task key.
  std::map<std::string, ChoiceMetrics> choice;
};

/// \brief Applies extraction counts (measured or journaled) to a row's
/// QE/VE/UE cells. "-" rows: a model with no extraction path produced no
/// predictions at all; left as not-evaluated rather than zero. Shared by
/// EvaluateOnDimEval and the fleet merge (eval/fleet.h) so both paths
/// derive cells from counts identically.
void ApplyExtractionToRow(const ExtractionMetrics& metrics, DimEvalRow& row);

/// \brief The six choice tasks in the fixed order EvaluateOnDimEval (and
/// the fleet's shard planner) evaluates them.
std::span<const char* const> DimEvalChoiceTasks();

/// \brief Runs a model over all DimEval test splits. When `extractor` is
/// provided the extraction row is evaluated through it; otherwise through
/// Model::ExtractQuantities (which may be empty). A provided extractor must
/// be safe for concurrent invocation — the row is evaluated in parallel
/// when `DIMQR_THREADS` > 1 (results are bit-identical regardless).
///
/// Resilience: unless `model` already is one, it is wrapped in a
/// lm::ResilientModel (default policies) for the duration of the row, so a
/// flaky backend gets bounded retries and permanent failures degrade to
/// incomplete task markers instead of aborting the run.
///
/// Checkpointing: with a non-null `journal`, each completed task is
/// looked up first (a journaled record is replayed without touching the
/// model) and recorded after evaluation — see eval/journal.h. Incomplete
/// tasks are never journaled, so a resume retries them.
DimEvalRow EvaluateOnDimEval(lm::Model& model,
                             const dimeval::DimEvalBenchmark& bench,
                             const Extractor* extractor = nullptr,
                             EvalJournal* journal = nullptr);

/// \brief Category aggregates for Table VIII: macro precision/F1 over the
/// tasks of each of the three categories. Extraction contributes its QE
/// pair-level counts to basic perception. Incomplete tasks (permanent
/// backend failure) are excluded from the macro average — their counts are
/// diagnostics, not results.
struct CategoryMetrics {
  double precision = 0.0;
  double f1 = 0.0;
};
std::map<dimeval::TaskCategory, CategoryMetrics> AggregateByCategory(
    const DimEvalRow& row);

}  // namespace dimqr::eval

#endif  // DIMQR_EVAL_HARNESS_H_
