#ifndef DIMQR_EVAL_HARNESS_H_
#define DIMQR_EVAL_HARNESS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dimeval/benchmark.h"
#include "eval/metrics.h"
#include "linking/annotator.h"
#include "lm/model_api.h"

/// \file harness.h
/// The DimEval evaluation harness: runs a model over benchmark test splits
/// and aggregates Table VII / Table VIII style results.

namespace dimqr::eval {

/// \brief A quantity extractor: task instance -> predicted quantities.
using Extractor = std::function<std::vector<lm::ExtractedQuantity>(
    const dimeval::TaskInstance&)>;

/// \brief Extractor backed by DimKS (the DimPerc pipeline's extraction
/// path; see EXPERIMENTS.md).
Extractor AnnotatorExtractor(const linking::DimKsAnnotator& annotator);

/// \brief Extractor that calls Model::ExtractQuantities.
Extractor ModelExtractor(lm::Model& model);

/// \brief Gold quantities of an extraction instance as ExtractedQuantity.
std::vector<lm::ExtractedQuantity> GoldOf(const dimeval::TaskInstance& inst);

/// \brief Evaluates a model on one choice task's instances.
///
/// Instances are fanned out over the global parallel pool when the model
/// reports SupportsParallelEval(); per-chunk counts are merged in index
/// order, so the metrics are identical at every `DIMQR_THREADS` setting.
ChoiceMetrics EvaluateChoiceTask(
    lm::Model& model, const std::vector<const dimeval::TaskInstance*>& tests);

/// \brief Evaluates an extractor over extraction instances.
///
/// Pass `parallel_safe = true` only if the extractor may be invoked
/// concurrently from several threads (true for AnnotatorExtractor, and for
/// ModelExtractor over a model with SupportsParallelEval()); otherwise the
/// instances run serially on the calling thread.
ExtractionMetrics EvaluateExtraction(
    const Extractor& extractor,
    const std::vector<const dimeval::TaskInstance*>& tests,
    bool parallel_safe = false);

/// \brief One model's full Table VII row.
struct DimEvalRow {
  std::string model;
  /// QE/VE/UE F1 (negative = not evaluated).
  double qe_f1 = -1.0, ve_f1 = -1.0, ue_f1 = -1.0;
  /// Per choice task: metrics keyed by task key.
  std::map<std::string, ChoiceMetrics> choice;
};

/// \brief Runs a model over all DimEval test splits. When `extractor` is
/// provided the extraction row is evaluated through it; otherwise through
/// Model::ExtractQuantities (which may be empty). A provided extractor must
/// be safe for concurrent invocation — the row is evaluated in parallel
/// when `DIMQR_THREADS` > 1 (results are bit-identical regardless).
DimEvalRow EvaluateOnDimEval(lm::Model& model,
                             const dimeval::DimEvalBenchmark& bench,
                             const Extractor* extractor = nullptr);

/// \brief Category aggregates for Table VIII: macro precision/F1 over the
/// tasks of each of the three categories. Extraction contributes its QE
/// pair-level counts to basic perception.
struct CategoryMetrics {
  double precision = 0.0;
  double f1 = 0.0;
};
std::map<dimeval::TaskCategory, CategoryMetrics> AggregateByCategory(
    const DimEvalRow& row);

}  // namespace dimqr::eval

#endif  // DIMQR_EVAL_HARNESS_H_
