#include "eval/table.h"

#include <algorithm>
#include <cstdio>

#include "text/string_util.h"

namespace dimqr::eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = text::Utf8Length(header_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], text::Utf8Length(row[c]));
    }
  }
  auto pad = [&widths](const std::string& cell, std::size_t c) {
    std::string out = cell;
    std::size_t len = text::Utf8Length(cell);
    for (std::size_t i = len; i < widths[c]; ++i) out += ' ';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << ' ' << pad(c < row.size() ? row[c] : "", c) << " |";
    }
    os << '\n';
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
  print_sep();
}

std::string TablePrinter::Pct(double value_0_to_1) {
  if (value_0_to_1 < 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value_0_to_1 * 100.0);
  return buf;
}

std::string TablePrinter::Num(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace dimqr::eval
