#ifndef DIMQR_EVAL_FLEET_H_
#define DIMQR_EVAL_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "core/proc.h"
#include "dimeval/benchmark.h"
#include "eval/harness.h"

/// \file fleet.h
/// Crash-tolerant multi-process DimEval evaluation: the eval-layer driver
/// over core/proc's shard supervisor. The (model, task) grid is flattened
/// into a fixed item order — each model's six choice tasks then its
/// extraction task, models in caller order, exactly the order
/// EvaluateOnDimEval walks a row — and split into contiguous shards, one
/// forked worker per shard. Workers inherit the caller's built models, KB
/// and any mmap-ed snapshot copy-on-write, so N workers share one physical
/// model image.
///
/// Determinism/merge argument (DESIGN.md §12): each item's metrics are
/// exact integer counts computed by the same per-instance logic as the
/// single-process harness, and every per-instance decision (answers,
/// fault draws) is a pure function of the instance seed. Item results are
/// merged in fixed item order. Hence the merged rows — and any table
/// printed from them — are byte-identical across worker counts and crash
/// patterns, including none.
///
/// Crash injection: before each item the worker evaluates the
/// `fleet.worker` fault site with the item's seed and the shard's crash
/// count as the attempt index, so `DIMQR_FAULTS="fleet.worker:0.2:sigkill"`
/// kills workers mid-shard deterministically — and deterministically stops
/// killing once the shard has crashed `after_n` times (fault.h).
///
/// Per-shard journals: with a journal directory configured, each shard
/// appends completed items to `<dir>/shard_<s>.journal` (eval/journal.h,
/// CRC-protected records). A relaunched or reassigned shard replays the
/// dead worker's records and resumes mid-shard instead of recomputing. A
/// corrupt journal fails the shard permanently with kDataLoss.

namespace dimqr::eval {

/// \brief One table row's model under fleet evaluation.
struct FleetModelSpec {
  std::shared_ptr<lm::Model> model;
  /// Extraction path: a concurrent-safe extractor (e.g. AnnotatorExtractor)
  /// or nullptr for the model-backed Model::ExtractQuantities path. The
  /// pointee must outlive the fleet run.
  const Extractor* extractor = nullptr;
};

struct FleetEvalOptions {
  /// Worker process count (clamped to [1, item count]). Shards are
  /// contiguous item ranges, one per worker slot.
  int workers = 1;
  /// Directory for per-shard crash-resume journals; empty disables
  /// journaling (crashed shards recompute from their start).
  std::string journal_dir;
  /// Supervisor tuning; `num_workers` is overwritten from `workers`.
  proc::SupervisorOptions supervisor;
};

/// \brief Worker count from the DIMQR_WORKERS environment variable
/// (clamped to [1, 256]); 1 when unset or unparseable.
int WorkersFromEnv();

/// \brief Evaluates every model over the benchmark across a supervised
/// worker fleet and merges per-item results into rows (same shape as
/// EvaluateOnDimEval per model, in `models` order). On success `*report`
/// (when non-null) receives the supervision counters — the chaos CI greps
/// its Summary() to prove injected crashes actually bit.
Result<std::vector<DimEvalRow>> RunFleetDimEval(
    const std::vector<FleetModelSpec>& models,
    const dimeval::DimEvalBenchmark& bench, const FleetEvalOptions& options,
    proc::FleetReport* report = nullptr);

}  // namespace dimqr::eval

#endif  // DIMQR_EVAL_FLEET_H_
