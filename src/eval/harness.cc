#include "eval/harness.h"

#include "core/parallel.h"
#include "lm/mock_llm.h"

namespace dimqr::eval {
namespace {

using namespace lm::tasks;

}  // namespace

std::vector<lm::ExtractedQuantity> GoldOf(const dimeval::TaskInstance& inst) {
  std::vector<lm::ExtractedQuantity> out;
  for (const dimeval::GoldQuantity& g : inst.gold_quantities) {
    out.push_back({g.value_text, g.unit_text});
  }
  return out;
}

Extractor AnnotatorExtractor(const linking::DimKsAnnotator& annotator) {
  return [&annotator](const dimeval::TaskInstance& inst) {
    std::vector<lm::ExtractedQuantity> out;
    for (const linking::QuantityAnnotation& ann :
         annotator.Annotate(inst.source_text)) {
      lm::ExtractedQuantity q;
      q.value = std::string(ann.number.TextIn(inst.source_text));
      q.unit = ann.unit_text;
      out.push_back(std::move(q));
    }
    return out;
  };
}

Extractor ModelExtractor(lm::Model& model) {
  return [&model](const dimeval::TaskInstance& inst) {
    lm::ExtractionQuestion question;
    question.text = inst.source_text;
    question.gold = GoldOf(inst);
    question.instance_seed = inst.instance_seed;
    return model.ExtractQuantities(question);
  };
}

ChoiceMetrics EvaluateChoiceTask(
    lm::Model& model,
    const std::vector<const dimeval::TaskInstance*>& tests) {
  const auto n = static_cast<std::int64_t>(tests.size());
  // A model that is not parallel-safe is evaluated in one chunk, which the
  // pool runs serially on the calling thread. The metrics are integer counts
  // merged in chunk-index order, so the row is identical either way.
  const std::int64_t grain = model.SupportsParallelEval() ? 0 : n;
  Result<ChoiceMetrics> result = ParallelMapReduce<ChoiceMetrics>(
      n, ChoiceMetrics{},
      [&](std::int64_t begin, std::int64_t end, int) -> Result<ChoiceMetrics> {
        ChoiceMetrics partial;
        for (std::int64_t i = begin; i < end; ++i) {
          const dimeval::TaskInstance* inst =
              tests[static_cast<std::size_t>(i)];
          ++partial.total;
          lm::ChoiceAnswer answer =
              model.AnswerChoice(inst->ToChoiceQuestion());
          if (!answer.answered()) continue;
          ++partial.answered;
          if (answer.index == inst->gold_index) ++partial.correct;
        }
        return partial;
      },
      [](ChoiceMetrics& acc, ChoiceMetrics&& partial) { acc += partial; },
      grain);
  // The chunk body is infallible; only a pool invariant violation can fail.
  return result.ValueOrDie();
}

ExtractionMetrics EvaluateExtraction(
    const Extractor& extractor,
    const std::vector<const dimeval::TaskInstance*>& tests,
    bool parallel_safe) {
  const auto n = static_cast<std::int64_t>(tests.size());
  const std::int64_t grain = parallel_safe ? 0 : n;
  Result<ExtractionMetrics> result = ParallelMapReduce<ExtractionMetrics>(
      n, ExtractionMetrics{},
      [&](std::int64_t begin, std::int64_t end,
          int) -> Result<ExtractionMetrics> {
        ExtractionMetrics partial;
        for (std::int64_t i = begin; i < end; ++i) {
          const dimeval::TaskInstance& inst =
              *tests[static_cast<std::size_t>(i)];
          std::vector<lm::ExtractedQuantity> predicted = extractor(inst);
          ScoreExtraction(predicted, GoldOf(inst), partial);
        }
        return partial;
      },
      [](ExtractionMetrics& acc, ExtractionMetrics&& partial) {
        acc += partial;
      },
      grain);
  return result.ValueOrDie();
}

DimEvalRow EvaluateOnDimEval(lm::Model& model,
                             const dimeval::DimEvalBenchmark& bench,
                             const Extractor* extractor) {
  DimEvalRow row;
  row.model = model.name();
  const char* choice_tasks[] = {kQuantityKindMatch,   kComparableAnalysis,
                                kDimensionPrediction, kDimensionArithmetic,
                                kMagnitudeComparison, kUnitConversion};
  for (const char* task : choice_tasks) {
    row.choice[task] = EvaluateChoiceTask(model, bench.TestOf(task));
  }
  std::vector<const dimeval::TaskInstance*> extraction =
      bench.TestOf(kQuantityExtraction);
  if (!extraction.empty()) {
    Extractor model_extractor = ModelExtractor(model);
    const Extractor& chosen =
        extractor != nullptr ? *extractor : model_extractor;
    // A caller-provided extractor must be safe for concurrent invocation
    // (both in-tree factories are); the model path defers to its own flag.
    bool parallel_safe =
        extractor != nullptr || model.SupportsParallelEval();
    ExtractionMetrics metrics =
        EvaluateExtraction(chosen, extraction, parallel_safe);
    // "-" rows: a model with no extraction path produced no predictions at
    // all; mark as not evaluated rather than zero.
    if (metrics.qe.true_positive + metrics.qe.false_positive > 0) {
      row.qe_f1 = metrics.qe.F1();
      row.ve_f1 = metrics.ve.F1();
      row.ue_f1 = metrics.ue.F1();
    }
  }
  return row;
}

std::map<dimeval::TaskCategory, CategoryMetrics> AggregateByCategory(
    const DimEvalRow& row) {
  std::map<dimeval::TaskCategory, std::vector<std::pair<double, double>>>
      samples;
  for (const auto& [task, metrics] : row.choice) {
    samples[dimeval::CategoryOf(task)].emplace_back(metrics.Precision(),
                                                    metrics.F1());
  }
  if (row.qe_f1 >= 0.0) {
    // Extraction contributes its pair-level F1 as both components.
    samples[dimeval::TaskCategory::kBasicPerception].emplace_back(row.qe_f1,
                                                                  row.qe_f1);
  }
  std::map<dimeval::TaskCategory, CategoryMetrics> out;
  for (const auto& [category, values] : samples) {
    CategoryMetrics aggregate;
    for (const auto& [p, f1] : values) {
      aggregate.precision += p;
      aggregate.f1 += f1;
    }
    aggregate.precision /= static_cast<double>(values.size());
    aggregate.f1 /= static_cast<double>(values.size());
    out[category] = aggregate;
  }
  return out;
}

}  // namespace dimqr::eval
