#include "eval/harness.h"

#include <cstdio>
#include <optional>

#include "core/parallel.h"
#include "lm/mock_llm.h"
#include "lm/resilient_model.h"

namespace dimqr::eval {
namespace {

using namespace lm::tasks;

}  // namespace

std::vector<lm::ExtractedQuantity> GoldOf(const dimeval::TaskInstance& inst) {
  std::vector<lm::ExtractedQuantity> out;
  for (const dimeval::GoldQuantity& g : inst.gold_quantities) {
    out.push_back({g.value_text, g.unit_text});
  }
  return out;
}

Extractor AnnotatorExtractor(const linking::DimKsAnnotator& annotator) {
  return [&annotator](const dimeval::TaskInstance& inst) {
    std::vector<lm::ExtractedQuantity> out;
    for (const linking::QuantityAnnotation& ann :
         annotator.Annotate(inst.source_text)) {
      lm::ExtractedQuantity q;
      q.value = std::string(ann.number.TextIn(inst.source_text));
      q.unit = ann.unit_text;
      out.push_back(std::move(q));
    }
    return out;
  };
}

Extractor ModelExtractor(lm::Model& model) {
  return [&model](const dimeval::TaskInstance& inst) {
    lm::ExtractionQuestion question;
    question.text = inst.source_text;
    question.gold = GoldOf(inst);
    question.instance_seed = inst.instance_seed;
    return model.ExtractQuantities(question);
  };
}

namespace {

/// Per-instance outcome slots for EvaluateChoiceTask. Index-addressed and
/// folded serially in index order, so the fold never depends on which
/// thread ran which instance. kSkipped marks instances a cancelled chunk
/// never ran.
enum ChoiceOutcome : std::uint8_t {
  kSkipped = 0,
  kCorrect,
  kWrong,
  kDeclined,
  kDeclinedAfterRetry,
  kFailedPermanently,
};

}  // namespace

ChoiceMetrics EvaluateChoiceTask(
    lm::Model& model,
    const std::vector<const dimeval::TaskInstance*>& tests) {
  const auto n = static_cast<std::int64_t>(tests.size());
  // A model that is not parallel-safe is evaluated in one chunk, which the
  // pool runs serially on the calling thread. Outcomes land in
  // index-addressed slots either way, so the fold below is identical.
  const std::int64_t grain = model.SupportsParallelEval() ? 0 : n;
  std::vector<std::uint8_t> outcome(tests.size(), kSkipped);
  Status status = ParallelFor(
      n,
      [&](std::int64_t begin, std::int64_t end, int) -> Status {
        for (std::int64_t i = begin; i < end; ++i) {
          const auto slot = static_cast<std::size_t>(i);
          const dimeval::TaskInstance* inst = tests[slot];
          lm::ChoiceAnswer answer =
              model.AnswerChoice(inst->ToChoiceQuestion());
          if (answer.answered()) {
            outcome[slot] =
                answer.index == inst->gold_index ? kCorrect : kWrong;
          } else if (answer.failure == StatusCode::kOk) {
            outcome[slot] = kDeclined;
          } else if (IsRetryable(answer.failure)) {
            // The resilience layer exhausted its retries: a degraded
            // decline, scored like any other decline but counted apart.
            outcome[slot] = kDeclinedAfterRetry;
          } else {
            // Permanent backend failure: the task cannot complete, so fail
            // the chunk and let cancellation skip the doomed remainder.
            outcome[slot] = kFailedPermanently;
            return Status::Internal("backend failed permanently on " +
                                    inst->task);
          }
        }
        return Status::OK();
      },
      grain, CancelMode::kCancelOnPermanentError);

  ChoiceMetrics metrics;
  for (std::uint8_t slot : outcome) {
    if (slot == kSkipped) continue;
    ++metrics.total;
    switch (slot) {
      case kCorrect:
        ++metrics.answered;
        ++metrics.correct;
        break;
      case kWrong:
        ++metrics.answered;
        break;
      case kDeclinedAfterRetry:
        ++metrics.declined_after_retry;
        break;
      case kFailedPermanently:
        ++metrics.failed;
        break;
      default:
        break;
    }
  }
  // Any permanent failure (or an exception escaping the model, demoted to
  // kInternal at the pool boundary) marks the task incomplete. This flag is
  // deterministic — per-instance failure decisions are — even though the
  // partial counts above depend on how far cancellation let the loop get.
  metrics.incomplete = !status.ok();
  return metrics;
}

ExtractionMetrics EvaluateExtraction(
    const Extractor& extractor,
    const std::vector<const dimeval::TaskInstance*>& tests,
    bool parallel_safe) {
  const auto n = static_cast<std::int64_t>(tests.size());
  const std::int64_t grain = parallel_safe ? 0 : n;
  Result<ExtractionMetrics> result = ParallelMapReduce<ExtractionMetrics>(
      n, ExtractionMetrics{},
      [&](std::int64_t begin, std::int64_t end,
          int) -> Result<ExtractionMetrics> {
        ExtractionMetrics partial;
        for (std::int64_t i = begin; i < end; ++i) {
          const dimeval::TaskInstance& inst =
              *tests[static_cast<std::size_t>(i)];
          std::vector<lm::ExtractedQuantity> predicted = extractor(inst);
          ScoreExtraction(predicted, GoldOf(inst), partial);
        }
        return partial;
      },
      [](ExtractionMetrics& acc, ExtractionMetrics&& partial) {
        acc += partial;
      },
      grain);
  return result.ValueOrDie();
}

void ApplyExtractionToRow(const ExtractionMetrics& metrics, DimEvalRow& row) {
  if (metrics.qe.true_positive + metrics.qe.false_positive > 0) {
    row.qe_f1 = metrics.qe.F1();
    row.ve_f1 = metrics.ve.F1();
    row.ue_f1 = metrics.ue.F1();
  }
}

std::span<const char* const> DimEvalChoiceTasks() {
  static const char* const kTasks[] = {
      kQuantityKindMatch,   kComparableAnalysis, kDimensionPrediction,
      kDimensionArithmetic, kMagnitudeComparison, kUnitConversion};
  return kTasks;
}

namespace {

/// Journal write failures are warnings, not fatal: the evaluation result
/// in hand is still good, only resumability degrades.
void WarnJournal(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "dimqr: journal write failed: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace

DimEvalRow EvaluateOnDimEval(lm::Model& model,
                             const dimeval::DimEvalBenchmark& bench,
                             const Extractor* extractor,
                             EvalJournal* journal) {
  // Every row runs behind the resilience layer: transient backend faults
  // are retried, permanent ones degrade to incomplete markers. Skip the
  // wrap when the caller already provided a ResilientModel, so faults are
  // not evaluated (and retried) twice per call.
  auto* shield = dynamic_cast<lm::ResilientModel*>(&model);
  std::optional<lm::ResilientModel> local_shield;
  if (shield == nullptr) {
    local_shield.emplace(model);
    shield = &*local_shield;
  }

  DimEvalRow row;
  row.model = model.name();
  for (const char* task : DimEvalChoiceTasks()) {
    ChoiceMetrics metrics;
    if (journal != nullptr &&
        journal->LookupChoice(row.model, task, &metrics)) {
      row.choice[task] = metrics;
      continue;
    }
    metrics = EvaluateChoiceTask(*shield, bench.TestOf(task));
    if (journal != nullptr && !metrics.incomplete) {
      WarnJournal(journal->RecordChoice(row.model, task, metrics));
    }
    row.choice[task] = metrics;
  }

  std::vector<const dimeval::TaskInstance*> extraction =
      bench.TestOf(kQuantityExtraction);
  if (!extraction.empty()) {
    ExtractionMetrics metrics;
    if (journal != nullptr &&
        journal->LookupExtraction(row.model, kQuantityExtraction, &metrics)) {
      ApplyExtractionToRow(metrics, row);
      return row;
    }
    Extractor model_extractor = ModelExtractor(*shield);
    const Extractor& chosen =
        extractor != nullptr ? *extractor : model_extractor;
    // A caller-provided extractor must be safe for concurrent invocation
    // (both in-tree factories are); the model path defers to its own flag.
    bool parallel_safe =
        extractor != nullptr || model.SupportsParallelEval();
    const std::uint64_t permanent_before =
        shield->stats().permanent_failures.load(std::memory_order_relaxed);
    ExtractionMetrics measured =
        EvaluateExtraction(chosen, extraction, parallel_safe);
    // The extractor signature cannot report failures, but the resilience
    // layer counts them: any permanent failure during the model-backed path
    // poisons the counts (failed instances scored as empty predictions), so
    // mark the cells incomplete instead. A caller-provided extractor never
    // goes through the model, hence never through a fault point.
    if (extractor == nullptr &&
        shield->stats().permanent_failures.load(std::memory_order_relaxed) >
            permanent_before) {
      row.extraction_incomplete = true;
    } else {
      ApplyExtractionToRow(measured, row);
      if (journal != nullptr) {
        WarnJournal(journal->RecordExtraction(row.model, kQuantityExtraction,
                                              measured));
      }
    }
  }
  return row;
}

std::map<dimeval::TaskCategory, CategoryMetrics> AggregateByCategory(
    const DimEvalRow& row) {
  std::map<dimeval::TaskCategory, std::vector<std::pair<double, double>>>
      samples;
  for (const auto& [task, metrics] : row.choice) {
    // Incomplete tasks carry scheduling-dependent partial counts; leaving
    // them out keeps the macro average meaningful (and deterministic).
    if (metrics.incomplete) continue;
    samples[dimeval::CategoryOf(task)].emplace_back(metrics.Precision(),
                                                    metrics.F1());
  }
  if (row.qe_f1 >= 0.0) {
    // Extraction contributes its pair-level F1 as both components.
    samples[dimeval::TaskCategory::kBasicPerception].emplace_back(row.qe_f1,
                                                                  row.qe_f1);
  }
  std::map<dimeval::TaskCategory, CategoryMetrics> out;
  for (const auto& [category, values] : samples) {
    CategoryMetrics aggregate;
    for (const auto& [p, f1] : values) {
      aggregate.precision += p;
      aggregate.f1 += f1;
    }
    aggregate.precision /= static_cast<double>(values.size());
    aggregate.f1 /= static_cast<double>(values.size());
    out[category] = aggregate;
  }
  return out;
}

}  // namespace dimqr::eval
