#include "eval/fleet.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/fault.h"
#include "core/rng.h"
#include "core/snapshot.h"
#include "lm/mock_llm.h"
#include "lm/resilient_model.h"

namespace dimqr::eval {
namespace {

using namespace lm::tasks;

/// One cell of the flattened (model, task) grid.
struct FleetItem {
  int model_index = 0;
  const char* task = nullptr;
  bool is_extraction = false;
};

/// One item's result on the wire (SHARD_DONE payload element). Exact
/// integer counts only — derived percentages are recomputed at merge, the
/// same byte-identity rule the journal follows. For choice items counts
/// [0..4] are total/answered/correct/declined_after_retry/failed; for
/// extraction items counts[0..8] are the qe/ve/ue tp/fp/fn triples.
struct WireItemResult {
  std::uint32_t item = 0;
  std::uint8_t is_extraction = 0;
  std::uint8_t incomplete = 0;
  std::uint8_t pad[2] = {0, 0};
  std::uint64_t counts[9] = {0};
};
static_assert(std::is_trivially_copyable_v<WireItemResult>);

std::vector<FleetItem> PlanItems(const std::vector<FleetModelSpec>& models,
                                 const dimeval::DimEvalBenchmark& bench) {
  std::vector<FleetItem> items;
  const bool have_extraction = !bench.TestOf(kQuantityExtraction).empty();
  for (int mi = 0; mi < static_cast<int>(models.size()); ++mi) {
    for (const char* task : DimEvalChoiceTasks()) {
      items.push_back({mi, task, false});
    }
    if (have_extraction) items.push_back({mi, kQuantityExtraction, true});
  }
  return items;
}

/// The item's fault-instance seed: pure in (model name, task), independent
/// of shard boundaries and worker count, so a crash fault hits the same
/// items at every DIMQR_WORKERS setting.
std::uint64_t ItemSeed(const std::string& model_name, const char* task) {
  return Rng::DeriveSeed(Rng::DeriveSeed(Rng::DeriveSeed(20240131, "fleet"),
                                         model_name),
                         task);
}

/// Forwards every model call through a rate-limited heartbeat, so a worker
/// evaluating a long task still proves liveness per instance — without a
/// heartbeat thread (the worker stays single-threaded, which keeps fork
/// legal under TSan and pipe writes uninterleaved).
class BeatingModel : public lm::Model {
 public:
  BeatingModel(lm::Model& inner, proc::ShardContext& ctx)
      : inner_(inner), ctx_(ctx) {}

  const std::string& name() const override { return inner_.name(); }
  lm::ChoiceAnswer AnswerChoice(const lm::ChoiceQuestion& question) override {
    ctx_.Beat();
    return inner_.AnswerChoice(question);
  }
  std::string AnswerText(const lm::TextQuestion& question) override {
    ctx_.Beat();
    return inner_.AnswerText(question);
  }
  std::vector<lm::ExtractedQuantity> ExtractQuantities(
      const lm::ExtractionQuestion& question) override {
    ctx_.Beat();
    return inner_.ExtractQuantities(question);
  }
  bool SupportsParallelEval() const override {
    return inner_.SupportsParallelEval();
  }

 private:
  lm::Model& inner_;
  proc::ShardContext& ctx_;
};

/// Evaluates the deterministic crash fault for one item. Never returns
/// when the fault fires: the whole point is that the supervisor sees a
/// process death, not an error return.
void MaybeCrash(std::uint64_t item_seed, int attempt) {
  FaultDecision decision =
      FAULT_POINT("fleet.worker").Evaluate(item_seed, attempt);
  if (decision.kind == FaultKind::kSigkill) {
    (void)::raise(SIGKILL);
  } else if (decision.kind == FaultKind::kExit) {
    ::_exit(13);
  }
}

void WarnJournal(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "dimqr: fleet journal write failed: %s\n",
                 status.ToString().c_str());
  }
}

WireItemResult PackChoice(std::uint32_t item, const ChoiceMetrics& m) {
  WireItemResult out;
  out.item = item;
  out.is_extraction = 0;
  out.incomplete = m.incomplete ? 1 : 0;
  out.counts[0] = m.total;
  out.counts[1] = m.answered;
  out.counts[2] = m.correct;
  out.counts[3] = m.declined_after_retry;
  out.counts[4] = m.failed;
  return out;
}

ChoiceMetrics UnpackChoice(const WireItemResult& wire) {
  ChoiceMetrics m;
  m.total = static_cast<std::size_t>(wire.counts[0]);
  m.answered = static_cast<std::size_t>(wire.counts[1]);
  m.correct = static_cast<std::size_t>(wire.counts[2]);
  m.declined_after_retry = static_cast<std::size_t>(wire.counts[3]);
  m.failed = static_cast<std::size_t>(wire.counts[4]);
  m.incomplete = wire.incomplete != 0;
  return m;
}

WireItemResult PackExtraction(std::uint32_t item, const ExtractionMetrics& m,
                              bool incomplete) {
  WireItemResult out;
  out.item = item;
  out.is_extraction = 1;
  out.incomplete = incomplete ? 1 : 0;
  const std::size_t counts[9] = {
      m.qe.true_positive, m.qe.false_positive, m.qe.false_negative,
      m.ve.true_positive, m.ve.false_positive, m.ve.false_negative,
      m.ue.true_positive, m.ue.false_positive, m.ue.false_negative};
  for (int i = 0; i < 9; ++i) out.counts[i] = counts[i];
  return out;
}

ExtractionMetrics UnpackExtraction(const WireItemResult& wire) {
  ExtractionMetrics m;
  m.qe.true_positive = static_cast<std::size_t>(wire.counts[0]);
  m.qe.false_positive = static_cast<std::size_t>(wire.counts[1]);
  m.qe.false_negative = static_cast<std::size_t>(wire.counts[2]);
  m.ve.true_positive = static_cast<std::size_t>(wire.counts[3]);
  m.ve.false_positive = static_cast<std::size_t>(wire.counts[4]);
  m.ve.false_negative = static_cast<std::size_t>(wire.counts[5]);
  m.ue.true_positive = static_cast<std::size_t>(wire.counts[6]);
  m.ue.false_positive = static_cast<std::size_t>(wire.counts[7]);
  m.ue.false_negative = static_cast<std::size_t>(wire.counts[8]);
  return m;
}

/// Runs one item inside a worker, honoring the shard journal. The
/// per-instance logic is EvaluateChoiceTask / EvaluateExtraction — the
/// same functions the single-process harness calls — behind a fresh
/// resilience shield per item (state cannot span processes; equivalent
/// for clean and crash-fault runs, see fleet.h).
WireItemResult RunItem(const FleetItem& item, std::uint32_t item_index,
                       const FleetModelSpec& spec,
                       const dimeval::DimEvalBenchmark& bench,
                       EvalJournal* journal, proc::ShardContext& ctx) {
  const std::string& model_name = spec.model->name();
  if (!item.is_extraction) {
    ChoiceMetrics metrics;
    if (journal != nullptr &&
        journal->LookupChoice(model_name, item.task, &metrics)) {
      return PackChoice(item_index, metrics);
    }
    lm::ResilientModel shield(*spec.model);
    BeatingModel beating(shield, ctx);
    metrics = EvaluateChoiceTask(beating, bench.TestOf(item.task));
    if (journal != nullptr && !metrics.incomplete) {
      WarnJournal(journal->RecordChoice(model_name, item.task, metrics));
    }
    return PackChoice(item_index, metrics);
  }

  ExtractionMetrics metrics;
  if (journal != nullptr &&
      journal->LookupExtraction(model_name, item.task, &metrics)) {
    return PackExtraction(item_index, metrics, /*incomplete=*/false);
  }
  lm::ResilientModel shield(*spec.model);
  BeatingModel beating(shield, ctx);
  Extractor model_extractor = ModelExtractor(beating);
  const Extractor& chosen =
      spec.extractor != nullptr ? *spec.extractor : model_extractor;
  const bool parallel_safe =
      spec.extractor != nullptr || spec.model->SupportsParallelEval();
  const std::uint64_t permanent_before =
      shield.stats().permanent_failures.load(std::memory_order_relaxed);
  metrics = EvaluateExtraction(chosen, bench.TestOf(item.task), parallel_safe);
  const bool incomplete =
      spec.extractor == nullptr &&
      shield.stats().permanent_failures.load(std::memory_order_relaxed) >
          permanent_before;
  if (journal != nullptr && !incomplete) {
    WarnJournal(journal->RecordExtraction(model_name, item.task, metrics));
  }
  return PackExtraction(item_index, metrics, incomplete);
}

}  // namespace

int WorkersFromEnv() {
  const char* env = std::getenv("DIMQR_WORKERS");
  if (env == nullptr || env[0] == '\0') return 1;
  int value = std::atoi(env);
  return std::clamp(value, 1, 256);
}

Result<std::vector<DimEvalRow>> RunFleetDimEval(
    const std::vector<FleetModelSpec>& models,
    const dimeval::DimEvalBenchmark& bench, const FleetEvalOptions& options,
    proc::FleetReport* report) {
  for (const FleetModelSpec& spec : models) {
    if (spec.model == nullptr) {
      return Status::InvalidArgument("fleet model spec without a model");
    }
  }
  std::vector<DimEvalRow> rows(models.size());
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    rows[mi].model = models[mi].model->name();
  }
  const std::vector<FleetItem> items = PlanItems(models, bench);
  if (items.empty()) {
    if (report != nullptr) *report = proc::FleetReport{};
    return rows;
  }

  const int num_shards = std::clamp(options.workers, 1,
                                    static_cast<int>(items.size()));
  proc::SupervisorOptions supervisor = options.supervisor;
  supervisor.num_workers = num_shards;

  // Contiguous even split: shard s covers [s*n/k, (s+1)*n/k) — a pure
  // function of (n, k), like core/parallel's chunking.
  const auto n = static_cast<std::int64_t>(items.size());
  auto shard_begin = [&](int s) {
    return static_cast<std::size_t>(s * n / num_shards);
  };

  proc::ShardBody body =
      [&](proc::ShardContext& ctx) -> Result<std::vector<std::byte>> {
    std::unique_ptr<EvalJournal> journal;
    if (!options.journal_dir.empty()) {
      auto opened = EvalJournal::Open(options.journal_dir + "/shard_" +
                                      std::to_string(ctx.shard) + ".journal");
      // A corrupt journal is a permanent failure: retrying the shard would
      // hit the same bytes. The supervisor aborts the run with this status.
      if (!opened.ok()) return opened.status();
      journal = std::move(opened).ValueOrDie();
    }
    std::vector<WireItemResult> results;
    const std::size_t begin = shard_begin(ctx.shard);
    const std::size_t end = shard_begin(ctx.shard + 1);
    results.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const FleetItem& item = items[i];
      const FleetModelSpec& spec = models[static_cast<std::size_t>(
          item.model_index)];
      // Chaos first, journal second: the crash must fire mid-shard even on
      // a resumed attempt, or `after_n > 1` could never kill twice.
      MaybeCrash(ItemSeed(spec.model->name(), item.task), ctx.attempt);
      ctx.Beat();
      results.push_back(RunItem(item, static_cast<std::uint32_t>(i), spec,
                                bench, journal.get(), ctx));
    }
    snapshot::ArenaWriter arena;
    arena.PutArray(std::span<const WireItemResult>(results));
    return arena.Take();
  };

  DIMQR_ASSIGN_OR_RETURN(proc::FleetReport fleet_report,
                         proc::RunShards(num_shards, body, supervisor));

  // Merge in shard order = item order (shards are contiguous ranges), so
  // the fill sequence is identical to a single-process row walk.
  for (const proc::ShardOutcome& outcome : fleet_report.outcomes) {
    snapshot::ArenaReader reader(outcome.payload);
    DIMQR_ASSIGN_OR_RETURN(std::span<const WireItemResult> wire_results,
                           reader.GetArray<WireItemResult>());
    for (const WireItemResult& wire : wire_results) {
      if (wire.item >= items.size()) {
        return Status::Internal("fleet merge: item index out of range");
      }
      const FleetItem& item = items[wire.item];
      DimEvalRow& row = rows[static_cast<std::size_t>(item.model_index)];
      if (wire.is_extraction != 0) {
        if (wire.incomplete != 0) {
          row.extraction_incomplete = true;
        } else {
          ApplyExtractionToRow(UnpackExtraction(wire), row);
        }
      } else {
        row.choice[item.task] = UnpackChoice(wire);
      }
    }
  }
  // Every row must have every choice task: a shard payload is only
  // accepted by the supervisor as a complete result.
  for (const DimEvalRow& row : rows) {
    if (row.choice.size() != DimEvalChoiceTasks().size()) {
      return Status::Internal("fleet merge: row '" + row.model +
                              "' is missing choice tasks");
    }
  }
  if (report != nullptr) *report = std::move(fleet_report);
  return rows;
}

}  // namespace dimqr::eval
