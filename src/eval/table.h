#ifndef DIMQR_EVAL_TABLE_H_
#define DIMQR_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

/// \file table.h
/// Plain-text table rendering for the bench binaries that reprint the
/// paper's tables and figures.

namespace dimqr::eval {

/// \brief A column-aligned ASCII table.
class TablePrinter {
 public:
  /// Sets the header row.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row (padded/truncated to the header width).
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table.
  void Print(std::ostream& os) const;

  /// "12.34" with two decimals; "-" for negative sentinel values.
  static std::string Pct(double value_0_to_1);
  /// Formats a raw number with `decimals` places.
  static std::string Num(double value, int decimals = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  ///< Empty row = separator.
};

}  // namespace dimqr::eval

#endif  // DIMQR_EVAL_TABLE_H_
