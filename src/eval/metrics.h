#ifndef DIMQR_EVAL_METRICS_H_
#define DIMQR_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "lm/model_api.h"

/// \file metrics.h
/// Metrics of Section VI-D: precision and F1 for dimension-perception
/// tasks, component-wise F1 (QE/VE/UE) for quantity extraction, accuracy
/// for quantitative reasoning.
///
/// Scoring model for multiple choice: a model may decline a question
/// (Section VI-E1's observation that LLMs "refrain from providing
/// responses"). Precision is correct/answered; recall is correct/total;
/// F1 combines them — so refusals depress F1 but not precision, matching
/// the Table VII discussion.

namespace dimqr::eval {

/// \brief Counts and derived metrics for a choice task.
///
/// Failure accounting (PR: resilience layer): `declined_after_retry` is the
/// subset of unanswered instances where the resilience layer exhausted its
/// retry budget against transient backend faults and degraded to a decline
/// — scored exactly like a model decline (outside precision, inside
/// recall). `failed` counts instances whose backend failed *permanently*;
/// any such instance sets `incomplete`, and an incomplete task's counts are
/// diagnostics only (evaluation cancels cooperatively, so how many
/// instances ran before the failure depends on scheduling — the tables
/// print an "inc" marker instead of numbers).
struct ChoiceMetrics {
  std::size_t total = 0;
  std::size_t answered = 0;
  std::size_t correct = 0;
  std::size_t declined_after_retry = 0;
  std::size_t failed = 0;
  bool incomplete = false;

  double Precision() const {
    return answered == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(answered);
  }
  double Recall() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  /// Element-wise sum, for macro aggregation across tasks.
  ChoiceMetrics& operator+=(const ChoiceMetrics& other) {
    total += other.total;
    answered += other.answered;
    correct += other.correct;
    declined_after_retry += other.declined_after_retry;
    failed += other.failed;
    incomplete = incomplete || other.incomplete;
    return *this;
  }
};

/// \brief Precision/recall/F1 counts for one extraction component.
struct PrfCounts {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  double Precision() const {
    std::size_t denom = true_positive + false_positive;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positive) /
                            static_cast<double>(denom);
  }
  double Recall() const {
    std::size_t denom = true_positive + false_negative;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positive) /
                            static_cast<double>(denom);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  /// Element-wise sum, for merging per-chunk partial counts.
  PrfCounts& operator+=(const PrfCounts& other) {
    true_positive += other.true_positive;
    false_positive += other.false_positive;
    false_negative += other.false_negative;
    return *this;
  }
};

/// \brief The three extraction sub-scores of Table VII: QE (value+unit
/// pair), VE (value part), UE (unit part).
struct ExtractionMetrics {
  PrfCounts qe;
  PrfCounts ve;
  PrfCounts ue;

  /// Element-wise sum, for merging per-chunk partial counts.
  ExtractionMetrics& operator+=(const ExtractionMetrics& other) {
    qe += other.qe;
    ve += other.ve;
    ue += other.ue;
    return *this;
  }
};

/// \brief Scores one extraction prediction against gold, updating counts.
/// Matching is greedy multiset matching on exact strings.
void ScoreExtraction(const std::vector<lm::ExtractedQuantity>& predicted,
                     const std::vector<lm::ExtractedQuantity>& gold,
                     ExtractionMetrics& metrics);

/// \brief Nearest-rank percentile over ascending-sorted samples: the
/// smallest sample such that at least `percentile` percent of samples are
/// <= it (ceil(p/100 * n), 1-based). Integer and exact — two runs with the
/// same samples report the same tick, which latency reporting (serve/)
/// requires. Returns 0 for an empty sample set; `percentile` is clamped to
/// (0, 100].
std::uint64_t NearestRankPercentile(const std::vector<std::uint64_t>& sorted,
                                    double percentile);

}  // namespace dimqr::eval

#endif  // DIMQR_EVAL_METRICS_H_
