#include "eval/journal.h"

#include <cstddef>
#include <string_view>
#include <vector>

namespace dimqr::eval {

namespace {

/// Record type tags (first field of every line).
constexpr std::string_view kChoiceTag = "choice";
constexpr std::string_view kExtractionTag = "extraction";

/// Splits a journal line on tabs. Model names may contain spaces but never
/// tabs, which is why the format is tab-separated.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

/// Strict non-negative integer parse; false on any stray character, so a
/// record torn mid-number is rejected as a whole.
bool ParseCount(std::string_view text, std::size_t* out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

Result<std::unique_ptr<EvalJournal>> EvalJournal::Open(
    const std::string& path) {
  auto journal = std::unique_ptr<EvalJournal>(new EvalJournal());
  {
    std::ifstream in(path);
    if (in.is_open()) {
      std::string line;
      while (std::getline(in, line)) journal->LoadLine(line);
    }
  }
  journal->out_.open(path, std::ios::out | std::ios::app);
  if (!journal->out_.is_open()) {
    return Status::IOError("cannot open journal file for append: " + path);
  }
  return journal;
}

void EvalJournal::LoadLine(const std::string& line) {
  std::vector<std::string_view> fields = SplitFields(line);
  if (fields.size() < 3) return;
  Key key{std::string(fields[1]), std::string(fields[2])};
  if (fields[0] == kChoiceTag && fields.size() == 8) {
    ChoiceMetrics m;
    if (ParseCount(fields[3], &m.total) &&
        ParseCount(fields[4], &m.answered) &&
        ParseCount(fields[5], &m.correct) &&
        ParseCount(fields[6], &m.declined_after_retry) &&
        ParseCount(fields[7], &m.failed)) {
      choice_[std::move(key)] = m;  // Duplicate key: latest record wins.
      ++loaded_records_;
    }
  } else if (fields[0] == kExtractionTag && fields.size() == 12) {
    ExtractionMetrics m;
    if (ParseCount(fields[3], &m.qe.true_positive) &&
        ParseCount(fields[4], &m.qe.false_positive) &&
        ParseCount(fields[5], &m.qe.false_negative) &&
        ParseCount(fields[6], &m.ve.true_positive) &&
        ParseCount(fields[7], &m.ve.false_positive) &&
        ParseCount(fields[8], &m.ve.false_negative) &&
        ParseCount(fields[9], &m.ue.true_positive) &&
        ParseCount(fields[10], &m.ue.false_positive) &&
        ParseCount(fields[11], &m.ue.false_negative)) {
      extraction_[std::move(key)] = m;
      ++loaded_records_;
    }
  }
}

bool EvalJournal::LookupChoice(const std::string& model,
                               const std::string& task,
                               ChoiceMetrics* out) const {
  auto it = choice_.find(Key{model, task});
  if (it == choice_.end()) return false;
  *out = it->second;
  return true;
}

bool EvalJournal::LookupExtraction(const std::string& model,
                                   const std::string& task,
                                   ExtractionMetrics* out) const {
  auto it = extraction_.find(Key{model, task});
  if (it == extraction_.end()) return false;
  *out = it->second;
  return true;
}

Status EvalJournal::RecordChoice(const std::string& model,
                                 const std::string& task,
                                 const ChoiceMetrics& metrics) {
  if (metrics.incomplete) {
    return Status::InvalidArgument(
        "refusing to journal an incomplete task: " + task);
  }
  out_ << kChoiceTag << '\t' << model << '\t' << task << '\t' << metrics.total
       << '\t' << metrics.answered << '\t' << metrics.correct << '\t'
       << metrics.declined_after_retry << '\t' << metrics.failed << '\n';
  out_.flush();
  if (!out_.good()) return Status::IOError("journal write failed: " + task);
  choice_[Key{model, task}] = metrics;
  return Status::OK();
}

Status EvalJournal::RecordExtraction(const std::string& model,
                                     const std::string& task,
                                     const ExtractionMetrics& metrics) {
  out_ << kExtractionTag << '\t' << model << '\t' << task << '\t'
       << metrics.qe.true_positive << '\t' << metrics.qe.false_positive
       << '\t' << metrics.qe.false_negative << '\t'
       << metrics.ve.true_positive << '\t' << metrics.ve.false_positive
       << '\t' << metrics.ve.false_negative << '\t'
       << metrics.ue.true_positive << '\t' << metrics.ue.false_positive
       << '\t' << metrics.ue.false_negative << '\n';
  out_.flush();
  if (!out_.good()) return Status::IOError("journal write failed: " + task);
  extraction_[Key{model, task}] = metrics;
  return Status::OK();
}

}  // namespace dimqr::eval
