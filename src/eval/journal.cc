#include "eval/journal.h"

#include <cstddef>
#include <cstdio>
#include <span>
#include <string_view>
#include <vector>

#include "core/snapshot.h"

namespace dimqr::eval {

namespace {

/// Record type tags (first field of every line).
constexpr std::string_view kChoiceTag = "choice";
constexpr std::string_view kExtractionTag = "extraction";

/// Splits a journal line on tabs. Model names may contain spaces but never
/// tabs, which is why the format is tab-separated.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

/// Strict non-negative integer parse; false on any stray character, so a
/// record torn mid-number is rejected as a whole.
bool ParseCount(std::string_view text, std::size_t* out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

/// The trailing checksum field: CRC-32C (core/snapshot's hardware-
/// dispatched CRC) of every line byte before the field's own tab, as eight
/// lowercase hex digits. Catches single-bit rot and mid-file truncation
/// that still parses as digits — count fields are all digits, so a flipped
/// digit is otherwise a silently wrong table.
std::string CrcField(std::string_view payload) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x",
                snapshot::Crc32(std::as_bytes(
                    std::span<const char>(payload.data(), payload.size()))));
  return std::string(buf);
}

bool IsHex8(std::string_view text) {
  if (text.size() != 8) return false;
  for (char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

/// True when the line's final field is a structurally valid CRC field that
/// matches the preceding bytes. `well_formed` distinguishes "no/garbled CRC
/// field" (a torn record) from "valid field, wrong value" (corruption).
bool CheckCrc(std::string_view line, std::string_view crc_text,
              bool* well_formed) {
  *well_formed = IsHex8(crc_text);
  if (!*well_formed) return false;
  // The CRC field is always the last 9 bytes: '\t' + 8 hex digits.
  std::string_view payload = line.substr(0, line.size() - 9);
  return CrcField(payload) == crc_text;
}

}  // namespace

Result<std::unique_ptr<EvalJournal>> EvalJournal::Open(
    const std::string& path) {
  auto journal = std::unique_ptr<EvalJournal>(new EvalJournal());
  {
    std::ifstream in(path);
    if (in.is_open()) {
      std::string line;
      std::size_t line_no = 0;
      std::size_t torn_line = 0;
      while (std::getline(in, line)) {
        ++line_no;
        switch (journal->LoadLine(line)) {
          case LineParse::kOk:
            if (torn_line != 0) {
              // A structurally broken record can only be the final line (a
              // record torn by a kill mid-write). Valid data after one
              // means the file was damaged in the middle: refuse to merge.
              return Status::DataLoss(
                  "journal " + path + " has a torn record at line " +
                  std::to_string(torn_line) + " followed by valid records");
            }
            break;
          case LineParse::kTorn:
            if (torn_line == 0) torn_line = line_no;
            break;
          case LineParse::kCorrupt:
            return Status::DataLoss("journal " + path +
                                    " failed its record CRC check at line " +
                                    std::to_string(line_no));
        }
      }
    }
  }
  journal->out_.open(path, std::ios::out | std::ios::app);
  if (!journal->out_.is_open()) {
    return Status::IOError("cannot open journal file for append: " + path);
  }
  return journal;
}

EvalJournal::LineParse EvalJournal::LoadLine(const std::string& line) {
  std::vector<std::string_view> fields = SplitFields(line);
  if (fields.size() < 4) return LineParse::kTorn;
  bool crc_well_formed = false;
  const bool crc_ok = CheckCrc(line, fields.back(), &crc_well_formed);
  Key key{std::string(fields[1]), std::string(fields[2])};
  if (fields[0] == kChoiceTag && fields.size() == 9) {
    ChoiceMetrics m;
    if (!(ParseCount(fields[3], &m.total) &&
          ParseCount(fields[4], &m.answered) &&
          ParseCount(fields[5], &m.correct) &&
          ParseCount(fields[6], &m.declined_after_retry) &&
          ParseCount(fields[7], &m.failed))) {
      return LineParse::kTorn;
    }
    if (!crc_well_formed) return LineParse::kTorn;
    if (!crc_ok) return LineParse::kCorrupt;
    choice_[std::move(key)] = m;  // Duplicate key: latest record wins.
    ++loaded_records_;
    return LineParse::kOk;
  }
  if (fields[0] == kExtractionTag && fields.size() == 13) {
    ExtractionMetrics m;
    if (!(ParseCount(fields[3], &m.qe.true_positive) &&
          ParseCount(fields[4], &m.qe.false_positive) &&
          ParseCount(fields[5], &m.qe.false_negative) &&
          ParseCount(fields[6], &m.ve.true_positive) &&
          ParseCount(fields[7], &m.ve.false_positive) &&
          ParseCount(fields[8], &m.ve.false_negative) &&
          ParseCount(fields[9], &m.ue.true_positive) &&
          ParseCount(fields[10], &m.ue.false_positive) &&
          ParseCount(fields[11], &m.ue.false_negative))) {
      return LineParse::kTorn;
    }
    if (!crc_well_formed) return LineParse::kTorn;
    if (!crc_ok) return LineParse::kCorrupt;
    extraction_[std::move(key)] = m;
    ++loaded_records_;
    return LineParse::kOk;
  }
  return LineParse::kTorn;
}

bool EvalJournal::LookupChoice(const std::string& model,
                               const std::string& task,
                               ChoiceMetrics* out) const {
  auto it = choice_.find(Key{model, task});
  if (it == choice_.end()) return false;
  *out = it->second;
  return true;
}

bool EvalJournal::LookupExtraction(const std::string& model,
                                   const std::string& task,
                                   ExtractionMetrics* out) const {
  auto it = extraction_.find(Key{model, task});
  if (it == extraction_.end()) return false;
  *out = it->second;
  return true;
}

Status EvalJournal::RecordChoice(const std::string& model,
                                 const std::string& task,
                                 const ChoiceMetrics& metrics) {
  if (metrics.incomplete) {
    return Status::InvalidArgument(
        "refusing to journal an incomplete task: " + task);
  }
  std::string payload;
  payload.append(kChoiceTag);
  payload += '\t';
  payload += model;
  payload += '\t';
  payload += task;
  for (std::size_t count : {metrics.total, metrics.answered, metrics.correct,
                            metrics.declined_after_retry, metrics.failed}) {
    payload += '\t';
    payload += std::to_string(count);
  }
  out_ << payload << '\t' << CrcField(payload) << '\n';
  out_.flush();
  if (!out_.good()) return Status::IOError("journal write failed: " + task);
  choice_[Key{model, task}] = metrics;
  return Status::OK();
}

Status EvalJournal::RecordExtraction(const std::string& model,
                                     const std::string& task,
                                     const ExtractionMetrics& metrics) {
  std::string payload;
  payload.append(kExtractionTag);
  payload += '\t';
  payload += model;
  payload += '\t';
  payload += task;
  for (std::size_t count :
       {metrics.qe.true_positive, metrics.qe.false_positive,
        metrics.qe.false_negative, metrics.ve.true_positive,
        metrics.ve.false_positive, metrics.ve.false_negative,
        metrics.ue.true_positive, metrics.ue.false_positive,
        metrics.ue.false_negative}) {
    payload += '\t';
    payload += std::to_string(count);
  }
  out_ << payload << '\t' << CrcField(payload) << '\n';
  out_.flush();
  if (!out_.good()) return Status::IOError("journal write failed: " + task);
  extraction_[Key{model, task}] = metrics;
  return Status::OK();
}

}  // namespace dimqr::eval
