#include "kb/kb.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "kb/catalog.h"
#include "text/string_util.h"

namespace dimqr::kb {
namespace {

using dimqr::Result;
using dimqr::Status;

std::string JoinList(const std::vector<std::string>& parts) {
  return dimqr::text::Join(parts, "|");
}

std::vector<std::string> SplitPipe(const std::string& field) {
  if (field.empty()) return {};
  return dimqr::text::Split(field, '|');
}

const char* OriginName(UnitOrigin origin) {
  switch (origin) {
    case UnitOrigin::kSeed:
      return "seed";
    case UnitOrigin::kPrefixExpanded:
      return "prefix";
    case UnitOrigin::kCompound:
      return "compound";
  }
  return "seed";
}

Result<UnitOrigin> ParseOrigin(const std::string& name) {
  if (name == "seed") return UnitOrigin::kSeed;
  if (name == "prefix") return UnitOrigin::kPrefixExpanded;
  if (name == "compound") return UnitOrigin::kCompound;
  return Status::ParseError("unknown unit origin: " + name);
}

}  // namespace

Result<std::shared_ptr<const DimUnitKB>> DimUnitKB::Build() {
  auto kb = std::shared_ptr<DimUnitKB>(new DimUnitKB());
  DIMQR_ASSIGN_OR_RETURN(kb->units_, BuildUnitCatalog());
  DIMQR_ASSIGN_OR_RETURN(kb->kinds_, BuildKindCatalog());
  kb->BuildIndexes();
  return std::shared_ptr<const DimUnitKB>(kb);
}

void DimUnitKB::BuildIndexes() {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    const UnitRecord& u = units_[i];
    by_id_[u.id] = i;
    for (const std::string& surface : u.SurfaceForms()) {
      if (surface.empty()) continue;
      by_surface_[surface].push_back(i);
      by_surface_lower_[dimqr::text::ToLowerAscii(surface)].push_back(i);
    }
    by_dimension_[u.dimension.PackedKey()].push_back(i);
    by_kind_[u.quantity_kind].push_back(i);
  }
  for (std::size_t k = 0; k < kinds_.size(); ++k) {
    kind_by_name_[kinds_[k].name] = k;
  }
}

Result<const UnitRecord*> DimUnitKB::FindById(std::string_view id) const {
  auto it = by_id_.find(std::string(id));
  if (it == by_id_.end()) {
    return Status::NotFound("no unit with id '" + std::string(id) + "'");
  }
  return &units_[it->second];
}

std::vector<const UnitRecord*> DimUnitKB::FindBySurface(
    std::string_view surface) const {
  std::vector<const UnitRecord*> out;
  auto exact = by_surface_.find(std::string(surface));
  if (exact != by_surface_.end()) {
    for (std::size_t i : exact->second) out.push_back(&units_[i]);
    return out;
  }
  auto lower = by_surface_lower_.find(dimqr::text::ToLowerAscii(surface));
  if (lower != by_surface_lower_.end()) {
    std::unordered_set<std::size_t> seen;
    for (std::size_t i : lower->second) {
      if (seen.insert(i).second) out.push_back(&units_[i]);
    }
  }
  return out;
}

std::vector<const UnitRecord*> DimUnitKB::UnitsOfDimension(
    const dimqr::Dimension& dim) const {
  std::vector<const UnitRecord*> out;
  auto it = by_dimension_.find(dim.PackedKey());
  if (it == by_dimension_.end()) return out;
  for (std::size_t i : it->second) out.push_back(&units_[i]);
  return out;
}

std::vector<const UnitRecord*> DimUnitKB::UnitsOfKind(
    std::string_view kind) const {
  std::vector<const UnitRecord*> out;
  auto it = by_kind_.find(std::string(kind));
  if (it == by_kind_.end()) return out;
  for (std::size_t i : it->second) out.push_back(&units_[i]);
  return out;
}

Result<const QuantityKindRecord*> DimUnitKB::FindKind(
    std::string_view name) const {
  auto it = kind_by_name_.find(std::string(name));
  if (it == kind_by_name_.end()) {
    return Status::NotFound("no quantity kind '" + std::string(name) + "'");
  }
  return &kinds_[it->second];
}

Result<double> DimUnitKB::ConversionFactor(std::string_view from_id,
                                           std::string_view to_id) const {
  DIMQR_ASSIGN_OR_RETURN(const UnitRecord* from, FindById(from_id));
  DIMQR_ASSIGN_OR_RETURN(const UnitRecord* to, FindById(to_id));
  return from->Semantics().ConversionFactorTo(to->Semantics());
}

dimqr::UnitResolver DimUnitKB::Resolver() const {
  return [this](std::string_view name) -> Result<dimqr::UnitSemantics> {
    std::vector<const UnitRecord*> candidates = FindBySurface(name);
    if (candidates.empty()) {
      Result<const UnitRecord*> by_id = FindById(name);
      if (by_id.ok()) return (*by_id)->Semantics();
      return Status::NotFound("unknown unit '" + std::string(name) + "'");
    }
    const UnitRecord* best = candidates.front();
    for (const UnitRecord* c : candidates) {
      if (c->frequency > best->frequency) best = c;
    }
    return best->Semantics();
  };
}

std::vector<const UnitRecord*> DimUnitKB::UnitsByFrequency() const {
  std::vector<const UnitRecord*> out;
  out.reserve(units_.size());
  for (const UnitRecord& u : units_) out.push_back(&u);
  std::sort(out.begin(), out.end(),
            [](const UnitRecord* a, const UnitRecord* b) {
              if (a->frequency != b->frequency) {
                return a->frequency > b->frequency;
              }
              return a->id < b->id;
            });
  return out;
}

std::vector<std::pair<const QuantityKindRecord*, double>>
DimUnitKB::KindsByFrequency(std::size_t top_k) const {
  std::vector<std::pair<const QuantityKindRecord*, double>> out;
  for (const QuantityKindRecord& kind : kinds_) {
    std::vector<const UnitRecord*> members = UnitsOfKind(kind.name);
    if (members.empty()) continue;
    std::sort(members.begin(), members.end(),
              [](const UnitRecord* a, const UnitRecord* b) {
                return a->frequency > b->frequency;
              });
    std::size_t n = std::min(top_k, members.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += members[i]->frequency;
    out.emplace_back(&kind, sum / static_cast<double>(n));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first->name < b.first->name;
  });
  return out;
}

KbStats DimUnitKB::Stats() const {
  KbStats stats;
  stats.num_units = units_.size();
  stats.num_quantity_kinds = kinds_.size();
  std::unordered_set<std::uint64_t> dims;
  for (const UnitRecord& u : units_) dims.insert(u.dimension.PackedKey());
  for (const QuantityKindRecord& k : kinds_) {
    dims.insert(k.dimension.PackedKey());
  }
  stats.num_dimension_vectors = dims.size();
  for (const UnitRecord& u : units_) {
    if (!u.label_zh.empty()) ++stats.num_units_with_zh;
    switch (u.origin) {
      case UnitOrigin::kSeed:
        ++stats.num_seed_units;
        break;
      case UnitOrigin::kPrefixExpanded:
        ++stats.num_prefix_units;
        break;
      case UnitOrigin::kCompound:
        ++stats.num_compound_units;
        break;
    }
  }
  return stats;
}

Status DimUnitKB::SaveTsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "#id\tlabel_en\tlabel_zh\tsymbols\taliases\tkind\tdim\tscale\t"
         "exact\toffset\tfreq\tgt\ths\tcf\torigin\tkeywords\tdescription\n";
  for (const UnitRecord& u : units_) {
    out << u.id << '\t' << u.label_en << '\t' << u.label_zh << '\t'
        << JoinList(u.symbols) << '\t' << JoinList(u.aliases) << '\t'
        << u.quantity_kind << '\t' << u.dimension.ToVectorForm() << '\t';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", u.conversion_value);
    out << buf << '\t'
        << (u.exact_conversion ? u.exact_conversion->ToString() : "") << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.conversion_offset);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.frequency);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.google_trends);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.human_score);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.corpus_freq);
    out << buf << '\t' << OriginName(u.origin) << '\t'
        << JoinList(u.keywords) << '\t' << u.description << '\n';
  }
  out << "#KINDS\n";
  for (const QuantityKindRecord& k : kinds_) {
    out << k.name << '\t' << k.label_zh << '\t' << k.dimension.ToVectorForm()
        << '\t' << JoinList(k.keywords) << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::shared_ptr<const DimUnitKB>> DimUnitKB::LoadTsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  auto kb = std::shared_ptr<DimUnitKB>(new DimUnitKB());
  std::string line;
  bool in_kinds = false;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "#KINDS") {
      in_kinds = true;
      continue;
    }
    if (!header_skipped && line[0] == '#') {
      header_skipped = true;
      continue;
    }
    std::vector<std::string> f = dimqr::text::Split(line, '\t');
    if (in_kinds) {
      if (f.size() != 4) {
        return Status::ParseError("malformed kind row: " + line);
      }
      QuantityKindRecord k;
      k.name = f[0];
      k.label_zh = f[1];
      DIMQR_ASSIGN_OR_RETURN(k.dimension,
                             dimqr::Dimension::ParseVectorForm(f[2]));
      k.keywords = SplitPipe(f[3]);
      kb->kinds_.push_back(std::move(k));
      continue;
    }
    if (f.size() != 17) {
      return Status::ParseError("malformed unit row: " + line);
    }
    UnitRecord u;
    u.id = f[0];
    u.label_en = f[1];
    u.label_zh = f[2];
    u.symbols = SplitPipe(f[3]);
    u.aliases = SplitPipe(f[4]);
    u.quantity_kind = f[5];
    DIMQR_ASSIGN_OR_RETURN(u.dimension, dimqr::Dimension::ParseVectorForm(f[6]));
    u.conversion_value = std::strtod(f[7].c_str(), nullptr);
    if (f[8].empty()) {
      u.exact_conversion.reset();
    } else {
      DIMQR_ASSIGN_OR_RETURN(dimqr::Rational exact,
                             dimqr::Rational::Parse(f[8]));
      u.exact_conversion = exact;
    }
    u.conversion_offset = std::strtod(f[9].c_str(), nullptr);
    u.frequency = std::strtod(f[10].c_str(), nullptr);
    u.popularity.google_trends = std::strtod(f[11].c_str(), nullptr);
    u.popularity.human_score = std::strtod(f[12].c_str(), nullptr);
    u.popularity.corpus_freq = std::strtod(f[13].c_str(), nullptr);
    DIMQR_ASSIGN_OR_RETURN(u.origin, ParseOrigin(f[14]));
    u.keywords = SplitPipe(f[15]);
    u.description = f[16];
    kb->units_.push_back(std::move(u));
  }
  if (kb->units_.empty()) {
    return Status::ParseError("no unit rows in " + path);
  }
  kb->BuildIndexes();
  return std::shared_ptr<const DimUnitKB>(kb);
}

}  // namespace dimqr::kb
