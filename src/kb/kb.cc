#include "kb/kb.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "kb/catalog.h"
#include "text/string_util.h"

namespace dimqr::kb {
namespace {

using dimqr::Result;
using dimqr::Status;

std::string JoinList(const std::vector<std::string>& parts) {
  return dimqr::text::Join(parts, "|");
}

std::vector<std::string> SplitPipe(const std::string& field) {
  if (field.empty()) return {};
  return dimqr::text::Split(field, '|');
}

const char* OriginName(UnitOrigin origin) {
  switch (origin) {
    case UnitOrigin::kSeed:
      return "seed";
    case UnitOrigin::kPrefixExpanded:
      return "prefix";
    case UnitOrigin::kCompound:
      return "compound";
  }
  return "seed";
}

Result<UnitOrigin> ParseOrigin(const std::string& name) {
  if (name == "seed") return UnitOrigin::kSeed;
  if (name == "prefix") return UnitOrigin::kPrefixExpanded;
  if (name == "compound") return UnitOrigin::kCompound;
  return Status::ParseError("unknown unit origin: " + name);
}

}  // namespace

Result<std::shared_ptr<const DimUnitKB>> DimUnitKB::Build() {
  auto kb = std::shared_ptr<DimUnitKB>(new DimUnitKB());
  DIMQR_ASSIGN_OR_RETURN(kb->units_, BuildUnitCatalog());
  DIMQR_ASSIGN_OR_RETURN(kb->kinds_, BuildKindCatalog());
  kb->BuildIndexes();
  return std::shared_ptr<const DimUnitKB>(kb);
}

void DimUnitKB::BuildIndexes() {
  const std::size_t n = units_.size();
  unit_class_.assign(n, 0);
  unit_rank_.assign(n, 0);

  // Registry kinds first so KindId 1..kinds_.size() mirror kinds_ order;
  // kind strings seen only on unit records (possibly "") follow.
  for (const QuantityKindRecord& k : kinds_) kind_syms_.Intern(k.name);

  std::vector<std::vector<UnitId>> exact_buckets;
  std::vector<std::vector<UnitId>> lower_buckets;
  std::vector<std::vector<UnitId>> kind_buckets(kind_syms_.size());
  std::vector<std::vector<UnitId>> dim_buckets;
  std::unordered_map<std::uint64_t, std::uint32_t> dim_class_of;

  for (std::size_t i = 0; i < n; ++i) {
    const UnitRecord& u = units_[i];
    const UnitId uid = UnitId::FromIndex(i);

    std::uint32_t sym = id_syms_.Intern(u.id);
    if (sym > id_sym_to_unit_.size()) {
      id_sym_to_unit_.push_back(uid);
    } else {
      id_sym_to_unit_[sym - 1] = uid;  // duplicate UnitID: last wins
    }

    for (const std::string& surface : u.SurfaceForms()) {
      if (surface.empty()) continue;
      std::uint32_t es = surface_syms_.Intern(surface);
      if (es > exact_buckets.size()) exact_buckets.emplace_back();
      exact_buckets[es - 1].push_back(uid);
      std::uint32_t ls = lower_syms_.Intern(dimqr::text::ToLowerAscii(surface));
      if (ls > lower_buckets.size()) lower_buckets.emplace_back();
      std::vector<UnitId>& bucket = lower_buckets[ls - 1];
      // Deduplicate per lowercased surface, keeping the first occurrence
      // (buckets are tiny; linear scan beats any set here).
      if (std::find(bucket.begin(), bucket.end(), uid) == bucket.end()) {
        bucket.push_back(uid);
      }
    }

    std::uint32_t ks = kind_syms_.Intern(u.quantity_kind);
    if (ks > kind_buckets.size()) kind_buckets.resize(ks);
    kind_buckets[ks - 1].push_back(uid);

    auto [it, inserted] = dim_class_of.try_emplace(
        u.dimension.PackedKey(),
        static_cast<std::uint32_t>(dim_buckets.size()));
    if (inserted) dim_buckets.emplace_back();
    unit_class_[i] = it->second;
    unit_rank_[i] = static_cast<std::uint32_t>(dim_buckets[it->second].size());
    dim_buckets[it->second].push_back(uid);
  }

  by_surface_ = PostingsIndex<SurfaceId, UnitId>::FromBuckets(exact_buckets);
  by_surface_lower_ =
      PostingsIndex<SurfaceId, UnitId>::FromBuckets(lower_buckets);
  by_kind_ = PostingsIndex<KindId, UnitId>::FromBuckets(kind_buckets);
  by_dimension_ = PostingsIndex<DimClassId, UnitId>::FromBuckets(dim_buckets);

  dim_class_keys_.assign(dim_class_of.begin(), dim_class_of.end());
  std::sort(dim_class_keys_.begin(), dim_class_keys_.end());

  BuildConversionTables();
}

void DimUnitKB::BuildConversionTables() {
  // One k×k factor table per dimension class, filled through the exact
  // Rational path so memoized factors are bit-identical to on-demand ones.
  // NaN marks pairs with no single linear factor (affine endpoints); the
  // lookup falls back to the slow path there to reproduce its exact error.
  factor_tables_.clear();
  factor_tables_.resize(by_dimension_.num_keys());
  std::vector<UnitSemantics> sems;
  for (std::size_t c = 0; c < factor_tables_.size(); ++c) {
    std::span<const UnitId> members =
        by_dimension_[DimClassId::FromIndex(c)];
    const std::size_t k = members.size();
    sems.clear();
    sems.reserve(k);
    for (UnitId uid : members) sems.push_back(units_[uid.index()].Semantics());
    std::vector<double>& table = factor_tables_[c];
    table.assign(k * k, std::numeric_limits<double>::quiet_NaN());
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        Result<double> factor = sems[i].ConversionFactorTo(sems[j]);
        if (factor.ok()) table[i * k + j] = *factor;
      }
    }
  }
}

UnitId DimUnitKB::IdOf(std::string_view id_string) const {
  std::uint32_t sym = id_syms_.Lookup(id_string);
  return sym == 0 ? UnitId() : id_sym_to_unit_[sym - 1];
}

Result<UnitId> DimUnitKB::ResolveId(std::string_view id_string) const {
  UnitId id = IdOf(id_string);
  if (!id.valid()) {
    return Status::NotFound("no unit with id '" + std::string(id_string) +
                            "'");
  }
  return id;
}

Result<const UnitRecord*> DimUnitKB::FindById(std::string_view id) const {
  DIMQR_ASSIGN_OR_RETURN(UnitId handle, ResolveId(id));
  return &units_[handle.index()];
}

std::span<const UnitId> DimUnitKB::FindBySurface(
    std::string_view surface) const {
  std::span<const UnitId> exact =
      by_surface_[SurfaceId(surface_syms_.Lookup(surface))];
  if (!exact.empty()) return exact;
  return by_surface_lower_[SurfaceId(
      lower_syms_.Lookup(dimqr::text::ToLowerAscii(surface)))];
}

std::span<const UnitId> DimUnitKB::UnitsOfDimension(
    const dimqr::Dimension& dim) const {
  const std::uint64_t key = dim.PackedKey();
  auto it = std::lower_bound(
      dim_class_keys_.begin(), dim_class_keys_.end(), key,
      [](const auto& entry, std::uint64_t k) { return entry.first < k; });
  if (it == dim_class_keys_.end() || it->first != key) return {};
  return by_dimension_[DimClassId::FromIndex(it->second)];
}

std::span<const UnitId> DimUnitKB::UnitsOfKind(KindId kind) const {
  return by_kind_[kind];
}

KindId DimUnitKB::KindIdOf(std::string_view name) const {
  return KindId(kind_syms_.Lookup(name));
}

Result<const QuantityKindRecord*> DimUnitKB::FindKind(
    std::string_view name) const {
  KindId kind = KindIdOf(name);
  if (!kind.valid() || kind.index() >= kinds_.size()) {
    return Status::NotFound("no quantity kind '" + std::string(name) + "'");
  }
  return &kinds_[kind.index()];
}

Result<double> DimUnitKB::ConversionFactor(UnitId from, UnitId to) const {
  if (!from.valid() || from.index() >= units_.size()) {
    return Status::NotFound("invalid 'from' unit handle");
  }
  if (!to.valid() || to.index() >= units_.size()) {
    return Status::NotFound("invalid 'to' unit handle");
  }
  if (unit_class_[from.index()] == unit_class_[to.index()]) {
    const std::vector<double>& table = factor_tables_[unit_class_[from.index()]];
    const std::size_t k =
        by_dimension_[DimClassId::FromIndex(unit_class_[from.index()])].size();
    double factor = table[unit_rank_[from.index()] * k + unit_rank_[to.index()]];
    if (!std::isnan(factor)) return factor;
  }
  // Cross-class or affine: delegate so callers see the exact same Status
  // (DimensionMismatch / InvalidArgument) as the unmemoized path.
  return units_[from.index()].Semantics().ConversionFactorTo(
      units_[to.index()].Semantics());
}

Result<double> DimUnitKB::ConversionFactor(std::string_view from_id,
                                           std::string_view to_id) const {
  DIMQR_ASSIGN_OR_RETURN(UnitId from, ResolveId(from_id));
  DIMQR_ASSIGN_OR_RETURN(UnitId to, ResolveId(to_id));
  return ConversionFactor(from, to);
}

dimqr::UnitResolver DimUnitKB::Resolver() const {
  return [this](std::string_view name) -> Result<dimqr::UnitSemantics> {
    std::span<const UnitId> candidates = FindBySurface(name);
    if (candidates.empty()) {
      Result<UnitId> by_id = ResolveId(name);
      if (by_id.ok()) return Get(*by_id).Semantics();
      return Status::NotFound("unknown unit '" + std::string(name) + "'");
    }
    const UnitRecord* best = &Get(candidates.front());
    for (UnitId c : candidates) {
      if (Get(c).frequency > best->frequency) best = &Get(c);
    }
    return best->Semantics();
  };
}

std::vector<UnitId> DimUnitKB::UnitsByFrequency() const {
  std::vector<UnitId> out;
  out.reserve(units_.size());
  for (std::size_t i = 0; i < units_.size(); ++i) {
    out.push_back(UnitId::FromIndex(i));
  }
  std::sort(out.begin(), out.end(), [this](UnitId a, UnitId b) {
    const UnitRecord& ua = Get(a);
    const UnitRecord& ub = Get(b);
    if (ua.frequency != ub.frequency) return ua.frequency > ub.frequency;
    return ua.id < ub.id;
  });
  return out;
}

std::vector<std::pair<KindId, double>> DimUnitKB::KindsByFrequency(
    std::size_t top_k) const {
  std::vector<std::pair<KindId, double>> out;
  std::vector<const UnitRecord*> members;
  for (std::size_t k = 0; k < kinds_.size(); ++k) {
    const KindId kind = KindId::FromIndex(k);
    std::span<const UnitId> posting = UnitsOfKind(kind);
    if (posting.empty()) continue;
    members.clear();
    for (UnitId uid : posting) members.push_back(&Get(uid));
    std::sort(members.begin(), members.end(),
              [](const UnitRecord* a, const UnitRecord* b) {
                return a->frequency > b->frequency;
              });
    std::size_t n = std::min(top_k, members.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += members[i]->frequency;
    out.emplace_back(kind, sum / static_cast<double>(n));
  }
  std::sort(out.begin(), out.end(), [this](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return GetKind(a.first).name < GetKind(b.first).name;
  });
  return out;
}

KbStats DimUnitKB::Stats() const {
  KbStats stats;
  stats.num_units = units_.size();
  stats.num_quantity_kinds = kinds_.size();
  std::unordered_set<std::uint64_t> dims;
  for (const UnitRecord& u : units_) dims.insert(u.dimension.PackedKey());
  for (const QuantityKindRecord& k : kinds_) {
    dims.insert(k.dimension.PackedKey());
  }
  stats.num_dimension_vectors = dims.size();
  for (const UnitRecord& u : units_) {
    if (!u.label_zh.empty()) ++stats.num_units_with_zh;
    switch (u.origin) {
      case UnitOrigin::kSeed:
        ++stats.num_seed_units;
        break;
      case UnitOrigin::kPrefixExpanded:
        ++stats.num_prefix_units;
        break;
      case UnitOrigin::kCompound:
        ++stats.num_compound_units;
        break;
    }
  }
  return stats;
}

Status DimUnitKB::SaveTsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "#id\tlabel_en\tlabel_zh\tsymbols\taliases\tkind\tdim\tscale\t"
         "exact\toffset\tfreq\tgt\ths\tcf\torigin\tkeywords\tdescription\n";
  for (const UnitRecord& u : units_) {
    out << u.id << '\t' << u.label_en << '\t' << u.label_zh << '\t'
        << JoinList(u.symbols) << '\t' << JoinList(u.aliases) << '\t'
        << u.quantity_kind << '\t' << u.dimension.ToVectorForm() << '\t';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", u.conversion_value);
    out << buf << '\t'
        << (u.exact_conversion ? u.exact_conversion->ToString() : "") << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.conversion_offset);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.frequency);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.google_trends);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.human_score);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.corpus_freq);
    out << buf << '\t' << OriginName(u.origin) << '\t'
        << JoinList(u.keywords) << '\t' << u.description << '\n';
  }
  out << "#KINDS\n";
  for (const QuantityKindRecord& k : kinds_) {
    out << k.name << '\t' << k.label_zh << '\t' << k.dimension.ToVectorForm()
        << '\t' << JoinList(k.keywords) << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::shared_ptr<const DimUnitKB>> DimUnitKB::LoadTsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  auto kb = std::shared_ptr<DimUnitKB>(new DimUnitKB());
  std::string line;
  bool in_kinds = false;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "#KINDS") {
      in_kinds = true;
      continue;
    }
    if (!header_skipped && line[0] == '#') {
      header_skipped = true;
      continue;
    }
    std::vector<std::string> f = dimqr::text::Split(line, '\t');
    if (in_kinds) {
      if (f.size() != 4) {
        return Status::ParseError("malformed kind row: " + line);
      }
      QuantityKindRecord k;
      k.name = f[0];
      k.label_zh = f[1];
      DIMQR_ASSIGN_OR_RETURN(k.dimension,
                             dimqr::Dimension::ParseVectorForm(f[2]));
      k.keywords = SplitPipe(f[3]);
      kb->kinds_.push_back(std::move(k));
      continue;
    }
    if (f.size() != 17) {
      return Status::ParseError("malformed unit row: " + line);
    }
    UnitRecord u;
    u.id = f[0];
    u.label_en = f[1];
    u.label_zh = f[2];
    u.symbols = SplitPipe(f[3]);
    u.aliases = SplitPipe(f[4]);
    u.quantity_kind = f[5];
    DIMQR_ASSIGN_OR_RETURN(u.dimension, dimqr::Dimension::ParseVectorForm(f[6]));
    u.conversion_value = std::strtod(f[7].c_str(), nullptr);
    if (f[8].empty()) {
      u.exact_conversion.reset();
    } else {
      DIMQR_ASSIGN_OR_RETURN(dimqr::Rational exact,
                             dimqr::Rational::Parse(f[8]));
      u.exact_conversion = exact;
    }
    u.conversion_offset = std::strtod(f[9].c_str(), nullptr);
    u.frequency = std::strtod(f[10].c_str(), nullptr);
    u.popularity.google_trends = std::strtod(f[11].c_str(), nullptr);
    u.popularity.human_score = std::strtod(f[12].c_str(), nullptr);
    u.popularity.corpus_freq = std::strtod(f[13].c_str(), nullptr);
    DIMQR_ASSIGN_OR_RETURN(u.origin, ParseOrigin(f[14]));
    u.keywords = SplitPipe(f[15]);
    u.description = f[16];
    kb->units_.push_back(std::move(u));
  }
  if (kb->units_.empty()) {
    return Status::ParseError("no unit rows in " + path);
  }
  kb->BuildIndexes();
  return std::shared_ptr<const DimUnitKB>(kb);
}

}  // namespace dimqr::kb
