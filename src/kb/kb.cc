#include "kb/kb.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "kb/catalog.h"
#include "text/string_util.h"

namespace dimqr::kb {
namespace {

using dimqr::Result;
using dimqr::Status;

using SurfacePostings = PostingsIndex<SurfaceId, UnitId>;
using KindPostings = PostingsIndex<KindId, UnitId>;
using DimPostings = PostingsIndex<DimClassId, UnitId>;

std::string JoinList(std::span<const std::string_view> parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += '|';
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitPipe(const std::string& field) {
  if (field.empty()) return {};
  return dimqr::text::Split(field, '|');
}

const char* OriginName(UnitOrigin origin) {
  switch (origin) {
    case UnitOrigin::kSeed:
      return "seed";
    case UnitOrigin::kPrefixExpanded:
      return "prefix";
    case UnitOrigin::kCompound:
      return "compound";
  }
  return "seed";
}

Result<UnitOrigin> ParseOrigin(const std::string& name) {
  if (name == "seed") return UnitOrigin::kSeed;
  if (name == "prefix") return UnitOrigin::kPrefixExpanded;
  if (name == "compound") return UnitOrigin::kCompound;
  return Status::ParseError("unknown unit origin: " + name);
}

// ----- Snapshot pods (fixed-width, hole-free — part of the "kb" section
// layout; any change bumps snapshot::kSnapshotVersion) -----

struct UnitPod {
  snapshot::StrRef id;
  snapshot::StrRef label_en;
  snapshot::StrRef label_zh;
  snapshot::StrRef description;
  snapshot::StrRef quantity_kind;
  std::uint32_t symbols_begin, symbols_count;    ///< Into the list-ref pool.
  std::uint32_t aliases_begin, aliases_count;
  std::uint32_t keywords_begin, keywords_count;
  double frequency;
  double conversion_value;
  double conversion_offset;
  std::int64_t exact_num;
  std::int64_t exact_den;  ///< 0 encodes "no exact rational".
  double pop_gt, pop_hs, pop_cf;
  std::int8_t dim[dimqr::kNumBaseDims];
  std::uint8_t origin;
};
static_assert(sizeof(UnitPod) == 136, "UnitPod must stay hole-free");
static_assert(std::is_trivially_copyable_v<UnitPod>);

struct KindPod {
  snapshot::StrRef name;
  snapshot::StrRef label_zh;
  std::uint32_t keywords_begin, keywords_count;
  std::int8_t dim[dimqr::kNumBaseDims];
  std::uint8_t pad;  ///< Zero.
};
static_assert(sizeof(KindPod) == 32, "KindPod must stay hole-free");
static_assert(std::is_trivially_copyable_v<KindPod>);

void EncodeDim(const dimqr::Dimension& d,
               std::int8_t (&out)[dimqr::kNumBaseDims]) {
  for (int i = 0; i < dimqr::kNumBaseDims; ++i) {
    out[i] = static_cast<std::int8_t>(
        d.exponent(static_cast<dimqr::BaseDim>(i)));
  }
}

Result<dimqr::Dimension> DecodeDim(
    const std::int8_t (&in)[dimqr::kNumBaseDims]) {
  std::array<int, dimqr::kNumBaseDims> e{};
  for (int i = 0; i < dimqr::kNumBaseDims; ++i) e[i] = in[i];
  return dimqr::Dimension::FromExponents(e);
}

std::vector<std::string_view> DraftSurfaceForms(const UnitDraft& u) {
  std::vector<std::string_view> out;
  out.push_back(u.label_en);
  if (!u.label_zh.empty()) out.push_back(u.label_zh);
  for (const std::string& s : u.symbols) out.push_back(s);
  for (const std::string& a : u.aliases) out.push_back(a);
  return out;
}

/// Packs a finished draft collection — records, every lookup index, and the
/// memoized conversion tables — into one arena blob: the exact bytes of the
/// snapshot "kb" section. All iteration below is over vectors/insertion
/// order (never unordered containers), so identical drafts produce
/// byte-identical blobs across runs.
Result<std::vector<std::byte>> PackKbArena(
    const std::vector<UnitDraft>& units,
    const std::vector<QuantityKindDraft>& kinds) {
  const std::size_t n = units.size();

  // ---- String pool and record pods ----
  std::string chars;
  auto AddStr = [&chars](std::string_view s) -> Result<snapshot::StrRef> {
    if (chars.size() + s.size() >
        std::numeric_limits<std::uint32_t>::max()) {
      return Status::Internal("kb string pool exceeds 4 GiB");
    }
    snapshot::StrRef ref{static_cast<std::uint32_t>(chars.size()),
                         static_cast<std::uint32_t>(s.size())};
    chars.append(s);
    return ref;
  };
  std::vector<snapshot::StrRef> list_refs;
  auto AddList = [&](const std::vector<std::string>& list,
                     std::uint32_t& begin, std::uint32_t& count) -> Status {
    begin = static_cast<std::uint32_t>(list_refs.size());
    count = static_cast<std::uint32_t>(list.size());
    for (const std::string& s : list) {
      DIMQR_ASSIGN_OR_RETURN(snapshot::StrRef ref, AddStr(s));
      list_refs.push_back(ref);
    }
    return Status::OK();
  };

  std::vector<UnitPod> pods(n, UnitPod{});
  for (std::size_t i = 0; i < n; ++i) {
    const UnitDraft& u = units[i];
    UnitPod& p = pods[i];
    DIMQR_ASSIGN_OR_RETURN(p.id, AddStr(u.id));
    DIMQR_ASSIGN_OR_RETURN(p.label_en, AddStr(u.label_en));
    DIMQR_ASSIGN_OR_RETURN(p.label_zh, AddStr(u.label_zh));
    DIMQR_ASSIGN_OR_RETURN(p.description, AddStr(u.description));
    DIMQR_ASSIGN_OR_RETURN(p.quantity_kind, AddStr(u.quantity_kind));
    DIMQR_RETURN_NOT_OK(AddList(u.symbols, p.symbols_begin, p.symbols_count));
    DIMQR_RETURN_NOT_OK(AddList(u.aliases, p.aliases_begin, p.aliases_count));
    DIMQR_RETURN_NOT_OK(
        AddList(u.keywords, p.keywords_begin, p.keywords_count));
    p.frequency = u.frequency;
    p.conversion_value = u.conversion_value;
    p.conversion_offset = u.conversion_offset;
    p.exact_num = u.exact_conversion ? u.exact_conversion->numerator() : 0;
    p.exact_den = u.exact_conversion ? u.exact_conversion->denominator() : 0;
    p.pop_gt = u.popularity.google_trends;
    p.pop_hs = u.popularity.human_score;
    p.pop_cf = u.popularity.corpus_freq;
    EncodeDim(u.dimension, p.dim);
    p.origin = static_cast<std::uint8_t>(u.origin);
  }

  std::vector<KindPod> kind_pods(kinds.size(), KindPod{});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const QuantityKindDraft& kd = kinds[k];
    KindPod& p = kind_pods[k];
    DIMQR_ASSIGN_OR_RETURN(p.name, AddStr(kd.name));
    DIMQR_ASSIGN_OR_RETURN(p.label_zh, AddStr(kd.label_zh));
    DIMQR_RETURN_NOT_OK(
        AddList(kd.keywords, p.keywords_begin, p.keywords_count));
    EncodeDim(kd.dimension, p.dim);
    p.pad = 0;
  }

  // ---- Lookup indexes (one pass, catalog order) ----
  SymbolTable id_syms, surface_syms, lower_syms, kind_syms;
  std::vector<UnitId> id_sym_to_unit;

  // Registry kinds first so KindId 1..kinds.size() mirror registry order;
  // kind strings seen only on unit records (possibly "") follow.
  for (const QuantityKindDraft& k : kinds) kind_syms.Intern(k.name);

  std::vector<std::vector<UnitId>> exact_buckets;
  std::vector<std::vector<UnitId>> lower_buckets;
  std::vector<std::vector<UnitId>> kind_buckets(kind_syms.size());
  std::vector<std::vector<UnitId>> dim_buckets;
  std::unordered_map<std::uint64_t, std::uint32_t> dim_class_of;
  std::vector<std::uint32_t> unit_class(n, 0);
  std::vector<std::uint32_t> unit_rank(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const UnitDraft& u = units[i];
    const UnitId uid = UnitId::FromIndex(i);

    std::uint32_t sym = id_syms.Intern(u.id);
    if (sym > id_sym_to_unit.size()) {
      id_sym_to_unit.push_back(uid);
    } else {
      id_sym_to_unit[sym - 1] = uid;  // duplicate UnitID: last wins
    }

    for (std::string_view surface : DraftSurfaceForms(u)) {
      if (surface.empty()) continue;
      std::uint32_t es = surface_syms.Intern(surface);
      if (es > exact_buckets.size()) exact_buckets.emplace_back();
      exact_buckets[es - 1].push_back(uid);
      std::uint32_t ls = lower_syms.Intern(dimqr::text::ToLowerAscii(
          std::string(surface)));
      if (ls > lower_buckets.size()) lower_buckets.emplace_back();
      std::vector<UnitId>& bucket = lower_buckets[ls - 1];
      // Deduplicate per lowercased surface, keeping the first occurrence
      // (buckets are tiny; linear scan beats any set here).
      if (std::find(bucket.begin(), bucket.end(), uid) == bucket.end()) {
        bucket.push_back(uid);
      }
    }

    std::uint32_t ks = kind_syms.Intern(u.quantity_kind);
    if (ks > kind_buckets.size()) kind_buckets.resize(ks);
    kind_buckets[ks - 1].push_back(uid);

    auto [it, inserted] = dim_class_of.try_emplace(
        u.dimension.PackedKey(),
        static_cast<std::uint32_t>(dim_buckets.size()));
    if (inserted) dim_buckets.emplace_back();
    unit_class[i] = it->second;
    unit_rank[i] = static_cast<std::uint32_t>(dim_buckets[it->second].size());
    dim_buckets[it->second].push_back(uid);
  }

  SurfacePostings by_surface = SurfacePostings::FromBuckets(exact_buckets);
  SurfacePostings by_surface_lower =
      SurfacePostings::FromBuckets(lower_buckets);
  KindPostings by_kind = KindPostings::FromBuckets(kind_buckets);
  DimPostings by_dimension = DimPostings::FromBuckets(dim_buckets);

  std::vector<DimClassKey> dim_class_keys;
  dim_class_keys.reserve(dim_class_of.size());
  for (const auto& [key, cls] : dim_class_of) {
    dim_class_keys.push_back(DimClassKey{key, cls, 0});
  }
  // Canonical order: packed keys are unique, so sorting by key alone makes
  // the serialized table independent of unordered_map iteration order.
  std::sort(dim_class_keys.begin(), dim_class_keys.end(),
            [](const DimClassKey& a, const DimClassKey& b) {
              return a.packed_key < b.packed_key;
            });

  // ---- Conversion memo tables (CSR-flat, one k×k block per class) ----
  // Filled through the exact Rational path so memoized factors are
  // bit-identical to on-demand ones. NaN marks pairs with no single linear
  // factor (affine endpoints); lookups fall back to the slow path there.
  std::vector<std::uint64_t> factor_offsets;
  factor_offsets.reserve(dim_buckets.size() + 1);
  factor_offsets.push_back(0);
  std::vector<double> factor_data;
  std::vector<UnitSemantics> sems;
  for (const std::vector<UnitId>& members : dim_buckets) {
    const std::size_t k = members.size();
    sems.clear();
    sems.reserve(k);
    for (UnitId uid : members) sems.push_back(units[uid.index()].Semantics());
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        Result<double> factor = sems[i].ConversionFactorTo(sems[j]);
        factor_data.push_back(
            factor.ok() ? *factor : std::numeric_limits<double>::quiet_NaN());
      }
    }
    factor_offsets.push_back(factor_data.size());
  }

  // ---- Serialize (read back in this exact order by InitFromArena) ----
  snapshot::ArenaWriter w;
  w.PutString(chars);
  w.PutArray(list_refs);
  w.PutArray(pods);
  w.PutArray(kind_pods);
  id_syms.WriteTo(w);
  w.PutArray(id_sym_to_unit);
  surface_syms.WriteTo(w);
  by_surface.WriteTo(w);
  lower_syms.WriteTo(w);
  by_surface_lower.WriteTo(w);
  kind_syms.WriteTo(w);
  by_kind.WriteTo(w);
  w.PutArray(dim_class_keys);
  by_dimension.WriteTo(w);
  w.PutArray(unit_class);
  w.PutArray(unit_rank);
  w.PutArray(factor_offsets);
  w.PutArray(factor_data);
  return w.Take();
}

}  // namespace

Result<std::shared_ptr<const DimUnitKB>> DimUnitKB::Build() {
  DIMQR_ASSIGN_OR_RETURN(std::vector<UnitDraft> units, BuildUnitCatalog());
  DIMQR_ASSIGN_OR_RETURN(std::vector<QuantityKindDraft> kinds,
                         BuildKindCatalog());
  return FromDrafts(units, kinds);
}

Result<std::shared_ptr<const DimUnitKB>> DimUnitKB::FromDrafts(
    const std::vector<UnitDraft>& units,
    const std::vector<QuantityKindDraft>& kinds) {
  auto kb = std::shared_ptr<DimUnitKB>(new DimUnitKB());
  DIMQR_ASSIGN_OR_RETURN(kb->owned_blob_, PackKbArena(units, kinds));
  DIMQR_RETURN_NOT_OK(
      kb->InitFromArena(std::span<const std::byte>(kb->owned_blob_)));
  return std::shared_ptr<const DimUnitKB>(kb);
}

Result<std::shared_ptr<const DimUnitKB>> DimUnitKB::FromSnapshot(
    std::shared_ptr<const snapshot::Snapshot> snap) {
  auto kb = std::shared_ptr<DimUnitKB>(new DimUnitKB());
  DIMQR_ASSIGN_OR_RETURN(std::span<const std::byte> section,
                         snap->Section("kb"));
  kb->snapshot_ = std::move(snap);
  DIMQR_RETURN_NOT_OK(kb->InitFromArena(section));
  return std::shared_ptr<const DimUnitKB>(kb);
}

Status DimUnitKB::WriteSnapshot(snapshot::SnapshotWriter& writer) const {
  return writer.AddSection(
      "kb", std::vector<std::byte>(arena_.begin(), arena_.end()));
}

Status DimUnitKB::InitFromArena(std::span<const std::byte> arena) {
  arena_ = arena;
  snapshot::ArenaReader r(arena);
  DIMQR_ASSIGN_OR_RETURN(std::string_view chars, r.GetString());
  const std::span<const char> char_pool(chars.data(), chars.size());
  DIMQR_ASSIGN_OR_RETURN(std::span<const snapshot::StrRef> list_refs,
                         r.GetArray<snapshot::StrRef>());
  DIMQR_ASSIGN_OR_RETURN(std::span<const UnitPod> pods,
                         r.GetArray<UnitPod>());
  DIMQR_ASSIGN_OR_RETURN(std::span<const KindPod> kind_pods,
                         r.GetArray<KindPod>());

  list_pool_.clear();
  list_pool_.reserve(list_refs.size());
  for (snapshot::StrRef ref : list_refs) {
    DIMQR_ASSIGN_OR_RETURN(std::string_view s,
                           snapshot::ArenaReader::View(char_pool, ref));
    list_pool_.push_back(s);
  }
  auto ListView = [this](std::uint32_t begin, std::uint32_t count)
      -> Result<std::span<const std::string_view>> {
    if (begin > list_pool_.size() || list_pool_.size() - begin < count) {
      return Status::IOError("kb record list range out of snapshot bounds");
    }
    return std::span<const std::string_view>(list_pool_.data() + begin,
                                             count);
  };

  units_.clear();
  units_.reserve(pods.size());
  for (const UnitPod& p : pods) {
    UnitRecord u;
    DIMQR_ASSIGN_OR_RETURN(u.id, snapshot::ArenaReader::View(char_pool, p.id));
    DIMQR_ASSIGN_OR_RETURN(u.label_en,
                           snapshot::ArenaReader::View(char_pool, p.label_en));
    DIMQR_ASSIGN_OR_RETURN(u.label_zh,
                           snapshot::ArenaReader::View(char_pool, p.label_zh));
    DIMQR_ASSIGN_OR_RETURN(
        u.description, snapshot::ArenaReader::View(char_pool, p.description));
    DIMQR_ASSIGN_OR_RETURN(
        u.quantity_kind,
        snapshot::ArenaReader::View(char_pool, p.quantity_kind));
    DIMQR_ASSIGN_OR_RETURN(u.symbols,
                           ListView(p.symbols_begin, p.symbols_count));
    DIMQR_ASSIGN_OR_RETURN(u.aliases,
                           ListView(p.aliases_begin, p.aliases_count));
    DIMQR_ASSIGN_OR_RETURN(u.keywords,
                           ListView(p.keywords_begin, p.keywords_count));
    u.frequency = p.frequency;
    u.conversion_value = p.conversion_value;
    u.conversion_offset = p.conversion_offset;
    if (p.exact_den == 0) {
      u.exact_conversion.reset();
    } else {
      DIMQR_ASSIGN_OR_RETURN(dimqr::Rational exact,
                             dimqr::Rational::Of(p.exact_num, p.exact_den));
      u.exact_conversion = exact;
    }
    DIMQR_ASSIGN_OR_RETURN(u.dimension, DecodeDim(p.dim));
    u.popularity.google_trends = p.pop_gt;
    u.popularity.human_score = p.pop_hs;
    u.popularity.corpus_freq = p.pop_cf;
    if (p.origin > static_cast<std::uint8_t>(UnitOrigin::kCompound)) {
      return Status::IOError("unknown unit origin code in snapshot");
    }
    u.origin = static_cast<UnitOrigin>(p.origin);
    units_.push_back(u);
  }

  kinds_.clear();
  kinds_.reserve(kind_pods.size());
  for (const KindPod& p : kind_pods) {
    QuantityKindRecord k;
    DIMQR_ASSIGN_OR_RETURN(k.name,
                           snapshot::ArenaReader::View(char_pool, p.name));
    DIMQR_ASSIGN_OR_RETURN(k.label_zh,
                           snapshot::ArenaReader::View(char_pool, p.label_zh));
    DIMQR_ASSIGN_OR_RETURN(k.keywords,
                           ListView(p.keywords_begin, p.keywords_count));
    DIMQR_ASSIGN_OR_RETURN(k.dimension, DecodeDim(p.dim));
    kinds_.push_back(k);
  }

  DIMQR_ASSIGN_OR_RETURN(id_syms_, SymbolTable::FromArena(r));
  DIMQR_ASSIGN_OR_RETURN(id_sym_to_unit_, r.GetArray<UnitId>());
  if (id_sym_to_unit_.size() != id_syms_.size()) {
    return Status::IOError("kb id map size mismatch in snapshot");
  }
  for (UnitId uid : id_sym_to_unit_) {
    if (!uid.valid() || uid.index() >= units_.size()) {
      return Status::IOError("kb id map points past unit count in snapshot");
    }
  }
  DIMQR_ASSIGN_OR_RETURN(surface_syms_, SymbolTable::FromArena(r));
  DIMQR_ASSIGN_OR_RETURN(by_surface_, SurfacePostings::FromArena(r));
  DIMQR_ASSIGN_OR_RETURN(lower_syms_, SymbolTable::FromArena(r));
  DIMQR_ASSIGN_OR_RETURN(by_surface_lower_, SurfacePostings::FromArena(r));
  DIMQR_ASSIGN_OR_RETURN(kind_syms_, SymbolTable::FromArena(r));
  DIMQR_ASSIGN_OR_RETURN(by_kind_, KindPostings::FromArena(r));
  DIMQR_ASSIGN_OR_RETURN(dim_class_keys_, r.GetArray<DimClassKey>());
  DIMQR_ASSIGN_OR_RETURN(by_dimension_, DimPostings::FromArena(r));
  DIMQR_ASSIGN_OR_RETURN(unit_class_, r.GetArray<std::uint32_t>());
  DIMQR_ASSIGN_OR_RETURN(unit_rank_, r.GetArray<std::uint32_t>());
  DIMQR_ASSIGN_OR_RETURN(factor_offsets_, r.GetArray<std::uint64_t>());
  DIMQR_ASSIGN_OR_RETURN(factor_data_, r.GetArray<double>());

  if (unit_class_.size() != units_.size() ||
      unit_rank_.size() != units_.size()) {
    return Status::IOError("kb class/rank arrays mismatch unit count");
  }
  const std::size_t num_classes = by_dimension_.num_keys();
  if (factor_offsets_.size() != num_classes + 1 ||
      factor_offsets_.front() != 0 ||
      factor_offsets_.back() != factor_data_.size()) {
    return Status::IOError("kb factor-table offsets corrupt in snapshot");
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    const std::uint64_t k = by_dimension_[DimClassId::FromIndex(c)].size();
    if (factor_offsets_[c] > factor_offsets_[c + 1] ||
        factor_offsets_[c + 1] - factor_offsets_[c] != k * k) {
      return Status::IOError("kb factor-table block size corrupt");
    }
  }
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (unit_class_[i] >= num_classes ||
        unit_rank_[i] >=
            by_dimension_[DimClassId::FromIndex(unit_class_[i])].size()) {
      return Status::IOError("kb unit class/rank out of bounds in snapshot");
    }
  }
  for (const DimClassKey& key : dim_class_keys_) {
    if (key.dim_class >= num_classes) {
      return Status::IOError("kb dimension key class out of bounds");
    }
  }
  return Status::OK();
}

UnitId DimUnitKB::IdOf(std::string_view id_string) const {
  std::uint32_t sym = id_syms_.Lookup(id_string);
  return sym == 0 ? UnitId() : id_sym_to_unit_[sym - 1];
}

Result<UnitId> DimUnitKB::ResolveId(std::string_view id_string) const {
  UnitId id = IdOf(id_string);
  if (!id.valid()) {
    return Status::NotFound("no unit with id '" + std::string(id_string) +
                            "'");
  }
  return id;
}

std::span<const UnitId> DimUnitKB::FindBySurface(
    std::string_view surface) const {
  std::span<const UnitId> exact =
      by_surface_[SurfaceId(surface_syms_.Lookup(surface))];
  if (!exact.empty()) return exact;
  return by_surface_lower_[SurfaceId(
      lower_syms_.Lookup(dimqr::text::ToLowerAscii(surface)))];
}

std::span<const UnitId> DimUnitKB::UnitsOfDimension(
    const dimqr::Dimension& dim) const {
  const std::uint64_t key = dim.PackedKey();
  auto it = std::lower_bound(
      dim_class_keys_.begin(), dim_class_keys_.end(), key,
      [](const DimClassKey& entry, std::uint64_t k) {
        return entry.packed_key < k;
      });
  if (it == dim_class_keys_.end() || it->packed_key != key) return {};
  return by_dimension_[DimClassId::FromIndex(it->dim_class)];
}

std::span<const UnitId> DimUnitKB::UnitsOfKind(KindId kind) const {
  return by_kind_[kind];
}

KindId DimUnitKB::KindIdOf(std::string_view name) const {
  return KindId(kind_syms_.Lookup(name));
}

Result<const QuantityKindRecord*> DimUnitKB::FindKind(
    std::string_view name) const {
  KindId kind = KindIdOf(name);
  if (!kind.valid() || kind.index() >= kinds_.size()) {
    return Status::NotFound("no quantity kind '" + std::string(name) + "'");
  }
  return &kinds_[kind.index()];
}

Result<double> DimUnitKB::ConversionFactor(UnitId from, UnitId to) const {
  if (!from.valid() || from.index() >= units_.size()) {
    return Status::NotFound("invalid 'from' unit handle");
  }
  if (!to.valid() || to.index() >= units_.size()) {
    return Status::NotFound("invalid 'to' unit handle");
  }
  if (unit_class_[from.index()] == unit_class_[to.index()]) {
    const std::size_t c = unit_class_[from.index()];
    const std::size_t k = by_dimension_[DimClassId::FromIndex(c)].size();
    double factor =
        factor_data_[factor_offsets_[c] + unit_rank_[from.index()] * k +
                     unit_rank_[to.index()]];
    if (!std::isnan(factor)) return factor;
  }
  // Cross-class or affine: delegate so callers see the exact same Status
  // (DimensionMismatch / InvalidArgument) as the unmemoized path.
  return units_[from.index()].Semantics().ConversionFactorTo(
      units_[to.index()].Semantics());
}

dimqr::UnitResolver DimUnitKB::Resolver() const {
  return [this](std::string_view name) -> Result<dimqr::UnitSemantics> {
    std::span<const UnitId> candidates = FindBySurface(name);
    if (candidates.empty()) {
      Result<UnitId> by_id = ResolveId(name);
      if (by_id.ok()) return Get(*by_id).Semantics();
      return Status::NotFound("unknown unit '" + std::string(name) + "'");
    }
    const UnitRecord* best = &Get(candidates.front());
    for (UnitId c : candidates) {
      if (Get(c).frequency > best->frequency) best = &Get(c);
    }
    return best->Semantics();
  };
}

std::vector<UnitId> DimUnitKB::UnitsByFrequency() const {
  std::vector<UnitId> out;
  out.reserve(units_.size());
  for (std::size_t i = 0; i < units_.size(); ++i) {
    out.push_back(UnitId::FromIndex(i));
  }
  std::sort(out.begin(), out.end(), [this](UnitId a, UnitId b) {
    const UnitRecord& ua = Get(a);
    const UnitRecord& ub = Get(b);
    if (ua.frequency != ub.frequency) return ua.frequency > ub.frequency;
    return ua.id < ub.id;
  });
  return out;
}

std::vector<std::pair<KindId, double>> DimUnitKB::KindsByFrequency(
    std::size_t top_k) const {
  std::vector<std::pair<KindId, double>> out;
  std::vector<const UnitRecord*> members;
  for (std::size_t k = 0; k < kinds_.size(); ++k) {
    const KindId kind = KindId::FromIndex(k);
    std::span<const UnitId> posting = UnitsOfKind(kind);
    if (posting.empty()) continue;
    members.clear();
    for (UnitId uid : posting) members.push_back(&Get(uid));
    std::sort(members.begin(), members.end(),
              [](const UnitRecord* a, const UnitRecord* b) {
                return a->frequency > b->frequency;
              });
    std::size_t n = std::min(top_k, members.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += members[i]->frequency;
    out.emplace_back(kind, sum / static_cast<double>(n));
  }
  std::sort(out.begin(), out.end(), [this](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return GetKind(a.first).name < GetKind(b.first).name;
  });
  return out;
}

KbStats DimUnitKB::Stats() const {
  KbStats stats;
  stats.num_units = units_.size();
  stats.num_quantity_kinds = kinds_.size();
  std::unordered_set<std::uint64_t> dims;
  for (const UnitRecord& u : units_) dims.insert(u.dimension.PackedKey());
  for (const QuantityKindRecord& k : kinds_) {
    dims.insert(k.dimension.PackedKey());
  }
  stats.num_dimension_vectors = dims.size();
  for (const UnitRecord& u : units_) {
    if (!u.label_zh.empty()) ++stats.num_units_with_zh;
    switch (u.origin) {
      case UnitOrigin::kSeed:
        ++stats.num_seed_units;
        break;
      case UnitOrigin::kPrefixExpanded:
        ++stats.num_prefix_units;
        break;
      case UnitOrigin::kCompound:
        ++stats.num_compound_units;
        break;
    }
  }
  return stats;
}

Status DimUnitKB::SaveTsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "#id\tlabel_en\tlabel_zh\tsymbols\taliases\tkind\tdim\tscale\t"
         "exact\toffset\tfreq\tgt\ths\tcf\torigin\tkeywords\tdescription\n";
  for (const UnitRecord& u : units_) {
    out << u.id << '\t' << u.label_en << '\t' << u.label_zh << '\t'
        << JoinList(u.symbols) << '\t' << JoinList(u.aliases) << '\t'
        << u.quantity_kind << '\t' << u.dimension.ToVectorForm() << '\t';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", u.conversion_value);
    out << buf << '\t'
        << (u.exact_conversion ? u.exact_conversion->ToString() : "") << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.conversion_offset);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.frequency);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.google_trends);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.human_score);
    out << buf << '\t';
    std::snprintf(buf, sizeof(buf), "%.17g", u.popularity.corpus_freq);
    out << buf << '\t' << OriginName(u.origin) << '\t'
        << JoinList(u.keywords) << '\t' << u.description << '\n';
  }
  out << "#KINDS\n";
  for (const QuantityKindRecord& k : kinds_) {
    out << k.name << '\t' << k.label_zh << '\t' << k.dimension.ToVectorForm()
        << '\t' << JoinList(k.keywords) << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::shared_ptr<const DimUnitKB>> DimUnitKB::LoadTsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::vector<UnitDraft> units;
  std::vector<QuantityKindDraft> kinds;
  std::string line;
  bool in_kinds = false;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "#KINDS") {
      in_kinds = true;
      continue;
    }
    if (!header_skipped && line[0] == '#') {
      header_skipped = true;
      continue;
    }
    std::vector<std::string> f = dimqr::text::Split(line, '\t');
    if (in_kinds) {
      if (f.size() != 4) {
        return Status::ParseError("malformed kind row: " + line);
      }
      QuantityKindDraft k;
      k.name = f[0];
      k.label_zh = f[1];
      DIMQR_ASSIGN_OR_RETURN(k.dimension,
                             dimqr::Dimension::ParseVectorForm(f[2]));
      k.keywords = SplitPipe(f[3]);
      kinds.push_back(std::move(k));
      continue;
    }
    if (f.size() != 17) {
      return Status::ParseError("malformed unit row: " + line);
    }
    UnitDraft u;
    u.id = f[0];
    u.label_en = f[1];
    u.label_zh = f[2];
    u.symbols = SplitPipe(f[3]);
    u.aliases = SplitPipe(f[4]);
    u.quantity_kind = f[5];
    DIMQR_ASSIGN_OR_RETURN(u.dimension,
                           dimqr::Dimension::ParseVectorForm(f[6]));
    u.conversion_value = std::strtod(f[7].c_str(), nullptr);
    if (f[8].empty()) {
      u.exact_conversion.reset();
    } else {
      DIMQR_ASSIGN_OR_RETURN(dimqr::Rational exact,
                             dimqr::Rational::Parse(f[8]));
      u.exact_conversion = exact;
    }
    u.conversion_offset = std::strtod(f[9].c_str(), nullptr);
    u.frequency = std::strtod(f[10].c_str(), nullptr);
    u.popularity.google_trends = std::strtod(f[11].c_str(), nullptr);
    u.popularity.human_score = std::strtod(f[12].c_str(), nullptr);
    u.popularity.corpus_freq = std::strtod(f[13].c_str(), nullptr);
    DIMQR_ASSIGN_OR_RETURN(u.origin, ParseOrigin(f[14]));
    u.keywords = SplitPipe(f[15]);
    u.description = f[16];
    units.push_back(std::move(u));
  }
  if (units.empty()) {
    return Status::ParseError("no unit rows in " + path);
  }
  return FromDrafts(units, kinds);
}

}  // namespace dimqr::kb
