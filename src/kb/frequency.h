#ifndef DIMQR_KB_FREQUENCY_H_
#define DIMQR_KB_FREQUENCY_H_

#include <vector>

#include "core/status.h"
#include "kb/unit_record.h"

/// \file frequency.h
/// The unit-frequency model of Section III-A4, Equations (1)-(2):
///
///   Score(u) = sum_{j in {GT,HS,CF}} alpha_j * log(Freq_j(u))          (1)
///   Freq(u)  = (1-delta) * (Score(u) - min Score) / (max - min) + delta (2)
///
/// with alpha_GT = 0.3, alpha_HS = 0.3, alpha_CF = 0.4, delta = 0.1 as set
/// in the paper. Freq(u) lands in [delta, 1] and is used as the linking
/// prior Pr(u) and for the Figure 3/4 rankings.

namespace dimqr::kb {

/// \brief The weighting parameters of Eq. (1)-(2).
struct FrequencyWeights {
  double alpha_gt = 0.3;
  double alpha_hs = 0.3;
  double alpha_cf = 0.4;
  double delta = 0.1;
};

/// \brief Eq. (1): the raw log-linear popularity score of one unit.
/// Signals are clamped below at a small epsilon so log() stays finite.
double FrequencyScore(const PopularitySignals& signals,
                      const FrequencyWeights& weights = {});

/// \brief Eq. (2): computes Freq(u) for every record in `units` in place
/// (min/max normalization runs over the whole collection).
///
/// Returns InvalidArgument for an empty collection. When all scores are
/// equal (degenerate min == max), every unit gets frequency 1.0.
dimqr::Status AssignFrequencies(std::vector<UnitDraft>& units,
                                const FrequencyWeights& weights = {});

}  // namespace dimqr::kb

#endif  // DIMQR_KB_FREQUENCY_H_
