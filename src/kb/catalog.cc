#include "kb/catalog.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "kb/frequency.h"
#include "text/string_util.h"

namespace dimqr::kb {
namespace {

using dimqr::Dimension;
using dimqr::Rational;
using dimqr::Result;
using dimqr::Status;

std::vector<std::string> SplitList(const char* list) {
  if (list == nullptr || *list == '\0') return {};
  return dimqr::text::Split(list, ';');
}

/// Parses the seed `scale` field: "~x" -> inexact double, otherwise an
/// exact rational literal.
struct ParsedScale {
  double value = 1.0;
  std::optional<Rational> exact;
};

Result<ParsedScale> ParseScale(const char* scale_text) {
  ParsedScale out;
  std::string s = scale_text;
  if (s.empty()) return Status::Internal("seed with empty scale");
  if (s[0] == '~') {
    out.value = std::strtod(s.c_str() + 1, nullptr);
    out.exact.reset();
    if (out.value == 0.0) {
      return Status::Internal("seed with zero inexact scale: " + s);
    }
    return out;
  }
  DIMQR_ASSIGN_OR_RETURN(Rational r, Rational::Parse(s));
  if (r.IsZero()) return Status::Internal("seed with zero scale: " + s);
  out.value = r.ToDouble();
  out.exact = r;
  return out;
}

PopularitySignals ScaleSignals(const PopularitySignals& base, double factor) {
  PopularitySignals out;
  out.google_trends = std::max(0.1, base.google_trends * factor);
  out.human_score = std::max(0.1, base.human_score * factor);
  out.corpus_freq = std::max(0.1, base.corpus_freq * factor);
  return out;
}

PopularitySignals CombineSignals(const PopularitySignals& a,
                                 const PopularitySignals& b, double factor) {
  PopularitySignals out;
  out.google_trends =
      std::max(0.1, std::sqrt(a.google_trends * b.google_trends) * factor);
  out.human_score =
      std::max(0.1, std::sqrt(a.human_score * b.human_score) * factor);
  out.corpus_freq =
      std::max(0.1, std::sqrt(a.corpus_freq * b.corpus_freq) * factor);
  return out;
}

std::string PascalCase(const std::string& word) {
  if (word.empty()) return word;
  std::string out = word;
  out[0] = static_cast<char>(
      std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

void MergeKeywords(std::vector<std::string>& dst,
                   const std::vector<std::string>& src) {
  for (const std::string& k : src) {
    bool present = false;
    for (const std::string& existing : dst) {
      if (existing == k) {
        present = true;
        break;
      }
    }
    if (!present) dst.push_back(k);
  }
}

/// The builder holds the kind registry and the growing unit map.
class CatalogBuilder {
 public:
  Status Build() {
    DIMQR_RETURN_NOT_OK(LoadKinds());
    DIMQR_RETURN_NOT_OK(LoadSeeds());
    DIMQR_RETURN_NOT_OK(ExpandPrefixes());
    DIMQR_RETURN_NOT_OK(ApplyCompoundRules());
    DIMQR_RETURN_NOT_OK(ApplyExtraAliases());
    DIMQR_RETURN_NOT_OK(AssignFrequencies(units_));
    return Status::OK();
  }

  std::vector<UnitDraft> TakeUnits() { return std::move(units_); }

 private:
  Status LoadKinds() {
    for (const KindSeed& seed : KindSeeds()) {
      QuantityKindDraft rec;
      rec.name = seed.name;
      rec.label_zh = seed.label_zh;
      DIMQR_ASSIGN_OR_RETURN(rec.dimension, Dimension::ParseFormula(seed.dim));
      rec.keywords = SplitList(seed.keywords);
      if (kinds_.contains(rec.name)) {
        return Status::Internal("duplicate quantity kind: " + rec.name);
      }
      kinds_[rec.name] = rec;
    }
    return Status::OK();
  }

  Result<const QuantityKindDraft*> KindOf(const std::string& name,
                                           const Dimension& dim) {
    auto it = kinds_.find(name);
    if (it == kinds_.end()) {
      return Status::Internal("unit references unknown kind: " + name);
    }
    if (it->second.dimension != dim) {
      return Status::Internal("unit dimension " + dim.ToFormula() +
                              " disagrees with kind " + name + " (" +
                              it->second.dimension.ToFormula() + ")");
    }
    return &it->second;
  }

  Status AddUnit(UnitDraft rec) {
    if (index_.contains(rec.id)) {
      return Status::Internal("duplicate unit id: " + rec.id);
    }
    index_[rec.id] = units_.size();
    units_.push_back(std::move(rec));
    return Status::OK();
  }

  Result<const UnitDraft*> FindUnit(const std::string& id) const {
    auto it = index_.find(id);
    if (it == index_.end()) {
      return Status::Internal("compound rule references missing unit: " + id);
    }
    return &units_[it->second];
  }

  Status LoadSeeds() {
    for (const UnitSeed& seed : UnitSeeds()) {
      UnitDraft rec;
      rec.id = seed.id;
      rec.label_en = seed.label_en;
      rec.label_zh = seed.label_zh;
      rec.symbols = SplitList(seed.symbols);
      rec.aliases = SplitList(seed.aliases);
      rec.description = seed.description;
      rec.keywords = SplitList(seed.keywords);
      rec.quantity_kind = seed.kind;
      DIMQR_ASSIGN_OR_RETURN(rec.dimension, Dimension::ParseFormula(seed.dim));
      DIMQR_ASSIGN_OR_RETURN(const QuantityKindDraft* kind,
                             KindOf(rec.quantity_kind, rec.dimension));
      MergeKeywords(rec.keywords, kind->keywords);
      DIMQR_ASSIGN_OR_RETURN(ParsedScale scale, ParseScale(seed.scale));
      rec.conversion_value = scale.value;
      rec.exact_conversion = scale.exact;
      rec.conversion_offset = seed.offset;
      rec.popularity = {seed.gt, seed.hs, seed.cf};
      rec.origin = UnitOrigin::kSeed;
      if (rec.description.empty()) {
        rec.description = "A unit of " + rec.quantity_kind + ".";
      }
      DIMQR_RETURN_NOT_OK(AddUnit(std::move(rec)));
    }
    return Status::OK();
  }

  Status ExpandPrefixes() {
    // Collect targets first; AddUnit invalidates nothing but we iterate over
    // a stable snapshot of seed indices anyway.
    std::size_t n_seeds = units_.size();
    const std::vector<UnitSeed>& seeds = UnitSeeds();
    if (seeds.size() != n_seeds) {
      return Status::Internal("seed bookkeeping mismatch");
    }
    for (std::size_t i = 0; i < n_seeds; ++i) {
      const UnitSeed& seed = seeds[i];
      if (seed.prefix == PrefixPolicy::kNone) continue;
      const std::vector<PrefixSpec>& prefixes =
          seed.prefix == PrefixPolicy::kAll ? AllPrefixes() : CommonPrefixes();
      const UnitDraft base = units_[i];  // copy: units_ may reallocate
      for (const PrefixSpec& prefix : prefixes) {
        UnitDraft rec;
        rec.id = PascalCase(prefix.name) + base.id;
        if (index_.contains(rec.id)) continue;  // hand-seeded override
        rec.label_en = prefix.name + base.label_en;
        if (!base.label_zh.empty()) {
          rec.label_zh = prefix.label_zh + base.label_zh;
        }
        for (const std::string& sym : base.symbols) {
          rec.symbols.push_back(prefix.symbol + sym);
        }
        for (const std::string& alias : base.aliases) {
          // Only single-word aliases compose ("meter" -> "kilometer").
          if (alias.find(' ') == std::string::npos &&
              alias.find('/') == std::string::npos) {
            rec.aliases.push_back(prefix.name + alias);
          }
        }
        rec.quantity_kind = base.quantity_kind;
        rec.dimension = base.dimension;
        double p10 = std::pow(10.0, prefix.pow10);
        rec.conversion_value = base.conversion_value * p10;
        std::optional<Rational> exact10 = ExactPow10(prefix.pow10);
        if (base.exact_conversion && exact10) {
          Result<Rational> exact = base.exact_conversion->Mul(*exact10);
          if (exact.ok()) rec.exact_conversion = *exact;
          else rec.exact_conversion.reset();
        } else {
          rec.exact_conversion.reset();
        }
        rec.conversion_offset = 0.0;
        rec.keywords = base.keywords;
        rec.popularity = ScaleSignals(base.popularity, prefix.commonness);
        rec.origin = UnitOrigin::kPrefixExpanded;
        rec.description = "SI-prefixed form of " + base.label_en + " (10^" +
                          std::to_string(prefix.pow10) + ").";
        DIMQR_RETURN_NOT_OK(AddUnit(std::move(rec)));
      }
    }
    return Status::OK();
  }

  Status ApplyCompoundRules() {
    for (const CompoundRule& rule : CompoundRules()) {
      std::vector<std::string> extra_keywords = SplitList(rule.keywords);
      std::vector<std::string> lefts = SplitList(rule.left_ids);
      std::vector<std::string> rights = SplitList(rule.right_ids);
      if (rule.op == 'p') {
        for (const std::string& lid : lefts) {
          DIMQR_ASSIGN_OR_RETURN(const UnitDraft* l, FindUnit(lid));
          DIMQR_RETURN_NOT_OK(
              AddPowerUnit(*l, rule, extra_keywords));
        }
        continue;
      }
      for (const std::string& lid : lefts) {
        for (const std::string& rid : rights) {
          DIMQR_ASSIGN_OR_RETURN(const UnitDraft* l, FindUnit(lid));
          DIMQR_ASSIGN_OR_RETURN(const UnitDraft* r, FindUnit(rid));
          // Copy before AddUnit: the vector may reallocate.
          UnitDraft left = *l, right = *r;
          DIMQR_RETURN_NOT_OK(
              AddBinaryUnit(left, right, rule, extra_keywords));
        }
      }
    }
    return Status::OK();
  }

  Status AddPowerUnit(const UnitDraft& base, const CompoundRule& rule,
                      const std::vector<std::string>& extra_keywords) {
    if (rule.power != 2 && rule.power != 3) {
      return Status::Internal("power rules support exponents 2 and 3 only");
    }
    UnitDraft rec;
    rec.id = base.id + std::to_string(rule.power);
    if (index_.contains(rec.id)) return Status::OK();  // seeded override
    const char* en_prefix = rule.power == 2 ? "square " : "cubic ";
    const char* zh_prefix = rule.power == 2 ? "平方" : "立方";
    rec.label_en = en_prefix + base.label_en;
    if (!base.label_zh.empty()) rec.label_zh = zh_prefix + base.label_zh;
    for (const std::string& sym : base.symbols) {
      rec.symbols.push_back(sym + "^" + std::to_string(rule.power));
      rec.symbols.push_back(sym + (rule.power == 2 ? "²" : "³"));
    }
    rec.aliases.push_back(base.label_en +
                          (rule.power == 2 ? " squared" : " cubed"));
    rec.quantity_kind = rule.kind;
    DIMQR_ASSIGN_OR_RETURN(dimqr::Dimension dim,
                           base.dimension.Power(rule.power));
    rec.dimension = dim;
    DIMQR_ASSIGN_OR_RETURN(const QuantityKindDraft* kind,
                           KindOf(rec.quantity_kind, rec.dimension));
    rec.conversion_value = std::pow(base.conversion_value, rule.power);
    if (base.exact_conversion) {
      Result<Rational> exact = base.exact_conversion->Pow(rule.power);
      if (exact.ok()) rec.exact_conversion = *exact;
      else rec.exact_conversion.reset();
    } else {
      rec.exact_conversion.reset();
    }
    rec.keywords = base.keywords;
    MergeKeywords(rec.keywords, kind->keywords);
    MergeKeywords(rec.keywords, extra_keywords);
    rec.popularity =
        ScaleSignals(base.popularity, 0.6 * rule.popularity_scale);
    rec.origin = UnitOrigin::kCompound;
    rec.description = "The " + std::to_string(rule.power) +
                      (rule.power == 2 ? "nd" : "rd") + " power of " +
                      base.label_en + "; a unit of " + rec.quantity_kind + ".";
    return AddUnit(std::move(rec));
  }

  Status AddBinaryUnit(const UnitDraft& left, const UnitDraft& right,
                       const CompoundRule& rule,
                       const std::vector<std::string>& extra_keywords) {
    UnitDraft rec;
    bool divide = rule.op == '/';
    rec.id = left.id + (divide ? "-PER-" : "-") + right.id;
    if (index_.contains(rec.id)) return Status::OK();
    rec.label_en =
        left.label_en + (divide ? " per " : " ") + right.label_en;
    if (!left.label_zh.empty() && !right.label_zh.empty()) {
      rec.label_zh = divide ? left.label_zh + "每" + right.label_zh
                            : left.label_zh + right.label_zh;
    }
    std::string lsym = left.symbols.empty() ? left.label_en : left.symbols[0];
    std::string rsym =
        right.symbols.empty() ? right.label_en : right.symbols[0];
    rec.symbols.push_back(lsym + (divide ? "/" : "*") + rsym);
    if (divide) {
      rec.aliases.push_back(lsym + " per " + rsym);
    } else {
      rec.aliases.push_back(lsym + "·" + rsym);
    }
    rec.quantity_kind = rule.kind;
    dimqr::UnitSemantics lsem = left.Semantics();
    dimqr::UnitSemantics rsem = right.Semantics();
    DIMQR_ASSIGN_OR_RETURN(
        dimqr::UnitSemantics sem,
        divide ? lsem.Over(rsem) : lsem.Times(rsem));
    rec.dimension = sem.dimension;
    DIMQR_ASSIGN_OR_RETURN(const QuantityKindDraft* kind,
                           KindOf(rec.quantity_kind, rec.dimension));
    rec.conversion_value = sem.scale;
    rec.exact_conversion = sem.exact_scale;
    rec.keywords = left.keywords;
    MergeKeywords(rec.keywords, right.keywords);
    MergeKeywords(rec.keywords, kind->keywords);
    MergeKeywords(rec.keywords, extra_keywords);
    rec.popularity =
        CombineSignals(left.popularity, right.popularity,
                       rule.popularity_scale);
    rec.origin = UnitOrigin::kCompound;
    rec.description = "A unit of " + rec.quantity_kind + " (" +
                      left.label_en + (divide ? " per " : " times ") +
                      right.label_en + ").";
    return AddUnit(std::move(rec));
  }

  Status ApplyExtraAliases() {
    for (const auto& [id, aliases] : ExtraCompoundAliases()) {
      auto it = index_.find(id);
      if (it == index_.end()) {
        return Status::Internal(std::string("extra alias for missing unit: ") +
                                id);
      }
      for (const std::string& alias : SplitList(aliases)) {
        units_[it->second].aliases.push_back(alias);
      }
    }
    return Status::OK();
  }

  std::unordered_map<std::string, QuantityKindDraft> kinds_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<UnitDraft> units_;
};

}  // namespace

Result<std::vector<UnitDraft>> BuildUnitCatalog() {
  CatalogBuilder builder;
  DIMQR_RETURN_NOT_OK(builder.Build());
  return builder.TakeUnits();
}

Result<std::vector<QuantityKindDraft>> BuildKindCatalog() {
  std::vector<QuantityKindDraft> out;
  std::unordered_set<std::string> seen;
  for (const KindSeed& seed : KindSeeds()) {
    QuantityKindDraft rec;
    rec.name = seed.name;
    rec.label_zh = seed.label_zh;
    DIMQR_ASSIGN_OR_RETURN(rec.dimension, Dimension::ParseFormula(seed.dim));
    rec.keywords = SplitList(seed.keywords);
    if (!seen.insert(rec.name).second) {
      return Status::Internal("duplicate quantity kind: " + rec.name);
    }
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace dimqr::kb
