#ifndef DIMQR_KB_CATALOG_H_
#define DIMQR_KB_CATALOG_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "kb/prefix.h"
#include "kb/unit_record.h"

/// \file catalog.h
/// The DimUnitKB seed catalog and its two expansion generators.
///
/// Substitution (DESIGN.md): the paper ingests the QUDT ontology (1778
/// units, 327 quantity kinds, 175 dimension vectors) plus Chinese
/// extensions. Offline, the same scale is reached from
///   (a) a hand-curated seed catalog of named units (QUDT-schema-compatible,
///       bilingual, with keywords and popularity signals),
///   (b) SI-prefix expansion ("kilo" + "metre" -> kilometre, 24 prefixes),
///   (c) compound rules ("Length unit / Time unit" -> velocity units,
///       "Length unit ^ 3" -> volume units, ...).
/// plus a quantity-kind registry covering the standard physics kinds.

namespace dimqr::kb {

/// \brief One hand-curated seed unit. String list fields are ';'-separated.
struct UnitSeed {
  const char* id;        ///< "M", "SEC", "DYN".
  const char* label_en;  ///< "metre".
  const char* label_zh;  ///< UTF-8 Chinese label; may be "".
  const char* symbols;   ///< "m" or "t;mt".
  const char* aliases;   ///< "meter;meters;metres".
  const char* kind;      ///< QuantityKind name, must exist in the registry.
  const char* dim;       ///< Dimension formula, e.g. "LMT-2" or "D".
  /// Conversion to the SI coherent unit: an exact rational string
  /// ("1", "1/1000", "2.54e-2"), or "~<double>" when no exact form exists
  /// (e.g. "~0.01745329251994330" for degree -> radian-equivalent).
  const char* scale;
  double offset;          ///< Affine offset (temperatures), else 0.
  const char* keywords;   ///< "distance;far;tall;length".
  double gt, hs, cf;      ///< Popularity signals on a 0.1..100 scale.
  PrefixPolicy prefix;    ///< Prefix-expansion policy.
  const char* description;
};

/// \brief One quantity-kind registry entry.
struct KindSeed {
  const char* name;      ///< "VolumeFlowRate".
  const char* label_zh;  ///< "体积流量".
  const char* dim;       ///< Dimension formula.
  const char* keywords;  ///< ';'-separated context keywords.
};

/// \brief A compound-unit generation rule.
///
/// op '/' or '*': every (left, right) ID pair produces one compound unit.
/// op 'p': every left ID is raised to `power` (right_ids unused).
struct CompoundRule {
  const char* kind;       ///< Resulting QuantityKind name.
  char op;                ///< '/', '*', or 'p'.
  const char* left_ids;   ///< ';'-separated unit IDs (must exist by then).
  const char* right_ids;  ///< ';'-separated unit IDs, or "" for 'p'.
  int power;              ///< Exponent for op 'p'.
  double popularity_scale;///< Multiplies the combined parent popularity.
  const char* keywords;   ///< Extra keywords for the generated units.
};

/// The hand-curated seed units.
const std::vector<UnitSeed>& UnitSeeds();

/// The quantity-kind registry (superset of the kinds used by units, like
/// QUDT's kind ontology).
const std::vector<KindSeed>& KindSeeds();

/// The compound-unit generation rules, in application order.
const std::vector<CompoundRule>& CompoundRules();

/// \brief Extra aliases for famous compound units ("mph", "kph", "mpg",
/// "bps"), applied after compound generation. Pairs of (unit ID,
/// ';'-separated aliases).
const std::vector<std::pair<const char*, const char*>>& ExtraCompoundAliases();

/// \brief Builds the full unit collection: seeds, then prefix expansion,
/// then compound rules, then frequency assignment (Eq. 1-2). Fails with
/// Internal if seed data is inconsistent (bad dimension formula, unknown
/// kind, duplicate ID, rule referencing a missing unit).
dimqr::Result<std::vector<UnitDraft>> BuildUnitCatalog();

/// \brief Builds the quantity-kind records from the registry.
dimqr::Result<std::vector<QuantityKindDraft>> BuildKindCatalog();

}  // namespace dimqr::kb

#endif  // DIMQR_KB_CATALOG_H_
