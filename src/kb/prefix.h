#ifndef DIMQR_KB_PREFIX_H_
#define DIMQR_KB_PREFIX_H_

#include <optional>
#include <string>
#include <vector>

#include "core/rational.h"

/// \file prefix.h
/// SI metric prefixes and the prefix-expansion policy used when building
/// DimUnitKB. Prefix expansion is one of the two generators (with compound
/// rules) that take the hand-curated seed catalog to Table IV scale.

namespace dimqr::kb {

/// \brief One SI prefix ("kilo", "k", 10^3).
struct PrefixSpec {
  std::string name;      ///< "kilo".
  std::string symbol;    ///< "k".
  std::string label_zh;  ///< "千".
  int pow10;             ///< 3 for kilo.
  /// Relative commonness of this prefix in text, in (0, 1]; multiplies the
  /// base unit's popularity when deriving the expanded unit's signals
  /// ("kilometre" is common, "yoctometre" is not).
  double commonness;
};

/// All 24 SI prefixes (quetta..quecto), largest first.
const std::vector<PrefixSpec>& AllPrefixes();

/// The everyday subset {kilo, hecto, deca, deci, centi, milli, micro},
/// used for units that take prefixes only occasionally.
const std::vector<PrefixSpec>& CommonPrefixes();

/// \brief How aggressively a seed unit is prefix-expanded.
enum class PrefixPolicy {
  kNone,    ///< Never prefixed (hour, inch, degree Celsius, ...).
  kCommon,  ///< CommonPrefixes() only (litre, bar, ...).
  kAll,     ///< Full SI set (metre, gram, second, watt, ...).
};

/// \brief 10^pow10 as an exact rational when |pow10| <= 18, otherwise empty
/// (the double value is always available via std::pow).
std::optional<dimqr::Rational> ExactPow10(int pow10);

}  // namespace dimqr::kb

#endif  // DIMQR_KB_PREFIX_H_
