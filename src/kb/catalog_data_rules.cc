#include "kb/catalog.h"

/// \file catalog_data_rules.cc
/// Compound-unit generation rules. Rules run in order; later rules may
/// reference units produced by earlier ones (e.g. acceleration divides the
/// velocity units, thermal conductivity divides by the metre-kelvin
/// product). A pair whose ID already exists is skipped, so overlapping
/// rules keep the first kind assignment.

namespace dimqr::kb {

const std::vector<CompoundRule>& CompoundRules() {
  static const std::vector<CompoundRule>* const kRules =
      new std::vector<CompoundRule>{
          // --- powers first: areas and volumes feed later rules ---
          {"Area", 'p', "M;KiloM;CentiM;MilliM;MicroM;NanoM;DeciM;FT;IN;MI;YD;NMI",
           "", 2, 1.0, "area;surface"},
          {"Volume", 'p', "M;CentiM;MilliM;DeciM;KiloM;MicroM;FT;IN;YD", "", 3,
           1.0, "volume;capacity"},

          // --- velocity & kinematics ---
          {"Velocity", '/',
           "M;KiloM;CentiM;MilliM;DeciM;MicroM;FT;IN;YD;MI;NMI;LI_CN;CHI_CN",
           "SEC;MilliSEC;MIN;HR;DAY", 0, 1.0, "speed;travel"},
          {"Acceleration", '/',
           "M-PER-SEC;CentiM-PER-SEC;MilliM-PER-SEC;FT-PER-SEC;IN-PER-SEC;"
           "KiloM-PER-HR;MI-PER-HR",
           "SEC;MIN", 0, 0.6, "acceleration"},
          {"AngularVelocity", '/', "RAD_ANGLE;DEG_ANGLE;REV;GRADIAN",
           "SEC;MIN;HR", 0, 0.5, "rotation;angular"},
          {"TimePerLength", '/', "SEC;MIN;HR", "KiloM;MI;M", 0, 0.5,
           "pace;running"},

          // --- flow ---
          {"VolumeFlowRate", '/',
           "LITRE;MilliLITRE;CentiLITRE;DeciLITRE;M3;CentiM3;GAL_US;GAL_UK;"
           "GILL_US;BBL;FT3;IN3",
           "SEC;MIN;HR;DAY", 0, 0.7, "flow;discharge"},
          {"MassFlowRate", '/', "GM;KiloGM;MilliGM;TONNE;LB;OZ",
           "SEC;MIN;HR;DAY", 0, 0.6, "flow;throughput"},
          {"MolarFlowRate", '/', "MOL;MilliMOL;KiloMOL", "SEC;MIN;HR", 0, 0.3,
           "molar;flow"},

          // --- density & concentration ---
          {"Density", '/', "GM;KiloGM;LB;OZ;TONNE;JIN_CN",
           "LITRE;MilliLITRE;M3;CentiM3;DeciM3;FT3;IN3;GAL_US", 0, 0.8,
           "density;material"},
          {"MassConcentration", '/', "MilliGM;MicroGM;NanoGM;GM",
           "LITRE;DeciLITRE;MilliLITRE;M3", 0, 0.6,
           "concentration;medical;lab"},
          {"AmountConcentration", '/', "MOL;MilliMOL;MicroMOL;NanoMOL",
           "LITRE;MilliLITRE;M3", 0, 0.5, "concentration;solution"},
          {"MolarMass", '/', "GM;KiloGM;MilliGM", "MOL;MilliMOL", 0, 0.4,
           "molar;molecular"},
          {"SpecificVolume", '/', "LITRE;MilliLITRE;M3;CentiM3", "KiloGM;GM",
           0, 0.3, "specific;volume"},

          // --- force, pressure, energy ---
          {"ForcePerLength", '/', "N;MilliN;KiloN;DYN;LBF;KGF;POUNDAL",
           "M;CentiM;MilliM;FT;IN", 0, 0.4, "tension;spring"},
          {"Pressure", '/', "N;KiloN;MegaN;LBF;KGF;DYN",
           "M2;CentiM2;MilliM2;IN2;FT2", 0, 0.6, "pressure"},
          {"EnergyPerArea", '/', "J;KiloJ;MegaJ;MilliJ", "M2;CentiM2", 0, 0.4,
           "fluence;energy"},
          {"PowerPerArea", '/', "W;KiloW;MilliW;MegaW;MicroW", "M2;CentiM2",
           0, 0.5, "intensity;flux;solar"},
          {"SpecificEnergy", '/',
           "J;KiloJ;MegaJ;CAL;KiloCAL;WH;KiloWH;BTU;EV", "GM;KiloGM;LB;OZ", 0,
           0.6, "energy;food;diet"},
          {"EnergyDensity", '/', "J;KiloJ;MegaJ;WH;KiloWH",
           "LITRE;M3;MilliLITRE", 0, 0.4, "battery;fuel"},
          {"Torque", '*', "N;KiloN;MilliN", "M;CentiM;MilliM", 0, 0.6,
           "torque;wrench"},
          {"Torque", '*', "LBF", "FT;IN", 0, 0.5, "torque;imperial"},
          {"Momentum", '*', "KiloGM", "M-PER-SEC", 0, 0.3, "momentum"},
          {"Impulse", '*', "N", "SEC;MilliSEC", 0, 0.3, "impulse"},
          {"MomentOfInertia", '*', "KiloGM", "M2", 0, 0.3, "inertia"},
          {"Action", '*', "J", "SEC", 0, 0.3, "action;planck"},
          {"AbsementKind", '*', "M", "SEC", 0, 0.2, "absement"},
          {"DynamicViscosity", '*', "PA;MilliPA", "SEC", 0, 0.4,
           "viscosity;fluid"},
          {"KinematicViscosity", '/', "M2;CentiM2;MilliM2", "SEC;HR", 0, 0.3,
           "viscosity;kinematic"},

          // --- thermal ---
          {"HeatCapacity", '/', "J;KiloJ;MilliJ", "K", 0, 0.4,
           "heat;capacity"},
          {"LengthTemperature", '*', "M", "K", 0, 0.2, "metre;kelvin"},
          {"ThermalConductivity", '/', "W;KiloW", "M-K", 0, 0.4,
           "conductivity;insulation"},
          {"CoefficientOfHeatTransfer", '/', "W-PER-M2", "K", 0, 0.3,
           "transfer;coefficient"},
          {"SpecificHeatCapacity", '/', "J-PER-KiloGM;KiloJ-PER-KiloGM", "K",
           0, 0.4, "specific;heat"},
          {"TemperatureRate", '/', "K", "SEC;MIN;HR", 0, 0.3,
           "heating;cooling;rate"},
          {"MolarEnergy", '/', "J;KiloJ;KiloCAL;CAL", "MOL", 0, 0.4,
           "bond;reaction"},

          // --- electromagnetic ---
          {"ElectricFieldStrength", '/', "V;KiloV;MilliV;MegaV",
           "M;CentiM;MilliM", 0, 0.4, "field;electric"},
          {"CurrentDensity", '/', "AMP;MilliAMP;MicroAMP;KiloAMP",
           "M2;CentiM2;MilliM2", 0, 0.3, "current;density"},

          // --- photometry ---
          {"Luminance", '/', "CD", "M2", 0, 0.5, "luminance;display"},
          {"LuminousEnergy", '*', "LUMEN", "SEC", 0, 0.2, "luminous;energy"},
          {"LuminousExposure", '*', "LUX", "SEC", 0, 0.2, "exposure"},

          // --- dosimetry ---
          {"AbsorbedDoseRate", '/',
           "SV;MilliSV;MicroSV;NanoSV;GY;MilliGY;MicroGY", "SEC;HR;YR", 0,
           0.4, "dose;rate;radiation"},
          {"CatalyticConcentration", '/', "KATAL;MilliKATAL;MicroKATAL",
           "LITRE;M3", 0, 0.2, "catalytic"},

          // --- everyday composites ---
          {"DataRate", '/',
           "BIT;KiloBIT;MegaBIT;GigaBIT;TeraBIT;BYTE;KiloBYTE;MegaBYTE;"
           "GigaBYTE;TeraBYTE",
           "SEC", 0, 0.9, "bandwidth;network;download"},
          {"FuelEfficiency", '/', "KiloM;MI", "LITRE;GAL_US;GAL_UK", 0, 0.6,
           "fuel;economy;mileage"},
          {"MassPerArea", '/', "GM;KiloGM;MilliGM;TONNE",
           "M2;CentiM2;HECTARE", 0, 0.4, "areal;coating;yield"},
          {"MassPerLength", '/', "KiloGM;GM;MilliGM", "M;CentiM;KiloM", 0,
           0.3, "linear;density"},
          {"VolumePerArea", '/', "LITRE;MilliLITRE", "M2", 0, 0.3,
           "irrigation;rainfall"},
          {"PowerPerVolume", '/', "W;KiloW;MegaW", "M3;LITRE", 0, 0.3,
           "power;density"},
          {"SpecificPower", '/', "W;KiloW;MilliW", "KiloGM;GM", 0, 0.4,
           "power;weight;ratio"},
          {"PressureRate", '/', "PA;KiloPA;BAR", "SEC;MIN", 0, 0.2,
           "pressure;rate"},
      };
  return *kRules;
}

const std::vector<std::pair<const char*, const char*>>&
ExtraCompoundAliases() {
  static const std::vector<std::pair<const char*, const char*>>* const
      kAliases = new std::vector<std::pair<const char*, const char*>>{
          {"MI-PER-HR", "mph;miles per hour"},
          {"KiloM-PER-HR", "kph;kmh;kilometers per hour;公里每小时"},
          {"M-PER-SEC", "mps;meters per second"},
          {"FT-PER-SEC", "fps;feet per second"},
          {"GM-PER-CentiM3", "g/cc;grams per cc"},
          {"KiloM-PER-LITRE", "km/L"},
          {"MI-PER-GAL_US", "mpg;miles per gallon"},
          {"BIT-PER-SEC", "bps"},
          {"KiloBIT-PER-SEC", "kbps"},
          {"MegaBIT-PER-SEC", "mbps"},
          {"GigaBIT-PER-SEC", "gbps"},
          {"MegaBYTE-PER-SEC", "MBps"},
          {"N-M", "newton metre;newton meter"},
          {"KiloGM-PER-M3", "kilograms per cubic metre"},
          {"MilliGM-PER-DeciLITRE", "mg/dL"},
          {"MilliMOL-PER-LITRE", "mmol/L"},
          {"MicroSV-PER-HR", "uSv/h"},
          {"REV-PER-MIN", "revs per minute"},
          {"CD-PER-M2", "nits"},
      };
  return *kAliases;
}

}  // namespace dimqr::kb
