#ifndef DIMQR_KB_KB_H_
#define DIMQR_KB_KB_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/dimension.h"
#include "core/interner.h"
#include "core/quantity.h"
#include "core/snapshot.h"
#include "core/status.h"
#include "core/unit_expr.h"
#include "kb/unit_record.h"

/// \file kb.h
/// DimUnitKB — the dimensional unit knowledge base (Section III-A).
///
/// Stores the full unit collection with Table II schema, the quantity-kind
/// registry, and the lookup indexes the rest of the system needs: by ID, by
/// surface form, by dimension, by quantity kind. Construction runs the
/// catalog builder (seeds + prefix expansion + compound rules + Eq. 1-2
/// frequencies); the result is immutable afterwards.
///
/// Identity model: every record is addressed by a dense `UnitId` handle
/// (catalog position + 1; 0 is invalid) and every index is a flat
/// interned-key structure — a SymbolTable mapping key strings to dense ids
/// plus CSR offset+postings arrays (see core/interner.h). Lookups return
/// `std::span<const UnitId>` views into the postings and never allocate.
/// String unit IDs exist only at serialization boundaries (TSV, table
/// output); in between, the system moves handles.
///
/// Storage model: regardless of how a KB is created (Build(), LoadTsv(),
/// FromSnapshot()), all records and indexes live in ONE packed arena blob
/// — the exact bytes of the snapshot "kb" section. Build paths produce the
/// blob in memory; FromSnapshot aliases a read-only mapping. Every index
/// and record string is a view into that arena, so a built KB and a
/// snapshot-loaded KB are bit-identical in behavior by construction, and
/// WriteSnapshot is a plain byte copy.

namespace dimqr::kb {

/// Handle of a dimension equivalence class (distinct dimension vector
/// across the unit catalog), local to one DimUnitKB.
using DimClassId = Id32<struct DimClassTag>;

/// \brief One sorted (Dimension::PackedKey, dimension-class index) row of
/// the dimension lookup table. Fixed-width POD — part of the snapshot
/// layout.
struct DimClassKey {
  std::uint64_t packed_key = 0;
  std::uint32_t dim_class = 0;
  std::uint32_t pad = 0;  ///< Zero (keeps the serialized bytes deterministic).
};
static_assert(sizeof(DimClassKey) == 16);

/// \brief Aggregate statistics in the shape of Table IV.
struct KbStats {
  std::size_t num_units = 0;
  std::size_t num_quantity_kinds = 0;   ///< Registry kinds.
  std::size_t num_dimension_vectors = 0;///< Distinct dims across units+kinds.
  std::size_t num_units_with_zh = 0;    ///< Bilingual coverage.
  std::size_t num_seed_units = 0;
  std::size_t num_prefix_units = 0;
  std::size_t num_compound_units = 0;
};

/// \brief The dimensional unit knowledge base.
///
/// Immutable after construction; all lookups are const and thread-safe.
/// Spans returned by the lookup methods stay valid for the KB's lifetime.
class DimUnitKB {
 public:
  /// \brief Builds the KB from the built-in catalog. Expensive (~all units
  /// are generated and indexed); call once and share — or pack once with
  /// `dimqr_snapshot` and FromSnapshot() at startup instead.
  static dimqr::Result<std::shared_ptr<const DimUnitKB>> Build();

  /// \brief Loads a KB previously saved with SaveTsv (slow interchange
  /// path; the fast path is FromSnapshot).
  static dimqr::Result<std::shared_ptr<const DimUnitKB>> LoadTsv(
      const std::string& path);

  /// \brief Loads a KB from a snapshot's "kb" section, zero-copy: records
  /// and indexes alias the mapping; the snapshot is kept alive by the KB.
  static dimqr::Result<std::shared_ptr<const DimUnitKB>> FromSnapshot(
      std::shared_ptr<const snapshot::Snapshot> snap);

  /// \brief Adds this KB's packed arena to a snapshot under section "kb"
  /// (the exact bytes FromSnapshot will alias).
  dimqr::Status WriteSnapshot(snapshot::SnapshotWriter& writer) const;

  /// \brief Serializes all unit records to a TSV file (one row per unit,
  /// lists '|'-joined). Kind records are appended after a `#KINDS` marker.
  dimqr::Status SaveTsv(const std::string& path) const;

  /// All unit records, in catalog order (`UnitId` i+1 names `units()[i]`).
  const std::vector<UnitRecord>& units() const { return units_; }

  /// All quantity-kind records (`KindId` k+1 names `kinds()[k]`).
  const std::vector<QuantityKindRecord>& kinds() const { return kinds_; }

  // ----- Handle-based identity API -----

  std::size_t num_units() const { return units_.size(); }

  /// The record of a valid handle. Undefined for invalid/foreign handles.
  const UnitRecord& Get(UnitId id) const { return units_[id.index()]; }

  /// The handle of a UnitID string, or the invalid handle when absent.
  UnitId IdOf(std::string_view id_string) const;

  /// The handle of a UnitID string, or NotFound.
  dimqr::Result<UnitId> ResolveId(std::string_view id_string) const;

  /// \brief All units whose label/symbol/alias equals `surface` exactly
  /// (case-sensitive first; falls back to ASCII-case-insensitive matches).
  /// Multiple units may share a surface form ("M" is both metre-symbol-ish
  /// and molar) — disambiguation is the linker's job. Zero-allocation when
  /// the exact index hits.
  std::span<const UnitId> FindBySurface(std::string_view surface) const;

  /// All units with exactly this dimension.
  std::span<const UnitId> UnitsOfDimension(const dimqr::Dimension& dim) const;

  /// All units of a quantity kind handle.
  std::span<const UnitId> UnitsOfKind(KindId kind) const;

  /// \brief The kind handle of a kind-name string (invalid when absent).
  /// Registry kinds occupy handles 1..kinds().size(); kind strings that
  /// appear only on unit records (including the empty string) get handles
  /// above that range and have no registry record.
  KindId KindIdOf(std::string_view name) const;

  /// The registry record of a kind handle; requires
  /// `kind.index() < kinds().size()`.
  const QuantityKindRecord& GetKind(KindId kind) const {
    return kinds_[kind.index()];
  }

  /// The kind record by name, or NotFound.
  dimqr::Result<const QuantityKindRecord*> FindKind(
      std::string_view name) const;

  /// \brief The conversion factor beta with u_from * beta = u_to
  /// (Definition 8). DimensionMismatch when not comparable, InvalidArgument
  /// for affine units. Served from a per-dimension-class memo table
  /// precomputed at pack time through the exact Rational path.
  dimqr::Result<double> ConversionFactor(UnitId from, UnitId to) const;

  // ----- Surface-table access (linker hot path) -----

  /// The interned ASCII-lowercased surface table; SurfaceId 1..size() are
  /// valid keys for UnitsOfLowerSurface.
  const SymbolTable& lower_surfaces() const { return lower_syms_; }

  /// Units carrying the given lowercased surface (deduplicated, first
  /// catalog occurrence first).
  std::span<const UnitId> UnitsOfLowerSurface(SurfaceId surface) const {
    return by_surface_lower_[surface];
  }

  // ----- Derived views -----

  /// \brief A UnitResolver over this KB for core::UnitExpr evaluation:
  /// resolves names through FindBySurface (then ID lookup), picking the
  /// highest-frequency match.
  dimqr::UnitResolver Resolver() const;

  /// Units sorted by descending frequency (Fig. 3).
  std::vector<UnitId> UnitsByFrequency() const;

  /// \brief Quantity kinds ranked by the mean frequency of their top-`k`
  /// units (Fig. 4). Kinds with no units are skipped.
  std::vector<std::pair<KindId, double>> KindsByFrequency(
      std::size_t top_k = 5) const;

  /// Table IV statistics.
  KbStats Stats() const;

  /// True when this KB aliases a memory-mapped snapshot (vs an in-memory
  /// blob it packed itself).
  bool from_snapshot() const { return snapshot_ != nullptr; }

  DimUnitKB(const DimUnitKB&) = delete;
  DimUnitKB& operator=(const DimUnitKB&) = delete;

 private:
  DimUnitKB() = default;

  /// Packs drafts into an arena blob and initializes views over it.
  static dimqr::Result<std::shared_ptr<const DimUnitKB>> FromDrafts(
      const std::vector<UnitDraft>& units,
      const std::vector<QuantityKindDraft>& kinds);

  /// Seats every record, table, and index as a view over `arena` (which
  /// must outlive this object: owned_blob_ or the kept-alive snapshot).
  dimqr::Status InitFromArena(std::span<const std::byte> arena);

  // ----- Arena backing (exactly one is active) -----
  std::vector<std::byte> owned_blob_;  ///< Build()/LoadTsv() paths.
  std::shared_ptr<const snapshot::Snapshot> snapshot_;  ///< Mapped path.
  std::span<const std::byte> arena_;   ///< The active backing's bytes.

  // ----- Views over the arena (materialized flat, no per-record heap) ----
  std::vector<UnitRecord> units_;
  std::vector<QuantityKindRecord> kinds_;
  /// Flat pool backing every record's symbols/aliases/keywords span.
  std::vector<std::string_view> list_pool_;

  /// UnitID strings -> handles. Symbol order matches catalog order, but
  /// duplicates (last wins, matching the old map behavior) make the
  /// indirection necessary.
  SymbolTable id_syms_;
  std::span<const UnitId> id_sym_to_unit_;

  /// Exact surface forms -> postings (un-deduplicated, catalog order).
  SymbolTable surface_syms_;
  PostingsIndex<SurfaceId, UnitId> by_surface_;

  /// ASCII-lowercased surfaces -> postings (deduplicated, first catalog
  /// occurrence kept).
  SymbolTable lower_syms_;
  PostingsIndex<SurfaceId, UnitId> by_surface_lower_;

  /// Kind names (registry kinds first) -> member postings.
  SymbolTable kind_syms_;
  PostingsIndex<KindId, UnitId> by_kind_;

  /// Sorted (Dimension::PackedKey, dimension-class index) for binary
  /// search; postings per class in catalog order.
  std::span<const DimClassKey> dim_class_keys_;
  PostingsIndex<DimClassId, UnitId> by_dimension_;

  /// Conversion memo: per unit its dimension class and rank within the
  /// class; per class a k×k row-major factor table stored CSR-flat
  /// (factor_offsets_[c] .. factor_offsets_[c+1]). NaN = no single linear
  /// factor (an affine endpoint) — resolved through the slow path.
  std::span<const std::uint32_t> unit_class_;
  std::span<const std::uint32_t> unit_rank_;
  std::span<const std::uint64_t> factor_offsets_;
  std::span<const double> factor_data_;
};

}  // namespace dimqr::kb

#endif  // DIMQR_KB_KB_H_
