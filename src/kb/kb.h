#ifndef DIMQR_KB_KB_H_
#define DIMQR_KB_KB_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/dimension.h"
#include "core/quantity.h"
#include "core/status.h"
#include "core/unit_expr.h"
#include "kb/unit_record.h"

/// \file kb.h
/// DimUnitKB — the dimensional unit knowledge base (Section III-A).
///
/// Stores the full unit collection with Table II schema, the quantity-kind
/// registry, and the lookup indexes the rest of the system needs: by ID, by
/// surface form, by dimension, by quantity kind. Construction runs the
/// catalog builder (seeds + prefix expansion + compound rules + Eq. 1-2
/// frequencies); the result is immutable afterwards.

namespace dimqr::kb {

/// \brief Aggregate statistics in the shape of Table IV.
struct KbStats {
  std::size_t num_units = 0;
  std::size_t num_quantity_kinds = 0;   ///< Registry kinds.
  std::size_t num_dimension_vectors = 0;///< Distinct dims across units+kinds.
  std::size_t num_units_with_zh = 0;    ///< Bilingual coverage.
  std::size_t num_seed_units = 0;
  std::size_t num_prefix_units = 0;
  std::size_t num_compound_units = 0;
};

/// \brief The dimensional unit knowledge base.
///
/// Immutable after construction; all lookups are const and thread-safe.
class DimUnitKB {
 public:
  /// \brief Builds the KB from the built-in catalog. Expensive (~all units
  /// are generated and indexed); call once and share.
  static dimqr::Result<std::shared_ptr<const DimUnitKB>> Build();

  /// \brief Loads a KB previously saved with SaveTsv.
  static dimqr::Result<std::shared_ptr<const DimUnitKB>> LoadTsv(
      const std::string& path);

  /// \brief Serializes all unit records to a TSV file (one row per unit,
  /// lists '|'-joined). Kind records are appended after a `#KINDS` marker.
  dimqr::Status SaveTsv(const std::string& path) const;

  /// All unit records, in catalog order.
  const std::vector<UnitRecord>& units() const { return units_; }

  /// All quantity-kind records.
  const std::vector<QuantityKindRecord>& kinds() const { return kinds_; }

  /// The record with the given UnitID, or NotFound.
  dimqr::Result<const UnitRecord*> FindById(std::string_view id) const;

  /// \brief All units whose label/symbol/alias equals `surface` exactly
  /// (case-sensitive first; falls back to ASCII-case-insensitive matches).
  /// Multiple units may share a surface form ("M" is both metre-symbol-ish
  /// and molar) — disambiguation is the linker's job.
  std::vector<const UnitRecord*> FindBySurface(std::string_view surface) const;

  /// All units with exactly this dimension.
  std::vector<const UnitRecord*> UnitsOfDimension(
      const dimqr::Dimension& dim) const;

  /// All units of a quantity kind.
  std::vector<const UnitRecord*> UnitsOfKind(std::string_view kind) const;

  /// The kind record by name, or NotFound.
  dimqr::Result<const QuantityKindRecord*> FindKind(
      std::string_view name) const;

  /// \brief The conversion factor beta with u_from * beta = u_to
  /// (Definition 8), by unit ID. DimensionMismatch when not comparable.
  dimqr::Result<double> ConversionFactor(std::string_view from_id,
                                         std::string_view to_id) const;

  /// \brief A UnitResolver over this KB for core::UnitExpr evaluation:
  /// resolves names through FindBySurface (then ID lookup), picking the
  /// highest-frequency match.
  dimqr::UnitResolver Resolver() const;

  /// Units sorted by descending frequency (Fig. 3).
  std::vector<const UnitRecord*> UnitsByFrequency() const;

  /// \brief Quantity kinds ranked by the mean frequency of their top-`k`
  /// units (Fig. 4). Kinds with no units are skipped.
  std::vector<std::pair<const QuantityKindRecord*, double>>
  KindsByFrequency(std::size_t top_k = 5) const;

  /// Table IV statistics.
  KbStats Stats() const;

 private:
  DimUnitKB() = default;

  void BuildIndexes();

  std::vector<UnitRecord> units_;
  std::vector<QuantityKindRecord> kinds_;
  std::unordered_map<std::string, std::size_t> by_id_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_surface_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_surface_lower_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_dimension_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_kind_;
  std::unordered_map<std::string, std::size_t> kind_by_name_;
};

}  // namespace dimqr::kb

#endif  // DIMQR_KB_KB_H_
