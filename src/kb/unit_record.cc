#include "kb/unit_record.h"

namespace dimqr::kb {

dimqr::UnitSemantics UnitRecord::Semantics() const {
  dimqr::UnitSemantics sem;
  sem.dimension = dimension;
  sem.scale = conversion_value;
  sem.exact_scale = exact_conversion;
  sem.offset = conversion_offset;
  sem.label = symbols.empty() ? label_en : symbols.front();
  return sem;
}

std::vector<std::string> UnitRecord::SurfaceForms() const {
  std::vector<std::string> out;
  out.push_back(label_en);
  if (!label_zh.empty()) out.push_back(label_zh);
  for (const std::string& s : symbols) out.push_back(s);
  for (const std::string& a : aliases) out.push_back(a);
  return out;
}

}  // namespace dimqr::kb
