#include "kb/unit_record.h"

namespace dimqr::kb {
namespace {

template <typename Record>
dimqr::UnitSemantics SemanticsOf(const Record& u) {
  dimqr::UnitSemantics sem;
  sem.dimension = u.dimension;
  sem.scale = u.conversion_value;
  sem.exact_scale = u.exact_conversion;
  sem.offset = u.conversion_offset;
  sem.label = u.symbols.empty() ? u.label_en : u.symbols.front();
  return sem;
}

}  // namespace

dimqr::UnitSemantics UnitDraft::Semantics() const { return SemanticsOf(*this); }

dimqr::UnitSemantics UnitRecord::Semantics() const { return SemanticsOf(*this); }

std::vector<std::string_view> UnitRecord::SurfaceForms() const {
  std::vector<std::string_view> out;
  out.push_back(label_en);
  if (!label_zh.empty()) out.push_back(label_zh);
  for (std::string_view s : symbols) out.push_back(s);
  for (std::string_view a : aliases) out.push_back(a);
  return out;
}

}  // namespace dimqr::kb
