#include "kb/frequency.h"

#include <algorithm>
#include <cmath>

namespace dimqr::kb {
namespace {

constexpr double kSignalFloor = 1e-3;

}  // namespace

double FrequencyScore(const PopularitySignals& signals,
                      const FrequencyWeights& weights) {
  double gt = std::max(signals.google_trends, kSignalFloor);
  double hs = std::max(signals.human_score, kSignalFloor);
  double cf = std::max(signals.corpus_freq, kSignalFloor);
  return weights.alpha_gt * std::log(gt) + weights.alpha_hs * std::log(hs) +
         weights.alpha_cf * std::log(cf);
}

dimqr::Status AssignFrequencies(std::vector<UnitDraft>& units,
                                const FrequencyWeights& weights) {
  if (units.empty()) {
    return dimqr::Status::InvalidArgument(
        "cannot assign frequencies to an empty unit collection");
  }
  std::vector<double> scores(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    scores[i] = FrequencyScore(units[i].popularity, weights);
  }
  auto [min_it, max_it] = std::minmax_element(scores.begin(), scores.end());
  double lo = *min_it, hi = *max_it;
  double range = hi - lo;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (range <= 0.0) {
      units[i].frequency = 1.0;
    } else {
      units[i].frequency =
          (1.0 - weights.delta) * (scores[i] - lo) / range + weights.delta;
    }
  }
  return dimqr::Status::OK();
}

}  // namespace dimqr::kb
