#include "kb/prefix.h"

namespace dimqr::kb {

const std::vector<PrefixSpec>& AllPrefixes() {
  static const std::vector<PrefixSpec>* const kPrefixes =
      new std::vector<PrefixSpec>{
          {"quetta", "Q", "昆", 30, 0.02},
          {"ronna", "R", "容", 27, 0.02},
          {"yotta", "Y", "尧", 24, 0.05},
          {"zetta", "Z", "泽", 21, 0.05},
          {"exa", "E", "艾", 18, 0.08},
          {"peta", "P", "拍", 15, 0.12},
          {"tera", "T", "太", 12, 0.30},
          {"giga", "G", "吉", 9, 0.55},
          {"mega", "M", "兆", 6, 0.70},
          {"kilo", "k", "千", 3, 1.00},
          {"hecto", "h", "百", 2, 0.25},
          {"deca", "da", "十", 1, 0.15},
          {"deci", "d", "分", -1, 0.30},
          {"centi", "c", "厘", -2, 0.90},
          {"milli", "m", "毫", -3, 0.95},
          {"micro", "u", "微", -6, 0.60},
          {"nano", "n", "纳", -9, 0.50},
          {"pico", "p", "皮", -12, 0.25},
          {"femto", "f", "飞", -15, 0.10},
          {"atto", "a", "阿", -18, 0.06},
          {"zepto", "z", "仄", -21, 0.04},
          {"yocto", "y", "幺", -24, 0.03},
          {"ronto", "r", "柔", -27, 0.02},
          {"quecto", "q", "亏", -30, 0.02},
      };
  return *kPrefixes;
}

const std::vector<PrefixSpec>& CommonPrefixes() {
  static const std::vector<PrefixSpec>* const kCommon = [] {
    auto* subset = new std::vector<PrefixSpec>;
    for (const PrefixSpec& p : AllPrefixes()) {
      if (p.name == "kilo" || p.name == "hecto" || p.name == "deca" ||
          p.name == "deci" || p.name == "centi" || p.name == "milli" ||
          p.name == "micro") {
        subset->push_back(p);
      }
    }
    return subset;
  }();
  return *kCommon;
}

std::optional<dimqr::Rational> ExactPow10(int pow10) {
  if (pow10 < -18 || pow10 > 18) return std::nullopt;
  std::int64_t mag = 1;
  for (int i = 0; i < (pow10 < 0 ? -pow10 : pow10); ++i) mag *= 10;
  if (pow10 >= 0) {
    return dimqr::Rational(mag);
  }
  return dimqr::Rational::Of(1, mag).ValueOrDie();
}

}  // namespace dimqr::kb
