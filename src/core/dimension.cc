#include "core/dimension.h"

#include <cctype>

namespace dimqr {
namespace {

// Symbols in exponent-array order (paper vector form A.E.L.I.M.H.T).
constexpr char kSymbols[kNumBaseDims] = {'A', 'E', 'L', 'I', 'M', 'H', 'T'};

constexpr std::string_view kQuantityNames[kNumBaseDims] = {
    "Amount of Substance", "Electric Current",          "Length",
    "Luminous Intensity",  "Mass",                      "Thermodynamic Temperature",
    "Time"};

constexpr std::string_view kUnitNames[kNumBaseDims] = {
    "mole", "ampere", "metre", "candela", "kilogram", "kelvin", "second"};

constexpr std::string_view kUnitSymbols[kNumBaseDims] = {
    "mol", "A", "m", "cd", "kg", "K", "s"};

// Paper formula order L M H E T A I (Section II-A).
constexpr BaseDim kFormulaOrder[kNumBaseDims] = {
    BaseDim::kLength,          BaseDim::kMass,
    BaseDim::kTemperature,     BaseDim::kElectricCurrent,
    BaseDim::kTime,            BaseDim::kAmountOfSubstance,
    BaseDim::kLuminousIntensity};

int SymbolToIndex(char c) {
  for (int i = 0; i < kNumBaseDims; ++i) {
    if (kSymbols[i] == c) return i;
  }
  return -1;
}

bool InInt8Range(int v) { return v >= -128 && v <= 127; }

}  // namespace

char BaseDimSymbol(BaseDim dim) {
  return kSymbols[static_cast<std::size_t>(dim)];
}

std::string_view BaseDimQuantityName(BaseDim dim) {
  return kQuantityNames[static_cast<std::size_t>(dim)];
}

std::string_view BaseDimUnitName(BaseDim dim) {
  return kUnitNames[static_cast<std::size_t>(dim)];
}

std::string_view BaseDimUnitSymbol(BaseDim dim) {
  return kUnitSymbols[static_cast<std::size_t>(dim)];
}

Dimension Dimension::Base(BaseDim dim, int exponent) {
  Dimension d;
  d.exp_[static_cast<std::size_t>(dim)] = static_cast<std::int8_t>(exponent);
  return d;
}

Result<Dimension> Dimension::FromExponents(
    const std::array<int, kNumBaseDims>& e) {
  Dimension d;
  for (int i = 0; i < kNumBaseDims; ++i) {
    if (!InInt8Range(e[i])) {
      return Status::OutOfRange("dimension exponent out of int8 range");
    }
    d.exp_[i] = static_cast<std::int8_t>(e[i]);
  }
  return d;
}

Result<Dimension> Dimension::ParseVectorForm(std::string_view text) {
  Dimension d;
  std::array<bool, kNumBaseDims> seen{};
  int d_flag = -1;  // -1: absent
  std::size_t i = 0;
  while (i < text.size()) {
    char sym = text[i++];
    bool is_d = sym == 'D';
    int idx = is_d ? -1 : SymbolToIndex(sym);
    if (!is_d && idx < 0) {
      return Status::ParseError(std::string("unknown dimension symbol '") +
                                sym + "'");
    }
    bool neg = false;
    if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
      neg = text[i] == '-';
      ++i;
    }
    if (i >= text.size() || !std::isdigit(static_cast<unsigned char>(text[i]))) {
      return Status::ParseError("missing exponent in dimension vector");
    }
    int v = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      v = v * 10 + (text[i] - '0');
      if (v > 128) return Status::OutOfRange("dimension exponent overflows");
      ++i;
    }
    if (neg) v = -v;
    if (!InInt8Range(v)) {
      return Status::OutOfRange("dimension exponent overflows");
    }
    if (is_d) {
      if (d_flag != -1) return Status::ParseError("duplicate D component");
      if (v != 0 && v != 1) {
        return Status::ParseError("D component must be 0 or 1");
      }
      d_flag = v;
    } else {
      if (seen[idx]) {
        return Status::ParseError(std::string("duplicate dimension symbol '") +
                                  sym + "'");
      }
      seen[idx] = true;
      d.exp_[idx] = static_cast<std::int8_t>(v);
    }
  }
  if (d_flag != -1) {
    bool dimensionless = d.IsDimensionless();
    if (d_flag == 1 && !dimensionless) {
      return Status::ParseError("D1 with non-zero physical exponents");
    }
    if (d_flag == 0 && dimensionless) {
      return Status::ParseError("D0 with all-zero physical exponents");
    }
  }
  return d;
}

Result<Dimension> Dimension::ParseFormula(std::string_view text) {
  Dimension d;
  std::size_t i = 0;
  bool any = false;
  while (i < text.size()) {
    char c = text[i];
    if (c == ' ' || c == '\t' || c == '*' || c == '.') {
      ++i;
      continue;
    }
    if (c == 'D') {
      // Dimensionless marker; only valid alone.
      ++i;
      any = true;
      continue;
    }
    int idx = SymbolToIndex(c);
    if (idx < 0) {
      return Status::ParseError(std::string("unknown dimension symbol '") + c +
                                "' in formula");
    }
    ++i;
    any = true;
    int v = 1;
    if (i < text.size() &&
        (text[i] == '^' || text[i] == '-' || text[i] == '+' ||
         std::isdigit(static_cast<unsigned char>(text[i])))) {
      if (text[i] == '^') ++i;
      bool neg = false;
      if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
        neg = text[i] == '-';
        ++i;
      }
      if (i >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[i]))) {
        return Status::ParseError("missing exponent after sign in formula");
      }
      v = 0;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        v = v * 10 + (text[i] - '0');
        if (v > 128) return Status::OutOfRange("formula exponent overflows");
        ++i;
      }
      if (neg) v = -v;
      if (!InInt8Range(v)) {
        return Status::OutOfRange("formula exponent overflows");
      }
    }
    int cur = d.exp_[idx] + v;
    if (!InInt8Range(cur)) {
      return Status::OutOfRange("formula exponent overflows");
    }
    d.exp_[idx] = static_cast<std::int8_t>(cur);
  }
  if (!any) return Status::ParseError("empty dimension formula");
  return d;
}

bool Dimension::IsDimensionless() const {
  for (int i = 0; i < kNumBaseDims; ++i) {
    if (exp_[i] != 0) return false;
  }
  return true;
}

Result<Dimension> Dimension::Times(const Dimension& other) const {
  Dimension out;
  for (int i = 0; i < kNumBaseDims; ++i) {
    int v = exp_[i] + other.exp_[i];
    if (!InInt8Range(v)) {
      return Status::OutOfRange("dimension product exponent overflows");
    }
    out.exp_[i] = static_cast<std::int8_t>(v);
  }
  return out;
}

Result<Dimension> Dimension::Over(const Dimension& other) const {
  return Times(other.Inverse());
}

Result<Dimension> Dimension::Power(int k) const {
  Dimension out;
  for (int i = 0; i < kNumBaseDims; ++i) {
    int v = exp_[i] * k;
    if (!InInt8Range(v)) {
      return Status::OutOfRange("dimension power exponent overflows");
    }
    out.exp_[i] = static_cast<std::int8_t>(v);
  }
  return out;
}

Dimension Dimension::Inverse() const {
  Dimension out;
  for (int i = 0; i < kNumBaseDims; ++i) {
    out.exp_[i] = static_cast<std::int8_t>(-exp_[i]);
  }
  return out;
}

std::string Dimension::ToVectorForm() const {
  std::string out;
  for (int i = 0; i < kNumBaseDims; ++i) {
    out += kSymbols[i];
    out += std::to_string(static_cast<int>(exp_[i]));
  }
  out += 'D';
  out += IsDimensionless() ? '1' : '0';
  return out;
}

std::string Dimension::ToFormula() const {
  if (IsDimensionless()) return "D";
  std::string out;
  for (BaseDim bd : kFormulaOrder) {
    int e = exponent(bd);
    if (e == 0) continue;
    out += BaseDimSymbol(bd);
    if (e != 1) out += std::to_string(e);
  }
  return out;
}

std::uint64_t Dimension::PackedKey() const {
  std::uint64_t key = 0;
  for (int i = 0; i < kNumBaseDims; ++i) {
    key = (key << 8) | static_cast<std::uint8_t>(exp_[i]);
  }
  return key;
}

std::ostream& operator<<(std::ostream& os, const Dimension& d) {
  return os << d.ToFormula();
}

namespace dims {

Dimension Dimensionless() { return Dimension(); }
Dimension Length() { return Dimension::Base(BaseDim::kLength); }
Dimension Mass() { return Dimension::Base(BaseDim::kMass); }
Dimension Time() { return Dimension::Base(BaseDim::kTime); }
Dimension Current() { return Dimension::Base(BaseDim::kElectricCurrent); }
Dimension Temperature() { return Dimension::Base(BaseDim::kTemperature); }
Dimension Amount() { return Dimension::Base(BaseDim::kAmountOfSubstance); }
Dimension LuminousIntensity() {
  return Dimension::Base(BaseDim::kLuminousIntensity);
}
Dimension Area() { return Dimension::Base(BaseDim::kLength, 2); }
Dimension Volume() { return Dimension::Base(BaseDim::kLength, 3); }
Dimension Velocity() {
  return Length().Times(Dimension::Base(BaseDim::kTime, -1)).ValueOrDie();
}
Dimension Acceleration() {
  return Length().Times(Dimension::Base(BaseDim::kTime, -2)).ValueOrDie();
}
Dimension Force() { return Mass().Times(Acceleration()).ValueOrDie(); }
Dimension Pressure() { return Force().Over(Area()).ValueOrDie(); }
Dimension Energy() { return Force().Times(Length()).ValueOrDie(); }
Dimension Power() {
  return Energy().Over(Dimension::Base(BaseDim::kTime)).ValueOrDie();
}
Dimension Frequency() { return Dimension::Base(BaseDim::kTime, -1); }
Dimension Density() { return Mass().Over(Volume()).ValueOrDie(); }
Dimension VolumeFlowRate() {
  return Volume().Over(Dimension::Base(BaseDim::kTime)).ValueOrDie();
}
Dimension ForcePerLength() { return Force().Over(Length()).ValueOrDie(); }

}  // namespace dims
}  // namespace dimqr
