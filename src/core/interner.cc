#include "core/interner.h"

#include <cstring>

namespace dimqr {
namespace {

constexpr std::size_t kInitialBuckets = 64;  // Power of two.

}  // namespace

SymbolTable::SymbolTable() : buckets_(kInitialBuckets, 0) {}

std::uint64_t SymbolTable::Hash(std::string_view s) {
  // FNV-1a: tiny, deterministic across platforms, good enough for short
  // symbol keys behind a power-of-two table.
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void SymbolTable::Rehash(std::size_t min_buckets) {
  std::size_t n = buckets_.size();
  while (n < min_buckets) n *= 2;
  std::vector<std::uint32_t> fresh(n, 0);
  for (std::uint32_t id = 1; id <= spans_.size(); ++id) {
    const Span& span = spans_[id - 1];
    std::string_view s(arena_.data() + span.offset, span.length);
    std::size_t bucket = Hash(s) & (n - 1);
    while (fresh[bucket] != 0) bucket = (bucket + 1) & (n - 1);
    fresh[bucket] = id;
  }
  buckets_ = std::move(fresh);
}

std::uint32_t SymbolTable::Intern(std::string_view s) {
  // Keep load factor under 0.7 so probe chains stay short.
  if ((spans_.size() + 1) * 10 >= buckets_.size() * 7) {
    Rehash(buckets_.size() * 2);
  }
  std::size_t mask = buckets_.size() - 1;
  std::size_t bucket = Hash(s) & mask;
  while (buckets_[bucket] != 0) {
    if (Str(buckets_[bucket]) == s) return buckets_[bucket];
    bucket = (bucket + 1) & mask;
  }
  Span span;
  span.offset = static_cast<std::uint32_t>(arena_.size());
  span.length = static_cast<std::uint32_t>(s.size());
  arena_.insert(arena_.end(), s.begin(), s.end());
  spans_.push_back(span);
  std::uint32_t id = static_cast<std::uint32_t>(spans_.size());
  buckets_[bucket] = id;
  return id;
}

std::uint32_t SymbolTable::Lookup(std::string_view s) const {
  std::size_t mask = buckets_.size() - 1;
  std::size_t bucket = Hash(s) & mask;
  while (buckets_[bucket] != 0) {
    if (Str(buckets_[bucket]) == s) return buckets_[bucket];
    bucket = (bucket + 1) & mask;
  }
  return 0;
}

std::string_view SymbolTable::Str(std::uint32_t id) const {
  if (id == 0 || id > spans_.size()) return {};
  const Span& span = spans_[id - 1];
  return std::string_view(arena_.data() + span.offset, span.length);
}

}  // namespace dimqr
