#include "core/interner.h"

#include <cstring>

namespace dimqr {
namespace {

constexpr std::size_t kInitialBuckets = 64;  // Power of two.

}  // namespace

SymbolTable::SymbolTable() : buckets_(kInitialBuckets, 0) { Reseat(); }

SymbolTable& SymbolTable::operator=(const SymbolTable& other) {
  if (this == &other) return *this;
  arena_ = other.arena_;
  spans_ = other.spans_;
  buckets_ = other.buckets_;
  if (other.borrowed()) {
    // Share the external backing; owned copies above are the detach seeds.
    arena_v_ = other.arena_v_;
    spans_v_ = other.spans_v_;
    buckets_v_ = other.buckets_v_;
  } else {
    Reseat();
  }
  return *this;
}

SymbolTable& SymbolTable::operator=(SymbolTable&& other) noexcept {
  if (this == &other) return *this;
  bool was_borrowed = other.borrowed();
  arena_v_ = other.arena_v_;
  spans_v_ = other.spans_v_;
  buckets_v_ = other.buckets_v_;
  arena_ = std::move(other.arena_);
  spans_ = std::move(other.spans_);
  buckets_ = std::move(other.buckets_);
  if (!was_borrowed) Reseat();
  other.arena_.clear();
  other.spans_.clear();
  other.buckets_.assign(kInitialBuckets, 0);
  other.Reseat();
  return *this;
}

std::uint64_t SymbolTable::Hash(std::string_view s) {
  // FNV-1a: tiny, deterministic across platforms, good enough for short
  // symbol keys behind a power-of-two table. Part of the serialized
  // layout contract: buckets are persisted, so this function must never
  // change without bumping kSnapshotVersion.
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void SymbolTable::Rehash(std::size_t min_buckets) {
  std::size_t n = buckets_.size();
  if (n == 0) n = kInitialBuckets;
  while (n < min_buckets) n *= 2;
  std::vector<std::uint32_t> fresh(n, 0);
  for (std::uint32_t id = 1; id <= spans_.size(); ++id) {
    const Span& span = spans_[id - 1];
    std::string_view s(arena_.data() + span.offset, span.length);
    std::size_t bucket = Hash(s) & (n - 1);
    while (fresh[bucket] != 0) bucket = (bucket + 1) & (n - 1);
    fresh[bucket] = id;
  }
  buckets_ = std::move(fresh);
  Reseat();
}

void SymbolTable::Detach() {
  if (!borrowed()) return;
  arena_.assign(arena_v_.begin(), arena_v_.end());
  spans_.assign(spans_v_.begin(), spans_v_.end());
  buckets_.assign(buckets_v_.begin(), buckets_v_.end());
  if (buckets_.empty()) buckets_.assign(kInitialBuckets, 0);
  Reseat();
}

std::uint32_t SymbolTable::Intern(std::string_view s) {
  Detach();
  // Keep load factor under 0.7 so probe chains stay short.
  if ((spans_.size() + 1) * 10 >= buckets_.size() * 7) {
    Rehash(buckets_.size() * 2);
  }
  std::size_t mask = buckets_.size() - 1;
  std::size_t bucket = Hash(s) & mask;
  while (buckets_[bucket] != 0) {
    if (Str(buckets_[bucket]) == s) return buckets_[bucket];
    bucket = (bucket + 1) & mask;
  }
  Span span;
  span.offset = static_cast<std::uint32_t>(arena_.size());
  span.length = static_cast<std::uint32_t>(s.size());
  arena_.insert(arena_.end(), s.begin(), s.end());
  spans_.push_back(span);
  std::uint32_t id = static_cast<std::uint32_t>(spans_.size());
  buckets_[bucket] = id;
  Reseat();
  return id;
}

std::uint32_t SymbolTable::Lookup(std::string_view s) const {
  if (buckets_v_.empty()) return 0;
  std::size_t mask = buckets_v_.size() - 1;
  std::size_t bucket = Hash(s) & mask;
  while (buckets_v_[bucket] != 0) {
    if (Str(buckets_v_[bucket]) == s) return buckets_v_[bucket];
    bucket = (bucket + 1) & mask;
  }
  return 0;
}

void SymbolTable::WriteTo(snapshot::ArenaWriter& writer) const {
  writer.PutArray(arena_v_);
  writer.PutArray(spans_v_);
  writer.PutArray(buckets_v_);
}

dimqr::Result<SymbolTable> SymbolTable::FromArena(
    snapshot::ArenaReader& reader) {
  SymbolTable table;
  table.arena_.clear();
  table.spans_.clear();
  table.buckets_.clear();
  DIMQR_ASSIGN_OR_RETURN(table.arena_v_, reader.GetArray<char>());
  DIMQR_ASSIGN_OR_RETURN(table.spans_v_, reader.GetArray<Span>());
  DIMQR_ASSIGN_OR_RETURN(table.buckets_v_,
                         reader.GetArray<std::uint32_t>());
  // Bucket count must be a power of two (the probe mask assumes it) and
  // every span must lie inside the arena; reject corrupt tables up front
  // so lookups can skip per-probe bounds checks.
  if (table.buckets_v_.empty() ||
      (table.buckets_v_.size() & (table.buckets_v_.size() - 1)) != 0) {
    return Status::IOError("symbol-table bucket count not a power of two");
  }
  for (const Span& span : table.spans_v_) {
    if (span.offset > table.arena_v_.size() ||
        table.arena_v_.size() - span.offset < span.length) {
      return Status::IOError("symbol span out of arena bounds in snapshot");
    }
  }
  for (std::uint32_t id : table.buckets_v_) {
    if (id > table.spans_v_.size()) {
      return Status::IOError("symbol bucket points past symbol count");
    }
  }
  return table;
}

}  // namespace dimqr
