#include "core/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

namespace dimqr {

namespace {

/// Pool size from the DIMQR_THREADS environment variable (see GlobalPool()).
int EnvThreadCount() {
  const char* env = std::getenv("DIMQR_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 1;
  if (v == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return static_cast<int>(std::min(v, 256L));
}

/// Active ScopedParallelism override, if any. Mutated only on the main
/// thread between parallel regions.
ThreadPool* g_override_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

Status ThreadPool::RunOneTask(const std::function<Status(int)>& task,
                              int index) {
  // Repo convention: no exceptions across the pool boundary. Anything a body
  // throws is demoted to an Internal status here, on the worker, so it can be
  // merged like any other chunk failure.
  try {
    return task(index);
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in parallel task: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-std exception in parallel task");
  }
}

void ThreadPool::DrainTasks(const std::function<Status(int)>& task, int total,
                            CancelMode cancel_mode) {
  for (;;) {
    int i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) return;
    // Cooperative cancellation: once some lower index has failed
    // non-retryably, running this task can neither change the reported
    // status (lowest index wins) nor produce output anyone will read, so
    // skip straight to completion accounting.
    const bool skip =
        cancel_mode == CancelMode::kCancelOnPermanentError &&
        i > cancel_above_.load(std::memory_order_acquire);
    if (!skip) {
      Status st = RunOneTask(task, i);
      if (!st.ok()) {
        if (cancel_mode == CancelMode::kCancelOnPermanentError &&
            !IsRetryable(st.code())) {
          int current = cancel_above_.load(std::memory_order_relaxed);
          while (i < current && !cancel_above_.compare_exchange_weak(
                                    current, i, std::memory_order_acq_rel)) {
          }
        }
        std::lock_guard<std::mutex> lock(err_mu_);
        if (err_status_.ok() || i < err_index_) {
          err_index_ = i;
          err_status_ = std::move(st);
        }
      }
    }
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<Status(int)>* job = nullptr;
    int total = 0;
    CancelMode cancel_mode = CancelMode::kRunAll;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      total = job_total_;
      cancel_mode = job_cancel_mode_;
      // Registering as an active drainer under mu_ is what makes it safe for
      // Run() to reset the job state: Run() returns only once every drainer
      // has deregistered, so no stale worker can touch next_task_ afterwards.
      if (job != nullptr) ++active_drainers_;
    }
    // job_ is cleared once a job completes; a worker that wakes late for an
    // already-finished generation simply goes back to waiting.
    if (job != nullptr) {
      DrainTasks(*job, total, cancel_mode);
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_drainers_ == 0) done_cv_.notify_all();
    }
  }
}

Status ThreadPool::Run(int num_tasks, const std::function<Status(int)>& task,
                       CancelMode cancel_mode) {
  if (num_tasks <= 0) return Status::OK();
  // Serial path: no workers to wake (or nothing worth waking them for).
  // Runs tasks in index order, so the first non-retryable failure is
  // already the lowest-indexed one and cancellation can stop immediately.
  if (workers_.empty() || num_tasks == 1) {
    int first_err_index = num_tasks;
    Status first_err;
    for (int i = 0; i < num_tasks; ++i) {
      Status st = RunOneTask(task, i);
      if (!st.ok()) {
        const bool cancels =
            cancel_mode == CancelMode::kCancelOnPermanentError &&
            !IsRetryable(st.code());
        if (i < first_err_index) {
          first_err_index = i;
          first_err = std::move(st);
        }
        // Every remaining index is higher, so none can win the
        // lowest-indexed-failure rule: stop here.
        if (cancels) break;
      }
    }
    return first_err;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &task;
    job_total_ = num_tasks;
    job_cancel_mode_ = cancel_mode;
    next_task_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    cancel_above_.store(num_tasks, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> err_lock(err_mu_);
      err_index_ = num_tasks;
      err_status_ = Status::OK();
    }
    ++generation_;
  }
  work_cv_.notify_all();

  // The calling thread is an executor too.
  DrainTasks(task, num_tasks, cancel_mode);

  Status result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return completed_.load(std::memory_order_acquire) == job_total_ &&
             active_drainers_ == 0;
    });
    job_ = nullptr;
    std::lock_guard<std::mutex> err_lock(err_mu_);
    result = std::move(err_status_);
    err_status_ = Status::OK();
  }
  return result;
}

ThreadPool& GlobalPool() {
  // Leaked on purpose: worker threads must outlive every static destructor
  // that might still issue a parallel loop during teardown.
  static ThreadPool* pool = new ThreadPool(EnvThreadCount());
  return g_override_pool != nullptr ? *g_override_pool : *pool;
}

int ParallelThreadCount() { return GlobalPool().threads(); }

ScopedParallelism::ScopedParallelism(int threads)
    : previous_(g_override_pool) {
  pool_.emplace(threads);
  g_override_pool = &*pool_;
}

ScopedParallelism::~ScopedParallelism() { g_override_pool = previous_; }

std::int64_t DefaultGrain(std::int64_t n) {
  if (n <= 0) return 1;
  constexpr std::int64_t kMaxChunks = 64;
  return (n + kMaxChunks - 1) / kMaxChunks;
}

Status ParallelFor(
    std::int64_t n,
    const std::function<Status(std::int64_t, std::int64_t, int)>& body,
    std::int64_t grain, CancelMode cancel_mode) {
  if (n <= 0) return Status::OK();
  if (grain <= 0) grain = DefaultGrain(n);
  const int chunks = NumChunks(n, grain);
  return GlobalPool().Run(
      chunks,
      [&](int chunk) -> Status {
        const std::int64_t begin = static_cast<std::int64_t>(chunk) * grain;
        const std::int64_t end = std::min(n, begin + grain);
        return body(begin, end, chunk);
      },
      cancel_mode);
}

}  // namespace dimqr
