#ifndef DIMQR_CORE_RATIONAL_H_
#define DIMQR_CORE_RATIONAL_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "core/status.h"

/// \file rational.h
/// Exact rational arithmetic for unit-conversion factors.
///
/// Conversion chains (e.g. mile -> yard -> foot -> inch -> cm) stay exact
/// when every factor is rational; floating-point chains drift. Rational
/// keeps numerator/denominator as int64 with __int128 intermediates and
/// reports overflow via Status instead of silently wrapping.

namespace dimqr {

/// \brief An exact rational number num/den with den > 0 and gcd(num,den)==1.
///
/// Value type: copyable, equality-comparable, totally ordered. All arithmetic
/// that could overflow int64 is exposed through fallible factory functions.
class Rational {
 public:
  /// Zero.
  Rational() = default;

  /// The integer `n` as a rational.
  explicit Rational(std::int64_t n) : num_(n), den_(1) {}

  /// \brief Constructs num/den reduced to lowest terms.
  ///
  /// Returns InvalidArgument if den == 0.
  static Result<Rational> Of(std::int64_t num, std::int64_t den);

  /// \brief Parses "a", "a/b", or a decimal string like "2.54" exactly.
  ///
  /// Decimal strings are converted via powers of ten ("2.54" -> 127/50).
  /// Returns ParseError on malformed input, OutOfRange if the exact value
  /// does not fit.
  static Result<Rational> Parse(std::string_view text);

  /// \brief Best-effort conversion from a double.
  ///
  /// Uses continued fractions with bounded denominator; exact for doubles
  /// that are ratios of small integers. Returns OutOfRange for NaN/inf.
  static Result<Rational> FromDouble(double value,
                                     std::int64_t max_denominator = 1000000000);

  std::int64_t numerator() const { return num_; }
  std::int64_t denominator() const { return den_; }

  /// This rational as a double (may round).
  double ToDouble() const { return static_cast<double>(num_) / den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsOne() const { return num_ == 1 && den_ == 1; }
  bool IsInteger() const { return den_ == 1; }
  bool IsNegative() const { return num_ < 0; }

  /// \brief Checked arithmetic. Returns OutOfRange on int64 overflow.
  Result<Rational> Add(const Rational& other) const;
  Result<Rational> Sub(const Rational& other) const;
  Result<Rational> Mul(const Rational& other) const;
  /// Returns InvalidArgument when dividing by zero.
  Result<Rational> Div(const Rational& other) const;
  /// Integer powers; negative exponents invert. Returns InvalidArgument for
  /// 0^negative, OutOfRange on overflow.
  Result<Rational> Pow(int exponent) const;

  /// The additive inverse (never overflows: |num| <= INT64_MAX by invariant).
  Rational Negated() const;
  /// The multiplicative inverse. Returns InvalidArgument for zero.
  Result<Rational> Inverse() const;

  /// "a" when integer, otherwise "a/b".
  std::string ToString() const;

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  /// Total order via cross-multiplication in 128-bit.
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return !(a < b);
  }

 private:
  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {}

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace dimqr

#endif  // DIMQR_CORE_RATIONAL_H_
