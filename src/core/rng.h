#ifndef DIMQR_CORE_RNG_H_
#define DIMQR_CORE_RNG_H_

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

/// \file rng.h
/// Deterministic randomness. Every stochastic component in dimqr (dataset
/// generation, augmentation sampling, model initialization, simulated
/// baselines) draws from an Rng seeded explicitly, so tables and figures
/// reproduce bit-for-bit across runs.

namespace dimqr {

/// \brief A seedable PRNG wrapper with the sampling helpers the generators
/// need. Thin layer over std::mt19937_64; copyable (copies reproduce the
/// stream).
class Rng {
 public:
  /// Seeded PRNG; the default seed is the library-wide reproducibility seed.
  explicit Rng(std::uint64_t seed = 20240131) : engine_(seed) {}

  /// \brief Derives a child seed from a parent seed and a label, so modules
  /// can fork independent deterministic streams ("dimeval/unit_conversion").
  static std::uint64_t DeriveSeed(std::uint64_t parent, std::string_view label);

  /// \brief Derives a child seed from a parent seed and a numeric stream
  /// index. This is the split primitive behind deterministic parallelism:
  /// chunk (or item) `i` of a parallel loop draws from
  /// `Rng(SplitSeed(seed, i))`, so its stream is a function of the loop index
  /// only — never of which thread ran it. Distinct indices yield
  /// decorrelated streams (splitmix64 finalizer).
  static std::uint64_t SplitSeed(std::uint64_t parent, std::uint64_t stream);

  /// \brief Convenience: an Rng positioned on stream `stream` of `parent`.
  static Rng ForStream(std::uint64_t parent, std::uint64_t stream) {
    return Rng(SplitSeed(parent, stream));
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Standard normal draw.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  /// Returns 0 when all weights are zero. Requires non-empty weights.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// A uniformly random element index for a container of size n. Requires n>0.
  std::size_t Index(std::size_t n) {
    return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k);

  /// The underlying engine, for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dimqr

#endif  // DIMQR_CORE_RNG_H_
