#ifndef DIMQR_CORE_ALIGNED_H_
#define DIMQR_CORE_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

/// \file aligned.h
/// Cache-line-aligned heap storage for hot numeric buffers. Snapshot arenas
/// already 64-byte-align every section (core/snapshot.h), but weights and
/// scratch buffers built in memory land wherever the default allocator puts
/// them — typically 16-byte aligned — so a 64-byte vector load can straddle
/// a cache-line boundary. `AlignedVec` is a drop-in `std::vector` whose
/// backing store always starts on a cache line, giving the SIMD kernels
/// (lm/kernels.h) the same alignment guarantee for trained-in-memory models
/// that mapped snapshots get for free.

namespace dimqr {

inline constexpr std::size_t kCacheLineBytes = 64;

/// \brief Minimal std::allocator replacement whose allocations start on a
/// `Alignment`-byte boundary (via the aligned operator new overloads, so
/// allocation-counting tests still observe them).
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// \brief A std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace dimqr

#endif  // DIMQR_CORE_ALIGNED_H_
