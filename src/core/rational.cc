#include "core/rational.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

namespace dimqr {
namespace {

using int128 = __int128;

constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();

bool FitsInt64(int128 v) { return v >= kInt64Min && v <= kInt64Max; }

/// Reduces num/den (den != 0) to lowest terms with den > 0, checking that the
/// result fits in int64.
Result<Rational> MakeReduced(int128 num, int128 den) {
  if (den == 0) {
    return Status::InvalidArgument("rational with zero denominator");
  }
  if (den < 0) {
    num = -num;
    den = -den;
  }
  // gcd over unsigned magnitudes; num may be int128-min-like but inputs here
  // always come from products of int64 values so magnitude < 2^126.
  int128 a = num < 0 ? -num : num;
  int128 b = den;
  while (b != 0) {
    int128 t = a % b;
    a = b;
    b = t;
  }
  if (a > 1) {
    num /= a;
    den /= a;
  }
  if (!FitsInt64(num) || !FitsInt64(den)) {
    return Status::OutOfRange("rational overflows int64 after reduction");
  }
  Result<Rational> out = Rational::Of(static_cast<std::int64_t>(num),
                                      static_cast<std::int64_t>(den));
  return out;
}

}  // namespace

Result<Rational> Rational::Of(std::int64_t num, std::int64_t den) {
  if (den == 0) {
    return Status::InvalidArgument("rational with zero denominator");
  }
  if (num == kInt64Min || den == kInt64Min) {
    // std::abs / negation would overflow; route through 128-bit reduction.
    return MakeReduced(static_cast<int128>(num), static_cast<int128>(den));
  }
  if (den < 0) {
    num = -num;
    den = -den;
  }
  std::int64_t g = std::gcd(std::abs(num), den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  return Rational(num, den);
}

Result<Rational> Rational::Parse(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty rational literal");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  auto slash = text.find('/', i);
  if (slash != std::string_view::npos) {
    // "a/b" form: parse both sides as integers.
    int128 num = 0, den = 0;
    std::size_t j = i;
    if (j == slash) return Status::ParseError("missing numerator");
    for (; j < slash; ++j) {
      if (text[j] < '0' || text[j] > '9') {
        return Status::ParseError("non-digit in rational numerator");
      }
      num = num * 10 + (text[j] - '0');
      if (num > static_cast<int128>(kInt64Max)) {
        return Status::OutOfRange("rational numerator overflows");
      }
    }
    if (slash + 1 == text.size()) return Status::ParseError("missing denominator");
    for (j = slash + 1; j < text.size(); ++j) {
      if (text[j] < '0' || text[j] > '9') {
        return Status::ParseError("non-digit in rational denominator");
      }
      den = den * 10 + (text[j] - '0');
      if (den > static_cast<int128>(kInt64Max)) {
        return Status::OutOfRange("rational denominator overflows");
      }
    }
    return MakeReduced(negative ? -num : num, den);
  }
  // Integer or decimal form, optionally with exponent "e<int>".
  int128 mantissa = 0;
  int frac_digits = 0;
  bool seen_digit = false, seen_dot = false;
  int exp10 = 0;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c >= '0' && c <= '9') {
      seen_digit = true;
      mantissa = mantissa * 10 + (c - '0');
      if (seen_dot) ++frac_digits;
      if (mantissa > (static_cast<int128>(1) << 100)) {
        return Status::OutOfRange("decimal literal too long for exact rational");
      }
    } else if (c == '.') {
      if (seen_dot) return Status::ParseError("multiple decimal points");
      seen_dot = true;
    } else if (c == 'e' || c == 'E') {
      ++i;
      bool exp_neg = false;
      if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
        exp_neg = text[i] == '-';
        ++i;
      }
      if (i >= text.size()) return Status::ParseError("missing exponent digits");
      int e = 0;
      for (; i < text.size(); ++i) {
        if (text[i] < '0' || text[i] > '9') {
          return Status::ParseError("non-digit in exponent");
        }
        e = e * 10 + (text[i] - '0');
        if (e > 40) return Status::OutOfRange("exponent too large");
      }
      exp10 = exp_neg ? -e : e;
      break;
    } else {
      return Status::ParseError("unexpected character in rational literal");
    }
  }
  if (!seen_digit) return Status::ParseError("no digits in rational literal");
  int net = exp10 - frac_digits;
  int128 num = negative ? -mantissa : mantissa;
  int128 den = 1;
  while (net > 0) {
    num *= 10;
    --net;
    if (num > (static_cast<int128>(1) << 120) ||
        num < -(static_cast<int128>(1) << 120)) {
      return Status::OutOfRange("rational magnitude overflows");
    }
  }
  while (net < 0) {
    den *= 10;
    ++net;
    if (den > (static_cast<int128>(1) << 120)) {
      return Status::OutOfRange("rational denominator overflows");
    }
  }
  return MakeReduced(num, den);
}

Result<Rational> Rational::FromDouble(double value,
                                      std::int64_t max_denominator) {
  if (!std::isfinite(value)) {
    return Status::OutOfRange("cannot convert non-finite double to rational");
  }
  if (max_denominator < 1) {
    return Status::InvalidArgument("max_denominator must be >= 1");
  }
  bool negative = value < 0;
  double x = std::fabs(value);
  if (x > 9.2e18) return Status::OutOfRange("double too large for rational");
  // Continued-fraction expansion: maintain convergents h/k.
  std::int64_t h0 = 0, h1 = 1, k0 = 1, k1 = 0;
  double frac = x;
  for (int iter = 0; iter < 64; ++iter) {
    double fa = std::floor(frac);
    if (fa > 9.2e18) break;
    auto a = static_cast<std::int64_t>(fa);
    int128 h2 = static_cast<int128>(a) * h1 + h0;
    int128 k2 = static_cast<int128>(a) * k1 + k0;
    if (k2 > max_denominator || h2 > kInt64Max) break;
    h0 = h1;
    k0 = k1;
    h1 = static_cast<std::int64_t>(h2);
    k1 = static_cast<std::int64_t>(k2);
    double rem = frac - fa;
    if (rem < 1e-15 * std::max(1.0, x)) break;
    frac = 1.0 / rem;
  }
  if (k1 == 0) return Status::OutOfRange("no rational approximation found");
  return Rational::Of(negative ? -h1 : h1, k1);
}

Result<Rational> Rational::Add(const Rational& other) const {
  int128 num = static_cast<int128>(num_) * other.den_ +
               static_cast<int128>(other.num_) * den_;
  int128 den = static_cast<int128>(den_) * other.den_;
  return MakeReduced(num, den);
}

Result<Rational> Rational::Sub(const Rational& other) const {
  return Add(other.Negated());
}

Result<Rational> Rational::Mul(const Rational& other) const {
  int128 num = static_cast<int128>(num_) * other.num_;
  int128 den = static_cast<int128>(den_) * other.den_;
  return MakeReduced(num, den);
}

Result<Rational> Rational::Div(const Rational& other) const {
  if (other.IsZero()) return Status::InvalidArgument("division by zero");
  int128 num = static_cast<int128>(num_) * other.den_;
  int128 den = static_cast<int128>(den_) * other.num_;
  return MakeReduced(num, den);
}

Result<Rational> Rational::Pow(int exponent) const {
  if (exponent == 0) return Rational(1);
  if (IsZero() && exponent < 0) {
    return Status::InvalidArgument("zero to a negative power");
  }
  Rational base = *this;
  bool invert = exponent < 0;
  unsigned e = invert ? static_cast<unsigned>(-(static_cast<std::int64_t>(exponent)))
                      : static_cast<unsigned>(exponent);
  Rational acc(1);
  while (e > 0) {
    if (e & 1u) {
      DIMQR_ASSIGN_OR_RETURN(acc, acc.Mul(base));
    }
    e >>= 1u;
    if (e > 0) {
      DIMQR_ASSIGN_OR_RETURN(base, base.Mul(base));
    }
  }
  if (invert) return acc.Inverse();
  return acc;
}

Rational Rational::Negated() const { return Rational(-num_, den_); }

Result<Rational> Rational::Inverse() const {
  if (IsZero()) return Status::InvalidArgument("inverse of zero");
  return Rational::Of(den_, num_);
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

bool operator<(const Rational& a, const Rational& b) {
  return static_cast<__int128>(a.num_) * b.den_ <
         static_cast<__int128>(b.num_) * a.den_;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

}  // namespace dimqr
