#include "core/status.h"

#include <cstdio>
#include <cstdlib>

namespace dimqr {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDimensionMismatch:
      return "DimensionMismatch";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void AbortWithMessage(const std::string& why) {
  std::fprintf(stderr, "dimqr fatal: %s\n", why.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace dimqr
