#include "core/unit_expr.h"

#include <cctype>

namespace dimqr {
namespace {

enum class TokKind { kName, kTimes, kOver, kPower, kLParen, kRParen, kInt, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  int value = 0;
};

/// Lexes a unit expression. Unit names may contain letters, digits after a
/// leading letter, '_', '-', and non-ASCII bytes (UTF-8 unit names).
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t') {
        ++pos_;
        continue;
      }
      if (c == '*') {
        out.push_back({TokKind::kTimes, "*"});
        ++pos_;
        continue;
      }
      // UTF-8 multiplication sign U+00D7 (0xC3 0x97) and division U+00F7
      // (0xC3 0xB7).
      if (static_cast<unsigned char>(c) == 0xC3 && pos_ + 1 < text_.size()) {
        auto next = static_cast<unsigned char>(text_[pos_ + 1]);
        if (next == 0x97) {
          out.push_back({TokKind::kTimes, "x"});
          pos_ += 2;
          continue;
        }
        if (next == 0xB7) {
          out.push_back({TokKind::kOver, "/"});
          pos_ += 2;
          continue;
        }
      }
      if (c == '/') {
        out.push_back({TokKind::kOver, "/"});
        ++pos_;
        continue;
      }
      if (c == '^') {
        out.push_back({TokKind::kPower, "^"});
        ++pos_;
        continue;
      }
      if (c == '(') {
        out.push_back({TokKind::kLParen, "("});
        ++pos_;
        continue;
      }
      if (c == ')') {
        out.push_back({TokKind::kRParen, ")"});
        ++pos_;
        continue;
      }
      if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c))) {
        bool neg = c == '-';
        if (c == '-' || c == '+') ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          return Status::ParseError("expected digits after sign");
        }
        int v = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          v = v * 10 + (text_[pos_] - '0');
          if (v > 127) return Status::OutOfRange("exponent too large");
          ++pos_;
        }
        out.push_back({TokKind::kInt, "", neg ? -v : v});
        continue;
      }
      if (IsNameChar(c, /*leading=*/true)) {
        std::string name;
        while (pos_ < text_.size() && IsNameChar(text_[pos_], false)) {
          name += text_[pos_++];
        }
        // Lone 'x' between terms means multiplication; "per" means division.
        if (name == "x" || name == "X") {
          out.push_back({TokKind::kTimes, "x"});
        } else if (name == "per" || name == "PER" || name == "Per") {
          out.push_back({TokKind::kOver, "per"});
        } else {
          out.push_back({TokKind::kName, std::move(name)});
        }
        continue;
      }
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in unit expression");
    }
    out.push_back({TokKind::kEnd, ""});
    return out;
  }

 private:
  static bool IsNameChar(char c, bool leading) {
    auto u = static_cast<unsigned char>(c);
    if (u >= 0x80) return true;  // UTF-8 continuation/lead bytes
    if (std::isalpha(u) || c == '_' || c == '%') return true;
    if (!leading && (std::isdigit(u) || c == '-' || c == '.')) return true;
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

/// Recursive-descent parser over the token stream.
class UnitExprParser {
 public:
  explicit UnitExprParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<UnitExpr> Parse() {
    DIMQR_ASSIGN_OR_RETURN(UnitExpr e, ParseExpr());
    if (Peek().kind != TokKind::kEnd) {
      return Status::ParseError("trailing tokens in unit expression");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }

  Result<UnitExpr> ParseExpr() {
    DIMQR_ASSIGN_OR_RETURN(UnitExpr lhs, ParseTerm());
    while (Peek().kind == TokKind::kTimes || Peek().kind == TokKind::kOver) {
      TokKind op = Take().kind;
      DIMQR_ASSIGN_OR_RETURN(UnitExpr rhs, ParseTerm());
      UnitExpr node;
      node.kind_ =
          op == TokKind::kTimes ? UnitExpr::Kind::kTimes : UnitExpr::Kind::kOver;
      node.children_.push_back(std::move(lhs));
      node.children_.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<UnitExpr> ParseTerm() {
    DIMQR_ASSIGN_OR_RETURN(UnitExpr base, ParseFactor());
    if (Peek().kind == TokKind::kPower) {
      Take();
      if (Peek().kind != TokKind::kInt) {
        return Status::ParseError("expected integer exponent after '^'");
      }
      int e = Take().value;
      UnitExpr node;
      node.kind_ = UnitExpr::Kind::kPower;
      node.exponent_ = e;
      node.children_.push_back(std::move(base));
      return node;
    }
    return base;
  }

  Result<UnitExpr> ParseFactor() {
    if (Peek().kind == TokKind::kLParen) {
      Take();
      DIMQR_ASSIGN_OR_RETURN(UnitExpr e, ParseExpr());
      if (Peek().kind != TokKind::kRParen) {
        return Status::ParseError("missing ')' in unit expression");
      }
      Take();
      return e;
    }
    if (Peek().kind == TokKind::kName) {
      UnitExpr node;
      node.kind_ = UnitExpr::Kind::kUnit;
      node.name_ = Take().text;
      return node;
    }
    return Status::ParseError("expected unit name or '(' in unit expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

Result<UnitExpr> UnitExpr::Parse(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty unit expression");
  Lexer lexer(text);
  DIMQR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  UnitExprParser parser(std::move(tokens));
  return parser.Parse();
}

Result<UnitSemantics> UnitExpr::Evaluate(const UnitResolver& resolver) const {
  switch (kind_) {
    case Kind::kUnit:
      return resolver(name_);
    case Kind::kTimes: {
      DIMQR_ASSIGN_OR_RETURN(UnitSemantics a, children_[0].Evaluate(resolver));
      DIMQR_ASSIGN_OR_RETURN(UnitSemantics b, children_[1].Evaluate(resolver));
      return a.Times(b);
    }
    case Kind::kOver: {
      DIMQR_ASSIGN_OR_RETURN(UnitSemantics a, children_[0].Evaluate(resolver));
      DIMQR_ASSIGN_OR_RETURN(UnitSemantics b, children_[1].Evaluate(resolver));
      return a.Over(b);
    }
    case Kind::kPower: {
      DIMQR_ASSIGN_OR_RETURN(UnitSemantics a, children_[0].Evaluate(resolver));
      return a.Power(exponent_);
    }
  }
  return Status::Internal("corrupt unit expression node");
}

Result<Dimension> UnitExpr::EvaluateDimension(
    const UnitResolver& resolver) const {
  DIMQR_ASSIGN_OR_RETURN(UnitSemantics sem, Evaluate(resolver));
  return sem.dimension;
}

std::vector<std::string> UnitExpr::LeafUnits() const {
  std::vector<std::string> out;
  if (kind_ == Kind::kUnit) {
    out.push_back(name_);
    return out;
  }
  for (const UnitExpr& child : children_) {
    std::vector<std::string> sub = child.LeafUnits();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::string UnitExpr::ToString() const {
  switch (kind_) {
    case Kind::kUnit:
      return name_;
    case Kind::kTimes:
      return "(" + children_[0].ToString() + "*" + children_[1].ToString() +
             ")";
    case Kind::kOver:
      return "(" + children_[0].ToString() + "/" + children_[1].ToString() +
             ")";
    case Kind::kPower:
      return children_[0].ToString() + "^" + std::to_string(exponent_);
  }
  return "?";
}

}  // namespace dimqr
