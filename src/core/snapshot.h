#ifndef DIMQR_CORE_SNAPSHOT_H_
#define DIMQR_CORE_SNAPSHOT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "core/status.h"

/// \file snapshot.h
/// The zero-copy artifact container — one memory-mappable file holding
/// every trained/built artifact the system needs at startup (DimUnitKB,
/// vocabularies, transformer weights, the n-gram LM), so cold start is one
/// `mmap` instead of a rebuild, and N concurrently running processes share
/// one physical copy of the bytes.
///
/// Format (all integers little-endian, fixed width):
///
///   offset 0    SnapshotHeader (64 bytes)
///                 magic "DQSNAP1\0", version, section count, file size,
///                 CRC-32 over every byte after the header.
///   offset 64   section table: section_count × SectionEntry
///                 { name_offset, name_length, payload_offset, payload_size }
///   ...         names blob (concatenated section-name bytes)
///   ...         payloads, each starting on a 64-byte boundary
///
/// Invariants the reader enforces before handing out a single byte:
///   - magic and version match, the stored file size equals the mapping,
///   - the CRC matches (bit rot / truncation / torn writes),
///   - every section's name and payload lie inside the file,
///   - every payload offset is 64-byte aligned.
///
/// Inside a section, payloads are flat arenas written by `ArenaWriter` and
/// read back by `ArenaReader`: a sequence of PODs and typed arrays, each
/// array prefixed by a u64 element count and aligned so the reader can
/// return a `std::span<const T>` that *aliases* the mapping — no per-record
/// parsing, no allocation, no copies. Offsets, never pointers, so the file
/// is position-independent.
///
/// Versioning/compat rules (DESIGN.md §11): the version stamp covers the
/// whole container layout AND every component's arena layout. Any change to
/// either bumps `kSnapshotVersion`; readers reject mismatches outright
/// (snapshots are cheap to regenerate — they are a cache, not an archive).

namespace dimqr::snapshot {

inline constexpr char kSnapshotMagic[8] = {'D', 'Q', 'S', 'N',
                                           'A', 'P', '1', '\0'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Every section payload starts on this boundary (cache-line / SIMD-load
/// friendly; also the alignment ArenaWriter gives each array's data).
inline constexpr std::size_t kSectionAlign = 64;

static_assert(std::endian::native == std::endian::little,
              "snapshot files are little-endian; big-endian hosts would "
              "need byte-swapping readers");

/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `bytes`.
std::uint32_t Crc32(std::span<const std::byte> bytes);

/// \brief The 64-byte file header. Trivially copyable; written verbatim.
struct SnapshotHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t section_count;
  std::uint64_t file_size;   ///< Total bytes, header included.
  std::uint32_t crc32;       ///< Over bytes [sizeof(SnapshotHeader), file_size).
  std::uint32_t flags;       ///< Reserved; 0.
  std::uint8_t pad[32];      ///< Zero.
};
static_assert(sizeof(SnapshotHeader) == 64);
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);

/// \brief One section-table row. Offsets are absolute file offsets.
struct SectionEntry {
  std::uint64_t name_offset;
  std::uint32_t name_length;
  std::uint32_t reserved;     ///< Zero.
  std::uint64_t payload_offset;  ///< 64-byte aligned.
  std::uint64_t payload_size;
};
static_assert(sizeof(SectionEntry) == 32);
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/// \brief A reference to a string inside a section's char arena — the flat
/// replacement for `std::string` fields in snapshot PODs.
struct StrRef {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};
static_assert(std::is_trivially_copyable_v<StrRef>);

/// \brief Builds one section's payload: a deterministic sequence of PODs
/// and arrays. The writer and `ArenaReader` share one padding convention,
/// so reading in write order recovers every element.
class ArenaWriter {
 public:
  /// Appends one trivially copyable value, padded to its natural alignment.
  template <typename T>
  void PutPod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    PadTo(alignof(T));
    Append(&value, sizeof(T));
  }

  /// Appends a typed array: u64 element count, padding to kSectionAlign,
  /// then the raw elements.
  template <typename T>
  void PutArray(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutPod<std::uint64_t>(values.size());
    PadTo(kSectionAlign);
    Append(values.data(), values.size() * sizeof(T));
  }
  template <typename T>
  void PutArray(const std::vector<T>& values) {
    PutArray(std::span<const T>(values));
  }

  /// Appends string bytes as a char array.
  void PutString(std::string_view s) {
    PutArray(std::span<const char>(s.data(), s.size()));
  }

  std::size_t size() const { return bytes_.size(); }
  std::vector<std::byte> Take() { return std::move(bytes_); }

 private:
  void PadTo(std::size_t alignment) {
    bytes_.resize((bytes_.size() + alignment - 1) / alignment * alignment,
                  std::byte{0});
  }
  void Append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::vector<std::byte> bytes_;
};

/// \brief Cursor over one mapped section. Every accessor bounds- and
/// alignment-checks before aliasing, so corrupt or truncated files yield
/// clean Status errors instead of UB. Returned spans point INTO the
/// underlying bytes — they stay valid exactly as long as the mapping.
class ArenaReader {
 public:
  explicit ArenaReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  dimqr::Result<T> GetPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    DIMQR_RETURN_NOT_OK(AlignTo(alignof(T)));
    if (bytes_.size() - pos_ < sizeof(T)) {
      return dimqr::Status::DataLoss("snapshot arena truncated reading pod");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  dimqr::Result<std::span<const T>> GetArray() {
    static_assert(std::is_trivially_copyable_v<T>);
    DIMQR_ASSIGN_OR_RETURN(std::uint64_t count, GetPod<std::uint64_t>());
    DIMQR_RETURN_NOT_OK(AlignTo(kSectionAlign));
    if (count > (bytes_.size() - pos_) / sizeof(T)) {
      return dimqr::Status::DataLoss(
          "snapshot arena truncated reading array of " +
          std::to_string(count) + " elements");
    }
    if (reinterpret_cast<std::uintptr_t>(bytes_.data() + pos_) %
            alignof(T) != 0) {
      return dimqr::Status::DataLoss("snapshot array misaligned in mapping");
    }
    std::span<const T> out(
        reinterpret_cast<const T*>(bytes_.data() + pos_), count);
    pos_ += count * sizeof(T);
    return out;
  }

  dimqr::Result<std::string_view> GetString() {
    DIMQR_ASSIGN_OR_RETURN(std::span<const char> chars, GetArray<char>());
    return std::string_view(chars.data(), chars.size());
  }

  /// Resolves a StrRef against a previously read char arena.
  static dimqr::Result<std::string_view> View(std::span<const char> arena,
                                              StrRef ref) {
    if (ref.offset > arena.size() || arena.size() - ref.offset < ref.length) {
      return dimqr::Status::DataLoss("snapshot StrRef out of arena bounds");
    }
    return std::string_view(arena.data() + ref.offset, ref.length);
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  dimqr::Status AlignTo(std::size_t alignment) {
    std::size_t aligned = (pos_ + alignment - 1) / alignment * alignment;
    if (aligned > bytes_.size()) {
      return dimqr::Status::DataLoss("snapshot arena truncated at padding");
    }
    pos_ = aligned;
    return dimqr::Status::OK();
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// \brief Accumulates named sections and serializes the container.
/// Sections are emitted in insertion order, so identical content written in
/// identical order produces byte-identical files (cross-run determinism).
class SnapshotWriter {
 public:
  /// Adds a section; names must be unique and non-empty.
  dimqr::Status AddSection(std::string name, std::vector<std::byte> payload);

  /// Convenience: drains an ArenaWriter into a section.
  dimqr::Status AddSection(std::string name, ArenaWriter&& arena) {
    return AddSection(std::move(name), arena.Take());
  }

  /// The complete serialized container (header + table + payloads).
  std::vector<std::byte> Serialize() const;

  /// Serializes to a file (written atomically: temp file + rename).
  dimqr::Status WriteFile(const std::string& path) const;

 private:
  struct PendingSection {
    std::string name;
    std::vector<std::byte> payload;
  };
  std::vector<PendingSection> sections_;
};

/// \brief A validated, non-owning view of a serialized snapshot. Cheap to
/// copy; all accessors alias the underlying bytes.
class SnapshotView {
 public:
  SnapshotView() = default;

  /// Validates header, CRC, and section table. The returned view (and
  /// everything loaded through it) aliases `bytes`. Error classification:
  /// content-validation failures (bad CRC, truncation, out-of-bounds
  /// table entries) are kDataLoss — the file exists but its bytes are
  /// wrong; wrong magic/version are kParseError (not our file / not our
  /// version); real filesystem failures (in Map) are kIOError. Callers
  /// like `dimqr_snapshot verify` script on the difference.
  static dimqr::Result<SnapshotView> Parse(std::span<const std::byte> bytes);

  bool Has(std::string_view name) const;

  /// The payload bytes of a section; NotFound for unknown names.
  dimqr::Result<std::span<const std::byte>> Section(
      std::string_view name) const;

  /// All section names in file order.
  std::vector<std::string_view> SectionNames() const;

  std::size_t size_bytes() const { return bytes_.size(); }

  /// The whole underlying byte range the view (and every section span
  /// handed out) aliases — for bounds/aliasing assertions.
  std::span<const std::byte> bytes() const { return bytes_; }

 private:
  std::span<const std::byte> bytes_;
  std::span<const SectionEntry> entries_;
};

/// \brief A read-only memory-mapped file. Move-only; unmaps on destruction.
class MappedFile {
 public:
  static dimqr::Result<MappedFile> Map(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// \brief A mapped-and-validated snapshot file: the object every
/// `FromSnapshot` loader holds a shared_ptr to, keeping the mapping alive
/// for as long as any structure aliases it.
class Snapshot {
 public:
  /// Maps `path` and validates the container (magic, version, CRC, table).
  static dimqr::Result<std::shared_ptr<const Snapshot>> Map(
      const std::string& path);

  /// Adopts an in-memory serialized container (tests, in-process handoff).
  static dimqr::Result<std::shared_ptr<const Snapshot>> FromBytes(
      std::vector<std::byte> bytes);

  const SnapshotView& view() const { return view_; }
  dimqr::Result<std::span<const std::byte>> Section(
      std::string_view name) const {
    return view_.Section(name);
  }
  bool Has(std::string_view name) const { return view_.Has(name); }
  const std::string& path() const { return path_; }

 private:
  Snapshot() = default;

  std::string path_;
  MappedFile mapping_;              ///< Active when mapped from a file.
  std::vector<std::byte> owned_;    ///< Active when adopted from memory.
  SnapshotView view_;
};

}  // namespace dimqr::snapshot

#endif  // DIMQR_CORE_SNAPSHOT_H_
