#ifndef DIMQR_CORE_PROC_H_
#define DIMQR_CORE_PROC_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"

/// \file proc.h
/// The process fleet: a supervisor that forks N worker processes, assigns
/// each a shard of work, and monitors them over a pipe-based frame
/// protocol. fork() without exec: children inherit every built/trained
/// artifact (and any mmap-ed snapshot pages) copy-on-write, so N workers
/// share one physical copy of the model image — the multi-process half of
/// the zero-copy snapshot story (DESIGN.md §11/§12).
///
/// Robustness contract (DESIGN.md §12):
///   - A worker that dies (SIGKILL, _exit, crash) is detected by pipe EOF
///     + waitpid; a worker that *hangs* is detected by a missed-heartbeat
///     timeout and SIGKILLed by the supervisor.
///   - A crashed shard is retried with exponential backoff; its `attempt`
///     counter increments per crash, so deterministic crash faults
///     (`sigkill`/`exit` kinds in core/fault.h) stop firing once the
///     configured crash count is reached.
///   - Each (worker slot, shard) pair has a crash budget; once a shard
///     exhausts its budget on one slot it is reassigned to another. A
///     shard that exhausts every slot's budget — or a fleet that exceeds
///     `max_total_crashes` — fails the run with a clean Status.
///   - A shard body that *returns* an error Status is a permanent failure
///     (reported over the pipe, never retried): crashes are properties of
///     the attempt, error Statuses are properties of the work.
///
/// Fork safety: the supervisor must be driven from the main thread between
/// parallel regions. The child never touches the parent's thread pool —
/// RunShards installs a serial ScopedParallelism(1) in the child before the
/// body runs — creates no threads of its own, and leaves via _exit (no
/// atexit handlers, no static destructors). The pipe is written only by the
/// child's single thread, so frames are never interleaved; the supervisor
/// tolerates a torn trailing frame from a mid-write kill by simply never
/// seeing a complete header for it.

namespace dimqr::proc {

/// \brief Frame types on the worker->supervisor pipe.
enum class FrameType : std::uint32_t {
  kHello = 1,     ///< First frame after fork: "shard S attempt A is live".
  kHeartbeat = 2, ///< Liveness; sent by ShardContext::Beat (rate-limited).
  kShardDone = 3, ///< Success; payload = the body's result bytes.
  kShardFailed = 4,  ///< Permanent failure; payload = status message text.
};

/// \brief Fixed little-endian frame header; payload bytes follow.
struct FrameHeader {
  std::uint32_t magic = 0;  ///< kFrameMagic.
  std::uint32_t type = 0;   ///< FrameType.
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;
  std::uint64_t payload_size = 0;
};
static_assert(sizeof(FrameHeader) == 24);

inline constexpr std::uint32_t kFrameMagic = 0x44515046u;  // "DQPF"

/// \brief One parsed frame (payload copied out of the stream buffer).
struct Frame {
  FrameType type = FrameType::kHello;
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;
  std::vector<std::byte> payload;
};

/// \brief Incremental parser over one worker's pipe stream. Append() raw
/// read() bytes, then Next() yields complete frames; a torn trailing frame
/// (the worker was killed mid-write) simply never completes and is
/// discarded with the buffer. A corrupt header (bad magic) is an error:
/// single-writer pipes cannot reorder bytes, so bad magic means a protocol
/// bug, not a crash artifact.
class FrameBuffer {
 public:
  void Append(std::span<const std::byte> bytes);

  /// True when a complete frame was popped into `*out`. Returns an error
  /// only on bad magic or an implausible payload size.
  Result<bool> Next(Frame* out);

 private:
  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;
};

/// \brief Serializes one frame onto `fd` (handles EINTR and short writes).
Status WriteFrame(int fd, FrameType type, std::uint32_t shard,
                  std::uint32_t attempt, std::span<const std::byte> payload);

/// \brief The worker-side channel handed to a shard body via ShardContext.
/// Single-threaded writer by contract (the worker is serial).
class WorkerChannel {
 public:
  WorkerChannel(int fd, std::uint32_t shard, std::uint32_t attempt,
                int heartbeat_interval_ms);

  /// \brief Sends a heartbeat, rate-limited to the configured interval so
  /// callers can Beat() per work item without flooding the pipe. Write
  /// errors are ignored: if the supervisor is gone the worker is about to
  /// die anyway (parent-death signal / SIGPIPE).
  void Beat();

  Status SendHello();
  Status SendDone(std::span<const std::byte> payload);
  Status SendFailed(const Status& status);

 private:
  int fd_;
  std::uint32_t shard_;
  std::uint32_t attempt_;
  std::int64_t heartbeat_interval_ms_;
  std::int64_t last_beat_ms_ = -1;
};

/// \brief What a shard body sees: which shard it is running, how many times
/// this shard has crashed before (the fault-gating attempt index), and the
/// heartbeat channel.
struct ShardContext {
  int shard = 0;
  int attempt = 0;
  WorkerChannel* channel = nullptr;

  /// Rate-limited liveness signal; call once per work item.
  void Beat() {
    if (channel != nullptr) channel->Beat();
  }
};

/// \brief The work of one shard, run inside a forked child. Returns the
/// shard's result payload (merged by the caller of RunShards) or an error
/// Status for a *permanent* failure — errors are reported to the
/// supervisor and never retried.
using ShardBody = std::function<Result<std::vector<std::byte>>(ShardContext&)>;

/// \brief Supervisor tuning knobs. The defaults suit tests and the
/// fleet_eval CLI; every timeout is wall-clock (worker death is a
/// wall-clock phenomenon — the simulated tick clock cannot see it).
struct SupervisorOptions {
  int num_workers = 1;             ///< Worker slots (>= 1).
  int heartbeat_interval_ms = 50;  ///< Worker-side Beat() rate limit.
  /// A worker silent for longer than this is declared hung and SIGKILLed.
  int heartbeat_timeout_ms = 30'000;
  /// Crashes of one shard tolerated per worker slot before the shard is
  /// reassigned to a different slot.
  int crash_budget_per_worker = 3;
  /// Global crash ceiling across the whole run (runaway-chaos backstop).
  int max_total_crashes = 64;
  int backoff_initial_ms = 10;   ///< Delay before a crashed shard's retry.
  int backoff_max_ms = 2'000;    ///< Cap on the exponential backoff.
};

/// \brief Pure backoff schedule: initial * 2^(crashes-1), capped. Exposed
/// for unit tests; `crashes` is the shard's crash count (>= 1).
int BackoffDelayMs(int crashes, const SupervisorOptions& options);

/// \brief One shard's result after the fleet completes.
struct ShardOutcome {
  int shard = 0;
  int attempts = 1;  ///< 1 + number of crashes this shard survived.
  std::vector<std::byte> payload;
};

/// \brief What happened across the whole run. Crash/restart counts are
/// deterministic under injected faults; heartbeat_timeouts is inherently
/// timing-dependent (it only fires for genuinely hung workers).
struct FleetReport {
  int num_shards = 0;
  int num_workers = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;        ///< Crashed-shard relaunches.
  std::uint64_t reassignments = 0;   ///< Shard moved to a different slot.
  std::uint64_t heartbeat_timeouts = 0;
  std::vector<ShardOutcome> outcomes;  ///< Indexed by shard.

  /// One-line summary for logs ("workers=4 shards=4 crashes=2 ...").
  std::string Summary() const;
};

/// \brief Forks workers, runs `body` once per shard in [0, num_shards),
/// and supervises until every shard has reported a result. Must be called
/// from the main thread with no parallel loop in flight (fork safety; see
/// the file comment). The body runs only in children — side effects on
/// parent memory do not propagate back; results travel in the payload.
Result<FleetReport> RunShards(int num_shards, const ShardBody& body,
                              const SupervisorOptions& options);

}  // namespace dimqr::proc

#endif  // DIMQR_CORE_PROC_H_
