#include "core/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace dimqr::snapshot {
namespace {

using dimqr::Result;
using dimqr::Status;

// The format checksum is CRC-32C (Castagnoli, polynomial 0x1EDC6A41
// reflected): x86-64 computes it in hardware (SSE4.2), which matters
// because Snapshot::Map pays this over the whole file — it must not
// dominate the cold-start win the format exists for. The software
// fallback is slicing-by-8 over the same polynomial, so files are
// byte-compatible across both paths.
std::array<std::array<std::uint32_t, 256>, 8> MakeCrc32cTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (int t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

std::uint32_t Crc32cSoftware(std::uint32_t crc,
                             std::span<const std::byte> bytes) {
  static const std::array<std::array<std::uint32_t, 256>, 8> kTables =
      MakeCrc32cTables();
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian: crc folds into the low 4 bytes
    crc = kTables[7][word & 0xFFu] ^ kTables[6][(word >> 8) & 0xFFu] ^
          kTables[5][(word >> 16) & 0xFFu] ^
          kTables[4][(word >> 24) & 0xFFu] ^
          kTables[3][(word >> 32) & 0xFFu] ^
          kTables[2][(word >> 40) & 0xFFu] ^
          kTables[1][(word >> 48) & 0xFFu] ^ kTables[0][word >> 56];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kTables[0][(crc ^ static_cast<std::uint8_t>(*p)) & 0xFFu] ^
          (crc >> 8);
    ++p;
    --n;
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DIMQR_CRC32C_HW 1
__attribute__((target("sse4.2"))) std::uint32_t Crc32cHardware(
    std::uint32_t crc, std::span<const std::byte> bytes) {
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, static_cast<std::uint8_t>(*p));
    ++p;
    --n;
  }
  return crc;
}
#endif

std::size_t AlignUp(std::size_t n, std::size_t alignment) {
  return (n + alignment - 1) / alignment * alignment;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::byte> bytes) {
  std::uint32_t crc = 0xFFFFFFFFu;
#if DIMQR_CRC32C_HW
  static const bool kHaveSse42 = __builtin_cpu_supports("sse4.2");
  if (kHaveSse42) {
    crc = Crc32cHardware(crc, bytes);
  } else {
    crc = Crc32cSoftware(crc, bytes);
  }
#else
  crc = Crc32cSoftware(crc, bytes);
#endif
  return crc ^ 0xFFFFFFFFu;
}

Status SnapshotWriter::AddSection(std::string name,
                                  std::vector<std::byte> payload) {
  if (name.empty()) {
    return Status::InvalidArgument("snapshot section name must be non-empty");
  }
  for (const PendingSection& s : sections_) {
    if (s.name == name) {
      return Status::AlreadyExists("duplicate snapshot section: " + name);
    }
  }
  sections_.push_back({std::move(name), std::move(payload)});
  return Status::OK();
}

std::vector<std::byte> SnapshotWriter::Serialize() const {
  const std::size_t table_offset = sizeof(SnapshotHeader);
  const std::size_t names_offset =
      table_offset + sections_.size() * sizeof(SectionEntry);
  std::size_t names_size = 0;
  for (const PendingSection& s : sections_) names_size += s.name.size();

  std::vector<SectionEntry> entries(sections_.size());
  std::size_t name_cursor = names_offset;
  std::size_t payload_cursor = AlignUp(names_offset + names_size,
                                       kSectionAlign);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    entries[i].name_offset = name_cursor;
    entries[i].name_length =
        static_cast<std::uint32_t>(sections_[i].name.size());
    entries[i].reserved = 0;
    entries[i].payload_offset = payload_cursor;
    entries[i].payload_size = sections_[i].payload.size();
    name_cursor += sections_[i].name.size();
    payload_cursor = AlignUp(payload_cursor + sections_[i].payload.size(),
                             kSectionAlign);
  }
  // The file ends right after the last payload (no trailing pad needed,
  // but payload_cursor already rounded up; trim back to the true end).
  std::size_t file_size =
      sections_.empty()
          ? names_offset + names_size
          : entries.back().payload_offset + entries.back().payload_size;

  std::vector<std::byte> out(file_size, std::byte{0});
  auto put = [&out](std::size_t offset, const void* data, std::size_t n) {
    std::memcpy(out.data() + offset, data, n);
  };
  put(table_offset, entries.data(), entries.size() * sizeof(SectionEntry));
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    put(entries[i].name_offset, sections_[i].name.data(),
        sections_[i].name.size());
    put(entries[i].payload_offset, sections_[i].payload.data(),
        sections_[i].payload.size());
  }

  SnapshotHeader header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(header.magic));
  header.version = kSnapshotVersion;
  header.section_count = static_cast<std::uint32_t>(sections_.size());
  header.file_size = file_size;
  header.flags = 0;
  header.crc32 = Crc32(std::span<const std::byte>(out).subspan(
      sizeof(SnapshotHeader)));
  put(0, &header, sizeof(header));
  return out;
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  std::vector<std::byte> bytes = Serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + tmp);
  }
  std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("snapshot write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename snapshot into place: " + path);
  }
  return Status::OK();
}

Result<SnapshotView> SnapshotView::Parse(std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(SnapshotHeader)) {
    return Status::DataLoss("snapshot smaller than its header (" +
                           std::to_string(bytes.size()) + " bytes)");
  }
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::ParseError("bad snapshot magic (not a dimqr snapshot)");
  }
  if (header.version != kSnapshotVersion) {
    return Status::ParseError(
        "unsupported snapshot version " + std::to_string(header.version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        "); regenerate with dimqr_snapshot pack");
  }
  if (header.file_size != bytes.size()) {
    return Status::DataLoss("snapshot size mismatch: header says " +
                           std::to_string(header.file_size) + ", mapping is " +
                           std::to_string(bytes.size()) + " bytes");
  }
  if (Crc32(bytes.subspan(sizeof(SnapshotHeader))) != header.crc32) {
    return Status::DataLoss("snapshot CRC mismatch (corrupt or torn file)");
  }
  const std::size_t table_bytes =
      static_cast<std::size_t>(header.section_count) * sizeof(SectionEntry);
  if (bytes.size() - sizeof(SnapshotHeader) < table_bytes) {
    return Status::DataLoss("snapshot section table out of bounds");
  }
  std::span<const SectionEntry> entries(
      reinterpret_cast<const SectionEntry*>(bytes.data() +
                                            sizeof(SnapshotHeader)),
      header.section_count);
  for (const SectionEntry& e : entries) {
    if (e.name_offset > bytes.size() ||
        bytes.size() - e.name_offset < e.name_length) {
      return Status::DataLoss("snapshot section name out of bounds");
    }
    if (e.payload_offset % kSectionAlign != 0) {
      return Status::DataLoss("snapshot section payload misaligned (offset " +
                             std::to_string(e.payload_offset) + ")");
    }
    if (e.payload_offset > bytes.size() ||
        bytes.size() - e.payload_offset < e.payload_size) {
      return Status::DataLoss("snapshot section payload out of bounds");
    }
  }
  SnapshotView view;
  view.bytes_ = bytes;
  view.entries_ = entries;
  return view;
}

bool SnapshotView::Has(std::string_view name) const {
  for (const SectionEntry& e : entries_) {
    std::string_view entry_name(
        reinterpret_cast<const char*>(bytes_.data() + e.name_offset),
        e.name_length);
    if (entry_name == name) return true;
  }
  return false;
}

Result<std::span<const std::byte>> SnapshotView::Section(
    std::string_view name) const {
  for (const SectionEntry& e : entries_) {
    std::string_view entry_name(
        reinterpret_cast<const char*>(bytes_.data() + e.name_offset),
        e.name_length);
    if (entry_name == name) {
      return bytes_.subspan(e.payload_offset, e.payload_size);
    }
  }
  return Status::NotFound("snapshot has no section '" + std::string(name) +
                          "'");
}

std::vector<std::string_view> SnapshotView::SectionNames() const {
  std::vector<std::string_view> names;
  names.reserve(entries_.size());
  for (const SectionEntry& e : entries_) {
    names.emplace_back(
        reinterpret_cast<const char*>(bytes_.data() + e.name_offset),
        e.name_length);
  }
  return names;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

Result<MappedFile> MappedFile::Map(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  if (st.st_size == 0) {
    ::close(fd);
    return Status::DataLoss("empty file (truncated snapshot?): " + path);
  }
  // MAP_SHARED read-only: concurrently launched processes mapping the same
  // snapshot share one set of physical pages (the multi-process cold-start
  // story); MAP_PRIVATE would still share until a write, but the mapping is
  // PROT_READ so there is nothing to CoW — SHARED states the intent.
  int flags = MAP_SHARED;
#ifdef MAP_POPULATE
  // Prefault the whole file in one kernel pass: the CRC check walks every
  // page anyway, and batched population is far cheaper than ~file_size/4K
  // individual soft faults.
  flags |= MAP_POPULATE;
#endif
  void* data = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                      PROT_READ, flags, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path + ": " +
                           std::strerror(errno));
  }
  MappedFile file;
  file.data_ = data;
  file.size_ = static_cast<std::size_t>(st.st_size);
  return file;
}

Result<std::shared_ptr<const Snapshot>> Snapshot::Map(
    const std::string& path) {
  DIMQR_ASSIGN_OR_RETURN(MappedFile mapping, MappedFile::Map(path));
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->path_ = path;
  snap->mapping_ = std::move(mapping);
  DIMQR_ASSIGN_OR_RETURN(snap->view_,
                         SnapshotView::Parse(snap->mapping_.bytes()));
  return std::shared_ptr<const Snapshot>(snap);
}

Result<std::shared_ptr<const Snapshot>> Snapshot::FromBytes(
    std::vector<std::byte> bytes) {
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->owned_ = std::move(bytes);
  DIMQR_ASSIGN_OR_RETURN(
      snap->view_, SnapshotView::Parse(std::span<const std::byte>(
                       snap->owned_)));
  return std::shared_ptr<const Snapshot>(snap);
}

}  // namespace dimqr::snapshot
