#ifndef DIMQR_CORE_QUANTITY_H_
#define DIMQR_CORE_QUANTITY_H_

#include <optional>
#include <ostream>
#include <string>

#include "core/dimension.h"
#include "core/rational.h"
#include "core/status.h"

/// \file quantity.h
/// Grounded values (quantities) and unit semantics.
///
/// Following Section I of the paper: an *abstract value* is a bare number; a
/// *grounded value* — a quantity — couples a numerical part with a unit part.
/// Core code does not know about the knowledge base; it works with
/// `UnitSemantics`, the physical meaning of a unit (dimension + mapping to
/// the coherent SI unit of that dimension). kb::DimUnitKB resolves unit names
/// into UnitSemantics.

namespace dimqr {

/// \brief The physical semantics of a unit: its dimension and the affine map
/// to the coherent SI unit of that dimension.
///
/// A value v in this unit equals `v * scale + offset` in SI terms. `offset`
/// is non-zero only for affine temperature units (degree Celsius/Fahrenheit).
/// `exact_scale` carries the scale as an exact rational when one exists
/// (inch = 127/5000 m); irrational scales (degree = pi/180 rad) leave it
/// empty and rely on the double.
struct UnitSemantics {
  Dimension dimension;
  double scale = 1.0;
  std::optional<Rational> exact_scale = Rational(1);
  double offset = 0.0;
  /// Human-readable label used when formatting quantities ("km/h").
  std::string label;

  /// \brief A dimensionless, scale-1 unit (pure number).
  static UnitSemantics Dimensionless();

  /// \brief The coherent SI unit of a dimension (scale 1, offset 0).
  static UnitSemantics SiCoherent(const Dimension& dim, std::string label = "");

  /// \brief A linear unit: `dim`, scale given exactly.
  static UnitSemantics Linear(const Dimension& dim, const Rational& scale,
                              std::string label = "");

  /// \brief A linear unit with a scale that has no exact rational form.
  static UnitSemantics LinearInexact(const Dimension& dim, double scale,
                                     std::string label = "");

  /// \brief An affine unit (temperatures): si = v * scale + offset.
  static UnitSemantics Affine(const Dimension& dim, const Rational& scale,
                              double offset, std::string label = "");

  bool IsAffine() const { return offset != 0.0; }

  /// \brief Product of two unit semantics (u1*u2). Fails on affine operands
  /// (multiplying Celsius by anything is ill-defined) or exponent overflow.
  Result<UnitSemantics> Times(const UnitSemantics& other) const;

  /// \brief Quotient (u1/u2); same affine restriction.
  Result<UnitSemantics> Over(const UnitSemantics& other) const;

  /// \brief Integer power (u^k); same affine restriction.
  Result<UnitSemantics> Power(int k) const;

  /// \brief The factor beta such that 1 of this unit equals beta of `target`
  /// (Definition 8: u1 * beta = u2 form). Fails with DimensionMismatch when
  /// the dimensions differ, or InvalidArgument for affine units (which need
  /// a full value conversion, not a single factor).
  Result<double> ConversionFactorTo(const UnitSemantics& target) const;

  /// \brief Exact conversion factor, when both scales are exact.
  Result<Rational> ExactConversionFactorTo(const UnitSemantics& target) const;
};

/// \brief A quantity: numerical value + unit (Section II-A, Table I).
class Quantity {
 public:
  /// A dimensionless zero.
  Quantity() : value_(0.0), unit_(UnitSemantics::Dimensionless()) {}

  /// A value in the given unit.
  Quantity(double value, UnitSemantics unit)
      : value_(value), unit_(std::move(unit)) {}

  double value() const { return value_; }
  const UnitSemantics& unit() const { return unit_; }
  const Dimension& dimension() const { return unit_.dimension; }

  /// The value expressed in the coherent SI unit of its dimension.
  double SiValue() const { return value_ * unit_.scale + unit_.offset; }

  /// \brief This quantity re-expressed in `target` units.
  /// Fails with DimensionMismatch when dimensions differ. Affine units are
  /// handled with the full affine map (Celsius -> Fahrenheit works).
  Result<Quantity> ConvertTo(const UnitSemantics& target) const;

  /// \brief Dimension-law arithmetic (Section III-A4): addition and
  /// subtraction require identical dimensions; the result takes the left
  /// operand's unit.
  Result<Quantity> Add(const Quantity& other) const;
  Result<Quantity> Sub(const Quantity& other) const;

  /// \brief Multiplication/division combine dimensions; affine operands fail.
  Result<Quantity> Mul(const Quantity& other) const;
  Result<Quantity> Div(const Quantity& other) const;

  /// \brief Three-way comparison under the dimension law. Returns -1/0/+1,
  /// or DimensionMismatch when the dimensions are not comparable.
  Result<int> Compare(const Quantity& other) const;

  /// "2.5 km/h" (uses the unit label; bare number when dimensionless).
  std::string ToString() const;

 private:
  double value_;
  UnitSemantics unit_;
};

std::ostream& operator<<(std::ostream& os, const Quantity& q);

}  // namespace dimqr

#endif  // DIMQR_CORE_QUANTITY_H_
