#include "core/proc.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <optional>

#include "core/parallel.h"

namespace dimqr::proc {
namespace {

/// Wall-clock milliseconds on a monotonic clock. Worker death and hangs
/// are wall-clock phenomena; the simulated tick clock the serving layer
/// uses cannot observe them.
std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Upper bound on a frame payload; anything larger is a protocol bug, not
/// a legitimate shard result.
constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t{1} << 30;

Status WriteAll(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  while (size > 0) {
    ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("fleet pipe write failed: ") +
                             std::strerror(errno));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Everything the child does between fork() and _exit(). Never returns:
/// returning would unwind into the parent's (duplicated) call stack —
/// gtest bookkeeping, atexit handlers — none of which belongs to this
/// process.
[[noreturn]] void RunChild(int write_fd, int shard, int attempt,
                           int heartbeat_interval_ms, const ShardBody& body) {
#ifdef __linux__
  // Die with the supervisor: an orphaned worker grinding on after its
  // parent is gone is exactly the stray process run_benches.sh traps for.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  // The parent's global thread pool did not survive the fork (its worker
  // threads are not cloned); a fresh serial override guarantees the body's
  // ParallelFor loops never touch it. The child stays single-threaded,
  // which is also what keeps forking legal under TSan.
  ScopedParallelism serial(1);
  WorkerChannel channel(write_fd, static_cast<std::uint32_t>(shard),
                        static_cast<std::uint32_t>(attempt),
                        heartbeat_interval_ms);
  (void)channel.SendHello();
  ShardContext ctx;
  ctx.shard = shard;
  ctx.attempt = attempt;
  ctx.channel = &channel;
  Result<std::vector<std::byte>> result = body(ctx);
  if (result.ok()) {
    (void)channel.SendDone(*result);
  } else {
    (void)channel.SendFailed(result.status());
  }
  ::_exit(0);
}

/// Decodes a kShardFailed payload (u32 status code + message bytes) back
/// into the body's original Status.
Status DecodeFailure(std::span<const std::byte> payload) {
  if (payload.size() < sizeof(std::uint32_t)) {
    return Status::Internal("fleet worker reported an unreadable failure");
  }
  std::uint32_t code = 0;
  std::memcpy(&code, payload.data(), sizeof(code));
  std::string message(
      reinterpret_cast<const char*>(payload.data()) + sizeof(code),
      payload.size() - sizeof(code));
  return Status(static_cast<StatusCode>(code), std::move(message));
}

/// One worker slot's supervision state.
struct Slot {
  pid_t pid = -1;
  int fd = -1;            ///< Read end of the worker's pipe.
  int shard = -1;
  bool done = false;      ///< kShardDone received.
  bool killed = false;    ///< Supervisor SIGKILLed it (hang).
  std::vector<std::byte> payload;
  /// Set when the worker reported a permanent failure (kShardFailed).
  std::optional<Status> failed;
  std::int64_t last_seen_ms = 0;
  FrameBuffer frames;

  bool running() const { return pid >= 0; }
};

}  // namespace

void FrameBuffer::Append(std::span<const std::byte> bytes) {
  // Compact lazily so long streams of heartbeats do not grow the buffer.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<bool> FrameBuffer::Next(Frame* out) {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < sizeof(FrameHeader)) return false;
  FrameHeader header;
  std::memcpy(&header, buffer_.data() + consumed_, sizeof(header));
  if (header.magic != kFrameMagic) {
    return Status::Internal("fleet protocol error: bad frame magic");
  }
  if (header.payload_size > kMaxPayloadBytes) {
    return Status::Internal("fleet protocol error: implausible payload of " +
                            std::to_string(header.payload_size) + " bytes");
  }
  if (available - sizeof(header) < header.payload_size) return false;
  out->type = static_cast<FrameType>(header.type);
  out->shard = header.shard;
  out->attempt = header.attempt;
  const std::byte* begin = buffer_.data() + consumed_ + sizeof(header);
  out->payload.assign(begin, begin + header.payload_size);
  consumed_ += sizeof(header) + header.payload_size;
  return true;
}

Status WriteFrame(int fd, FrameType type, std::uint32_t shard,
                  std::uint32_t attempt, std::span<const std::byte> payload) {
  FrameHeader header;
  header.magic = kFrameMagic;
  header.type = static_cast<std::uint32_t>(type);
  header.shard = shard;
  header.attempt = attempt;
  header.payload_size = payload.size();
  DIMQR_RETURN_NOT_OK(WriteAll(fd, &header, sizeof(header)));
  if (!payload.empty()) {
    DIMQR_RETURN_NOT_OK(WriteAll(fd, payload.data(), payload.size()));
  }
  return Status::OK();
}

WorkerChannel::WorkerChannel(int fd, std::uint32_t shard,
                             std::uint32_t attempt,
                             int heartbeat_interval_ms)
    : fd_(fd),
      shard_(shard),
      attempt_(attempt),
      heartbeat_interval_ms_(std::max(1, heartbeat_interval_ms)) {}

void WorkerChannel::Beat() {
  std::int64_t now = NowMs();
  if (last_beat_ms_ >= 0 && now - last_beat_ms_ < heartbeat_interval_ms_) {
    return;
  }
  last_beat_ms_ = now;
  // Best-effort: a dead supervisor means this process is moments from
  // SIGKILL (PDEATHSIG) anyway.
  (void)WriteFrame(fd_, FrameType::kHeartbeat, shard_, attempt_, {});
}

Status WorkerChannel::SendHello() {
  last_beat_ms_ = NowMs();
  return WriteFrame(fd_, FrameType::kHello, shard_, attempt_, {});
}

Status WorkerChannel::SendDone(std::span<const std::byte> payload) {
  return WriteFrame(fd_, FrameType::kShardDone, shard_, attempt_, payload);
}

Status WorkerChannel::SendFailed(const Status& status) {
  std::vector<std::byte> payload(sizeof(std::uint32_t) +
                                 status.message().size());
  const auto code = static_cast<std::uint32_t>(status.code());
  std::memcpy(payload.data(), &code, sizeof(code));
  std::memcpy(payload.data() + sizeof(code), status.message().data(),
              status.message().size());
  return WriteFrame(fd_, FrameType::kShardFailed, shard_, attempt_, payload);
}

int BackoffDelayMs(int crashes, const SupervisorOptions& options) {
  std::int64_t delay = std::max(1, options.backoff_initial_ms);
  for (int i = 1; i < crashes && delay < options.backoff_max_ms; ++i) {
    delay *= 2;
  }
  return static_cast<int>(
      std::min<std::int64_t>(delay, std::max(1, options.backoff_max_ms)));
}

std::string FleetReport::Summary() const {
  std::string out = "workers=" + std::to_string(num_workers);
  out += " shards=" + std::to_string(num_shards);
  out += " crashes=" + std::to_string(crashes);
  out += " restarts=" + std::to_string(restarts);
  out += " reassignments=" + std::to_string(reassignments);
  out += " heartbeat_timeouts=" + std::to_string(heartbeat_timeouts);
  return out;
}

Result<FleetReport> RunShards(int num_shards, const ShardBody& body,
                              const SupervisorOptions& options) {
  if (num_shards < 0) {
    return Status::InvalidArgument("num_shards must be >= 0");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (!body) {
    return Status::InvalidArgument("shard body must be callable");
  }
  const int num_workers = options.num_workers;
  const int crash_budget = std::max(1, options.crash_budget_per_worker);

  FleetReport report;
  report.num_shards = num_shards;
  report.num_workers = num_workers;
  report.outcomes.resize(static_cast<std::size_t>(num_shards));
  if (num_shards == 0) return report;

  std::vector<Slot> slots(static_cast<std::size_t>(num_workers));
  std::deque<int> pending;
  for (int s = 0; s < num_shards; ++s) pending.push_back(s);
  // Per-shard supervision state. `attempts[s]` counts crashes so far: it is
  // the `attempt` index handed to the child, which the crash fault kinds
  // gate on — the source of deterministic, terminating chaos.
  std::vector<int> attempts(static_cast<std::size_t>(num_shards), 0);
  std::vector<std::int64_t> not_before_ms(static_cast<std::size_t>(num_shards),
                                          0);
  std::vector<int> last_slot(static_cast<std::size_t>(num_shards), -1);
  // crashes_on[s][w]: how often shard s crashed while assigned to slot w.
  std::vector<std::vector<int>> crashes_on(
      static_cast<std::size_t>(num_shards),
      std::vector<int>(static_cast<std::size_t>(num_workers), 0));
  int completed = 0;

  auto reap_all = [&slots]() {
    for (Slot& slot : slots) {
      if (!slot.running()) continue;
      ::kill(slot.pid, SIGKILL);
      int wstatus = 0;
      while (::waitpid(slot.pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
      ::close(slot.fd);
      slot.pid = -1;
      slot.fd = -1;
    }
  };

  auto spawn = [&](int slot_index, int shard) -> Status {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      return Status::IOError(std::string("fleet pipe failed: ") +
                             std::strerror(errno));
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return Status::IOError(std::string("fleet fork failed: ") +
                             std::strerror(errno));
    }
    if (pid == 0) {
      // Child: drop every inherited supervision fd except our write end,
      // so a sibling's EOF is delivered the moment that sibling dies.
      ::close(pipe_fds[0]);
      for (const Slot& other : slots) {
        if (other.fd >= 0) ::close(other.fd);
      }
      RunChild(pipe_fds[1], shard, attempts[static_cast<std::size_t>(shard)],
               options.heartbeat_interval_ms, body);
    }
    ::close(pipe_fds[1]);
    int flags = ::fcntl(pipe_fds[0], F_GETFL, 0);
    (void)::fcntl(pipe_fds[0], F_SETFL, flags | O_NONBLOCK);
    Slot& slot = slots[static_cast<std::size_t>(slot_index)];
    slot = Slot{};
    slot.pid = pid;
    slot.fd = pipe_fds[0];
    slot.shard = shard;
    slot.last_seen_ms = NowMs();
    if (attempts[static_cast<std::size_t>(shard)] > 0) {
      ++report.restarts;
      int prev = last_slot[static_cast<std::size_t>(shard)];
      if (prev >= 0 && prev != slot_index) ++report.reassignments;
    }
    last_slot[static_cast<std::size_t>(shard)] = slot_index;
    return Status::OK();
  };

  // Reaps one exited worker and classifies the exit: result received =
  // success; permanent failure reported = run error; anything else = crash
  // (including supervisor-initiated hang kills).
  auto handle_exit = [&](int slot_index) -> Status {
    Slot& slot = slots[static_cast<std::size_t>(slot_index)];
    int wstatus = 0;
    while (::waitpid(slot.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    ::close(slot.fd);
    const int shard = slot.shard;
    const bool done = slot.done;
    const bool permanent = slot.failed.has_value();
    Status failure = permanent ? *slot.failed : Status::OK();
    std::vector<std::byte> payload = std::move(slot.payload);
    slot = Slot{};

    if (permanent) return failure;
    const auto shard_index = static_cast<std::size_t>(shard);
    if (done) {
      ShardOutcome& outcome = report.outcomes[shard_index];
      outcome.shard = shard;
      outcome.attempts = attempts[shard_index] + 1;
      outcome.payload = std::move(payload);
      ++completed;
      return Status::OK();
    }
    // Crash. Schedule the retry with exponential backoff; the per-slot
    // budget below decides whether the same slot may host it again.
    ++report.crashes;
    if (report.crashes > static_cast<std::uint64_t>(
                             std::max(1, options.max_total_crashes))) {
      return Status::Internal(
          "fleet exceeded max_total_crashes (" +
          std::to_string(options.max_total_crashes) +
          "): shard " + std::to_string(shard) + " crashed last");
    }
    ++attempts[shard_index];
    ++crashes_on[shard_index][static_cast<std::size_t>(slot_index)];
    not_before_ms[shard_index] =
        NowMs() + BackoffDelayMs(attempts[shard_index], options);
    pending.push_back(shard);
    return Status::OK();
  };

  auto fail_run = [&](Status status) -> Result<FleetReport> {
    reap_all();
    return status;
  };

  while (completed < num_shards) {
    std::int64_t now = NowMs();

    // Assign pending shards to idle slots. A slot may host a shard only
    // while the shard's crash count on that slot is under budget; a shard
    // under budget on *no* slot has exhausted the fleet.
    for (int w = 0; w < num_workers && !pending.empty(); ++w) {
      Slot& slot = slots[static_cast<std::size_t>(w)];
      if (slot.running()) continue;
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        const auto shard_index = static_cast<std::size_t>(*it);
        if (now < not_before_ms[shard_index]) continue;
        if (crashes_on[shard_index][static_cast<std::size_t>(w)] >=
            crash_budget) {
          continue;
        }
        int shard = *it;
        pending.erase(it);
        Status spawned = spawn(w, shard);
        if (!spawned.ok()) return fail_run(spawned);
        break;
      }
    }

    // A pending shard with no admissible slot anywhere (not merely busy or
    // backing off) can never run again: fail fast instead of spinning.
    for (int shard : pending) {
      const auto shard_index = static_cast<std::size_t>(shard);
      bool admissible = false;
      for (int w = 0; w < num_workers; ++w) {
        if (crashes_on[shard_index][static_cast<std::size_t>(w)] <
            crash_budget) {
          admissible = true;
          break;
        }
      }
      if (!admissible) {
        return fail_run(Status::Internal(
            "shard " + std::to_string(shard) +
            " exhausted its crash budget on every worker (" +
            std::to_string(attempts[shard_index]) + " crashes)"));
      }
    }

    // Poll every live pipe, bounded so backoff releases and heartbeat
    // deadlines are honored promptly.
    std::vector<struct pollfd> fds;
    std::vector<int> fd_slot;
    for (int w = 0; w < num_workers; ++w) {
      const Slot& slot = slots[static_cast<std::size_t>(w)];
      if (!slot.running()) continue;
      fds.push_back({slot.fd, POLLIN, 0});
      fd_slot.push_back(w);
    }
    int timeout_ms = 50;
    for (int shard : pending) {
      const std::int64_t release = not_before_ms[static_cast<std::size_t>(
          shard)];
      if (release > now) {
        timeout_ms = std::min<int>(
            timeout_ms, static_cast<int>(std::max<std::int64_t>(
                            1, release - now)));
      } else {
        timeout_ms = 1;  // Assignable right now; come back immediately.
      }
    }
    int ready = ::poll(fds.empty() ? nullptr : fds.data(),
                       static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      return fail_run(Status::IOError(std::string("fleet poll failed: ") +
                                      std::strerror(errno)));
    }

    now = NowMs();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int w = fd_slot[i];
      Slot& slot = slots[static_cast<std::size_t>(w)];
      if (!slot.running()) continue;
      bool eof = false;
      std::byte buffer[4096];
      while (true) {
        ssize_t n = ::read(slot.fd, buffer, sizeof(buffer));
        if (n > 0) {
          slot.last_seen_ms = now;
          slot.frames.Append(std::span<const std::byte>(
              buffer, static_cast<std::size_t>(n)));
          continue;
        }
        if (n == 0) {
          eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof = true;  // Unexpected pipe error: treat as worker death.
        break;
      }
      Frame frame;
      while (true) {
        Result<bool> next = slot.frames.Next(&frame);
        if (!next.ok()) return fail_run(next.status());
        if (!*next) break;
        switch (frame.type) {
          case FrameType::kHello:
          case FrameType::kHeartbeat:
            break;  // Liveness was refreshed by the read above.
          case FrameType::kShardDone:
            slot.done = true;
            slot.payload = std::move(frame.payload);
            break;
          case FrameType::kShardFailed:
            slot.failed = DecodeFailure(frame.payload);
            break;
        }
      }
      if (eof) {
        Status handled = handle_exit(w);
        if (!handled.ok()) return fail_run(handled);
      }
    }

    // Hang detection: a worker silent past the deadline is SIGKILLed here;
    // the EOF that follows takes the normal crash path above.
    for (int w = 0; w < num_workers; ++w) {
      Slot& slot = slots[static_cast<std::size_t>(w)];
      if (!slot.running() || slot.killed) continue;
      if (now - slot.last_seen_ms > options.heartbeat_timeout_ms) {
        ::kill(slot.pid, SIGKILL);
        slot.killed = true;
        ++report.heartbeat_timeouts;
      }
    }
  }

  return report;
}

}  // namespace dimqr::proc
