#include "core/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/rng.h"

namespace dimqr {
namespace {

/// Default `after_n` per kind (see the file comment in fault.h).
int DefaultAfterN(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient:
      return 2;
    case FaultKind::kLatency:
      return 8;
    case FaultKind::kSigkill:
    case FaultKind::kExit:
      // One crash per affected call by default: the shard's first retry
      // gets past it, so every chaos run terminates.
      return 1;
    default:
      return 0;
  }
}

Result<FaultKind> ParseKind(std::string_view word) {
  if (word == "transient") return FaultKind::kTransient;
  if (word == "permanent") return FaultKind::kPermanent;
  if (word == "latency") return FaultKind::kLatency;
  if (word == "garbled") return FaultKind::kGarbled;
  if (word == "sigkill") return FaultKind::kSigkill;
  if (word == "exit") return FaultKind::kExit;
  return Status::ParseError("unknown fault kind '" + std::string(word) +
                            "' (expected transient|permanent|latency|"
                            "garbled|sigkill|exit)");
}

/// Registered FAULT_POINT names. Guarded by its own mutex: registration
/// happens at first use of each site, possibly from worker threads.
std::mutex& SiteNamesMutex() {
  static std::mutex* const kMutex = new std::mutex();
  return *kMutex;
}
std::vector<std::string>& SiteNames() {
  static std::vector<std::string>* const kNames =
      new std::vector<std::string>();
  return *kNames;
}

}  // namespace

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kPermanent:
      return "permanent";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kGarbled:
      return "garbled";
    case FaultKind::kSigkill:
      return "sigkill";
    case FaultKind::kExit:
      return "exit";
  }
  return "unknown";
}

FaultRegistry& FaultRegistry::Global() {
  // Leaked on purpose (same convention as GlobalPool): fault points may be
  // evaluated from static destructors.
  static FaultRegistry* const kRegistry = [] {
    auto* registry = new FaultRegistry();
    if (const char* env = std::getenv("DIMQR_FAULTS")) {
      registry->ApplyEnvSpecOrDie(env);
    }
    return registry;
  }();
  return *kRegistry;
}

void FaultRegistry::ApplyEnvSpecOrDie(const char* spec) {
  Status st = Configure(spec == nullptr ? "" : spec);
  if (!st.ok()) {
    // Fatal by design: silently dropping a chaos spec would let a faulted
    // run masquerade as a clean one.
    std::fprintf(stderr, "dimqr: fatal: invalid DIMQR_FAULTS spec: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
}

Status FaultRegistry::Configure(std::string_view spec) {
  auto parsed = std::make_shared<SpecMap>();
  std::size_t pos = 0;
  while (pos <= spec.size() && !spec.empty()) {
    std::size_t comma = spec.find(',', pos);
    std::string_view entry = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;

    // site:prob:kind[:after_n]
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= entry.size(); ++i) {
      if (i == entry.size() || entry[i] == ':') {
        fields.push_back(entry.substr(start, i - start));
        start = i + 1;
      }
    }
    if (fields.size() < 3 || fields.size() > 4) {
      return Status::ParseError("fault entry '" + std::string(entry) +
                                "' is not site:prob:kind[:after_n]");
    }
    if (fields[0].empty()) {
      return Status::ParseError("fault entry '" + std::string(entry) +
                                "' has an empty site name");
    }

    std::string prob_text(fields[1]);
    char* end = nullptr;
    double probability = std::strtod(prob_text.c_str(), &end);
    if (end != prob_text.c_str() + prob_text.size() || probability < 0.0 ||
        probability > 1.0) {
      return Status::ParseError("fault probability '" + prob_text +
                                "' is not a number in [0, 1]");
    }

    DIMQR_ASSIGN_OR_RETURN(FaultKind kind, ParseKind(fields[2]));

    FaultSpec fault;
    fault.probability = probability;
    fault.kind = kind;
    fault.after_n = DefaultAfterN(kind);
    if (fields.size() == 4) {
      std::string after_text(fields[3]);
      char* after_end = nullptr;
      long after_n = std::strtol(after_text.c_str(), &after_end, 10);
      if (after_end != after_text.c_str() + after_text.size() ||
          after_n < 1 || after_n > 1'000'000) {
        return Status::ParseError("fault after_n '" + after_text +
                                  "' is not a positive integer");
      }
      fault.after_n = static_cast<int>(after_n);
    }
    (*parsed)[std::string(fields[0])] = fault;
  }

  std::lock_guard<std::mutex> lock(mu_);
  active_.store(!parsed->empty(), std::memory_order_release);
  specs_ = std::move(parsed);
  return Status::OK();
}

void FaultRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.store(false, std::memory_order_release);
  specs_.reset();
}

std::shared_ptr<const FaultRegistry::SpecMap> FaultRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return specs_;
}

FaultDecision FaultRegistry::Evaluate(std::string_view site,
                                      std::uint64_t instance_seed,
                                      int attempt) const {
  std::shared_ptr<const SpecMap> specs = Snapshot();
  if (specs == nullptr) return {};
  auto it = specs->find(site);
  if (it == specs->end()) return {};
  const FaultSpec& fault = it->second;

  // Whether this *instance* is affected is drawn once from a seed that
  // mixes the site name into the instance seed; the attempt index then only
  // gates recovery. Pure in (site, instance_seed, attempt) by construction.
  Rng rng(Rng::DeriveSeed(Rng::DeriveSeed(instance_seed, site),
                          "fault-point"));
  if (!rng.Bernoulli(fault.probability)) return {};

  FaultDecision decision;
  switch (fault.kind) {
    case FaultKind::kTransient:
      if (attempt < fault.after_n) decision.kind = FaultKind::kTransient;
      break;
    case FaultKind::kPermanent:
      decision.kind = FaultKind::kPermanent;
      break;
    case FaultKind::kLatency:
      decision.kind = FaultKind::kLatency;
      decision.latency_ticks =
          static_cast<int>(rng.UniformInt(1, fault.after_n));
      break;
    case FaultKind::kGarbled:
      decision.kind = FaultKind::kGarbled;
      break;
    case FaultKind::kSigkill:
    case FaultKind::kExit:
      // Crash kinds gate on the attempt index exactly like transient: the
      // supervisor passes the shard's crash count as `attempt`, so an
      // affected call kills its process after_n times, then proceeds.
      if (attempt < fault.after_n) decision.kind = fault.kind;
      break;
    case FaultKind::kNone:
      break;
  }
  return decision;
}

std::vector<std::string> FaultRegistry::ConfiguredSites() const {
  std::vector<std::string> out;
  std::shared_ptr<const SpecMap> specs = Snapshot();
  if (specs == nullptr) return out;
  out.reserve(specs->size());
  for (const auto& [site, fault] : *specs) out.push_back(site);
  return out;
}

std::vector<std::string> FaultRegistry::KnownSites() {
  std::lock_guard<std::mutex> lock(SiteNamesMutex());
  std::vector<std::string> out = SiteNames();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

FaultSite::FaultSite(const char* name) : name_(name) {
  std::lock_guard<std::mutex> lock(SiteNamesMutex());
  SiteNames().emplace_back(name);
}

}  // namespace dimqr
