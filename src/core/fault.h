#ifndef DIMQR_CORE_FAULT_H_
#define DIMQR_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

/// \file fault.h
/// Deterministic fault injection. A process-wide registry of named
/// injection sites lets the resilience layer (lm/resilient_model.h) and
/// the chaos tests simulate flaky backends — transient unavailability,
/// permanent errors, latency spikes and garbled responses — without any
/// real network in the loop.
///
/// Determinism contract: whether a site fires for a given call is a pure
/// function of (site name, instance_seed, attempt index), derived with
/// `Rng::DeriveSeed`. It never depends on wall-clock time, thread identity
/// or call order, so the same faults hit the same instances at any
/// `DIMQR_THREADS` setting — the property the chaos suite asserts.
///
/// Configuration comes from the `DIMQR_FAULTS` environment variable (or
/// `FaultRegistry::Configure` in tests): a comma-separated list of
/// `site:prob:kind[:after_n]` entries, e.g.:
///
///   DIMQR_FAULTS="lm.answer_choice:0.2:transient,lm.answer_text:1:permanent"
///
/// `prob` in [0,1] is the fraction of instances the fault affects (drawn
/// once per (site, instance)). `kind` is one of:
///   - transient: attempts 0..after_n-1 of an affected call fail with
///     kUnavailable, attempt after_n succeeds (default after_n = 2). With a
///     retry budget > after_n, every transient fault recovers, which is what
///     makes the faulted run byte-identical to the clean one.
///   - permanent: every attempt of an affected call fails with kInternal.
///   - latency: affected attempts cost 1..after_n extra simulated clock
///     ticks (default after_n = 8); no failure unless the caller enforces a
///     deadline.
///   - garbled: the backend "responds" but the payload is corrupted; the
///     caller substitutes a deterministically garbled answer.
///   - sigkill: the *process* hosting the call dies mid-work — the caller
///     (a fleet worker; see core/proc.h) raises SIGKILL on itself, so the
///     supervisor sees a hard crash with no cleanup. Gated like transient:
///     attempts 0..after_n-1 of an affected call kill, attempt after_n
///     proceeds (default after_n = 1), so a crashed shard's retry makes
///     progress and the run still terminates.
///   - exit: like sigkill but via _exit(1) — a worker that dies "politely"
///     (closes its pipe via process teardown) without reporting a result.

namespace dimqr {

/// \brief What a configured fault does when it fires.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kTransient,  ///< Retryable kUnavailable failure, bounded per instance.
  kPermanent,  ///< Non-retryable kInternal failure on every attempt.
  kLatency,    ///< Extra simulated clock ticks; success otherwise.
  kGarbled,    ///< Success with a corrupted payload.
  kSigkill,    ///< Host process raises SIGKILL on itself (fleet chaos).
  kExit,       ///< Host process _exit(1)s without reporting (fleet chaos).
};

/// Human-readable kind name ("transient", ...).
std::string_view FaultKindToString(FaultKind kind);

/// \brief One site's configuration, parsed from `site:prob:kind[:after_n]`.
struct FaultSpec {
  double probability = 0.0;
  FaultKind kind = FaultKind::kNone;
  /// kTransient/kSigkill/kExit: number of leading attempts that fail (or
  /// kill the process) per affected call. kLatency: maximum ticks added per
  /// affected attempt. Unused otherwise.
  int after_n = 0;
};

/// \brief The outcome of evaluating a site for one (instance, attempt).
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  int latency_ticks = 0;  ///< Set for kLatency.
  bool Fires() const { return kind != FaultKind::kNone; }
};

/// \brief The process-wide registry of fault configurations.
///
/// Configure/Clear are for startup and tests (not concurrent with parallel
/// evaluation); Evaluate is safe to call from any thread and is wait-free
/// against concurrent Configure via a swapped immutable snapshot.
class FaultRegistry {
 public:
  /// The singleton, configured from `DIMQR_FAULTS` on first access. A parse
  /// failure is fatal (see ApplyEnvSpecOrDie): a chaos run whose fault spec
  /// was silently dropped would pass as a clean run, which is exactly the
  /// false confidence fault injection exists to prevent.
  static FaultRegistry& Global();

  /// \brief Applies an environment-provided spec to this registry, aborting
  /// the process with the parse error on stderr when the spec is malformed.
  /// Factored out of Global() so the fatal path stays testable.
  void ApplyEnvSpecOrDie(const char* spec);

  /// \brief Replaces the configuration with the parsed `spec`
  /// ("site:prob:kind[:after_n][,...]"). An empty spec clears. Strict: any
  /// malformed entry rejects the whole spec and leaves the previous
  /// configuration in place.
  Status Configure(std::string_view spec);

  /// Removes all configured faults.
  void Clear();

  /// True iff any site is configured; the fast-path check callers use to
  /// skip fault bookkeeping entirely on clean runs.
  bool Active() const { return active_.load(std::memory_order_acquire); }

  /// \brief The deterministic fire/no-fire decision for one call attempt.
  /// Pure in (site, instance_seed, attempt); see the file comment.
  FaultDecision Evaluate(std::string_view site, std::uint64_t instance_seed,
                         int attempt) const;

  /// Sites currently configured, sorted.
  std::vector<std::string> ConfiguredSites() const;

  /// Every site name that has registered a FAULT_POINT so far (sorted,
  /// deduplicated). Diagnostic aid for spotting typos in DIMQR_FAULTS.
  static std::vector<std::string> KnownSites();

 private:
  using SpecMap = std::map<std::string, FaultSpec, std::less<>>;

  FaultRegistry() = default;
  std::shared_ptr<const SpecMap> Snapshot() const;

  mutable std::mutex mu_;
  std::shared_ptr<const SpecMap> specs_;
  std::atomic<bool> active_{false};
};

/// \brief A named injection site. Construct through FAULT_POINT so the name
/// is registered for diagnostics; Evaluate forwards to the global registry.
class FaultSite {
 public:
  explicit FaultSite(const char* name);

  const char* name() const { return name_; }

  /// The decision for this site on (instance_seed, attempt). Returns a
  /// no-fire decision immediately when no faults are configured.
  FaultDecision Evaluate(std::uint64_t instance_seed, int attempt = 0) const {
    FaultRegistry& registry = FaultRegistry::Global();
    if (!registry.Active()) return {};
    return registry.Evaluate(name_, instance_seed, attempt);
  }

 private:
  const char* name_;
};

/// \brief Names an injection site in code: evaluates to a reference to a
/// function-local static FaultSite, registered once per site on first use.
///
///   FaultDecision d = FAULT_POINT("lm.answer_choice").Evaluate(seed, n);
#define FAULT_POINT(site_literal)                        \
  ([]() -> const ::dimqr::FaultSite& {                   \
    static const ::dimqr::FaultSite kFaultSite{          \
        site_literal};                                   \
    return kFaultSite;                                   \
  }())

}  // namespace dimqr

#endif  // DIMQR_CORE_FAULT_H_
