#ifndef DIMQR_CORE_STATUS_H_
#define DIMQR_CORE_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

/// \file status.h
/// Arrow-style Status / Result<T> error handling.
///
/// The dimqr library does not throw exceptions across its public API.
/// Fallible operations return a `Status` (when there is no payload) or a
/// `Result<T>` (a Status or a value). Both are cheap to move and carry an
/// error code plus a human-readable message.

namespace dimqr {

/// \brief Machine-readable classification of an error.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied a malformed or out-of-range input.
  kNotFound,          ///< A lookup (unit, kind, key) had no match.
  kAlreadyExists,     ///< An insert collided with an existing key.
  kOutOfRange,        ///< Arithmetic overflow or index out of bounds.
  kParseError,        ///< Text could not be parsed into the requested form.
  kDimensionMismatch, ///< A dimension-law violation (add/compare across dims).
  kIOError,           ///< Filesystem or serialization failure.
  kInternal,          ///< Invariant violation inside the library.
  kUnavailable,       ///< Transient backend failure; safe to retry.
  kDeadlineExceeded,  ///< A (simulated) deadline elapsed; safe to retry.
  kDataLoss,          ///< Stored data is corrupt (bad CRC, torn record).
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief True for the codes a resilient caller may retry (the failure is a
/// property of the attempt, not of the request): kUnavailable and
/// kDeadlineExceeded. Everything else — including kInternal — is permanent:
/// retrying the same request can only fail the same way.
constexpr bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

/// \brief The outcome of a fallible operation with no payload.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are value types: copyable, movable, comparable on code.
/// Marked [[nodiscard]]: silently dropping a Status return hides failures,
/// so every call site must consume (or explicitly void-cast) it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \brief Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DimensionMismatch(std::string msg) {
    return Status(StatusCode::kDimensionMismatch, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result aborts,
/// so callers must check `ok()` first (or use `ValueOr`).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Aborts if `status.ok()`:
  /// an OK status carries no value and would leave the Result empty.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      Abort("Result constructed from OK status");
    }
  }

  /// True iff this result holds a value.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The held value. Aborts if this result is an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::get<T>(std::move(payload_));
  }

  /// Shorthand for ValueOrDie, matching arrow::Result.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// The held value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) Abort(std::get<Status>(payload_).ToString());
  }
  [[noreturn]] static void Abort(const std::string& why);

  std::variant<Status, T> payload_;
};

/// \brief Familiar spelling for a Status-or-value return (absl/grpc idiom);
/// exactly Result<T>.
template <typename T>
using StatusOr = Result<T>;

namespace internal {
[[noreturn]] void AbortWithMessage(const std::string& why);
}  // namespace internal

template <typename T>
void Result<T>::Abort(const std::string& why) {
  internal::AbortWithMessage(why);
}

/// Propagates an error Status from a fallible expression.
#define DIMQR_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::dimqr::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define DIMQR_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto DIMQR_CONCAT_(_res_, __LINE__) = (rexpr);  \
  if (!DIMQR_CONCAT_(_res_, __LINE__).ok())       \
    return DIMQR_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(DIMQR_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define DIMQR_CONCAT_IMPL_(a, b) a##b
#define DIMQR_CONCAT_(a, b) DIMQR_CONCAT_IMPL_(a, b)

}  // namespace dimqr

#endif  // DIMQR_CORE_STATUS_H_
