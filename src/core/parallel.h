#ifndef DIMQR_CORE_PARALLEL_H_
#define DIMQR_CORE_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/status.h"

/// \file parallel.h
/// Deterministic data parallelism. A fixed-size thread pool runs index-chunked
/// loops whose results are bit-for-bit identical at any thread count:
///
///  - Chunk boundaries are a pure function of the trip count `n` and the
///    requested grain — never of the pool size — so the order in which floats
///    are accumulated inside a chunk, and the order in which per-chunk
///    partials are folded together, is fixed once `n` is fixed.
///  - `ParallelMapReduce` folds per-chunk partials sequentially in chunk-index
///    order after all chunks finish; only the *scheduling* of chunks onto
///    threads varies between runs, never any arithmetic.
///  - Randomized chunk bodies derive an independent stream per chunk (or per
///    item) with `Rng::SplitSeed`, so draws do not depend on which thread ran
///    which chunk.
///
/// Errors follow the repo convention: chunk bodies return `Status`, the pool
/// never lets an exception escape a worker (it is converted to an Internal
/// status at the pool boundary), and when several chunks fail the status of
/// the lowest-indexed failing chunk is returned. By default all scheduled
/// chunks run to completion even after a failure, so side effects and error
/// reporting stay deterministic; `CancelMode::kCancelOnPermanentError` opts
/// a loop into cooperative cancellation instead (see below).
namespace dimqr {

/// \brief What a parallel loop does with not-yet-started chunks once a
/// chunk has failed.
///
/// kRunAll (the default) runs everything: side effects and error reporting
/// are identical at every thread count. kCancelOnPermanentError skips any
/// chunk whose index is *greater* than the lowest-indexed chunk that failed
/// with a non-retryable status (`!IsRetryable(code)`); retryable failures
/// (kUnavailable, kDeadlineExceeded) never cancel. Because only
/// higher-indexed chunks are skipped, the lowest-indexed-failure rule is
/// preserved exactly — cancellation can change *which side effects happen*
/// (skipped chunks never run, and that set depends on scheduling), never
/// which status is returned. Use it only where the loop's output is
/// discarded on failure anyway (e.g. a doomed evaluation task).
enum class CancelMode : std::uint8_t {
  kRunAll = 0,
  kCancelOnPermanentError,
};

/// \brief A fixed-size pool of worker threads executing indexed task sets.
///
/// A pool of size `t` owns `t - 1` background workers; the thread that calls
/// Run() participates as the t-th executor, so a pool of size 1 spawns no
/// threads at all and Run() degenerates to a serial loop on the caller.
/// Run() may be called repeatedly (the workers persist), but not
/// concurrently from multiple threads.
class ThreadPool {
 public:
  /// Creates a pool of the given size (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Joins all workers. Must not be called while a Run() is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executor count (background workers + the calling thread).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// \brief Invokes `task(i)` for every i in [0, num_tasks), distributing
  /// indices across the pool; blocks until all of them have run.
  ///
  /// Tasks are claimed dynamically (any thread may run any index), so the
  /// bodies must only write to index-addressed slots. Returns the status of
  /// the lowest-indexed failing task, or OK. In kCancelOnPermanentError
  /// mode, tasks above the lowest non-retryable failure are skipped.
  Status Run(int num_tasks, const std::function<Status(int)>& task,
             CancelMode cancel_mode = CancelMode::kRunAll);

 private:
  void WorkerLoop();
  /// Claims and runs tasks from the current job until none remain.
  void DrainTasks(const std::function<Status(int)>& task, int total,
                  CancelMode cancel_mode);
  /// Runs one task, converting any escaped exception into a Status.
  static Status RunOneTask(const std::function<Status(int)>& task, int index);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Signals workers: new job or shutdown.
  std::condition_variable done_cv_;  ///< Signals Run(): all tasks completed.
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // State of the in-flight job. `generation_`, `job_`, and `job_total_` are
  // guarded by mu_; task claiming and completion counting are lock-free.
  std::uint64_t generation_ = 0;
  const std::function<Status(int)>* job_ = nullptr;
  int job_total_ = 0;
  CancelMode job_cancel_mode_ = CancelMode::kRunAll;
  std::atomic<int> next_task_{0};
  std::atomic<int> completed_{0};
  /// Lowest index that failed non-retryably in the current job; tasks above
  /// it are skipped when the job runs in kCancelOnPermanentError mode.
  std::atomic<int> cancel_above_{0};
  /// Workers currently inside DrainTasks (guarded by mu_). Run() waits for
  /// this to reach zero before resetting job state, so no stale worker can
  /// claim an index from a later job.
  int active_drainers_ = 0;

  // First (lowest-index) error observed in the current job.
  std::mutex err_mu_;
  int err_index_ = 0;
  Status err_status_;
};

/// \brief The process-wide pool used by ParallelFor / ParallelMapReduce.
///
/// Sized once, lazily, from the `DIMQR_THREADS` environment variable: unset
/// or "1" means serial execution (today's behavior), "0" means
/// `std::thread::hardware_concurrency()`, any other positive value is the
/// pool size. See ScopedParallelism for a per-scope override.
ThreadPool& GlobalPool();

/// The size of the pool ParallelFor will use (honoring any active override).
int ParallelThreadCount();

/// \brief RAII override of the global pool size, for tests and benchmarks
/// that sweep thread counts within one process.
///
/// Not thread-safe: construct and destroy only on the main thread, with no
/// parallel loop in flight. Overrides nest (the previous override is
/// restored on destruction).
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int threads);
  ~ScopedParallelism();

  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  std::optional<ThreadPool> pool_;
  ThreadPool* previous_;
};

/// \brief The default chunk grain for a loop of `n` iterations: splits the
/// range into at most 64 chunks. A pure function of `n` — deliberately
/// independent of the pool size, so chunk boundaries (and therefore float
/// accumulation order) never change with `DIMQR_THREADS`.
std::int64_t DefaultGrain(std::int64_t n);

/// Number of chunks a range of `n` items splits into at the given grain.
inline int NumChunks(std::int64_t n, std::int64_t grain) {
  return n <= 0 ? 0 : static_cast<int>((n + grain - 1) / grain);
}

/// \brief Runs `body(begin, end, chunk)` over disjoint subranges covering
/// [0, n), in parallel on the global pool.
///
/// `grain` is the maximum chunk length; pass 0 for DefaultGrain(n). Chunk
/// `c` covers [c*grain, min(n, (c+1)*grain)). Returns the status of the
/// lowest-indexed failing chunk, or OK. `cancel_mode` controls whether
/// chunks above a permanent (non-retryable) failure still run; see
/// CancelMode.
Status ParallelFor(
    std::int64_t n,
    const std::function<Status(std::int64_t begin, std::int64_t end,
                               int chunk)>& body,
    std::int64_t grain = 0, CancelMode cancel_mode = CancelMode::kRunAll);

/// \brief Map-reduce with deterministic, index-ordered reduction.
///
/// `map(begin, end, chunk) -> Result<T>` computes a partial value per chunk;
/// after every chunk finishes, `reduce(acc, std::move(partial))` folds the
/// partials into `init` sequentially in ascending chunk order. Because chunk
/// boundaries depend only on `n` and `grain`, the full sequence of arithmetic
/// operations — and hence any floating-point result — is identical at every
/// thread count. Returns the first (lowest-chunk) error if any map fails.
template <typename T, typename Map, typename Reduce>
Result<T> ParallelMapReduce(std::int64_t n, T init, Map&& map, Reduce&& reduce,
                            std::int64_t grain = 0) {
  if (n <= 0) return init;
  if (grain <= 0) grain = DefaultGrain(n);
  const int chunks = NumChunks(n, grain);
  std::vector<std::optional<T>> partials(static_cast<std::size_t>(chunks));
  Status st = ParallelFor(
      n,
      [&](std::int64_t begin, std::int64_t end, int chunk) -> Status {
        Result<T> r = map(begin, end, chunk);
        if (!r.ok()) return r.status();
        partials[static_cast<std::size_t>(chunk)].emplace(
            std::move(r).ValueOrDie());
        return Status::OK();
      },
      grain);
  if (!st.ok()) return st;
  T acc = std::move(init);
  for (auto& partial : partials) reduce(acc, std::move(*partial));
  return acc;
}

}  // namespace dimqr

#endif  // DIMQR_CORE_PARALLEL_H_
