#include "core/rng.h"

#include <algorithm>
#include <numeric>

namespace dimqr {

std::uint64_t Rng::DeriveSeed(std::uint64_t parent, std::string_view label) {
  // FNV-1a over the label, mixed with the parent seed via splitmix64.
  std::uint64_t h = 14695981039346656037ULL ^ parent;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::uint64_t Rng::SplitSeed(std::uint64_t parent, std::uint64_t stream) {
  // Golden-ratio sequence keyed by the stream index, mixed with the parent
  // through the splitmix64 finalizer (same mixer as DeriveSeed).
  std::uint64_t h = parent ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return 0;
  double draw = UniformReal(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (draw < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::SampleIndices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  Shuffle(all);
  all.resize(std::min(n, k));
  return all;
}

}  // namespace dimqr
