#ifndef DIMQR_CORE_DIMENSION_H_
#define DIMQR_CORE_DIMENSION_H_

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "core/status.h"

/// \file dimension.h
/// Dimension vectors per Section II-A / Table III of the paper.
///
/// Every quantity q has a dimensional formula
///   dim(q) = L^a M^b H^g E^s T^e A^z I^n
/// over the seven SI base quantities. DimUnitKB additionally records a
/// pseudo-axis D that flags dimensionless units, giving the vector form
/// "A0E0L0I0M1H0T-2D0" used throughout the paper. Here D is derived: a
/// dimension is dimensionless iff all seven physical exponents are zero.

namespace dimqr {

/// \brief Index of each base dimension inside Dimension's exponent array.
///
/// The array order follows the paper's vector form "A.E.L.I.M.H.T.D"
/// (Table III row order), minus the derived D axis.
enum class BaseDim : std::uint8_t {
  kAmountOfSubstance = 0,  ///< A — mole
  kElectricCurrent = 1,    ///< E — ampere
  kLength = 2,             ///< L — metre
  kLuminousIntensity = 3,  ///< I — candela
  kMass = 4,               ///< M — kilogram
  kTemperature = 5,        ///< H — kelvin
  kTime = 6,               ///< T — second
};

/// Number of physical base dimensions (excludes the derived D flag).
inline constexpr int kNumBaseDims = 7;

/// The single-letter symbol of a base dimension ('A','E','L','I','M','H','T').
char BaseDimSymbol(BaseDim dim);

/// The fundamental quantity name, e.g. "Length" for BaseDim::kLength.
std::string_view BaseDimQuantityName(BaseDim dim);

/// The SI base unit name, e.g. "metre" for BaseDim::kLength.
std::string_view BaseDimUnitName(BaseDim dim);

/// The SI base unit symbol, e.g. "m" for BaseDim::kLength.
std::string_view BaseDimUnitSymbol(BaseDim dim);

/// \brief A dimension vector: seven integer exponents over the SI base
/// quantities.
///
/// Value type with group structure: dimensions multiply by adding exponents
/// (Times), divide by subtracting (Over), and raise to integer powers.
/// Exponents are int8 and arithmetic is saturating-checked: operations that
/// would leave the int8 range return OutOfRange.
class Dimension {
 public:
  /// The dimensionless dimension (all exponents zero).
  constexpr Dimension() : exp_{} {}

  /// \brief A dimension with a single base exponent, e.g. Base(kLength) == L.
  static Dimension Base(BaseDim dim, int exponent = 1);

  /// \brief Builds a dimension from all seven exponents in paper vector order
  /// (A, E, L, I, M, H, T). Returns OutOfRange if any exponent exceeds int8.
  static Result<Dimension> FromExponents(const std::array<int, kNumBaseDims>& e);

  /// \brief Parses the KB vector form, e.g. "A0E0L1I0M1H0T-2D0".
  ///
  /// The trailing D component is validated against the seven physical
  /// exponents (D1 requires all-zero, D0 requires at least one non-zero) and
  /// may be omitted. Returns ParseError on malformed input.
  static Result<Dimension> ParseVectorForm(std::string_view text);

  /// \brief Parses a compact formula like "LMT-2", "L3T-1", or "M T^-2".
  ///
  /// Accepts optional '^' before exponents and optional whitespace between
  /// factors. Returns ParseError on malformed input.
  static Result<Dimension> ParseFormula(std::string_view text);

  /// The exponent of one base dimension.
  int exponent(BaseDim dim) const {
    return exp_[static_cast<std::size_t>(dim)];
  }

  /// True iff all seven exponents are zero (the paper's D axis).
  bool IsDimensionless() const;

  /// \brief Product of dimensions: exponents add. dim(u1*u2).
  Result<Dimension> Times(const Dimension& other) const;

  /// \brief Quotient of dimensions: exponents subtract. dim(u1/u2).
  Result<Dimension> Over(const Dimension& other) const;

  /// \brief Integer power: exponents scale. dim(u^k).
  Result<Dimension> Power(int k) const;

  /// The inverse dimension (all exponents negated).
  Dimension Inverse() const;

  /// \brief The Dimension Law predicate: two quantities are comparable
  /// (addable, subtractable, orderable) iff their dimensions are equal.
  bool ComparableWith(const Dimension& other) const { return *this == other; }

  /// \brief The KB vector form, e.g. "A0E0L1I0M1H0T-2D0" (always includes D).
  std::string ToVectorForm() const;

  /// \brief The compact formula in the paper's order L M H E T A I,
  /// e.g. "LMT-2"; "D" for the dimensionless dimension.
  std::string ToFormula() const;

  /// \brief A 64-bit key unique per dimension (8 bits per exponent, biased).
  /// Equal keys iff equal dimensions; used for hashing and O(1)
  /// comparable-analysis.
  std::uint64_t PackedKey() const;

  friend bool operator==(const Dimension& a, const Dimension& b) {
    return a.exp_ == b.exp_;
  }
  friend bool operator!=(const Dimension& a, const Dimension& b) {
    return !(a == b);
  }
  /// Arbitrary-but-total order (by packed key) for use in ordered containers.
  friend bool operator<(const Dimension& a, const Dimension& b) {
    return a.PackedKey() < b.PackedKey();
  }

 private:
  std::array<std::int8_t, kNumBaseDims> exp_;
};

std::ostream& operator<<(std::ostream& os, const Dimension& d);

/// \brief Hash functor for Dimension (usable with std::unordered_map).
struct DimensionHash {
  std::size_t operator()(const Dimension& d) const {
    // splitmix64 finalizer over the packed key.
    std::uint64_t x = d.PackedKey() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

namespace dims {
/// Convenience constructors for the dimensions used across the library.
Dimension Dimensionless();
Dimension Length();
Dimension Mass();
Dimension Time();
Dimension Current();
Dimension Temperature();
Dimension Amount();
Dimension LuminousIntensity();
Dimension Area();          ///< L^2
Dimension Volume();        ///< L^3
Dimension Velocity();      ///< L T^-1
Dimension Acceleration();  ///< L T^-2
Dimension Force();         ///< L M T^-2
Dimension Pressure();      ///< L^-1 M T^-2
Dimension Energy();        ///< L^2 M T^-2
Dimension Power();         ///< L^2 M T^-3
Dimension Frequency();     ///< T^-1
Dimension Density();       ///< L^-3 M
Dimension VolumeFlowRate();///< L^3 T^-1
Dimension ForcePerLength();///< M T^-2
}  // namespace dims

}  // namespace dimqr

#endif  // DIMQR_CORE_DIMENSION_H_
