#ifndef DIMQR_CORE_INTERNER_H_
#define DIMQR_CORE_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <span>
#include <string_view>
#include <vector>

#include "core/snapshot.h"
#include "core/status.h"

/// \file interner.h
/// The identity layer: dense 32-bit handles for the entities the hot
/// annotate → link → evaluate path keeps re-identifying by string.
///
/// A SymbolTable interns strings into consecutive ids starting at 1 (0 is
/// the invalid sentinel), storing all bytes in one arena so lookups never
/// allocate and `Str()` returns stable views. Typed wrappers (`UnitId`,
/// `KindId`, `SurfaceId`) keep the three id spaces from mixing at compile
/// time; `IdMap`/`IdSet` are the flat-vector replacements for
/// `unordered_map<std::string, …>` keyed containers.
///
/// Zero-copy persistence: SymbolTable and PostingsIndex are flat by
/// construction (one char arena + POD span/offset arrays), so both can be
/// dumped into a snapshot arena (`WriteTo`) and re-materialized as *views
/// over the mapping* (`FromArena`) without copying or re-hashing a single
/// byte. A view-backed table answers lookups through the serialized
/// buckets; mutating it (Intern of a new symbol) first detaches into owned
/// storage. See core/snapshot.h.

namespace dimqr {

/// \brief A dense 32-bit handle. `Tag` separates id spaces; the value 0 is
/// the invalid sentinel, valid handles are 1..N and `index()` maps them to
/// the 0-based dense range for flat-array addressing.
template <typename Tag>
struct Id32 {
  std::uint32_t value = 0;

  constexpr Id32() = default;
  constexpr explicit Id32(std::uint32_t v) : value(v) {}

  /// The handle for dense index `i` (inverse of index()).
  static constexpr Id32 FromIndex(std::size_t i) {
    return Id32(static_cast<std::uint32_t>(i) + 1);
  }

  constexpr bool valid() const { return value != 0; }
  /// 0-based dense index; only meaningful when valid().
  constexpr std::uint32_t index() const { return value - 1; }

  friend constexpr bool operator==(Id32 a, Id32 b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id32 a, Id32 b) { return a.value != b.value; }
  friend constexpr bool operator<(Id32 a, Id32 b) { return a.value < b.value; }
  friend std::ostream& operator<<(std::ostream& os, Id32 id) {
    return os << id.value;
  }
};

struct UnitIdTag;
struct KindIdTag;
struct SurfaceIdTag;

/// Handle of a unit record: catalog position + 1 in its DimUnitKB.
using UnitId = Id32<UnitIdTag>;
/// Handle of a quantity kind (registry position + 1 for registered kinds).
using KindId = Id32<KindIdTag>;
/// Handle of an interned surface form.
using SurfaceId = Id32<SurfaceIdTag>;

/// \brief Interns strings into dense ids (1..N, 0 invalid). Append-only;
/// lookups are allocation-free and safe from concurrent readers once no
/// writer is active (DimUnitKB freezes its tables after construction).
///
/// Storage model: reads always go through spans. For a table built by
/// Intern the spans alias this object's own vectors; for a table loaded
/// from a snapshot they alias the mapping (zero-copy). Copying a table
/// deep-copies owned storage but shares a borrowed backing.
class SymbolTable {
 public:
  /// \brief One symbol's location in the arena (fixed-width POD — part of
  /// the serialized layout).
  struct Span {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  SymbolTable();
  SymbolTable(const SymbolTable& other) { *this = other; }
  SymbolTable& operator=(const SymbolTable& other);
  SymbolTable(SymbolTable&& other) noexcept { *this = std::move(other); }
  SymbolTable& operator=(SymbolTable&& other) noexcept;

  /// The id of `s`, interning it first if new. Ids are assigned in first-
  /// insertion order and never change. Detaches a borrowed table.
  std::uint32_t Intern(std::string_view s);

  /// The id of `s`, or 0 when it was never interned. Never allocates.
  std::uint32_t Lookup(std::string_view s) const;

  /// The string of a valid id (arena- or mapping-backed view, stable for
  /// the backing's lifetime). The invalid id 0 yields an empty view.
  std::string_view Str(std::uint32_t id) const {
    if (id == 0 || id > spans_v_.size()) return {};
    const Span& span = spans_v_[id - 1];
    return std::string_view(arena_v_.data() + span.offset, span.length);
  }

  /// Number of interned symbols (valid ids are 1..size()).
  std::size_t size() const { return spans_v_.size(); }

  /// True when reads alias external bytes (a snapshot mapping) rather than
  /// this object's own vectors.
  bool borrowed() const { return spans_v_.data() != spans_.data(); }

  /// Appends arena, span, and bucket arrays to a snapshot arena.
  void WriteTo(snapshot::ArenaWriter& writer) const;

  /// \brief Re-materializes a table whose reads alias `reader`'s bytes.
  /// The backing mapping must outlive the returned table.
  static dimqr::Result<SymbolTable> FromArena(snapshot::ArenaReader& reader);

 private:
  static std::uint64_t Hash(std::string_view s);
  void Rehash(std::size_t min_buckets);
  /// Copies a borrowed backing into owned vectors (before mutation).
  void Detach();
  void Reseat() {
    arena_v_ = arena_;
    spans_v_ = spans_;
    buckets_v_ = buckets_;
  }

  // Owned storage (empty while borrowed from a snapshot mapping).
  std::vector<char> arena_;   ///< All symbol bytes, concatenated.
  std::vector<Span> spans_;   ///< spans_[id-1] locates symbol `id`.
  /// Open-addressing index over spans_: bucket -> symbol id (0 = empty).
  std::vector<std::uint32_t> buckets_;

  // Read-side views; alias the vectors above or a snapshot mapping.
  std::span<const char> arena_v_;
  std::span<const Span> spans_v_;
  std::span<const std::uint32_t> buckets_v_;
};

/// \brief Typed overloads so call sites read as `table.Str(surface_id)`.
template <typename Tag>
std::string_view StrOf(const SymbolTable& table, Id32<Tag> id) {
  return table.Str(id.value);
}

/// \brief A flat map keyed by a dense handle: a vector addressed by
/// `id.index()`. Missing keys read as value-initialized `T`.
template <typename Id, typename T>
class IdMap {
 public:
  IdMap() = default;
  explicit IdMap(std::size_t n) : values_(n) {}

  void ResizeForCount(std::size_t n) { values_.resize(n); }

  T& operator[](Id id) {
    if (id.index() >= values_.size()) values_.resize(id.index() + 1);
    return values_[id.index()];
  }
  const T& at(Id id) const { return values_[id.index()]; }
  /// Missing-tolerant read: value-initialized T when out of range.
  T Get(Id id) const {
    return id.valid() && id.index() < values_.size() ? values_[id.index()]
                                                     : T{};
  }
  std::size_t size() const { return values_.size(); }
  std::span<const T> values() const { return values_; }

 private:
  std::vector<T> values_;
};

/// \brief A flat bitset over dense handles; the allocation-light
/// replacement for `unordered_set` of ids/strings.
template <typename Id>
class IdSet {
 public:
  /// Inserts `id`; true when newly inserted.
  bool insert(Id id) {
    std::size_t word = id.index() >> 6;
    if (word >= bits_.size()) bits_.resize(word + 1, 0);
    std::uint64_t mask = std::uint64_t{1} << (id.index() & 63);
    if (bits_[word] & mask) return false;
    bits_[word] |= mask;
    ++count_;
    return true;
  }
  bool contains(Id id) const {
    std::size_t word = id.index() >> 6;
    return word < bits_.size() &&
           (bits_[word] & (std::uint64_t{1} << (id.index() & 63))) != 0;
  }
  std::size_t size() const { return count_; }
  void clear() {
    bits_.clear();
    count_ = 0;
  }

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t count_ = 0;
};

/// \brief A CSR-style postings index: for each key handle, a contiguous
/// span of value handles. Built once from (key, value) pairs; lookups are
/// one offset subtraction and never allocate. Like SymbolTable, reads go
/// through spans that alias either owned vectors or a snapshot mapping.
template <typename Key, typename Value>
class PostingsIndex {
 public:
  static_assert(std::is_trivially_copyable_v<Value>,
                "postings must be flat PODs (snapshot-aliasable)");

  PostingsIndex() = default;
  PostingsIndex(const PostingsIndex& other) { *this = other; }
  PostingsIndex& operator=(const PostingsIndex& other) {
    if (this == &other) return *this;
    offsets_ = other.offsets_;
    postings_ = other.postings_;
    if (other.borrowed()) {
      offsets_v_ = other.offsets_v_;
      postings_v_ = other.postings_v_;
    } else {
      Reseat();
    }
    return *this;
  }
  PostingsIndex(PostingsIndex&& other) noexcept { *this = std::move(other); }
  PostingsIndex& operator=(PostingsIndex&& other) noexcept {
    if (this == &other) return *this;
    bool was_borrowed = other.borrowed();
    offsets_v_ = other.offsets_v_;
    postings_v_ = other.postings_v_;
    offsets_ = std::move(other.offsets_);
    postings_ = std::move(other.postings_);
    if (!was_borrowed) Reseat();  // vector move keeps heap buffers, but be explicit
    other.offsets_.clear();
    other.postings_.clear();
    other.Reseat();
    return *this;
  }

  /// Builds from per-key buckets: `buckets[i]` holds the postings of the
  /// key with dense index `i`, already in the desired order.
  static PostingsIndex FromBuckets(
      const std::vector<std::vector<Value>>& buckets) {
    PostingsIndex index;
    index.offsets_.reserve(buckets.size() + 1);
    index.offsets_.push_back(0);
    std::size_t total = 0;
    for (const auto& bucket : buckets) total += bucket.size();
    index.postings_.reserve(total);
    for (const auto& bucket : buckets) {
      index.postings_.insert(index.postings_.end(), bucket.begin(),
                             bucket.end());
      index.offsets_.push_back(
          static_cast<std::uint32_t>(index.postings_.size()));
    }
    index.Reseat();
    return index;
  }

  /// The postings of `key`; empty for invalid/unknown keys.
  std::span<const Value> operator[](Key key) const {
    if (!key.valid() || key.index() + 1 >= offsets_v_.size()) return {};
    return std::span<const Value>(
        postings_v_.data() + offsets_v_[key.index()],
        offsets_v_[key.index() + 1] - offsets_v_[key.index()]);
  }

  std::size_t num_keys() const {
    return offsets_v_.empty() ? 0 : offsets_v_.size() - 1;
  }

  bool borrowed() const { return offsets_v_.data() != offsets_.data(); }

  /// Appends offset and posting arrays to a snapshot arena.
  void WriteTo(snapshot::ArenaWriter& writer) const {
    writer.PutArray(offsets_v_);
    writer.PutArray(postings_v_);
  }

  /// Re-materializes an index whose reads alias `reader`'s bytes.
  static dimqr::Result<PostingsIndex> FromArena(
      snapshot::ArenaReader& reader) {
    PostingsIndex index;
    DIMQR_ASSIGN_OR_RETURN(index.offsets_v_,
                           reader.template GetArray<std::uint32_t>());
    DIMQR_ASSIGN_OR_RETURN(index.postings_v_,
                           reader.template GetArray<Value>());
    // Structural sanity: offsets must be monotone and end at postings size,
    // so a corrupt file cannot index out of the postings span.
    const auto& offs = index.offsets_v_;
    for (std::size_t i = 0; i + 1 < offs.size(); ++i) {
      if (offs[i] > offs[i + 1]) {
        return Status::IOError("postings offsets not monotone in snapshot");
      }
    }
    if (!offs.empty() && offs.back() != index.postings_v_.size()) {
      return Status::IOError("postings offsets inconsistent with postings");
    }
    if (!offs.empty() && offs.front() != 0) {
      return Status::IOError("postings offsets must start at 0");
    }
    return index;
  }

 private:
  void Reseat() {
    offsets_v_ = offsets_;
    postings_v_ = postings_;
  }

  std::vector<std::uint32_t> offsets_;  ///< num_keys + 1 boundaries.
  std::vector<Value> postings_;         ///< Concatenated posting lists.
  std::span<const std::uint32_t> offsets_v_;
  std::span<const Value> postings_v_;
};

}  // namespace dimqr

#endif  // DIMQR_CORE_INTERNER_H_
