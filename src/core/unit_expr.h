#ifndef DIMQR_CORE_UNIT_EXPR_H_
#define DIMQR_CORE_UNIT_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/quantity.h"
#include "core/status.h"

/// \file unit_expr.h
/// Arithmetic expressions of units — F_c in Table I ("Joule x Meter").
///
/// Grammar (left-associative, '^' binds tightest):
///   expr   := term (('*' | 'x' | '/' | 'per') term)*
///   term   := factor ('^' integer)?
///   factor := unit-name | '(' expr ')'
/// Unit names are resolved through a caller-supplied resolver, so this module
/// stays independent of the knowledge base.

namespace dimqr {

/// \brief Maps a unit name/symbol to its semantics. Returns NotFound for
/// unknown names.
using UnitResolver =
    std::function<Result<UnitSemantics>(std::string_view name)>;

/// \brief A parsed unit expression tree.
class UnitExpr {
 public:
  enum class Kind { kUnit, kTimes, kOver, kPower };

  /// \brief Parses an expression like "joule * metre" or "m/s^2".
  ///
  /// Multiplication may be written '*', 'x' (letter), or U+00D7; division
  /// '/', the word "per", or U+00F7. Returns ParseError on malformed input.
  static Result<UnitExpr> Parse(std::string_view text);

  Kind kind() const { return kind_; }

  /// For kUnit nodes: the unit name as written.
  const std::string& unit_name() const { return name_; }

  /// For kPower nodes: the integer exponent.
  int exponent() const { return exponent_; }

  /// Child nodes (2 for kTimes/kOver, 1 for kPower, 0 for kUnit).
  const std::vector<UnitExpr>& children() const { return children_; }

  /// \brief Evaluates the expression to combined unit semantics (dimension +
  /// conversion scale) using `resolver` for the leaves.
  Result<UnitSemantics> Evaluate(const UnitResolver& resolver) const;

  /// \brief Evaluates only the dimension of the expression — the Dimension
  /// Arithmetic task (Definition 6) needs dim(E).
  Result<Dimension> EvaluateDimension(const UnitResolver& resolver) const;

  /// The names of all leaf units, left to right.
  std::vector<std::string> LeafUnits() const;

  /// Round-trippable text form, e.g. "(joule*metre)/second^2".
  std::string ToString() const;

 private:
  UnitExpr() = default;

  Kind kind_ = Kind::kUnit;
  std::string name_;
  int exponent_ = 1;
  std::vector<UnitExpr> children_;

  friend class UnitExprParser;
};

}  // namespace dimqr

#endif  // DIMQR_CORE_UNIT_EXPR_H_
