#include "core/quantity.h"

#include <cmath>
#include <sstream>

namespace dimqr {
namespace {

std::string ComposedLabel(const std::string& a, const std::string& b,
                          char op) {
  if (a.empty() && b.empty()) return "";
  if (a.empty()) return op == '*' ? b : "1/" + b;
  if (b.empty()) return a;
  return a + op + b;
}

}  // namespace

UnitSemantics UnitSemantics::Dimensionless() {
  UnitSemantics u;
  u.dimension = Dimension();
  return u;
}

UnitSemantics UnitSemantics::SiCoherent(const Dimension& dim,
                                        std::string label) {
  UnitSemantics u;
  u.dimension = dim;
  u.label = std::move(label);
  return u;
}

UnitSemantics UnitSemantics::Linear(const Dimension& dim,
                                    const Rational& scale, std::string label) {
  UnitSemantics u;
  u.dimension = dim;
  u.scale = scale.ToDouble();
  u.exact_scale = scale;
  u.label = std::move(label);
  return u;
}

UnitSemantics UnitSemantics::LinearInexact(const Dimension& dim, double scale,
                                           std::string label) {
  UnitSemantics u;
  u.dimension = dim;
  u.scale = scale;
  u.exact_scale.reset();
  u.label = std::move(label);
  return u;
}

UnitSemantics UnitSemantics::Affine(const Dimension& dim,
                                    const Rational& scale, double offset,
                                    std::string label) {
  UnitSemantics u;
  u.dimension = dim;
  u.scale = scale.ToDouble();
  u.exact_scale = scale;
  u.offset = offset;
  u.label = std::move(label);
  return u;
}

Result<UnitSemantics> UnitSemantics::Times(const UnitSemantics& other) const {
  if (IsAffine() || other.IsAffine()) {
    return Status::InvalidArgument(
        "cannot compose affine units multiplicatively");
  }
  UnitSemantics out;
  DIMQR_ASSIGN_OR_RETURN(out.dimension, dimension.Times(other.dimension));
  out.scale = scale * other.scale;
  if (exact_scale && other.exact_scale) {
    Result<Rational> exact = exact_scale->Mul(*other.exact_scale);
    if (exact.ok()) {
      out.exact_scale = *exact;
    } else {
      out.exact_scale.reset();
    }
  } else {
    out.exact_scale.reset();
  }
  out.label = ComposedLabel(label, other.label, '*');
  return out;
}

Result<UnitSemantics> UnitSemantics::Over(const UnitSemantics& other) const {
  if (IsAffine() || other.IsAffine()) {
    return Status::InvalidArgument(
        "cannot compose affine units multiplicatively");
  }
  if (other.scale == 0.0) {
    return Status::InvalidArgument("unit with zero scale");
  }
  UnitSemantics out;
  DIMQR_ASSIGN_OR_RETURN(out.dimension, dimension.Over(other.dimension));
  out.scale = scale / other.scale;
  if (exact_scale && other.exact_scale) {
    Result<Rational> exact = exact_scale->Div(*other.exact_scale);
    if (exact.ok()) {
      out.exact_scale = *exact;
    } else {
      out.exact_scale.reset();
    }
  } else {
    out.exact_scale.reset();
  }
  out.label = ComposedLabel(label, other.label, '/');
  return out;
}

Result<UnitSemantics> UnitSemantics::Power(int k) const {
  if (IsAffine()) {
    return Status::InvalidArgument("cannot raise an affine unit to a power");
  }
  UnitSemantics out;
  DIMQR_ASSIGN_OR_RETURN(out.dimension, dimension.Power(k));
  out.scale = std::pow(scale, k);
  if (exact_scale) {
    Result<Rational> exact = exact_scale->Pow(k);
    if (exact.ok()) {
      out.exact_scale = *exact;
    } else {
      out.exact_scale.reset();
    }
  } else {
    out.exact_scale.reset();
  }
  if (!label.empty()) {
    out.label = label + "^" + std::to_string(k);
  }
  return out;
}

Result<double> UnitSemantics::ConversionFactorTo(
    const UnitSemantics& target) const {
  if (dimension != target.dimension) {
    return Status::DimensionMismatch("units '" + label + "' (" +
                                     dimension.ToFormula() + ") and '" +
                                     target.label + "' (" +
                                     target.dimension.ToFormula() +
                                     ") are not comparable");
  }
  if (IsAffine() || target.IsAffine()) {
    return Status::InvalidArgument(
        "affine units have no single conversion factor");
  }
  if (target.scale == 0.0) {
    return Status::InvalidArgument("target unit with zero scale");
  }
  return scale / target.scale;
}

Result<Rational> UnitSemantics::ExactConversionFactorTo(
    const UnitSemantics& target) const {
  DIMQR_RETURN_NOT_OK(ConversionFactorTo(target).status());
  if (!exact_scale || !target.exact_scale) {
    return Status::InvalidArgument("conversion factor has no exact form");
  }
  return exact_scale->Div(*target.exact_scale);
}

Result<Quantity> Quantity::ConvertTo(const UnitSemantics& target) const {
  if (dimension() != target.dimension) {
    return Status::DimensionMismatch(
        "cannot convert " + unit_.dimension.ToFormula() + " to " +
        target.dimension.ToFormula());
  }
  if (target.scale == 0.0) {
    return Status::InvalidArgument("target unit with zero scale");
  }
  double si = SiValue();
  double v = (si - target.offset) / target.scale;
  return Quantity(v, target);
}

Result<Quantity> Quantity::Add(const Quantity& other) const {
  if (dimension() != other.dimension()) {
    return Status::DimensionMismatch(
        "dimension law: cannot add " + dimension().ToFormula() + " and " +
        other.dimension().ToFormula());
  }
  DIMQR_ASSIGN_OR_RETURN(Quantity rhs, other.ConvertTo(unit_));
  return Quantity(value_ + rhs.value(), unit_);
}

Result<Quantity> Quantity::Sub(const Quantity& other) const {
  if (dimension() != other.dimension()) {
    return Status::DimensionMismatch(
        "dimension law: cannot subtract " + other.dimension().ToFormula() +
        " from " + dimension().ToFormula());
  }
  DIMQR_ASSIGN_OR_RETURN(Quantity rhs, other.ConvertTo(unit_));
  return Quantity(value_ - rhs.value(), unit_);
}

Result<Quantity> Quantity::Mul(const Quantity& other) const {
  DIMQR_ASSIGN_OR_RETURN(UnitSemantics u, unit_.Times(other.unit()));
  return Quantity(value_ * other.value(), u);
}

Result<Quantity> Quantity::Div(const Quantity& other) const {
  if (other.value() == 0.0) {
    return Status::InvalidArgument("division by a zero quantity");
  }
  DIMQR_ASSIGN_OR_RETURN(UnitSemantics u, unit_.Over(other.unit()));
  return Quantity(value_ / other.value(), u);
}

Result<int> Quantity::Compare(const Quantity& other) const {
  if (dimension() != other.dimension()) {
    return Status::DimensionMismatch(
        "dimension law: cannot compare " + dimension().ToFormula() + " and " +
        other.dimension().ToFormula());
  }
  double a = SiValue();
  double b = other.SiValue();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Quantity::ToString() const {
  std::ostringstream os;
  os << value_;
  if (!unit_.label.empty()) os << ' ' << unit_.label;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Quantity& q) {
  return os << q.ToString();
}

}  // namespace dimqr
