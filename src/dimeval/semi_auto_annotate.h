#ifndef DIMQR_DIMEVAL_SEMI_AUTO_ANNOTATE_H_
#define DIMQR_DIMEVAL_SEMI_AUTO_ANNOTATE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "dimeval/task.h"
#include "linking/annotator.h"
#include "lm/ngram_lm.h"

/// \file semi_auto_annotate.h
/// Algorithm 1 — the semi-automated annotating method (Section IV-C1).
///
///   Step 1: initially annotate the corpus with DimKS (heuristic value
///           extraction + unit linking); keep sentences containing a
///           numeric entity.
///   Step 2: mask each numeric mention and ask a pretrained LM to infer
///           the masked word; drop annotations whose context does not
///           predict a numeric-like token (filters "LPUI-1T" traps).
///   Step 3: manual review — offline, simulated by reconciling against the
///           corpus generator's ground truth (when provided), which also
///           yields the pre-review annotation accuracy the paper reports
///           as 82%.

namespace dimqr::dimeval {

/// \brief One input sentence; `truth` is the generator's gold annotation
/// (empty when unknown — e.g. for externally supplied text).
struct CorpusSentence {
  std::string text;
  std::vector<GoldQuantity> truth;
};

/// \brief One sentence annotated by the pipeline.
struct AnnotatedSentence {
  std::string text;
  std::vector<linking::QuantityAnnotation> annotations;
};

/// \brief Pipeline statistics (the paper quotes "annotation accuracy of
/// 82%" before manual review).
struct SemiAutoStats {
  std::size_t sentences_in = 0;
  std::size_t sentences_with_numeric = 0;   ///< Survivors of step 1.
  std::size_t annotations_initial = 0;      ///< Quantity mentions found.
  std::size_t annotations_after_plm = 0;    ///< Survivors of step 2.
  std::size_t annotations_correct = 0;      ///< Matching ground truth.
  std::size_t truth_total = 0;              ///< Gold quantities available.
  /// Pre-review precision of the automatic annotations vs ground truth
  /// (only meaningful when truth was provided).
  double accuracy = 0.0;
};

/// \brief Algorithm 1 options.
struct SemiAutoOptions {
  /// Minimum numeric likelihood from the masked LM for an annotation to
  /// survive step 2.
  double numeric_threshold = 0.12;
  /// When true, step 3 replaces each surviving sentence's annotations by
  /// ground truth where available (the "manual review" of the paper).
  bool apply_manual_review = true;
};

/// \brief Runs Algorithm 1. Returns the annotated dataset plus stats.
dimqr::Result<std::pair<std::vector<AnnotatedSentence>, SemiAutoStats>>
SemiAutoAnnotate(const std::vector<CorpusSentence>& corpus,
                 const linking::DimKsAnnotator& annotator,
                 const lm::NgramMaskedLm& masked_lm,
                 const SemiAutoOptions& options = {});

/// \brief Generates a quantity-rich synthetic corpus for Algorithm 1:
/// template sentences with known gold quantities, plus distractor
/// sentences containing numeric traps (device codes, years) that a naive
/// annotator would mislabel.
std::vector<CorpusSentence> GenerateQuantityCorpus(const kb::DimUnitKB& kb,
                                                   int n_sentences,
                                                   std::uint64_t seed);

/// \brief Converts annotated sentences into Quantity Extraction task
/// instances (Definition 2).
std::vector<TaskInstance> ToExtractionInstances(
    const std::vector<AnnotatedSentence>& sentences, std::uint64_t seed);

}  // namespace dimqr::dimeval

#endif  // DIMQR_DIMEVAL_SEMI_AUTO_ANNOTATE_H_
