#ifndef DIMQR_DIMEVAL_BENCHMARK_H_
#define DIMQR_DIMEVAL_BENCHMARK_H_

#include <memory>
#include <vector>

#include "core/status.h"
#include "dimeval/bootstrap_retrieval.h"
#include "dimeval/generators.h"
#include "dimeval/semi_auto_annotate.h"
#include "kg/synth_kg.h"
#include "linking/annotator.h"

/// \file benchmark.h
/// Assembly of the full DimEval benchmark: all seven tasks with train/test
/// splits, built end-to-end through the paper's construction pipeline —
/// heuristic generation with DimKS for five tasks, Algorithm 1 for
/// quantity extraction, Algorithm 2 + sentence realization for dimension
/// prediction.

namespace dimqr::dimeval {

/// \brief Benchmark sizes and seeds.
struct BenchmarkOptions {
  int train_per_task = 300;
  int test_per_task = 150;
  int extraction_corpus_sentences = 1400;
  std::uint64_t seed = 20240131;
  GeneratorOptions generator;
  kg::SynthKgOptions synth_kg;
  BootstrapOptions bootstrap;
};

/// \brief The assembled benchmark.
struct DimEvalBenchmark {
  std::vector<TaskInstance> train;
  std::vector<TaskInstance> test;
  SemiAutoStats annotation_stats;     ///< Algorithm 1 trace.
  std::size_t bootstrap_triples = 0;  ///< Algorithm 2 yield.
  std::vector<BootstrapIteration> bootstrap_trace;

  /// Test instances of one task.
  std::vector<const TaskInstance*> TestOf(std::string_view task) const;
  /// Train instances of one task.
  std::vector<const TaskInstance*> TrainOf(std::string_view task) const;
};

/// \brief Builds DimEval. `annotator` supplies DimKS (Algorithm 1 and unit
/// resolution); expensive (dataset generation + Algorithm 2 over the
/// synthetic KG).
dimqr::Result<DimEvalBenchmark> BuildDimEval(
    std::shared_ptr<const kb::DimUnitKB> kb,
    const linking::DimKsAnnotator& annotator,
    const BenchmarkOptions& options = {});

}  // namespace dimqr::dimeval

#endif  // DIMQR_DIMEVAL_BENCHMARK_H_
