#include "dimeval/task.h"

#include "lm/mock_llm.h"

namespace dimqr::dimeval {

TaskCategory CategoryOf(std::string_view task_key) {
  using namespace lm::tasks;
  if (task_key == kComparableAnalysis || task_key == kDimensionPrediction ||
      task_key == kDimensionArithmetic) {
    return TaskCategory::kDimensionPerception;
  }
  if (task_key == kMagnitudeComparison || task_key == kUnitConversion) {
    return TaskCategory::kScalePerception;
  }
  return TaskCategory::kBasicPerception;
}

std::string_view CategoryName(TaskCategory category) {
  switch (category) {
    case TaskCategory::kBasicPerception:
      return "Basic Perception";
    case TaskCategory::kDimensionPerception:
      return "Dimension Perception";
    case TaskCategory::kScalePerception:
      return "Scale Perception";
  }
  return "Basic Perception";
}

const std::vector<std::string>& AllTaskKeys() {
  using namespace lm::tasks;
  static const std::vector<std::string>* const kKeys =
      new std::vector<std::string>{
          kQuantityExtraction, kQuantityKindMatch,  kComparableAnalysis,
          kDimensionPrediction, kDimensionArithmetic, kMagnitudeComparison,
          kUnitConversion};
  return *kKeys;
}

lm::ChoiceQuestion TaskInstance::ToChoiceQuestion() const {
  lm::ChoiceQuestion q;
  q.task = task;
  q.prompt = prompt;
  q.choices = choices;
  q.gold_index = gold_index;
  q.instance_seed = instance_seed;
  return q;
}

}  // namespace dimqr::dimeval
