#include "dimeval/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <set>

#include "core/parallel.h"
#include "kg/realizer.h"
#include "lm/mock_llm.h"
#include "text/string_util.h"

namespace dimqr::dimeval {
namespace {

using dimqr::Result;
using dimqr::Rng;
using dimqr::Status;

constexpr char kLetters[] = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};

std::string FormatFactor(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

/// Lowercased formula string for reasoning text ("l3t-1").
std::string DimWord(const dimqr::Dimension& dim) {
  return text::ToLowerAscii(dim.ToFormula());
}

/// Renders the choice block "| a: x | b: y | ...".
std::string RenderChoices(const std::vector<std::string>& choices) {
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    out += " | ";
    out += kLetters[i];
    out += ": ";
    out += choices[i];
  }
  return out;
}

/// Reasoning suffix enumerating each choice's dimension word:
/// " | a l | b m | c t | d d". Decomposes the relational task into
/// per-unit dimension recall plus token matching (Section IV-D's CoT).
std::string ChoiceDimReasoning(const std::vector<std::string>& choices,
                               const kb::DimUnitKB& kb) {
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    std::span<const UnitId> units = kb.FindBySurface(choices[i]);
    out += " | ";
    out += kLetters[i];
    out += ' ';
    // Name-then-dimension: the model re-reads the choice (induction
    // copying from the prompt) and completes it with the recalled
    // dimension, the same local pattern as the knowledge pairs
    // ("<unit> is <dim>").
    out += text::ToLowerAscii(choices[i]);
    out += " is ";
    out += units.empty() ? "?" : DimWord(kb.Get(units.front()).dimension);
  }
  return out;
}

/// Rounded base-10 exponent token of a unit's conversion scale ("e3",
/// "e-2"); the scale-perception analogue of the dimension word.
std::string ScaleWord(const kb::UnitRecord& unit) {
  int k = static_cast<int>(std::lround(std::log10(unit.conversion_value)));
  return "e" + std::to_string(k);
}

/// \brief Fills `n` task instances in parallel, one RNG stream per slot.
///
/// Slot `i` draws from `Rng::ForStream(task_seed, i)` and retries rejected
/// samples within its own stream (up to `max_attempts`), so every instance
/// is a pure function of (task_seed, slot index) — independent of thread
/// count, chunking, and all other slots.
Result<std::vector<TaskInstance>> GenerateSlots(
    int n, std::uint64_t task_seed, int max_attempts,
    const std::function<bool(Rng&, std::size_t, TaskInstance&)>& attempt,
    const char* what) {
  std::vector<TaskInstance> out(static_cast<std::size_t>(n));
  // Exhausted slots are recorded, not failed mid-loop: every slot runs, so
  // the error (if any) reports exactly how many instances were lost rather
  // than aborting at the first casualty with no count.
  std::vector<std::uint8_t> exhausted(static_cast<std::size_t>(n), 0);
  Status st = ParallelFor(
      n, [&](std::int64_t begin, std::int64_t end, int) -> Status {
        for (std::int64_t i = begin; i < end; ++i) {
          const auto slot = static_cast<std::size_t>(i);
          Rng rng = Rng::ForStream(task_seed, slot);
          bool filled = false;
          for (int a = 0; a < max_attempts && !filled; ++a) {
            filled = attempt(rng, slot, out[slot]);
          }
          if (!filled) exhausted[slot] = 1;
        }
        return Status::OK();
      });
  DIMQR_RETURN_NOT_OK(st);
  int lost = 0;
  for (std::uint8_t e : exhausted) lost += e;
  if (lost > 0) {
    std::fprintf(stderr,
                 "dimqr: %s generator: %d of %d slots exhausted the "
                 "sampling retry budget (max_attempts=%d)\n",
                 what, lost, n, max_attempts);
    return Status::Internal(std::string("could not generate enough ") +
                            what + ": " + std::to_string(lost) + " of " +
                            std::to_string(n) +
                            " slots exhausted the sampling retry budget");
  }
  return out;
}

/// Shuffles choices, returning the new gold index.
int PlaceGold(std::vector<std::string>& choices, std::size_t gold_at,
              Rng& rng) {
  std::vector<std::size_t> order(choices.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<std::string> shuffled(choices.size());
  int gold_index = -1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    shuffled[i] = choices[order[i]];
    if (order[i] == gold_at) gold_index = static_cast<int>(i);
  }
  choices = std::move(shuffled);
  return gold_index;
}

}  // namespace

TaskGenerator::TaskGenerator(std::shared_ptr<const kb::DimUnitKB> kb,
                             GeneratorOptions options)
    : kb_(std::move(kb)), options_(options) {
  for (UnitId uid : kb_->UnitsByFrequency()) {
    const kb::UnitRecord& unit = kb_->Get(uid);
    if (unit.frequency < options_.min_unit_frequency) break;
    if (options_.max_pool_size != 0 &&
        pool_.size() >= options_.max_pool_size) {
      break;
    }
    if (!options_.include_compound_units &&
        unit.origin == kb::UnitOrigin::kCompound) {
      continue;
    }
    pool_.push_back(&unit);
    pool_weights_.push_back(unit.frequency);
  }
}

const kb::UnitRecord* TaskGenerator::SampleUnit(Rng& rng) const {
  return pool_[rng.WeightedIndex(pool_weights_)];
}

const kb::UnitRecord* TaskGenerator::SampleUnitOfDimension(
    const dimqr::Dimension& dim, Rng& rng,
    const kb::UnitRecord* exclude) const {
  std::vector<const kb::UnitRecord*> candidates;
  std::vector<double> weights;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i]->dimension == dim && pool_[i] != exclude) {
      candidates.push_back(pool_[i]);
      weights.push_back(pool_weights_[i]);
    }
  }
  if (candidates.empty()) return nullptr;
  return candidates[rng.WeightedIndex(weights)];
}

const kb::UnitRecord* TaskGenerator::SampleUnitNotOfDimension(
    const dimqr::Dimension& dim, Rng& rng) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const kb::UnitRecord* u = SampleUnit(rng);
    if (u->dimension != dim) return u;
  }
  return nullptr;
}

Result<std::vector<TaskInstance>> TaskGenerator::QuantityKindMatch(
    int n) const {
  std::uint64_t task_seed =
      Rng::DeriveSeed(options_.seed, "quantitykind_match");
  return GenerateSlots(
      n, task_seed, /*max_attempts=*/50,
      [&](Rng& rng, std::size_t slot, TaskInstance& inst) {
        const kb::UnitRecord* gold = SampleUnit(rng);
        // Distractors must be of other dimensions so the kind uniquely
        // selects the gold choice.
        std::vector<std::string> choices = {std::string(gold->label_en)};
        std::set<std::uint64_t> dims = {gold->dimension.PackedKey()};
        while (choices.size() <
               static_cast<std::size_t>(options_.num_choices)) {
          const kb::UnitRecord* d =
              SampleUnitNotOfDimension(gold->dimension, rng);
          if (d == nullptr) return false;
          if (!dims.insert(d->dimension.PackedKey()).second) continue;
          choices.emplace_back(d->label_en);
        }
        inst.task = lm::tasks::kQuantityKindMatch;
        int gold_index = PlaceGold(choices, 0, rng);
        inst.choices = choices;
        inst.gold_index = gold_index;
        inst.prompt = "task: kindmatch | kind: " +
                      text::ToLowerAscii(gold->quantity_kind) +
                      RenderChoices(choices);
        inst.reasoning = text::ToLowerAscii(gold->quantity_kind) + " is " +
                         DimWord(gold->dimension) +
                         ChoiceDimReasoning(choices, *kb_);
        inst.instance_seed =
            Rng::DeriveSeed(options_.seed, "qk" + std::to_string(slot));
        return true;
      },
      "kind-match instances");
}

Result<std::vector<TaskInstance>> TaskGenerator::ComparableAnalysis(
    int n) const {
  std::uint64_t task_seed =
      Rng::DeriveSeed(options_.seed, "comparable_analysis");
  return GenerateSlots(
      n, task_seed, /*max_attempts=*/50,
      [&](Rng& rng, std::size_t slot, TaskInstance& inst) {
        const kb::UnitRecord* probe = SampleUnit(rng);
        const kb::UnitRecord* gold =
            SampleUnitOfDimension(probe->dimension, rng, probe);
        if (gold == nullptr) return false;
        std::vector<std::string> choices = {std::string(gold->label_en)};
        std::set<std::string> used = {std::string(gold->label_en),
                                      std::string(probe->label_en)};
        while (choices.size() <
               static_cast<std::size_t>(options_.num_choices)) {
          const kb::UnitRecord* d =
              SampleUnitNotOfDimension(probe->dimension, rng);
          if (d == nullptr) return false;
          if (!used.insert(std::string(d->label_en)).second) continue;
          choices.emplace_back(d->label_en);
        }
        inst.task = lm::tasks::kComparableAnalysis;
        int gold_index = PlaceGold(choices, 0, rng);
        inst.choices = choices;
        inst.gold_index = gold_index;
        inst.prompt = "task: comparable | unit: " +
                      text::ToLowerAscii(probe->label_en) +
                      RenderChoices(choices);
        inst.reasoning = text::ToLowerAscii(probe->label_en) + " is " +
                         DimWord(probe->dimension) +
                         ChoiceDimReasoning(choices, *kb_);
        inst.instance_seed =
            Rng::DeriveSeed(options_.seed, "ca" + std::to_string(slot));
        return true;
      },
      "comparable instances");
}

Result<std::vector<TaskInstance>> TaskGenerator::DimensionArithmetic(
    int n) const {
  std::uint64_t task_seed =
      Rng::DeriveSeed(options_.seed, "dimension_arithmetic");
  return GenerateSlots(
      n, task_seed, /*max_attempts=*/50,
      [&](Rng& rng, std::size_t slot, TaskInstance& inst) {
        const kb::UnitRecord* u1 = SampleUnit(rng);
        const kb::UnitRecord* u2 = SampleUnit(rng);
        bool multiply = rng.Bernoulli(0.5);
        Result<dimqr::Dimension> dim_result =
            multiply ? u1->dimension.Times(u2->dimension)
                     : u1->dimension.Over(u2->dimension);
        if (!dim_result.ok()) return false;
        dimqr::Dimension target = *dim_result;
        const kb::UnitRecord* gold = SampleUnitOfDimension(target, rng);
        if (gold == nullptr) return false;
        std::vector<std::string> choices = {std::string(gold->label_en)};
        std::set<std::uint64_t> dims = {target.PackedKey()};
        while (choices.size() <
               static_cast<std::size_t>(options_.num_choices)) {
          const kb::UnitRecord* d = SampleUnitNotOfDimension(target, rng);
          if (d == nullptr) return false;
          if (!dims.insert(d->dimension.PackedKey()).second) continue;
          choices.emplace_back(d->label_en);
        }
        inst.task = lm::tasks::kDimensionArithmetic;
        int gold_index = PlaceGold(choices, 0, rng);
        inst.choices = choices;
        inst.gold_index = gold_index;
        const char* op = multiply ? "*" : "/";
        inst.prompt = "task: dimarith | expr: " +
                      text::ToLowerAscii(u1->label_en) + " " + op + " " +
                      text::ToLowerAscii(u2->label_en) +
                      RenderChoices(choices);
        inst.reasoning = DimWord(u1->dimension) + " " + op + " " +
                         DimWord(u2->dimension) + " = " + DimWord(target) +
                         ChoiceDimReasoning(choices, *kb_);
        inst.instance_seed =
            Rng::DeriveSeed(options_.seed, "da" + std::to_string(slot));
        return true;
      },
      "arithmetic instances");
}

Result<std::vector<TaskInstance>> TaskGenerator::MagnitudeComparison(
    int n) const {
  std::uint64_t task_seed =
      Rng::DeriveSeed(options_.seed, "magnitude_comparison");
  return GenerateSlots(
      n, task_seed, /*max_attempts=*/50,
      [&](Rng& rng, std::size_t slot, TaskInstance& inst) {
        const kb::UnitRecord* anchor = SampleUnit(rng);
        if (anchor->conversion_offset != 0.0) return false;  // affine excluded
        // Collect num_choices distinct-magnitude units of one dimension.
        std::vector<const kb::UnitRecord*> units = {anchor};
        std::set<std::string> used = {std::string(anchor->label_en)};
        int attempts = 0;
        while (units.size() < static_cast<std::size_t>(options_.num_choices) &&
               attempts++ < 200) {
          const kb::UnitRecord* u =
              SampleUnitOfDimension(anchor->dimension, rng, nullptr);
          if (u == nullptr) break;
          if (u->conversion_offset != 0.0) continue;
          if (!used.insert(std::string(u->label_en)).second) continue;
          bool distinct = true;
          for (const kb::UnitRecord* v : units) {
            double ratio = u->conversion_value / v->conversion_value;
            if (ratio > 0.999 && ratio < 1.001) {
              distinct = false;
              break;
            }
          }
          if (distinct) units.push_back(u);
        }
        if (units.size() < static_cast<std::size_t>(options_.num_choices)) {
          return false;
        }
        std::size_t gold_at = 0;
        for (std::size_t i = 1; i < units.size(); ++i) {
          if (units[i]->conversion_value > units[gold_at]->conversion_value) {
            gold_at = i;
          }
        }
        std::vector<std::string> choices;
        choices.reserve(units.size());
        for (const kb::UnitRecord* u : units) {
          choices.emplace_back(u->label_en);
        }
        inst.task = lm::tasks::kMagnitudeComparison;
        int gold_index = PlaceGold(choices, gold_at, rng);
        inst.choices = choices;
        inst.gold_index = gold_index;
        inst.prompt = "task: magnitude | pick the largest unit" +
                      RenderChoices(choices);
        {
          // Enumerate per-choice scale exponents in shuffled choice order.
          std::string reasoning = "scales";
          for (std::size_t ci = 0; ci < inst.choices.size(); ++ci) {
            for (const kb::UnitRecord* u : units) {
              if (u->label_en == inst.choices[ci]) {
                reasoning += std::string(" | ") + kLetters[ci] + ' ' +
                             ScaleWord(*u);
                break;
              }
            }
          }
          inst.reasoning = reasoning;
        }
        inst.instance_seed =
            Rng::DeriveSeed(options_.seed, "mc" + std::to_string(slot));
        return true;
      },
      "magnitude instances");
}

Result<std::vector<TaskInstance>> TaskGenerator::UnitConversion(int n) const {
  std::uint64_t task_seed = Rng::DeriveSeed(options_.seed, "unit_conversion");
  return GenerateSlots(
      n, task_seed, /*max_attempts=*/50,
      [&](Rng& rng, std::size_t slot, TaskInstance& inst) {
        const kb::UnitRecord* from = SampleUnit(rng);
        if (from->conversion_offset != 0.0) return false;
        const kb::UnitRecord* to =
            SampleUnitOfDimension(from->dimension, rng, from);
        if (to == nullptr || to->conversion_offset != 0.0) return false;
        Result<double> factor_result =
            from->Semantics().ConversionFactorTo(to->Semantics());
        if (!factor_result.ok()) return false;
        double factor = *factor_result;
        if (!std::isfinite(factor) || factor == 0.0) return false;
        // Distractors: inverse, off-by-10^k, halved — classic confusions.
        std::string gold_text = FormatFactor(factor);
        std::vector<std::string> choices = {gold_text};
        std::vector<double> distractor_pool = {
            1.0 / factor, factor * 10.0, factor / 10.0, factor * 1000.0,
            factor / 1000.0, factor * 2.0, factor / 2.0};
        std::set<std::string> used = {gold_text};
        std::size_t next = 0;
        // Deterministic-but-varied distractor subset.
        rng.Shuffle(distractor_pool);
        while (choices.size() <
                   static_cast<std::size_t>(options_.num_choices) &&
               next < distractor_pool.size()) {
          std::string text_form = FormatFactor(distractor_pool[next++]);
          if (used.insert(text_form).second) choices.push_back(text_form);
        }
        if (choices.size() < static_cast<std::size_t>(options_.num_choices)) {
          return false;
        }
        inst.task = lm::tasks::kUnitConversion;
        int gold_index = PlaceGold(choices, 0, rng);
        inst.choices = choices;
        inst.gold_index = gold_index;
        inst.prompt = "task: convert | 1 " +
                      text::ToLowerAscii(from->label_en) + " = ? " +
                      text::ToLowerAscii(to->label_en) +
                      RenderChoices(choices);
        inst.reasoning = "1 " + text::ToLowerAscii(from->label_en) + " = " +
                         gold_text + " " + text::ToLowerAscii(to->label_en);
        inst.instance_seed =
            Rng::DeriveSeed(options_.seed, "uc" + std::to_string(slot));
        return true;
      },
      "conversion instances");
}

Result<std::vector<TaskInstance>> TaskGenerator::DimensionPrediction(
    const std::vector<kg::Triple>& triples, int n) const {
  if (triples.empty()) {
    return Status::InvalidArgument(
        "dimension prediction needs bootstrapped triples");
  }
  std::uint64_t task_seed =
      Rng::DeriveSeed(options_.seed, "dimension_prediction");
  return GenerateSlots(
      n, task_seed, /*max_attempts=*/80,
      [&](Rng& rng, std::size_t slot, TaskInstance& inst) {
        const kg::Triple& triple = triples[rng.Index(triples.size())];
        // The realization seed is drawn from the slot's own stream so the
        // sentence's surface form varies per instance (and per retry).
        std::uint64_t realize_seed = rng.engine()();
        // The object must be "value unit"; resolve the unit mention to get
        // the gold dimension.
        auto space = triple.object.find(' ');
        std::string unit_mention = space == std::string::npos
                                       ? std::string()
                                       : triple.object.substr(space + 1);
        if (triple.object.size() > 1 && triple.object.back() == '%') {
          unit_mention = "%";
        }
        if (unit_mention.empty()) return false;
        std::span<const UnitId> matches = kb_->FindBySurface(unit_mention);
        if (matches.empty()) return false;
        const kb::UnitRecord& source_unit = kb_->Get(matches.front());
        const kb::UnitRecord* gold =
            SampleUnitOfDimension(source_unit.dimension, rng);
        if (gold == nullptr) return false;
        std::vector<std::string> choices = {std::string(gold->label_en)};
        std::set<std::uint64_t> dims = {gold->dimension.PackedKey()};
        while (choices.size() <
               static_cast<std::size_t>(options_.num_choices)) {
          const kb::UnitRecord* d =
              SampleUnitNotOfDimension(gold->dimension, rng);
          if (d == nullptr) return false;
          if (!dims.insert(d->dimension.PackedKey()).second) continue;
          choices.emplace_back(d->label_en);
        }
        kg::RealizedSentence sentence = kg::RealizeTriple(triple, realize_seed);
        // Mask the unit part of the object (keep the value visible).
        std::string masked = sentence.text;
        std::size_t unit_off = sentence.object_begin +
                               (space == std::string::npos ? 0 : space + 1);
        masked.replace(unit_off, sentence.object_end - unit_off, "[MASK]");
        inst.task = lm::tasks::kDimensionPrediction;
        int gold_index = PlaceGold(choices, 0, rng);
        inst.choices = choices;
        inst.gold_index = gold_index;
        inst.prompt =
            "task: dimpred | text: " + masked + RenderChoices(choices);
        inst.reasoning = text::ToLowerAscii(triple.predicate) + " implies " +
                         DimWord(gold->dimension) +
                         ChoiceDimReasoning(choices, *kb_);
        inst.instance_seed =
            Rng::DeriveSeed(options_.seed, "dp" + std::to_string(slot));
        return true;
      },
      "dimension-prediction instances");
}

}  // namespace dimqr::dimeval
