#ifndef DIMQR_DIMEVAL_GENERATORS_H_
#define DIMQR_DIMEVAL_GENERATORS_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "dimeval/task.h"
#include "kb/kb.h"
#include "kg/triple_store.h"

/// \file generators.h
/// Heuristic rule-based dataset generators for the DimEval tasks
/// (Section IV-C: "the remaining five tasks can be constructed ... through
/// the heuristic rule-based methods with DimKS"). Dimension prediction
/// consumes bootstrapped triples (Algorithm 2); quantity extraction
/// consumes Algorithm 1 output — both are produced elsewhere and converted
/// here.
///
/// Every instance carries a rule/template-generated chain-of-thought
/// `reasoning` (Section IV-D) kept deliberately short so the micro
/// transformer can learn it.

namespace dimqr::dimeval {

/// \brief Generator knobs.
struct GeneratorOptions {
  int num_choices = 4;  ///< m in the paper's task definitions.
  std::uint64_t seed = 20240131;
  /// Units rarer than this frequency are never sampled (keeps prompts
  /// within the learnable vocabulary).
  double min_unit_frequency = 0.25;
  /// Hard cap on the sampling pool: only the `max_pool_size` most frequent
  /// units are used (0 = unlimited). Keeps the unit inventory small enough
  /// for a micro model to memorize.
  std::size_t max_pool_size = 320;
  /// When false, compound units (km/h, g/cm3) are excluded from the
  /// sampling pool — their dimensions require composition rather than
  /// recall, which the micro model cannot reliably learn. Seed and
  /// prefix-expanded units keep systematic label structure
  /// ("kilometre"/"millimetre" share a dimension).
  bool include_compound_units = false;
};

/// \brief Generates multiple-choice DimEval instances from DimUnitKB.
class TaskGenerator {
 public:
  TaskGenerator(std::shared_ptr<const kb::DimUnitKB> kb,
                GeneratorOptions options = {});

  /// Definition 3: pick the unit that measures a given quantity kind.
  dimqr::Result<std::vector<TaskInstance>> QuantityKindMatch(int n) const;

  /// Definition 4: pick the unit comparable with (same dimension as) a
  /// given unit.
  dimqr::Result<std::vector<TaskInstance>> ComparableAnalysis(int n) const;

  /// Definition 6: pick the unit whose dimension equals dim(u1 op u2).
  dimqr::Result<std::vector<TaskInstance>> DimensionArithmetic(int n) const;

  /// Definition 7: pick the unit with the largest magnitude among four
  /// same-dimension units.
  dimqr::Result<std::vector<TaskInstance>> MagnitudeComparison(int n) const;

  /// Definition 8: pick the factor beta with u1 * beta = u2.
  dimqr::Result<std::vector<TaskInstance>> UnitConversion(int n) const;

  /// Definition 5: [MASK]ed quantity in a realized sentence; pick the unit
  /// whose dimension fits the context. `triples` come from Algorithm 2.
  dimqr::Result<std::vector<TaskInstance>> DimensionPrediction(
      const std::vector<kg::Triple>& triples, int n) const;

  const kb::DimUnitKB& knowledge_base() const { return *kb_; }

 private:
  /// A frequency-weighted random unit among those above the frequency
  /// floor, optionally constrained/excluded by dimension.
  const kb::UnitRecord* SampleUnit(dimqr::Rng& rng) const;
  const kb::UnitRecord* SampleUnitOfDimension(const dimqr::Dimension& dim,
                                              dimqr::Rng& rng,
                                              const kb::UnitRecord* exclude =
                                                  nullptr) const;
  const kb::UnitRecord* SampleUnitNotOfDimension(const dimqr::Dimension& dim,
                                                 dimqr::Rng& rng) const;

  std::shared_ptr<const kb::DimUnitKB> kb_;
  GeneratorOptions options_;
  std::vector<const kb::UnitRecord*> pool_;      ///< Units above the floor.
  std::vector<double> pool_weights_;             ///< Their frequencies.
};

}  // namespace dimqr::dimeval

#endif  // DIMQR_DIMEVAL_GENERATORS_H_
