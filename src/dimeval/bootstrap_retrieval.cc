#include "dimeval/bootstrap_retrieval.h"

#include <set>

#include "text/number_scanner.h"
#include "text/string_util.h"

namespace dimqr::dimeval {
namespace {

using dimqr::Result;
using dimqr::Status;

/// True when the object is "value + linkable unit mention".
bool IsQuantityObject(const std::string& object, const kb::DimUnitKB& kb) {
  std::string mention = UnitMentionOf(object);
  if (mention.empty()) return false;
  if (mention == "%") return true;
  return !kb.FindBySurface(mention).empty();
}

}  // namespace

std::string UnitMentionOf(const std::string& object) {
  std::vector<text::NumberMention> numbers = text::ScanNumbers(object);
  if (numbers.empty() || numbers.front().begin != 0) return "";
  const text::NumberMention& value = numbers.front();
  if (value.is_percent) return "%";
  std::string suffix = text::Trim(object.substr(value.end));
  return suffix;
}

double QuantityRatio(const std::vector<const kg::Triple*>& triples,
                     const kb::DimUnitKB& kb) {
  if (triples.empty()) return 0.0;
  std::size_t quantitative = 0;
  for (const kg::Triple* t : triples) {
    if (IsQuantityObject(t->object, kb)) ++quantitative;
  }
  return static_cast<double>(quantitative) /
         static_cast<double>(triples.size());
}

Result<BootstrapResult> BootstrapRetrieve(const kg::TripleStore& store,
                                          const kb::DimUnitKB& kb,
                                          const BootstrapOptions& options) {
  if (store.size() == 0) {
    return Status::InvalidArgument("empty triple store for Algorithm 2");
  }
  if (options.iterations <= 0 || options.seed_mentions == 0) {
    return Status::InvalidArgument("bad bootstrap options");
  }
  BootstrapResult result;

  // M0 <- highFreqUnits(DimUnitKB): the primary surfaces of the most
  // frequent units.
  std::set<std::string> mentions;
  for (UnitId uid : kb.UnitsByFrequency()) {
    if (mentions.size() >= options.seed_mentions) break;
    const kb::UnitRecord& unit = kb.Get(uid);
    mentions.insert(std::string(
        unit.symbols.empty() ? unit.label_en : unit.symbols.front()));
    mentions.insert(std::string(unit.label_en));
  }

  std::set<std::string> predicates;
  for (int iteration = 0; iteration < options.iterations; ++iteration) {
    BootstrapIteration trace;
    trace.mentions = mentions.size();

    // Step 1: build the predicate set from the mention set.
    predicates.clear();
    for (const std::string& mention : mentions) {
      for (const kg::Triple* t : store.FindByObjectContaining(mention)) {
        predicates.insert(t->predicate);
      }
    }
    trace.predicates_before_filter = predicates.size();

    // Step 2: filter predicates by quantity ratio.
    for (auto it = predicates.begin(); it != predicates.end();) {
      std::vector<const kg::Triple*> triples = store.FindByPredicate(*it);
      if (QuantityRatio(triples, kb) < options.tau) {
        it = predicates.erase(it);
      } else {
        ++it;
      }
    }
    trace.predicates_after_filter = predicates.size();

    // Step 3: rebuild the mention set from the surviving predicates.
    mentions.clear();
    for (const std::string& predicate : predicates) {
      for (const kg::Triple* t : store.FindByPredicate(predicate)) {
        std::string mention = UnitMentionOf(t->object);
        if (!mention.empty()) mentions.insert(mention);
      }
    }
    result.trace.push_back(trace);
    if (predicates.empty()) break;
  }

  // Final retrieval: all triples of the surviving predicates whose object
  // carries a recognizable unit mention.
  for (const std::string& predicate : predicates) {
    for (const kg::Triple* t : store.FindByPredicate(predicate)) {
      if (IsQuantityObject(t->object, kb)) {
        result.quantitative_triples.push_back(*t);
      }
    }
  }
  result.predicates.assign(predicates.begin(), predicates.end());
  result.mentions.assign(mentions.begin(), mentions.end());
  return result;
}

}  // namespace dimqr::dimeval
