#ifndef DIMQR_DIMEVAL_TASK_H_
#define DIMQR_DIMEVAL_TASK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/interner.h"
#include "lm/model_api.h"

/// \file task.h
/// DimEval task instances (Section IV).
///
/// DimEval probes three aspects with seven tasks:
///  - Basic perception: Quantity Extraction (Def. 2), QuantityKind Match
///    (Def. 3);
///  - Dimension perception: Comparable Analysis (Def. 4), Dimension
///    Prediction (Def. 5), Dimension Arithmetic (Def. 6);
///  - Scale perception: Magnitude Comparison (Def. 7), Unit Conversion
///    (Def. 8).
/// All judgment tasks are converted into m=4 selection tasks (Section IV-B).

namespace dimqr::dimeval {

/// \brief The three aspects of Section IV-A.
enum class TaskCategory {
  kBasicPerception,
  kDimensionPerception,
  kScalePerception,
};

/// The category a task key belongs to. Unknown keys map to basic perception.
TaskCategory CategoryOf(std::string_view task_key);

/// Human-readable category name ("Basic Perception", ...).
std::string_view CategoryName(TaskCategory category);

/// All seven task keys in paper order.
const std::vector<std::string>& AllTaskKeys();

/// \brief One gold quantity of an extraction instance.
struct GoldQuantity {
  std::string value_text;  ///< "2.06"
  std::string unit_text;   ///< "meters" (may be empty for bare values)
  UnitId unit;             ///< DimUnitKB handle; invalid when unlinked.
};

/// \brief One DimEval instance. Multiple-choice tasks fill `choices` and
/// `gold_index`; quantity extraction fills `source_text` and
/// `gold_quantities` instead.
struct TaskInstance {
  std::string task;  ///< One of lm::tasks::* keys.
  std::string prompt;
  std::vector<std::string> choices;
  int gold_index = -1;
  /// Rule/template-generated chain-of-thought (the R sequence of y =
  /// "<bos> R <sep> A <eos>", Section IV-D).
  std::string reasoning;
  std::uint64_t instance_seed = 0;

  // Extraction-only fields:
  std::string source_text;
  std::vector<GoldQuantity> gold_quantities;

  bool IsExtraction() const { return !source_text.empty(); }

  /// The instance as a ChoiceQuestion for the harness.
  lm::ChoiceQuestion ToChoiceQuestion() const;
};

}  // namespace dimqr::dimeval

#endif  // DIMQR_DIMEVAL_TASK_H_
