#ifndef DIMQR_DIMEVAL_BOOTSTRAP_RETRIEVAL_H_
#define DIMQR_DIMEVAL_BOOTSTRAP_RETRIEVAL_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "kb/kb.h"
#include "kg/triple_store.h"

/// \file bootstrap_retrieval.h
/// Algorithm 2 — the bootstrapping retrieval method (Section IV-C2).
///
/// Maintains a mention set M (unit surface forms) and a predicate set P.
/// Per iteration:
///   Step 1: P <- predicates of triples whose object contains a mention
///           from M;
///   Step 2: filter P by the ratio of quantity-bearing triples
///           (calculateQuantityRatio with DimKS; predicates below tau are
///           dropped);
///   Step 3: M <- unit mentions extracted from the objects of P's triples.
/// After delta iterations, retrieve all triples of the surviving
/// predicates as the quantitative triple set.

namespace dimqr::dimeval {

/// \brief Algorithm 2 parameters (paper: delta = 5 iterations).
struct BootstrapOptions {
  double tau = 0.5;             ///< Quantity-ratio threshold.
  int iterations = 5;           ///< delta.
  std::size_t seed_mentions = 40;  ///< |M0| = top-frequency units.
};

/// \brief Per-iteration trace, for tests and the complexity analysis bench.
struct BootstrapIteration {
  std::size_t mentions = 0;
  std::size_t predicates_before_filter = 0;
  std::size_t predicates_after_filter = 0;
};

/// \brief The result: quantitative triples plus the final sets and trace.
struct BootstrapResult {
  std::vector<kg::Triple> quantitative_triples;
  std::vector<std::string> predicates;
  std::vector<std::string> mentions;
  std::vector<BootstrapIteration> trace;
};

/// \brief Runs Algorithm 2 over `store` using unit knowledge from `kb`.
dimqr::Result<BootstrapResult> BootstrapRetrieve(
    const kg::TripleStore& store, const kb::DimUnitKB& kb,
    const BootstrapOptions& options = {});

/// \brief calculateQuantityRatio: the fraction of triples whose object is
/// quantity-bearing (leading value + unit mention linkable in `kb`).
double QuantityRatio(const std::vector<const kg::Triple*>& triples,
                     const kb::DimUnitKB& kb);

/// \brief Extracts the unit mention from a quantity object ("2.06 metres"
/// -> "metres"); empty when the object is not quantity-shaped.
std::string UnitMentionOf(const std::string& object);

}  // namespace dimqr::dimeval

#endif  // DIMQR_DIMEVAL_BOOTSTRAP_RETRIEVAL_H_
