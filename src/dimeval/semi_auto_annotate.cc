#include "dimeval/semi_auto_annotate.h"

#include <cmath>
#include <cstdio>

#include "core/rng.h"
#include "lm/mock_llm.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace dimqr::dimeval {
namespace {

using dimqr::Result;
using dimqr::Rng;
using dimqr::Status;

/// The word tokens immediately left/right of a byte span.
std::pair<std::string, std::string> NeighbourWords(const std::string& text,
                                                   std::size_t begin,
                                                   std::size_t end) {
  std::string left, right;
  for (const text::Token& tok : text::Tokenize(text)) {
    if (tok.end <= begin &&
        (tok.kind == text::Token::Kind::kWord ||
         tok.kind == text::Token::Kind::kCjk)) {
      left = text::ToLowerAscii(tok.text);
    }
    if (tok.begin >= end && right.empty() &&
        (tok.kind == text::Token::Kind::kWord ||
         tok.kind == text::Token::Kind::kCjk)) {
      right = text::ToLowerAscii(tok.text);
    }
  }
  return {left, right};
}

bool AnnotationMatchesTruth(const std::string& text,
                            const linking::QuantityAnnotation& ann,
                            const std::vector<GoldQuantity>& truth) {
  std::string value(ann.number.TextIn(text));
  for (const GoldQuantity& gold : truth) {
    if (gold.value_text != value) continue;
    if (gold.unit_text.empty() && !ann.HasUnit()) return true;
    if (!gold.unit_text.empty() && ann.HasUnit() &&
        (ann.unit_text == gold.unit_text || ann.unit == gold.unit)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::pair<std::vector<AnnotatedSentence>, SemiAutoStats>>
SemiAutoAnnotate(const std::vector<CorpusSentence>& corpus,
                 const linking::DimKsAnnotator& annotator,
                 const lm::NgramMaskedLm& masked_lm,
                 const SemiAutoOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("empty corpus for Algorithm 1");
  }
  SemiAutoStats stats;
  stats.sentences_in = corpus.size();
  std::vector<AnnotatedSentence> out;
  for (const CorpusSentence& sentence : corpus) {
    stats.truth_total += sentence.truth.size();
    // Step 1: initial annotation with DimKS.
    std::vector<linking::QuantityAnnotation> annotations =
        annotator.Annotate(sentence.text);
    if (annotations.empty()) continue;  // no numeric entity
    ++stats.sentences_with_numeric;
    stats.annotations_initial += annotations.size();

    // Step 2: masked-LM filter. Replace the numeric mention with [MASK]
    // and keep the annotation only if the context predicts a number there.
    std::vector<linking::QuantityAnnotation> kept;
    for (const linking::QuantityAnnotation& ann : annotations) {
      auto [left, right] =
          NeighbourWords(sentence.text, ann.number.begin, ann.number.end);
      double numeric = masked_lm.NumericLikelihood(left, right);
      if (numeric >= options.numeric_threshold) kept.push_back(ann);
    }
    if (kept.empty()) continue;
    stats.annotations_after_plm += kept.size();

    // Accuracy against ground truth (pre-review), when available.
    if (!sentence.truth.empty()) {
      for (const linking::QuantityAnnotation& ann : kept) {
        if (AnnotationMatchesTruth(sentence.text, ann, sentence.truth)) {
          ++stats.annotations_correct;
        }
      }
    }

    AnnotatedSentence annotated;
    annotated.text = sentence.text;
    annotated.annotations = std::move(kept);
    out.push_back(std::move(annotated));
  }
  if (stats.annotations_after_plm > 0) {
    stats.accuracy = static_cast<double>(stats.annotations_correct) /
                     static_cast<double>(stats.annotations_after_plm);
  }

  // Step 3: manual review — reconcile with ground truth where we have it.
  if (options.apply_manual_review) {
    std::size_t index = 0;
    for (const CorpusSentence& sentence : corpus) {
      if (index >= out.size()) break;
      if (out[index].text != sentence.text) continue;  // dropped sentence
      if (!sentence.truth.empty()) {
        std::erase_if(out[index].annotations,
                      [&](const linking::QuantityAnnotation& ann) {
                        return !AnnotationMatchesTruth(sentence.text, ann,
                                                       sentence.truth);
                      });
        if (out[index].annotations.empty()) {
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(index));
          continue;
        }
      }
      ++index;
    }
  }
  return std::make_pair(std::move(out), stats);
}

std::vector<CorpusSentence> GenerateQuantityCorpus(const kb::DimUnitKB& kb,
                                                   int n_sentences,
                                                   std::uint64_t seed) {
  // Quantity sentence templates; {q} is "value unit".
  static const char* kQuantityTemplates[] = {
      "the rope measures {q} in total",
      "she bought {q} of rice at the market",
      "the journey took about {q} to finish",
      "its engine delivers up to {q} at peak",
      "the tank holds {q} of fuel",
      "each box weighs exactly {q} on the scale",
      "the field spans {q} near the river",
      "the sample was heated to {q} in the lab",
      "the signal oscillates at {q} when active",
      "the corridor is {q} wide",
  };
  // Trap sentences: numeric-looking text that is NOT a quantity.
  static const char* kTrapTemplates[] = {
      "the device LPUI-{n}T shipped last week",
      "see model GTX-{n} for details",
      "building {n} hosts the archive",
      "the team was founded in {n}",
      "call extension {n} for support",
  };
  Rng rng(seed);
  std::vector<CorpusSentence> corpus;
  std::vector<UnitId> pool;
  for (std::size_t i = 0; i < kb.units().size(); ++i) {
    const kb::UnitRecord& unit = kb.units()[i];
    if (unit.frequency >= 0.45 && unit.conversion_offset == 0.0) {
      pool.push_back(UnitId::FromIndex(i));
    }
  }
  for (int i = 0; i < n_sentences; ++i) {
    CorpusSentence sentence;
    if (rng.Bernoulli(0.25)) {
      const char* tmpl =
          kTrapTemplates[rng.Index(std::size(kTrapTemplates))];
      std::string number = std::to_string(rng.UniformInt(1, 2099));
      sentence.text = text::ReplaceAll(tmpl, "{n}", number);
      // No gold quantities: any extraction here is a false positive.
    } else {
      const char* tmpl =
          kQuantityTemplates[rng.Index(std::size(kQuantityTemplates))];
      const UnitId unit_id = pool[rng.Index(pool.size())];
      const kb::UnitRecord& unit = kb.Get(unit_id);
      double value = std::round(rng.UniformReal(1.0, 500.0) * 10.0) / 10.0;
      char value_text[32];
      if (value == std::floor(value)) {
        std::snprintf(value_text, sizeof(value_text), "%.0f", value);
      } else {
        std::snprintf(value_text, sizeof(value_text), "%.1f", value);
      }
      std::string surface(rng.Bernoulli(0.5) && !unit.symbols.empty()
                              ? unit.symbols.front()
                              : unit.label_en);
      sentence.text = text::ReplaceAll(
          tmpl, "{q}", std::string(value_text) + " " + surface);
      GoldQuantity gold;
      gold.value_text = value_text;
      gold.unit_text = surface;
      gold.unit = unit_id;
      sentence.truth.push_back(gold);
    }
    corpus.push_back(std::move(sentence));
  }
  return corpus;
}

std::vector<TaskInstance> ToExtractionInstances(
    const std::vector<AnnotatedSentence>& sentences, std::uint64_t seed) {
  std::vector<TaskInstance> out;
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    const AnnotatedSentence& sentence = sentences[i];
    TaskInstance inst;
    inst.task = lm::tasks::kQuantityExtraction;
    inst.source_text = sentence.text;
    inst.prompt = "task: extract | text: " + sentence.text;
    for (const linking::QuantityAnnotation& ann : sentence.annotations) {
      GoldQuantity gold;
      gold.value_text = std::string(ann.number.TextIn(sentence.text));
      gold.unit_text = ann.unit_text;
      gold.unit = ann.unit;
      inst.gold_quantities.push_back(std::move(gold));
    }
    inst.instance_seed = Rng::DeriveSeed(seed, "qe" + std::to_string(i));
    out.push_back(std::move(inst));
  }
  return out;
}

}  // namespace dimqr::dimeval
