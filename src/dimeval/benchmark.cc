#include "dimeval/benchmark.h"

#include "lm/mock_llm.h"
#include "text/tokenizer.h"

namespace dimqr::dimeval {
namespace {

using dimqr::Result;
using dimqr::Status;

/// Splits `all` into the first `train_n` (train) and the rest (test).
void SplitInto(std::vector<TaskInstance> all, int train_n,
               std::vector<TaskInstance>& train,
               std::vector<TaskInstance>& test) {
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i < static_cast<std::size_t>(train_n)) {
      train.push_back(std::move(all[i]));
    } else {
      test.push_back(std::move(all[i]));
    }
  }
}

}  // namespace

std::vector<const TaskInstance*> DimEvalBenchmark::TestOf(
    std::string_view task) const {
  std::vector<const TaskInstance*> out;
  for (const TaskInstance& inst : test) {
    if (inst.task == task) out.push_back(&inst);
  }
  return out;
}

std::vector<const TaskInstance*> DimEvalBenchmark::TrainOf(
    std::string_view task) const {
  std::vector<const TaskInstance*> out;
  for (const TaskInstance& inst : train) {
    if (inst.task == task) out.push_back(&inst);
  }
  return out;
}

Result<DimEvalBenchmark> BuildDimEval(
    std::shared_ptr<const kb::DimUnitKB> kb,
    const linking::DimKsAnnotator& annotator,
    const BenchmarkOptions& options) {
  if (kb == nullptr) {
    return Status::InvalidArgument("BuildDimEval needs a knowledge base");
  }
  if (options.train_per_task < 0 || options.test_per_task <= 0) {
    return Status::InvalidArgument("bad benchmark sizes");
  }
  DimEvalBenchmark bench;
  GeneratorOptions gen_options = options.generator;
  gen_options.seed = options.seed;
  TaskGenerator generator(kb, gen_options);
  const int total = options.train_per_task + options.test_per_task;

  // --- the five heuristic rule-based tasks ---
  DIMQR_ASSIGN_OR_RETURN(std::vector<TaskInstance> qk,
                         generator.QuantityKindMatch(total));
  SplitInto(std::move(qk), options.train_per_task, bench.train, bench.test);
  DIMQR_ASSIGN_OR_RETURN(std::vector<TaskInstance> comp,
                         generator.ComparableAnalysis(total));
  SplitInto(std::move(comp), options.train_per_task, bench.train, bench.test);
  DIMQR_ASSIGN_OR_RETURN(std::vector<TaskInstance> arith,
                         generator.DimensionArithmetic(total));
  SplitInto(std::move(arith), options.train_per_task, bench.train,
            bench.test);
  DIMQR_ASSIGN_OR_RETURN(std::vector<TaskInstance> mag,
                         generator.MagnitudeComparison(total));
  SplitInto(std::move(mag), options.train_per_task, bench.train, bench.test);
  DIMQR_ASSIGN_OR_RETURN(std::vector<TaskInstance> conv,
                         generator.UnitConversion(total));
  SplitInto(std::move(conv), options.train_per_task, bench.train, bench.test);

  // --- dimension prediction via Algorithm 2 over the synthetic KG ---
  kg::SynthKgOptions kg_options = options.synth_kg;
  kg_options.seed = dimqr::Rng::DeriveSeed(options.seed, "synth-kg");
  DIMQR_ASSIGN_OR_RETURN(kg::TripleStore store,
                         kg::BuildSyntheticKg(*kb, kg_options));
  DIMQR_ASSIGN_OR_RETURN(BootstrapResult bootstrap,
                         BootstrapRetrieve(store, *kb, options.bootstrap));
  bench.bootstrap_triples = bootstrap.quantitative_triples.size();
  bench.bootstrap_trace = bootstrap.trace;
  DIMQR_ASSIGN_OR_RETURN(
      std::vector<TaskInstance> dpred,
      generator.DimensionPrediction(bootstrap.quantitative_triples, total));
  SplitInto(std::move(dpred), options.train_per_task, bench.train,
            bench.test);

  // --- quantity extraction via Algorithm 1 ---
  std::vector<CorpusSentence> corpus = GenerateQuantityCorpus(
      *kb, options.extraction_corpus_sentences,
      dimqr::Rng::DeriveSeed(options.seed, "extraction-corpus"));
  // The masked LM trains on the corpus itself (the "pretrained" LM of the
  // paper; see DESIGN.md substitution table).
  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(corpus.size());
  for (const CorpusSentence& s : corpus) {
    tokenized.push_back(text::TokenizeLower(s.text));
  }
  DIMQR_ASSIGN_OR_RETURN(lm::NgramMaskedLm masked_lm,
                         lm::NgramMaskedLm::Train(tokenized));
  DIMQR_ASSIGN_OR_RETURN(auto annotated,
                         SemiAutoAnnotate(corpus, annotator, masked_lm));
  bench.annotation_stats = annotated.second;
  std::vector<TaskInstance> extraction = ToExtractionInstances(
      annotated.first, dimqr::Rng::DeriveSeed(options.seed, "extraction"));
  if (static_cast<int>(extraction.size()) < total) {
    return Status::Internal("Algorithm 1 yielded too few sentences: " +
                            std::to_string(extraction.size()));
  }
  extraction.resize(total);
  SplitInto(std::move(extraction), options.train_per_task, bench.train,
            bench.test);
  return bench;
}

}  // namespace dimqr::dimeval
