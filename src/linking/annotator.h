#ifndef DIMQR_LINKING_ANNOTATOR_H_
#define DIMQR_LINKING_ANNOTATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/quantity.h"
#include "linking/linker.h"
#include "text/number_scanner.h"

/// \file annotator.h
/// DimKS — the dimensional knowledge system (Section III): DimUnitKB plus
/// the unit-linking module, packaged as a text annotator. This is the "D"
/// of Algorithm 1 ("DimKS annotator"): it finds value mentions with the
/// heuristic scanner, attempts to link the following span as a unit, and
/// yields grounded quantities.

namespace dimqr::linking {

/// \brief One annotated quantity occurrence in text.
struct QuantityAnnotation {
  text::NumberMention number;    ///< The numeric part.
  std::size_t unit_begin = 0;    ///< Byte span of the unit mention; empty
  std::size_t unit_end = 0;      ///< (begin == end) for bare numbers.
  std::string unit_text;         ///< The unit mention as written.
  UnitId unit;                   ///< Best link; invalid for bare numbers.
  double link_confidence = 0.0;

  bool HasUnit() const { return unit.valid(); }
};

/// \brief Annotator options.
struct AnnotatorOptions {
  /// Max tokens after the value considered as the unit mention.
  int max_unit_tokens = 3;
  /// A linked unit is accepted only when its mention similarity Pr(u|m)
  /// reaches this floor (rejects linking "apples" to some unit).
  double accept_threshold = 0.74;
};

/// \brief DimKS: annotates quantities in running text.
class DimKsAnnotator {
 public:
  DimKsAnnotator(std::shared_ptr<const UnitLinker> linker,
                 AnnotatorOptions options = {});

  /// \brief Finds all quantities (value + optional unit) in `textv`.
  std::vector<QuantityAnnotation> Annotate(std::string_view textv) const;

  /// \brief Converts an annotation into a core Quantity (SI-convertible).
  /// Bare numbers and percentages become dimensionless quantities.
  dimqr::Result<dimqr::Quantity> ToQuantity(
      const QuantityAnnotation& annotation) const;

  const UnitLinker& linker() const { return *linker_; }
  const AnnotatorOptions& options() const { return options_; }

 private:
  std::shared_ptr<const UnitLinker> linker_;
  AnnotatorOptions options_;
  UnitId percent_;  ///< Resolved once; '%' mentions link straight to it.
};

}  // namespace dimqr::linking

#endif  // DIMQR_LINKING_ANNOTATOR_H_
