#ifndef DIMQR_LINKING_LINKER_H_
#define DIMQR_LINKING_LINKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kb/kb.h"
#include "text/embedding.h"

/// \file linker.h
/// The unit-linking module of Section III-B.
///
/// Definition 1 (Unit Linking): given contextual information c and a unit
/// mention m, map it to the corresponding unit u in DimUnitKB. The score is
///   u~ = argmax_u Pr(u) * Pr(u|m) * Pr(u|c)
/// with
///   Pr(u)   = Freq(u)                      (the Eq. 1-2 frequency prior)
///   Pr(u|m) = LevenshteinSimilarity(u, m)  (candidate generation)
///   Pr(u|c) = (1/n) sum_i max_j cos(c_i, k_j)   (context model over the
///             unit's keywords k_j and the context tokens c_i)

namespace dimqr::linking {

/// \brief One ranked candidate for a unit mention. Carries the interned
/// unit handle; resolve it with `DimUnitKB::Get`.
struct LinkCandidate {
  UnitId unit;              ///< Handle into the linker's knowledge base.
  double pr_mention = 0.0;  ///< Pr(u|m): surface similarity.
  double pr_prior = 0.0;    ///< Pr(u): frequency prior.
  double pr_context = 0.0;  ///< Pr(u|c): context-keyword similarity.
  double score = 0.0;       ///< Product of the enabled factors.
};

/// \brief Linker knobs. The three probability factors can be toggled
/// independently (used by the linking ablation bench).
struct LinkerConfig {
  /// Candidates whose best surface similarity is below this are dropped
  /// ("if the similarity exceeds a preset threshold ... added to the
  /// candidate list").
  double mention_threshold = 0.62;
  std::size_t max_candidates = 10;
  bool use_prior = true;
  bool use_mention = true;
  bool use_context = true;
  /// Sharpness of the mention factor: the score uses Pr(u|m)^gamma so that
  /// an exact dictionary hit dominates fuzzy hits with large priors
  /// ("poundal" must not lose to "pound" on frequency alone).
  double mention_sharpness = 3.0;
  /// Embedding training settings for the KB-derived context corpus.
  text::EmbeddingConfig embedding;
  int corpus_sentences_per_cluster = 120;
};

/// \brief Trains the context-model embedding on the KB-derived synthetic
/// corpus (topic clusters built from quantity-kind keywords and unit
/// labels; see DESIGN.md substitution table).
dimqr::Result<text::Embedding> BuildLinkerEmbedding(
    const kb::DimUnitKB& kb, const LinkerConfig& config = {});

/// \brief The unit linker. Immutable and thread-safe after construction.
class UnitLinker {
 public:
  /// Builds a linker over `kb`, training the context embedding.
  static dimqr::Result<std::shared_ptr<const UnitLinker>> Build(
      std::shared_ptr<const kb::DimUnitKB> kb, const LinkerConfig& config = {});

  /// \brief Links a mention within a context; returns candidates sorted by
  /// descending confidence ("all candidate units ... sorted in a descending
  /// order according to the confidence"). Empty when nothing clears the
  /// mention threshold.
  std::vector<LinkCandidate> Link(std::string_view mention,
                                  std::string_view context) const;

  /// The best link, or NotFound when no candidate clears the threshold.
  dimqr::Result<UnitId> Best(std::string_view mention,
                             std::string_view context) const;

  const kb::DimUnitKB& knowledge_base() const { return *kb_; }
  const text::Embedding& embedding() const { return embedding_; }
  const LinkerConfig& config() const { return config_; }

 private:
  UnitLinker(std::shared_ptr<const kb::DimUnitKB> kb, text::Embedding emb,
             LinkerConfig config);

  double ContextScore(const kb::UnitRecord& unit,
                      const std::vector<std::string>& context_tokens) const;

  std::shared_ptr<const kb::DimUnitKB> kb_;
  text::Embedding embedding_;
  LinkerConfig config_;
  /// Code-point length of each lowercased surface (indexed by
  /// SurfaceId::index()), so candidate generation can reject surfaces on
  /// the length-difference lower bound of the edit distance without
  /// running the DP.
  std::vector<std::uint32_t> surface_cp_len_;
};

}  // namespace dimqr::linking

#endif  // DIMQR_LINKING_LINKER_H_
