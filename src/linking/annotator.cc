#include "linking/annotator.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace dimqr::linking {
namespace {

using dimqr::Result;
using dimqr::Status;

/// True for tokens that end a unit mention (punctuation, another number).
bool BreaksUnitSpan(const text::Token& token) {
  if (token.kind == text::Token::Kind::kNumber) return true;
  if (token.kind == text::Token::Kind::kPunct) {
    // '/' and '^' and '*' occur inside compound unit symbols ("km/h",
    // "m/s^2", "N*m"); everything else breaks the span.
    return token.text != "/" && token.text != "^" && token.text != "*" &&
           token.text != "·";
  }
  return false;
}

}  // namespace

DimKsAnnotator::DimKsAnnotator(std::shared_ptr<const UnitLinker> linker,
                               AnnotatorOptions options)
    : linker_(std::move(linker)),
      options_(options),
      percent_(linker_->knowledge_base().IdOf("PERCENT")) {}

std::vector<QuantityAnnotation> DimKsAnnotator::Annotate(
    std::string_view textv) const {
  std::vector<QuantityAnnotation> out;
  std::vector<text::NumberMention> numbers = text::ScanNumbers(textv);
  if (numbers.empty()) return out;
  std::vector<text::Token> tokens = text::Tokenize(textv);

  for (const text::NumberMention& number : numbers) {
    QuantityAnnotation ann;
    ann.number = number;
    ann.unit_begin = ann.unit_end = number.end;

    if (number.is_percent) {
      // '%' is the unit; link it directly so downstream sees PERCENT.
      if (percent_.valid()) {
        ann.unit = percent_;
        ann.unit_text = "%";
        ann.unit_begin = number.end - 1;
        ann.unit_end = number.end;
        ann.link_confidence = 1.0;
      }
      out.push_back(std::move(ann));
      continue;
    }

    // Candidate unit mentions following the value: either the tail of a
    // token the number is glued into ("5kg" -> "kg"), or a short run of
    // adjacent tokens after it ("degrees Celsius").
    std::vector<std::pair<std::size_t, std::size_t>> mention_spans;
    for (const text::Token& tok : tokens) {
      if (tok.begin < number.end && tok.end > number.end) {
        mention_spans.emplace_back(number.end, tok.end);
        break;
      }
    }
    std::vector<const text::Token*> span;
    for (const text::Token& tok : tokens) {
      if (tok.begin < number.end) continue;
      if (!span.empty() &&
          tok.begin > span.back()->end + 1) {
        break;  // a gap of more than one byte ends the span
      }
      if (span.empty() && tok.begin > number.end + 1) break;
      if (BreaksUnitSpan(tok)) break;
      span.push_back(&tok);
      if (span.size() >= static_cast<std::size_t>(options_.max_unit_tokens)) {
        break;
      }
    }
    // Longest prefix first ("degrees Celsius" before "degrees").
    for (std::size_t take = span.size(); take >= 1; --take) {
      mention_spans.emplace_back(span[0]->begin, span[take - 1]->end);
    }

    std::string context(textv.substr(0, number.begin));
    if (number.end < textv.size()) {
      context += ' ';
      context += std::string(textv.substr(number.end));
    }
    for (const auto& [begin, end] : mention_spans) {
      std::string mention(textv.substr(begin, end - begin));
      std::vector<LinkCandidate> candidates = linker_->Link(mention, context);
      // Accept the best-scoring candidate among those whose *surface*
      // similarity clears the floor — a fuzzy high-frequency unit must not
      // veto an exact match ranked just below it.
      const LinkCandidate* accepted = nullptr;
      for (const LinkCandidate& cand : candidates) {
        if (cand.pr_mention >= options_.accept_threshold) {
          accepted = &cand;
          break;  // candidates are score-sorted: first eligible is best
        }
      }
      if (accepted != nullptr) {
        ann.unit = accepted->unit;
        ann.unit_text = mention;
        ann.unit_begin = begin;
        ann.unit_end = end;
        ann.link_confidence = accepted->score;
        break;
      }
    }
    out.push_back(std::move(ann));
  }
  return out;
}

Result<dimqr::Quantity> DimKsAnnotator::ToQuantity(
    const QuantityAnnotation& annotation) const {
  if (!annotation.HasUnit()) {
    return dimqr::Quantity(annotation.number.value,
                           dimqr::UnitSemantics::Dimensionless());
  }
  if (annotation.number.is_percent) {
    // NumberMention.value already folded the percent division in.
    return dimqr::Quantity(annotation.number.value,
                           dimqr::UnitSemantics::Dimensionless());
  }
  return dimqr::Quantity(
      annotation.number.value,
      linker_->knowledge_base().Get(annotation.unit).Semantics());
}

}  // namespace dimqr::linking
