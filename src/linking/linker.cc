#include "linking/linker.h"

#include <algorithm>
#include <cmath>

#include "text/corpus.h"
#include "text/levenshtein.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace dimqr::linking {
namespace {

using dimqr::Result;
using dimqr::Status;

/// Lowercased word terms of a unit usable as embedding/cluster tokens.
std::vector<std::string> UnitTerms(const kb::UnitRecord& unit) {
  std::vector<std::string> terms;
  auto add_words = [&terms](std::string_view s) {
    for (const std::string& tok : text::TokenizeLower(s)) {
      if (tok.size() >= 2 || (!tok.empty() && (tok[0] & 0x80))) {
        terms.push_back(tok);
      }
    }
  };
  add_words(unit.label_en);
  for (std::string_view alias : unit.aliases) add_words(alias);
  return terms;
}

}  // namespace

Result<text::Embedding> BuildLinkerEmbedding(const kb::DimUnitKB& kb,
                                             const LinkerConfig& config) {
  // One topic cluster per quantity kind: the kind's keywords plus the
  // labels of its most frequent units. In-cluster co-occurrence teaches the
  // embedding which context words go with which units.
  std::vector<text::TopicCluster> clusters;
  for (std::size_t ki = 0; ki < kb.kinds().size(); ++ki) {
    const kb::QuantityKindRecord& kind = kb.kinds()[ki];
    std::span<const UnitId> posting = kb.UnitsOfKind(KindId::FromIndex(ki));
    if (posting.empty()) continue;
    std::vector<const kb::UnitRecord*> members;
    members.reserve(posting.size());
    for (UnitId uid : posting) members.push_back(&kb.Get(uid));
    std::sort(members.begin(), members.end(),
              [](const kb::UnitRecord* a, const kb::UnitRecord* b) {
                return a->frequency > b->frequency;
              });
    text::TopicCluster cluster;
    cluster.name = kind.name;
    for (std::string_view k : kind.keywords) {
      cluster.terms.emplace_back(k);
    }
    std::size_t take = std::min<std::size_t>(members.size(), 8);
    for (std::size_t i = 0; i < take; ++i) {
      for (const std::string& term : UnitTerms(*members[i])) {
        cluster.terms.push_back(term);
      }
      for (std::string_view k : members[i]->keywords) {
        cluster.terms.emplace_back(k);
      }
    }
    clusters.push_back(std::move(cluster));
  }
  text::CorpusOptions corpus_options;
  corpus_options.sentences_per_cluster = config.corpus_sentences_per_cluster;
  corpus_options.seed = dimqr::Rng::DeriveSeed(20240131, "linker-corpus");
  std::vector<std::vector<std::string>> corpus =
      text::GenerateClusterCorpus(clusters, corpus_options);
  return text::Embedding::Train(corpus, config.embedding);
}

UnitLinker::UnitLinker(std::shared_ptr<const kb::DimUnitKB> kb,
                       text::Embedding emb, LinkerConfig config)
    : kb_(std::move(kb)), embedding_(std::move(emb)), config_(config) {
  const dimqr::SymbolTable& surfaces = kb_->lower_surfaces();
  surface_cp_len_.resize(surfaces.size());
  for (std::uint32_t s = 1; s <= surfaces.size(); ++s) {
    surface_cp_len_[s - 1] =
        static_cast<std::uint32_t>(text::Utf8Length(surfaces.Str(s)));
  }
}

Result<std::shared_ptr<const UnitLinker>> UnitLinker::Build(
    std::shared_ptr<const kb::DimUnitKB> kb, const LinkerConfig& config) {
  if (kb == nullptr) {
    return Status::InvalidArgument("UnitLinker needs a knowledge base");
  }
  DIMQR_ASSIGN_OR_RETURN(text::Embedding emb,
                         BuildLinkerEmbedding(*kb, config));
  return std::shared_ptr<const UnitLinker>(
      new UnitLinker(std::move(kb), std::move(emb), config));
}

double UnitLinker::ContextScore(
    const kb::UnitRecord& unit,
    const std::vector<std::string>& context_tokens) const {
  // Pr(u|c) = (1/n) sum_i max_j cos(c_i, k_j).
  if (context_tokens.empty() || unit.keywords.empty()) {
    return 0.5;  // uninformative context: neutral factor
  }
  double sum = 0.0;
  for (const std::string& token : context_tokens) {
    double best = 0.0;
    for (std::string_view keyword : unit.keywords) {
      best = std::max(best, embedding_.CosineSimilarity(token, keyword));
    }
    sum += best;
  }
  double mean = sum / static_cast<double>(context_tokens.size());
  // Cosines live in [-1, 1]; clamp into a probability-like range with a
  // small floor so an uninformative context never zeroes the product (which
  // would make the final ranking an arbitrary tie).
  return std::clamp(mean, 0.05, 1.0);
}

std::vector<LinkCandidate> UnitLinker::Link(std::string_view mention,
                                            std::string_view context) const {
  // --- Step 1: candidate generation over the KB's surface table ---
  // The similarity is ASCII-case-insensitive, so scoring each *distinct
  // lowercased* surface once and fanning the score out over its posting
  // list gives the same per-unit best similarity as scanning a flattened
  // (surface, unit) dictionary — at a fraction of the edit-distance calls.
  const dimqr::SymbolTable& surfaces = kb_->lower_surfaces();
  // Levenshtein distance is at least the code-point length difference, so
  // 1 - diff/max_len upper-bounds the similarity; surfaces whose bound
  // already misses the threshold skip the DP entirely. ASCII lowercasing
  // preserves code-point counts, so the mention's length is exact.
  const std::size_t mention_len = text::Utf8Length(mention);
  std::vector<double> best_similarity(kb_->num_units(), -1.0);
  std::vector<UnitId> hits;
  for (std::uint32_t s = 1; s <= surfaces.size(); ++s) {
    const std::size_t surface_len = surface_cp_len_[s - 1];
    const std::size_t longest = std::max(surface_len, mention_len);
    if (longest > 0) {
      const std::size_t diff = surface_len > mention_len
                                   ? surface_len - mention_len
                                   : mention_len - surface_len;
      double bound = 1.0 - static_cast<double>(diff) /
                               static_cast<double>(longest);
      if (bound < config_.mention_threshold) continue;
    }
    double sim =
        text::LevenshteinSimilarityIgnoreCase(surfaces.Str(s), mention);
    if (sim < config_.mention_threshold) continue;
    for (UnitId uid : kb_->UnitsOfLowerSurface(SurfaceId(s))) {
      if (best_similarity[uid.index()] < 0.0) hits.push_back(uid);
      if (sim > best_similarity[uid.index()]) {
        best_similarity[uid.index()] = sim;
      }
    }
  }
  if (hits.empty()) return {};

  // --- Step 2: context-based scoring ---
  std::vector<std::string> context_tokens;
  for (const text::Token& tok : text::Tokenize(context)) {
    if (tok.kind == text::Token::Kind::kWord ||
        tok.kind == text::Token::Kind::kCjk) {
      context_tokens.push_back(text::ToLowerAscii(tok.text));
    }
  }

  std::vector<LinkCandidate> candidates;
  candidates.reserve(hits.size());
  for (UnitId uid : hits) {
    const kb::UnitRecord& unit = kb_->Get(uid);
    LinkCandidate cand;
    cand.unit = uid;
    cand.pr_mention = best_similarity[uid.index()];
    cand.pr_prior = unit.frequency;
    cand.pr_context =
        config_.use_context ? ContextScore(unit, context_tokens) : 1.0;
    cand.score = 1.0;
    if (config_.use_mention) {
      cand.score *= std::pow(cand.pr_mention, config_.mention_sharpness);
    }
    if (config_.use_prior) cand.score *= cand.pr_prior;
    if (config_.use_context) cand.score *= cand.pr_context;
    candidates.push_back(cand);
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](const LinkCandidate& a, const LinkCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return kb_->Get(a.unit).id < kb_->Get(b.unit).id;
            });
  if (candidates.size() > config_.max_candidates) {
    candidates.resize(config_.max_candidates);
  }
  return candidates;
}

Result<UnitId> UnitLinker::Best(std::string_view mention,
                                std::string_view context) const {
  std::vector<LinkCandidate> candidates = Link(mention, context);
  if (candidates.empty()) {
    return Status::NotFound("no unit candidate for mention '" +
                            std::string(mention) + "'");
  }
  return candidates.front().unit;
}

}  // namespace dimqr::linking
