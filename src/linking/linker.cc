#include "linking/linker.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/corpus.h"
#include "text/levenshtein.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace dimqr::linking {
namespace {

using dimqr::Result;
using dimqr::Status;

/// Lowercased word terms of a unit usable as embedding/cluster tokens.
std::vector<std::string> UnitTerms(const kb::UnitRecord& unit) {
  std::vector<std::string> terms;
  auto add_words = [&terms](std::string_view s) {
    for (const std::string& tok : text::TokenizeLower(s)) {
      if (tok.size() >= 2 || (!tok.empty() && (tok[0] & 0x80))) {
        terms.push_back(tok);
      }
    }
  };
  add_words(unit.label_en);
  for (const std::string& alias : unit.aliases) add_words(alias);
  return terms;
}

}  // namespace

Result<text::Embedding> BuildLinkerEmbedding(const kb::DimUnitKB& kb,
                                             const LinkerConfig& config) {
  // One topic cluster per quantity kind: the kind's keywords plus the
  // labels of its most frequent units. In-cluster co-occurrence teaches the
  // embedding which context words go with which units.
  std::vector<text::TopicCluster> clusters;
  for (const kb::QuantityKindRecord& kind : kb.kinds()) {
    std::vector<const kb::UnitRecord*> members = kb.UnitsOfKind(kind.name);
    if (members.empty()) continue;
    std::sort(members.begin(), members.end(),
              [](const kb::UnitRecord* a, const kb::UnitRecord* b) {
                return a->frequency > b->frequency;
              });
    text::TopicCluster cluster;
    cluster.name = kind.name;
    for (const std::string& k : kind.keywords) cluster.terms.push_back(k);
    std::size_t take = std::min<std::size_t>(members.size(), 8);
    for (std::size_t i = 0; i < take; ++i) {
      for (const std::string& term : UnitTerms(*members[i])) {
        cluster.terms.push_back(term);
      }
      for (const std::string& k : members[i]->keywords) {
        cluster.terms.push_back(k);
      }
    }
    clusters.push_back(std::move(cluster));
  }
  text::CorpusOptions corpus_options;
  corpus_options.sentences_per_cluster = config.corpus_sentences_per_cluster;
  corpus_options.seed = dimqr::Rng::DeriveSeed(20240131, "linker-corpus");
  std::vector<std::vector<std::string>> corpus =
      text::GenerateClusterCorpus(clusters, corpus_options);
  return text::Embedding::Train(corpus, config.embedding);
}

UnitLinker::UnitLinker(std::shared_ptr<const kb::DimUnitKB> kb,
                       text::Embedding emb, LinkerConfig config)
    : kb_(std::move(kb)), embedding_(std::move(emb)), config_(config) {
  const std::vector<kb::UnitRecord>& units = kb_->units();
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const std::string& surface : units[i].SurfaceForms()) {
      if (!surface.empty()) naming_dictionary_.emplace_back(surface, i);
    }
  }
}

Result<std::shared_ptr<const UnitLinker>> UnitLinker::Build(
    std::shared_ptr<const kb::DimUnitKB> kb, const LinkerConfig& config) {
  if (kb == nullptr) {
    return Status::InvalidArgument("UnitLinker needs a knowledge base");
  }
  DIMQR_ASSIGN_OR_RETURN(text::Embedding emb,
                         BuildLinkerEmbedding(*kb, config));
  return std::shared_ptr<const UnitLinker>(
      new UnitLinker(std::move(kb), std::move(emb), config));
}

double UnitLinker::ContextScore(
    const kb::UnitRecord& unit,
    const std::vector<std::string>& context_tokens) const {
  // Pr(u|c) = (1/n) sum_i max_j cos(c_i, k_j).
  if (context_tokens.empty() || unit.keywords.empty()) {
    return 0.5;  // uninformative context: neutral factor
  }
  double sum = 0.0;
  for (const std::string& token : context_tokens) {
    double best = 0.0;
    for (const std::string& keyword : unit.keywords) {
      best = std::max(best, embedding_.CosineSimilarity(token, keyword));
    }
    sum += best;
  }
  double mean = sum / static_cast<double>(context_tokens.size());
  // Cosines live in [-1, 1]; clamp into a probability-like range with a
  // small floor so an uninformative context never zeroes the product (which
  // would make the final ranking an arbitrary tie).
  return std::clamp(mean, 0.05, 1.0);
}

std::vector<LinkCandidate> UnitLinker::Link(std::string_view mention,
                                            std::string_view context) const {
  // --- Step 1: candidate generation over the naming dictionary ---
  const std::vector<kb::UnitRecord>& units = kb_->units();
  std::unordered_map<std::size_t, double> best_similarity;
  for (const auto& [surface, index] : naming_dictionary_) {
    double sim = text::LevenshteinSimilarityIgnoreCase(surface, mention);
    if (sim < config_.mention_threshold) continue;
    auto it = best_similarity.find(index);
    if (it == best_similarity.end() || sim > it->second) {
      best_similarity[index] = sim;
    }
  }
  if (best_similarity.empty()) return {};

  // --- Step 2: context-based scoring ---
  std::vector<std::string> context_tokens;
  for (const text::Token& tok : text::Tokenize(context)) {
    if (tok.kind == text::Token::Kind::kWord ||
        tok.kind == text::Token::Kind::kCjk) {
      context_tokens.push_back(text::ToLowerAscii(tok.text));
    }
  }

  std::vector<LinkCandidate> candidates;
  candidates.reserve(best_similarity.size());
  for (const auto& [index, sim] : best_similarity) {
    const kb::UnitRecord& unit = units[index];
    LinkCandidate cand;
    cand.unit = &unit;
    cand.pr_mention = sim;
    cand.pr_prior = unit.frequency;
    cand.pr_context =
        config_.use_context ? ContextScore(unit, context_tokens) : 1.0;
    cand.score = 1.0;
    if (config_.use_mention) {
      cand.score *= std::pow(cand.pr_mention, config_.mention_sharpness);
    }
    if (config_.use_prior) cand.score *= cand.pr_prior;
    if (config_.use_context) cand.score *= cand.pr_context;
    candidates.push_back(cand);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const LinkCandidate& a, const LinkCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.unit->id < b.unit->id;
            });
  if (candidates.size() > config_.max_candidates) {
    candidates.resize(config_.max_candidates);
  }
  return candidates;
}

Result<const kb::UnitRecord*> UnitLinker::Best(std::string_view mention,
                                               std::string_view context) const {
  std::vector<LinkCandidate> candidates = Link(mention, context);
  if (candidates.empty()) {
    return Status::NotFound("no unit candidate for mention '" +
                            std::string(mention) + "'");
  }
  return candidates.front().unit;
}

}  // namespace dimqr::linking
