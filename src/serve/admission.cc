#include "serve/admission.h"

#include <algorithm>

namespace dimqr::serve {

AdmissionQueue::AdmissionQueue(const AdmissionConfig& config)
    : config_(config) {
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  if (config_.max_join_per_round < 1) config_.max_join_per_round = 1;
  if (config_.shed_join_per_round < 1) config_.shed_join_per_round = 1;
  config_.shed_enter_occupancy =
      std::clamp(config_.shed_enter_occupancy, 0.0, 1.0);
  config_.shed_exit_occupancy = std::clamp(config_.shed_exit_occupancy, 0.0,
                                           config_.shed_enter_occupancy);
}

Status AdmissionQueue::Offer(const ServeRequest& request) {
  ++stats_.offered;
  if (full()) {
    ++stats_.rejected_full;
    return Status::Unavailable("serve queue full");
  }
  pending_.push_back(Pending{request, next_sequence_++});
  return Status::OK();
}

bool AdmissionQueue::PopNext(ServeRequest* out) {
  if (pending_.empty()) return false;
  auto best = pending_.begin();
  for (auto it = std::next(best); it != pending_.end(); ++it) {
    if (it->request.priority > best->request.priority) best = it;
    // Sequence numbers are monotonic, so the first entry seen at a
    // priority level is already the oldest one.
  }
  *out = std::move(best->request);
  pending_.erase(best);
  return true;
}

std::vector<ServeRequest> AdmissionQueue::DrainExpired(std::uint64_t now) {
  std::vector<ServeRequest> expired;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->request.DeadlineTick() <= now) {
      expired.push_back(std::move(it->request));
      it = pending_.erase(it);
      ++stats_.expired;
    } else {
      ++it;
    }
  }
  return expired;
}

bool AdmissionQueue::UpdateShedding() {
  const double occupancy =
      static_cast<double>(pending_.size()) /
      static_cast<double>(config_.queue_capacity);
  if (!shedding_ && occupancy >= config_.shed_enter_occupancy) {
    shedding_ = true;
    ++stats_.shed_entries;
    return true;
  }
  if (shedding_ && occupancy <= config_.shed_exit_occupancy) {
    shedding_ = false;
    ++stats_.shed_exits;
  }
  return false;
}

std::vector<ServeRequest> AdmissionQueue::ShedToExitWatermark() {
  std::vector<ServeRequest> shed;
  if (!shedding_) return shed;
  const auto watermark = static_cast<std::size_t>(
      config_.shed_exit_occupancy *
      static_cast<double>(config_.queue_capacity));
  while (pending_.size() > watermark) {
    // Victim: lowest priority; newest (highest sequence) within it — the
    // entry that would have waited longest for the least important work.
    auto victim = pending_.begin();
    for (auto it = std::next(victim); it != pending_.end(); ++it) {
      if (it->request.priority < victim->request.priority ||
          (it->request.priority == victim->request.priority &&
           it->sequence > victim->sequence)) {
        victim = it;
      }
    }
    shed.push_back(std::move(victim->request));
    pending_.erase(victim);
    ++stats_.shed;
  }
  return shed;
}

}  // namespace dimqr::serve
