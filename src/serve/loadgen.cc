#include "serve/loadgen.h"

#include <algorithm>

#include "core/rng.h"
#include "lm/vocab.h"

namespace dimqr::serve {
namespace {

/// A non-special token id drawn uniformly from [kCount, vocab).
int DrawToken(Rng& rng, int vocab) {
  return static_cast<int>(
      rng.UniformInt(lm::SpecialTokens::kCount, vocab - 1));
}

}  // namespace

std::vector<ServeRequest> GenerateLoad(const LoadGenConfig& config) {
  LoadGenConfig c = config;
  c.num_requests = std::max(c.num_requests, 0);
  c.vocab_size = std::max(c.vocab_size, lm::SpecialTokens::kCount + 1);
  c.num_stems = std::max(c.num_stems, 1);
  c.stem_tokens = std::max(c.stem_tokens, 2);
  c.max_tail_tokens = std::max(c.max_tail_tokens, 1);
  c.max_burst = std::max(c.max_burst, 1);
  c.max_gap_ticks = std::max(c.max_gap_ticks, 1);

  // Shared prompt stems: one stream for the pool, fixed before any
  // per-request draw so trace shape and stem content are independent.
  Rng stem_rng(Rng::DeriveSeed(c.seed, "serve.loadgen.stems"));
  std::vector<std::vector<int>> stems(static_cast<std::size_t>(c.num_stems));
  for (std::vector<int>& stem : stems) {
    stem.push_back(lm::SpecialTokens::kBos);
    for (int t = 1; t < c.stem_tokens; ++t) {
      stem.push_back(DrawToken(stem_rng, c.vocab_size));
    }
  }

  // Bursty arrival process: its own stream, advanced burst by burst.
  Rng arrival_rng(Rng::DeriveSeed(c.seed, "serve.loadgen.arrivals"));
  std::vector<ServeRequest> trace;
  trace.reserve(static_cast<std::size_t>(c.num_requests));
  std::uint64_t tick = 0;
  std::uint64_t id = 0;
  while (id < static_cast<std::uint64_t>(c.num_requests)) {
    const auto burst = static_cast<std::uint64_t>(
        arrival_rng.UniformInt(1, c.max_burst));
    for (std::uint64_t b = 0;
         b < burst && id < static_cast<std::uint64_t>(c.num_requests);
         ++b, ++id) {
      // Per-request stream: fields depend only on (seed, id), never on
      // how earlier requests consumed randomness.
      Rng rng = Rng::ForStream(c.seed, id);
      ServeRequest request;
      request.id = id;
      request.arrival_tick = tick;
      request.seed = Rng::SplitSeed(c.seed, id);
      request.prompt = stems[rng.Index(stems.size())];
      const auto tail = static_cast<int>(rng.UniformInt(1, c.max_tail_tokens));
      for (int t = 0; t < tail; ++t) {
        request.prompt.push_back(DrawToken(rng, c.vocab_size));
      }
      request.max_new_tokens = c.max_new_tokens;
      request.priority = static_cast<Priority>(rng.UniformInt(0, 2));
      if (c.deadline_max_ticks > 0) {
        request.deadline_ticks = static_cast<std::uint64_t>(rng.UniformInt(
            static_cast<std::int64_t>(
                std::min(c.deadline_min_ticks, c.deadline_max_ticks)),
            static_cast<std::int64_t>(c.deadline_max_ticks)));
      }
      trace.push_back(std::move(request));
    }
    tick += static_cast<std::uint64_t>(
        arrival_rng.UniformInt(1, c.max_gap_ticks));
  }
  return trace;
}

dimqr::Result<lm::Transformer> BuildCanonicalServeModel() {
  lm::TransformerConfig config;
  config.vocab_size = 24;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 32;
  config.max_seq = 32;
  config.seed = 13;
  DIMQR_ASSIGN_OR_RETURN(lm::Transformer model,
                         lm::Transformer::Create(config));
  lm::LmExample example;
  example.tokens = {1, 7, 8, 9, 10, 2};
  example.loss_mask = {0, 0, 1, 1, 1, 1};
  for (int step = 0; step < 30; ++step) {
    DIMQR_RETURN_NOT_OK(model.TrainBatch({example}, 3e-3).status());
  }
  return model;
}

}  // namespace dimqr::serve
