#include "serve/server.h"

#include <algorithm>
#include <cstdint>

#include "core/fault.h"
#include "core/parallel.h"

namespace dimqr::serve {
namespace {

/// Prefill cost in simulated ticks for `uncached` prompt tokens.
std::uint64_t PrefillTicks(int uncached, int tokens_per_tick) {
  if (uncached <= 0) return 0;
  return static_cast<std::uint64_t>((uncached + tokens_per_tick - 1) /
                                    tokens_per_tick);
}

}  // namespace

Server::Server(const lm::Transformer& model, const ServerConfig& config)
    : model_(model), config_(config), queue_(config.admission),
      cache_(config.cache) {
  if (config_.slots < 1) config_.slots = 1;
  if (config_.prefill_tokens_per_tick < 1) config_.prefill_tokens_per_tick = 1;
  if (config_.transient_attempt_limit < 1) config_.transient_attempt_limit = 1;
  slots_.resize(static_cast<std::size_t>(config_.slots));
}

bool Server::AnyActive() const {
  for (const Slot& slot : slots_) {
    if (slot.active) return true;
  }
  return false;
}

ServeOutcome Server::DropOutcome(const ServeRequest& request,
                                 OutcomeKind kind, StatusCode code) const {
  ServeOutcome outcome;
  outcome.id = request.id;
  outcome.kind = kind;
  outcome.code = code;
  outcome.priority = request.priority;
  outcome.arrival_tick = request.arrival_tick;
  outcome.finish_tick = clock_;
  return outcome;
}

void Server::Retire(Slot& slot, OutcomeKind kind, StatusCode code,
                    std::vector<ServeOutcome>& outcomes) {
  ServeOutcome outcome;
  outcome.id = slot.request.id;
  outcome.kind = kind;
  outcome.code = code;
  outcome.priority = slot.request.priority;
  outcome.tokens = std::move(slot.generated);
  outcome.cached_prompt_tokens = slot.cached_tokens;
  outcome.arrival_tick = slot.request.arrival_tick;
  outcome.admit_tick = slot.admit_tick;
  outcome.finish_tick = clock_;
  outcomes.push_back(std::move(outcome));
  slot.generated.clear();
  slot.active = false;
  slot.prefilled = false;
  slot.finished = false;
  slot.cached_tokens = 0;
  slot.transient_attempts = 0;
  slot.stall_ticks = 0;
  switch (kind) {
    case OutcomeKind::kCompleted:
      ++stats_.completed;
      break;
    case OutcomeKind::kDeadlineExceeded:
      ++stats_.deadline_missed;
      break;
    case OutcomeKind::kFailed:
      ++stats_.failed;
      break;
    default:
      break;
  }
}

Result<std::vector<ServeOutcome>> Server::Run(
    std::vector<ServeRequest> requests) {
  // Canonical event order: arrival tick, then id. Duplicate ids would make
  // the journal ambiguous, so they are an input error.
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_tick != b.arrival_tick
                                ? a.arrival_tick < b.arrival_tick
                                : a.id < b.id;
                   });
  {
    std::vector<std::uint64_t> ids;
    ids.reserve(requests.size());
    for (const ServeRequest& r : requests) ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
      return Status::InvalidArgument("duplicate request id in trace");
    }
  }

  lm::PrefixCache* cache =
      config_.use_prefix_cache && lm::PrefixCache::Enabled() ? &cache_
                                                             : nullptr;
  const int max_seq = model_.config().max_seq;
  std::vector<ServeOutcome> outcomes;
  outcomes.reserve(requests.size());
  std::size_t next = 0;
  clock_ = 0;

  while (next < requests.size() || !queue_.empty() || AnyActive()) {
    // Idle gap in the trace: jump straight to the next arrival.
    if (!AnyActive() && queue_.empty() &&
        requests[next].arrival_tick > clock_) {
      clock_ = requests[next].arrival_tick;
    }
    std::uint64_t round_cost = 1;

    // Phase 1 — arrivals and admission control. The serve.queue_full site
    // forces rejections for affected requests, simulating an ingress that
    // drops before the queue ever sees the request.
    while (next < requests.size() &&
           requests[next].arrival_tick <= clock_) {
      ServeRequest& request = requests[next++];
      if (FAULT_POINT("serve.queue_full")
              .Evaluate(request.seed, /*attempt=*/0)
              .Fires()) {
        ++stats_.rejected;
        ++stats_.fault_rejections;
        outcomes.push_back(DropOutcome(request, OutcomeKind::kRejected,
                                       StatusCode::kUnavailable));
        continue;
      }
      if (queue_.full()) {
        (void)queue_.Offer(request);  // Counts the rejection.
        ++stats_.rejected;
        outcomes.push_back(DropOutcome(request, OutcomeKind::kRejected,
                                       StatusCode::kUnavailable));
        continue;
      }
      DIMQR_RETURN_NOT_OK(queue_.Offer(request));
    }
    stats_.peak_queue_depth = std::max(
        stats_.peak_queue_depth, static_cast<std::uint64_t>(queue_.size()));

    // Phase 2 — queued requests whose deadline already passed can only
    // miss harder by joining; decline them now.
    for (ServeRequest& expired : queue_.DrainExpired(clock_)) {
      ++stats_.deadline_missed;
      outcomes.push_back(DropOutcome(expired, OutcomeKind::kDeadlineExceeded,
                                     StatusCode::kDeadlineExceeded));
    }

    // Phase 3 — load shedding with hysteresis. Entering shedding evicts
    // every prefix-cache snapshot (memory headroom now, re-paid prefill
    // later); while shedding, low-priority queued work is declined.
    if (queue_.UpdateShedding() && cache != nullptr) {
      stats_.shed_cache_evictions += cache->EvictAll();
    }
    for (ServeRequest& victim : queue_.ShedToExitWatermark()) {
      ++stats_.shed;
      outcomes.push_back(DropOutcome(victim, OutcomeKind::kShed,
                                     StatusCode::kUnavailable));
    }

    // Phase 4 — continuous batching: waiting requests join free slots at
    // this token boundary, up to the (possibly shed-shrunken) budget.
    int join_budget = queue_.join_budget();
    for (Slot& slot : slots_) {
      if (join_budget == 0) break;
      if (slot.active) continue;
      ServeRequest request;
      if (!queue_.PopNext(&request)) break;
      --join_budget;
      // Clamp the generation budget so prompt + new tokens fit max_seq.
      request.max_new_tokens =
          std::min(request.max_new_tokens, max_seq - 1);
      slot.request = std::move(request);
      slot.active = true;
      slot.admit_tick = clock_;
    }

    // Phase 5 — prefill newly joined (or transiently stalled) slots,
    // sequentially: PrefillWithCache mutates the shared cache, and a fixed
    // slot order keeps its contents identical at every thread count.
    for (Slot& slot : slots_) {
      if (!slot.active || slot.prefilled) continue;
      FaultDecision fault = FAULT_POINT("serve.backend_transient")
                                .Evaluate(slot.request.seed,
                                          slot.transient_attempts);
      ++slot.transient_attempts;
      if (fault.kind == FaultKind::kPermanent) {
        Retire(slot, OutcomeKind::kFailed, StatusCode::kInternal, outcomes);
        continue;
      }
      if (fault.kind == FaultKind::kTransient) {
        // The backend refused this round's prefill; the slot waits a
        // token boundary and retries until the attempt budget runs out.
        if (slot.transient_attempts >= config_.transient_attempt_limit) {
          Retire(slot, OutcomeKind::kFailed, StatusCode::kUnavailable,
                 outcomes);
        } else {
          ++stats_.transient_retries;
        }
        continue;
      }
      if (fault.kind == FaultKind::kLatency) {
        round_cost += static_cast<std::uint64_t>(fault.latency_ticks);
      }
      // Left-truncate like Greedy so the generation budget always fits.
      const int budget = std::max(1, max_seq - slot.request.max_new_tokens);
      const std::vector<int>& prompt = slot.request.prompt;
      std::vector<int> truncated;
      const std::vector<int>* effective = &prompt;
      if (static_cast<int>(prompt.size()) > budget) {
        truncated.assign(prompt.end() - budget, prompt.end());
        effective = &truncated;
      }
      Result<int> seeded =
          model_.PrefillWithCache(*effective, slot.state, cache);
      if (!seeded.ok()) {
        Retire(slot, OutcomeKind::kFailed, seeded.status().code(), outcomes);
        continue;
      }
      slot.prefilled = true;
      slot.cached_tokens = seeded.ValueOrDie();
      const int uncached =
          static_cast<int>(effective->size()) - slot.cached_tokens;
      stats_.prefill_tokens += static_cast<std::uint64_t>(uncached);
      stats_.cached_tokens +=
          static_cast<std::uint64_t>(slot.cached_tokens);
      round_cost += PrefillTicks(uncached, config_.prefill_tokens_per_tick);
      if (slot.request.max_new_tokens <= 0) slot.finished = true;
    }

    // Phase 6 — cooperative deadline cancellation at the token boundary:
    // partial decodes are kept and accounted, not discarded.
    for (Slot& slot : slots_) {
      if (slot.active && !slot.finished &&
          slot.request.DeadlineTick() <= clock_) {
        Retire(slot, OutcomeKind::kDeadlineExceeded,
               StatusCode::kDeadlineExceeded, outcomes);
      }
    }

    // Phase 7 — decode one token on every live slot. Slot state is
    // slot-local, so the fan-out cannot reorder anything observable; the
    // batch then waits for its slowest member (worst injected stall).
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (!slot.active || !slot.prefilled || slot.finished) continue;
      FaultDecision stall =
          FAULT_POINT("serve.slot_stall")
              .Evaluate(slot.request.seed,
                        static_cast<int>(slot.generated.size()));
      slot.stall_ticks = stall.kind == FaultKind::kLatency
                             ? static_cast<std::uint64_t>(stall.latency_ticks)
                             : 0;
      live.push_back(i);
    }
    if (!live.empty()) {
      std::vector<std::size_t> before(live.size());
      for (std::size_t k = 0; k < live.size(); ++k) {
        before[k] = slots_[live[k]].generated.size();
      }
      Status decode = ParallelFor(
          static_cast<std::int64_t>(live.size()),
          [&](std::int64_t begin, std::int64_t end, int) -> Status {
            for (std::int64_t k = begin; k < end; ++k) {
              Slot& slot = slots_[live[static_cast<std::size_t>(k)]];
              const int token = lm::ArgmaxLowest(slot.state.logits());
              if (token == config_.eos_token) {
                slot.finished = true;
                continue;
              }
              slot.generated.push_back(token);
              if (static_cast<int>(slot.generated.size()) >=
                      slot.request.max_new_tokens ||
                  slot.state.position() >= max_seq) {
                slot.finished = true;
                continue;
              }
              DIMQR_RETURN_NOT_OK(model_.Step(slot.state, token));
            }
            return Status::OK();
          });
      DIMQR_RETURN_NOT_OK(decode);
      std::uint64_t worst_stall = 0;
      for (std::size_t k = 0; k < live.size(); ++k) {
        Slot& slot = slots_[live[k]];
        stats_.decode_tokens += slot.generated.size() - before[k];
        worst_stall = std::max(worst_stall, slot.stall_ticks);
        slot.stall_ticks = 0;
      }
      round_cost += worst_stall;
      stats_.stall_ticks += worst_stall;
    }

    // Phase 8 — advance the clock past this round's work, then retire
    // finished slots at the new boundary.
    clock_ += round_cost;
    ++stats_.rounds;
    for (Slot& slot : slots_) {
      if (slot.active && slot.finished) {
        Retire(slot, OutcomeKind::kCompleted, StatusCode::kOk, outcomes);
      }
    }
  }

  std::sort(outcomes.begin(), outcomes.end(),
            [](const ServeOutcome& a, const ServeOutcome& b) {
              return a.id < b.id;
            });
  return outcomes;
}

}  // namespace dimqr::serve
