#ifndef DIMQR_SERVE_REPORT_H_
#define DIMQR_SERVE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"

/// \file report.h
/// Outcome accounting for serve runs: the per-request journal (one
/// canonical line per request, sorted by id — the artifact the chaos CI
/// job diffs across thread counts and reruns) and the aggregate report
/// (latency percentiles on the simulated clock, throughput, shed and
/// deadline-miss rates — the numbers BENCH_perf.json publishes).

namespace dimqr::serve {

/// \brief Aggregates over one trace's outcomes. Latency percentiles are
/// nearest-rank over *completed* requests; rates are per offered request.
struct ServeReport {
  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t deadline_missed = 0;
  std::size_t failed = 0;
  std::size_t generated_tokens = 0;  ///< Completed + partial decodes.
  std::uint64_t p50_latency_ticks = 0;
  std::uint64_t p95_latency_ticks = 0;
  std::uint64_t p99_latency_ticks = 0;
  std::uint64_t span_ticks = 0;  ///< First arrival to last finish.

  double TokensPerTick() const {
    return span_ticks == 0 ? 0.0
                           : static_cast<double>(generated_tokens) /
                                 static_cast<double>(span_ticks);
  }
  double ShedRate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(rejected + shed) /
                            static_cast<double>(total);
  }
  double DeadlineMissRate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(deadline_missed) /
                            static_cast<double>(total);
  }
};

/// \brief Builds the aggregate report from a trace's outcomes.
ServeReport BuildReport(const std::vector<ServeOutcome>& outcomes);

/// \brief The canonical per-request journal: one line per outcome, sorted
/// by id, every field that distinguishes two runs included (kind, code,
/// ticks, cached tokens, and the generated token ids themselves). Two runs
/// with equal traces and fault specs must produce byte-identical journals
/// at any DIMQR_THREADS setting — the serve-chaos CI assertion.
std::string FormatJournal(const std::vector<ServeOutcome>& outcomes);

/// \brief Human-readable one-line-per-metric summary of a report.
std::string FormatReport(const ServeReport& report);

}  // namespace dimqr::serve

#endif  // DIMQR_SERVE_REPORT_H_
