#ifndef DIMQR_SERVE_LOADGEN_H_
#define DIMQR_SERVE_LOADGEN_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "lm/transformer.h"
#include "serve/request.h"

/// \file loadgen.h
/// Deterministic synthetic load generator for the serving layer: bursty
/// arrivals (a burst of requests lands on one tick, then an idle gap), a
/// small pool of shared prompt stems with per-request tails — the shape
/// that makes the PrefixCache earn its keep — and a seeded mix of
/// priorities and deadlines.
///
/// Everything is derived from `seed` via Rng::DeriveSeed /
/// Rng::SplitSeed(seed, request id), so one config produces the identical
/// trace on every run, machine, and thread count. The chaos CI job leans
/// on this: same trace + same DIMQR_FAULTS must give a byte-identical
/// outcome journal.

namespace dimqr::serve {

/// \brief Trace-shape knobs. Defaults produce a short bursty trace that
/// oversubscribes a small server without being degenerate.
struct LoadGenConfig {
  int num_requests = 64;
  std::uint64_t seed = 1;
  /// Token vocabulary for synthetic prompts (use the model's vocab_size);
  /// ids are drawn from [SpecialTokens::kCount, vocab_size).
  int vocab_size = 32;
  int num_stems = 3;        ///< Distinct shared prompt stems.
  int stem_tokens = 12;     ///< Tokens per stem (incl. leading bos).
  int max_tail_tokens = 6;  ///< Per-request unique suffix, 1..max.
  int max_new_tokens = 8;
  /// Burst geometry: each burst puts 1..max_burst requests on one tick,
  /// then the clock idles 1..max_gap_ticks before the next burst.
  int max_burst = 6;
  int max_gap_ticks = 16;
  /// Per-request deadline drawn uniformly from [deadline_min_ticks,
  /// deadline_max_ticks]; 0 max disables deadlines entirely.
  std::uint64_t deadline_min_ticks = 0;
  std::uint64_t deadline_max_ticks = 0;
};

/// \brief Generates the trace: requests with ids 0..num_requests-1 in
/// arrival order. Pure in `config` (no global state, no wall clock).
std::vector<ServeRequest> GenerateLoad(const LoadGenConfig& config);

/// \brief The fixed-seed model every serve_loadgen invocation shares:
/// creation and the short training run are fully deterministic, so two
/// runs (on any machine) serve identical logits. `dimqr_snapshot pack`
/// stores exactly this model under section "serve", and serve_loadgen
/// `--snapshot` maps it back instead of retraining.
dimqr::Result<lm::Transformer> BuildCanonicalServeModel();

}  // namespace dimqr::serve

#endif  // DIMQR_SERVE_LOADGEN_H_
