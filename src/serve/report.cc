#include "serve/report.h"

#include <algorithm>
#include <cstdio>

#include "eval/metrics.h"

namespace dimqr::serve {

std::string_view PriorityToString(Priority priority) {
  switch (priority) {
    case Priority::kLow:
      return "low";
    case Priority::kNormal:
      return "normal";
    case Priority::kHigh:
      return "high";
  }
  return "unknown";
}

std::string_view OutcomeKindToString(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kCompleted:
      return "completed";
    case OutcomeKind::kRejected:
      return "rejected";
    case OutcomeKind::kShed:
      return "shed";
    case OutcomeKind::kDeadlineExceeded:
      return "deadline_exceeded";
    case OutcomeKind::kFailed:
      return "failed";
  }
  return "unknown";
}

ServeReport BuildReport(const std::vector<ServeOutcome>& outcomes) {
  ServeReport report;
  report.total = outcomes.size();
  std::vector<std::uint64_t> latencies;
  std::uint64_t first_arrival = ~std::uint64_t{0};
  std::uint64_t last_finish = 0;
  for (const ServeOutcome& outcome : outcomes) {
    first_arrival = std::min(first_arrival, outcome.arrival_tick);
    last_finish = std::max(last_finish, outcome.finish_tick);
    report.generated_tokens += outcome.tokens.size();
    switch (outcome.kind) {
      case OutcomeKind::kCompleted:
        ++report.completed;
        latencies.push_back(outcome.LatencyTicks());
        break;
      case OutcomeKind::kRejected:
        ++report.rejected;
        break;
      case OutcomeKind::kShed:
        ++report.shed;
        break;
      case OutcomeKind::kDeadlineExceeded:
        ++report.deadline_missed;
        break;
      case OutcomeKind::kFailed:
        ++report.failed;
        break;
    }
  }
  if (!outcomes.empty() && last_finish > first_arrival) {
    report.span_ticks = last_finish - first_arrival;
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_latency_ticks = eval::NearestRankPercentile(latencies, 50.0);
  report.p95_latency_ticks = eval::NearestRankPercentile(latencies, 95.0);
  report.p99_latency_ticks = eval::NearestRankPercentile(latencies, 99.0);
  return report;
}

std::string FormatJournal(const std::vector<ServeOutcome>& outcomes) {
  std::vector<const ServeOutcome*> ordered;
  ordered.reserve(outcomes.size());
  for (const ServeOutcome& outcome : outcomes) ordered.push_back(&outcome);
  std::sort(ordered.begin(), ordered.end(),
            [](const ServeOutcome* a, const ServeOutcome* b) {
              return a->id < b->id;
            });
  std::string journal;
  char line[192];
  for (const ServeOutcome* outcome : ordered) {
    std::snprintf(
        line, sizeof(line),
        "id=%llu kind=%s code=%s prio=%s arrival=%llu admit=%llu "
        "finish=%llu cached=%d tokens=",
        static_cast<unsigned long long>(outcome->id),
        std::string(OutcomeKindToString(outcome->kind)).c_str(),
        std::string(StatusCodeToString(outcome->code)).c_str(),
        std::string(PriorityToString(outcome->priority)).c_str(),
        static_cast<unsigned long long>(outcome->arrival_tick),
        static_cast<unsigned long long>(outcome->admit_tick),
        static_cast<unsigned long long>(outcome->finish_tick),
        outcome->cached_prompt_tokens);
    journal += line;
    for (std::size_t t = 0; t < outcome->tokens.size(); ++t) {
      if (t > 0) journal += ',';
      journal += std::to_string(outcome->tokens[t]);
    }
    journal += '\n';
  }
  return journal;
}

std::string FormatReport(const ServeReport& report) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "requests=%zu completed=%zu rejected=%zu shed=%zu deadline_missed=%zu "
      "failed=%zu tokens=%zu span_ticks=%llu tokens_per_tick=%.4f "
      "p50=%llu p95=%llu p99=%llu shed_rate=%.4f deadline_miss_rate=%.4f",
      report.total, report.completed, report.rejected, report.shed,
      report.deadline_missed, report.failed, report.generated_tokens,
      static_cast<unsigned long long>(report.span_ticks),
      report.TokensPerTick(),
      static_cast<unsigned long long>(report.p50_latency_ticks),
      static_cast<unsigned long long>(report.p95_latency_ticks),
      static_cast<unsigned long long>(report.p99_latency_ticks),
      report.ShedRate(), report.DeadlineMissRate());
  return std::string(buffer) + '\n';
}

}  // namespace dimqr::serve
