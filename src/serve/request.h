#ifndef DIMQR_SERVE_REQUEST_H_
#define DIMQR_SERVE_REQUEST_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/status.h"

/// \file request.h
/// The serving layer's request/outcome vocabulary. A ServeRequest is one
/// generation job on the simulated tick clock (arrival, optional deadline,
/// priority); a ServeOutcome is the complete, journal-ready record of what
/// the server did with it. Both are plain data: everything the scheduler
/// decides about a request is a pure function of these fields plus the
/// global fault configuration, which is what makes per-request outcomes
/// byte-identical across DIMQR_THREADS settings and reruns.

namespace dimqr::serve {

/// \brief Admission priority. Load shedding declines lower priorities
/// first; the queue pops higher priorities first (FIFO within a level).
enum class Priority : std::uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

std::string_view PriorityToString(Priority priority);

/// \brief One generation request on the simulated clock.
struct ServeRequest {
  std::uint64_t id = 0;
  std::vector<int> prompt;    ///< Token ids (vocab.h conventions).
  int max_new_tokens = 8;
  std::uint64_t arrival_tick = 0;
  /// Latency budget relative to arrival; once the clock passes
  /// arrival_tick + deadline_ticks the request is cancelled at the next
  /// token boundary. 0 disables the deadline.
  std::uint64_t deadline_ticks = 0;
  Priority priority = Priority::kNormal;
  /// Instance seed for fault decisions (serve.* sites), analogous to
  /// ChoiceQuestion::instance_seed.
  std::uint64_t seed = 0;

  std::uint64_t DeadlineTick() const {
    return deadline_ticks == 0 ? ~std::uint64_t{0}
                               : arrival_tick + deadline_ticks;
  }
};

/// \brief How a request left the server.
enum class OutcomeKind : std::uint8_t {
  kCompleted,         ///< Decoded to eos / token budget.
  kRejected,          ///< Admission control: queue full (kUnavailable).
  kShed,              ///< Declined by load shedding (kUnavailable).
  kDeadlineExceeded,  ///< Cancelled at a token boundary (partial tokens).
  kFailed,            ///< Backend failure (transient budget or permanent).
};

std::string_view OutcomeKindToString(OutcomeKind kind);

/// \brief The journal record for one request. `tokens` holds whatever was
/// generated before the request finished or was cancelled — partial-decode
/// work is accounted, not discarded silently.
struct ServeOutcome {
  std::uint64_t id = 0;
  OutcomeKind kind = OutcomeKind::kCompleted;
  StatusCode code = StatusCode::kOk;
  Priority priority = Priority::kNormal;
  std::vector<int> tokens;
  int cached_prompt_tokens = 0;  ///< Prompt tokens forked from the cache.
  std::uint64_t arrival_tick = 0;
  std::uint64_t admit_tick = 0;  ///< Tick the request joined the batch; 0
                                 ///< when it never left the queue.
  std::uint64_t finish_tick = 0;

  std::uint64_t LatencyTicks() const { return finish_tick - arrival_tick; }
};

}  // namespace dimqr::serve

#endif  // DIMQR_SERVE_REQUEST_H_
